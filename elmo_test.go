package elmo

import (
	"testing"
)

func TestClusterQuickPath(t *testing.T) {
	cl, err := NewCluster(PaperExampleTopology(), DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 1, Group: 1}
	members := map[HostID]Role{0: RoleBoth, 1: RoleReceiver, 40: RoleBoth, 63: RoleReceiver}
	if err := cl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	d, err := cl.Send(0, key, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 3 || d.Lost != 0 || d.Duplicates != 0 {
		t.Fatalf("delivery = %s", d)
	}
	if err := cl.Join(key, 8, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	d, err = cl.Send(0, key, []byte("hi2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 4 {
		t.Fatalf("after join: %s", d)
	}
	if err := cl.Leave(key, 8, RoleReceiver); err != nil {
		t.Fatal(err)
	}
	d, err = cl.Send(0, key, []byte("hi3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 3 {
		t.Fatalf("after leave: %s", d)
	}
	if got := len(cl.GroupKeys()); got != 1 {
		t.Fatalf("group keys = %d", got)
	}
	if err := cl.RemoveGroup(key); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.GroupKeys()); got != 0 {
		t.Fatalf("group keys after remove = %d", got)
	}
}

func TestClusterFailureAPI(t *testing.T) {
	cl, err := NewCluster(PaperExampleTopology(), DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 2, Group: 7}
	if err := cl.CreateGroup(key, map[HostID]Role{0: RoleBoth, 40: RoleBoth}); err != nil {
		t.Fatal(err)
	}
	n, err := cl.FailSpine(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("impacted = %d", n)
	}
	d, err := cl.Send(0, key, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 1 || d.Lost != 0 {
		t.Fatalf("under failure: %s", d)
	}
	if _, err := cl.RepairSpine(0); err != nil {
		t.Fatal(err)
	}
	d, err = cl.Send(40, key, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 1 {
		t.Fatalf("after repair: %s", d)
	}
	if _, err := cl.FailCore(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RepairCore(0); err != nil {
		t.Fatal(err)
	}
}

func TestNewClusterRejectsBadConfigs(t *testing.T) {
	if _, err := NewCluster(TopologyConfig{}, DefaultConfig(0)); err == nil {
		t.Fatal("bad topology accepted")
	}
	bad := DefaultConfig(0)
	bad.MaxHeaderBytes = 0
	if _, err := NewCluster(PaperExampleTopology(), bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestClusterJoinLeaveErrorPaths(t *testing.T) {
	cl, err := NewCluster(PaperExampleTopology(), DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	key := GroupKey{Tenant: 4, Group: 4}
	// Operations on a missing group fail cleanly.
	if err := cl.Join(key, 1, RoleReceiver); err == nil {
		t.Fatal("join on missing group accepted")
	}
	if err := cl.RemoveGroup(key); err == nil {
		t.Fatal("remove on missing group accepted")
	}
	if _, err := cl.Send(0, key, nil); err == nil {
		t.Fatal("send on missing group accepted")
	}
	if err := cl.CreateGroup(key, map[HostID]Role{0: RoleBoth, 40: RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	// Leave of a non-member fails and leaves the group functional.
	if err := cl.Leave(key, 17, RoleReceiver); err == nil {
		t.Fatal("leave of non-member accepted")
	}
	d, err := cl.Send(0, key, []byte("still works"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 1 {
		t.Fatalf("delivery = %s", d)
	}
}

func TestClusterManyGroupsSurviveFailureCycle(t *testing.T) {
	cl, err := NewCluster(PaperExampleTopology(), DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	// A handful of groups with varied spans.
	specs := [][]HostID{
		{0, 1, 2},       // rack-local
		{0, 9, 17},      // two pods
		{5, 40, 56, 63}, // three pods
		{8, 24, 40, 57}, // four pods
	}
	for i, hosts := range specs {
		members := make(map[HostID]Role, len(hosts))
		for _, h := range hosts {
			members[h] = RoleBoth
		}
		if err := cl.CreateGroup(GroupKey{Tenant: 9, Group: uint32(i + 1)}, members); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		for i, hosts := range specs {
			d, err := cl.Send(hosts[0], GroupKey{Tenant: 9, Group: uint32(i + 1)}, []byte(stage))
			if err != nil {
				t.Fatalf("%s group %d: %v", stage, i+1, err)
			}
			if len(d.Received) != len(hosts)-1 || d.Lost != 0 {
				t.Fatalf("%s group %d: %s", stage, i+1, d)
			}
		}
	}
	check("healthy")
	if _, err := cl.FailSpine(2); err != nil { // pod 1 plane 0
		t.Fatal(err)
	}
	if _, err := cl.FailCore(1); err != nil {
		t.Fatal(err)
	}
	check("two failures")
	if _, err := cl.RepairSpine(2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RepairCore(1); err != nil {
		t.Fatal(err)
	}
	check("repaired")
}
