# Developer entry points. The CI-equivalent gate is `make verify`;
# `make race` additionally runs the whole suite under the race
# detector (the live and UDP fabrics are heavily concurrent).

GO ?= go

.PHONY: all build test verify race bench trace

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs vet plus the full suite under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# trace records the flight-recorder demo scenario and writes a Chrome
# trace_event JSON for chrome://tracing / Perfetto.
trace:
	$(GO) run ./cmd/elmo-sim -trace -traceout trace.json
