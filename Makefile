# Developer entry points. The CI-equivalent gate is `make verify`;
# `make race` additionally runs the whole suite under the race
# detector (the live and UDP fabrics are heavily concurrent).

GO ?= go

.PHONY: all build test verify race lint bench bench-gate bench-all bench-multicore bench-durability bench-dataplane fuzz trace chaos durable partition

# Allocation budget for the warm-scratch clustering kernel
# (cluster.AssignInto with a reused Scratch). The hot path is designed
# to be allocation-free; the budget is 0 and any regression fails
# `make bench-gate`.
ENCODE_ALLOC_BUDGET ?= 0

# Allocation budget for the warm-scratch forwarding fast path
# (dataplane.ProcessInto with a reused SwitchScratch), enforced per
# packet across all three switch tiers by the elmo-bench dataplane
# stage. The fast path is allocation-free by design; any regression
# fails `make bench-gate`.
DATAPLANE_ALLOC_BUDGET ?= 0

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs vet plus the full suite under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# lint runs the static checks: go vet plus gofmt, failing when any
# file is not gofmt-clean.
lint:
	$(GO) vet ./...
	@fmt_out="$$(gofmt -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# bench runs the controller-scale benchmarks and records the
# machine-readable perf trajectory. It fails when elmo-bench measures a
# regression >20% against the checked-in baseline (BENCH_baseline.json;
# promote a trusted BENCH_controller.json run with
# `cp BENCH_controller.json BENCH_baseline.json` — until that file
# exists the comparison is skipped).
bench:
	$(GO) test -bench 'ControllerInstallBatch|ChurnPipeline|ControllerRuleGeneration' -benchmem -run '^$$' .
	$(GO) run ./cmd/elmo-bench -groups 100000 -events 20000 -out BENCH_controller.json -baseline BENCH_baseline.json

# bench-gate is the fast performance gate: the encode-hot-path
# allocation budget (clustering-kernel alloc-parity tests plus the
# elmo-bench encode stage, failing when warm-scratch AssignInto
# allocates more per op than ENCODE_ALLOC_BUDGET), the ops-plane
# alloc-parity gate (a fabric with a disabled observer attached must
# allocate exactly as much per send as a bare fabric — 0 bytes added —
# with the enabled-path budget logged), the data-plane forwarding
# budget (zero-alloc/equivalence tests plus the elmo-bench dataplane
# stage, failing when warm-scratch ProcessInto allocates more per
# packet than DATAPLANE_ALLOC_BUDGET), then the multi-core speedup
# gate (bench-multicore). It does not overwrite the checked-in BENCH
# files.
bench-gate:
	$(GO) test -run 'TestAssignIntoWarmScratchZeroAlloc' -count=1 ./internal/cluster/
	$(GO) test -bench 'BenchmarkAssignIntoWarmScratch$$' -benchmem -run '^$$' ./internal/cluster/
	$(GO) test -run 'TestObserverDisabledAddsNoAllocations' -count=1 -v ./internal/obs/
	$(GO) run ./cmd/elmo-bench -encode-only -encode-sets 500 -encode-out '' -max-allocs $(ENCODE_ALLOC_BUDGET)
	$(GO) test -run 'TestProcessIntoZeroAllocs|TestProcessIntoEquivalence' -count=1 ./internal/dataplane/
	$(GO) run ./cmd/elmo-bench -dataplane-only -dataplane-sends 4000 -dataplane-udp-sends 0 \
		-dataplane-out '' -dataplane-max-allocs $(DATAPLANE_ALLOC_BUDGET)
	$(MAKE) bench-multicore

# bench-dataplane refreshes the checked-in forwarding fast-path figures
# (packets/sec per tier, sync + UDP end-to-end, allocs/packet, p99 hop
# latency) in BENCH_dataplane.json.
bench-dataplane:
	$(GO) run ./cmd/elmo-bench -dataplane-only -dataplane-out BENCH_dataplane.json \
		-dataplane-max-allocs $(DATAPLANE_ALLOC_BUDGET)

# bench-all runs the full figure/table benchmark suite.
bench-all:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# bench-multicore runs the controller bench at GOMAXPROCS=4 with the
# speedup gate BLOCKING: parallel install/churn must beat serial by at
# least SPEEDUP_GATE on every reliable scaling point, or the target
# fails. On hosts without real parallelism (NumCPU < 2) elmo-bench
# skips the gate with a notice — the figures would measure
# time-slicing there, not scaling — so the gate bites exactly where it
# is meaningful (multi-core CI runners, developer machines).
SPEEDUP_GATE ?= 1.0
bench-multicore:
	GOMAXPROCS=4 $(GO) run ./cmd/elmo-bench -groups 50000 -events 20000 -out '' -encode-out '' \
		-scaling 1,2,4 -gate-speedup $(SPEEDUP_GATE)

# bench-durability measures the durable-controller trio: group-commit
# throughput under real fsync, full-scale (1M-group) crash recovery,
# and chaos-injected failover. Writes BENCH_durability.json.
bench-durability:
	$(GO) run ./cmd/elmo-bench -durability-only -durability-out BENCH_durability.json

# fuzz gives each fuzz target a short budget; the checked-in seed
# corpora run as regression tests on every plain `go test` already,
# so this target only explores beyond them.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzReplay' -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalCommand' -fuzztime $(FUZZTIME) ./internal/rsm/

# trace records the flight-recorder demo scenario and writes a Chrome
# trace_event JSON for chrome://tracing / Perfetto.
trace:
	$(GO) run ./cmd/elmo-sim -trace -traceout trace.json

# chaos runs the seeded fault-injection soaks on all three fabric
# tiers under the race detector (the soaks skip themselves in -short
# mode, so `go test -short ./...` stays fast), then the scripted
# fail->degrade->repair->reconverge scenario.
chaos:
	$(GO) test -race -run 'Chaos|Monitor|Injector|FaultPlan' -count=1 ./internal/chaos/
	$(GO) run ./cmd/elmo-sim -chaos -seed 7

# durable runs the narrated WAL/snapshot/crash-recovery/failover
# scenario.
durable:
	$(GO) run ./cmd/elmo-sim -durable

# partition runs the leadership-fencing soaks under the race detector
# — the split-brain partition soak, the fencing-rejection demotion
# path, and the chaos partition primitives — then the narrated
# partition/epoch-takeover scenario.
partition:
	$(GO) test -race -run 'TestPartitionSoakSplitBrain|TestDeposedByFencingRejection' -count=1 ./internal/durable/
	$(GO) test -race -run 'TestPartition|TestHeal|TestPlanPartition' -count=1 ./internal/chaos/
	$(GO) run ./cmd/elmo-sim -partition
