# Developer entry points. The CI-equivalent gate is `make verify`;
# `make race` additionally runs the whole suite under the race
# detector (the live and UDP fabrics are heavily concurrent).

GO ?= go

.PHONY: all build test verify race lint bench bench-gate bench-all trace chaos

# Allocation budget for the warm-scratch clustering kernel
# (cluster.AssignInto with a reused Scratch). The hot path is designed
# to be allocation-free; the budget is 0 and any regression fails
# `make bench-gate`.
ENCODE_ALLOC_BUDGET ?= 0

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet + build + full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# race runs vet plus the full suite under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# lint runs the static checks: go vet plus gofmt, failing when any
# file is not gofmt-clean.
lint:
	$(GO) vet ./...
	@fmt_out="$$(gofmt -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# bench runs the controller-scale benchmarks and records the
# machine-readable perf trajectory. It fails when elmo-bench measures a
# regression >20% against the checked-in baseline (BENCH_baseline.json;
# promote a trusted BENCH_controller.json run with
# `cp BENCH_controller.json BENCH_baseline.json` — until that file
# exists the comparison is skipped).
bench:
	$(GO) test -bench 'ControllerInstallBatch|ChurnPipeline|ControllerRuleGeneration' -benchmem -run '^$$' .
	$(GO) run ./cmd/elmo-bench -groups 100000 -events 20000 -out BENCH_controller.json -baseline BENCH_baseline.json

# bench-gate is the fast allocation gate on the encode hot path: it
# runs the clustering-kernel alloc-parity tests with -benchmem-grade
# accounting (testing.AllocsPerRun), then the elmo-bench encode stage,
# failing when warm-scratch AssignInto allocates more per op than
# ENCODE_ALLOC_BUDGET. It does not overwrite the checked-in
# BENCH_encode.json.
bench-gate:
	$(GO) test -run 'TestAssignIntoWarmScratchZeroAlloc' -count=1 ./internal/cluster/
	$(GO) test -bench 'BenchmarkAssignIntoWarmScratch$$' -benchmem -run '^$$' ./internal/cluster/
	$(GO) run ./cmd/elmo-bench -encode-only -encode-sets 500 -encode-out '' -max-allocs $(ENCODE_ALLOC_BUDGET)

# bench-all runs the full figure/table benchmark suite.
bench-all:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# trace records the flight-recorder demo scenario and writes a Chrome
# trace_event JSON for chrome://tracing / Perfetto.
trace:
	$(GO) run ./cmd/elmo-sim -trace -traceout trace.json

# chaos runs the seeded fault-injection soaks on all three fabric
# tiers under the race detector (the soaks skip themselves in -short
# mode, so `go test -short ./...` stays fast), then the scripted
# fail->degrade->repair->reconverge scenario.
chaos:
	$(GO) test -race -run 'Chaos|Monitor|Injector|FaultPlan' -count=1 ./internal/chaos/
	$(GO) run ./cmd/elmo-sim -chaos -seed 7
