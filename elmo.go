// Package elmo is a Go implementation of Elmo — source-routed
// multicast for multi-tenant datacenters (Shahbaz et al., SIGCOMM
// 2019).
//
// Elmo encodes a multicast group's forwarding tree inside each packet
// as a list of p-rules (port bitmaps plus logical switch identifiers),
// so network switches keep little or no per-group state. A
// logically-centralized controller computes compact encodings with a
// clustering algorithm bounded by a header budget, spills overflow to
// per-switch s-rules while group-table capacity lasts, and falls back
// to default p-rules beyond that. Hypervisor switches push the
// precomputed header onto tenant packets; leaf, spine, and core
// switches parse, replicate, and pop the header sections at line rate.
//
// This package is the public facade: it wires the controller and the
// emulated data plane together behind a small API. The subsystems live
// in internal packages:
//
//	internal/topology    Clos fabric model
//	internal/bitmap      port bitmaps (p-rule payload)
//	internal/header      Elmo wire format + VXLAN outer encapsulation
//	internal/cluster     MIN-K-UNION clustering (Algorithm 1)
//	internal/controller  group lifecycle, rule generation, failures
//	internal/dataplane   hypervisor and network switch pipelines
//	internal/fabric      emulated network, baselines, byte accounting
//	internal/placement   tenant/VM placement workloads
//	internal/groupgen    multicast group workloads (WVE, Uniform)
//	internal/sim         §5.1 scalability experiment harness
//	internal/churn       §5.1.3 churn & failure experiments
//	internal/apps        §5.2 pub-sub / telemetry / encap experiments
//	internal/baselines   Li et al., BIER, SGM, IP-multicast models
//
// Quickstart:
//
//	cl, err := elmo.NewCluster(elmo.PaperExampleTopology(), elmo.DefaultConfig(2))
//	key := elmo.GroupKey{Tenant: 1, Group: 1}
//	cl.CreateGroup(key, map[elmo.HostID]elmo.Role{0: elmo.RoleBoth, 40: elmo.RoleBoth})
//	delivery, err := cl.Send(0, key, []byte("hello"))
package elmo

import (
	"fmt"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

// Re-exported identifier and configuration types.
type (
	// HostID identifies a physical host.
	HostID = topology.HostID
	// LeafID identifies a leaf switch.
	LeafID = topology.LeafID
	// SpineID identifies a spine switch.
	SpineID = topology.SpineID
	// CoreID identifies a core switch.
	CoreID = topology.CoreID
	// TopologyConfig describes the Clos fabric dimensions.
	TopologyConfig = topology.Config
	// Config bounds the controller's encodings (header budget, rule
	// limits, redundancy R, s-rule capacity Fmax).
	Config = controller.Config
	// GroupKey identifies a multicast group (tenant VNI + group index).
	GroupKey = controller.GroupKey
	// Role is a member's participation: sender, receiver, or both.
	Role = controller.Role
	// Delivery reports the outcome of a multicast send.
	Delivery = fabric.Delivery
)

// Member roles.
const (
	RoleSender   = controller.RoleSender
	RoleReceiver = controller.RoleReceiver
	RoleBoth     = controller.RoleBoth
)

// PaperExampleTopology returns the paper's Figure 3 running example:
// 4 pods × 2 spines × 2 leaves × 8 hosts.
func PaperExampleTopology() TopologyConfig { return topology.PaperExample() }

// FacebookFabricTopology returns the evaluation fabric: 12 pods, 48
// leaves/pod, 48 hosts/leaf (27,648 hosts).
func FacebookFabricTopology() TopologyConfig { return topology.FacebookFabric() }

// DefaultConfig returns the paper's encoding configuration (325-byte
// header budget, 30 leaf + 2 spine p-rules, 10,000-entry group tables)
// at redundancy limit r.
func DefaultConfig(r int) Config { return controller.PaperConfig(r) }

// Cluster couples a controller with an emulated fabric: the minimal
// deployment of Elmo. It is safe for single-goroutine use; wrap it in
// your own synchronization to share.
type Cluster struct {
	Topo *topology.Topology
	Ctrl *controller.Controller
	Fab  *fabric.Fabric
}

// NewCluster builds the fabric and controller.
func NewCluster(topoCfg TopologyConfig, cfg Config) (*Cluster, error) {
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		return nil, err
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	return &Cluster{Topo: topo, Ctrl: ctrl, Fab: fab}, nil
}

// CreateGroup registers a group and installs its data-plane state.
func (c *Cluster) CreateGroup(key GroupKey, members map[HostID]Role) error {
	if _, err := c.Ctrl.CreateGroup(key, members); err != nil {
		return err
	}
	noPath, err := c.Fab.InstallGroup(c.Ctrl, key)
	if err != nil {
		return err
	}
	if len(noPath) > 0 {
		return fmt.Errorf("elmo: senders %v have no healthy path", noPath)
	}
	return nil
}

// RemoveGroup tears a group down in both planes.
func (c *Cluster) RemoveGroup(key GroupKey) error {
	if err := c.Fab.UninstallGroup(c.Ctrl, key); err != nil {
		return err
	}
	return c.Ctrl.RemoveGroup(key)
}

// Join adds (or extends) a member and refreshes the group's
// data-plane state.
func (c *Cluster) Join(key GroupKey, host HostID, role Role) error {
	// Withdraw current data-plane state, apply the membership change,
	// and reinstall — the controller tracks the precise switch deltas.
	if err := c.Fab.UninstallGroup(c.Ctrl, key); err != nil {
		return err
	}
	if err := c.Ctrl.Join(key, host, role); err != nil {
		c.reinstall(key)
		return err
	}
	return c.install(key)
}

// Leave removes a member role and refreshes the group's data-plane
// state.
func (c *Cluster) Leave(key GroupKey, host HostID, role Role) error {
	if err := c.Fab.UninstallGroup(c.Ctrl, key); err != nil {
		return err
	}
	if err := c.Ctrl.Leave(key, host, role); err != nil {
		c.reinstall(key)
		return err
	}
	return c.install(key)
}

func (c *Cluster) install(key GroupKey) error {
	noPath, err := c.Fab.InstallGroup(c.Ctrl, key)
	if err != nil {
		return err
	}
	if len(noPath) > 0 {
		return fmt.Errorf("elmo: senders %v have no healthy path", noPath)
	}
	return nil
}

func (c *Cluster) reinstall(key GroupKey) {
	if c.Ctrl.Group(key) != nil {
		_, _ = c.Fab.InstallGroup(c.Ctrl, key)
	}
}

// Send multicasts an inner frame from a sender to the group.
func (c *Cluster) Send(sender HostID, key GroupKey, inner []byte) (*Delivery, error) {
	return c.Fab.Send(sender, dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}, inner)
}

// FailSpine marks a spine failed and refreshes the sender headers of
// impacted groups, returning how many groups were impacted.
func (c *Cluster) FailSpine(s SpineID) (int, error) {
	n := c.Ctrl.FailSpine(s)
	return n, c.refreshAllSenders()
}

// FailCore marks a core failed, refreshing impacted groups.
func (c *Cluster) FailCore(co CoreID) (int, error) {
	n := c.Ctrl.FailCore(co)
	return n, c.refreshAllSenders()
}

// RepairSpine restores a spine and re-enables multipathing.
func (c *Cluster) RepairSpine(s SpineID) (int, error) {
	n := c.Ctrl.RepairSpine(s)
	return n, c.refreshAllSenders()
}

// RepairCore restores a core.
func (c *Cluster) RepairCore(co CoreID) (int, error) {
	n := c.Ctrl.RepairCore(co)
	return n, c.refreshAllSenders()
}

// refreshAllSenders reinstalls sender flows for every group (the
// controller computed new upstream rules); senders left without a path
// fall back to unicast at their hypervisor and are skipped here.
func (c *Cluster) refreshAllSenders() error {
	for _, key := range c.GroupKeys() {
		if _, err := c.Fab.InstallGroup(c.Ctrl, key); err != nil {
			return err
		}
	}
	return nil
}

// GroupKeys lists the live groups.
func (c *Cluster) GroupKeys() []GroupKey {
	return c.Ctrl.GroupKeys()
}
