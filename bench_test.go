// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment at
// a laptop-friendly scale and prints the rows/series the paper reports
// (once); run cmd/elmo-sim and cmd/elmo-apps with paper-scale flags for
// the full 27,648-host / 1M-group configuration.
//
//	go test -bench=. -benchmem
package elmo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"elmo/internal/apps"
	"elmo/internal/baselines"
	"elmo/internal/churn"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/groupgen"
	"elmo/internal/header"
	"elmo/internal/metrics"
	"elmo/internal/placement"
	"elmo/internal/sim"
	"elmo/internal/topology"
)

// small indirections so the popping ablation reads clearly.
func headerLayout(t *topology.Topology) header.Layout { return header.LayoutFor(t) }

func encodeHeader(l header.Layout, h *header.Header) ([]byte, error) {
	return header.Encode(l, h)
}

// benchTopo is the scaled-down evaluation fabric: 4 pods × 2 spines ×
// 8 leaves × 8 hosts = 256 hosts.
func benchTopo() topology.Config {
	return topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 8, CoresPerPlane: 2}
}

func benchScalability(p, r, groups, srules int, dist groupgen.Distribution, leafLimit int) sim.ScalabilityConfig {
	ctrlCfg := controller.PaperConfig(r)
	ctrlCfg.SRuleCapacity = srules
	if leafLimit > 0 {
		ctrlCfg.LeafRuleLimit = leafLimit
	}
	return sim.ScalabilityConfig{
		Topology: benchTopo(),
		Placement: placement.Config{
			Tenants: 80, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 16, P: p, Seed: 11,
		},
		Groups:              groupgen.Config{TotalGroups: groups, MinSize: 5, Dist: dist, Seed: 13},
		Controller:          ctrlCfg,
		PacketSizes:         []int{64, 1500},
		BaselineSampleEvery: 19,
		Seed:                17,
	}
}

var printOnce sync.Map

func printTable(name string, t fmt.Stringer) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", t)
	}
}

// runFigure45 runs the Figure 4/5 sweep (three panels) at placement P.
func runFigure45(b *testing.B, name string, p int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable(name,
			"R", "p-rules only", "leaf p-only", "p+s-rules", "default", "leaf s-rules mean",
			"leaf s-rules max", "Li leaf mean", "ovh 64B", "ovh 1500B", "unicast ovh", "overlay ovh")
		var last *sim.ScalabilityResult
		for _, r := range []int{0, 6, 12} {
			res, err := sim.RunScalability(benchScalability(p, r, 1500, 100, groupgen.WVE, 0))
			if err != nil {
				b.Fatal(err)
			}
			if res.DeliveryFailures > 0 {
				b.Fatalf("R=%d: %d delivery failures", r, res.DeliveryFailures)
			}
			t.AddRow(r, res.GroupsPRulesOnly, res.LeafPRulesOnly, res.GroupsWithSRules, res.GroupsWithDefault,
				res.LeafSRules.Mean(), res.LeafSRules.Max(), res.LiLeafEntries.Mean(),
				res.TrafficOverhead[64], res.TrafficOverhead[1500],
				res.UnicastOverhead[1500], res.OverlayOverhead[1500])
			last = res
		}
		if i == 0 {
			printTable(name, t)
			b.ReportMetric(last.CoveredFraction(), "covered-frac-R12")
			b.ReportMetric(last.HeaderBytes.Mean(), "hdr-bytes-mean")
		}
	}
}

// BenchmarkFigure4_PlacementP12 regenerates Figure 4: clustered
// placement (≤12 VMs of a tenant per rack), WVE sizes, three panels
// over R ∈ {0, 6, 12}.
func BenchmarkFigure4_PlacementP12(b *testing.B) {
	runFigure45(b, "Figure 4 (P=12, WVE)", 12)
}

// BenchmarkFigure5_PlacementP1 regenerates Figure 5: dispersed
// placement (one VM per rack).
func BenchmarkFigure5_PlacementP1(b *testing.B) {
	runFigure45(b, "Figure 5 (P=1, WVE)", 1)
}

// BenchmarkSensitivity_Uniform regenerates the §5.1.2 group-size
// sensitivity study: Uniform sizes cover fewer groups with p-rules
// than WVE at the same R.
func BenchmarkSensitivity_Uniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("Sensitivity: Uniform group sizes (P=1)",
			"R", "p-rules only", "p+s-rules", "default", "ovh 1500B")
		for _, r := range []int{0, 12} {
			res, err := sim.RunScalability(benchScalability(1, r, 1500, 100, groupgen.Uniform, 0))
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(r, res.GroupsPRulesOnly, res.GroupsWithSRules, res.GroupsWithDefault,
				res.TrafficOverhead[1500])
		}
		printTable("uniform", t)
	}
}

// BenchmarkSensitivity_SmallHeader regenerates the §5.1.2 reduced
// header study: capping the leaf section at 10 p-rules with scarce
// s-rule capacity inflates traffic overhead.
func BenchmarkSensitivity_SmallHeader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("Sensitivity: 10 leaf p-rules, reduced s-rule capacity (P=1, R=12)",
			"config", "p-rules only", "default", "ovh 1500B")
		full, err := sim.RunScalability(benchScalability(1, 12, 1500, 100, groupgen.WVE, 0))
		if err != nil {
			b.Fatal(err)
		}
		small, err := sim.RunScalability(benchScalability(1, 12, 1500, 4, groupgen.WVE, 10))
		if err != nil {
			b.Fatal(err)
		}
		t.AddRow("30 leaf p-rules, Fmax=100", full.GroupsPRulesOnly, full.GroupsWithDefault, full.TrafficOverhead[1500])
		t.AddRow("10 leaf p-rules, Fmax=4", small.GroupsPRulesOnly, small.GroupsWithDefault, small.TrafficOverhead[1500])
		printTable("smallheader", t)
		if small.TrafficOverhead[1500] < full.TrafficOverhead[1500] {
			b.Fatalf("reduced header should inflate overhead: %.3f vs %.3f",
				small.TrafficOverhead[1500], full.TrafficOverhead[1500])
		}
	}
}

// BenchmarkTable2_ChurnUpdates regenerates Table 2: per-switch update
// rates under membership churn, Elmo vs Li et al.
func BenchmarkTable2_ChurnUpdates(b *testing.B) {
	topo := topology.MustNew(benchTopo())
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 60, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 16, P: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	groups, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: 400, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := controller.New(topo, controller.PaperConfig(0))
		if err != nil {
			b.Fatal(err)
		}
		if err := churn.Setup(ctrl, dep, groups, rand.New(rand.NewSource(7))); err != nil {
			b.Fatal(err)
		}
		res, err := churn.Run(ctrl, dep, groups, churn.Config{Events: 2000, EventsPerSecond: 1000, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("table2", res.Table2())
			b.ReportMetric(res.Hypervisor.Mean(), "hv-upd/s")
			b.ReportMetric(res.Leaf.Mean(), "leaf-upd/s")
			b.ReportMetric(res.CoreRate, "core-upd/s")
		}
	}
}

// BenchmarkFailureRecovery regenerates §5.1.3b: groups impacted and
// hypervisor updates for single spine and core failures.
func BenchmarkFailureRecovery(b *testing.B) {
	topo := topology.MustNew(benchTopo())
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 60, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 16, P: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	groups, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: 400, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := controller.New(topo, controller.PaperConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	if err := churn.Setup(ctrl, dep, groups, rand.New(rand.NewSource(7))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := churn.RunFailures(ctrl, int64(42+i))
		if i == 0 {
			t := metrics.NewTable("Failure impact (§5.1.3b)",
				"failure", "groups impacted %", "hypervisor updates")
			t.AddRow("one spine", 100*res.SpineImpactedFrac, res.SpineHypervisorUpdates)
			t.AddRow("one core", 100*res.CoreImpactedFrac, res.CoreHypervisorUpdates)
			printTable("failures", t)
			b.ReportMetric(100*res.SpineImpactedFrac, "spine-impact-%")
			b.ReportMetric(100*res.CoreImpactedFrac, "core-impact-%")
		}
	}
}

// BenchmarkControllerRuleGeneration regenerates the §5.1.3 claim that
// p-/s-rule computation for one group takes well under a millisecond
// (the paper's Python implementation: 0.20 ms ± 0.45 ms).
func BenchmarkControllerRuleGeneration(b *testing.B) {
	topo := topology.MustNew(topology.FacebookFabric())
	cfg := controller.PaperConfig(6)
	rng := rand.New(rand.NewSource(21))
	receivers := make([]topology.HostID, 60)
	seen := map[topology.HostID]bool{}
	for i := range receivers {
		for {
			h := topology.HostID(rng.Intn(topo.NumHosts()))
			if !seen[h] {
				seen[h] = true
				receivers[i] = h
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := controller.ComputeEncoding(topo, cfg, controller.NoCapacity(), receivers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6_PubSub regenerates Figure 6: pub-sub throughput and
// publisher CPU vs subscriber count, unicast vs Elmo.
func BenchmarkFigure6_PubSub(b *testing.B) {
	topo := topology.MustNew(topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 12, CoresPerPlane: 2})
	for i := 0; i < b.N; i++ {
		cfg := controller.PaperConfig(6)
		ctrl, err := controller.New(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fab := fabric.New(topo, cfg.SRuleCapacity)
		fab.SetFailures(ctrl.Failures())
		subs := make([]topology.HostID, 256)
		for j := range subs {
			subs[j] = topology.HostID(j + 1)
		}
		points, err := apps.MeasurePubSub(ctrl, fab, 0, subs,
			[]int{1, 4, 16, 64, 256}, 100, 400)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := metrics.NewTable("Figure 6: pub-sub, 100-byte messages",
				"subscribers", "transport", "per-msg", "throughput msg/s", "CPU %")
			for _, p := range points {
				t.AddRow(p.Subscribers, p.Transport.String(), p.PerMessage.String(), p.Throughput, p.CPUPercent)
			}
			printTable("figure6", t)
			last := points[len(points)-1] // unicast @ 256
			b.ReportMetric(last.CPUPercent, "unicast-cpu-256subs-%")
		}
	}
}

// BenchmarkSFlowTelemetry regenerates §5.2.2: agent egress bandwidth
// vs collector count.
func BenchmarkSFlowTelemetry(b *testing.B) {
	topo := topology.MustNew(topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 12, CoresPerPlane: 2})
	for i := 0; i < b.N; i++ {
		cfg := controller.PaperConfig(6)
		ctrl, err := controller.New(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fab := fabric.New(topo, cfg.SRuleCapacity)
		fab.SetFailures(ctrl.Failures())
		collectors := make([]topology.HostID, 64)
		for j := range collectors {
			collectors[j] = topology.HostID(j + 1)
		}
		points, err := apps.MeasureTelemetry(ctrl, fab, 0, collectors, []int{1, 4, 16, 64}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := metrics.NewTable("sFlow telemetry at 8 reports/s",
				"collectors", "transport", "egress Kbps")
			for _, p := range points {
				t.AddRow(p.Collectors, p.Transport.String(), p.EgressKbps)
			}
			printTable("sflow", t)
		}
	}
}

// BenchmarkFigure7_HypervisorEncap regenerates Figure 7: packets/sec
// and Gbps vs number of p-rules at the hypervisor, with the §4.2
// single-write vs per-rule-write ablation.
func BenchmarkFigure7_HypervisorEncap(b *testing.B) {
	topo := topology.MustNew(topology.FacebookFabric())
	for i := 0; i < b.N; i++ {
		points, err := apps.MeasureEncap(topo, []int{0, 10, 20, 30}, 1500-50, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := metrics.NewTable("Figure 7: hypervisor encapsulation, 1500-byte frames",
				"p-rules", "mode", "Mpps", "Gbps", "pkt bytes")
			for _, p := range points {
				t.AddRow(p.PRules, p.Mode.String(), p.Mpps, p.Gbps, p.Bytes)
			}
			printTable("figure7", t)
			for _, p := range points {
				if p.PRules == 30 && p.Mode == apps.SingleWrite {
					b.ReportMetric(p.Mpps, "Mpps-30rules")
					b.ReportMetric(p.Gbps, "Gbps-30rules")
				}
			}
		}
	}
}

// BenchmarkTable3_SchemeComparison regenerates Table 3: the analytic
// scheme comparison at a 5,000-entry group table and 325-byte header.
func BenchmarkTable3_SchemeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := baselines.AllLimits(325, 5000)
		if i == 0 {
			t := metrics.NewTable("Table 3: scheme comparison (5K group table, 325 B header)",
				"scheme", "#groups", "group-size limit", "network-size limit",
				"group-table", "flow-table", "line-rate", "addr-isolation", "multipath",
				"control ovh", "traffic ovh", "end-host repl", "unorthodox hw")
			for _, r := range rows {
				t.AddRow(r.Scheme, orUnlimited(r.MaxGroups), orUnlimited(r.MaxGroupSize),
					orUnlimited(r.MaxHosts), r.GroupTableUsage, r.FlowTableUsage,
					yn(r.LineRate), yn(r.AddressIsolation), r.Multipath,
					r.ControlOverhead, r.TrafficOverhead, yn(r.EndHostRepl), yn(r.Unorthodox))
			}
			printTable("table3", t)
		}
	}
}

// BenchmarkAblation_NoSRules quantifies D5: with group tables disabled
// (Fmax = 0), overflow groups fall onto default p-rules, trading
// coverage and traffic for zero network state.
func BenchmarkAblation_NoSRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := sim.RunScalability(benchScalability(1, 0, 1500, 100, groupgen.WVE, 0))
		if err != nil {
			b.Fatal(err)
		}
		without, err := sim.RunScalability(benchScalability(1, 0, 1500, 0, groupgen.WVE, 0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := metrics.NewTable("Ablation: s-rules disabled (D5), P=1, R=0",
				"config", "exact coverage", "default groups", "ovh 1500B")
			t.AddRow("s-rules available", with.CoveredFraction(), with.GroupsWithDefault, with.TrafficOverhead[1500])
			t.AddRow("Fmax = 0", without.CoveredFraction(), without.GroupsWithDefault, without.TrafficOverhead[1500])
			printTable("ablation-nosrules", t)
			if without.GroupsWithDefault <= with.GroupsWithDefault {
				b.Fatal("disabling s-rules should force default rules")
			}
		}
	}
}

// BenchmarkAblation_DesignDecisions regenerates the §3.1 size
// narrative on the Figure 3 example: per-switch rules → logical
// topology → bitmap sharing (paper: 161 → 83 → 62 bits).
func BenchmarkAblation_DesignDecisions(b *testing.B) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(2)
	cfg.LeafRuleLimit = 2
	receivers := []topology.HostID{0, 1, 40, 48, 49, 63} // Fig. 3 group
	for i := 0; i < b.N; i++ {
		sizes, err := controller.Ablation(topo, cfg, receivers, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := metrics.NewTable("Ablation: §3.1 design decisions, Fig. 3 example (bits)",
				"stage", "this repo", "paper")
			t.AddRow("D1 per-switch rules", sizes.D1Bits, 161)
			t.AddRow("D2 logical topology", sizes.D2Bits, 83)
			t.AddRow("D3 bitmap sharing", sizes.D3Bits, 62)
			printTable("ablation-design", t)
			b.ReportMetric(float64(sizes.D1Bits), "D1-bits")
			b.ReportMetric(float64(sizes.D3Bits), "D3-bits")
		}
	}
}

// BenchmarkAblation_HeaderPopping quantifies D2d: the traffic saved by
// popping consumed sections per hop versus carrying the full source
// header on every link.
func BenchmarkAblation_HeaderPopping(b *testing.B) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 1, Group: 1}
	hosts := []topology.HostID{0, 1, 40, 48, 49, 63}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		b.Fatal(err)
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		b.Fatal(err)
	}
	hdr, err := ctrl.HeaderFor(key, 0)
	if err != nil {
		b.Fatal(err)
	}
	stream0 := 0
	{
		l := headerLayout(topo)
		wire, err := encodeHeader(l, hdr)
		if err != nil {
			b.Fatal(err)
		}
		stream0 = len(wire)
	}
	inner := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := fab.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, inner)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			noPop := controller.NoPopBytes(d.Links, len(inner), stream0)
			t := metrics.NewTable("Ablation: per-hop popping (D2d), Fig. 3 group, 100-byte payload",
				"variant", "link bytes", "vs popping")
			t.AddRow("with popping (Elmo)", d.LinkBytes, 1.0)
			t.AddRow("header never popped", noPop, float64(noPop)/float64(d.LinkBytes))
			printTable("ablation-pop", t)
			if noPop <= d.LinkBytes {
				b.Fatalf("no-pop %d should exceed popped %d", noPop, d.LinkBytes)
			}
		}
	}
}

func orUnlimited(v int) string {
	if v == 0 {
		return "none"
	}
	if v >= 1000 {
		return fmt.Sprintf("%dK", v/1000)
	}
	return fmt.Sprintf("%d", v)
}

func yn(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// buildBatchSpecs converts a generated workload into controller batch
// specs with randomized roles (one forced receiver per group).
func buildBatchSpecs(dep *placement.Deployment, groups []groupgen.Group, seed int64) []controller.BatchSpec {
	_ = dep
	rng := rand.New(rand.NewSource(seed))
	specs := make([]controller.BatchSpec, len(groups))
	for gi := range groups {
		g := &groups[gi]
		members := make(map[topology.HostID]controller.Role, len(g.Hosts))
		hasReceiver := false
		for _, h := range g.Hosts {
			r := churn.RoleFor(rng)
			members[h] = r
			if r.CanReceive() {
				hasReceiver = true
			}
		}
		if !hasReceiver {
			members[g.Hosts[0]] = controller.RoleBoth
		}
		specs[gi] = controller.BatchSpec{
			Key:     controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID},
			Members: members,
		}
	}
	return specs
}

// BenchmarkControllerInstallBatch measures the parallel bulk-install
// pipeline (§5.1.3 controller scale): groups/sec at 1 worker vs
// GOMAXPROCS workers, with the byte-identical-result guarantee checked
// separately by TestInstallBatchDeterministicAcrossWorkers. Run
// cmd/elmo-bench for the recorded BENCH_controller.json trajectory.
func BenchmarkControllerInstallBatch(b *testing.B) {
	topo := topology.MustNew(benchTopo())
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 60, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 16, P: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	groups, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: 2000, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	specs := buildBatchSpecs(dep, groups, 7)
	for _, workers := range []int{1, parallelWorkers()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var start time.Time
			for i := 0; i < b.N; i++ {
				ctrl, err := controller.New(topo, controller.PaperConfig(0))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					start = time.Now()
				}
				res, err := ctrl.InstallBatch(specs, controller.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Installed != len(specs) {
					b.Fatalf("installed %d of %d", res.Installed, len(specs))
				}
			}
			b.ReportMetric(float64(b.N*len(specs))/time.Since(start).Seconds(), "groups/sec")
		})
	}
}

// BenchmarkChurnPipeline measures the two-phase churn replay
// (generation + apply) at 1 worker vs GOMAXPROCS apply workers,
// reporting wall-clock events/sec.
func BenchmarkChurnPipeline(b *testing.B) {
	topo := topology.MustNew(benchTopo())
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 60, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 16, P: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	groups, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: 400, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, parallelWorkers()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var applied int
			var start time.Time
			for i := 0; i < b.N; i++ {
				ctrl, err := controller.New(topo, controller.PaperConfig(0))
				if err != nil {
					b.Fatal(err)
				}
				if err := churn.Setup(ctrl, dep, groups, rand.New(rand.NewSource(7))); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					start = time.Now() // exclude the first Setup warm-up
				}
				res, err := ctrl2Run(ctrl, dep, groups, workers)
				if err != nil {
					b.Fatal(err)
				}
				applied += res.EventsApplied
			}
			b.ReportMetric(float64(applied)/time.Since(start).Seconds(), "events/sec")
		})
	}
}

// parallelWorkers picks the concurrent worker count to benchmark:
// GOMAXPROCS, floored at 2 so the parallel code path is exercised even
// on a single-core runner (where no speedup can materialize).
func parallelWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 2
}

func ctrl2Run(ctrl *controller.Controller, dep *placement.Deployment, groups []groupgen.Group, workers int) (*churn.Result, error) {
	return churn.Run(ctrl, dep, groups, churn.Config{
		Events: 4000, EventsPerSecond: 1000, Seed: 9, Workers: workers,
	})
}
