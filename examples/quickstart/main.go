// Command quickstart demonstrates the Elmo public API end to end on
// the paper's Figure 3 example: build a small Clos fabric, create the
// multicast group {Ha, Hb, Hk, Hm, Hn, Hp}, send a packet from every
// member, and print what the fabric did — including the header bytes
// the sender's hypervisor pushed and the traffic cost relative to
// ideal multicast.
package main

import (
	"fmt"
	"log"

	"elmo"
	"elmo/internal/fabric"
)

func main() {
	// The running example of the paper (Figure 3): 4 pods, 2 spines
	// and 2 leaves per pod, 8 hosts per leaf.
	cl, err := elmo.NewCluster(elmo.PaperExampleTopology(), elmo.DefaultConfig(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fabric:", cl.Topo)

	// Fig. 3 members: Ha,Hb under L0; Hk under L5; Hm,Hn under L6;
	// Hp under L7.
	hosts := map[string]elmo.HostID{
		"Ha": 0, "Hb": 1, "Hk": 40, "Hm": 48, "Hn": 49, "Hp": 63,
	}
	members := make(map[elmo.HostID]elmo.Role, len(hosts))
	for _, h := range hosts {
		members[h] = elmo.RoleBoth
	}
	key := elmo.GroupKey{Tenant: 1, Group: 1}
	if err := cl.CreateGroup(key, members); err != nil {
		log.Fatal(err)
	}
	g := cl.Ctrl.Group(key)
	fmt.Printf("group %v: %d members, %d leaf p-rules, %d leaf s-rules, exact=%v\n",
		key, len(g.Members), len(g.Enc.DLeaf), len(g.Enc.LeafSRules), g.Enc.Exact())

	payload := []byte("hello, source-routed multicast!")
	for name, sender := range hosts {
		d, err := cl.Send(sender, key, payload)
		if err != nil {
			log.Fatalf("send from %s: %v", name, err)
		}
		ideal := fabric.IdealBytes(cl.Topo, sender, g.Receivers(), len(payload))
		fmt.Printf("%s -> %d receivers, %d link bytes (ideal %d, overhead %.1f%%), %d hops\n",
			name, len(d.Received), d.LinkBytes, ideal,
			100*(float64(d.LinkBytes)/float64(ideal)-1), d.Hops)
	}

	// Membership change: Hc (host 2) joins as a receiver.
	if err := cl.Join(key, 2, elmo.RoleReceiver); err != nil {
		log.Fatal(err)
	}
	d, err := cl.Send(hosts["Hk"], key, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after join of Hc: Hk -> %d receivers\n", len(d.Received))

	// Show resilience: fail a spine, traffic still arrives.
	impacted, err := cl.FailSpine(0)
	if err != nil {
		log.Fatal(err)
	}
	d, err = cl.Send(hosts["Ha"], key, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spine 0 failed (%d groups impacted): Ha -> %d receivers, lost=%d\n",
		impacted, len(d.Received), d.Lost)
	if _, err := cl.RepairSpine(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("spine 0 repaired; done")
}
