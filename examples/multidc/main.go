// Command multidc demonstrates the paper's §7 multi-datacenter
// deployment: a global multicast group spanning two differently-shaped
// datacenters. The sender multicasts natively at home; exactly one WAN
// copy crosses to each remote site, where a relay hypervisor
// re-multicasts with that site's own p- and s-rules.
package main

import (
	"fmt"
	"log"

	"elmo/internal/controller"
	"elmo/internal/header"
	"elmo/internal/multidc"
	"elmo/internal/topology"
)

func main() {
	cfg := controller.PaperConfig(2)
	east, err := multidc.NewDatacenter("us-east", topology.PaperExample(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	west, err := multidc.NewDatacenter("eu-west", topology.Config{
		Pods: 2, SpinesPerPod: 2, LeavesPerPod: 6, HostsPerLeaf: 10, CoresPerPlane: 2,
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := multidc.NewBridge(east, west)
	if err != nil {
		log.Fatal(err)
	}

	key := controller.GroupKey{Tenant: 14, Group: 3}
	members := map[string][]topology.HostID{
		"us-east": {0, 1, 40, 63},
		"eu-west": {7, 23, 61, 88, 105},
	}
	if err := bridge.CreateGlobalGroup(key, members); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global group %v: %d members in us-east, %d in eu-west\n",
		key, len(members["us-east"]), len(members["eu-west"]))

	payload := []byte("cross-dc state update")
	const sends = 25
	for i := 0; i < sends; i++ {
		out, err := bridge.Send("us-east", 0, key, payload)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			for dc, d := range out {
				fmt.Printf("  %s: delivered to %d hosts (%d link bytes inside the DC)\n",
					dc, len(d.Received), d.LinkBytes)
			}
		}
	}
	fmt.Printf("after %d sends: %d WAN copies, %d WAN bytes\n", sends, bridge.WANCopies, bridge.WANBytes)
	fmt.Printf("(unicast across the WAN would have cost %d copies — one per remote member)\n",
		sends*len(members["eu-west"]))
	perSend := header.OuterSize + len(payload)
	fmt.Printf("WAN cost per send: %d bytes, independent of the remote membership size\n", perSend)
}
