// Command pubsub runs the paper's §5.2.1 experiment shape: a ZeroMQ-
// style publish-subscribe workload over unicast vs Elmo, sweeping the
// subscriber count and reporting per-subscriber throughput and the
// publisher's CPU share (Figure 6).
package main

import (
	"flag"
	"fmt"
	"log"

	"elmo/internal/apps"
	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/metrics"
	"elmo/internal/topology"
)

func main() {
	msgSize := flag.Int("msg-size", 100, "message size in bytes (paper: 100)")
	msgs := flag.Int("msgs", 2000, "messages per measurement point")
	maxSubs := flag.Int("max-subs", 256, "largest subscriber count")
	flag.Parse()

	// Big enough for 256 subscribers across many racks.
	topo := topology.MustNew(topology.Config{
		Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 12, CoresPerPlane: 2,
	})
	ctrl, err := controller.New(topo, controller.PaperConfig(6))
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, controller.PaperConfig(6).SRuleCapacity)
	fab.SetFailures(ctrl.Failures())

	var counts []int
	for n := 1; n <= *maxSubs && n < topo.NumHosts(); n *= 2 {
		counts = append(counts, n)
	}
	subs := make([]topology.HostID, counts[len(counts)-1])
	for i := range subs {
		subs[i] = topology.HostID(i + 1)
	}
	points, err := apps.MeasurePubSub(ctrl, fab, 0, subs, counts, *msgSize, *msgs)
	if err != nil {
		log.Fatal(err)
	}

	t := metrics.NewTable(
		fmt.Sprintf("Figure 6: pub-sub with %d-byte messages (publisher-side cost)", *msgSize),
		"subscribers", "transport", "per-msg", "throughput (msg/s/sub)", "publisher CPU %")
	for _, p := range points {
		t.AddRow(p.Subscribers, p.Transport.String(), p.PerMessage.String(), p.Throughput, p.CPUPercent)
	}
	fmt.Print(t)
	fmt.Println("\nShape check (paper): unicast throughput collapses and CPU saturates as")
	fmt.Println("subscribers grow; Elmo stays flat at one encapsulation per message.")
}
