// Command kvstore demonstrates the paper's "replicated state machines"
// motivation (§1): a leader replicates a key-value command log to
// followers across pods over Elmo multicast, with the PGM-style
// reliable layer repairing injected loss — one network copy per
// command regardless of the replica count.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/rsm"
	"elmo/internal/topology"
)

func main() {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())

	leader := topology.HostID(0)
	followers := []topology.HostID{8, 17, 40, 56, 63} // spread over all pods
	cluster, err := rsm.NewCluster(ctrl, fab,
		controller.GroupKey{Tenant: 7, Group: 1}, leader, followers, 512)
	if err != nil {
		log.Fatal(err)
	}

	// Drop 20% of replica deliveries to show the repair path working.
	rng := rand.New(rand.NewSource(42))
	cluster.Session().LossInjector = func(h topology.HostID, seq uint32) bool {
		return rng.Float64() < 0.20
	}

	fmt.Printf("replicating 200 commands from host %d to %d followers (20%% injected loss)\n",
		leader, len(followers))
	for i := 0; i < 200; i++ {
		cmd := rsm.Command{Op: rsm.OpSet, Key: fmt.Sprintf("user:%d", i%17), Value: fmt.Sprintf("balance=%d", i)}
		if i%13 == 12 {
			cmd = rsm.Command{Op: rsm.OpDelete, Key: fmt.Sprintf("user:%d", i%17)}
		}
		if err := cluster.Propose(cmd); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Sync(); err != nil {
		log.Fatal(err)
	}

	ok, why := cluster.Converged()
	if !ok {
		log.Fatalf("replicas diverged: %s", why)
	}
	fmt.Printf("all %d replicas converged after %d NAK/repair rounds\n",
		len(followers), cluster.Session().NAKs)
	for _, f := range followers {
		r := cluster.Replica(f)
		v, _ := r.Get("user:16")
		fmt.Printf("  replica on host %-2d: %d commands applied, user:16 -> %q\n",
			f, r.Applied(), v)
	}
	fmt.Println("one multicast copy per command; losses repaired by unicast RDATA.")
}
