// Command telemetry runs the paper's §5.2.2 experiment: an sFlow-style
// agent exports host metrics to a growing set of collectors, comparing
// the agent host's egress bandwidth under unicast vs Elmo.
package main

import (
	"flag"
	"fmt"
	"log"

	"elmo/internal/apps"
	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/metrics"
	"elmo/internal/topology"
)

func main() {
	rate := flag.Float64("reports-per-sec", 8, "telemetry reports per second")
	maxCollectors := flag.Int("max-collectors", 64, "largest collector count")
	flag.Parse()

	topo := topology.MustNew(topology.Config{
		Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 12, CoresPerPlane: 2,
	})
	cfg := controller.PaperConfig(6)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())

	var counts []int
	for n := 1; n <= *maxCollectors; n *= 2 {
		counts = append(counts, n)
	}
	collectors := make([]topology.HostID, counts[len(counts)-1])
	for i := range collectors {
		collectors[i] = topology.HostID(i + 1)
	}
	points, err := apps.MeasureTelemetry(ctrl, fab, 0, collectors, counts, *rate)
	if err != nil {
		log.Fatal(err)
	}

	t := metrics.NewTable(
		fmt.Sprintf("sFlow-style host telemetry at %.0f reports/s: agent egress bandwidth", *rate),
		"collectors", "transport", "egress Kbps")
	for _, p := range points {
		t.AddRow(p.Collectors, p.Transport.String(), p.EgressKbps)
	}
	fmt.Print(t)
	fmt.Println("\nShape check (paper): unicast egress grows linearly with collectors")
	fmt.Println("(370.4 Kbps at 64 in the paper's testbed); Elmo stays constant at one")
	fmt.Println("copy's worth (5.8 Kbps there).")
}
