// Command failover demonstrates Elmo's §3.3 failure handling: a
// cross-pod multicast group keeps delivering while spines and cores
// fail, because the controller disables multipathing for affected
// groups and pins explicit upstream ports chosen by greedy set cover —
// updating only sender hypervisors, never network switches.
package main

import (
	"fmt"
	"log"

	"elmo"
)

func main() {
	cl, err := elmo.NewCluster(elmo.PaperExampleTopology(), elmo.DefaultConfig(0))
	if err != nil {
		log.Fatal(err)
	}

	// A group spanning three pods.
	key := elmo.GroupKey{Tenant: 3, Group: 5}
	members := map[elmo.HostID]elmo.Role{
		0: elmo.RoleBoth, 17: elmo.RoleReceiver, 40: elmo.RoleReceiver, 56: elmo.RoleReceiver,
	}
	if err := cl.CreateGroup(key, members); err != nil {
		log.Fatal(err)
	}
	check := func(stage string) {
		d, err := cl.Send(0, key, []byte("heartbeat"))
		if err != nil {
			log.Fatalf("%s: %v", stage, err)
		}
		before := cl.Ctrl.Stats().Core
		fmt.Printf("%-34s delivered=%d lost=%d dup=%d core-switch updates so far=%d\n",
			stage, len(d.Received), d.Lost, d.Duplicates, before)
		if len(d.Received) != 3 || d.Lost != 0 {
			log.Fatalf("%s: delivery degraded: %s", stage, d)
		}
	}

	check("healthy fabric:")

	// Fail one spine in the sender's pod.
	if _, err := cl.FailSpine(0); err != nil {
		log.Fatal(err)
	}
	check("spine 0 (pod 0, plane 0) failed:")

	// Additionally fail a core in the surviving plane's sibling.
	if _, err := cl.FailCore(2); err != nil {
		log.Fatal(err)
	}
	check("core 2 (plane 1) also failed:")

	// Repair everything; multipath resumes.
	if _, err := cl.RepairSpine(0); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.RepairCore(2); err != nil {
		log.Fatal(err)
	}
	check("fabric repaired:")

	hdr, err := cl.Ctrl.HeaderFor(key, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sender 0 header after repair: multipath=%v (upstream rules ride the ECMP fabric again)\n",
		hdr.ULeaf.Multipath)
	fmt.Println("note: core-switch update count stayed 0 throughout — Elmo never programs cores.")
}
