// Command marketdata emulates the paper's headline enterprise workload
// (§1: "financial services … stock tickers and trading workloads"): a
// market-data feed handler multicasts ticks for several symbols to
// subscriber desks over the live (concurrent, wire-level) Elmo fabric,
// with in-band telemetry tracing the replication paths.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/livefabric"
	"elmo/internal/topology"
)

// tick is a 16-byte market-data record.
type tick struct {
	Symbol uint32
	Seq    uint32
	Price  uint64 // micro-dollars
}

func (t tick) marshal() []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint32(b[0:], t.Symbol)
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint64(b[8:], t.Price)
	return b
}

func parseTick(b []byte) (tick, error) {
	if len(b) < 16 {
		return tick{}, fmt.Errorf("short tick")
	}
	return tick{
		Symbol: binary.BigEndian.Uint32(b[0:]),
		Seq:    binary.BigEndian.Uint32(b[4:]),
		Price:  binary.BigEndian.Uint64(b[8:]),
	}, nil
}

func main() {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(2)
	cfg.EnableINT = true // trace replication paths (§7 Monitoring)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	lf := livefabric.New(base, livefabric.DefaultConfig())

	// One multicast group per symbol; the feed handler runs on host 0,
	// desks subscribe across pods.
	symbols := []string{"ACME", "GLOBEX", "INITECH"}
	desks := [][]topology.HostID{
		{1, 8, 40, 56},  // ACME desks
		{9, 17, 41, 57}, // GLOBEX desks
		{2, 18, 49, 63}, // INITECH desks
	}
	feed := topology.HostID(0)
	for i := range symbols {
		key := controller.GroupKey{Tenant: 42, Group: uint32(i + 1)}
		members := map[topology.HostID]controller.Role{feed: controller.RoleSender}
		for _, d := range desks[i] {
			members[d] = controller.RoleReceiver
		}
		if _, err := ctrl.CreateGroup(key, members); err != nil {
			log.Fatal(err)
		}
		if _, err := lf.InstallGroup(ctrl, key); err != nil {
			log.Fatal(err)
		}
	}

	lf.Start()
	defer lf.Stop()

	// Desk goroutines: consume ticks, track last price per symbol.
	var wg sync.WaitGroup
	const ticksPerSymbol = 200
	type deskReport struct {
		host  topology.HostID
		count int
		last  tick
		hops  int
	}
	reports := make(chan deskReport, 16)
	allDesks := map[topology.HostID]bool{}
	for _, ds := range desks {
		for _, d := range ds {
			allDesks[d] = true
		}
	}
	for d := range allDesks {
		wg.Add(1)
		go func(h topology.HostID) {
			defer wg.Done()
			r := deskReport{host: h}
			timeout := time.After(10 * time.Second)
			for r.count < ticksPerSymbol {
				select {
				case p := <-lf.HostRx(h):
					tk, err := parseTick(p.Inner)
					if err != nil {
						log.Printf("desk %d: %v", h, err)
						return
					}
					r.count++
					r.last = tk
					r.hops = len(p.Telemetry)
				case <-timeout:
					reports <- r
					return
				}
			}
			reports <- r
		}(d)
	}

	// The feed handler publishes interleaved ticks for all symbols.
	rng := rand.New(rand.NewSource(7))
	prices := []uint64{101_500_000, 88_250_000, 12_750_000}
	start := time.Now()
	for seq := 0; seq < ticksPerSymbol; seq++ {
		for i := range symbols {
			prices[i] += uint64(rng.Intn(20_001)) - 10_000
			tk := tick{Symbol: uint32(i), Seq: uint32(seq), Price: prices[i]}
			addr := dataplane.GroupAddr{VNI: 42, Group: uint32(i + 1)}
			if err := lf.Send(feed, addr, tk.marshal()); err != nil {
				log.Fatal(err)
			}
		}
	}
	elapsed := time.Since(start)

	wg.Wait()
	close(reports)
	fmt.Printf("published %d ticks across %d symbols in %v (%.0f ticks/s, one send per tick)\n",
		3*ticksPerSymbol, len(symbols), elapsed.Round(time.Millisecond),
		float64(3*ticksPerSymbol)/elapsed.Seconds())
	for r := range reports {
		fmt.Printf("  desk host %-2d received %3d ticks; last %s @ $%.4f seq=%d; replication path %d hops\n",
			r.host, r.count, symbols[r.last.Symbol], float64(r.last.Price)/1e6, r.last.Seq, r.hops)
		if r.count != ticksPerSymbol {
			log.Fatalf("desk %d missed ticks: %d/%d", r.host, r.count, ticksPerSymbol)
		}
	}

	// Show one replication trace via INT.
	addr := dataplane.GroupAddr{VNI: 42, Group: 1}
	if err := lf.Send(feed, addr, tick{Symbol: 0, Seq: 9999, Price: 1}.marshal()); err != nil {
		log.Fatal(err)
	}
	select {
	case p := <-lf.HostRx(56):
		fmt.Printf("INT trace to host 56: ")
		for i, rec := range p.Telemetry {
			if i > 0 {
				fmt.Print(" -> ")
			}
			tier := map[uint8]string{header.INTTierLeaf: "leaf", header.INTTierSpine: "spine", header.INTTierCore: "core"}[rec.Tier]
			fmt.Printf("%s %d", tier, rec.ID)
		}
		fmt.Println()
	case <-time.After(5 * time.Second):
		log.Fatal("trace packet lost")
	}
	fmt.Println("done: every desk received every tick of its symbol, one network copy per tick.")
}
