package rsm

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"elmo/internal/topology"
)

// TestCommandRoundTripProperty checks Marshal∘UnmarshalCommand is the
// identity over randomly generated valid commands.
func TestCommandRoundTripProperty(t *testing.T) {
	gen := func(r *rand.Rand) Command {
		c := Command{Op: Op(1 + r.Intn(3))}
		if r.Intn(2) == 0 {
			c.Epoch = r.Uint64()
		}
		k := make([]byte, r.Intn(64))
		v := make([]byte, r.Intn(256))
		r.Read(k)
		r.Read(v)
		c.Key, c.Value = string(k), string(v)
		return c
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(gen(r))
		},
	}
	prop := func(c Command) bool {
		b, err := c.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalCommand(b)
		if err != nil {
			return false
		}
		if got != c {
			return false
		}
		// Re-encoding is byte-stable.
		b2, err := got.Marshal()
		return err == nil && bytes.Equal(b, b2)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalCommandStrict(t *testing.T) {
	valid, err := Command{Op: OpSet, Key: "k", Value: "v"}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"empty":       {},
		"short":       {byte(OpSet), 0, 0},
		"unknown op":  {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"op too high": {4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"key overrun": {byte(OpSet), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 'k'},
		"val overrun": {byte(OpSet), 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 'k', 0xff, 0xff},
		"trailing":    append(append([]byte{}, valid...), 0xaa),
	}
	for name, b := range bad {
		if _, err := UnmarshalCommand(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	big := string(make([]byte, 0x10000))
	if _, err := (Command{Op: OpSet, Key: big}).Marshal(); err == nil {
		t.Fatal("oversize key accepted")
	}
	if _, err := (Command{Op: OpSet, Value: big}).Marshal(); err == nil {
		t.Fatal("oversize value accepted")
	}
	if _, err := (Command{Op: 9}).Marshal(); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestProposeApplyStreamsToAppliers replicates opaque payloads
// through a cluster and checks every follower's applier hook sees them
// in order.
func TestProposeApplyStreamsToAppliers(t *testing.T) {
	c := rsmFixture(t, 8)
	got := map[int][][]byte{}
	i := 0
	for _, h := range []int{8, 17, 40, 56} {
		idx := i
		c.Replica(topology.HostID(h)).SetApplier(func(_ uint64, p []byte) error {
			got[idx] = append(got[idx], append([]byte(nil), p...))
			return nil
		})
		i++
	}
	want := [][]byte{[]byte("one"), {0x00, 0xff, 0x00}, []byte("three")}
	for _, p := range want {
		if err := c.ProposeApply(p); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave a KV command: appliers must not see it.
	if err := c.Propose(Command{Op: OpSet, Key: "k", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	for idx, stream := range got {
		if len(stream) != len(want) {
			t.Fatalf("follower %d saw %d payloads, want %d", idx, len(stream), len(want))
		}
		for j := range want {
			if !bytes.Equal(stream[j], want[j]) {
				t.Fatalf("follower %d payload %d = %x, want %x", idx, j, stream[j], want[j])
			}
		}
	}
	if ok, why := c.Converged(); !ok {
		t.Fatalf("not converged: %s", why)
	}
}

// TestReplicaFencesStaleEpoch: once a replica has applied a command
// from epoch N, commands stamped with a lower epoch advance the log
// position but never mutate state or reach the applier — a deposed
// leader's residue is discarded, not interleaved. Epoch-0 (unfenced)
// commands stay accepted for legacy single-leader streams.
func TestReplicaFencesStaleEpoch(t *testing.T) {
	r := NewReplica(1)
	var applied [][]byte
	r.SetApplier(func(_ uint64, p []byte) error {
		applied = append(applied, append([]byte(nil), p...))
		return nil
	})
	apply := func(c Command) {
		t.Helper()
		b, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	apply(Command{Op: OpSet, Epoch: 2, Key: "k", Value: "new-leader"})
	apply(Command{Op: OpApply, Epoch: 2, Value: "payload-2"})
	// Stale term: discarded but the log position still advances.
	apply(Command{Op: OpSet, Epoch: 1, Key: "k", Value: "old-leader"})
	apply(Command{Op: OpApply, Epoch: 1, Value: "stale-payload"})
	// Unfenced legacy command: accepted.
	apply(Command{Op: OpSet, Key: "legacy", Value: "ok"})

	if v, _ := r.Get("k"); v != "new-leader" {
		t.Fatalf("k = %q, stale write applied", v)
	}
	if v, _ := r.Get("legacy"); v != "ok" {
		t.Fatalf("legacy = %q", v)
	}
	if len(applied) != 1 || string(applied[0]) != "payload-2" {
		t.Fatalf("applier saw %q, want only payload-2", applied)
	}
	if r.Fenced() != 2 {
		t.Fatalf("Fenced = %d, want 2", r.Fenced())
	}
	if r.Applied() != 5 {
		t.Fatalf("Applied = %d, want 5 (fenced commands advance the log)", r.Applied())
	}
	if r.Epoch() != 2 {
		t.Fatalf("Epoch = %d, want 2", r.Epoch())
	}
}

// FuzzUnmarshalCommand asserts the decoder never panics and that any
// input it accepts re-encodes to exactly the input bytes (a decoded
// command is always canonical under the strict format).
func FuzzUnmarshalCommand(f *testing.F) {
	seeds := []Command{
		{Op: OpSet, Key: "k", Value: "v"},
		{Op: OpDelete, Key: "gone"},
		{Op: OpApply, Value: "\x00\x01\x02opaque wal record"},
		{Op: OpSet},
		{Op: OpApply, Epoch: 7, Value: "fenced wal record"},
		{Op: OpSet, Epoch: 1<<64 - 1, Key: "max-term", Value: "v"},
	}
	for _, c := range seeds {
		b, err := c.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(OpSet), 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := UnmarshalCommand(b)
		if err != nil {
			return
		}
		out, err := c.Marshal()
		if err != nil {
			t.Fatalf("decoded command fails to re-encode: %v", err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("not canonical: in=%x out=%x", b, out)
		}
	})
}
