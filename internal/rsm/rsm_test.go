package rsm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

func rsmFixture(t *testing.T, window int) *Cluster {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	c, err := NewCluster(ctrl, fab, controller.GroupKey{Tenant: 12, Group: 1},
		0, []topology.HostID{8, 17, 40, 56}, window)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCommandRoundTrip(t *testing.T) {
	cases := []Command{
		{Op: OpSet, Key: "a", Value: "1"},
		{Op: OpSet, Key: "", Value: ""},
		{Op: OpDelete, Key: "gone"},
	}
	for _, c := range cases {
		b, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalCommand(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("roundtrip %+v != %+v", got, c)
		}
	}
	if _, err := (Command{Op: 9}).Marshal(); err == nil {
		t.Fatal("bad op marshaled")
	}
	for _, b := range [][]byte{nil, {1}, {1, 0, 5, 'a'}, {9, 0, 0, 0, 0}} {
		if _, err := UnmarshalCommand(b); err == nil {
			t.Fatalf("malformed command %v accepted", b)
		}
	}
}

func TestReplicationConverges(t *testing.T) {
	c := rsmFixture(t, 64)
	for i := 0; i < 30; i++ {
		if err := c.Propose(Command{Op: OpSet, Key: fmt.Sprintf("k%d", i%7), Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Propose(Command{Op: OpDelete, Key: "k3"}); err != nil {
		t.Fatal(err)
	}
	ok, why := c.Converged()
	if !ok {
		t.Fatal(why)
	}
	r := c.Replica(8)
	if v, ok := r.Get("k6"); !ok || v != "v27" {
		t.Fatalf("k6 = %q,%v", v, ok)
	}
	if _, ok := r.Get("k3"); ok {
		t.Fatal("k3 survived delete")
	}
}

func TestReplicationConvergesUnderLoss(t *testing.T) {
	c := rsmFixture(t, 256)
	rng := rand.New(rand.NewSource(3))
	c.Session().LossInjector = func(h topology.HostID, seq uint32) bool {
		return rng.Float64() < 0.3
	}
	for i := 0; i < 50; i++ {
		if err := c.Propose(Command{Op: OpSet, Key: fmt.Sprintf("k%d", i%5), Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	ok, why := c.Converged()
	if !ok {
		t.Fatal(why)
	}
	if c.Session().NAKs == 0 {
		t.Fatal("30% loss should have triggered repairs")
	}
}

func TestQuickLinearizableHistory(t *testing.T) {
	// Property: replicas equal a reference map applied in proposal
	// order, under random command streams and random loss.
	f := func(seed int64) bool {
		topo := topology.MustNew(topology.PaperExample())
		cfg := controller.PaperConfig(0)
		ctrl, err := controller.New(topo, cfg)
		if err != nil {
			return false
		}
		fab := fabric.New(topo, cfg.SRuleCapacity)
		fab.SetFailures(ctrl.Failures())
		c, err := NewCluster(ctrl, fab, controller.GroupKey{Tenant: 12, Group: 2},
			0, []topology.HostID{8, 40}, 256)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		c.Session().LossInjector = func(h topology.HostID, seq uint32) bool {
			return rng.Float64() < 0.25
		}
		ref := make(map[string]string)
		n := rng.Intn(40) + 1
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(6))
			if rng.Intn(4) == 0 {
				delete(ref, key)
				if err := c.Propose(Command{Op: OpDelete, Key: key}); err != nil {
					return false
				}
			} else {
				val := fmt.Sprintf("v%d", i)
				ref[key] = val
				if err := c.Propose(Command{Op: OpSet, Key: key, Value: val}); err != nil {
					return false
				}
			}
		}
		if err := c.Sync(); err != nil {
			return false
		}
		if ok, _ := c.Converged(); !ok {
			return false
		}
		r := c.Replica(8)
		for k, v := range ref {
			if got, ok := r.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderCannotFollow(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, _ := controller.New(topo, cfg)
	fab := fabric.New(topo, cfg.SRuleCapacity)
	if _, err := NewCluster(ctrl, fab, controller.GroupKey{Tenant: 12, Group: 3},
		0, []topology.HostID{0, 8}, 8); err == nil {
		t.Fatal("leader-as-follower accepted")
	}
}
