// Package rsm implements a leader-based replicated state machine — one
// of the paper's motivating one-to-many workloads (§1: "replicated
// state machines", citing Paxos and Speculative Paxos). A leader
// sequences commands and replicates them to follower replicas over
// Elmo multicast with the PGM-style reliable layer providing gap
// repair and in-order delivery; every replica applies the same command
// sequence and therefore reaches the same state.
//
// This is deliberately the NOPaxos/Speculative-Paxos deployment shape
// the paper alludes to: the network's multicast does the fan-out (one
// copy per link instead of one unicast stream per replica), and the
// application layers ordering/recovery on top.
package rsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/reliable"
	"elmo/internal/topology"
)

// Op is a state-machine command type.
type Op uint8

const (
	// OpSet stores Key=Value.
	OpSet Op = 1
	// OpDelete removes Key.
	OpDelete Op = 2
	// OpApply carries an opaque payload in Value for the replica's
	// applier hook (SetApplier). This is how the durable controller
	// streams WAL records to warm followers: the RSM provides ordered
	// reliable fan-out, the applier interprets the bytes.
	OpApply Op = 3
)

func validOp(op Op) bool { return op == OpSet || op == OpDelete || op == OpApply }

// Command is one replicated state-machine command. Epoch is the
// leadership term of the proposer: replicas remember the highest epoch
// they have applied and silently discard commands from a lower one, so
// a deposed leader's in-flight stream cannot be interleaved with the
// new leader's. Epoch 0 is unfenced (legacy / single-leader use).
type Command struct {
	Op    Op
	Epoch uint64
	Key   string
	Value string
}

// Marshal encodes the command: op(1) | epoch(8) | length-prefixed
// key and value.
func (c Command) Marshal() ([]byte, error) {
	if !validOp(c.Op) {
		return nil, fmt.Errorf("rsm: unknown op %d", c.Op)
	}
	if len(c.Key) > 0xffff || len(c.Value) > 0xffff {
		return nil, fmt.Errorf("rsm: key/value too long")
	}
	b := make([]byte, 0, 13+len(c.Key)+len(c.Value))
	b = append(b, byte(c.Op))
	b = binary.BigEndian.AppendUint64(b, c.Epoch)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.Key)))
	b = append(b, c.Key...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.Value)))
	b = append(b, c.Value...)
	return b, nil
}

// UnmarshalCommand decodes a command. It is strict: every byte of b
// must be consumed, so Marshal∘UnmarshalCommand is the identity on
// valid commands and any framing slip (trailing garbage, truncation)
// surfaces as an error instead of silent data loss.
func UnmarshalCommand(b []byte) (Command, error) {
	var c Command
	if len(b) < 13 {
		return c, fmt.Errorf("rsm: short command")
	}
	c.Op = Op(b[0])
	if !validOp(c.Op) {
		return c, fmt.Errorf("rsm: unknown op %d", c.Op)
	}
	c.Epoch = binary.BigEndian.Uint64(b[1:])
	kl := int(binary.BigEndian.Uint16(b[9:]))
	if 11+kl+2 > len(b) {
		return c, fmt.Errorf("rsm: truncated key")
	}
	c.Key = string(b[11 : 11+kl])
	vl := int(binary.BigEndian.Uint16(b[11+kl:]))
	if 13+kl+vl > len(b) {
		return c, fmt.Errorf("rsm: truncated value")
	}
	if 13+kl+vl != len(b) {
		return c, fmt.Errorf("rsm: %d trailing bytes after command", len(b)-(13+kl+vl))
	}
	c.Value = string(b[13+kl : 13+kl+vl])
	return c, nil
}

// Replica is one state machine instance: a key-value store built by
// applying the leader's command log in order, plus an optional applier
// hook that receives OpApply payloads.
type Replica struct {
	host    topology.HostID
	store   map[string]string
	applied int
	epoch   uint64 // highest epoch applied; lower-epoch commands are fenced
	fenced  int
	applier func(epoch uint64, payload []byte) error
}

// NewReplica creates an empty replica for a host.
func NewReplica(host topology.HostID) *Replica {
	return &Replica{host: host, store: make(map[string]string)}
}

// SetApplier installs the hook invoked (in log order) for every
// OpApply command's payload, along with the proposer's epoch. Without
// a hook, OpApply commands advance the log position but are otherwise
// ignored — a replica that only cares about the KV portion of a mixed
// stream stays consistent.
func (r *Replica) SetApplier(fn func(epoch uint64, payload []byte) error) { r.applier = fn }

// Apply executes one command payload (called in log order). A command
// stamped with a lower epoch than the highest this replica has seen is
// a deposed leader's residue: it advances the log position but is
// never applied (counted in Fenced).
func (r *Replica) Apply(payload []byte) error {
	c, err := UnmarshalCommand(payload)
	if err != nil {
		return err
	}
	if c.Epoch != 0 {
		if c.Epoch < r.epoch {
			r.fenced++
			r.applied++
			return nil
		}
		r.epoch = c.Epoch
	}
	switch c.Op {
	case OpSet:
		r.store[c.Key] = c.Value
	case OpDelete:
		delete(r.store, c.Key)
	case OpApply:
		if r.applier != nil {
			if err := r.applier(c.Epoch, []byte(c.Value)); err != nil {
				return fmt.Errorf("rsm: applier: %w", err)
			}
		}
	}
	r.applied++
	return nil
}

// Epoch reports the highest leadership epoch this replica has applied
// a command from (0 if only unfenced commands were seen).
func (r *Replica) Epoch() uint64 { return r.epoch }

// Fenced reports how many stale-epoch commands were discarded.
func (r *Replica) Fenced() int { return r.fenced }

// Get reads a key.
func (r *Replica) Get(key string) (string, bool) {
	v, ok := r.store[key]
	return v, ok
}

// Applied reports the number of commands applied.
func (r *Replica) Applied() int { return r.applied }

// Fingerprint returns a canonical rendering of the state, used to
// compare replicas for convergence.
func (r *Replica) Fingerprint() string {
	keys := make([]string, 0, len(r.store))
	for k := range r.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "=" + r.store[k] + ";"
	}
	return out
}

// Cluster is a leader plus follower replicas bound to one multicast
// group on a fabric.
type Cluster struct {
	session  *reliable.Session
	leader   topology.HostID
	replicas map[topology.HostID]*Replica
	// Proposed counts commands the leader has sequenced.
	Proposed int
}

// NewCluster creates the group (leader sends, replicas receive),
// installs it, and builds the replication session.
func NewCluster(ctrl *controller.Controller, fab *fabric.Fabric, key controller.GroupKey, leader topology.HostID, followers []topology.HostID, window int) (*Cluster, error) {
	members := map[topology.HostID]controller.Role{leader: controller.RoleSender}
	for _, f := range followers {
		if f == leader {
			return nil, fmt.Errorf("rsm: leader cannot be a follower")
		}
		members[f] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		return nil, err
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		return nil, err
	}
	sess, err := reliable.NewSession(fab, ctrl, key, leader, window)
	if err != nil {
		return nil, err
	}
	c := &Cluster{session: sess, leader: leader, replicas: make(map[topology.HostID]*Replica, len(followers))}
	for _, f := range followers {
		c.replicas[f] = NewReplica(f)
	}
	return c, nil
}

// Session exposes the underlying reliable session (e.g. to inject loss
// in tests).
func (c *Cluster) Session() *reliable.Session { return c.session }

// Propose replicates one command. Followers apply everything the
// reliable layer delivers in order.
func (c *Cluster) Propose(cmd Command) error {
	payload, err := cmd.Marshal()
	if err != nil {
		return err
	}
	if err := c.session.Publish(payload); err != nil {
		return err
	}
	c.Proposed++
	return c.drain()
}

// ProposeApply replicates an opaque payload as an OpApply command.
// Followers hand it to their applier hook (SetApplier) in log order.
func (c *Cluster) ProposeApply(payload []byte) error {
	return c.Propose(Command{Op: OpApply, Value: string(payload)})
}

// ProposeApplyAt is ProposeApply with the proposer's leadership epoch
// stamped on the command, arming the replicas' fencing.
func (c *Cluster) ProposeApplyAt(epoch uint64, payload []byte) error {
	return c.Propose(Command{Op: OpApply, Epoch: epoch, Value: string(payload)})
}

// Sync forces a final repair round (tail-loss recovery) and applies
// everything outstanding.
func (c *Cluster) Sync() error {
	if err := c.session.Flush(); err != nil {
		return err
	}
	return c.drain()
}

// drain applies newly delivered payloads to each replica.
func (c *Cluster) drain() error {
	for h, r := range c.replicas {
		delivered := c.session.Delivered(h)
		for r.applied < len(delivered) {
			if err := r.Apply(delivered[r.applied]); err != nil {
				return fmt.Errorf("rsm: replica %d: %w", h, err)
			}
		}
	}
	return nil
}

// Replica returns a follower's state machine.
func (c *Cluster) Replica(h topology.HostID) *Replica { return c.replicas[h] }

// Converged reports whether every replica has applied every proposed
// command and all fingerprints agree.
func (c *Cluster) Converged() (bool, string) {
	var want string
	first := true
	for _, r := range c.replicas {
		if r.Applied() != c.Proposed {
			return false, fmt.Sprintf("replica %d applied %d of %d", r.host, r.Applied(), c.Proposed)
		}
		fp := r.Fingerprint()
		if first {
			want, first = fp, false
		} else if fp != want {
			return false, "fingerprint divergence"
		}
	}
	return true, ""
}
