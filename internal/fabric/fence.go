package fabric

import (
	"crypto/sha256"
	"fmt"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

// Fabric-level leadership fencing. The durable controller stamps every
// data-plane install with its epoch; each device fences lower epochs
// (see dataplane/fence.go). The fabric adds two pieces: epoch-stamped
// variants of the group install/uninstall walks, and AnnounceEpoch —
// the takeover broadcast a freshly promoted leader sends so EVERY
// device fences its predecessor immediately, not just the devices the
// new leader happens to touch first. Without the announcement a
// deposed leader could still slip installs onto devices the successor
// had not yet written to.

// InstallGroupAt is InstallGroup with the controller's leadership
// epoch stamped on every device message. The first device that fences
// the epoch aborts the walk with its *dataplane.StaleEpochError — the
// caller is a deposed leader and should stand down, not keep writing.
func (f *Fabric) InstallGroupAt(epoch uint64, ctrl *controller.Controller, key controller.GroupKey) (noPath []topology.HostID, err error) {
	g := ctrl.Group(key)
	if g == nil {
		return nil, fmt.Errorf("fabric: group %v not found", key)
	}
	a := addr(key)
	for leaf, bm := range g.Enc.LeafSRules {
		if err := f.Leaves[leaf].InstallSRuleAt(epoch, a, bm); err != nil {
			return nil, err
		}
	}
	for pod, bm := range g.Enc.SpineSRules {
		for plane := 0; plane < f.topo.Config().SpinesPerPod; plane++ {
			if err := f.Spines[f.topo.SpineAt(pod, plane)].InstallSRuleAt(epoch, a, bm); err != nil {
				return nil, err
			}
		}
	}
	for _, h := range g.Receivers() {
		if err := f.Hypervisors[h].SetReceivingAt(epoch, a, true); err != nil {
			return nil, err
		}
	}
	for _, h := range g.Senders() {
		hdr, err := ctrl.HeaderFor(key, h)
		if err == controller.ErrNoPath || err == controller.ErrLegacyPath {
			noPath = append(noPath, h)
			continue
		}
		if err != nil {
			return nil, err
		}
		if err := f.Hypervisors[h].InstallSenderFlowAt(epoch, a, hdr); err != nil {
			return nil, err
		}
	}
	return noPath, nil
}

// UninstallGroupAt is UninstallGroup behind the epoch fence.
func (f *Fabric) UninstallGroupAt(epoch uint64, ctrl *controller.Controller, key controller.GroupKey) error {
	g := ctrl.Group(key)
	if g == nil {
		return fmt.Errorf("fabric: group %v not found", key)
	}
	a := addr(key)
	for leaf := range g.Enc.LeafSRules {
		if err := f.Leaves[leaf].RemoveSRuleAt(epoch, a); err != nil {
			return err
		}
	}
	for pod := range g.Enc.SpineSRules {
		for plane := 0; plane < f.topo.Config().SpinesPerPod; plane++ {
			if err := f.Spines[f.topo.SpineAt(pod, plane)].RemoveSRuleAt(epoch, a); err != nil {
				return err
			}
		}
	}
	for h := range g.Members {
		if err := f.Hypervisors[h].SetReceivingAt(epoch, a, false); err != nil {
			return err
		}
		if err := f.Hypervisors[h].RemoveSenderFlowAt(epoch, a); err != nil {
			return err
		}
	}
	return nil
}

// AnnounceEpoch raises every device's epoch floor to epoch — the first
// thing a freshly promoted controller does, before reinstalling any
// state, so a deposed leader's in-flight writes are rejected fabric-
// wide from this point on.
func (f *Fabric) AnnounceEpoch(epoch uint64) {
	for _, sw := range f.Leaves {
		sw.Fence().Observe(epoch)
	}
	for _, sw := range f.Spines {
		sw.Fence().Observe(epoch)
	}
	for _, sw := range f.Cores {
		sw.Fence().Observe(epoch)
	}
	for _, hv := range f.Hypervisors {
		hv.Fence().Observe(epoch)
	}
}

// FencingRejections sums the stale-epoch rejections across every
// device (the in-process view of elmo_fencing_rejected_total).
func (f *Fabric) FencingRejections() int64 {
	var n int64
	for _, sw := range f.Leaves {
		n += sw.Fence().Rejected()
	}
	for _, sw := range f.Spines {
		n += sw.Fence().Rejected()
	}
	for _, sw := range f.Cores {
		n += sw.Fence().Rejected()
	}
	for _, hv := range f.Hypervisors {
		n += hv.Fence().Rejected()
	}
	return n
}

// Fingerprint hashes the complete data-plane forwarding state — every
// switch group table and every hypervisor flow/filter table, in
// deterministic device order. Two fabrics with equal fingerprints
// forward identically; the partition soak compares this against the
// controllers' state fingerprints after heal.
func (f *Fabric) Fingerprint() [32]byte {
	h := sha256.New()
	stamp := func(tier byte, id int, sw *dataplane.NetworkSwitch) {
		h.Write([]byte{tier, byte(id >> 8), byte(id)})
		sw.WriteStateDigest(h)
	}
	for i, sw := range f.Leaves {
		stamp('l', i, sw)
	}
	for i, sw := range f.Spines {
		stamp('s', i, sw)
	}
	for i, sw := range f.Cores {
		stamp('c', i, sw)
	}
	for i, hv := range f.Hypervisors {
		h.Write([]byte{'h', byte(i >> 8), byte(i)})
		hv.WriteStateDigest(h)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}
