package fabric

import (
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// This file provides encoding-level install/uninstall, used by the
// streaming experiment harness: the §5.1 simulation computes millions
// of group encodings without retaining controller state, installing
// each group into the fabric only for the duration of its measurement.

// InstallEncoding pushes one group's s-rules and receiver filters into
// the data plane directly from its encoding.
func (f *Fabric) InstallEncoding(a dataplane.GroupAddr, enc *controller.Encoding, receivers []topology.HostID) error {
	for leaf, bm := range enc.LeafSRules {
		if err := f.Leaves[leaf].InstallSRule(a, bm); err != nil {
			return err
		}
	}
	for pod, bm := range enc.SpineSRules {
		for plane := 0; plane < f.topo.Config().SpinesPerPod; plane++ {
			if err := f.Spines[f.topo.SpineAt(pod, plane)].InstallSRule(a, bm); err != nil {
				return err
			}
		}
	}
	for _, h := range receivers {
		f.Hypervisors[h].SetReceiving(a, true)
	}
	return nil
}

// UninstallEncoding reverses InstallEncoding.
func (f *Fabric) UninstallEncoding(a dataplane.GroupAddr, enc *controller.Encoding, receivers []topology.HostID) {
	for leaf := range enc.LeafSRules {
		f.Leaves[leaf].RemoveSRule(a)
	}
	for pod := range enc.SpineSRules {
		for plane := 0; plane < f.topo.Config().SpinesPerPod; plane++ {
			f.Spines[f.topo.SpineAt(pod, plane)].RemoveSRule(a)
		}
	}
	for _, h := range receivers {
		f.Hypervisors[h].SetReceiving(a, false)
	}
}

// InstallSenderHeader installs a precomputed header as the sender's
// flow for the group.
func (f *Fabric) InstallSenderHeader(a dataplane.GroupAddr, sender topology.HostID, h *header.Header) error {
	return f.Hypervisors[sender].InstallSenderFlow(a, h)
}

// RemoveSenderHeader removes the sender flow.
func (f *Fabric) RemoveSenderHeader(a dataplane.GroupAddr, sender topology.HostID) {
	f.Hypervisors[sender].RemoveSenderFlow(a)
}
