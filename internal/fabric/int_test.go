package fabric

import (
	"testing"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// TestINTEndToEnd validates the §7 Monitoring extension: with INT
// enabled, every delivered copy carries the exact switch path it took,
// and the path is a valid walk of the Clos fabric.
func TestINTEndToEnd(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.EnableINT = true
	ctrl, f := setup(t, topo, cfg)
	key := controller.GroupKey{Tenant: 6, Group: 1}
	hosts := figure3Hosts()
	installGroup(t, ctrl, f, key, hosts)

	sender := topology.HostID(0)
	d, err := f.Send(sender, dataplane.GroupAddr{VNI: 6, Group: 1}, []byte("trace me"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 {
		t.Fatalf("delivery = %s", d)
	}
	if len(d.Telemetry) != len(d.Received) {
		t.Fatalf("telemetry for %d of %d receivers", len(d.Telemetry), len(d.Received))
	}
	for h, path := range d.Telemetry {
		if len(path) < 1 {
			t.Fatalf("host %d: empty path", h)
		}
		// First hop is always the sender's leaf.
		if path[0].Tier != header.INTTierLeaf || path[0].ID != uint16(topo.HostLeaf(sender)) {
			t.Fatalf("host %d: path starts at %+v, want sender leaf", h, path[0])
		}
		// Last hop is the receiver's leaf.
		last := path[len(path)-1]
		if last.Tier != header.INTTierLeaf || last.ID != uint16(topo.HostLeaf(h)) {
			t.Fatalf("host %d: path ends at %+v, want its leaf %d", h, last, topo.HostLeaf(h))
		}
		// Tiers follow leaf (, spine (, core, spine)?, leaf)? order and
		// TTL metadata strictly decreases.
		for i := 1; i < len(path); i++ {
			if path[i].Meta >= path[i-1].Meta {
				t.Fatalf("host %d: TTL metadata not decreasing: %+v", h, path)
			}
		}
		// Cross-pod receivers must show a core hop.
		if topo.HostPod(h) != topo.HostPod(sender) {
			foundCore := false
			for _, rec := range path {
				if rec.Tier == header.INTTierCore {
					foundCore = true
				}
			}
			if !foundCore {
				t.Fatalf("host %d (other pod): no core hop in %+v", h, path)
			}
		}
	}
}

// TestINTDisabledByDefault: without EnableINT no telemetry is carried
// and headers stay smaller.
func TestINTDisabledByDefault(t *testing.T) {
	topo := paperTopo()
	ctrl, f := setup(t, topo, testConfig(0))
	key := controller.GroupKey{Tenant: 6, Group: 2}
	installGroup(t, ctrl, f, key, figure3Hosts())
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 6, Group: 2}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Telemetry != nil {
		t.Fatalf("telemetry present without INT: %v", d.Telemetry)
	}
}

// TestINTTrafficCost: INT grows each in-flight copy by 4 bytes per hop
// — measurable but small against the p-rule savings.
func TestINTTrafficCost(t *testing.T) {
	topo := paperTopo()
	plain, fp := setup(t, topo, testConfig(0))
	intCfg := testConfig(0)
	intCfg.EnableINT = true
	traced, ft := setup(t, topo, intCfg)
	key := controller.GroupKey{Tenant: 6, Group: 3}
	installGroup(t, plain, fp, key, figure3Hosts())
	installGroup(t, traced, ft, key, figure3Hosts())
	dp, err := fp.Send(0, dataplane.GroupAddr{VNI: 6, Group: 3}, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	dt, err := ft.Send(0, dataplane.GroupAddr{VNI: 6, Group: 3}, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if dt.LinkBytes <= dp.LinkBytes {
		t.Fatalf("INT bytes %d should exceed plain %d", dt.LinkBytes, dp.LinkBytes)
	}
	// Each link carries the accumulated section (2 B framing + 4 B per
	// hop so far), so the total cost is O(hops * path length).
	if dt.LinkBytes > dp.LinkBytes+30*dt.Hops+30 {
		t.Fatalf("INT cost implausibly high: %d vs %d over %d hops", dt.LinkBytes, dp.LinkBytes, dt.Hops)
	}
}
