package fabric

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// tracedSetup is setup plus an enabled flight recorder on both the
// controller and the fabric.
func tracedSetup(t *testing.T, cfg controller.Config) (*controller.Controller, *Fabric, *trace.FlightRecorder) {
	t.Helper()
	ctrl, f := setup(t, paperTopo(), cfg)
	rec := trace.New(trace.Config{})
	rec.Enable()
	ctrl.SetTracer(rec)
	f.SetTracer(rec)
	return ctrl, f, rec
}

func mustContain(t *testing.T, rendered string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(rendered, w) {
			t.Fatalf("rendered path missing %q:\n%s", w, rendered)
		}
	}
}

// TestTracePathFigure3 records the paper's Fig. 3 group send on the
// synchronous fabric and checks the rendered path names the exact
// switches traversed and the rule kind that matched at each.
func TestTracePathFigure3(t *testing.T) {
	ctrl, f, rec := tracedSetup(t, testConfig(0))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())

	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("traced"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Lost != 0 || len(d.Received) != len(figure3Hosts())-1 {
		t.Fatalf("delivery: %s", d)
	}

	rendered := trace.RenderPath(rec.Snapshot(), 1, 1)
	// The multicast tree is deterministic (ECMP is a pure flow hash):
	// leaf 0 forwards locally and up, spine 0 → core 1 fan out to pods
	// 2 and 3, spine 6 matches the s-rule the encoder spilled to, and
	// the destination leaves use their p-rule bitmaps.
	mustContain(t, rendered,
		"group vni=1 g=1: host 0",
		"leaf 0 [p-rule ports=01000000 up=10",
		"host 1 ✓",
		"spine 0 [p-rule up=01",
		"core 1 [p-rule ports=0011",
		"spine 4 [p-rule ports=01",
		"spine 6 [s-rule ports=11",
		"leaf 5 [p-rule ports=10000000",
		"host 40 ✓",
		"leaf 6 [p-rule ports=11000000",
		"host 48 ✓", "host 49 ✓",
		"leaf 7 [p-rule ports=00000001",
		"host 63 ✓",
	)
	if strings.Contains(rendered, "✗") {
		t.Fatalf("p-rule encoding should deliver without spurious copies:\n%s", rendered)
	}
}

// TestTracePathSRules forces every downstream switch onto s-rules
// (p-rule budgets of zero) and checks the rendered path reports them.
func TestTracePathSRules(t *testing.T) {
	cfg := testConfig(0)
	cfg.SpineRuleLimit = 0
	cfg.LeafRuleLimit = 0
	ctrl, f, rec := tracedSetup(t, cfg)
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())

	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("traced"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Lost != 0 || len(d.Received) != len(figure3Hosts())-1 {
		t.Fatalf("delivery: %s", d)
	}
	mustContain(t, trace.RenderPath(rec.Snapshot(), 1, 1),
		"spine 4 [s-rule ports=01]",
		"spine 6 [s-rule ports=11]",
		"leaf 5 [s-rule ports=10000000]",
		"leaf 6 [s-rule ports=11000000]",
		"leaf 7 [s-rule ports=00000001]",
	)
}

// TestTracePathDefaultRules removes both the p-rule budget and the
// s-rule capacity so downstream switches fall back to the default
// p-rule, and checks the trace shows the default matches and the
// spurious copies the hypervisors filtered (§4.1).
func TestTracePathDefaultRules(t *testing.T) {
	cfg := testConfig(0)
	cfg.SpineRuleLimit = 0
	cfg.LeafRuleLimit = 0
	cfg.SRuleCapacity = 0
	ctrl, f, rec := tracedSetup(t, cfg)
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())

	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("traced"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Lost != 0 || len(d.Received) != len(figure3Hosts())-1 {
		t.Fatalf("delivery: %s", d)
	}
	rendered := trace.RenderPath(rec.Snapshot(), 1, 1)
	mustContain(t, rendered,
		"spine 4 [default",
		"leaf 5 [default",
		"host 40 ✓",
		"host 41 ✗", // default rule floods the rack; hypervisor filters
	)
	evs := rec.Snapshot()
	var defaults, filtered int
	for _, ev := range evs {
		if ev.Kind == trace.KindHop && ev.Rule == trace.RuleDefault {
			defaults++
		}
		if ev.Kind == trace.KindFilter {
			filtered++
		}
	}
	if defaults == 0 || filtered == 0 {
		t.Fatalf("want default-rule hops and filtered copies, got %d/%d:\n%s",
			defaults, filtered, rendered)
	}
}

// TestTraceChromeExportFromSend records a real Fig. 3 send and checks
// the Chrome trace_event JSON decodes and carries at least one complete
// ("X") event per recorded hop, with the rule kind in its args.
func TestTraceChromeExportFromSend(t *testing.T) {
	ctrl, f, rec := tracedSetup(t, testConfig(0))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())
	if _, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("traced")); err != nil {
		t.Fatal(err)
	}

	evs := rec.Snapshot()
	var hops int
	for _, ev := range evs {
		if ev.Kind == trace.KindHop {
			hops++
		}
	}
	if hops < 3 {
		t.Fatalf("want a multi-hop trace, got %d hops", hops)
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			PID  int                    `json:"pid"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome JSON does not decode: %v", err)
	}
	var complete, hopEvents int
	for _, te := range file.TraceEvents {
		if te.Ph != "X" {
			continue
		}
		complete++
		if te.Args == nil {
			t.Fatalf("complete event %q missing args", te.Name)
		}
		if te.Args["kind"] == "hop" {
			hopEvents++
			if r, ok := te.Args["rule"].(string); !ok || r == "" || r == "-" {
				t.Fatalf("hop event %q missing rule kind: %v", te.Name, te.Args)
			}
		}
	}
	if complete < len(evs) {
		t.Fatalf("want %d complete events, got %d", len(evs), complete)
	}
	if hopEvents != hops {
		t.Fatalf("want %d hop events in JSON, got %d", hops, hopEvents)
	}
}

// TestTraceDisabledAddsNoAllocations checks the acceptance bar for the
// disabled path: a fabric with a disabled recorder attached allocates
// exactly as much per packet as a fabric with no recorder at all.
func TestTraceDisabledAddsNoAllocations(t *testing.T) {
	send := func(f *Fabric) func() {
		addr := dataplane.GroupAddr{VNI: 1, Group: 1}
		payload := []byte("alloc probe")
		return func() {
			if _, err := f.Send(0, addr, payload); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctrl, bare := setup(t, paperTopo(), testConfig(0))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, bare, key, figure3Hosts())
	baseline := testing.AllocsPerRun(200, send(bare))

	ctrl2, traced := setup(t, paperTopo(), testConfig(0))
	rec := trace.New(trace.Config{}) // never enabled
	ctrl2.SetTracer(rec)
	traced.SetTracer(rec)
	installGroup(t, ctrl2, traced, key, figure3Hosts())
	withDisabled := testing.AllocsPerRun(200, send(traced))

	if withDisabled != baseline {
		t.Fatalf("disabled recorder changed allocations: %.1f → %.1f per send",
			baseline, withDisabled)
	}
	if rec.Len() != 0 {
		t.Fatalf("disabled recorder captured %d events", rec.Len())
	}
}

// BenchmarkForwardTraceOff measures the fabric forward path with a
// disabled recorder attached — the overhead budget is one atomic load
// per check and zero allocations.
func BenchmarkForwardTraceOff(b *testing.B) {
	topo := paperTopo()
	ctrl, err := controller.New(topo, testConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	f := New(topo, testConfig(0).SRuleCapacity)
	f.SetFailures(ctrl.Failures())
	rec := trace.New(trace.Config{}) // attached but never enabled
	ctrl.SetTracer(rec)
	f.SetTracer(rec)

	key := controller.GroupKey{Tenant: 1, Group: 1}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range figure3Hosts() {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		b.Fatal(err)
	}
	if _, err := f.InstallGroup(ctrl, key); err != nil {
		b.Fatal(err)
	}
	addr := dataplane.GroupAddr{VNI: 1, Group: 1}
	payload := make([]byte, 256)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Send(0, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}
