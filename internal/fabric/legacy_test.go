package fabric

import (
	"testing"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

// legacySetup marks leaf 7 and pod 1 as legacy in both planes.
func legacySetup(t *testing.T) (*controller.Controller, *Fabric) {
	t.Helper()
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LegacyLeaves = []topology.LeafID{7}
	cfg.LegacyPods = []topology.PodID{1}
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := New(topo, cfg.SRuleCapacity)
	f.SetFailures(ctrl.Failures())
	f.SetLegacyLeaf(7)
	f.SetLegacyPod(1)
	return ctrl, f
}

// TestLegacyInterop reproduces the paper's incremental-deployment test
// (§7): Elmo packets traverse legacy switches through their group
// tables while modern switches keep using p-rules.
func TestLegacyInterop(t *testing.T) {
	ctrl, f := legacySetup(t)
	// Members: pod 0 (modern), pod 1 (legacy spines: hosts 16..31),
	// leaf 7 (legacy: hosts 56..63).
	hosts := []topology.HostID{0, 1, 17, 25, 57, 63}
	key := controller.GroupKey{Tenant: 4, Group: 1}
	members := make(map[topology.HostID]controller.Role, len(hosts))
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	noPath, err := f.InstallGroup(ctrl, key)
	if err != nil {
		t.Fatal(err)
	}
	// The four members behind legacy switches cannot source-route.
	if len(noPath) != 4 {
		t.Fatalf("noPath = %v, want the 4 legacy-side senders", noPath)
	}

	g := ctrl.Group(key)
	// The legacy leaf and pod must have been forced onto s-rules.
	if _, ok := g.Enc.LeafSRules[7]; !ok {
		t.Fatalf("legacy leaf 7 has no s-rule: %v", g.Enc.LeafSRules)
	}
	if _, ok := g.Enc.SpineSRules[1]; !ok {
		t.Fatalf("legacy pod 1 has no spine s-rule: %v", g.Enc.SpineSRules)
	}

	// A sender on a modern leaf reaches everyone, including members
	// behind legacy switches.
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 4, Group: 1}, []byte("interop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 || d.Lost != 0 || d.Duplicates != 0 {
		t.Fatalf("delivery = %s", d)
	}
	// Legacy switches must have used their group tables.
	legacyHits := f.Leaves[7].Stats().SRuleHits +
		f.Spines[2].Stats().SRuleHits + f.Spines[3].Stats().SRuleHits
	if legacyHits == 0 {
		t.Fatal("no group-table hits on legacy switches")
	}
}

// TestLegacySenderFallsBackToUnicast: senders behind legacy switches
// cannot source-route; InstallGroup reports them and the hypervisor
// uses unicast.
func TestLegacySenderFallsBack(t *testing.T) {
	ctrl, f := legacySetup(t)
	hosts := []topology.HostID{0, 57, 17}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	key := controller.GroupKey{Tenant: 4, Group: 2}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	noPath, err := f.InstallGroup(ctrl, key)
	if err != nil {
		t.Fatal(err)
	}
	// Hosts 57 (legacy leaf 7) and 17 (legacy pod 1, cross-pod group)
	// cannot source-route.
	if len(noPath) != 2 {
		t.Fatalf("noPath = %v, want hosts 17 and 57", noPath)
	}
	// They still deliver via the unicast fallback.
	d, err := f.SendUnicast(57, hosts, []byte("fallback"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 2 {
		t.Fatalf("unicast fallback: %s", d)
	}
	// The modern sender still source-routes to everyone.
	d, err = f.Send(0, dataplane.GroupAddr{VNI: 4, Group: 2}, []byte("fwd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 2 {
		t.Fatalf("modern sender: %s", d)
	}
}

// TestLegacyIntraPodSenderOK: a sender in a legacy pod whose group is
// rack-local does not need the pod's spines and can still source-route.
func TestLegacyIntraRackSenderOK(t *testing.T) {
	ctrl, f := legacySetup(t)
	// Hosts 16..23 are all under leaf 2 (pod 1).
	hosts := []topology.HostID{16, 18, 20}
	key := controller.GroupKey{Tenant: 4, Group: 3}
	installGroup(t, ctrl, f, key, hosts)
	d, err := f.Send(16, dataplane.GroupAddr{VNI: 4, Group: 3}, []byte("rack"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 2 {
		t.Fatalf("delivery = %s", d)
	}
}

// TestLegacyTableFull: when a legacy switch has no group-table space,
// group creation fails loudly instead of silently blackholing.
func TestLegacyTableFull(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LegacyLeaves = []topology.LeafID{7}
	cfg.SRuleCapacity = 1
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1 := map[topology.HostID]controller.Role{0: controller.RoleBoth, 57: controller.RoleReceiver}
	if _, err := ctrl.CreateGroup(controller.GroupKey{Tenant: 5, Group: 1}, m1); err != nil {
		t.Fatal(err)
	}
	// Second group through the same legacy leaf: table is full.
	if _, err := ctrl.CreateGroup(controller.GroupKey{Tenant: 5, Group: 2}, m1); err == nil {
		t.Fatal("expected legacy-table-full error")
	}
}
