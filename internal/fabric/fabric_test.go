package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

func paperTopo() *topology.Topology { return topology.MustNew(topology.PaperExample()) }

func testConfig(r int) controller.Config {
	return controller.Config{
		MaxHeaderBytes: 325,
		SpineRuleLimit: 2,
		LeafRuleLimit:  30,
		KMaxSpine:      2,
		KMaxLeaf:       2,
		R:              r,
		SRuleCapacity:  16,
	}
}

// setup builds a controller+fabric pair sharing a failure set.
func setup(t *testing.T, topo *topology.Topology, cfg controller.Config) (*controller.Controller, *Fabric) {
	t.Helper()
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := New(topo, cfg.SRuleCapacity)
	f.SetFailures(ctrl.Failures())
	return ctrl, f
}

// installGroup creates a group where every member is RoleBoth.
func installGroup(t *testing.T, ctrl *controller.Controller, f *Fabric, key controller.GroupKey, hosts []topology.HostID) {
	t.Helper()
	members := make(map[topology.HostID]controller.Role, len(hosts))
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	noPath, err := f.InstallGroup(ctrl, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(noPath) != 0 {
		t.Fatalf("unexpected no-path senders: %v", noPath)
	}
}

// figure3Hosts is the paper's Fig. 3 group.
func figure3Hosts() []topology.HostID {
	return []topology.HostID{0, 1, 40, 48, 49, 63}
}

func TestEndToEndFigure3(t *testing.T) {
	for _, r := range []int{0, 2, 12} {
		topo := paperTopo()
		ctrl, f := setup(t, topo, testConfig(r))
		key := controller.GroupKey{Tenant: 1, Group: 1}
		installGroup(t, ctrl, f, key, figure3Hosts())
		payload := []byte("hello multicast")
		for _, sender := range figure3Hosts() {
			d, err := f.Send(sender, dataplane.GroupAddr{VNI: 1, Group: 1}, payload)
			if err != nil {
				t.Fatalf("R=%d sender %d: %v", r, sender, err)
			}
			if d.Lost != 0 || d.Duplicates != 0 {
				t.Fatalf("R=%d sender %d: %s", r, sender, d)
			}
			// Every member except the sender receives exactly once.
			want := make(map[topology.HostID]bool)
			for _, h := range figure3Hosts() {
				if h != sender {
					want[h] = true
				}
			}
			if len(d.Received) != len(want) {
				t.Fatalf("R=%d sender %d: received %v, want %v", r, sender, d.Received, want)
			}
			for h := range want {
				inner, ok := d.Received[h]
				if !ok {
					t.Fatalf("R=%d sender %d: host %d missed", r, sender, h)
				}
				if string(inner) != string(payload) {
					t.Fatalf("payload corrupted at host %d", h)
				}
			}
			// Traffic can never beat ideal multicast.
			ideal := IdealBytes(topo, sender, figure3Hosts(), len(payload))
			if d.LinkBytes < ideal {
				t.Fatalf("R=%d sender %d: bytes %d below ideal %d", r, sender, d.LinkBytes, ideal)
			}
		}
	}
}

func TestSingleRackGroup(t *testing.T) {
	topo := paperTopo()
	ctrl, f := setup(t, topo, testConfig(0))
	key := controller.GroupKey{Tenant: 1, Group: 2}
	hosts := []topology.HostID{0, 2, 5}
	installGroup(t, ctrl, f, key, hosts)
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 2}, []byte("rack-local"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 2 || d.Spurious != 0 {
		t.Fatalf("delivery = %s", d)
	}
	// Single-rack traffic: host->leaf + 2 leaf->host links, 3 hops... 1
	// switch traversal.
	if d.Hops != 1 {
		t.Fatalf("hops = %d, want 1 (leaf only)", d.Hops)
	}
}

func TestSpuriousDeliveriesAreFiltered(t *testing.T) {
	// Force default-rule usage (no s-rule capacity, no leaf p-rules):
	// non-member hosts on over-covered leaves must filter the packet.
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 0
	cfg.SpineRuleLimit = 0
	cfg.SRuleCapacity = 0
	ctrl, f := setup(t, topo, cfg)
	key := controller.GroupKey{Tenant: 1, Group: 3}
	hosts := figure3Hosts()
	installGroup(t, ctrl, f, key, hosts)
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 3}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 {
		t.Fatalf("members missed: %s", d)
	}
	if d.Spurious == 0 {
		t.Fatal("expected spurious deliveries via default rules")
	}
	// Spurious packets reached wires but never applications.
	if d.Duplicates != 0 {
		t.Fatalf("duplicates = %d", d.Duplicates)
	}
}

func TestSRulePathDelivery(t *testing.T) {
	// Zero p-rule budget, ample s-rule capacity: delivery must flow
	// entirely through group tables.
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 0
	cfg.SpineRuleLimit = 0
	ctrl, f := setup(t, topo, cfg)
	key := controller.GroupKey{Tenant: 1, Group: 4}
	hosts := figure3Hosts()
	installGroup(t, ctrl, f, key, hosts)
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 4}, []byte("via srules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 || d.Spurious != 0 {
		t.Fatalf("delivery = %s", d)
	}
	// The leaves and spines used must report s-rule hits.
	hits := 0
	for _, sw := range f.Leaves {
		hits += sw.Stats().SRuleHits
	}
	for _, sw := range f.Spines {
		hits += sw.Stats().SRuleHits
	}
	if hits == 0 {
		t.Fatal("no s-rule hits recorded")
	}
}

func TestTrafficShrinksPerHop(t *testing.T) {
	// The same group delivered with and without header popping must
	// show that popping saves bytes: compare against a hypothetical
	// constant-size header (stream length at the source times links).
	topo := paperTopo()
	ctrl, f := setup(t, topo, testConfig(0))
	key := controller.GroupKey{Tenant: 1, Group: 5}
	hosts := figure3Hosts()
	installGroup(t, ctrl, f, key, hosts)
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 5}, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	ideal := IdealBytes(topo, 0, hosts, 100)
	overhead := float64(d.LinkBytes)/float64(ideal) - 1
	if overhead < 0 {
		t.Fatalf("negative overhead?")
	}
	if overhead > 0.40 {
		t.Fatalf("overhead %.2f too high for 100-byte payload on tiny topology", overhead)
	}
}

func TestFailureRecoveryEndToEnd(t *testing.T) {
	topo := paperTopo()
	ctrl, f := setup(t, topo, testConfig(0))
	key := controller.GroupKey{Tenant: 2, Group: 1}
	hosts := figure3Hosts()
	installGroup(t, ctrl, f, key, hosts)
	addr := dataplane.GroupAddr{VNI: 2, Group: 1}

	// Fail spine 0 (pod 0 plane 0) and core 0 (plane 0).
	ctrl.FailSpine(0)
	ctrl.FailCore(0)
	// Reinstall sender flows with recomputed headers.
	if _, err := f.InstallGroup(ctrl, controller.GroupKey{Tenant: 2, Group: 1}); err == nil {
		// InstallGroup fails on duplicate s-rule installs only; it is
		// idempotent for identical entries, so no error is also fine.
		_ = err
	}
	// Refresh sender flows directly.
	for _, h := range hosts {
		hdr, err := ctrl.HeaderFor(key, h)
		if err != nil {
			t.Fatalf("header for %d: %v", h, err)
		}
		if err := f.Hypervisors[h].InstallSenderFlow(addr, hdr); err != nil {
			t.Fatal(err)
		}
	}
	for _, sender := range hosts {
		d, err := f.Send(sender, addr, []byte("after failure"))
		if err != nil {
			t.Fatalf("sender %d: %v", sender, err)
		}
		if d.Lost != 0 {
			t.Fatalf("sender %d lost copies: %s", sender, d)
		}
		if len(d.Received) != len(hosts)-1 {
			t.Fatalf("sender %d: %s", sender, d)
		}
	}

	// Repair and verify multipath resumes without loss.
	ctrl.RepairSpine(0)
	ctrl.RepairCore(0)
	for _, h := range hosts {
		hdr, err := ctrl.HeaderFor(key, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Hypervisors[h].InstallSenderFlow(addr, hdr); err != nil {
			t.Fatal(err)
		}
	}
	d, err := f.Send(0, addr, []byte("after repair"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 || d.Lost != 0 {
		t.Fatalf("after repair: %s", d)
	}
}

func TestUnicastBaseline(t *testing.T) {
	topo := paperTopo()
	_, f := setup(t, topo, testConfig(0))
	hosts := figure3Hosts()
	inner := make([]byte, 100)
	d, err := f.SendUnicast(0, hosts, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 {
		t.Fatalf("unicast delivery = %s", d)
	}
	ideal := IdealBytes(topo, 0, hosts, len(inner))
	if d.LinkBytes <= ideal {
		t.Fatalf("unicast bytes %d should exceed ideal %d", d.LinkBytes, ideal)
	}
}

func TestOverlayBaseline(t *testing.T) {
	topo := paperTopo()
	_, f := setup(t, topo, testConfig(0))
	hosts := figure3Hosts()
	inner := make([]byte, 100)
	d, relaySends, err := f.SendOverlay(0, hosts, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != len(hosts)-1 {
		t.Fatalf("overlay delivery = %s", d)
	}
	// L6 has two members: one relay send expected there; L0's second
	// member is rack-local to the sender.
	if relaySends == 0 {
		t.Fatal("expected relay sends")
	}
	// Overlay must cost less than unicast but more than ideal.
	u, err := f.SendUnicast(0, hosts, inner)
	if err != nil {
		t.Fatal(err)
	}
	ideal := IdealBytes(topo, 0, hosts, len(inner))
	if d.LinkBytes <= ideal || d.LinkBytes >= u.LinkBytes {
		t.Fatalf("overlay %d, unicast %d, ideal %d", d.LinkBytes, u.LinkBytes, ideal)
	}
}

func TestIdealBytesEdgeCases(t *testing.T) {
	topo := paperTopo()
	if IdealBytes(topo, 0, []topology.HostID{0}, 100) != 0 {
		t.Fatal("self-only group should cost nothing")
	}
	// One rack-local receiver: sender NIC + receiver NIC.
	got := IdealBytes(topo, 0, []topology.HostID{0, 1}, 100)
	want := 2 * (50 + 100)
	if got != want {
		t.Fatalf("rack-local ideal = %d, want %d", got, want)
	}
	// Cross-pod single receiver: host + leaf->spine + spine->core +
	// core->spine + spine->leaf + leaf->host = 6 links.
	got = IdealBytes(topo, 0, []topology.HostID{40}, 100)
	want = 6 * 150
	if got != want {
		t.Fatalf("cross-pod ideal = %d, want %d", got, want)
	}
}

// TestQuickEndToEnd is the system-level property test: random groups
// on a random topology deliver exactly once to every member and never
// to applications on non-member hosts.
func TestQuickEndToEnd(t *testing.T) {
	topo := topology.MustNew(topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 4, HostsPerLeaf: 6, CoresPerPlane: 2})
	f := func(seed int64, rRaw, srCap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig(int(rRaw % 13))
		cfg.SRuleCapacity = int(srCap % 8)
		cfg.LeafRuleLimit = rng.Intn(8)
		cfg.SpineRuleLimit = rng.Intn(3)
		ctrl, err := controller.New(topo, cfg)
		if err != nil {
			return false
		}
		fab := New(topo, cfg.SRuleCapacity)
		fab.SetFailures(ctrl.Failures())

		n := rng.Intn(20) + 2
		seen := make(map[topology.HostID]bool)
		var hosts []topology.HostID
		for len(hosts) < n {
			h := topology.HostID(rng.Intn(topo.NumHosts()))
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
		key := controller.GroupKey{Tenant: 9, Group: uint32(rng.Intn(1000))}
		members := make(map[topology.HostID]controller.Role, len(hosts))
		for _, h := range hosts {
			members[h] = controller.RoleBoth
		}
		if _, err := ctrl.CreateGroup(key, members); err != nil {
			return false
		}
		if _, err := fab.InstallGroup(ctrl, key); err != nil {
			return false
		}
		addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
		sender := hosts[rng.Intn(len(hosts))]
		d, err := fab.Send(sender, addr, []byte("q"))
		if err != nil {
			return false
		}
		if d.Lost != 0 || d.Duplicates != 0 {
			return false
		}
		if len(d.Received) != len(hosts)-1 {
			return false
		}
		for _, h := range hosts {
			if h == sender {
				continue
			}
			if _, ok := d.Received[h]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendFigure3(b *testing.B) {
	topo := paperTopo()
	ctrl, err := controller.New(topo, testConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	f := New(topo, 16)
	f.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 1, Group: 1}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range figure3Hosts() {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		b.Fatal(err)
	}
	if _, err := f.InstallGroup(ctrl, key); err != nil {
		b.Fatal(err)
	}
	addr := dataplane.GroupAddr{VNI: 1, Group: 1}
	payload := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Send(0, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMultiPlaneFailureDelivery: when set cover pins two planes (no
// single plane reaches all receiver pods), delivery still reaches every
// member; duplicate copies are possible and counted, never lost ones.
func TestMultiPlaneFailureDelivery(t *testing.T) {
	topo := paperTopo()
	ctrl, f := setup(t, topo, testConfig(0))
	key := controller.GroupKey{Tenant: 8, Group: 1}
	hosts := []topology.HostID{0, 40, 56}
	installGroup(t, ctrl, f, key, hosts)
	// Pod 2 only via plane 1; pod 3 only via plane 0. Senders inside
	// those pods are genuinely partitioned from each other (both their
	// planes cross a failed spine) and must fall back to unicast; the
	// pod-0 sender can still cover everything with two pinned planes.
	ctrl.FailSpine(4)
	ctrl.FailSpine(7)
	for _, h := range []topology.HostID{40, 56} {
		if _, err := ctrl.HeaderFor(key, h); err != controller.ErrNoPath {
			t.Fatalf("host %d: err = %v, want ErrNoPath", h, err)
		}
	}
	hdr, err := ctrl.HeaderFor(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ULeaf.Up.PopCount() != 2 {
		t.Fatalf("sender 0 should pin both planes: %s", hdr.ULeaf.Up)
	}
	if err := f.Hypervisors[0].InstallSenderFlow(dataplane.GroupAddr{VNI: 8, Group: 1}, hdr); err != nil {
		t.Fatal(err)
	}
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 8, Group: 1}, []byte("multi-plane"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 2 {
		t.Fatalf("delivery = %s", d)
	}
	// With two pinned planes each core fans out to both receiver pods,
	// and the copy entering a pod via its dead spine is dropped there:
	// redundant losses are expected, missing deliveries are not.
	if d.Lost == 0 {
		t.Fatalf("expected redundant copies to die at failed spines: %s", d)
	}
	if d.Duplicates > 2 {
		t.Fatalf("too many duplicates: %s", d)
	}
}
