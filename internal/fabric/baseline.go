package fabric

import (
	"fmt"

	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// This file implements the comparison baselines of the evaluation:
// host-based unicast replication, overlay multicast (one relay per
// leaf), and the ideal-multicast byte count every traffic-overhead
// ratio is normalized against (§5.1.2 and the Figure 4/5 dashed lines).

// SendUnicast models the unicast fallback tenants use without native
// multicast: the sender's hypervisor encapsulates one plain VXLAN copy
// per receiver. It returns the aggregate delivery (routing each copy
// deterministically through the fabric) — LinkBytes is the unicast
// traffic cost; the sender-side copy count is len(receivers), the CPU
// quantity Figure 6 tracks.
func (f *Fabric) SendUnicast(sender topology.HostID, receivers []topology.HostID, inner []byte) (*Delivery, error) {
	agg := &Delivery{Received: make(map[topology.HostID][]byte)}
	for _, r := range receivers {
		if r == sender {
			continue
		}
		d, err := f.routeUnicast(sender, r, inner)
		if err != nil {
			return nil, err
		}
		mergeDelivery(agg, d)
	}
	return agg, nil
}

// SendOverlay models overlay multicast (§5.1.2 footnote): the sender
// unicasts one copy to a relay host under each participating leaf, and
// each relay unicasts to the other member hosts under its leaf. The
// relays' sends model the end-host replication CPU cost overlays pay.
func (f *Fabric) SendOverlay(sender topology.HostID, receivers []topology.HostID, inner []byte) (*Delivery, int, error) {
	agg := &Delivery{Received: make(map[topology.HostID][]byte)}
	byLeaf := make(map[topology.LeafID][]topology.HostID)
	for _, r := range receivers {
		if r == sender {
			continue
		}
		l := f.topo.HostLeaf(r)
		byLeaf[l] = append(byLeaf[l], r)
	}
	relaySends := 0
	senderLeaf := f.topo.HostLeaf(sender)
	for leaf, members := range byLeaf {
		relay := members[0]
		if leaf == senderLeaf {
			// The sender itself relays to rack-local members.
			for _, m := range members {
				d, err := f.routeUnicast(sender, m, inner)
				if err != nil {
					return nil, 0, err
				}
				mergeDelivery(agg, d)
			}
			continue
		}
		d, err := f.routeUnicast(sender, relay, inner)
		if err != nil {
			return nil, 0, err
		}
		mergeDelivery(agg, d)
		for _, m := range members[1:] {
			relaySends++
			dr, err := f.routeUnicast(relay, m, inner)
			if err != nil {
				return nil, 0, err
			}
			mergeDelivery(agg, dr)
		}
	}
	return agg, relaySends, nil
}

// routeUnicast walks one plain-VXLAN copy from src to dst along the
// deterministic ECMP path, accounting bytes per link.
func (f *Fabric) routeUnicast(src, dst topology.HostID, inner []byte) (*Delivery, error) {
	d := &Delivery{Received: make(map[topology.HostID][]byte)}
	outer := header.OuterFields{
		SrcMAC:  header.HostMAC(src),
		DstMAC:  header.HostMAC(dst),
		SrcIP:   header.HostIP(f.topo, src),
		DstIP:   header.HostIP(f.topo, dst),
		SrcPort: uint16(49152 + (uint32(src)*31+uint32(dst))%16384),
		TTL:     64,
	}
	pkt := dataplane.Packet{Outer: outer, Inner: inner}
	size := pkt.WireSize()

	srcLeaf, dstLeaf := f.topo.HostLeaf(src), f.topo.HostLeaf(dst)
	srcPod, dstPod := f.topo.LeafPod(srcLeaf), f.topo.LeafPod(dstLeaf)

	// The baseline walk does its own byte accounting instead of going
	// through admit, so it reports each crossing to the observer
	// directly — the per-link timeseries sees baseline traffic on the
	// same links the Elmo path uses.
	obsOn := dataplane.ObsOn(f.observer)
	observe := func(ft dataplane.LinkTier, from int32, tt dataplane.LinkTier, to int32) {
		if obsOn {
			f.observer.ObserveLink(dataplane.Link{FromTier: ft, From: from, ToTier: tt, To: to}, size)
		}
	}

	d.LinkBytes += size // host -> leaf
	d.Hops++
	observe(dataplane.LinkHost, int32(src), dataplane.LinkLeaf, int32(srcLeaf))
	if srcLeaf != dstLeaf {
		// Pick a healthy spine plane by flow hash.
		plane, ok := f.pickPlane(outer, srcPod, dstPod)
		if !ok {
			d.Lost++
			return d, nil
		}
		spine := f.topo.SpineAt(srcPod, plane)
		d.LinkBytes += size // leaf -> spine
		d.Hops++
		observe(dataplane.LinkLeaf, int32(srcLeaf), dataplane.LinkSpine, int32(spine))
		if srcPod != dstPod {
			core, ok := f.pickCore(outer, plane)
			if !ok {
				d.Lost++
				return d, nil
			}
			d.LinkBytes += size // spine -> core
			d.Hops++
			observe(dataplane.LinkSpine, int32(spine), dataplane.LinkCore, int32(core))
			d.LinkBytes += size // core -> dst spine
			d.Hops++
			spine = f.topo.SpineAt(dstPod, plane)
			observe(dataplane.LinkCore, int32(core), dataplane.LinkSpine, int32(spine))
		}
		d.LinkBytes += size // spine -> dst leaf
		d.Hops++
		observe(dataplane.LinkSpine, int32(spine), dataplane.LinkLeaf, int32(dstLeaf))
	}
	d.LinkBytes += size // leaf -> host
	observe(dataplane.LinkLeaf, int32(dstLeaf), dataplane.LinkHost, int32(dst))
	d.Received[dst] = inner
	return d, nil
}

// pickPlane chooses a spine plane healthy in both the source and
// destination pods.
func (f *Fabric) pickPlane(outer header.OuterFields, srcPod, dstPod topology.PodID) (int, bool) {
	cfg := f.topo.Config()
	alive := make([]int, 0, cfg.SpinesPerPod)
	for p := 0; p < cfg.SpinesPerPod; p++ {
		if f.failures.SpineFailed(f.topo.SpineAt(srcPod, p)) {
			continue
		}
		if srcPod != dstPod {
			if f.failures.SpineFailed(f.topo.SpineAt(dstPod, p)) {
				continue
			}
			if len(f.failures.HealthyCoresInPlane(f.topo, p)) == 0 {
				continue
			}
		}
		alive = append(alive, p)
	}
	if len(alive) == 0 {
		return 0, false
	}
	return alive[dataplane.ECMPHash(outer, 0x75)%uint32(len(alive))], true
}

func (f *Fabric) pickCore(outer header.OuterFields, plane int) (topology.CoreID, bool) {
	cores := f.failures.HealthyCoresInPlane(f.topo, plane)
	if len(cores) == 0 {
		return 0, false
	}
	return cores[dataplane.ECMPHash(outer, 0xc0)%uint32(len(cores))], true
}

func mergeDelivery(agg, d *Delivery) {
	for h, inner := range d.Received {
		if _, dup := agg.Received[h]; dup {
			agg.Duplicates++
		}
		agg.Received[h] = inner
	}
	agg.Spurious += d.Spurious
	agg.LinkBytes += d.LinkBytes
	agg.Hops += d.Hops
	agg.Lost += d.Lost
}

// IdealBytes returns the bytes ideal native multicast would move for
// one packet from sender to the receivers: one copy per tree link,
// with no source-routing header. This is the denominator of every
// traffic-overhead ratio in Figures 4 and 5.
func IdealBytes(topo *topology.Topology, sender topology.HostID, receivers []topology.HostID, innerLen int) int {
	size := header.OuterSize + innerLen
	links := idealLinks(topo, sender, receivers)
	return size * links
}

// idealLinks counts the links of the minimal multicast tree.
func idealLinks(topo *topology.Topology, sender topology.HostID, receivers []topology.HostID) int {
	senderLeaf := topo.HostLeaf(sender)
	senderPod := topo.LeafPod(senderLeaf)
	leaves := make(map[topology.LeafID]bool)
	pods := make(map[topology.PodID]bool)
	hosts := 0
	for _, r := range receivers {
		if r == sender {
			continue
		}
		hosts++
		l := topo.HostLeaf(r)
		leaves[l] = true
		pods[topo.LeafPod(l)] = true
	}
	if hosts == 0 {
		return 0
	}
	links := 1 + hosts // sender NIC + receiver NICs
	beyondRack := len(leaves) > 1 || !leaves[senderLeaf]
	if beyondRack {
		links++ // sender leaf -> spine
		for l := range leaves {
			if l != senderLeaf {
				links++ // spine -> leaf (in its pod)
			}
		}
		beyondPod := len(pods) > 1 || !pods[senderPod]
		if beyondPod {
			links++ // spine -> core
			for p := range pods {
				if p != senderPod {
					links++ // core -> pod spine
				}
			}
		}
	}
	return links
}

// String summarizes a delivery for logs and examples.
func (d *Delivery) String() string {
	return fmt.Sprintf("delivered=%d spurious=%d dup=%d lost=%d bytes=%d hops=%d",
		len(d.Received), d.Spurious, d.Duplicates, d.Lost, d.LinkBytes, d.Hops)
}
