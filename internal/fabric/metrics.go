package fabric

import (
	"elmo/internal/dataplane"
	"elmo/internal/telemetry"
)

// Metrics is the fabric's telemetry bundle: the dataplane per-tier and
// host counters plus the fabric-level delivery accounting (link bytes,
// losses at failed switches, chaos verdicts). Handles are interned at
// construction; attach with SetMetrics.
type Metrics struct {
	DP *dataplane.Metrics

	linkBytes     *telemetry.Counter
	links         *telemetry.Counter
	hops          *telemetry.Counter
	lost          *telemetry.Counter
	spurious      *telemetry.Counter
	duplicates    *telemetry.Counter
	malformed     *telemetry.Counter
	faultVerdicts [4]*telemetry.Counter // drop, dup, corrupt, delay
}

// NewMetrics registers the fabric and dataplane metric families in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	verdicts := reg.CounterVec("elmo_fabric_fault_verdicts_total",
		"Chaos-injector verdicts applied at link crossings.", "verdict")
	m := &Metrics{
		DP: dataplane.NewMetrics(reg),
		linkBytes: reg.Counter("elmo_fabric_link_bytes_total",
			"Bytes crossing fabric links (host NICs included)."),
		links: reg.Counter("elmo_fabric_link_crossings_total",
			"Link transmissions (one per copy per link)."),
		hops: reg.Counter("elmo_fabric_hops_total",
			"Switch traversals during forwarding."),
		lost: reg.Counter("elmo_fabric_lost_total",
			"Copies dropped at failed switches."),
		spurious: reg.Counter("elmo_fabric_spurious_total",
			"Host deliveries filtered by non-member hypervisors."),
		duplicates: reg.Counter("elmo_fabric_duplicates_total",
			"Member hosts that received more than one copy."),
		malformed: reg.Counter("elmo_fabric_malformed_total",
			"Copies dropped because a switch could not parse them."),
	}
	for i, v := range []string{"drop", "duplicate", "corrupt", "delay"} {
		m.faultVerdicts[i] = verdicts.With(v)
	}
	return m
}

// SetMetrics attaches telemetry counters to every switch and
// hypervisor of the fabric and to the fabric's own delivery
// accounting. Call while the fabric is quiet (same contract as
// SetTracer); nil detaches.
func (f *Fabric) SetMetrics(m *Metrics) {
	f.metrics = m
	for _, hv := range f.Hypervisors {
		hv.Counters = m.HostFor()
	}
	for _, sw := range f.Leaves {
		sw.Counters = m.switchFor(dataplane.KindLeaf)
	}
	for _, sw := range f.Spines {
		sw.Counters = m.switchFor(dataplane.KindSpine)
	}
	for _, sw := range f.Cores {
		sw.Counters = m.switchFor(dataplane.KindCore)
	}
}

func (m *Metrics) switchFor(k dataplane.SwitchKind) *dataplane.SwitchCounters {
	if m == nil {
		return nil
	}
	return m.DP.For(k)
}

// HostFor returns the hypervisor counter set (nil-safe).
func (m *Metrics) HostFor() *dataplane.HostCounters {
	if m == nil {
		return nil
	}
	return m.DP.HostFor()
}

// observeDelivery folds one send's Delivery into the live counters —
// a single site per send, so the forwarding loop itself stays
// untouched and the disabled path costs one nil check per send.
func (m *Metrics) observeDelivery(d *Delivery) {
	if m == nil {
		return
	}
	m.linkBytes.Add(int64(d.LinkBytes))
	m.links.Add(int64(d.Links))
	m.hops.Add(int64(d.Hops))
	m.lost.Add(int64(d.Lost))
	m.spurious.Add(int64(d.Spurious))
	m.duplicates.Add(int64(d.Duplicates))
	m.malformed.Add(int64(d.Malformed))
	m.faultVerdicts[0].Add(int64(d.FaultDrops))
	m.faultVerdicts[1].Add(int64(d.FaultDups))
	m.faultVerdicts[2].Add(int64(d.FaultCorrupts))
	m.faultVerdicts[3].Add(int64(d.FaultDelays))
}
