// Package fabric wires dataplane switches into a complete emulated
// Clos network and forwards packets through it synchronously and
// deterministically. It is the substrate for correctness tests (every
// member receives exactly one copy), for the traffic-overhead
// experiments (per-link byte accounting as headers shrink hop by hop),
// and for the unicast and overlay-multicast baselines (§5.2's
// comparison points).
package fabric

import (
	"fmt"
	"sync"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// Fabric is an emulated datacenter network: one hypervisor per host,
// one dataplane switch per leaf/spine/core, connected per the
// topology's port map.
type Fabric struct {
	topo   *topology.Topology
	layout header.Layout

	Hypervisors []*dataplane.Hypervisor
	Leaves      []*dataplane.NetworkSwitch
	Spines      []*dataplane.NetworkSwitch
	Cores       []*dataplane.NetworkSwitch

	failures *topology.FailureSet
	tracer   trace.Recorder
	injector dataplane.FaultInjector
	metrics  *Metrics
	observer dataplane.FlowObserver

	// refProcess routes forwarding through the frozen allocating
	// pipeline (ReferenceProcess) instead of the scratch fast path —
	// the benchmark baseline. See SetReferenceProcessing.
	refProcess bool
}

// New builds the fabric with the given per-switch s-rule capacity.
func New(topo *topology.Topology, sRuleCapacity int) *Fabric {
	f := &Fabric{
		topo:     topo,
		layout:   header.LayoutFor(topo),
		failures: topology.NewFailureSet(),
	}
	f.Hypervisors = make([]*dataplane.Hypervisor, topo.NumHosts())
	for h := range f.Hypervisors {
		f.Hypervisors[h] = dataplane.NewHypervisor(topo, topology.HostID(h))
	}
	f.Leaves = make([]*dataplane.NetworkSwitch, topo.NumLeaves())
	for l := range f.Leaves {
		id := topology.LeafID(l)
		sw := dataplane.NewLeaf(topo, id, sRuleCapacity)
		pod := topo.LeafPod(id)
		sw.UpstreamAlive = func(port int) bool {
			return !f.failures.SpineFailed(f.topo.SpineAt(pod, port))
		}
		f.Leaves[l] = sw
	}
	f.Spines = make([]*dataplane.NetworkSwitch, topo.NumSpines())
	for s := range f.Spines {
		id := topology.SpineID(s)
		sw := dataplane.NewSpine(topo, id, sRuleCapacity)
		plane := topo.SpinePlane(id)
		sw.UpstreamAlive = func(port int) bool {
			return !f.failures.CoreFailed(topology.CoreID(plane*f.topo.Config().CoresPerPlane + port))
		}
		f.Spines[s] = sw
	}
	f.Cores = make([]*dataplane.NetworkSwitch, topo.NumCores())
	for c := range f.Cores {
		f.Cores[c] = dataplane.NewCore(topo, topology.CoreID(c))
	}
	return f
}

// Topology returns the underlying topology.
func (f *Fabric) Topology() *topology.Topology { return f.topo }

// Failures returns the fabric's failure set. Wire it to the
// controller's (SyncFailures) so both planes agree on link state.
func (f *Fabric) Failures() *topology.FailureSet { return f.failures }

// SetFailures replaces the fabric's failure set (typically with the
// controller's, so one set drives both control and data planes).
func (f *Fabric) SetFailures(fs *topology.FailureSet) {
	f.failures = fs
}

// SetTracer attaches a flight recorder to every switch and hypervisor
// of the fabric (and to the fabric's own link-loss events), so packet
// hops record which rule forwarded them at each tier. Call while the
// fabric is quiet — the live fabrics read the same switch objects from
// their goroutines. A nil or disabled recorder adds one atomic check
// per packet and no allocation.
func (f *Fabric) SetTracer(r trace.Recorder) {
	f.tracer = r
	for _, hv := range f.Hypervisors {
		hv.Tracer = r
	}
	for _, sw := range f.Leaves {
		sw.Tracer = r
	}
	for _, sw := range f.Spines {
		sw.Tracer = r
	}
	for _, sw := range f.Cores {
		sw.Tracer = r
	}
}

// SetInjector attaches a fault injector; every link crossing consults
// it. Call while the fabric is quiet. A nil or inactive injector adds
// one nil check plus one atomic load per crossing and no allocation.
func (f *Fabric) SetInjector(inj dataplane.FaultInjector) { f.injector = inj }

// SetObserver attaches a flow observer (the ops plane); every link
// crossing and completed send reports to it. Call while the fabric is
// quiet (same contract as SetTracer); nil detaches. A nil or disabled
// observer adds one nil check plus one atomic load per site and no
// allocation.
func (f *Fabric) SetObserver(o dataplane.FlowObserver) { f.observer = o }

// traceLost records a copy dropped at a failed switch.
func (f *Fabric) traceLost(tier trace.Tier, id int, pkt dataplane.Packet) {
	if !trace.On(f.tracer, trace.CatFabric) {
		return
	}
	ev := trace.Event{Cat: trace.CatFabric, Kind: trace.KindDrop, Tier: tier, Switch: int32(id)}
	if addr, ok := dataplane.GroupAddrFromOuter(pkt.Outer); ok {
		ev.VNI, ev.Group = addr.VNI, addr.Group
	}
	f.tracer.Record(ev)
}

// SetLegacyLeaf switches a leaf into legacy (non-Elmo) mode; pair with
// controller.Config.LegacyLeaves so the controller installs the
// group-table entries the switch needs.
func (f *Fabric) SetLegacyLeaf(l topology.LeafID) { f.Leaves[l].Legacy = true }

// SetLegacyPod switches every spine of a pod into legacy mode; pair
// with controller.Config.LegacyPods.
func (f *Fabric) SetLegacyPod(p topology.PodID) {
	for plane := 0; plane < f.topo.Config().SpinesPerPod; plane++ {
		f.Spines[f.topo.SpineAt(p, plane)].Legacy = true
	}
}

// addr converts a controller group key to the wire address.
func addr(key controller.GroupKey) dataplane.GroupAddr {
	return dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
}

// InstallGroup pushes a group's state into the data plane: s-rules to
// leaf/spine tables, sender flows (precomputed headers) to sender
// hypervisors, and receive filters to receiver hypervisors. Senders
// disconnected by failures (controller.ErrNoPath) are skipped and
// returned; their hypervisors degrade to unicast until repair (§3.3).
// Installs are unfenced (epoch 0); a durable controller uses
// InstallGroupAt with its leadership epoch instead.
func (f *Fabric) InstallGroup(ctrl *controller.Controller, key controller.GroupKey) (noPath []topology.HostID, err error) {
	return f.InstallGroupAt(0, ctrl, key)
}

// UninstallGroup removes a group's data-plane state (unfenced).
func (f *Fabric) UninstallGroup(ctrl *controller.Controller, key controller.GroupKey) error {
	return f.UninstallGroupAt(0, ctrl, key)
}

// Delivery is the outcome of one multicast send.
type Delivery struct {
	// Received maps each host whose hypervisor accepted the packet to
	// the inner frame it saw.
	Received map[topology.HostID][]byte
	// Spurious counts host deliveries filtered by non-member
	// hypervisors (redundancy from shared bitmaps / default rules).
	Spurious int
	// LinkBytes is the total bytes crossing fabric links (host NICs
	// included), the traffic-overhead integrand.
	LinkBytes int
	// Links counts link transmissions (one per copy per link); with
	// LinkBytes it supports ablations such as "headers never popped".
	Links int
	// Hops counts switch traversals.
	Hops int
	// Lost counts copies dropped at failed switches.
	Lost int
	// Duplicates counts member hosts that received more than one copy
	// (possible only under multi-plane explicit upstream ports during
	// failure recovery; zero on a healthy fabric).
	Duplicates int
	// Telemetry holds the in-band telemetry records each member's copy
	// accumulated, when the sender enabled INT (§7 Monitoring).
	Telemetry map[topology.HostID][]header.INTRecord
	// FaultDrops / FaultDups / FaultCorrupts / FaultDelays count the
	// chaos-injector verdicts applied during this send (all zero when
	// no injector is active).
	FaultDrops    int
	FaultDups     int
	FaultCorrupts int
	FaultDelays   int
	// Malformed counts copies dropped because a switch could not parse
	// them — under chaos, the fate of corrupted headers.
	Malformed int
}

// kindHost marks an event that is a host delivery rather than a
// switch traversal (only used internally by forward).
const kindHost dataplane.SwitchKind = -1

// event is one packet arriving somewhere in the fabric.
type event struct {
	kind dataplane.SwitchKind
	id   int
	pkt  dataplane.Packet
}

// heldEvent is a delayed event: released into the queue when the
// forwarding loop's iteration counter reaches due.
type heldEvent struct {
	ev  event
	due int
}

// procState is the reusable per-send working memory: the switch
// scratch plus the event queue and delay buffer. Pooled so repeated
// sends allocate nothing for forwarding state. A single scratch serves
// all switches of a send — forward is synchronous, and the scratch
// arena is append-only until the send completes, so stamped streams
// queued behind other events stay valid.
type procState struct {
	scratch dataplane.SwitchScratch
	queue   []event
	// head indexes the next event to pop; draining by index (instead
	// of re-slicing queue[1:]) keeps the backing array reusable.
	head int
	held []heldEvent
}

var fwdPool = sync.Pool{New: func() any { return new(procState) }}

func (ps *procState) reset() {
	ps.scratch.Reset()
	ps.queue = ps.queue[:0]
	ps.head = 0
	ps.held = ps.held[:0]
}

// fwd is the per-send forwarding state shared with admit.
type fwd struct {
	d          *Delivery
	ps         *procState
	n          int
	vni, group uint32
}

// SetReferenceProcessing switches forwarding to the frozen allocating
// pipeline (dataplane.ReferenceProcess) when on is true — the pre-PR
// baseline the dataplane benchmark stage compares the fast path
// against. Call while the fabric is quiet.
func (f *Fabric) SetReferenceProcessing(on bool) { f.refProcess = on }

// process runs one switch over one packet through the configured
// pipeline (scratch fast path by default).
func (f *Fabric) process(sw *dataplane.NetworkSwitch, pkt *dataplane.Packet, ps *procState) ([]dataplane.Emission, error) {
	if f.refProcess {
		return sw.ReferenceProcess(*pkt)
	}
	return sw.ProcessInto(*pkt, &ps.scratch)
}

// admit applies the fault injector's verdict for one link crossing and
// enqueues the surviving copies. With no active injector it is a plain
// enqueue. ev is passed by pointer to spare a struct copy per crossing
// (it embeds a full Packet); admit copies it into the queue and never
// retains the pointer.
func (f *Fabric) admit(st *fwd, l dataplane.Link, ev *event) {
	// Every directed crossing of the multicast path funnels through
	// admit, so this is the single per-link observation site. The
	// emitting tier has already counted the copy's LinkBytes, so the
	// observer sees exactly the bytes the Delivery accounting sees
	// (chaos drops included: the copy crossed the wire before dying).
	if dataplane.ObsOn(f.observer) {
		f.observer.ObserveLink(l, ev.pkt.WireSize())
	}
	if !dataplane.FaultsOn(f.injector) {
		st.ps.queue = append(st.ps.queue, *ev)
		return
	}
	v := f.injector.Cross(l, st.vni, st.group)
	if v.Drop {
		st.d.FaultDrops++
		return
	}
	if v.Corrupt {
		st.d.FaultCorrupts++
		// The Elmo stream aliases the sender flow's precomputed bytes;
		// corrupt a copy so other packets (and retransmissions) are
		// unaffected.
		elmo := make([]byte, len(ev.pkt.Elmo))
		copy(elmo, ev.pkt.Elmo)
		f.injector.CorruptWire(elmo)
		ev.pkt.Elmo = elmo
	}
	copies := 1
	if v.Duplicate {
		copies = 2
		st.d.FaultDups++
		// The extra copy crosses this link too.
		st.d.LinkBytes += ev.pkt.WireSize()
		st.d.Links++
		if dataplane.ObsOn(f.observer) {
			f.observer.ObserveLink(l, ev.pkt.WireSize())
		}
	}
	if v.DelaySteps > 0 {
		st.d.FaultDelays++
	}
	for i := 0; i < copies; i++ {
		if v.DelaySteps > 0 {
			st.ps.held = append(st.ps.held, heldEvent{ev: *ev, due: st.n + int(v.DelaySteps)})
		} else {
			st.ps.queue = append(st.ps.queue, *ev)
		}
	}
}

// Send encapsulates inner at the sender's hypervisor and forwards the
// packet through the fabric, returning the delivery outcome.
func (f *Fabric) Send(sender topology.HostID, a dataplane.GroupAddr, inner []byte) (*Delivery, error) {
	pkt, err := f.Hypervisors[sender].Encap(a, inner)
	if err != nil {
		return nil, err
	}
	return f.forward(sender, pkt)
}

// forward walks the packet through the fabric synchronously. With a
// fault injector attached and active, every link crossing may drop,
// duplicate, corrupt, or delay the copy; health probes
// (dataplane.ProbeVNI) additionally bypass the declared-failure drops
// so the chaos monitor can observe a physically repaired switch that
// the controller still believes failed.
func (f *Fabric) forward(src topology.HostID, pkt dataplane.Packet) (*Delivery, error) {
	var ps *procState
	if f.refProcess {
		// Reference mode reproduces the pre-fast-path forwarding cost
		// faithfully: the queue state was allocated per send then, so
		// the baseline must not borrow the pool either.
		ps = new(procState)
	} else {
		ps = fwdPool.Get().(*procState)
		ps.reset()
		defer fwdPool.Put(ps)
	}
	st := fwd{d: &Delivery{Received: make(map[topology.HostID][]byte, 16)}, ps: ps}
	d := st.d
	if a, ok := dataplane.GroupAddrFromOuter(pkt.Outer); ok {
		st.vni, st.group = a.VNI, a.Group
	}
	observed := dataplane.ObsOn(f.observer)
	var start time.Time
	if observed {
		start = time.Now()
	}
	probe := st.vni == dataplane.ProbeVNI
	chaos := dataplane.FaultsOn(f.injector)
	maxEvents := 4 * (f.topo.NumSwitches() + f.topo.NumHosts())
	if chaos {
		// Duplication, delay ticks, and retransmission under chaos all
		// inflate the event count of a legitimate send.
		maxEvents *= 8
	}
	// Host NIC -> leaf link.
	d.LinkBytes += pkt.WireSize()
	d.Links++
	srcLeaf := f.topo.HostLeaf(src)
	// aev is the admit staging slot, reused for every crossing so no
	// event literal is copied through the call (admit copies it into the
	// queue itself).
	var aev event
	aev = event{kind: dataplane.KindLeaf, id: int(srcLeaf), pkt: pkt}
	f.admit(&st, dataplane.Link{
		FromTier: dataplane.LinkHost, From: int32(src),
		ToTier: dataplane.LinkLeaf, To: int32(srcLeaf),
	}, &aev)
	for st.n = 0; ps.head < len(ps.queue) || len(ps.held) > 0; st.n++ {
		if st.n >= maxEvents {
			return nil, fmt.Errorf("fabric: forwarding loop detected after %d events", st.n)
		}
		if len(ps.held) > 0 {
			kept := ps.held[:0]
			for _, h := range ps.held {
				if h.due <= st.n {
					ps.queue = append(ps.queue, h.ev)
				} else {
					kept = append(kept, h)
				}
			}
			ps.held = kept
			if ps.head >= len(ps.queue) {
				continue // idle tick: everything in flight is delayed
			}
		}
		// Pointer into the queue's backing array: enqueued events are
		// never mutated, and admit's appends may move the array but the
		// old one stays valid for the duration of this iteration.
		ev := &ps.queue[ps.head]
		ps.head++
		if ev.kind == kindHost {
			f.deliverHost(d, topology.HostID(ev.id), &ev.pkt)
			continue
		}
		d.Hops++
		switch ev.kind {
		case dataplane.KindLeaf:
			leaf := topology.LeafID(ev.id)
			ems, err := f.process(f.Leaves[ev.id], &ev.pkt, ps)
			if err != nil {
				if chaos {
					// A corrupted header is dropped where parsing fails,
					// not surfaced as a fabric error.
					d.Malformed++
					continue
				}
				return nil, err
			}
			for i := range ems {
				em := &ems[i]
				d.LinkBytes += em.Packet.WireSize()
				d.Links++
				if em.Up {
					spine := f.topo.LeafUpstream(leaf, em.Port)
					if f.failures.SpineFailed(spine) && !probe {
						d.Lost++
						f.traceLost(trace.TierSpine, int(spine), em.Packet)
						continue
					}
					aev = event{kind: dataplane.KindSpine, id: int(spine), pkt: em.Packet}
					f.admit(&st, dataplane.Link{
						FromTier: dataplane.LinkLeaf, From: int32(leaf),
						ToTier: dataplane.LinkSpine, To: int32(spine),
					}, &aev)
				} else {
					host := f.topo.HostAt(leaf, em.Port)
					aev = event{kind: kindHost, id: int(host), pkt: em.Packet}
					f.admit(&st, dataplane.Link{
						FromTier: dataplane.LinkLeaf, From: int32(leaf),
						ToTier: dataplane.LinkHost, To: int32(host),
					}, &aev)
				}
			}
		case dataplane.KindSpine:
			spine := topology.SpineID(ev.id)
			ems, err := f.process(f.Spines[ev.id], &ev.pkt, ps)
			if err != nil {
				if chaos {
					d.Malformed++
					continue
				}
				return nil, err
			}
			for i := range ems {
				em := &ems[i]
				d.LinkBytes += em.Packet.WireSize()
				d.Links++
				if em.Up {
					core := f.topo.SpineUpstream(spine, em.Port)
					if f.failures.CoreFailed(core) && !probe {
						d.Lost++
						f.traceLost(trace.TierCore, int(core), em.Packet)
						continue
					}
					aev = event{kind: dataplane.KindCore, id: int(core), pkt: em.Packet}
					f.admit(&st, dataplane.Link{
						FromTier: dataplane.LinkSpine, From: int32(spine),
						ToTier: dataplane.LinkCore, To: int32(core),
					}, &aev)
				} else {
					leaf := f.topo.SpineDownstream(spine, em.Port)
					aev = event{kind: dataplane.KindLeaf, id: int(leaf), pkt: em.Packet}
					f.admit(&st, dataplane.Link{
						FromTier: dataplane.LinkSpine, From: int32(spine),
						ToTier: dataplane.LinkLeaf, To: int32(leaf),
					}, &aev)
				}
			}
		case dataplane.KindCore:
			core := topology.CoreID(ev.id)
			ems, err := f.process(f.Cores[ev.id], &ev.pkt, ps)
			if err != nil {
				if chaos {
					d.Malformed++
					continue
				}
				return nil, err
			}
			for i := range ems {
				em := &ems[i]
				d.LinkBytes += em.Packet.WireSize()
				d.Links++
				spine := f.topo.CoreDownstream(core, topology.PodID(em.Port))
				if f.failures.SpineFailed(spine) && !probe {
					d.Lost++
					f.traceLost(trace.TierSpine, int(spine), em.Packet)
					continue
				}
				aev = event{kind: dataplane.KindSpine, id: int(spine), pkt: em.Packet}
				f.admit(&st, dataplane.Link{
					FromTier: dataplane.LinkCore, From: int32(core),
					ToTier: dataplane.LinkSpine, To: int32(spine),
				}, &aev)
			}
		}
	}
	f.metrics.observeDelivery(d)
	if observed {
		f.observer.ObserveSend(dataplane.SendSample{
			VNI: st.vni, Group: st.group,
			Delivered: len(d.Received),
			Lost:      d.Lost + d.Malformed + d.FaultDrops,
			Bytes:     int64(d.LinkBytes),
			Hops:      d.Hops,
			Nanos:     time.Since(start).Nanoseconds(),
		})
	}
	return d, nil
}

func (f *Fabric) deliverHost(d *Delivery, h topology.HostID, pkt *dataplane.Packet) {
	inner, tel, ok := f.Hypervisors[h].DeliverFull(*pkt)
	if !ok {
		d.Spurious++
		return
	}
	if _, dup := d.Received[h]; dup {
		d.Duplicates++
	}
	d.Received[h] = inner
	if len(tel) > 0 {
		if d.Telemetry == nil {
			d.Telemetry = make(map[topology.HostID][]header.INTRecord)
		}
		d.Telemetry[h] = tel
	}
}
