package fabric

import (
	"strings"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// TestMetricsCountForwarding sends one deterministic Fig. 3 multicast
// with telemetry attached and asserts the per-tier counters via an
// exact snapshot diff — the send's rule-hit and delivery profile is
// fully determined by the encoding, so the deltas are exact numbers,
// not ranges.
func TestMetricsCountForwarding(t *testing.T) {
	ctrl, f := setup(t, paperTopo(), testConfig(0))
	reg := telemetry.NewRegistry()
	f.SetMetrics(NewMetrics(reg))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())

	before := reg.Snapshot()
	d, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("metered"))
	if err != nil {
		t.Fatal(err)
	}
	delta := reg.Snapshot().Delta(before)

	// Cross-check the telemetry deltas against the Delivery the same
	// send reported — the two accounts must agree exactly.
	want := map[string]float64{
		"elmo_host_encapsulated_total":     1,
		"elmo_host_delivered_total":        float64(len(d.Received)),
		"elmo_fabric_hops_total":           float64(d.Hops),
		"elmo_fabric_link_bytes_total":     float64(d.LinkBytes),
		"elmo_fabric_link_crossings_total": float64(d.Links),
	}
	for k, v := range want {
		if got := delta.Get(k); got != v {
			t.Errorf("delta[%s] = %v, want %v", k, got, v)
		}
	}
	if d.Spurious == 0 {
		if got := delta.Get("elmo_host_filtered_total"); got != 0 {
			t.Errorf("filtered delta = %v with no spurious deliveries", got)
		}
	}

	// Per-tier packet counters: every hop lands in exactly one tier.
	tiers := delta.Get(`elmo_dataplane_packets_total{tier="leaf"}`) +
		delta.Get(`elmo_dataplane_packets_total{tier="spine"}`) +
		delta.Get(`elmo_dataplane_packets_total{tier="core"}`)
	if tiers != float64(d.Hops) {
		t.Errorf("per-tier packets sum to %v, want %v hops", tiers, d.Hops)
	}
	if delta.Get(`elmo_dataplane_packets_total{tier="leaf"}`) == 0 ||
		delta.Get(`elmo_dataplane_packets_total{tier="spine"}`) == 0 ||
		delta.Get(`elmo_dataplane_packets_total{tier="core"}`) == 0 {
		t.Errorf("expected traffic in all three tiers, delta: %v", delta)
	}

	// Fig. 3 pops header sections at every modern hop; the byte counter
	// must move and the rule-hit counters must cover every forward.
	if delta.Get(`elmo_dataplane_header_bytes_popped_total{tier="leaf"}`) <= 0 {
		t.Error("leaf header bytes popped did not move")
	}
	if delta.Get(`elmo_dataplane_rule_hits_total{tier="leaf",rule="prule"}`) <= 0 {
		t.Error("leaf p-rule hits did not move")
	}
}

// TestMetricsExposition scrapes the text endpoint after a send and
// checks the required families render as valid exposition lines.
func TestMetricsExposition(t *testing.T) {
	ctrl, f := setup(t, paperTopo(), testConfig(0))
	reg := telemetry.NewRegistry()
	f.SetMetrics(NewMetrics(reg))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())
	if _, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE elmo_dataplane_packets_total counter",
		`elmo_dataplane_packets_total{tier="leaf"}`,
		`elmo_dataplane_rule_hits_total{tier="spine",rule="prule"}`,
		"elmo_host_encapsulated_total 1",
		"elmo_fabric_hops_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsAttachedAddsNoAllocations holds the dataplane hot path to
// a stronger bar than trace's disabled-parity: a fabric with telemetry
// *attached and live* allocates exactly as much per send as a bare
// fabric — counters are atomic adds into preallocated cells, so even
// the enabled path is allocation-free.
func TestMetricsAttachedAddsNoAllocations(t *testing.T) {
	send := func(f *Fabric) func() {
		addr := dataplane.GroupAddr{VNI: 1, Group: 1}
		payload := []byte("alloc probe")
		return func() {
			if _, err := f.Send(0, addr, payload); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctrl, bare := setup(t, paperTopo(), testConfig(0))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, bare, key, figure3Hosts())
	baseline := testing.AllocsPerRun(200, send(bare))

	ctrl2, metered := setup(t, paperTopo(), testConfig(0))
	reg := telemetry.NewRegistry()
	metered.SetMetrics(NewMetrics(reg))
	installGroup(t, ctrl2, metered, key, figure3Hosts())
	withMetrics := testing.AllocsPerRun(200, send(metered))

	if withMetrics != baseline {
		t.Fatalf("attached telemetry changed allocations: %.1f → %.1f per send",
			baseline, withMetrics)
	}
	if reg.Snapshot().Get("elmo_host_encapsulated_total") == 0 {
		t.Fatal("telemetry was attached but recorded nothing")
	}

	// And the detached path (nil counters) matches the baseline too.
	metered.SetMetrics(nil)
	detached := testing.AllocsPerRun(200, send(metered))
	if detached != baseline {
		t.Fatalf("detached telemetry changed allocations: %.1f → %.1f per send",
			baseline, detached)
	}
}

// BenchmarkForwardMetricsOn measures the synchronous forward path with
// live telemetry attached; the budget is a handful of atomic adds per
// hop and zero allocations beyond the bare fabric's own.
func BenchmarkForwardMetricsOn(b *testing.B) {
	topo := paperTopo()
	ctrl, err := controller.New(topo, testConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	f := New(topo, testConfig(0).SRuleCapacity)
	f.SetFailures(ctrl.Failures())
	reg := telemetry.NewRegistry()
	f.SetMetrics(NewMetrics(reg))
	key := controller.GroupKey{Tenant: 1, Group: 1}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range figure3Hosts() {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		b.Fatal(err)
	}
	if _, err := f.InstallGroup(ctrl, key); err != nil {
		b.Fatal(err)
	}
	addr := dataplane.GroupAddr{VNI: 1, Group: 1}
	payload := []byte("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Send(0, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}
