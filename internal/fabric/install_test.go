package fabric

import (
	"testing"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

func TestInstallEncodingDirect(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 0 // force s-rules
	cfg.SpineRuleLimit = 0
	f := New(topo, 4)
	receivers := []topology.HostID{0, 1, 40}
	enc, err := controller.ComputeEncoding(topo, cfg, controller.CapacityFunc{
		Leaf: func(topology.LeafID) bool { return true },
		Pod:  func(topology.PodID) bool { return true },
	}, receivers)
	if err != nil {
		t.Fatal(err)
	}
	addr := dataplane.GroupAddr{VNI: 1, Group: 1}
	if err := f.InstallEncoding(addr, enc, receivers); err != nil {
		t.Fatal(err)
	}
	// Sender header installed directly.
	hdr, err := controller.SenderHeader(topo, cfg, enc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InstallSenderHeader(addr, 0, hdr); err != nil {
		t.Fatal(err)
	}
	d, err := f.Send(0, addr, []byte("direct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Received) != 2 {
		t.Fatalf("delivery = %s", d)
	}
	// Uninstall clears everything.
	f.RemoveSenderHeader(addr, 0)
	f.UninstallEncoding(addr, enc, receivers)
	for _, sw := range f.Leaves {
		if sw.SRuleCount() != 0 {
			t.Fatal("leaf s-rules leaked")
		}
	}
	for _, sw := range f.Spines {
		if sw.SRuleCount() != 0 {
			t.Fatal("spine s-rules leaked")
		}
	}
	if _, err := f.Send(0, addr, []byte("x")); err == nil {
		t.Fatal("send succeeded after flow removal")
	}
}

func TestInstallEncodingCapacityError(t *testing.T) {
	topo := paperTopo()
	cfg := testConfig(0)
	cfg.LeafRuleLimit = 0
	cfg.SpineRuleLimit = 0
	// Fabric tables hold only 1 entry; install two encodings that both
	// need a leaf s-rule on leaf 0.
	f := New(topo, 1)
	fullCap := controller.CapacityFunc{
		Leaf: func(topology.LeafID) bool { return true },
		Pod:  func(topology.PodID) bool { return true },
	}
	receivers := []topology.HostID{0, 1}
	enc, err := controller.ComputeEncoding(topo, cfg, fullCap, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InstallEncoding(dataplane.GroupAddr{VNI: 1, Group: 1}, enc, receivers); err != nil {
		t.Fatal(err)
	}
	if err := f.InstallEncoding(dataplane.GroupAddr{VNI: 1, Group: 2}, enc, receivers); err == nil {
		t.Fatal("second install should exceed fabric table capacity")
	}
}

func TestInstallGroupUnknownKey(t *testing.T) {
	topo := paperTopo()
	ctrl, f := setup(t, topo, testConfig(0))
	if _, err := f.InstallGroup(ctrl, controller.GroupKey{Tenant: 9, Group: 9}); err == nil {
		t.Fatal("unknown group installed")
	}
	if err := f.UninstallGroup(ctrl, controller.GroupKey{Tenant: 9, Group: 9}); err == nil {
		t.Fatal("unknown group uninstalled")
	}
}

func TestSendWithoutFlowFails(t *testing.T) {
	topo := paperTopo()
	_, f := setup(t, topo, testConfig(0))
	if _, err := f.Send(0, dataplane.GroupAddr{VNI: 5, Group: 5}, []byte("x")); err == nil {
		t.Fatal("send without installed flow accepted")
	}
}
