// Package p4gen emits the P4_16 programs that configure Elmo's
// programmable switches at boot time (paper §2: "The controller relies
// on a high-level language (like P4) to configure the programmable
// switches"; §4: the network-switch implementation matches p-rules in
// the parser with match-and-set, and the ingress control falls back to
// the s-rule group table and the default p-rule).
//
// The generated program is specialized to a concrete fabric layout —
// bitmap widths and p-rule counts become fixed-width header fields and
// unrolled parser states, exactly how the paper sidesteps match-action
// tables for p-rule lookup (Appendix A shows why tables are
// prohibitively expensive). The output mirrors the authors' published
// p4-programs repository in structure: one program per switch tier,
// plus the hypervisor encapsulation pipeline.
package p4gen

import (
	"fmt"
	"strings"

	"elmo/internal/bitmap"
	"elmo/internal/header"
)

// Tier selects which switch program to generate.
type Tier int

const (
	// TierLeaf generates the leaf (ToR) program: u-leaf handling
	// upstream, d-leaf match-and-set downstream, host-facing strip.
	TierLeaf Tier = iota
	// TierSpine generates the spine program.
	TierSpine
	// TierCore generates the core program (bitmap fan-out only).
	TierCore
)

func (t Tier) String() string {
	switch t {
	case TierLeaf:
		return "leaf"
	case TierSpine:
		return "spine"
	case TierCore:
		return "core"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Options bounds the unrolled parser.
type Options struct {
	// MaxSpineRules / MaxLeafRules unroll this many p-rule parser
	// states per downstream section (HMax per layer + default).
	MaxSpineRules, MaxLeafRules int
	// MaxSwitchesPerRule unrolls identifier comparisons per rule (Kmax).
	MaxSwitchesPerRule int
	// EnableINT adds the telemetry section and per-hop stamping.
	EnableINT bool
}

// PaperOptions mirrors the evaluation's budgets.
func PaperOptions() Options {
	return Options{MaxSpineRules: 2, MaxLeafRules: 30, MaxSwitchesPerRule: 2}
}

// NetworkSwitchProgram generates the P4_16 program for one switch tier
// under the given layout.
func NetworkSwitchProgram(l header.Layout, tier Tier, opts Options) (string, error) {
	if err := l.Validate(); err != nil {
		return "", err
	}
	if opts.MaxSpineRules < 0 || opts.MaxLeafRules < 0 || opts.MaxSwitchesPerRule < 1 {
		return "", fmt.Errorf("p4gen: invalid options %+v", opts)
	}
	var b strings.Builder
	p := &printer{b: &b}
	p.f("// Elmo %s switch — generated for layout %+v", tier, l)
	p.f("// Source: elmo/internal/p4gen (do not edit)")
	p.f("#include <core.p4>")
	p.f("#include <v1model.p4>")
	p.f("")
	emitHeaderTypes(p, l, opts)
	emitParser(p, l, tier, opts)
	emitIngress(p, l, tier, opts)
	emitEgressAndDeparser(p, l, tier, opts)
	p.f("V1Switch(ElmoParser(), verifyChecksum(), ElmoIngress(), ElmoEgress(), computeChecksum(), ElmoDeparser()) main;")
	return b.String(), nil
}

type printer struct {
	b      *strings.Builder
	indent int
}

func (p *printer) f(format string, args ...interface{}) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
	fmt.Fprintf(p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) open(format string, args ...interface{}) {
	p.f(format+" {", args...)
	p.indent++
}

func (p *printer) close(suffix string) {
	p.indent--
	p.f("}%s", suffix)
}

// bits returns the wire width in bits for a bitmap of the given port
// count (byte-aligned, as the Go encoder emits it).
func bits(width int) int { return 8 * bitmap.ByteLen(width) }

func emitHeaderTypes(p *printer, l header.Layout, opts Options) {
	p.f("// --- Outer encapsulation (Ethernet/IPv4/UDP/VXLAN) ---")
	p.open("header ethernet_t")
	p.f("bit<48> dst_addr; bit<48> src_addr; bit<16> ether_type;")
	p.close("")
	p.open("header ipv4_t")
	p.f("bit<4> version; bit<4> ihl; bit<8> dscp; bit<16> total_len;")
	p.f("bit<16> identification; bit<3> flags; bit<13> frag_offset;")
	p.f("bit<8> ttl; bit<8> protocol; bit<16> hdr_checksum;")
	p.f("bit<32> src_addr; bit<32> dst_addr;")
	p.close("")
	p.open("header udp_t")
	p.f("bit<16> src_port; bit<16> dst_port; bit<16> length; bit<16> checksum;")
	p.close("")
	p.open("header vxlan_t")
	p.f("bit<8> flags; bit<8> elmo_version; bit<16> reserved; bit<24> vni; bit<8> reserved2;")
	p.close("")
	p.f("")
	p.f("// --- Elmo section stream ---")
	p.open("header elmo_tag_t")
	p.f("bit<8> tag;")
	p.close("")
	p.open("header elmo_uleaf_t")
	p.f("bit<8> flags; bit<%d> down_ports; bit<%d> up_ports;", bits(l.LeafDown), bits(l.LeafUp))
	p.close("")
	p.open("header elmo_uspine_t")
	p.f("bit<8> flags; bit<%d> down_ports; bit<%d> up_ports;", bits(l.SpineDown), bits(l.SpineUp))
	p.close("")
	p.open("header elmo_core_t")
	p.f("bit<%d> pods;", bits(l.CoreDown))
	p.close("")
	p.open("header elmo_rule_count_t")
	p.f("bit<8> count;")
	p.close("")
	// One header type per (layer, switch-id slot) — identifiers are
	// u16 on the wire and Kmax bounds the list.
	p.open("header elmo_dspine_rule_t")
	p.f("bit<8> n_ids; bit<%d> ids; bit<%d> ports;", 16*opts.MaxSwitchesPerRule, bits(l.SpineDown))
	p.close("")
	p.open("header elmo_dleaf_rule_t")
	p.f("bit<8> n_ids; bit<%d> ids; bit<%d> ports;", 16*opts.MaxSwitchesPerRule, bits(l.LeafDown))
	p.close("")
	p.open("header elmo_default_t")
	p.f("bit<8> present; bit<%d> ports;", bits(l.LeafDown))
	p.close("")
	if opts.EnableINT {
		p.open("header elmo_int_record_t")
		p.f("bit<8> tier; bit<16> switch_id; bit<8> meta;")
		p.close("")
	}
	p.f("")
	p.open("struct elmo_metadata_t")
	p.f("bit<1> matched; bit<%d> out_ports; bit<1> has_default; bit<%d> default_ports;",
		maxInt(bits(l.LeafDown), bits(l.SpineDown)), maxInt(bits(l.LeafDown), bits(l.SpineDown)))
	p.f("bit<1> multipath; bit<16> my_id;")
	p.close("")
	p.f("")
}

func emitParser(p *printer, l header.Layout, tier Tier, opts Options) {
	p.f("// The parser is the p-rule matcher (§4.1): each unrolled state")
	p.f("// compares the rule's identifier list against the switch's own")
	p.f("// identifier (match-and-set) and records the first hit's bitmap")
	p.f("// in metadata, skipping the remaining rules structurally.")
	p.open("parser ElmoParser(packet_in pkt, out headers hdr, inout elmo_metadata_t meta, inout standard_metadata_t std)")
	p.open("state start")
	p.f("pkt.extract(hdr.ethernet);")
	p.f("pkt.extract(hdr.ipv4);")
	p.f("pkt.extract(hdr.udp);")
	p.f("pkt.extract(hdr.vxlan);")
	p.f("transition select(hdr.vxlan.elmo_version) { %d: parse_section; default: accept; }", header.Version)
	p.close("")
	p.open("state parse_section")
	p.f("transition select(pkt.lookahead<bit<8>>()) {")
	p.f("    0x%02x: parse_uleaf;", header.TagULeaf)
	p.f("    0x%02x: parse_uspine;", header.TagUSpine)
	p.f("    0x%02x: parse_core;", header.TagCore)
	p.f("    0x%02x: parse_dspine_count;", header.TagDSpine)
	p.f("    0x%02x: parse_dleaf_count;", header.TagDLeaf)
	if opts.EnableINT {
		p.f("    0x%02x: parse_int;", header.TagINT)
	}
	p.f("    default: accept;")
	p.f("}")
	p.close("")
	p.open("state parse_uleaf")
	p.f("pkt.extract(hdr.uleaf_tag); pkt.extract(hdr.uleaf);")
	p.f("meta.multipath = hdr.uleaf.flags[0:0];")
	p.f("transition parse_section;")
	p.close("")
	p.open("state parse_uspine")
	p.f("pkt.extract(hdr.uspine_tag); pkt.extract(hdr.uspine);")
	p.f("transition parse_section;")
	p.close("")
	p.open("state parse_core")
	p.f("pkt.extract(hdr.core_tag); pkt.extract(hdr.core);")
	p.f("transition parse_section;")
	p.close("")
	emitRuleStates(p, "dspine", opts.MaxSpineRules, bits(l.SpineDown))
	emitRuleStates(p, "dleaf", opts.MaxLeafRules, bits(l.LeafDown))
	if opts.EnableINT {
		p.open("state parse_int")
		p.f("pkt.extract(hdr.int_tag); pkt.extract(hdr.int_count);")
		p.f("transition accept; // records parsed by the egress stamper")
		p.close("")
	}
	p.close(" // parser")
	p.f("")
}

// emitRuleStates unrolls the match-and-set chain for one downstream
// section: state i extracts rule i, compares identifiers against
// meta.my_id, and either records the bitmap or falls through to rule
// i+1, ending at the optional default rule.
func emitRuleStates(p *printer, section string, n, portBits int) {
	p.open("state parse_%s_count", section)
	p.f("pkt.extract(hdr.%s_tag); pkt.extract(hdr.%s_count);", section, section)
	if n > 0 {
		p.f("transition select(hdr.%s_count.count) { 0: parse_%s_default; default: parse_%s_rule_0; }",
			section, section, section)
	} else {
		p.f("transition parse_%s_default;", section)
	}
	p.close("")
	for i := 0; i < n; i++ {
		p.open("state parse_%s_rule_%d", section, i)
		p.f("pkt.extract(hdr.%s_rules[%d]);", section, i)
		p.f("// match-and-set: record the bitmap when an identifier hits")
		p.f("transition select(elmo_id_match(hdr.%s_rules[%d], meta.my_id)) {", section, i)
		if i+1 < n {
			p.f("    1: parse_%s_matched_%d;", section, i)
			p.f("    default: select(hdr.%s_count.count) { %d: parse_%s_default; default: parse_%s_rule_%d; };",
				section, i+1, section, section, i+1)
		} else {
			p.f("    1: parse_%s_matched_%d;", section, i)
			p.f("    default: parse_%s_default;", section)
		}
		p.f("}")
		p.close("")
		p.open("state parse_%s_matched_%d", section, i)
		p.f("meta.matched = 1;")
		p.f("meta.out_ports = (bit<%d>)hdr.%s_rules[%d].ports;", portBits, section, i)
		p.f("transition parse_%s_skip_%d;", section, i)
		p.close("")
	}
	p.open("state parse_%s_default", section)
	p.f("pkt.extract(hdr.%s_default);", section)
	p.f("meta.has_default = (bit<1>)hdr.%s_default.present;", section)
	p.f("transition parse_section;")
	p.close("")
}

func emitIngress(p *printer, l header.Layout, tier Tier, opts Options) {
	p.f("// Ingress control flow (§4.1): matched p-rule bitmap, else the")
	p.f("// s-rule group table keyed by (VNI, group IP), else the default")
	p.f("// p-rule, else drop.")
	p.open("control ElmoIngress(inout headers hdr, inout elmo_metadata_t meta, inout standard_metadata_t std)")
	p.open("action set_srule_ports(bit<%d> ports)", maxInt(bits(l.LeafDown), bits(l.SpineDown)))
	p.f("meta.out_ports = ports; meta.matched = 1;")
	p.close("")
	p.open("table srule_group_table")
	p.f("key = { hdr.vxlan.vni: exact; hdr.ipv4.dst_addr: exact; }")
	p.f("actions = { set_srule_ports; NoAction; }")
	p.f("size = 10000; // Fmax")
	p.close("")
	p.open("apply")
	switch tier {
	case TierCore:
		p.f("bitmap_port_select(hdr.core.pods); // one copy per pod bit")
	default:
		p.f("if (meta.matched == 1) {")
		p.f("    bitmap_port_select(meta.out_ports);")
		p.f("} else if (srule_group_table.apply().hit) {")
		p.f("    bitmap_port_select(meta.out_ports);")
		p.f("} else if (meta.has_default == 1) {")
		p.f("    bitmap_port_select(meta.default_ports);")
		p.f("} else {")
		p.f("    mark_to_drop(std);")
		p.f("}")
		if tier == TierLeaf {
			p.f("// upstream direction: deliver down_ports and multipath/up_ports")
			p.f("if (hdr.uleaf.isValid()) {")
			p.f("    bitmap_port_select(hdr.uleaf.down_ports);")
			p.f("    if (meta.multipath == 1) { ecmp_select_upstream(); }")
			p.f("    else { bitmap_port_select_up(hdr.uleaf.up_ports); }")
			p.f("}")
		}
		if tier == TierSpine {
			p.f("if (hdr.uspine.isValid()) {")
			p.f("    bitmap_port_select(hdr.uspine.down_ports);")
			p.f("    if (meta.multipath == 1) { ecmp_select_upstream(); }")
			p.f("    else { bitmap_port_select_up(hdr.uspine.up_ports); }")
			p.f("}")
		}
	}
	p.close("")
	p.close(" // ingress")
	p.f("")
}

func emitEgressAndDeparser(p *printer, l header.Layout, tier Tier, opts Options) {
	p.f("// Egress pops the sections the next tier no longer needs (D2d);")
	p.f("// host-facing ports strip every p-rule section (§4.1).")
	p.open("control ElmoEgress(inout headers hdr, inout elmo_metadata_t meta, inout standard_metadata_t std)")
	p.open("apply")
	switch tier {
	case TierLeaf:
		p.f("if (is_host_port(std.egress_port)) { invalidate_all_prules(hdr); }")
		p.f("else { hdr.uleaf_tag.setInvalid(); hdr.uleaf.setInvalid(); }")
	case TierSpine:
		p.f("if (is_down_port(std.egress_port)) { invalidate_through_dspine(hdr); }")
		p.f("else { hdr.uspine_tag.setInvalid(); hdr.uspine.setInvalid(); }")
	case TierCore:
		p.f("hdr.core_tag.setInvalid(); hdr.core.setInvalid();")
	}
	if opts.EnableINT {
		p.f("append_int_record(hdr, %d /* tier */, meta.my_id, hdr.ipv4.ttl);", int(tier)+1)
	}
	p.close("")
	p.close(" // egress")
	p.f("")
	p.open("control ElmoDeparser(packet_out pkt, in headers hdr)")
	p.open("apply")
	p.f("pkt.emit(hdr);")
	p.close("")
	p.close(" // deparser")
	p.f("")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HypervisorPipeline emits the PISCES-style flow-rule template the
// hypervisor switch uses: a single set_field action writing the whole
// precomputed p-rule blob in one call (§4.2 — per-rule writes collapse
// throughput; see apps.PerRuleWrite for the measured ablation).
func HypervisorPipeline(l header.Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# PISCES/OVS flow template for Elmo sender flows (one write per packet)\n")
	fmt.Fprintf(&b, "# layout: %+v\n", l)
	fmt.Fprintf(&b, "table=multicast_groups, priority=100,\n")
	fmt.Fprintf(&b, "  match: tun_id=VNI, ip_dst=GROUP_IP (239/8)\n")
	fmt.Fprintf(&b, "  actions: set_field(elmo_blob=PRECOMPUTED_SECTION_STREAM),\n")
	fmt.Fprintf(&b, "           set_field(vxlan.elmo_version=%d), output(uplink)\n", header.Version)
	fmt.Fprintf(&b, "table=receive_filter, priority=100,\n")
	fmt.Fprintf(&b, "  match: tun_id=VNI, ip_dst=GROUP_IP, local_member=true\n")
	fmt.Fprintf(&b, "  actions: decap_all(), output(vm_port)\n")
	fmt.Fprintf(&b, "table=receive_filter, priority=1,\n")
	fmt.Fprintf(&b, "  match: ip_dst=239.0.0.0/8\n")
	fmt.Fprintf(&b, "  actions: drop()  # spurious copies from shared bitmaps/default rules\n")
	return b.String()
}
