package p4gen

import (
	"strings"
	"testing"

	"elmo/internal/header"
	"elmo/internal/topology"
)

func paperLayout() header.Layout {
	return header.LayoutFor(topology.MustNew(topology.FacebookFabric()))
}

func TestProgramsGenerateForAllTiers(t *testing.T) {
	l := paperLayout()
	for _, tier := range []Tier{TierLeaf, TierSpine, TierCore} {
		prog, err := NetworkSwitchProgram(l, tier, PaperOptions())
		if err != nil {
			t.Fatalf("%v: %v", tier, err)
		}
		for _, want := range []string{
			"#include <v1model.p4>",
			"parser ElmoParser",
			"control ElmoIngress",
			"control ElmoDeparser",
			"V1Switch(",
			"header vxlan_t",
		} {
			if !strings.Contains(prog, want) {
				t.Fatalf("%v: program missing %q", tier, want)
			}
		}
		if balance(prog) != 0 {
			t.Fatalf("%v: unbalanced braces (%d)", tier, balance(prog))
		}
	}
}

func balance(s string) int {
	n := 0
	for _, c := range s {
		switch c {
		case '{':
			n++
		case '}':
			n--
		}
	}
	return n
}

func TestParserUnrollMatchesBudget(t *testing.T) {
	l := paperLayout()
	opts := PaperOptions() // 30 leaf rules, 2 spine rules
	prog, err := NetworkSwitchProgram(l, TierLeaf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(prog, "state parse_dleaf_rule_"); got != opts.MaxLeafRules {
		t.Fatalf("leaf rule states = %d, want %d", got, opts.MaxLeafRules)
	}
	if got := strings.Count(prog, "state parse_dspine_rule_"); got != opts.MaxSpineRules {
		t.Fatalf("spine rule states = %d, want %d", got, opts.MaxSpineRules)
	}
	// Bitmap widths reflect the layout (48 hosts/leaf -> 48-bit field).
	if !strings.Contains(prog, "bit<48> down_ports") {
		t.Fatal("leaf down_ports width missing")
	}
	// The s-rule table carries the Fmax size.
	if !strings.Contains(prog, "size = 10000") {
		t.Fatal("Fmax table size missing")
	}
	// Ingress control order: matched -> s-rule -> default -> drop.
	idxMatched := strings.Index(prog, "if (meta.matched == 1)")
	idxSRule := strings.Index(prog, "srule_group_table.apply().hit")
	idxDefault := strings.Index(prog, "meta.has_default == 1")
	idxDrop := strings.Index(prog, "mark_to_drop")
	if !(idxMatched < idxSRule && idxSRule < idxDefault && idxDefault < idxDrop) {
		t.Fatal("ingress fallback order wrong")
	}
}

func TestINTOptionAddsStamping(t *testing.T) {
	l := paperLayout()
	opts := PaperOptions()
	opts.EnableINT = true
	prog, err := NetworkSwitchProgram(l, TierSpine, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog, "elmo_int_record_t") || !strings.Contains(prog, "append_int_record") {
		t.Fatal("INT support missing")
	}
	plain, _ := NetworkSwitchProgram(l, TierSpine, PaperOptions())
	if strings.Contains(plain, "append_int_record") {
		t.Fatal("INT emitted without the option")
	}
}

func TestCoreProgramHasNoGroupTableLookup(t *testing.T) {
	l := paperLayout()
	prog, err := NetworkSwitchProgram(l, TierCore, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Cores forward purely from the pods bitmap.
	if !strings.Contains(prog, "bitmap_port_select(hdr.core.pods)") {
		t.Fatal("core fan-out missing")
	}
	if strings.Contains(prog, "srule_group_table.apply()") {
		t.Fatal("core program consults a group table")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	l := paperLayout()
	a, _ := NetworkSwitchProgram(l, TierLeaf, PaperOptions())
	b, _ := NetworkSwitchProgram(l, TierLeaf, PaperOptions())
	if a != b {
		t.Fatal("generation not deterministic")
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := NetworkSwitchProgram(header.Layout{}, TierLeaf, PaperOptions()); err == nil {
		t.Fatal("invalid layout accepted")
	}
	bad := PaperOptions()
	bad.MaxSwitchesPerRule = 0
	if _, err := NetworkSwitchProgram(paperLayout(), TierLeaf, bad); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestHypervisorPipeline(t *testing.T) {
	out := HypervisorPipeline(paperLayout())
	for _, want := range []string{"multicast_groups", "PRECOMPUTED_SECTION_STREAM", "receive_filter", "drop()"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pipeline missing %q", want)
		}
	}
}
