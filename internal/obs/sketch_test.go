package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSketchAccuracy drives the Space-Saving summary with a seeded
// zipf-ish workload and checks every classic guarantee against exact
// counts: no undercounting, bounded overcounting, and every true
// heavy hitter (count > total/K) resident in the summary.
func TestSketchAccuracy(t *testing.T) {
	const (
		keys  = 400
		draws = 50000
		k     = 32
	)
	rng := rand.New(rand.NewSource(42))
	// Zipf-ish weights: key i drawn with probability ~ 1/(i+1).
	weights := make([]float64, keys)
	sum := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		sum += weights[i]
	}
	draw := func() uint64 {
		x := rng.Float64() * sum
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return uint64(i)
			}
		}
		return uint64(keys - 1)
	}

	s := NewSketch(k)
	exact := make(map[uint64]int64, keys)
	for i := 0; i < draws; i++ {
		key := draw()
		exact[key]++
		s.Update(key, 1, 100)
	}

	if got := s.Total(); got != draws {
		t.Fatalf("Total() = %d, want %d", got, draws)
	}
	top := s.Top(0)
	if len(top) != k {
		t.Fatalf("summary holds %d keys, want %d", len(top), k)
	}
	resident := make(map[uint64]HeavyHitter, len(top))
	for _, h := range top {
		key := uint64(h.VNI)<<32 | uint64(h.Group)
		resident[key] = h
		truth := exact[key]
		if h.Count < truth {
			t.Errorf("key %d: estimate %d undercounts true %d", key, h.Count, truth)
		}
		if h.Count-h.Err > truth {
			t.Errorf("key %d: estimate %d - err %d exceeds true %d", key, h.Count, h.Err, truth)
		}
	}
	// Any key with true count > total/K must be resident.
	for key, n := range exact {
		if n > draws/k {
			if _, ok := resident[key]; !ok {
				t.Errorf("true heavy hitter key %d (count %d > %d) evicted", key, n, draws/k)
			}
		}
	}
	// The top of the estimate matches the true top for the keys that
	// dominate the zipf head.
	type kv struct {
		key uint64
		n   int64
	}
	truth := make([]kv, 0, len(exact))
	for key, n := range exact {
		truth = append(truth, kv{key, n})
	}
	sort.Slice(truth, func(a, b int) bool { return truth[a].n > truth[b].n })
	for i := 0; i < 3; i++ {
		found := false
		for _, h := range top[:10] {
			if uint64(h.VNI)<<32|uint64(h.Group) == truth[i].key {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("true top-%d key %d missing from estimated top-10", i+1, truth[i].key)
		}
	}
	// Top must be sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("Top not sorted at %d: %d > %d", i, top[i].Count, top[i-1].Count)
		}
	}
}

// TestSketchSmall checks under-capacity behavior: exact counts, zero
// error, byte ride-along.
func TestSketchSmall(t *testing.T) {
	s := NewSketch(8)
	s.Update(groupKey(1, 7), 3, 300)
	s.Update(groupKey(1, 9), 1, 100)
	s.Update(groupKey(1, 7), 2, 200)
	top := s.Top(0)
	if len(top) != 2 {
		t.Fatalf("got %d entries, want 2", len(top))
	}
	if top[0].VNI != 1 || top[0].Group != 7 || top[0].Count != 5 || top[0].Err != 0 || top[0].Bytes != 500 {
		t.Fatalf("hot entry wrong: %+v", top[0])
	}
	if top[1].Count != 1 || top[1].Err != 0 {
		t.Fatalf("cold entry wrong: %+v", top[1])
	}
}
