// Package obs is the live ops plane: windowed per-link utilization,
// top-K heavy-hitter groups, JSON introspection endpoints, and SLO
// burn-rate health, layered on internal/telemetry.
//
// The Plane implements dataplane.FlowObserver and attaches to a
// fabric with Fabric.SetObserver. The discipline matches trace and
// chaos: when disabled, the fabric's ObsOn guard (one nil check plus
// one atomic load per site) skips every call, so the forwarding hot
// path allocates nothing and takes no locks — pinned by the
// alloc-parity tests and the bench-gate CI job. When enabled, the
// per-link path is two atomic adds and the per-send path is a few
// atomics plus one small sketch mutex.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// DurableStatus is the slice of the durable controller the ops plane
// reports (implemented by *durable.DurableController; declared here so
// obs does not import the durable machinery).
type DurableStatus interface {
	Epoch() uint64
	LastLSN() uint64
	SnapshotLSN() uint64
	LeaseMisses() int
	NotLeaderErr() error
	ReplicationErr() error
}

// Options configures a Plane. Topology is required; everything else
// has serviceable defaults or is optional.
type Options struct {
	Topology *topology.Topology
	// Registry, when set, receives the elmo_obs_* and elmo_slo_*
	// metric families.
	Registry *telemetry.Registry
	// Controller, when set, backs the /debug/elmo/groups, group, and
	// controller endpoints.
	Controller *controller.Controller
	// Durable, when set, adds epoch/WAL/lease state to the controller
	// endpoint and leader validity to /readyz.
	Durable DurableStatus
	// FollowerAcks, when set, gates /readyz on replication currency
	// (ready only when acked == total). Typically
	// ReplicaSet.FollowerAcks.
	FollowerAcks func() (acked, total int)

	// TopK is the heavy-hitter sketch capacity (default 32).
	TopK int
	// RingWidth is the number of rate buckets retained per link
	// (default 60).
	RingWidth int
	// SampleEvery is the sampler cadence (default 1s).
	SampleEvery time.Duration
	// LatencyBound is the per-send forwarding-latency SLO threshold: a
	// send is "good" when it completes within the bound (default 5ms).
	LatencyBound time.Duration
	// DeliveryTarget and LatencyTarget are the SLO good-ratio targets
	// (defaults 0.999 and 0.99).
	DeliveryTarget float64
	LatencyTarget  float64
	// Rules overrides the burn-rate rule set (default
	// DefaultBurnRules).
	Rules []BurnRule
}

// Plane is the ops plane instance. Zero value is not usable; build
// with New. A fresh Plane starts disabled — attach it, then Enable.
type Plane struct {
	opts    Options
	enabled atomic.Bool

	links  *LinkTable
	groups *Sketch

	// Cumulative SLO inputs, written on the per-send path.
	delivered atomic.Int64 // host copies delivered
	lost      atomic.Int64 // copies lost in flight
	sends     atomic.Int64 // completed sends
	fastSends atomic.Int64 // sends within LatencyBound
	sendBytes atomic.Int64

	latencyBound int64 // nanos
	slo          *SLOEngine
	latencyHist  *telemetry.Histogram
	hopsHist     *telemetry.Histogram

	stopSampler chan struct{}
}

// New builds a Plane over the topology described by opts.
func New(opts Options) *Plane {
	if opts.DeliveryTarget <= 0 || opts.DeliveryTarget >= 1 {
		opts.DeliveryTarget = 0.999
	}
	if opts.LatencyTarget <= 0 || opts.LatencyTarget >= 1 {
		opts.LatencyTarget = 0.99
	}
	if opts.LatencyBound <= 0 {
		opts.LatencyBound = 5 * time.Millisecond
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = time.Second
	}
	p := &Plane{
		opts:         opts,
		links:        NewLinkTable(opts.Topology, opts.RingWidth),
		groups:       NewSketch(opts.TopK),
		latencyBound: opts.LatencyBound.Nanoseconds(),
	}
	p.slo = NewSLOEngine([]Objective{
		{
			Name:   "delivery_ratio",
			Target: opts.DeliveryTarget,
			Good:   p.delivered.Load,
			Total:  func() int64 { return p.delivered.Load() + p.lost.Load() },
		},
		{
			Name:   "send_latency",
			Target: opts.LatencyTarget,
			Good:   p.fastSends.Load,
			Total:  p.sends.Load,
		},
	}, opts.Rules, 0)
	if reg := opts.Registry; reg != nil {
		p.latencyHist = reg.Histogram("elmo_obs_send_latency_seconds",
			"Wall-clock fabric forwarding time per send.", telemetry.LatencyBuckets)
		p.hopsHist = reg.Histogram("elmo_obs_send_hops",
			"Switch traversals per send.", []float64{1, 2, 4, 8, 16, 32, 64, 128})
		reg.GaugeFunc("elmo_slo_healthy",
			"1 when no page-severity SLO burn rule is firing.",
			func() float64 { return b2f(p.Status().Healthy) })
		reg.GaugeFunc("elmo_slo_ready",
			"1 when the instance is ready to serve (leader valid, replication current).",
			func() float64 { ok, _ := p.Ready(); return b2f(ok) })
		ratios := reg.GaugeVec("elmo_slo_good_ratio",
			"All-time good ratio per SLO objective.", "objective")
		burns := reg.GaugeVec("elmo_slo_burn_rate",
			"Error-budget burn rate per objective over the rule windows.", "objective", "window")
		for _, name := range []string{"delivery_ratio", "send_latency"} {
			obj := name
			ratios.Func(func() float64 {
				for _, o := range p.Status().Objectives {
					if o.Name == obj {
						return o.GoodRatio
					}
				}
				return 1
			}, obj)
			seen := map[time.Duration]bool{}
			for _, r := range p.sloRules() {
				for _, w := range []time.Duration{r.Short, r.Long} {
					if seen[w] {
						continue
					}
					seen[w] = true
					win := w
					burns.Func(func() float64 {
						b, _ := p.slo.BurnRate(obj, win)
						return b
					}, obj, win.String())
				}
			}
		}
	}
	return p
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (p *Plane) sloRules() []BurnRule {
	if p.opts.Rules != nil {
		return p.opts.Rules
	}
	return DefaultBurnRules()
}

// Enable turns observation on; Disable returns the fabric hot path to
// its zero-cost state.
func (p *Plane) Enable()  { p.enabled.Store(true) }
func (p *Plane) Disable() { p.enabled.Store(false) }

// Active implements dataplane.FlowObserver.
func (p *Plane) Active() bool { return p.enabled.Load() }

// ObserveLink implements dataplane.FlowObserver: two atomic adds.
func (p *Plane) ObserveLink(l dataplane.Link, bytes int) {
	p.links.observe(l, bytes)
}

// ObserveSend implements dataplane.FlowObserver.
func (p *Plane) ObserveSend(s dataplane.SendSample) {
	if s.VNI == dataplane.ProbeVNI {
		return // chaos liveness probes are not tenant traffic
	}
	p.delivered.Add(int64(s.Delivered))
	p.lost.Add(int64(s.Lost))
	p.sends.Add(1)
	p.sendBytes.Add(s.Bytes)
	if s.Nanos <= p.latencyBound {
		p.fastSends.Add(1)
	}
	if p.latencyHist != nil {
		p.latencyHist.Observe(float64(s.Nanos) / 1e9)
		p.hopsHist.Observe(float64(s.Hops))
	}
	p.groups.Update(groupKey(s.VNI, s.Group), 1, s.Bytes)
}

// Sample takes one observation cut at time now: a rate bucket per link
// and an SLO sample per objective. The sampler goroutine calls it at
// the configured cadence; tests call it with explicit times.
func (p *Plane) Sample(now time.Time) {
	p.links.Sample(now)
	p.slo.Tick(now)
}

// StartSampler launches the background sampler; the returned func
// stops it (idempotent).
func (p *Plane) StartSampler() (stop func()) {
	ch := make(chan struct{})
	p.stopSampler = ch
	go func() {
		t := time.NewTicker(p.opts.SampleEvery)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case now := <-t.C:
				p.Sample(now)
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(ch)
		}
	}
}

// Links returns the link timeseries table.
func (p *Plane) Links() *LinkTable { return p.links }

// TopGroups returns the heavy-hitter estimate, hottest first.
func (p *Plane) TopGroups(n int) []HeavyHitter { return p.groups.Top(n) }

// TopLinks returns the most loaded links over the last `buckets` rate
// samples (0 = whole window).
func (p *Plane) TopLinks(n, buckets int) []LinkRate { return p.links.TopN(n, buckets) }

// Status evaluates the SLO rules.
func (p *Plane) Status() SLOStatus { return p.slo.Status() }

// Ready reports readiness: the SLO engine does not gate it (burn is a
// health signal, not a serving gate); leadership and replication
// currency do. With no durable hooks configured the instance is
// always ready.
func (p *Plane) Ready() (bool, []string) {
	var reasons []string
	if d := p.opts.Durable; d != nil {
		if err := d.NotLeaderErr(); err != nil {
			reasons = append(reasons, "not leader: "+err.Error())
		}
		if err := d.ReplicationErr(); err != nil {
			reasons = append(reasons, "replication: "+err.Error())
		}
	}
	if p.opts.FollowerAcks != nil {
		acked, total := p.opts.FollowerAcks()
		if acked < total {
			reasons = append(reasons,
				fmt.Sprintf("replication lagging: %d/%d followers current", acked, total))
		}
	}
	return len(reasons) == 0, reasons
}
