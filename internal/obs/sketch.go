package obs

import (
	"sort"
	"sync"
)

// Sketch is a Space-Saving top-K heavy-hitter summary (Metwally,
// Agrawal, El Abbadi 2005) over per-group traffic. It tracks at most K
// keys; when a new key arrives with the summary full, the key with the
// minimum count is evicted and the newcomer inherits its count as the
// newcomer's maximum possible error. The classic guarantees hold:
//
//   - estimated count >= true count (never undercounts),
//   - estimated count - Err <= true count (error is bounded and
//     reported per entry),
//   - any key whose true count exceeds total/K is in the summary.
//
// The slots form an indexed min-heap on count, so Update is O(log K)
// with a single small mutex — cheap enough for the per-send path when
// observation is enabled, and never touched when disabled.
type Sketch struct {
	mu    sync.Mutex
	k     int
	slots []ssSlot       // min-heap on Count
	pos   map[uint64]int // key -> heap position
	total int64          // all packets fed to the sketch
}

type ssSlot struct {
	key   uint64
	count int64 // estimated packets
	err   int64 // maximum overcount inherited at eviction
	bytes int64 // bytes ride along the packet estimate
}

// NewSketch returns a sketch tracking up to k keys (k <= 0 defaults
// to 32).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = 32
	}
	return &Sketch{k: k, slots: make([]ssSlot, 0, k), pos: make(map[uint64]int, k)}
}

// Update feeds one observation: pkts packets and bytes bytes for key.
func (s *Sketch) Update(key uint64, pkts, bytes int64) {
	if pkts <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total += pkts
	if i, ok := s.pos[key]; ok {
		s.slots[i].count += pkts
		s.slots[i].bytes += bytes
		s.siftDown(i)
		return
	}
	if len(s.slots) < s.k {
		s.slots = append(s.slots, ssSlot{key: key, count: pkts, bytes: bytes})
		i := len(s.slots) - 1
		s.pos[key] = i
		s.siftUp(i)
		return
	}
	// Evict the minimum: the newcomer inherits its count as error.
	min := &s.slots[0]
	delete(s.pos, min.key)
	s.pos[key] = 0
	min.err = min.count
	min.count += pkts
	min.key = key
	min.bytes = bytes
	s.siftDown(0)
}

func (s *Sketch) less(a, b int) bool { return s.slots[a].count < s.slots[b].count }

func (s *Sketch) swap(a, b int) {
	s.slots[a], s.slots[b] = s.slots[b], s.slots[a]
	s.pos[s.slots[a].key] = a
	s.pos[s.slots[b].key] = b
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.slots)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.less(l, m) {
			m = l
		}
		if r < n && s.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}

// HeavyHitter is one reported entry. Count overestimates the true
// packet count by at most Err.
type HeavyHitter struct {
	VNI   uint32 `json:"vni"`
	Group uint32 `json:"group"`
	Count int64  `json:"packets"`
	Err   int64  `json:"max_overcount"`
	Bytes int64  `json:"bytes"`
}

// Top returns up to n entries sorted by estimated count descending
// (ties by key for determinism).
func (s *Sketch) Top(n int) []HeavyHitter {
	s.mu.Lock()
	out := make([]HeavyHitter, 0, len(s.slots))
	for _, sl := range s.slots {
		out = append(out, HeavyHitter{
			VNI:   uint32(sl.key >> 32),
			Group: uint32(sl.key),
			Count: sl.count,
			Err:   sl.err,
			Bytes: sl.bytes,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		if out[a].VNI != out[b].VNI {
			return out[a].VNI < out[b].VNI
		}
		return out[a].Group < out[b].Group
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Total reports all packets fed to the sketch (tracked or not).
func (s *Sketch) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// groupKey packs a (vni, group) address into the sketch key space.
func groupKey(vni, group uint32) uint64 { return uint64(vni)<<32 | uint64(group) }
