package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// TestConcurrentIntrospection hammers the /debug/elmo/* endpoints
// while InstallBatch and membership churn run, asserting every
// response is an internally consistent snapshot: per-shard group
// counts always sum to the reported total (the stop-the-shards
// barrier guarantee — a torn cross-shard read would break it), group
// summaries always have coherent member/role counts, and single-group
// details never show a half-applied membership op. Run under -race
// this also proves the introspection hooks are data-race-free against
// the sharded write path.
func TestConcurrentIntrospection(t *testing.T) {
	topo := paperTopo()
	ctrl, err := controller.New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p := New(Options{Topology: topo, Registry: reg, Controller: ctrl})
	srv, err := telemetry.Serve("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p.Mount(srv)
	base := "http://" + srv.Addr()

	// Seed a stable group the detail probe can always find.
	stable := controller.GroupKey{Tenant: 1, Group: 1}
	members := map[topology.HostID]controller.Role{0: controller.RoleBoth, 40: controller.RoleBoth}
	if _, err := ctrl.CreateGroup(stable, members); err != nil {
		t.Fatal(err)
	}

	const (
		rounds  = 8
		perWave = 40
		probes  = 60
	)
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: waves of InstallBatch + churn on the stable group's
	// cohort plus removals, touching every shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for r := 0; r < rounds; r++ {
			specs := make([]controller.BatchSpec, 0, perWave)
			for i := 0; i < perWave; i++ {
				specs = append(specs, controller.BatchSpec{
					Key: controller.GroupKey{Tenant: 7, Group: uint32(r*perWave + i)},
					Members: map[topology.HostID]controller.Role{
						topology.HostID(i % topo.NumHosts()):        controller.RoleBoth,
						topology.HostID((i + 9) % topo.NumHosts()):  controller.RoleReceiver,
						topology.HostID((i + 17) % topo.NumHosts()): controller.RoleReceiver,
					},
				})
			}
			if _, err := ctrl.InstallBatch(specs, controller.BatchOptions{Workers: 4}); err != nil {
				t.Errorf("InstallBatch: %v", err)
				return
			}
			// Churn: join/leave on the stable group.
			h := topology.HostID((r*13 + 3) % topo.NumHosts())
			if err := ctrl.Join(stable, h, controller.RoleReceiver); err != nil {
				t.Errorf("Join: %v", err)
				return
			}
			if err := ctrl.Leave(stable, h, controller.RoleReceiver); err != nil {
				t.Errorf("Leave: %v", err)
				return
			}
			// Remove half of the previous wave.
			if r > 0 {
				for i := 0; i < perWave/2; i++ {
					key := controller.GroupKey{Tenant: 7, Group: uint32((r-1)*perWave + i)}
					if err := ctrl.RemoveGroup(key); err != nil {
						t.Errorf("RemoveGroup: %v", err)
						return
					}
				}
			}
		}
	}()

	// Readers: three endpoint probes running until the writer is done,
	// each checking its own invariants on every response.
	probe := func(check func() error) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				if i >= probes {
					return
				}
			default:
			}
			if err := check(); err != nil {
				t.Error(err)
				return
			}
			if i > 100000 { // liveness backstop; never hit in practice
				return
			}
		}
	}

	wg.Add(1)
	go probe(func() error {
		var ci ControllerResponse
		resp, err := http.Get(base + "/debug/elmo/controller")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
			return fmt.Errorf("controller decode: %w", err)
		}
		sum := 0
		for _, sh := range ci.Shards {
			sum += sh.Groups
		}
		if sum != ci.TotalGroups {
			return fmt.Errorf("torn shard read: shard sum %d != total %d", sum, ci.TotalGroups)
		}
		return nil
	})

	wg.Add(1)
	go probe(func() error {
		var gr GroupsResponse
		resp, err := http.Get(base + "/debug/elmo/groups?limit=0")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			return fmt.Errorf("groups decode: %w", err)
		}
		if len(gr.Groups) != gr.TotalGroups {
			return fmt.Errorf("groups list %d != total %d from same cut", len(gr.Groups), gr.TotalGroups)
		}
		for _, g := range gr.Groups {
			if g.Members < 1 || g.Senders > g.Members || g.Receivers > g.Members ||
				g.Senders+g.Receivers < g.Members {
				return fmt.Errorf("incoherent summary: %+v", g)
			}
		}
		return nil
	})

	wg.Add(1)
	go probe(func() error {
		var d controller.GroupDetail
		resp, err := http.Get(base + "/debug/elmo/group/1/1")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("stable group vanished: %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			return fmt.Errorf("detail decode: %w", err)
		}
		if len(d.MemberList) != d.Members {
			return fmt.Errorf("member list %d != members %d", len(d.MemberList), d.Members)
		}
		// The stable group oscillates between its 2 base members and
		// one extra receiver; anything else is a torn membership read.
		if d.Members != 2 && d.Members != 3 {
			return fmt.Errorf("stable group has %d members", d.Members)
		}
		return nil
	})

	wg.Wait()
}
