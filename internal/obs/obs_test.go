package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// fakeDurable is a controllable DurableStatus for readiness tests.
type fakeDurable struct {
	epoch, lsn, snapLSN uint64
	misses              int
	notLeader, replErr  error
}

func (d *fakeDurable) Epoch() uint64         { return d.epoch }
func (d *fakeDurable) LastLSN() uint64       { return d.lsn }
func (d *fakeDurable) SnapshotLSN() uint64   { return d.snapLSN }
func (d *fakeDurable) LeaseMisses() int      { return d.misses }
func (d *fakeDurable) NotLeaderErr() error   { return d.notLeader }
func (d *fakeDurable) ReplicationErr() error { return d.replErr }

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestOpsPlaneEndpoints runs the whole ops plane end to end: cluster,
// traffic, sampler cut, and every JSON endpoint.
func TestOpsPlaneEndpoints(t *testing.T) {
	ctrl, f := testCluster(t)
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())
	key2 := controller.GroupKey{Tenant: 2, Group: 5}
	installGroup(t, ctrl, f, key2, []topology.HostID{2, 3})

	reg := telemetry.NewRegistry()
	dur := &fakeDurable{epoch: 3, lsn: 42, snapLSN: 40, misses: 1}
	acked, total := 2, 2
	p := New(Options{
		Topology:     f.Topology(),
		Registry:     reg,
		Controller:   ctrl,
		Durable:      dur,
		FollowerAcks: func() (int, int) { return acked, total },
	})
	p.Enable()
	f.SetObserver(p)

	for i := 0; i < 5; i++ {
		if _, err := f.Send(0, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("ops")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Send(2, dataplane.GroupAddr{VNI: 2, Group: 5}, []byte("ops2")); err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(5000, 0)
	p.Sample(t0)
	p.Sample(t0.Add(time.Second))

	srv, err := telemetry.Serve("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p.Mount(srv)
	base := "http://" + srv.Addr()

	// Index lists the mounted ops endpoints (satellite: server index).
	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	index := string(body)
	for _, want := range []string{"/metrics", "/debug/elmo/groups", "/debug/elmo/links", "/healthz", "/readyz"} {
		if !strings.Contains(index, want) {
			t.Errorf("index page missing %s:\n%s", want, index)
		}
	}

	// /debug/elmo/groups
	var groups GroupsResponse
	getJSON(t, base+"/debug/elmo/groups", &groups)
	if groups.TotalGroups != 2 || len(groups.Groups) != 2 {
		t.Fatalf("groups: total=%d len=%d, want 2/2", groups.TotalGroups, len(groups.Groups))
	}
	g0 := groups.Groups[0]
	if g0.VNI != 1 || g0.Group != 1 || g0.Members != 6 || g0.Senders != 6 || g0.Receivers != 6 {
		t.Fatalf("group summary wrong: %+v", g0)
	}
	if len(groups.HeavyHitters) != 2 || groups.HeavyHitters[0].VNI != 1 || groups.HeavyHitters[0].Count != 5 {
		t.Fatalf("heavy hitters wrong: %+v", groups.HeavyHitters)
	}
	if groups.SketchTotal != 6 {
		t.Fatalf("sketch total %d, want 6", groups.SketchTotal)
	}

	// /debug/elmo/group/{vni}/{group}
	var detail controller.GroupDetail
	getJSON(t, base+"/debug/elmo/group/1/1", &detail)
	if len(detail.MemberList) != 6 || len(detail.Tree) == 0 || len(detail.Headers) != 6 {
		t.Fatalf("group detail wrong: members=%d tree=%d headers=%d",
			len(detail.MemberList), len(detail.Tree), len(detail.Headers))
	}
	for _, h := range detail.Headers {
		if h.Err != "" || h.Bytes <= 0 {
			t.Fatalf("sender %d header: bytes=%d err=%q", h.Sender, h.Bytes, h.Err)
		}
	}
	if resp := getJSON(t, base+"/debug/elmo/group/9/9", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing group status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/debug/elmo/group/bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed group path status %d, want 400", resp.StatusCode)
	}

	// /debug/elmo/links
	var links LinksResponse
	getJSON(t, base+"/debug/elmo/links?n=5", &links)
	if links.NumLinks == 0 || len(links.Top) != 5 {
		t.Fatalf("links: num=%d top=%d", links.NumLinks, len(links.Top))
	}
	if links.Top[0].Bytes <= 0 || links.Top[0].Name == "" {
		t.Fatalf("top link empty: %+v", links.Top[0])
	}

	// /debug/elmo/controller
	var ci ControllerResponse
	getJSON(t, base+"/debug/elmo/controller", &ci)
	if ci.TotalGroups != 2 || ci.NumShards != ctrl.NumShards() || len(ci.Shards) != ci.NumShards {
		t.Fatalf("controller info wrong: %+v", ci.ControllerInfo)
	}
	sum := 0
	for _, sh := range ci.Shards {
		sum += sh.Groups
	}
	if sum != ci.TotalGroups {
		t.Fatalf("shard groups sum %d != total %d", sum, ci.TotalGroups)
	}
	// Fig. 3 groups encode as pure p-rules: every update lands on the
	// sender/receiver hypervisors and the per-shard totals must agree
	// with the per-class split.
	updates := 0
	for _, sh := range ci.Shards {
		updates += sh.Updates
	}
	if ci.HypervisorUpdates == 0 ||
		updates != ci.HypervisorUpdates+ci.LeafUpdates+ci.SpineUpdates+ci.CoreUpdates {
		t.Fatalf("update counters inconsistent: %+v", ci.ControllerInfo)
	}
	if ci.Durable == nil || ci.Durable.Epoch != 3 || ci.Durable.WALLSN != 42 ||
		ci.Durable.SnapshotLag != 2 || !ci.Durable.Leader || ci.Durable.FollowersAcked != 2 {
		t.Fatalf("durable info wrong: %+v", ci.Durable)
	}

	// /debug/elmo/slo + /healthz green.
	var slo SLOStatus
	getJSON(t, base+"/debug/elmo/slo", &slo)
	if len(slo.Objectives) != 2 || !slo.Healthy {
		t.Fatalf("slo status wrong: %+v", slo)
	}
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}

	// /readyz flips with leadership and replication currency.
	if resp := getJSON(t, base+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d, want 200", resp.StatusCode)
	}
	dur.notLeader = errors.New("lease expired")
	if resp := getJSON(t, base+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while deposed %d, want 503", resp.StatusCode)
	}
	dur.notLeader = nil
	acked = 1
	if resp := getJSON(t, base+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while lagging %d, want 503", resp.StatusCode)
	}
	acked = 2

	// SLO gauges render in the exposition.
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"elmo_slo_healthy 1",
		"elmo_slo_ready 1",
		`elmo_slo_good_ratio{objective="delivery_ratio"} 1`,
		`elmo_slo_burn_rate{objective="send_latency",window="5m0s"}`,
		"elmo_obs_send_latency_seconds_count 6",
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestObserverDisabledAddsNoAllocations is the alloc-parity gate: a
// fabric with the ops plane attached but disabled allocates exactly as
// much per send as a bare fabric (same discipline as trace/chaos/
// metrics). It also records the enabled-path budget so regressions
// show up in -v output.
func TestObserverDisabledAddsNoAllocations(t *testing.T) {
	send := func(f *fabric.Fabric) func() {
		addr := dataplane.GroupAddr{VNI: 1, Group: 1}
		payload := []byte("alloc probe")
		return func() {
			if _, err := f.Send(0, addr, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	key := controller.GroupKey{Tenant: 1, Group: 1}

	ctrl, bare := testCluster(t)
	installGroup(t, ctrl, bare, key, figure3Hosts())
	baseline := testing.AllocsPerRun(200, send(bare))

	ctrl2, observed := testCluster(t)
	installGroup(t, ctrl2, observed, key, figure3Hosts())
	p := New(Options{Topology: observed.Topology()})
	observed.SetObserver(p) // attached but NOT enabled
	disabled := testing.AllocsPerRun(200, send(observed))
	if disabled != baseline {
		t.Fatalf("attached-but-disabled observer changed allocations: %.1f → %.1f per send",
			baseline, disabled)
	}

	// Unicast baseline path under the same contract.
	uni := func(f *fabric.Fabric) func() {
		hosts := figure3Hosts()
		payload := []byte("alloc probe")
		return func() {
			if _, err := f.SendUnicast(0, hosts, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	uniBare := testing.AllocsPerRun(200, uni(bare))
	uniObserved := testing.AllocsPerRun(200, uni(observed))
	if uniObserved != uniBare {
		t.Fatalf("disabled observer changed unicast allocations: %.1f → %.1f per send",
			uniBare, uniObserved)
	}

	// Enabled path: record the budget. The sketch map and histogram
	// cells are preallocated, so steady state stays small; log it for
	// the bench journal rather than pinning an exact number.
	p.Enable()
	enabled := testing.AllocsPerRun(200, send(observed))
	t.Logf("allocs/send: bare=%.1f disabled=%.1f enabled=%.1f", baseline, disabled, enabled)
	if p.groups.Total() == 0 {
		t.Fatal("enabled observer recorded nothing")
	}
}
