package obs

import (
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

func paperTopo() *topology.Topology { return topology.MustNew(topology.PaperExample()) }

func testConfig(r int) controller.Config {
	return controller.Config{
		MaxHeaderBytes: 325,
		SpineRuleLimit: 2,
		LeafRuleLimit:  30,
		KMaxSpine:      2,
		KMaxLeaf:       2,
		R:              r,
		SRuleCapacity:  16,
	}
}

// testCluster builds a controller+fabric pair over the Fig. 3 topology
// with one all-roles group installed.
func testCluster(t *testing.T) (*controller.Controller, *fabric.Fabric) {
	t.Helper()
	topo := paperTopo()
	ctrl, err := controller.New(topo, testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(topo, 16)
	f.SetFailures(ctrl.Failures())
	return ctrl, f
}

func installGroup(t *testing.T, ctrl *controller.Controller, f *fabric.Fabric, key controller.GroupKey, hosts []topology.HostID) {
	t.Helper()
	members := make(map[topology.HostID]controller.Role, len(hosts))
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	if noPath, err := f.InstallGroup(ctrl, key); err != nil || len(noPath) != 0 {
		t.Fatalf("install: noPath=%v err=%v", noPath, err)
	}
}

func figure3Hosts() []topology.HostID { return []topology.HostID{0, 1, 40, 48, 49, 63} }

// TestLinkIndexBijective checks the dense link indexing is a bijection
// over the Clos edge set: every directed edge maps to a distinct id in
// range, and name() round-trips the segment.
func TestLinkIndexBijective(t *testing.T) {
	topo := paperTopo()
	cfg := topo.Config()
	lt := NewLinkTable(topo, 4)
	seen := make(map[int]string, lt.NumLinks())
	record := func(l dataplane.Link, desc string) {
		idx := lt.index(l)
		if idx < 0 || idx >= lt.NumLinks() {
			t.Fatalf("%s: index %d out of range [0,%d)", desc, idx, lt.NumLinks())
		}
		if prev, dup := seen[idx]; dup {
			t.Fatalf("%s and %s collide at index %d", desc, prev, idx)
		}
		seen[idx] = desc
	}
	for h := 0; h < topo.NumHosts(); h++ {
		leaf := topo.HostLeaf(topology.HostID(h))
		record(dataplane.Link{FromTier: dataplane.LinkHost, From: int32(h), ToTier: dataplane.LinkLeaf, To: int32(leaf)}, "host->leaf")
		record(dataplane.Link{FromTier: dataplane.LinkLeaf, From: int32(leaf), ToTier: dataplane.LinkHost, To: int32(h)}, "leaf->host")
	}
	for l := 0; l < topo.NumLeaves(); l++ {
		for port := 0; port < cfg.SpinesPerPod; port++ {
			s := topo.LeafUpstream(topology.LeafID(l), port)
			record(dataplane.Link{FromTier: dataplane.LinkLeaf, From: int32(l), ToTier: dataplane.LinkSpine, To: int32(s)}, "leaf->spine")
			record(dataplane.Link{FromTier: dataplane.LinkSpine, From: int32(s), ToTier: dataplane.LinkLeaf, To: int32(l)}, "spine->leaf")
		}
	}
	for s := 0; s < topo.NumSpines(); s++ {
		for port := 0; port < cfg.CoresPerPlane; port++ {
			c := topo.SpineUpstream(topology.SpineID(s), port)
			record(dataplane.Link{FromTier: dataplane.LinkSpine, From: int32(s), ToTier: dataplane.LinkCore, To: int32(c)}, "spine->core")
			record(dataplane.Link{FromTier: dataplane.LinkCore, From: int32(c), ToTier: dataplane.LinkSpine, To: int32(s)}, "core->spine")
		}
	}
	if len(seen) != lt.NumLinks() {
		t.Fatalf("enumerated %d directed edges, table sized for %d", len(seen), lt.NumLinks())
	}
}

// teeObserver forwards to a Plane while keeping an exact per-link
// ledger — the ground truth the dense table is checked against.
type teeObserver struct {
	p     *Plane
	exact map[dataplane.Link]int64
}

func (o *teeObserver) Active() bool { return true }
func (o *teeObserver) ObserveLink(l dataplane.Link, b int) {
	o.exact[l] += int64(b)
	o.p.ObserveLink(l, b)
}
func (o *teeObserver) ObserveSend(s dataplane.SendSample) { o.p.ObserveSend(s) }

// TestLinkTableMatchesExactCounting sends a seeded multicast workload
// and asserts the dense cumulative counters agree byte-for-byte with
// an exact map keyed by the raw link structs, and with the Delivery
// totals.
func TestLinkTableMatchesExactCounting(t *testing.T) {
	ctrl, f := testCluster(t)
	key := controller.GroupKey{Tenant: 1, Group: 1}
	installGroup(t, ctrl, f, key, figure3Hosts())

	p := New(Options{Topology: f.Topology()})
	p.Enable()
	tee := &teeObserver{p: p, exact: make(map[dataplane.Link]int64)}
	f.SetObserver(tee)

	wantBytes := 0
	for _, sender := range figure3Hosts() {
		d, err := f.Send(sender, dataplane.GroupAddr{VNI: 1, Group: 1}, []byte("accuracy probe"))
		if err != nil {
			t.Fatal(err)
		}
		wantBytes += d.LinkBytes
	}
	// Baseline unicast crosses links too and must land in the table.
	du, err := f.SendUnicast(0, figure3Hosts(), []byte("unicast probe"))
	if err != nil {
		t.Fatal(err)
	}
	wantBytes += du.LinkBytes

	lt := p.Links()
	var gotBytes int64
	for idx := 0; idx < lt.NumLinks(); idx++ {
		b, _ := lt.Totals(idx)
		gotBytes += b
	}
	if gotBytes != int64(wantBytes) {
		t.Errorf("table total %d bytes, Delivery total %d", gotBytes, wantBytes)
	}
	for l, want := range tee.exact {
		idx := lt.index(l)
		if idx < 0 {
			t.Fatalf("link %+v not indexable", l)
		}
		got, _ := lt.Totals(idx)
		if got != want {
			t.Errorf("link %+v: table %d bytes, exact %d", l, got, want)
		}
	}
}

// TestLinkRatesAndTopN drives the ring with a hand-built schedule and
// fake clock and checks windowed rates and top-N ordering.
func TestLinkRatesAndTopN(t *testing.T) {
	topo := paperTopo()
	lt := NewLinkTable(topo, 4)
	hot := dataplane.Link{FromTier: dataplane.LinkHost, From: 0, ToTier: dataplane.LinkLeaf, To: 0}
	warm := dataplane.Link{FromTier: dataplane.LinkLeaf, From: 0, ToTier: dataplane.LinkSpine, To: 0}

	t0 := time.Unix(1000, 0)
	lt.Sample(t0) // establish baseline
	// Two 1s intervals: hot moves 1000 B/s, warm 400 B/s.
	for i := 1; i <= 2; i++ {
		lt.observe(hot, 1000)
		lt.observe(warm, 400)
		lt.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	top := lt.TopN(5, 0)
	if len(top) != 2 {
		t.Fatalf("TopN returned %d links, want 2", len(top))
	}
	if top[0].BytesSec != 1000 || top[1].BytesSec != 400 {
		t.Fatalf("rates = %.0f, %.0f; want 1000, 400", top[0].BytesSec, top[1].BytesSec)
	}
	if top[0].Name != "host0->leaf0" || top[1].Name != "leaf0->spine0" {
		t.Fatalf("names = %q, %q", top[0].Name, top[1].Name)
	}
	if top[0].Bytes != 2000 || top[0].Packets != 2 {
		t.Fatalf("cumulative = %d bytes / %d pkts, want 2000/2", top[0].Bytes, top[0].Packets)
	}
	// One idle interval: the last-bucket rate drops to zero while the
	// 2-bucket window still averages the earlier traffic.
	lt.Sample(t0.Add(3 * time.Second))
	top = lt.TopN(5, 1)
	if top[0].BytesSec != 0 {
		t.Fatalf("last-bucket rate = %.0f, want 0 after idle interval", top[0].BytesSec)
	}
	top = lt.TopN(5, 3)
	wantAvg := (1000.0 + 1000.0 + 0.0) / 3.0
	if top[0].BytesSec != wantAvg {
		t.Fatalf("3-bucket rate = %.1f, want %.1f", top[0].BytesSec, wantAvg)
	}
	// The ring holds width=4 buckets; after wrap the oldest vanishes.
	for i := 4; i <= 7; i++ {
		lt.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	top = lt.TopN(5, 0)
	if top[0].BytesSec != 0 {
		t.Fatalf("rate after wrap = %.1f, want 0", top[0].BytesSec)
	}
}
