package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

// LinkTable maintains windowed per-link utilization. The hot path
// (ObserveLink via the Plane) does two atomic adds into dense
// cumulative counters; a sampler thread periodically differences the
// cumulative counters into a per-link ring of rate buckets
// (Prometheus rate()-style), so queries read rates without ever
// touching the forwarding path.
//
// Links are the directed edges of the Clos fabric, densely indexed
// from topology arithmetic:
//
//	host->leaf   NumHosts                 id = host
//	leaf->host   NumHosts                 id = host
//	leaf->spine  NumLeaves*SpinesPerPod   id = leaf*SpinesPerPod + plane
//	spine->leaf  NumLeaves*SpinesPerPod   id = leaf*SpinesPerPod + plane
//	spine->core  NumSpines*CoresPerPlane  id = spine*CoresPerPlane + j
//	core->spine  NumSpines*CoresPerPlane  id = core*Pods + pod
type LinkTable struct {
	topo *topology.Topology

	// Segment offsets into the dense link space, in the order above.
	offHL, offLH, offLS, offSL, offSC, offCS int
	n                                        int

	// Cumulative hot-path counters, one per directed link.
	bytes []atomic.Int64
	pkts  []atomic.Int64

	// Sampling state and per-link rate rings, guarded by mu. rings is
	// one flat slice: link i's buckets live at [i*width, (i+1)*width).
	mu        sync.Mutex
	width     int
	rings     []float64 // bytes/sec per bucket
	next      int       // ring write cursor (shared by all links)
	filled    int       // buckets written so far, capped at width
	lastBytes []int64
	lastAt    time.Time
	started   bool
}

// NewLinkTable sizes the table for a topology with width rate buckets
// per link (width <= 0 defaults to 60).
func NewLinkTable(topo *topology.Topology, width int) *LinkTable {
	if width <= 0 {
		width = 60
	}
	cfg := topo.Config()
	nHL := topo.NumHosts()
	nLS := topo.NumLeaves() * cfg.SpinesPerPod
	nSC := topo.NumSpines() * cfg.CoresPerPlane
	lt := &LinkTable{topo: topo, width: width}
	lt.offHL = 0
	lt.offLH = lt.offHL + nHL
	lt.offLS = lt.offLH + nHL
	lt.offSL = lt.offLS + nLS
	lt.offSC = lt.offSL + nLS
	lt.offCS = lt.offSC + nSC
	lt.n = lt.offCS + nSC
	lt.bytes = make([]atomic.Int64, lt.n)
	lt.pkts = make([]atomic.Int64, lt.n)
	lt.rings = make([]float64, lt.n*width)
	lt.lastBytes = make([]int64, lt.n)
	return lt
}

// NumLinks reports the size of the directed link space.
func (lt *LinkTable) NumLinks() int { return lt.n }

// index maps a dataplane link crossing to its dense id, or -1 for a
// crossing outside the modeled Clos edge set.
func (lt *LinkTable) index(l dataplane.Link) int {
	cfg := lt.topo.Config()
	switch {
	case l.FromTier == dataplane.LinkHost && l.ToTier == dataplane.LinkLeaf:
		return lt.offHL + int(l.From)
	case l.FromTier == dataplane.LinkLeaf && l.ToTier == dataplane.LinkHost:
		return lt.offLH + int(l.To)
	case l.FromTier == dataplane.LinkLeaf && l.ToTier == dataplane.LinkSpine:
		plane := int(l.To) % cfg.SpinesPerPod
		return lt.offLS + int(l.From)*cfg.SpinesPerPod + plane
	case l.FromTier == dataplane.LinkSpine && l.ToTier == dataplane.LinkLeaf:
		plane := int(l.From) % cfg.SpinesPerPod
		return lt.offSL + int(l.To)*cfg.SpinesPerPod + plane
	case l.FromTier == dataplane.LinkSpine && l.ToTier == dataplane.LinkCore:
		j := int(l.To) % cfg.CoresPerPlane
		return lt.offSC + int(l.From)*cfg.CoresPerPlane + j
	case l.FromTier == dataplane.LinkCore && l.ToTier == dataplane.LinkSpine:
		pod := int(l.To) / cfg.SpinesPerPod
		return lt.offCS + int(l.From)*cfg.Pods + pod
	default:
		return -1
	}
}

// observe is the hot path: two atomic adds, no locks, no allocation.
func (lt *LinkTable) observe(l dataplane.Link, bytes int) {
	idx := lt.index(l)
	if idx < 0 {
		return
	}
	lt.bytes[idx].Add(int64(bytes))
	lt.pkts[idx].Add(1)
}

// name renders a dense link id back to a human-readable directed edge.
func (lt *LinkTable) name(idx int) string {
	cfg := lt.topo.Config()
	switch {
	case idx < lt.offLH:
		h := idx - lt.offHL
		return fmt.Sprintf("host%d->leaf%d", h, lt.topo.HostLeaf(topology.HostID(h)))
	case idx < lt.offLS:
		h := idx - lt.offLH
		return fmt.Sprintf("leaf%d->host%d", lt.topo.HostLeaf(topology.HostID(h)), h)
	case idx < lt.offSL:
		i := idx - lt.offLS
		leaf := topology.LeafID(i / cfg.SpinesPerPod)
		return fmt.Sprintf("leaf%d->spine%d", leaf, lt.topo.LeafUpstream(leaf, i%cfg.SpinesPerPod))
	case idx < lt.offSC:
		i := idx - lt.offSL
		leaf := topology.LeafID(i / cfg.SpinesPerPod)
		return fmt.Sprintf("spine%d->leaf%d", lt.topo.LeafUpstream(leaf, i%cfg.SpinesPerPod), leaf)
	case idx < lt.offCS:
		i := idx - lt.offSC
		spine := topology.SpineID(i / cfg.CoresPerPlane)
		return fmt.Sprintf("spine%d->core%d", spine, lt.topo.SpineUpstream(spine, i%cfg.CoresPerPlane))
	default:
		i := idx - lt.offCS
		core := topology.CoreID(i / cfg.Pods)
		pod := topology.PodID(i % cfg.Pods)
		return fmt.Sprintf("core%d->spine%d", core, lt.topo.CoreDownstream(core, pod))
	}
}

// Sample differences the cumulative counters into one rate bucket per
// link, stamped with the elapsed time since the previous sample. The
// first call only establishes the baseline. Call it at a fixed cadence
// (the Plane's sampler does) or manually with test-controlled times.
func (lt *LinkTable) Sample(now time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if !lt.started {
		for i := range lt.lastBytes {
			lt.lastBytes[i] = lt.bytes[i].Load()
		}
		lt.lastAt = now
		lt.started = true
		return
	}
	elapsed := now.Sub(lt.lastAt).Seconds()
	if elapsed <= 0 {
		return
	}
	slot := lt.next
	for i := range lt.lastBytes {
		cur := lt.bytes[i].Load()
		lt.rings[i*lt.width+slot] = float64(cur-lt.lastBytes[i]) / elapsed
		lt.lastBytes[i] = cur
	}
	lt.lastAt = now
	lt.next = (lt.next + 1) % lt.width
	if lt.filled < lt.width {
		lt.filled++
	}
}

// LinkRate is one link's windowed utilization.
type LinkRate struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	BytesSec float64 `json:"bytes_per_sec"`
	Bytes    int64   `json:"bytes_total"`
	Packets  int64   `json:"packets_total"`
}

// rate returns link i's mean bytes/sec over the most recent
// min(buckets, filled) rate buckets. Caller holds mu.
func (lt *LinkTable) rate(i, buckets int) float64 {
	if buckets <= 0 || buckets > lt.filled {
		buckets = lt.filled
	}
	if buckets == 0 {
		return 0
	}
	sum := 0.0
	for b := 1; b <= buckets; b++ {
		slot := (lt.next - b + lt.width) % lt.width
		sum += lt.rings[i*lt.width+slot]
	}
	return sum / float64(buckets)
}

// TopN returns the n most loaded links by mean rate over the last
// `buckets` samples (0 = the whole filled window), most loaded first.
// Idle links (zero rate and zero cumulative traffic) are skipped.
func (lt *LinkTable) TopN(n, buckets int) []LinkRate {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if n <= 0 {
		return nil
	}
	out := make([]LinkRate, 0, n)
	for i := 0; i < lt.n; i++ {
		total := lt.bytes[i].Load()
		if total == 0 {
			continue
		}
		r := LinkRate{ID: i, BytesSec: lt.rate(i, buckets), Bytes: total, Packets: lt.pkts[i].Load()}
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].BytesSec != out[b].BytesSec {
			return out[a].BytesSec > out[b].BytesSec
		}
		if out[a].Bytes != out[b].Bytes {
			return out[a].Bytes > out[b].Bytes
		}
		return out[a].ID < out[b].ID
	})
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Name = lt.name(out[i].ID)
	}
	return out
}

// Totals returns the cumulative (bytes, packets) for one dense link id
// — the exact counters the rate buckets are differenced from.
func (lt *LinkTable) Totals(idx int) (bytes, pkts int64) {
	return lt.bytes[idx].Load(), lt.pkts[idx].Load()
}
