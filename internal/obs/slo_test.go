package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBurnRateWindows drives the engine with a fake clock through a
// clean phase, a hard-burn phase, and recovery, asserting the
// multi-window rule fires only while both windows agree.
func TestBurnRateWindows(t *testing.T) {
	var good, total atomic.Int64
	rules := []BurnRule{{Short: 10 * time.Second, Long: 60 * time.Second, Threshold: 10, Severity: "page"}}
	e := NewSLOEngine([]Objective{{
		Name:   "delivery_ratio",
		Target: 0.99, // 1% error budget
		Good:   good.Load,
		Total:  total.Load,
	}}, rules, 0)

	t0 := time.Unix(10000, 0)
	tick := func(sec int) { e.Tick(t0.Add(time.Duration(sec) * time.Second)) }

	// 60 clean seconds: 100 sends/sec, all good.
	for s := 0; s <= 60; s++ {
		if s > 0 {
			good.Add(100)
			total.Add(100)
		}
		tick(s)
	}
	st := e.Status()
	if !st.Healthy || st.Rules[0].Firing {
		t.Fatalf("clean phase unhealthy: %+v", st.Rules[0])
	}
	if st.Objectives[0].GoodRatio != 1 {
		t.Fatalf("good ratio %v, want 1", st.Objectives[0].GoodRatio)
	}

	// Hard burn: 50% failures = 50x budget burn. After 10s the short
	// window is saturated but the 60s window still averages the clean
	// minutes in — with 10 bad seconds out of 60, long burn is
	// 50/6 ≈ 8.3 < 10, so the rule must not fire yet.
	sec := 60
	for s := 1; s <= 10; s++ {
		sec++
		good.Add(50)
		total.Add(100)
		tick(sec)
	}
	st = e.Status()
	if got := st.Rules[0].ShortBurn; got < 49 || got > 51 {
		t.Fatalf("short burn %v, want ~50", got)
	}
	if st.Rules[0].Firing {
		t.Fatalf("rule fired before the long window agreed: %+v", st.Rules[0])
	}

	// Keep burning: after 50 more bad seconds the 60s window is all
	// burn, both windows agree, the page fires, healthz goes red.
	for s := 1; s <= 50; s++ {
		sec++
		good.Add(50)
		total.Add(100)
		tick(sec)
	}
	st = e.Status()
	if !st.Rules[0].Firing || st.Healthy {
		t.Fatalf("sustained burn did not page: %+v", st.Rules[0])
	}

	// Recovery: clean traffic pulls the short window back under the
	// threshold first; the rule stops firing even while the long
	// window is still hot — exactly the multi-window property.
	for s := 1; s <= 15; s++ {
		sec++
		good.Add(100)
		total.Add(100)
		tick(sec)
	}
	st = e.Status()
	if st.Rules[0].ShortBurn != 0 {
		t.Fatalf("short burn after recovery = %v, want 0", st.Rules[0].ShortBurn)
	}
	if st.Rules[0].LongBurn <= 10 {
		t.Fatalf("long burn should still exceed threshold, got %v", st.Rules[0].LongBurn)
	}
	if st.Rules[0].Firing || !st.Healthy {
		t.Fatalf("recovered system still paging: %+v", st.Rules[0])
	}
}

// TestBurnRateNoTraffic checks quiet systems never burn.
func TestBurnRateNoTraffic(t *testing.T) {
	var good, total atomic.Int64
	e := NewSLOEngine([]Objective{{Name: "x", Target: 0.999, Good: good.Load, Total: total.Load}}, nil, 0)
	t0 := time.Unix(0, 0)
	for s := 0; s < 10; s++ {
		e.Tick(t0.Add(time.Duration(s) * time.Second))
	}
	st := e.Status()
	if !st.Healthy {
		t.Fatal("idle system reported unhealthy")
	}
	for _, r := range st.Rules {
		if r.ShortBurn != 0 || r.LongBurn != 0 || r.Firing {
			t.Fatalf("idle burn: %+v", r)
		}
	}
	if st.Objectives[0].GoodRatio != 1 {
		t.Fatalf("idle good ratio %v, want 1", st.Objectives[0].GoodRatio)
	}
}

// TestBurnRateUnknownObjective covers the error path.
func TestBurnRateUnknownObjective(t *testing.T) {
	e := NewSLOEngine(nil, nil, 0)
	if _, err := e.BurnRate("nope", time.Minute); err == nil {
		t.Fatal("expected error for unknown objective")
	}
}
