package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO burn-rate evaluation, following the multi-window multi-burn-rate
// discipline from the Google SRE workbook: an objective is a target
// good-ratio (e.g. 99.9% of sends deliver); the burn rate over a
// window is the observed bad-ratio divided by the budgeted bad-ratio
// (1 - target), so burn 1.0 consumes the error budget exactly at the
// sustainable pace. A rule pages only when BOTH its long and short
// windows exceed the threshold — the long window proves the burn is
// sustained, the short window proves it is still happening.

// Objective is one service level objective fed by cumulative good and
// total counters (monotone, read via the supplied funcs).
type Objective struct {
	Name   string
	Target float64 // good-ratio target in (0, 1)
	Good   func() int64
	Total  func() int64
}

// BurnRule is one multi-window burn-rate alerting rule.
type BurnRule struct {
	Short     time.Duration
	Long      time.Duration
	Threshold float64
	Severity  string // "page" or "ticket"
}

// DefaultBurnRules are the SRE-workbook pairings for a 30-day budget:
// fast burns page, slow burns ticket.
func DefaultBurnRules() []BurnRule {
	return []BurnRule{
		{Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4, Severity: "page"},
		{Short: 30 * time.Minute, Long: 6 * time.Hour, Threshold: 6, Severity: "page"},
		{Short: 2 * time.Hour, Long: 24 * time.Hour, Threshold: 3, Severity: "ticket"},
		{Short: 6 * time.Hour, Long: 3 * 24 * time.Hour, Threshold: 1, Severity: "ticket"},
	}
}

// sloSample is one cumulative (good, total) reading.
type sloSample struct {
	at          time.Time
	good, total int64
}

// sloSeries is the sample ring for one objective.
type sloSeries struct {
	obj     Objective
	samples []sloSample // ring
	next    int
	filled  int
}

// burnOver computes the burn rate for the window ending at the newest
// sample. With fewer than two samples, or a window reaching past the
// oldest sample with zero traffic in between, it returns 0 (no
// evidence of burn).
func (ss *sloSeries) burnOver(window time.Duration) float64 {
	if ss.filled < 2 {
		return 0
	}
	newest := ss.at(1)
	// Walk newest to oldest until a sample at or beyond the window
	// start: the burn covers at least `window` when the ring reaches
	// that far, else the whole retained history.
	base := ss.at(2)
	for i := 2; i <= ss.filled; i++ {
		base = ss.at(i)
		if newest.at.Sub(base.at) >= window {
			break
		}
	}
	dTotal := newest.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := dTotal - (newest.good - base.good)
	badRatio := float64(dBad) / float64(dTotal)
	budget := 1 - ss.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return badRatio / budget
}

// at returns the i-th newest sample (1 = newest).
func (ss *sloSeries) at(i int) sloSample {
	n := len(ss.samples)
	return ss.samples[((ss.next-i)%n+n)%n]
}

// goodRatio is the all-time good ratio of the newest sample.
func (ss *sloSeries) goodRatio() float64 {
	if ss.filled == 0 {
		return 1
	}
	s := ss.at(1)
	if s.total == 0 {
		return 1
	}
	return float64(s.good) / float64(s.total)
}

// RuleState is one evaluated burn rule for one objective.
type RuleState struct {
	Objective string  `json:"objective"`
	Severity  string  `json:"severity"`
	Short     string  `json:"short_window"`
	Long      string  `json:"long_window"`
	Threshold float64 `json:"threshold"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Firing    bool    `json:"firing"`
}

// SLOStatus is the full health report.
type SLOStatus struct {
	Healthy    bool              `json:"healthy"`
	Objectives []ObjectiveStatus `json:"objectives"`
	Rules      []RuleState       `json:"rules"`
}

// ObjectiveStatus is one objective's topline.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Target    float64 `json:"target"`
	GoodRatio float64 `json:"good_ratio"`
	Good      int64   `json:"good"`
	Total     int64   `json:"total"`
}

// SLOEngine samples objectives and evaluates burn rules. Tick drives
// it with explicit times so tests (and the Plane's sampler) control
// the clock.
type SLOEngine struct {
	mu     sync.Mutex
	series []*sloSeries
	rules  []BurnRule
}

// NewSLOEngine builds an engine over the objectives with the given
// rules (nil = DefaultBurnRules) retaining `depth` samples per
// objective (depth <= 0 defaults to 512 — at one sample per second
// that spans the 5m/30m fast windows; slow windows degrade gracefully
// to the oldest retained sample).
func NewSLOEngine(objectives []Objective, rules []BurnRule, depth int) *SLOEngine {
	if rules == nil {
		rules = DefaultBurnRules()
	}
	if depth <= 0 {
		depth = 512
	}
	e := &SLOEngine{rules: rules}
	for _, o := range objectives {
		e.series = append(e.series, &sloSeries{obj: o, samples: make([]sloSample, depth)})
	}
	return e
}

// Tick reads every objective's cumulative counters at time now.
func (e *SLOEngine) Tick(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ss := range e.series {
		ss.samples[ss.next] = sloSample{at: now, good: ss.obj.Good(), total: ss.obj.Total()}
		ss.next = (ss.next + 1) % len(ss.samples)
		if ss.filled < len(ss.samples) {
			ss.filled++
		}
	}
}

// Status evaluates every rule against the sampled series. Healthy
// means no page-severity rule is firing.
func (e *SLOEngine) Status() SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := SLOStatus{Healthy: true}
	for _, ss := range e.series {
		obj := ObjectiveStatus{Name: ss.obj.Name, Target: ss.obj.Target, GoodRatio: ss.goodRatio()}
		if ss.filled > 0 {
			s := ss.at(1)
			obj.Good, obj.Total = s.good, s.total
		}
		st.Objectives = append(st.Objectives, obj)
		for _, r := range e.rules {
			rs := RuleState{
				Objective: ss.obj.Name,
				Severity:  r.Severity,
				Short:     r.Short.String(),
				Long:      r.Long.String(),
				Threshold: r.Threshold,
				ShortBurn: ss.burnOver(r.Short),
				LongBurn:  ss.burnOver(r.Long),
			}
			rs.Firing = rs.ShortBurn >= r.Threshold && rs.LongBurn >= r.Threshold
			if rs.Firing && r.Severity == "page" {
				st.Healthy = false
			}
			st.Rules = append(st.Rules, rs)
		}
	}
	return st
}

// BurnRate reports one objective's burn over a window (for gauges).
func (e *SLOEngine) BurnRate(objective string, window time.Duration) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ss := range e.series {
		if ss.obj.Name == objective {
			return ss.burnOver(window), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown objective %q", objective)
}
