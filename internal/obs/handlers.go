package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"elmo/internal/controller"
	"elmo/internal/telemetry"
)

// JSON introspection endpoints. Mount attaches them to a telemetry
// Server:
//
//	/debug/elmo/groups      group summaries + heavy-hitter estimates
//	/debug/elmo/group/{vni}/{group}  one group in full
//	/debug/elmo/links       top-N loaded links (windowed rates)
//	/debug/elmo/controller  per-shard stats + durable/lease state
//	/debug/elmo/slo         SLO objectives and burn rules
//	/healthz                200 while no page-severity burn fires
//	/readyz                 200 while leader valid + replication current
//
// Every response is a consistent snapshot: the controller views are
// taken under the stop-the-shards read barrier, so concurrent
// InstallBatch/churn never produce torn reads.

// Mount registers all ops-plane endpoints on srv.
func (p *Plane) Mount(srv *telemetry.Server) {
	srv.Handle("/debug/elmo/groups", http.HandlerFunc(p.handleGroups))
	srv.Handle("/debug/elmo/group/", http.HandlerFunc(p.handleGroup))
	srv.Handle("/debug/elmo/links", http.HandlerFunc(p.handleLinks))
	srv.Handle("/debug/elmo/controller", http.HandlerFunc(p.handleController))
	srv.Handle("/debug/elmo/slo", http.HandlerFunc(p.handleSLO))
	srv.Handle("/healthz", http.HandlerFunc(p.handleHealthz))
	srv.Handle("/readyz", http.HandlerFunc(p.handleReadyz))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func intParam(r *http.Request, name string, def int) int {
	if s := r.URL.Query().Get(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// GroupsResponse is the /debug/elmo/groups payload.
type GroupsResponse struct {
	TotalGroups  int                       `json:"total_groups"`
	Groups       []controller.GroupSummary `json:"groups"`
	HeavyHitters []HeavyHitter             `json:"heavy_hitters"`
	SketchTotal  int64                     `json:"sketch_total_packets"`
}

func (p *Plane) handleGroups(w http.ResponseWriter, r *http.Request) {
	if p.opts.Controller == nil {
		http.Error(w, "no controller attached", http.StatusNotImplemented)
		return
	}
	limit := intParam(r, "limit", 100)
	groups, total := p.opts.Controller.InspectGroups(limit)
	writeJSON(w, GroupsResponse{
		TotalGroups:  total,
		Groups:       groups,
		HeavyHitters: p.groups.Top(intParam(r, "top", 10)),
		SketchTotal:  p.groups.Total(),
	})
}

func (p *Plane) handleGroup(w http.ResponseWriter, r *http.Request) {
	if p.opts.Controller == nil {
		http.Error(w, "no controller attached", http.StatusNotImplemented)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/elmo/group/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 {
		http.Error(w, "want /debug/elmo/group/{vni}/{group}", http.StatusBadRequest)
		return
	}
	vni, err1 := strconv.ParseUint(parts[0], 10, 32)
	gid, err2 := strconv.ParseUint(parts[1], 10, 32)
	if err1 != nil || err2 != nil {
		http.Error(w, "vni and group must be unsigned integers", http.StatusBadRequest)
		return
	}
	key := controller.GroupKey{Tenant: uint32(vni), Group: uint32(gid)}
	detail, ok := p.opts.Controller.InspectGroup(key)
	if !ok {
		http.Error(w, "group not found", http.StatusNotFound)
		return
	}
	writeJSON(w, detail)
}

// LinksResponse is the /debug/elmo/links payload.
type LinksResponse struct {
	NumLinks int        `json:"num_links"`
	Top      []LinkRate `json:"top"`
}

func (p *Plane) handleLinks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, LinksResponse{
		NumLinks: p.links.NumLinks(),
		Top:      p.links.TopN(intParam(r, "n", 20), intParam(r, "buckets", 0)),
	})
}

// DurableInfo is the durable-controller section of the controller
// endpoint.
type DurableInfo struct {
	Epoch       uint64 `json:"epoch"`
	WALLSN      uint64 `json:"wal_lsn"`
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// SnapshotLag is the WAL records a cold restart must replay.
	SnapshotLag uint64 `json:"snapshot_lag_records"`
	LeaseMisses int    `json:"lease_misses"`
	Leader      bool   `json:"leader"`
	LeaderErr   string `json:"leader_err,omitempty"`
	// ReplicationLag counts followers not current with the leader's
	// record stream (total - acked).
	ReplicationLag int    `json:"replication_lag_followers"`
	ReplicationErr string `json:"replication_err,omitempty"`
	FollowersAcked int    `json:"followers_acked"`
	FollowersTotal int    `json:"followers_total"`
}

// ControllerResponse is the /debug/elmo/controller payload.
type ControllerResponse struct {
	controller.ControllerInfo
	NumShards int          `json:"num_shards"`
	Durable   *DurableInfo `json:"durable,omitempty"`
}

func (p *Plane) handleController(w http.ResponseWriter, r *http.Request) {
	if p.opts.Controller == nil {
		http.Error(w, "no controller attached", http.StatusNotImplemented)
		return
	}
	resp := ControllerResponse{
		ControllerInfo: p.opts.Controller.InspectShards(),
		NumShards:      p.opts.Controller.NumShards(),
	}
	if d := p.opts.Durable; d != nil {
		di := &DurableInfo{
			Epoch:       d.Epoch(),
			WALLSN:      d.LastLSN(),
			SnapshotLSN: d.SnapshotLSN(),
			LeaseMisses: d.LeaseMisses(),
			Leader:      d.NotLeaderErr() == nil,
		}
		di.SnapshotLag = di.WALLSN - di.SnapshotLSN
		if err := d.NotLeaderErr(); err != nil {
			di.LeaderErr = err.Error()
		}
		if err := d.ReplicationErr(); err != nil {
			di.ReplicationErr = err.Error()
		}
		if p.opts.FollowerAcks != nil {
			di.FollowersAcked, di.FollowersTotal = p.opts.FollowerAcks()
			di.ReplicationLag = di.FollowersTotal - di.FollowersAcked
		}
		resp.Durable = di
	}
	writeJSON(w, resp)
}

func (p *Plane) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, p.Status())
}

func (p *Plane) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := p.Status()
	if !st.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, struct {
		Healthy bool        `json:"healthy"`
		Firing  []RuleState `json:"firing,omitempty"`
	}{st.Healthy, firingRules(st)})
}

func firingRules(st SLOStatus) []RuleState {
	var out []RuleState
	for _, r := range st.Rules {
		if r.Firing {
			out = append(out, r)
		}
	}
	return out
}

func (p *Plane) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ok, reasons := p.Ready()
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons,omitempty"`
	}{ok, reasons})
}
