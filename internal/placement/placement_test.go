package placement

import (
	"testing"

	"elmo/internal/topology"
)

// testTopo is large enough that even P=1 placement can disperse the
// biggest test tenant across distinct racks: 32 leaves, 128 hosts.
func testTopo() *topology.Topology {
	return topology.MustNew(topology.Config{
		Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 4, CoresPerPlane: 2,
	})
}

func smallConfig(p int) Config {
	return Config{
		Tenants:    20,
		VMsPerHost: 20,
		MinVMs:     5,
		MaxVMs:     30,
		MeanVMs:    12,
		P:          p,
		Seed:       3,
	}
}

func TestPlaceBasicInvariants(t *testing.T) {
	topo := testTopo()
	for _, p := range []int{1, 4, PAll} {
		d, err := Place(topo, smallConfig(p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(d.Tenants) != 20 {
			t.Fatalf("P=%d: tenants = %d", p, len(d.Tenants))
		}
		load := make([]int, topo.NumHosts())
		for _, tn := range d.Tenants {
			if len(tn.VMs) < 5 || len(tn.VMs) > 30 {
				t.Fatalf("P=%d: tenant %d has %d VMs, outside [5,30]", p, tn.ID, len(tn.VMs))
			}
			hostSeen := make(map[topology.HostID]bool)
			leafCount := make(map[topology.LeafID]int)
			for _, vm := range tn.VMs {
				if vm.Tenant != tn.ID {
					t.Fatalf("VM tenant mismatch")
				}
				if hostSeen[vm.Host] {
					t.Fatalf("P=%d: tenant %d has two VMs on host %d", p, tn.ID, vm.Host)
				}
				hostSeen[vm.Host] = true
				load[vm.Host]++
				leafCount[topo.HostLeaf(vm.Host)]++
			}
			if p != PAll {
				for leaf, n := range leafCount {
					if n > p {
						t.Fatalf("P=%d: tenant %d has %d VMs under leaf %d", p, tn.ID, n, leaf)
					}
				}
			}
		}
		for h, n := range load {
			if n > 20 {
				t.Fatalf("P=%d: host %d has %d VMs", p, h, n)
			}
			if n != d.HostLoad[h] {
				t.Fatalf("P=%d: HostLoad[%d] = %d, counted %d", p, h, d.HostLoad[h], n)
			}
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	topo := testTopo()
	d1, err := Place(topo, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Place(topo, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if d1.TotalVMs() != d2.TotalVMs() {
		t.Fatal("placement not deterministic")
	}
	for i := range d1.Tenants {
		for j := range d1.Tenants[i].VMs {
			if d1.Tenants[i].VMs[j].Host != d2.Tenants[i].VMs[j].Host {
				t.Fatal("VM placement not deterministic")
			}
		}
	}
}

func TestPlaceP1Disperses(t *testing.T) {
	topo := testTopo()
	d, err := Place(topo, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range d.Tenants {
		leaves := LeavesOf(topo, hostsOf(tn))
		if len(leaves) != len(tn.VMs) {
			t.Fatalf("P=1: tenant %d spans %d leaves for %d VMs", tn.ID, len(leaves), len(tn.VMs))
		}
	}
}

func hostsOf(t Tenant) []topology.HostID {
	hs := make([]topology.HostID, len(t.VMs))
	for i, vm := range t.VMs {
		hs[i] = vm.Host
	}
	return hs
}

func TestPlaceRejectsBadConfig(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	bads := []Config{
		{},
		{Tenants: 1, VMsPerHost: 0, MinVMs: 1, MaxVMs: 2, MeanVMs: 1},
		{Tenants: 1, VMsPerHost: 1, MinVMs: 0, MaxVMs: 2, MeanVMs: 1},
		{Tenants: 1, VMsPerHost: 1, MinVMs: 3, MaxVMs: 2, MeanVMs: 1},
		{Tenants: 1, VMsPerHost: 1, MinVMs: 1, MaxVMs: 2, MeanVMs: 0},
	}
	for i, cfg := range bads {
		if _, err := Place(topo, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPlaceFabricFull(t *testing.T) {
	// 1 pod, 1 leaf, 2 hosts, 1 VM per host: a 3-VM tenant cannot fit
	// with the distinct-host rule.
	topo := topology.MustNew(topology.Config{Pods: 1, SpinesPerPod: 1, LeavesPerPod: 1, HostsPerLeaf: 2, CoresPerPlane: 1})
	cfg := Config{Tenants: 1, VMsPerHost: 1, MinVMs: 3, MaxVMs: 3, MeanVMs: 3, P: PAll, Seed: 1}
	if _, err := Place(topo, cfg); err == nil {
		t.Fatal("expected fabric-full error")
	}
}

func TestTenantSizeDistribution(t *testing.T) {
	topo := topology.MustNew(topology.FacebookFabric())
	cfg := PaperConfig(12)
	cfg.Tenants = 300 // keep the test fast; shape is what matters
	d, err := Place(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum, min, max int
	min = 1 << 30
	for _, tn := range d.Tenants {
		n := tn.Size()
		sum += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	mean := float64(sum) / float64(len(d.Tenants))
	if min < 10 || max > 5000 {
		t.Fatalf("sizes outside [10,5000]: min=%d max=%d", min, max)
	}
	if mean < 100 || mean > 280 {
		t.Fatalf("mean tenant size = %.1f, expected near the paper's 178.77", mean)
	}
}

func BenchmarkPlacePaperScaleP12(b *testing.B) {
	topo := topology.MustNew(topology.FacebookFabric())
	cfg := PaperConfig(12)
	cfg.Tenants = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Place(topo, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTenantsConcentrateInFewPods pins the paper-critical property of
// the placement strategy: a tenant occupies only as many pods as its
// size requires (pods are exhausted before new ones are selected), so
// multicast groups' pod spans stay small enough for the 2-rule spine
// header budget.
func TestTenantsConcentrateInFewPods(t *testing.T) {
	topo := topology.MustNew(topology.FacebookFabric()) // 48 leaves/pod
	cfg := Config{
		Tenants: 50, VMsPerHost: 20, MinVMs: 10, MaxVMs: 400, MeanVMs: 150, P: 12, Seed: 9,
	}
	d, err := Place(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	podCap := topo.Config().LeavesPerPod * cfg.P // tenant VMs per pod
	for _, tn := range d.Tenants {
		pods := make(map[topology.PodID]bool)
		for _, vm := range tn.VMs {
			pods[topo.HostPod(vm.Host)] = true
		}
		// Minimum pods the tenant needs, plus slack for pods already
		// crowded by other tenants.
		need := (tn.Size() + podCap - 1) / podCap
		if len(pods) > need+2 {
			t.Fatalf("tenant %d (%d VMs) spans %d pods, need only %d",
				tn.ID, tn.Size(), len(pods), need)
		}
	}
}
