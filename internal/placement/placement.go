// Package placement simulates the tenant and VM placement of the
// paper's evaluation (§5.1.1): 3,000 tenants whose VM counts follow an
// exponential distribution (min 10, median ~97, max 5,000), placed on
// a Clos fabric with at most VMsPerHost VMs per host, no two VMs of a
// tenant on the same host, and a locality knob P — the maximum number
// of a tenant's VMs packed under one leaf (rack). P=12 models
// clustered placement, P=1 fully dispersed placement.
package placement

import (
	"fmt"
	"math"
	"math/rand"

	"elmo/internal/topology"
)

// PAll disables the per-rack limit (used by the Li et al. baseline
// configuration "no limit on VMs of a tenant per rack").
const PAll = 0

// Config parameterizes a placement run.
type Config struct {
	// Tenants is the number of tenants (paper: 3,000).
	Tenants int
	// VMsPerHost caps the VMs on one host (paper: 20).
	VMsPerHost int
	// MinVMs and MaxVMs clamp the per-tenant VM count (paper: 10 and
	// 5,000).
	MinVMs, MaxVMs int
	// MeanVMs is the mean of the exponential VM-count distribution
	// before clamping (paper reports mean 178.77 after its sampling;
	// an exponential with this mean reproduces the shape).
	MeanVMs float64
	// P is the maximum VMs of one tenant per rack; PAll means
	// unlimited.
	P int
	// Seed makes the placement deterministic.
	Seed int64
}

// PaperConfig returns the evaluation's placement parameters for a
// given locality P.
func PaperConfig(p int) Config {
	return Config{
		Tenants:    3000,
		VMsPerHost: 20,
		MinVMs:     10,
		MaxVMs:     5000,
		MeanVMs:    178.77,
		P:          p,
		Seed:       1,
	}
}

// VM is one tenant virtual machine placed on a host.
type VM struct {
	Tenant int
	Host   topology.HostID
}

// Tenant is a placed tenant.
type Tenant struct {
	ID  int
	VMs []VM
}

// Size returns the tenant's VM count.
func (t *Tenant) Size() int { return len(t.VMs) }

// Deployment is the result of placing all tenants on a topology.
type Deployment struct {
	Topo    *topology.Topology
	Tenants []Tenant
	// HostLoad[h] is the number of VMs on host h.
	HostLoad []int
}

// TotalVMs returns the number of VMs placed.
func (d *Deployment) TotalVMs() int {
	n := 0
	for _, t := range d.Tenants {
		n += len(t.VMs)
	}
	return n
}

// Place runs the placement. It returns an error if the fabric cannot
// hold the tenants under the constraints.
func Place(topo *topology.Topology, cfg Config) (*Deployment, error) {
	if cfg.Tenants <= 0 || cfg.VMsPerHost <= 0 {
		return nil, fmt.Errorf("placement: Tenants and VMsPerHost must be positive")
	}
	if cfg.MinVMs <= 0 || cfg.MaxVMs < cfg.MinVMs {
		return nil, fmt.Errorf("placement: invalid VM count bounds [%d,%d]", cfg.MinVMs, cfg.MaxVMs)
	}
	if cfg.MeanVMs <= 0 {
		return nil, fmt.Errorf("placement: MeanVMs must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Deployment{
		Topo:     topo,
		Tenants:  make([]Tenant, cfg.Tenants),
		HostLoad: make([]int, topo.NumHosts()),
	}
	pl := &placer{topo: topo, cfg: cfg, rng: rng, d: d}
	for id := 0; id < cfg.Tenants; id++ {
		size := sampleTenantSize(rng, cfg)
		t, err := pl.placeTenant(id, size)
		if err != nil {
			return nil, err
		}
		d.Tenants[id] = t
	}
	return d, nil
}

// sampleTenantSize draws from a clamped exponential distribution.
func sampleTenantSize(rng *rand.Rand, cfg Config) int {
	x := rng.ExpFloat64() * cfg.MeanVMs
	n := int(math.Round(x))
	if n < cfg.MinVMs {
		n = cfg.MinVMs
	}
	if n > cfg.MaxVMs {
		n = cfg.MaxVMs
	}
	return n
}

type placer struct {
	topo *topology.Topology
	cfg  Config
	rng  *rand.Rand
	d    *Deployment
}

// placeTenant implements the paper's strategy: select a pod uniformly
// at random, then repeatedly pick a random leaf within that pod and
// pack up to P VMs of the tenant under it (one per host); only when
// the chosen pod has no spare capacity does the algorithm select
// another pod. Tenants therefore concentrate in as few pods as their
// size requires — which is what keeps multicast groups' pod spans
// small enough for the paper's 2-rule spine budget.
func (p *placer) placeTenant(id, size int) (Tenant, error) {
	t := Tenant{ID: id, VMs: make([]VM, 0, size)}
	usedHosts := make(map[topology.HostID]bool, size)
	remaining := size
	triedPods := make(map[topology.PodID]bool)
	const maxRandomTries = 16
	for remaining > 0 {
		// Select a pod, preferring random probes, falling back to a
		// scan when the fabric is nearly full.
		pod := topology.PodID(-1)
		for try := 0; try < maxRandomTries; try++ {
			cand := topology.PodID(p.rng.Intn(p.topo.NumPods()))
			if !triedPods[cand] {
				pod = cand
				break
			}
		}
		if pod < 0 {
			for c := 0; c < p.topo.NumPods(); c++ {
				if !triedPods[topology.PodID(c)] {
					pod = topology.PodID(c)
					break
				}
			}
		}
		if pod < 0 {
			return t, fmt.Errorf("placement: fabric full placing tenant %d (%d VMs unplaced)", id, remaining)
		}
		// Exhaust the pod: visit its leaves in random order, packing
		// up to P per leaf, until no leaf accepts more.
		leaves := p.rng.Perm(p.topo.Config().LeavesPerPod)
		for _, li := range leaves {
			if remaining == 0 {
				break
			}
			n := p.packUnderLeaf(&t, p.topo.LeafAt(pod, li), usedHosts, remaining)
			remaining -= n
		}
		triedPods[pod] = true
	}
	return t, nil
}

// packUnderLeaf packs up to min(P, want) VMs of the tenant on distinct
// hosts under the leaf, honoring host capacity. It returns the number
// placed.
func (p *placer) packUnderLeaf(t *Tenant, leaf topology.LeafID, usedHosts map[topology.HostID]bool, want int) int {
	limit := want
	if p.cfg.P != PAll {
		// Count the tenant's VMs already under this leaf so revisits
		// don't exceed P in total.
		already := 0
		for _, vm := range t.VMs {
			if p.topo.HostLeaf(vm.Host) == leaf {
				already++
			}
		}
		if room := p.cfg.P - already; room < limit {
			limit = room
		}
	}
	if limit <= 0 {
		return 0
	}
	placed := 0
	hostsPerLeaf := p.topo.Config().HostsPerLeaf
	start := p.rng.Intn(hostsPerLeaf)
	for i := 0; i < hostsPerLeaf && placed < limit; i++ {
		h := p.topo.HostAt(leaf, (start+i)%hostsPerLeaf)
		if usedHosts[h] || p.d.HostLoad[h] >= p.cfg.VMsPerHost {
			continue
		}
		usedHosts[h] = true
		p.d.HostLoad[h]++
		t.VMs = append(t.VMs, VM{Tenant: t.ID, Host: h})
		placed++
	}
	return placed
}

// LeavesOf returns the distinct leaves hosting the given hosts.
func LeavesOf(topo *topology.Topology, hosts []topology.HostID) []topology.LeafID {
	seen := make(map[topology.LeafID]bool)
	var leaves []topology.LeafID
	for _, h := range hosts {
		l := topo.HostLeaf(h)
		if !seen[l] {
			seen[l] = true
			leaves = append(leaves, l)
		}
	}
	return leaves
}
