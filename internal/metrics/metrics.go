// Package metrics provides the small statistics and table-formatting
// utilities the experiment harness uses: streaming summaries,
// percentiles over collected samples, and fixed-width result tables
// that mirror the rows/series the paper reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates streaming count/mean/max/min statistics without
// retaining samples.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// AddN records a sample with multiplicity n in constant time,
// equivalent to calling Add(x) n times.
func (s *Summary) AddN(x float64, n int) {
	if n <= 0 {
		return
	}
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n += n
	s.sum += x * float64(n)
	s.sumSq += x * x * float64(n)
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the sample sum.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Std returns the population standard deviation.
func (s *Summary) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// String renders "mean (min/max)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f (min %.2f, max %.2f, n=%d)", s.Mean(), s.min, s.max, s.n)
}

// Samples retains values for percentile queries.
type Samples struct {
	xs     []float64
	sorted bool
}

// Add appends a sample. NaN samples are dropped: a NaN would poison
// the sort order and make every later Percentile answer depend on
// where it landed.
func (p *Samples) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	p.xs = append(p.xs, x)
	p.sorted = false
}

// N returns the number of samples.
func (p *Samples) N() int { return len(p.xs) }

// Percentile returns the q-th percentile (0 <= q <= 100) by nearest-
// rank; 0 when empty.
func (p *Samples) Percentile(q float64) float64 {
	if len(p.xs) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 100 {
		return p.xs[len(p.xs)-1]
	}
	rank := int(math.Ceil(q/100*float64(len(p.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return p.xs[rank]
}

// Mean returns the sample mean.
func (p *Samples) Mean() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range p.xs {
		sum += x
	}
	return sum / float64(len(p.xs))
}

// Max returns the largest sample (0 when empty).
func (p *Samples) Max() float64 { return p.Percentile(100) }

// Table formats experiment output as an aligned fixed-width table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
