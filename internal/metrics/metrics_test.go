package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Std() != 0 {
		t.Fatal("empty summary not zero")
	}
	for _, x := range []float64{2, 4, 6} {
		s.Add(x)
	}
	if s.N() != 3 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 || s.Sum() != 12 {
		t.Fatalf("summary = %s", s.String())
	}
	want := math.Sqrt((4 + 0 + 4) / 3.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Fatalf("std = %f, want %f", s.Std(), want)
	}
	s.AddN(4, 2)
	if s.N() != 5 || s.Mean() != 4 {
		t.Fatal("AddN wrong")
	}
}

// TestAddNEquivalence checks the O(1) AddN matches n repeated Adds
// exactly across interleaved random sequences, including n <= 0 being
// a no-op.
func TestAddNEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var fast, slow Summary
	fast.AddN(99, 0)
	fast.AddN(99, -3)
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64() * 50
		n := rng.Intn(6) // 0 is a valid multiplicity
		fast.AddN(x, n)
		for j := 0; j < n; j++ {
			slow.Add(x)
		}
	}
	if fast.N() != slow.N() || fast.Min() != slow.Min() || fast.Max() != slow.Max() {
		t.Fatalf("AddN %s != repeated Add %s", fast.String(), slow.String())
	}
	if math.Abs(fast.Sum()-slow.Sum()) > 1e-9*math.Abs(slow.Sum()) {
		t.Fatalf("sum: %g vs %g", fast.Sum(), slow.Sum())
	}
	if math.Abs(fast.Std()-slow.Std()) > 1e-9 {
		t.Fatalf("std: %g vs %g", fast.Std(), slow.Std())
	}
}

func TestSummaryNegatives(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("summary = %s", s.String())
	}
}

func TestPercentiles(t *testing.T) {
	var p Samples
	if p.Percentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 95: 95, 99: 99, 100: 100}
	for q, want := range cases {
		if got := p.Percentile(q); got != want {
			t.Errorf("P%v = %v, want %v", q, got, want)
		}
	}
	if p.Mean() != 50.5 {
		t.Fatalf("mean = %v", p.Mean())
	}
	if p.Max() != 100 {
		t.Fatalf("max = %v", p.Max())
	}
}

// TestPercentileNaNAndEmpty is the regression guard for the NaN
// poisoning bug: NaN samples sort first under sort.Float64s, shifting
// every low percentile to NaN. Add must drop them, and every query on
// an empty (or all-NaN) sample set must return 0, never NaN.
func TestPercentileNaNAndEmpty(t *testing.T) {
	var p Samples
	for _, q := range []float64{0, 50, 100} {
		if got := p.Percentile(q); got != 0 {
			t.Fatalf("empty P%v = %v, want 0", q, got)
		}
	}
	if p.Mean() != 0 || p.Max() != 0 {
		t.Fatalf("empty mean/max = %v/%v", p.Mean(), p.Max())
	}

	p.Add(math.NaN())
	if p.N() != 0 {
		t.Fatalf("NaN was retained: N = %d", p.N())
	}
	for _, q := range []float64{0, 50, 100} {
		if got := p.Percentile(q); got != 0 {
			t.Fatalf("all-NaN P%v = %v, want 0", q, got)
		}
	}

	// NaNs interleaved with real samples must not shift any percentile.
	for _, x := range []float64{3, math.NaN(), 1, math.NaN(), 2} {
		p.Add(x)
	}
	if p.N() != 3 {
		t.Fatalf("N = %d, want 3", p.N())
	}
	for q, want := range map[float64]float64{0: 1, 50: 2, 100: 3} {
		got := p.Percentile(q)
		if math.IsNaN(got) || got != want {
			t.Errorf("P%v = %v, want %v", q, got, want)
		}
	}
	if math.IsNaN(p.Mean()) || p.Mean() != 2 {
		t.Errorf("mean = %v, want 2", p.Mean())
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	var p Samples
	p.Add(3)
	_ = p.Percentile(50)
	p.Add(1) // must re-sort
	if got := p.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(seed int64, qRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Samples
		min, max := math.Inf(1), math.Inf(-1)
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 100
			p.Add(x)
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		q := float64(qRaw) / 255 * 100
		got := p.Percentile(q)
		return got >= min && got <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "R", "groups", "ratio")
	tb.AddRow(0, 890000, 1.0)
	tb.AddRow(12, 998000, 1.05321)
	out := tb.String()
	if !strings.Contains(out, "Results") || !strings.Contains(out, "groups") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "890000") || !strings.Contains(out, "1.053") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}
