package apps

import (
	"fmt"
	"time"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// This file reproduces Figure 7 and the §4.2 design point: a hypervisor
// switch must treat the whole p-rule list as ONE header written with a
// single call — emitting each p-rule as a separate header (as hardware
// parsers require) costs a write per rule in software and collapses
// packet rate as rules grow.

// EncapMode selects the §4.2 strategy under test.
type EncapMode int

const (
	// SingleWrite serializes the precomputed section stream with one
	// copy (PISCES with the Elmo extension — the paper's design).
	SingleWrite EncapMode = iota
	// PerRuleWrite emits every p-rule with a separate write call (the
	// naive port of the hardware representation; the ablation).
	PerRuleWrite
)

func (m EncapMode) String() string {
	if m == SingleWrite {
		return "single-write"
	}
	return "per-rule-write"
}

// EncapPoint is one Figure 7 measurement.
type EncapPoint struct {
	PRules int
	Mode   EncapMode
	// Mpps is millions of packets encapsulated per second.
	Mpps float64
	// Gbps is the corresponding line rate for the given frame size.
	Gbps float64
	// Bytes is the resulting on-wire packet size.
	Bytes int
}

// buildLeafRules makes n leaf p-rules with distinct switch IDs.
func buildLeafRules(l header.Layout, n int) []header.PRule {
	rules := make([]header.PRule, n)
	for i := range rules {
		rules[i] = header.PRule{
			Switches: []uint16{uint16(i)},
			Bitmap:   bitmap.FromPorts(l.LeafDown, i%l.LeafDown),
		}
	}
	return rules
}

// MeasureEncap measures hypervisor encapsulation throughput for each
// p-rule count, under both write strategies, with the given inner
// frame size and measurement duration per point.
func MeasureEncap(topo *topology.Topology, prCounts []int, innerSize int, perPoint time.Duration) ([]EncapPoint, error) {
	l := header.LayoutFor(topo)
	inner := make([]byte, innerSize)
	outer := header.OuterFields{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: header.GroupIP(1),
		VNI: 1, ElmoVersion: header.Version, TTL: 64,
	}
	var points []EncapPoint
	for _, n := range prCounts {
		h := &header.Header{DLeaf: buildLeafRules(l, n)}
		stream, err := header.Encode(l, h)
		if err != nil {
			return nil, err
		}
		for _, mode := range []EncapMode{SingleWrite, PerRuleWrite} {
			pps, size, err := measureMode(l, mode, h, stream, outer, inner, perPoint)
			if err != nil {
				return nil, err
			}
			points = append(points, EncapPoint{
				PRules: n,
				Mode:   mode,
				Mpps:   pps / 1e6,
				Gbps:   pps * float64(size) * 8 / 1e9,
				Bytes:  size,
			})
		}
	}
	return points, nil
}

func measureMode(l header.Layout, mode EncapMode, h *header.Header, stream []byte, outer header.OuterFields, inner []byte, d time.Duration) (pps float64, size int, err error) {
	buf := make([]byte, 0, header.OuterSize+len(stream)+len(inner))
	encapOnce := func() error {
		var e error
		buf, e = header.AppendOuter(buf[:0], outer, len(stream)+len(inner))
		if e != nil {
			return e
		}
		switch mode {
		case SingleWrite:
			// One contiguous write of the precomputed stream.
			buf = append(buf, stream...)
		case PerRuleWrite:
			// One write call per p-rule header: each rule is
			// re-serialized and appended independently, modeling the
			// per-header DMA writes of the naive implementation.
			for i := range h.DLeaf {
				one := header.Header{DLeaf: h.DLeaf[i : i+1]}
				frag, e := header.Encode(l, &one)
				if e != nil {
					return e
				}
				// Strip the TagEnd of all but the last fragment and
				// the section framing duplication cost is the point:
				// each write re-frames its rule.
				if i < len(h.DLeaf)-1 {
					frag = frag[:len(frag)-1]
				}
				buf = append(buf, frag...)
			}
			if len(h.DLeaf) == 0 {
				buf = append(buf, header.TagEnd)
			}
		}
		buf = append(buf, inner...)
		return nil
	}
	if err := encapOnce(); err != nil {
		return 0, 0, err
	}
	size = len(buf)
	// Timed loop with a minimum iteration count for stable clocks.
	const batch = 2048
	var total int
	start := time.Now()
	for time.Since(start) < d {
		for i := 0; i < batch; i++ {
			if err := encapOnce(); err != nil {
				return 0, 0, err
			}
		}
		total += batch
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, 0, fmt.Errorf("apps: zero elapsed time")
	}
	return float64(total) / elapsed, size, nil
}
