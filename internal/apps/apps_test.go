package apps

import (
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

func appFixture(t testing.TB) (*controller.Controller, *fabric.Fabric, *topology.Topology) {
	topo := topology.MustNew(topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 6, HostsPerLeaf: 12, CoresPerPlane: 2})
	ctrl, err := controller.New(topo, controller.Config{
		MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
		KMaxSpine: 2, KMaxLeaf: 2, R: 6, SRuleCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, 64)
	fab.SetFailures(ctrl.Failures())
	return ctrl, fab, topo
}

func subsFrom(topo *topology.Topology, n int) []topology.HostID {
	subs := make([]topology.HostID, n)
	for i := range subs {
		subs[i] = topology.HostID(i + 1)
	}
	return subs
}

func TestPubSubDelivery(t *testing.T) {
	ctrl, fab, topo := appFixture(t)
	subs := subsFrom(topo, 16)
	ps, err := NewPubSub(ctrl, fab, controller.GroupKey{Tenant: 1, Group: 1}, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []Transport{TransportElmo, TransportUnicast} {
		got, err := ps.Publish(tr, []byte("tick"))
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if got != len(subs) {
			t.Fatalf("%s delivered %d of %d", tr, got, len(subs))
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if ctrl.NumGroups() != 0 {
		t.Fatal("group not removed")
	}
}

func TestPubSubRejectsSelfSubscription(t *testing.T) {
	ctrl, fab, _ := appFixture(t)
	if _, err := NewPubSub(ctrl, fab, controller.GroupKey{Tenant: 1, Group: 2}, 3, []topology.HostID{3}); err == nil {
		t.Fatal("self-subscription accepted")
	}
}

func TestMeasurePubSubShape(t *testing.T) {
	ctrl, fab, topo := appFixture(t)
	counts := []int{1, 8, 32}
	points, err := MeasurePubSub(ctrl, fab, 0, subsFrom(topo, 32), counts, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(counts) {
		t.Fatalf("points = %d", len(points))
	}
	byKey := make(map[string]PubSubPoint)
	for _, p := range points {
		byKey[p.Transport.String()+string(rune(p.Subscribers))] = p
		if p.Throughput <= 0 || p.CPUPercent <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// Figure 6 shape: unicast cost grows with subscribers, Elmo stays
	// roughly flat; at the largest count unicast must be clearly worse.
	e1 := byKey["elmo"+string(rune(1))]
	e32 := byKey["elmo"+string(rune(32))]
	u1 := byKey["unicast"+string(rune(1))]
	u32 := byKey["unicast"+string(rune(32))]
	if u32.PerMessage <= u1.PerMessage {
		t.Fatalf("unicast per-message did not grow: %v -> %v", u1.PerMessage, u32.PerMessage)
	}
	if u32.PerMessage < 2*e32.PerMessage {
		t.Fatalf("unicast@32 %v should dwarf elmo@32 %v", u32.PerMessage, e32.PerMessage)
	}
	if e32.PerMessage > 8*e1.PerMessage {
		t.Fatalf("elmo per-message grew too much: %v -> %v", e1.PerMessage, e32.PerMessage)
	}
	if u32.CPUPercent <= e32.CPUPercent {
		t.Fatalf("unicast CPU %.1f%% should exceed elmo %.1f%%", u32.CPUPercent, e32.CPUPercent)
	}
}

func TestTelemetryMarshalRoundTrip(t *testing.T) {
	s := TelemetrySample{Agent: 9, Sequence: 3, CPUMilli: 750, MemBytes: 1 << 33, RxBytes: 17, TxBytes: 23}
	got, err := UnmarshalTelemetry(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("roundtrip: %+v != %+v", got, s)
	}
	if _, err := UnmarshalTelemetry([]byte{1, 2, 3}); err == nil {
		t.Fatal("short datagram accepted")
	}
	bad := s.Marshal()
	bad[3] = 9 // version
	if _, err := UnmarshalTelemetry(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestMeasureTelemetryShape(t *testing.T) {
	ctrl, fab, topo := appFixture(t)
	counts := []int{1, 4, 16, 64}
	points, err := MeasureTelemetry(ctrl, fab, 0, subsFrom(topo, 64), counts, 8)
	if err != nil {
		t.Fatal(err)
	}
	var elmo, uni []TelemetryPoint
	for _, p := range points {
		if p.Transport == TransportElmo {
			elmo = append(elmo, p)
		} else {
			uni = append(uni, p)
		}
	}
	// §5.2.2: unicast egress grows linearly; Elmo stays constant
	// (modulo a few header bytes).
	if uni[3].EgressKbps < 30*uni[0].EgressKbps {
		t.Fatalf("unicast egress not linear: %v", uni)
	}
	if elmo[3].EgressKbps > 1.5*elmo[0].EgressKbps {
		t.Fatalf("elmo egress not flat: %v", elmo)
	}
	if uni[3].EgressKbps < 10*elmo[3].EgressKbps {
		t.Fatalf("unicast@64 %.1f should dwarf elmo %.1f", uni[3].EgressKbps, elmo[3].EgressKbps)
	}
}

func TestMeasureEncapShape(t *testing.T) {
	topo := topology.MustNew(topology.FacebookFabric())
	points, err := MeasureEncap(topo, []int{0, 10, 30}, 1000, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(n int, m EncapMode) EncapPoint {
		for _, p := range points {
			if p.PRules == n && p.Mode == m {
				return p
			}
		}
		t.Fatalf("missing point %d/%v", n, m)
		return EncapPoint{}
	}
	s0 := byKey(0, SingleWrite)
	s30 := byKey(30, SingleWrite)
	p30 := byKey(30, PerRuleWrite)
	if s0.Mpps <= 0 || s30.Mpps <= 0 {
		t.Fatal("throughput not measured")
	}
	// Figure 7: pps decreases as p-rules grow (bigger packets)...
	if s30.Bytes <= s0.Bytes {
		t.Fatal("packet size did not grow with rules")
	}
	// ...and §4.2: per-rule writes are substantially slower than the
	// single-write design at 30 rules.
	if p30.Mpps >= s30.Mpps {
		t.Fatalf("per-rule %.2f Mpps should be below single-write %.2f Mpps", p30.Mpps, s30.Mpps)
	}
}
