package apps

import (
	"encoding/binary"
	"fmt"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

// This file reproduces the §5.2.2 host-telemetry experiment: an
// sFlow-style agent exports performance samples from its host to a set
// of collectors. With unicast the agent's egress bandwidth grows
// linearly in the collector count; with Elmo it stays flat at one
// copy's worth (the paper: 370.4 Kbps at 64 collectors vs a constant
// 5.8 Kbps).

// TelemetrySample is one exported counter record, encoded to a fixed
// 92-byte sFlow-like datagram (version, agent, sequence, and a small
// counter block).
type TelemetrySample struct {
	Agent    topology.HostID
	Sequence uint32
	CPUMilli uint32 // CPU in 1/1000 cores
	MemBytes uint64
	RxBytes  uint64
	TxBytes  uint64
}

// sampleSize is the encoded datagram size.
const sampleSize = 92

// Marshal encodes the sample.
func (s *TelemetrySample) Marshal() []byte {
	b := make([]byte, sampleSize)
	binary.BigEndian.PutUint32(b[0:], 5) // sFlow version 5
	binary.BigEndian.PutUint32(b[4:], uint32(s.Agent))
	binary.BigEndian.PutUint32(b[8:], s.Sequence)
	binary.BigEndian.PutUint32(b[12:], s.CPUMilli)
	binary.BigEndian.PutUint64(b[16:], s.MemBytes)
	binary.BigEndian.PutUint64(b[24:], s.RxBytes)
	binary.BigEndian.PutUint64(b[32:], s.TxBytes)
	return b
}

// UnmarshalTelemetry decodes a datagram.
func UnmarshalTelemetry(b []byte) (TelemetrySample, error) {
	if len(b) < sampleSize {
		return TelemetrySample{}, fmt.Errorf("apps: telemetry datagram %d bytes, want %d", len(b), sampleSize)
	}
	if v := binary.BigEndian.Uint32(b[0:]); v != 5 {
		return TelemetrySample{}, fmt.Errorf("apps: telemetry version %d", v)
	}
	return TelemetrySample{
		Agent:    topology.HostID(binary.BigEndian.Uint32(b[4:])),
		Sequence: binary.BigEndian.Uint32(b[8:]),
		CPUMilli: binary.BigEndian.Uint32(b[12:]),
		MemBytes: binary.BigEndian.Uint64(b[16:]),
		RxBytes:  binary.BigEndian.Uint64(b[24:]),
		TxBytes:  binary.BigEndian.Uint64(b[32:]),
	}, nil
}

// TelemetryPoint is one §5.2.2 measurement: the agent's egress
// bandwidth for a collector count under one transport.
type TelemetryPoint struct {
	Collectors  int
	Transport   Transport
	EgressKbps  float64
	ReportsRate float64 // reports per second used for the conversion
}

// MeasureTelemetry runs the sweep: for each collector count, export
// one report over each transport and convert the bytes leaving the
// agent's host NIC to a bandwidth at the given report rate.
func MeasureTelemetry(ctrl *controller.Controller, fab *fabric.Fabric, agent topology.HostID, allCollectors []topology.HostID, counts []int, reportsPerSec float64) ([]TelemetryPoint, error) {
	var points []TelemetryPoint
	nextGroup := uint32(1)
	for _, n := range counts {
		if n > len(allCollectors) {
			return nil, fmt.Errorf("apps: %d collectors requested, %d available", n, len(allCollectors))
		}
		collectors := allCollectors[:n]
		key := controller.GroupKey{Tenant: 88, Group: nextGroup}
		nextGroup++
		members := map[topology.HostID]controller.Role{agent: controller.RoleSender}
		for _, c := range collectors {
			members[c] = controller.RoleReceiver
		}
		if _, err := ctrl.CreateGroup(key, members); err != nil {
			return nil, err
		}
		if _, err := fab.InstallGroup(ctrl, key); err != nil {
			return nil, err
		}
		sample := TelemetrySample{Agent: agent, Sequence: 1, CPUMilli: 250, MemBytes: 1 << 30}
		data := sample.Marshal()
		addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}

		// Egress = bytes on the agent's host->leaf link per report:
		// one encapsulated copy under Elmo, n copies under unicast.
		pkt, err := fab.Hypervisors[agent].Encap(addr, data)
		if err != nil {
			return nil, err
		}
		elmoEgress := pkt.WireSize()
		uniEgress := n * (50 + len(data)) // OuterSize + datagram, per collector

		// Validate end-to-end delivery and payload integrity once.
		d, err := fab.Send(agent, addr, data)
		if err != nil {
			return nil, err
		}
		if len(d.Received) != n {
			return nil, fmt.Errorf("apps: telemetry delivered %d of %d", len(d.Received), n)
		}
		for _, inner := range d.Received {
			got, err := UnmarshalTelemetry(inner)
			if err != nil {
				return nil, err
			}
			if got.Agent != agent || got.CPUMilli != 250 {
				return nil, fmt.Errorf("apps: telemetry payload corrupted: %+v", got)
			}
		}
		points = append(points,
			TelemetryPoint{Collectors: n, Transport: TransportElmo,
				EgressKbps: kbps(elmoEgress, reportsPerSec), ReportsRate: reportsPerSec},
			TelemetryPoint{Collectors: n, Transport: TransportUnicast,
				EgressKbps: kbps(uniEgress, reportsPerSec), ReportsRate: reportsPerSec},
		)
		if err := fab.UninstallGroup(ctrl, key); err != nil {
			return nil, err
		}
		if err := ctrl.RemoveGroup(key); err != nil {
			return nil, err
		}
	}
	return points, nil
}

func kbps(bytesPerReport int, reportsPerSec float64) float64 {
	return float64(bytesPerReport) * 8 * reportsPerSec / 1000
}
