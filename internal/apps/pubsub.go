// Package apps reproduces the end-to-end application experiments of
// paper §5.2 and §5.3 on the emulated fabric:
//
//   - a ZeroMQ-style publish-subscribe system (Figure 6): publisher
//     throughput and CPU as subscriber counts grow, unicast vs Elmo;
//   - an sFlow-style host-telemetry exporter (§5.2.2): agent egress
//     bandwidth as collector counts grow;
//   - the PISCES hypervisor-switch encapsulation microbenchmark
//     (Figure 7): packet rate vs number of p-rules, including the §4.2
//     ablation of one-write-per-header vs one-write-per-p-rule.
//
// The applications run unmodified over both transports: they publish
// opaque frames to a group address and the transport (unicast
// replication or Elmo) is chosen underneath, exactly as the paper runs
// ZeroMQ/sFlow unchanged.
package apps

import (
	"fmt"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// Transport selects how a publish reaches group members.
type Transport int

const (
	// TransportUnicast replicates at the sender (the cloud status quo).
	TransportUnicast Transport = iota
	// TransportElmo sends one copy with the Elmo header.
	TransportElmo
)

func (tr Transport) String() string {
	if tr == TransportElmo {
		return "elmo"
	}
	return "unicast"
}

// PubSub is a publish-subscribe system bound to one group on a fabric.
type PubSub struct {
	ctrl      *controller.Controller
	fab       *fabric.Fabric
	key       controller.GroupKey
	addr      dataplane.GroupAddr
	publisher topology.HostID
	subs      []topology.HostID
	// Delivered counts messages received across subscribers.
	Delivered int
}

// NewPubSub creates the group (publisher as sender, subscribers as
// receivers) and installs its data-plane state.
func NewPubSub(ctrl *controller.Controller, fab *fabric.Fabric, key controller.GroupKey, publisher topology.HostID, subs []topology.HostID) (*PubSub, error) {
	members := map[topology.HostID]controller.Role{publisher: controller.RoleSender}
	for _, s := range subs {
		if s == publisher {
			return nil, fmt.Errorf("apps: publisher cannot subscribe to itself")
		}
		members[s] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		return nil, err
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		return nil, err
	}
	return &PubSub{
		ctrl: ctrl, fab: fab, key: key,
		addr:      dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group},
		publisher: publisher, subs: subs,
	}, nil
}

// Close removes the group from both planes.
func (ps *PubSub) Close() error {
	if err := ps.fab.UninstallGroup(ps.ctrl, ps.key); err != nil {
		return err
	}
	return ps.ctrl.RemoveGroup(ps.key)
}

// Publish sends one message to all subscribers over the chosen
// transport and returns the number of subscriber deliveries.
func (ps *PubSub) Publish(tr Transport, msg []byte) (int, error) {
	var d *fabric.Delivery
	var err error
	switch tr {
	case TransportElmo:
		d, err = ps.fab.Send(ps.publisher, ps.addr, msg)
	default:
		d, err = ps.fab.SendUnicast(ps.publisher, ps.subs, msg)
	}
	if err != nil {
		return 0, err
	}
	ps.Delivered += len(d.Received)
	return len(d.Received), nil
}

// PubSubPoint is one measurement of Figure 6: publisher-side message
// rate and modeled CPU at a fixed offered load, for one subscriber
// count and transport.
type PubSubPoint struct {
	Subscribers int
	Transport   Transport
	// PerMessage is the measured publisher cost of one publish call.
	PerMessage time.Duration
	// Throughput is the per-subscriber message rate the publisher can
	// sustain (messages/sec each subscriber observes).
	Throughput float64
	// CPUPercent is the publisher CPU share at the reference offered
	// load (see MeasurePubSub).
	CPUPercent float64
}

// MeasurePubSub runs the Figure 6 sweep: for each subscriber count it
// measures per-publish cost under both transports and derives
// throughput and CPU.
//
// CPU model (documented substitution for the paper's testbed VMs): the
// publisher's CPU share at a fixed offered load L is
// cost-per-message × L, capped at 100%. L is calibrated so the Elmo
// publisher at one subscriber sits at the paper's ~5% — the unicast
// line then grows with the replication factor exactly as the testbed's
// did, saturating where per-message cost × L reaches 1.
func MeasurePubSub(ctrl *controller.Controller, fab *fabric.Fabric, publisher topology.HostID, allSubs []topology.HostID, counts []int, msgSize, msgsPerPoint int) ([]PubSubPoint, error) {
	var points []PubSubPoint
	msg := make([]byte, msgSize)
	var elmoBase time.Duration
	nextGroup := uint32(1)
	for _, n := range counts {
		if n > len(allSubs) {
			return nil, fmt.Errorf("apps: %d subscribers requested, %d available", n, len(allSubs))
		}
		key := controller.GroupKey{Tenant: 77, Group: nextGroup}
		nextGroup++
		ps, err := NewPubSub(ctrl, fab, key, publisher, allSubs[:n])
		if err != nil {
			return nil, err
		}
		for _, tr := range []Transport{TransportElmo, TransportUnicast} {
			per, err := timePublish(ps, tr, msg, msgsPerPoint, n)
			if err != nil {
				return nil, err
			}
			if tr == TransportElmo && elmoBase == 0 {
				elmoBase = per
			}
			points = append(points, PubSubPoint{
				Subscribers: n,
				Transport:   tr,
				PerMessage:  per,
			})
		}
		if err := ps.Close(); err != nil {
			return nil, err
		}
	}
	// Calibrate the reference load from the first Elmo point: 5% CPU.
	if elmoBase <= 0 {
		elmoBase = time.Microsecond
	}
	refLoad := 0.05 / elmoBase.Seconds()
	for i := range points {
		p := &points[i]
		cpu := p.PerMessage.Seconds() * refLoad * 100
		if cpu > 100 {
			cpu = 100
		}
		p.CPUPercent = cpu
		// The publisher saturates when cost×rate reaches 1; throughput
		// per subscriber is the sustainable publish rate.
		maxRate := 1 / p.PerMessage.Seconds()
		if refLoad < maxRate {
			p.Throughput = refLoad
		} else {
			p.Throughput = maxRate
		}
	}
	return points, nil
}

// timePublish measures the PUBLISHER-side cost of one message — the
// quantity that bottlenecks Figure 6. One functional publish first
// validates end-to-end delivery through the fabric; the timed loop
// then performs exactly the work the publisher's hypervisor does per
// message: one encapsulation + serialization under Elmo, and one per
// subscriber under unicast.
func timePublish(ps *PubSub, tr Transport, msg []byte, msgs, wantSubs int) (time.Duration, error) {
	if got, err := ps.Publish(tr, msg); err != nil {
		return 0, err
	} else if got != wantSubs {
		return 0, fmt.Errorf("apps: %s delivered %d of %d", tr, got, wantSubs)
	}
	hv := ps.fab.Hypervisors[ps.publisher]
	buf := make([]byte, 0, 2048)
	// Best-of-three trials: a single GC pause or scheduler hiccup in a
	// trial would otherwise dominate the per-message cost.
	best := time.Duration(0)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		switch tr {
		case TransportElmo:
			for i := 0; i < msgs; i++ {
				pkt, err := hv.Encap(ps.addr, msg)
				if err != nil {
					return 0, err
				}
				buf, err = pkt.Marshal(buf[:0])
				if err != nil {
					return 0, err
				}
			}
		default:
			topo := ps.fab.Topology()
			for i := 0; i < msgs; i++ {
				for _, sub := range ps.subs {
					pkt := dataplane.Packet{
						Outer: header.OuterFields{
							SrcMAC:  header.HostMAC(ps.publisher),
							DstMAC:  header.HostMAC(sub),
							SrcIP:   header.HostIP(topo, ps.publisher),
							DstIP:   header.HostIP(topo, sub),
							SrcPort: uint16(49152 + i%16384),
							TTL:     64,
						},
						Inner: msg,
					}
					var err error
					buf, err = pkt.Marshal(buf[:0])
					if err != nil {
						return 0, err
					}
				}
			}
		}
		elapsed := time.Since(start) / time.Duration(msgs)
		if trial == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}
