package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// Ack is one caller's handle on an in-flight append. Wait blocks until
// the record's batch has been fsynced (or failed); the latency
// accessors then report where the time went: queued behind the
// previous batch, written+synced with its own batch, and the total
// enqueue-to-durable commit latency.
type Ack struct {
	lsn     uint64
	epoch   uint64
	typ     uint8
	data    []byte
	barrier bool

	enqueued time.Time
	queue    time.Duration
	flush    time.Duration
	commit   time.Duration

	err  error
	done chan struct{}
}

func newAck(typ uint8, data []byte) *Ack {
	return &Ack{typ: typ, data: data, enqueued: time.Now(), done: make(chan struct{})}
}

// LSN returns the record's log sequence number (assigned at Append).
func (a *Ack) LSN() uint64 { return a.lsn }

// Wait blocks until the record is durable and returns the batch's
// write/sync error, if any.
func (a *Ack) Wait() error {
	<-a.done
	return a.err
}

// Latencies returns the queue, flush, and total commit durations.
// Valid only after Wait returns.
func (a *Ack) Latencies() (queue, flush, commit time.Duration) {
	return a.queue, a.flush, a.commit
}

// flusher is the single goroutine that owns the segment files: it
// blocks for the first pending record, opportunistically drains
// everything else already queued (up to the batch bounds), writes the
// whole batch, fsyncs once, and releases every Ack with its timings.
func (l *Log) flusher() {
	defer close(l.done)
	batch := make([]*Ack, 0, l.opts.BatchRecords)
	for {
		a, ok := <-l.queue
		if !ok {
			return
		}
		batch = append(batch[:0], a)
		bytes := frameHeader + 1 + len(a.data)
	drain:
		for len(batch) < l.opts.BatchRecords && bytes < l.opts.BatchBytes {
			select {
			case b, ok := <-l.queue:
				if !ok {
					break drain
				}
				batch = append(batch, b)
				bytes += frameHeader + 1 + len(b.data)
			default:
				break drain
			}
		}
		l.commitBatch(batch)
	}
}

// commitBatch writes and syncs one batch, then releases its Acks.
func (l *Log) commitBatch(batch []*Ack) {
	start := time.Now()
	err := l.flushErr
	records := 0
	if err == nil {
		for _, a := range batch {
			if a.barrier {
				continue
			}
			if err = l.writeFrame(a); err != nil {
				break
			}
			records++
		}
	}
	if err == nil && records > 0 {
		err = l.syncFile()
	}
	if err != nil {
		// A write/sync failure poisons the log: later batches would
		// otherwise silently skip the hole.
		l.flushErr = err
	}
	end := time.Now()
	m := l.opts.Metrics
	for _, a := range batch {
		a.err = err
		a.queue = start.Sub(a.enqueued)
		a.flush = end.Sub(start)
		a.commit = end.Sub(a.enqueued)
		close(a.done)
		if m != nil && !a.barrier {
			m.queueLat.Observe(a.queue.Seconds())
			m.flushLat.Observe(a.flush.Seconds())
			m.commitLat.Observe(a.commit.Seconds())
		}
	}
	if m != nil && records > 0 {
		m.batches.Inc()
		m.batchRecords.Observe(float64(records))
	}
}

// writeFrame appends one record frame to the current segment, rotating
// first when the segment is full.
func (l *Log) writeFrame(a *Ack) error {
	if l.cur == nil || (l.curSize > 0 && l.curSize >= int64(l.opts.SegmentBytes)) {
		if err := l.rotate(a.lsn); err != nil {
			return err
		}
	}
	var hdr [frameHeader + 1]byte
	size := uint32(1 + len(a.data))
	binary.BigEndian.PutUint32(hdr[4:8], size)
	binary.BigEndian.PutUint64(hdr[8:16], a.lsn)
	binary.BigEndian.PutUint64(hdr[16:24], a.epoch)
	hdr[24] = a.typ
	crc := crc32.Checksum(hdr[4:], castagnoli)
	crc = crc32.Update(crc, castagnoli, a.data)
	binary.BigEndian.PutUint32(hdr[0:4], crc)
	if _, err := l.cur.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.cur.Write(a.data); err != nil {
		return err
	}
	n := int64(frameHeader) + int64(size)
	l.curSize += n
	if m := l.opts.Metrics; m != nil {
		m.bytes.Add(n)
	}
	return nil
}

// rotate syncs and closes the current segment and opens a new one
// whose name records its first LSN.
func (l *Log) rotate(firstLSN uint64) error {
	if l.cur != nil {
		if err := l.syncFile(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			return err
		}
		l.cur = nil
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(firstLSN)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.cur, l.curSize, l.curFirst = f, 0, firstLSN
	if m := l.opts.Metrics; m != nil {
		m.segments.Inc()
	}
	return nil
}

// syncFile fsyncs the current segment (unless NoSync).
func (l *Log) syncFile() error {
	if l.cur == nil || l.opts.NoSync {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return err
	}
	if m := l.opts.Metrics; m != nil {
		m.fsyncs.Inc()
	}
	return nil
}
