package wal

import "elmo/internal/telemetry"

// Metrics bundles the log's telemetry handles. The latency histograms
// reuse the control-plane bucket layout (1µs..5s), which brackets both
// an in-page-cache flush and a slow platter fsync.
type Metrics struct {
	appends   *telemetry.Counter
	batches   *telemetry.Counter
	fsyncs    *telemetry.Counter
	segments  *telemetry.Counter
	truncated *telemetry.Counter
	bytes     *telemetry.Counter

	batchRecords *telemetry.Histogram
	queueLat     *telemetry.Histogram
	flushLat     *telemetry.Histogram
	commitLat    *telemetry.Histogram
}

// NewMetrics registers the WAL metric families in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	lat := reg.HistogramVec("elmo_wal_latency_seconds",
		"Group-commit latency by stage: queue (behind the previous batch), flush (write+fsync of own batch), commit (enqueue to durable).",
		telemetry.LatencyBuckets, "stage")
	return &Metrics{
		appends: reg.Counter("elmo_wal_appends_total",
			"Records enqueued for group commit."),
		batches: reg.Counter("elmo_wal_batches_total",
			"Group-commit batches flushed."),
		fsyncs: reg.Counter("elmo_wal_fsyncs_total",
			"fsync calls issued (one per batch plus segment rotations)."),
		segments: reg.Counter("elmo_wal_segments_created_total",
			"Segment files created."),
		truncated: reg.Counter("elmo_wal_segments_truncated_total",
			"Segment files removed by snapshot truncation."),
		bytes: reg.Counter("elmo_wal_bytes_total",
			"Frame bytes written to segments."),
		batchRecords: reg.Histogram("elmo_wal_batch_records",
			"Records coalesced per group-commit batch.",
			telemetry.ExponentialBuckets(1, 2, 13)),
		queueLat:  lat.With("queue"),
		flushLat:  lat.With("flush"),
		commitLat: lat.With("commit"),
	}
}

// CommitLatency exposes the commit-stage histogram (for benchmark
// reporting).
func (m *Metrics) CommitLatency() *telemetry.Histogram { return m.commitLat }

// BatchRecords exposes the per-batch record-count histogram.
func (m *Metrics) BatchRecords() *telemetry.Histogram { return m.batchRecords }
