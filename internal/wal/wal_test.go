package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"elmo/internal/telemetry"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	opts.NoSync = true // tests exercise the pipeline, not the platter
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	acks := make([]*Ack, 0, n)
	for i := 0; i < n; i++ {
		a, err := l.Append(uint8(1+(start+i)%3), []byte(fmt.Sprintf("record-%d", start+i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		acks = append(acks, a)
	}
	for _, a := range acks {
		if err := a.Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
}

func collect(t *testing.T, dir string, from uint64) []Record {
	t.Helper()
	var recs []Record
	if _, err := Replay(dir, from, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Epoch: r.Epoch, Type: r.Type, Data: bytes.Clone(r.Data)})
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	appendN(t, l, 0, 100)
	if got := l.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d, want 100", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs := collect(t, dir, 1)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
		if want := fmt.Sprintf("record-%d", i); string(r.Data) != want {
			t.Fatalf("record %d data %q, want %q", i, r.Data, want)
		}
		if r.Type != uint8(1+i%3) {
			t.Fatalf("record %d type %d", i, r.Type)
		}
	}
}

func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	appendN(t, l, 0, 50)
	l.Close()
	recs := collect(t, dir, 31)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records from 31, want 20", len(recs))
	}
	if recs[0].LSN != 31 || recs[len(recs)-1].LSN != 50 {
		t.Fatalf("range [%d..%d], want [31..50]", recs[0].LSN, recs[len(recs)-1].LSN)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	appendN(t, l, 0, 10)
	l.Close()
	l2 := openTest(t, dir, Options{})
	if next := l2.NextLSN(); next != 11 {
		t.Fatalf("NextLSN after reopen = %d, want 11", next)
	}
	appendN(t, l2, 10, 10)
	l2.Close()
	if recs := collect(t, dir, 1); len(recs) != 20 {
		t.Fatalf("replayed %d, want 20", len(recs))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every few records rotates.
	l := openTest(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 0, 200)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	// Truncate through LSN 150: every segment fully below survives only
	// if it contains records > 150.
	removed, err := l.TruncateThrough(150)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if removed == 0 {
		t.Fatal("expected segments removed")
	}
	recs := collect(t, dir, 151)
	if len(recs) != 50 {
		t.Fatalf("replayed %d records after truncate, want 50", len(recs))
	}
	// Records still covered by remaining segments replay fine.
	if recs[0].LSN != 151 {
		t.Fatalf("first surviving record %d", recs[0].LSN)
	}
	l.Close()
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	appendN(t, l, 0, 20)
	l.Close()
	// Simulate a crash mid-batch: append half a frame to the segment.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, frameHeader+40)
	binary.BigEndian.PutUint32(torn[4:8], 41)
	binary.BigEndian.PutUint64(torn[8:16], 21)
	f.Write(torn[:frameHeader+10]) // truncated mid-payload, bad CRC
	f.Close()

	// Replay stops cleanly at the torn frame.
	recs := collect(t, dir, 1)
	if len(recs) != 20 {
		t.Fatalf("replayed %d, want 20 (torn tail tolerated)", len(recs))
	}
	// Reopen truncates the tail and resumes the LSN sequence.
	l2 := openTest(t, dir, Options{})
	if next := l2.NextLSN(); next != 21 {
		t.Fatalf("NextLSN = %d, want 21", next)
	}
	appendN(t, l2, 20, 5)
	l2.Close()
	if recs := collect(t, dir, 1); len(recs) != 25 {
		t.Fatalf("replayed %d after repair, want 25", len(recs))
	}
}

func TestCorruptMiddleSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 128})
	appendN(t, l, 0, 60)
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Flip a byte in the middle segment.
	path := filepath.Join(dir, segs[1].name)
	buf, _ := os.ReadFile(path)
	buf[len(buf)/2] ^= 0xff
	os.WriteFile(path, buf, 0o644)
	_, err := Replay(dir, 1, func(Record) error { return nil })
	if err == nil {
		t.Fatal("Replay of corrupt middle segment should error")
	}
}

func TestConcurrentAppendersGroupCommit(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	// Real fsync: while one batch is on the disk, the other producers
	// enqueue behind it, which is what makes group commit coalesce.
	l, err := Open(Options{Dir: dir, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.AppendSync(1, []byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Errorf("AppendSync: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	l.Close()
	recs := collect(t, dir, 1)
	if len(recs) != producers*each {
		t.Fatalf("replayed %d, want %d", len(recs), producers*each)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("LSN gap at %d: %d", i, r.LSN)
		}
	}
	// Group commit must have coalesced: strictly fewer fsync batches
	// than records. With 8 producers blocked behind real fsyncs, at
	// least one batch carries more than one record.
	snap := reg.Snapshot()
	batches := snap.Get("elmo_wal_batches_total")
	if batches <= 0 || batches >= float64(producers*each) {
		t.Fatalf("batches = %v for %d records; expected coalescing", batches, producers*each)
	}
}

func TestSyncBarrier(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Everything enqueued before the barrier is on disk now.
	if recs := collect(t, dir, 1); len(recs) != 10 {
		t.Fatalf("replayed %d after Sync, want 10", len(recs))
	}
	l.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Close()
	if _, err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("Append after Close should fail")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync after Close should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestAbandonedLogRecovers models a crash: the first Log is never
// closed (its flusher stays alive but idle), and a second Open on the
// same directory must see every acked record.
func TestAbandonedLogRecovers(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	appendN(t, l, 0, 30) // all acked => durable
	// No Close: simulate the process dying here.
	l2 := openTest(t, dir+"-next", Options{})
	_ = l2 // silence; the real assertion is on dir below
	recs := collect(t, dir, 1)
	if len(recs) != 30 {
		t.Fatalf("recovered %d acked records, want 30", len(recs))
	}
	l2.Close()
}

// FuzzReplay feeds arbitrary bytes as a single segment file: Replay
// must never panic and must never invent records (every record it
// yields carries a CRC-validated frame).
func FuzzReplay(f *testing.F) {
	// Seed with a valid two-record segment.
	dir := f.TempDir()
	l, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("seed-one")); err != nil {
		f.Fatal(err)
	}
	if _, err := l.AppendSync(2, []byte("seed-two")); err != nil {
		f.Fatal(err)
	}
	l.Close()
	segs, _ := listSegments(dir)
	buf, _ := os.ReadFile(filepath.Join(dir, segs[0].name))
	f.Add(buf)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))
	// Epoch-bearing frames: a clean two-term segment and one with an
	// epoch regression (must error, never yield the stale record).
	f.Add(append(craftFrame(1, 3, 1, []byte("term-3")), craftFrame(2, 7, 1, []byte("term-7"))...))
	f.Add(append(craftFrame(1, 7, 1, []byte("term-7")), craftFrame(2, 3, 1, []byte("stale"))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		n := 0
		last, err := Replay(dir, 1, func(r Record) error {
			// Re-verify the frame invariants Replay promises.
			if r.LSN != uint64(n+1) {
				t.Fatalf("non-contiguous LSN %d at record %d", r.LSN, n)
			}
			n++
			return nil
		})
		if err == nil && last != uint64(n) {
			t.Fatalf("last=%d but yielded %d records", last, n)
		}
	})
}

func TestMetricsCounters(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	l := openTest(t, dir, Options{Metrics: m, SegmentBytes: 128})
	appendN(t, l, 0, 50)
	l.Close()
	snap := reg.Snapshot()
	if got := snap.Get("elmo_wal_appends_total"); got != 50 {
		t.Fatalf("appends_total = %v", got)
	}
	if got := snap.Get("elmo_wal_bytes_total"); got <= 0 {
		t.Fatalf("bytes_total = %v", got)
	}
	if got := snap.Get("elmo_wal_segments_created_total"); got < 2 {
		t.Fatalf("segments_created_total = %v, want >= 2", got)
	}
	if got := snap.Get(`elmo_wal_latency_seconds_count{stage="commit"}`); got != 50 {
		// Key format depends on telemetry snapshot naming; fall back to
		// the histogram handle.
		if m.commitLat.Count() != 50 {
			t.Fatalf("commit latency count = %d, want 50", m.commitLat.Count())
		}
	}
}

// TestTruncateFrom cuts the log at several positions — mid-segment, at
// a segment's first LSN, and at the live tail — and checks replay
// stops exactly before the cut while appends resume at the cut LSN.
func TestTruncateFrom(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l := openTest(t, dir, Options{SegmentBytes: 256}) // force several segments
		appendN(t, l, 0, 40)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) < 3 {
			t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
		}
		return dir
	}

	t.Run("mid-segment", func(t *testing.T) {
		dir := build(t)
		if err := TruncateFrom(dir, 25); err != nil {
			t.Fatal(err)
		}
		recs := collect(t, dir, 1)
		if len(recs) != 24 || recs[len(recs)-1].LSN != 24 {
			t.Fatalf("replay after cut: %d records, last %d", len(recs), recs[len(recs)-1].LSN)
		}
		l := openTest(t, dir, Options{SegmentBytes: 256})
		defer l.Close()
		if got := l.NextLSN(); got != 25 {
			t.Fatalf("NextLSN = %d, want 25", got)
		}
		appendN(t, l, 100, 3)
		if got := l.LastLSN(); got != 27 {
			t.Fatalf("LastLSN after re-append = %d, want 27", got)
		}
	})

	t.Run("segment-first", func(t *testing.T) {
		dir := build(t)
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		cut := segs[len(segs)-1].first
		if err := TruncateFrom(dir, cut); err != nil {
			t.Fatal(err)
		}
		recs := collect(t, dir, 1)
		if uint64(len(recs)) != cut-1 {
			t.Fatalf("replay after cut at %d: %d records", cut, len(recs))
		}
		l := openTest(t, dir, Options{SegmentBytes: 256})
		defer l.Close()
		// The emptied segment keeps the LSN base: appends resume at cut,
		// not at 1.
		if got := l.NextLSN(); got != cut {
			t.Fatalf("NextLSN = %d, want %d", got, cut)
		}
	})

	t.Run("one-past-tail-is-noop", func(t *testing.T) {
		dir := build(t)
		if err := TruncateFrom(dir, 41); err != nil {
			t.Fatal(err)
		}
		if recs := collect(t, dir, 1); len(recs) != 40 {
			t.Fatalf("no-op cut lost records: %d", len(recs))
		}
	})

	t.Run("missing-lsn-is-error", func(t *testing.T) {
		dir := build(t)
		if err := TruncateFrom(dir, 99); err == nil {
			t.Fatal("cut past the log accepted")
		}
	})

	// Cut exactly at a middle segment's first LSN: that segment is
	// emptied (keeping the LSN base), every later segment is deleted.
	t.Run("middle-segment-boundary", func(t *testing.T) {
		dir := build(t)
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		cut := segs[1].first
		if err := TruncateFrom(dir, cut); err != nil {
			t.Fatal(err)
		}
		after, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != 2 {
			t.Fatalf("segments after boundary cut = %d, want 2 (head + emptied base)", len(after))
		}
		recs := collect(t, dir, 1)
		if uint64(len(recs)) != cut-1 {
			t.Fatalf("replay after cut at %d: %d records", cut, len(recs))
		}
		l := openTest(t, dir, Options{SegmentBytes: 256})
		defer l.Close()
		if got := l.NextLSN(); got != cut {
			t.Fatalf("NextLSN = %d, want %d", got, cut)
		}
	})

	// Cut at LSN 1: the whole log is erased but the directory still
	// resumes at LSN 1, not at some invented base.
	t.Run("lsn-1", func(t *testing.T) {
		dir := build(t)
		if err := TruncateFrom(dir, 1); err != nil {
			t.Fatal(err)
		}
		if recs := collect(t, dir, 1); len(recs) != 0 {
			t.Fatalf("replay after full cut: %d records, want 0", len(recs))
		}
		l := openTest(t, dir, Options{SegmentBytes: 256})
		defer l.Close()
		if got := l.NextLSN(); got != 1 {
			t.Fatalf("NextLSN = %d, want 1", got)
		}
		appendN(t, l, 0, 3)
		if got := l.LastLSN(); got != 3 {
			t.Fatalf("LastLSN after re-append = %d, want 3", got)
		}
	})

	// Cutting again at the base of an already-emptied tail segment is
	// idempotent; cutting past its (nonexistent) records is an error.
	t.Run("already-empty-tail", func(t *testing.T) {
		dir := build(t)
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		cut := segs[len(segs)-1].first
		if err := TruncateFrom(dir, cut); err != nil {
			t.Fatal(err)
		}
		// Tail segment is now zero-length. Same cut again: no-op.
		if err := TruncateFrom(dir, cut); err != nil {
			t.Fatal(err)
		}
		recs := collect(t, dir, 1)
		if uint64(len(recs)) != cut-1 {
			t.Fatalf("idempotent cut changed replay: %d records", len(recs))
		}
		// An LSN inside the emptied segment's range holds no frame.
		if err := TruncateFrom(dir, cut+1); err == nil {
			t.Fatal("cut inside an empty tail segment accepted")
		}
		l := openTest(t, dir, Options{SegmentBytes: 256})
		defer l.Close()
		if got := l.NextLSN(); got != cut {
			t.Fatalf("NextLSN = %d, want %d", got, cut)
		}
	})
}

// craftFrame builds one valid frame by hand (CRC included) so tests
// can write epochs the Log API would refuse to regress to.
func craftFrame(lsn, epoch uint64, typ byte, data []byte) []byte {
	b := make([]byte, frameHeader+1+len(data))
	binary.BigEndian.PutUint32(b[4:8], uint32(1+len(data)))
	binary.BigEndian.PutUint64(b[8:16], lsn)
	binary.BigEndian.PutUint64(b[16:24], epoch)
	b[24] = typ
	copy(b[25:], data)
	binary.BigEndian.PutUint32(b[0:4], crc32.Checksum(b[4:], castagnoli))
	return b
}

// TestEpochStampedFrames: frames carry the log's epoch, replay returns
// it, and a reopen can only keep or raise the epoch — never lower it.
func TestEpochStampedFrames(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Epoch: 3})
	if got := l.Epoch(); got != 3 {
		t.Fatalf("Epoch = %d, want 3", got)
	}
	appendN(t, l, 0, 5)
	l.Close()
	for _, r := range collect(t, dir, 1) {
		if r.Epoch != 3 {
			t.Fatalf("record %d epoch %d, want 3", r.LSN, r.Epoch)
		}
	}

	// Reopen without an epoch: the log's durable epoch wins.
	l2 := openTest(t, dir, Options{})
	if got := l2.Epoch(); got != 3 {
		t.Fatalf("reopened Epoch = %d, want 3", got)
	}
	appendN(t, l2, 5, 2)
	l2.Close()

	// Reopen with a lower epoch: still 3. With a higher: raised.
	l3 := openTest(t, dir, Options{Epoch: 2})
	if got := l3.Epoch(); got != 3 {
		t.Fatalf("Epoch after lower reopen = %d, want 3", got)
	}
	l3.Close()
	l4 := openTest(t, dir, Options{Epoch: 5})
	appendN(t, l4, 7, 2)
	l4.Close()
	recs := collect(t, dir, 1)
	if recs[len(recs)-1].Epoch != 5 || recs[0].Epoch != 3 {
		t.Fatalf("epoch range [%d..%d], want [3..5]", recs[0].Epoch, recs[len(recs)-1].Epoch)
	}
}

// TestEpochSurvivesEmptiedTail: TruncateFrom at a segment boundary
// leaves a zero-length tail; a reopen must recover the epoch from the
// earlier segments instead of regressing to 0.
func TestEpochSurvivesEmptiedTail(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 256, Epoch: 4})
	appendN(t, l, 0, 40)
	l.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >=2 segments (%v)", err)
	}
	if err := TruncateFrom(dir, segs[len(segs)-1].first); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	if got := l2.Epoch(); got != 4 {
		t.Fatalf("Epoch after emptied-tail reopen = %d, want 4", got)
	}
}

// TestEpochRegressionIsCorruption: a CRC-valid frame stamped with a
// lower epoch than its predecessor is split-brain residue. Both Replay
// and Open must reject it rather than treat it as a torn tail.
func TestEpochRegressionIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Epoch: 5})
	appendN(t, l, 0, 3)
	l.Close()
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(craftFrame(4, 2, 1, []byte("stale-term"))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Replay(dir, 1, func(Record) error { return nil }); err == nil {
		t.Fatal("Replay accepted an epoch regression")
	}
	if _, err := Open(Options{Dir: dir, NoSync: true}); err == nil {
		t.Fatal("Open accepted an epoch regression")
	}
}
