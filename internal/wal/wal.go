// Package wal implements the controller's write-ahead log: a
// segmented, CRC-checksummed, append-only record log with a
// channel-based group-commit batcher. Callers enqueue records and get
// back an Ack; a single flusher goroutine drains the queue, writes a
// whole batch, fsyncs once, and then releases every Ack in the batch
// with its queue/flush/commit latencies. Batching amortizes the fsync —
// the dominant cost of durability — across every record that arrived
// while the previous batch was on the platter, which is what lets the
// control plane sustain high op rates while still acking only after
// the bytes are durable.
//
// On-disk layout: the log directory holds segment files named by the
// LSN of their first record (0000000000000001.wal). Each record is
// framed as
//
//	crc32c(4) | size(4) | lsn(8) | epoch(8) | type(1) | data
//
// with the checksum covering size..data. The epoch is the leadership
// term of the controller that wrote the record: minted at promotion,
// stamped on every frame, and required to be non-decreasing across the
// log — a regression is corruption, not a torn tail. Replay validates
// every frame and requires LSNs to be contiguous; a torn frame at the
// very tail of the last segment (the crash window of an in-flight
// batch) terminates replay cleanly, while corruption anywhere else is
// an error.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	// frameHeader is crc(4) + size(4) + lsn(8) + epoch(8).
	frameHeader = 24
	// segmentSuffix names segment files.
	segmentSuffix = ".wal"

	// DefaultSegmentBytes rotates segments at 16 MiB.
	DefaultSegmentBytes = 16 << 20
	// DefaultBatchRecords caps records coalesced into one fsync.
	DefaultBatchRecords = 4096
	// DefaultBatchBytes caps the byte size of one batch.
	DefaultBatchBytes = 4 << 20
)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes rotates to a new segment once the current one
	// reaches this size (0 = DefaultSegmentBytes).
	SegmentBytes int
	// BatchRecords / BatchBytes bound one group-commit batch
	// (0 = defaults).
	BatchRecords int
	BatchBytes   int
	// NoSync skips fsync (tests and benchmarks that measure the
	// batching pipeline rather than the disk).
	NoSync bool
	// Metrics, when non-nil, receives append/batch/fsync counters and
	// the queue/flush/commit latency histograms.
	Metrics *Metrics
	// Epoch is the leadership term stamped on every appended frame.
	// The effective epoch is the maximum of this and the last epoch
	// already in the log (epochs never regress within one directory);
	// 0 leaves legacy logs unfenced.
	Epoch uint64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.BatchRecords <= 0 {
		o.BatchRecords = DefaultBatchRecords
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = DefaultBatchBytes
	}
	return o
}

// Record is one replayed log entry. Data aliases the replay buffer and
// is valid only for the duration of the callback; copy it to retain.
type Record struct {
	LSN   uint64
	Epoch uint64
	Type  uint8
	Data  []byte
}

// Log is an append-only segmented record log. Append may be called
// concurrently; one flusher goroutine owns the files.
type Log struct {
	opts  Options
	epoch uint64 // immutable after Open

	mu      sync.Mutex // serializes LSN assignment + enqueue order
	nextLSN uint64
	closed  bool

	queue chan *Ack
	done  chan struct{}

	// flusher-owned state (no locking: single goroutine).
	cur      *os.File
	curSize  int64
	curFirst uint64
	flushErr error
}

// Open opens (or creates) the log in opts.Dir, scanning existing
// segments to find the next LSN. A torn frame at the tail of the last
// segment — the signature of a crash mid-batch — is truncated away so
// appends resume cleanly; the records before it were never acked.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:    opts,
		epoch:   opts.Epoch,
		nextLSN: 1,
		queue:   make(chan *Ack, opts.BatchRecords),
		done:    make(chan struct{}),
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		lastLSN, lastEpoch, validLen, err := scanSegment(filepath.Join(opts.Dir, last.name), last.first, true)
		if err != nil {
			return nil, err
		}
		if lastLSN == 0 {
			// An emptied tail segment (TruncateFrom) holds no frames and
			// therefore no epoch; walk earlier segments so a reopen can
			// never stamp a lower epoch than what is already durable.
			for i := len(segs) - 2; i >= 0; i-- {
				pLSN, pEpoch, _, err := scanSegment(filepath.Join(opts.Dir, segs[i].name), segs[i].first, false)
				if err != nil {
					return nil, err
				}
				if pLSN > 0 {
					lastEpoch = pEpoch
					break
				}
			}
		}
		if lastEpoch > l.epoch {
			l.epoch = lastEpoch
		}
		path := filepath.Join(opts.Dir, last.name)
		if fi, err := os.Stat(path); err == nil && fi.Size() > validLen {
			if err := os.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.name, err)
			}
		}
		if lastLSN > 0 {
			l.nextLSN = lastLSN + 1
		} else {
			l.nextLSN = last.first
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.cur, l.curSize, l.curFirst = f, validLen, last.first
	}
	go l.flusher()
	return l, nil
}

// Dir returns the segment directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Epoch returns the leadership term stamped on appended frames: the
// maximum of Options.Epoch and the last epoch found in the log at Open.
func (l *Log) Epoch() uint64 { return l.epoch }

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastLSN returns the LSN of the most recently enqueued record (0 when
// the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Append enqueues one record for group commit and returns its Ack. The
// record's LSN is assigned in enqueue order — callers that need the
// log order to match an apply order hold their own mutex across
// Append and the apply. Wait for durability with Ack.Wait.
func (l *Log) Append(typ uint8, data []byte) (*Ack, error) {
	a := newAck(typ, data)
	a.epoch = l.epoch
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: log closed")
	}
	a.lsn = l.nextLSN
	l.nextLSN++
	l.queue <- a
	l.mu.Unlock()
	if m := l.opts.Metrics; m != nil {
		m.appends.Inc()
	}
	return a, nil
}

// AppendSync appends one record and blocks until it is durable,
// returning its LSN.
func (l *Log) AppendSync(typ uint8, data []byte) (uint64, error) {
	a, err := l.Append(typ, data)
	if err != nil {
		return 0, err
	}
	if err := a.Wait(); err != nil {
		return 0, err
	}
	return a.LSN(), nil
}

// Sync enqueues a barrier and waits for every record enqueued before
// it to be durable.
func (l *Log) Sync() error {
	a := newAck(0, nil)
	a.barrier = true
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	l.queue <- a
	l.mu.Unlock()
	return a.Wait()
}

// Close drains the queue, syncs, and releases the files. Appends after
// Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.queue)
	l.mu.Unlock()
	<-l.done
	if l.cur != nil {
		if err := l.syncFile(); err != nil {
			l.cur.Close()
			return err
		}
		err := l.cur.Close()
		l.cur = nil
		return err
	}
	return l.flushErr
}

// TruncateThrough removes whole segments whose records all have
// LSN <= lsn (snapshot-covered prefix). The active segment is never
// removed. Returns the number of segments deleted.
func (l *Log) TruncateThrough(lsn uint64) (int, error) {
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		// Segment i spans [segs[i].first, segs[i+1].first-1].
		if segs[i+1].first-1 > lsn {
			break
		}
		if err := os.Remove(filepath.Join(l.opts.Dir, segs[i].name)); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		removed++
	}
	if m := l.opts.Metrics; m != nil && removed > 0 {
		m.truncated.Add(int64(removed))
	}
	return removed, nil
}

// TruncateFrom physically removes every record with LSN >= lsn from
// the log directory: segments starting at or after lsn are deleted,
// and the segment containing lsn is cut at lsn's frame boundary. The
// segment whose first LSN equals lsn is truncated to zero length
// rather than removed, so a subsequent Open resumes assigning LSNs at
// lsn instead of restarting from 1. Recovery uses this to drop a
// trailing incomplete batch whose chunks are durable but were never
// acked — leaving them on disk would let a later replay merge them
// into unrelated records. Must be called while no Log owns the
// directory (i.e. before Open).
func TruncateFrom(dir string, lsn uint64) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i := len(segs) - 1; i >= 0; i-- {
		seg := segs[i]
		path := filepath.Join(dir, seg.name)
		switch {
		case seg.first > lsn:
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		case seg.first == lsn:
			if err := os.Truncate(path, 0); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			return nil
		default:
			off, err := frameOffset(path, seg.first, lsn)
			if err != nil {
				return err
			}
			if err := os.Truncate(path, off); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			return nil
		}
	}
	return fmt.Errorf("wal: truncate from lsn %d: no segment contains it", lsn)
}

// frameOffset scans a segment for the byte offset where lsn's frame
// begins (== where valid earlier frames end). lsn one past the last
// frame is accepted and returns the end of valid data.
func frameOffset(path string, first, lsn uint64) (int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	want := first
	off := int64(0)
	for int64(len(buf))-off >= frameHeader {
		if want == lsn {
			return off, nil
		}
		rest := buf[off:]
		size := binary.BigEndian.Uint32(rest[4:8])
		got := binary.BigEndian.Uint64(rest[8:16])
		frameLen := int64(frameHeader) + int64(size)
		ok := size >= 1 && int64(len(rest)) >= frameLen && got == want &&
			binary.BigEndian.Uint32(rest[0:4]) == crc32.Checksum(rest[4:frameLen], castagnoli)
		if !ok {
			break
		}
		want = got + 1
		off += frameLen
	}
	if want == lsn {
		return off, nil
	}
	return 0, fmt.Errorf("wal: lsn %d not found in %s", lsn, filepath.Base(path))
}

// segment is one discovered segment file.
type segment struct {
	name  string
	first uint64
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment name %q", name)
		}
		segs = append(segs, segment{name: name, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			return nil, fmt.Errorf("wal: overlapping segments %s and %s", segs[i-1].name, segs[i].name)
		}
	}
	return segs, nil
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%016d%s", first, segmentSuffix)
}

// scanSegment walks one segment validating frames. It returns the last
// valid LSN (0 if the segment holds no valid record), the last epoch
// seen, and the byte offset where valid data ends. With tolerateTail,
// an invalid frame ends the scan cleanly (crash tail); otherwise it is
// an error. An epoch regression between valid frames is always an
// error: writers stamp a fixed epoch per log lifetime, so a decrease
// means the directory was shared by two leaders out of order.
func scanSegment(path string, first uint64, tolerateTail bool) (lastLSN, lastEpoch uint64, validLen int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	want := first
	off := int64(0)
	for int64(len(buf))-off >= frameHeader {
		rest := buf[off:]
		size := binary.BigEndian.Uint32(rest[4:8])
		lsn := binary.BigEndian.Uint64(rest[8:16])
		epoch := binary.BigEndian.Uint64(rest[16:24])
		frameLen := int64(frameHeader) + int64(size)
		ok := size >= 1 && int64(len(rest)) >= frameLen && lsn == want &&
			binary.BigEndian.Uint32(rest[0:4]) == crc32.Checksum(rest[4:frameLen], castagnoli)
		if !ok {
			if tolerateTail {
				return lastLSN, lastEpoch, off, nil
			}
			return 0, 0, 0, fmt.Errorf("wal: corrupt frame at %s+%d (lsn %d expected)", filepath.Base(path), off, want)
		}
		if epoch < lastEpoch {
			return 0, 0, 0, fmt.Errorf("wal: epoch regression %d -> %d at %s+%d", lastEpoch, epoch, filepath.Base(path), off)
		}
		lastLSN = lsn
		lastEpoch = epoch
		want = lsn + 1
		off += frameLen
	}
	if off < int64(len(buf)) && !tolerateTail {
		return 0, 0, 0, fmt.Errorf("wal: trailing garbage at %s+%d", filepath.Base(path), off)
	}
	return lastLSN, lastEpoch, off, nil
}

// Replay streams every record with LSN >= from, in order, to fn. A torn
// tail in the final segment ends replay cleanly (those records were
// never acked); corruption anywhere else, or a gap in the LSN
// sequence, is an error. fn's Record.Data aliases an internal buffer.
func Replay(dir string, from uint64, fn func(Record) error) (last uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var want uint64      // next expected LSN; 0 until the first record
	var prevEpoch uint64 // epochs must be non-decreasing across the log
	for si, seg := range segs {
		// Skip segments that end before from: segment i ends at
		// segs[i+1].first-1.
		if si+1 < len(segs) && segs[si+1].first <= from {
			want = segs[si+1].first
			last = segs[si+1].first - 1
			continue
		}
		final := si == len(segs)-1
		buf, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return last, fmt.Errorf("wal: %w", err)
		}
		if want != 0 && seg.first != want {
			return last, fmt.Errorf("wal: gap before %s: expected lsn %d", seg.name, want)
		}
		want = seg.first
		off := int64(0)
		for int64(len(buf))-off >= frameHeader {
			rest := buf[off:]
			size := binary.BigEndian.Uint32(rest[4:8])
			lsn := binary.BigEndian.Uint64(rest[8:16])
			epoch := binary.BigEndian.Uint64(rest[16:24])
			frameLen := int64(frameHeader) + int64(size)
			ok := size >= 1 && int64(len(rest)) >= frameLen && lsn == want &&
				binary.BigEndian.Uint32(rest[0:4]) == crc32.Checksum(rest[4:frameLen], castagnoli)
			if !ok {
				if final {
					return last, nil // torn tail: clean end of log
				}
				return last, fmt.Errorf("wal: corrupt frame at %s+%d", seg.name, off)
			}
			if epoch < prevEpoch {
				// A checksummed frame from an older leadership term after
				// a newer one is split-brain residue, never a torn tail.
				return last, fmt.Errorf("wal: epoch regression %d -> %d at %s+%d", prevEpoch, epoch, seg.name, off)
			}
			prevEpoch = epoch
			if lsn >= from {
				if err := fn(Record{LSN: lsn, Epoch: epoch, Type: rest[24], Data: rest[25:frameLen]}); err != nil {
					return last, err
				}
			}
			last = lsn
			want = lsn + 1
			off += frameLen
		}
		if off < int64(len(buf)) && !final {
			return last, fmt.Errorf("wal: trailing garbage at %s+%d", seg.name, off)
		}
	}
	return last, nil
}
