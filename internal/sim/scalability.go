// Package sim is the experiment harness for the paper's §5.1
// scalability evaluation. It builds a fabric, places tenants, generates
// a group workload, runs the controller's encoding for every group
// against shared s-rule capacity, and measures:
//
//   - the number of groups covered without default p-rules, split into
//     p-rules-only and p+s-rules (Figures 4 and 5, left panels);
//   - the distribution of s-rules installed per leaf and spine switch,
//     with the Li et al. baseline (center panels);
//   - the traffic overhead relative to ideal multicast, by forwarding
//     one packet per group through the emulated data plane, with
//     unicast and overlay baselines (right panels);
//   - per-sender header-size statistics (§5.1.2's 114-byte average /
//     325-byte cap).
//
// The harness streams: per-group state is discarded after measurement,
// so paper-scale runs (27,648 hosts, one million groups) fit in memory.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"elmo/internal/baselines"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/groupgen"
	"elmo/internal/header"
	"elmo/internal/metrics"
	"elmo/internal/placement"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// ScalabilityConfig assembles a full §5.1 experiment.
type ScalabilityConfig struct {
	Topology   topology.Config
	Placement  placement.Config
	Groups     groupgen.Config
	Controller controller.Config
	// PacketSizes are the inner-frame sizes to measure traffic
	// overhead for (paper: 64 and 1500).
	PacketSizes []int
	// BaselineSampleEvery measures unicast/overlay baselines on every
	// Nth group (they are ratios; sampling keeps full-scale runs
	// fast). Zero disables baseline measurement.
	BaselineSampleEvery int
	// Seed drives sender selection.
	Seed int64
	// Workers shards the per-group encoding phase across that many
	// goroutines (resolved by controller.ResolveWorkers: <=0 uses
	// GOMAXPROCS); measurement and admission stay serialized in group
	// order under the occupancy admission mutex, so results are
	// identical for every worker count.
	Workers int
	// Metrics, when non-nil, attaches dataplane/fabric telemetry to the
	// measurement fabric and publishes live run progress, so a /metrics
	// scrape mid-run sees the experiment move.
	Metrics *telemetry.Registry
	// Observer, when non-nil, receives per-link byte accounting and
	// per-send samples from the measurement fabric (the ops plane's
	// feed: link utilization, heavy hitters, SLO counters).
	Observer dataplane.FlowObserver
}

// PaperScalability returns the full paper-scale configuration for a
// placement locality P, redundancy R and group count.
func PaperScalability(p, r, totalGroups int, dist groupgen.Distribution) ScalabilityConfig {
	return ScalabilityConfig{
		Topology:            topology.FacebookFabric(),
		Placement:           placement.PaperConfig(p),
		Groups:              groupgen.PaperConfig(totalGroups, dist),
		Controller:          controller.PaperConfig(r),
		PacketSizes:         []int{64, 1500},
		BaselineSampleEvery: 101,
		Seed:                33,
	}
}

// ScalabilityResult aggregates one run's measurements.
type ScalabilityResult struct {
	Config ScalabilityConfig

	TotalGroups int
	// GroupsPRulesOnly are covered exactly with p-rules alone at both
	// downstream layers.
	GroupsPRulesOnly int
	// LeafPRulesOnly counts groups whose LEAF layer is covered by
	// p-rules alone — the paper's Figure 4/5 left-panel metric ("there
	// are 30 p-rules for the leaf layer — just enough header capacity
	// to be covered only with p-rules"); leaf rules dominate the
	// header, so the paper tracks this layer.
	LeafPRulesOnly int
	// GroupsWithSRules are covered exactly using s-rules too.
	GroupsWithSRules int
	// GroupsWithDefault needed a default p-rule (not exactly covered).
	GroupsWithDefault int

	// LeafSRules / SpineSRules are the final per-switch occupancy
	// distributions.
	LeafSRules  metrics.Samples
	SpineSRules metrics.Samples
	// LiLeafEntries / LiSpineEntries / LiCoreEntries are the Li et al.
	// baseline per-switch group-table entries.
	LiLeafEntries  metrics.Samples
	LiSpineEntries metrics.Samples
	LiCoreEntries  metrics.Samples

	// HeaderBytes summarizes assembled sender-header sizes.
	HeaderBytes metrics.Summary

	// TrafficOverhead[n] is Σelmo/Σideal − 1 for inner size n;
	// UnicastOverhead and OverlayOverhead are sampled analogues.
	TrafficOverhead map[int]float64
	UnicastOverhead map[int]float64
	OverlayOverhead map[int]float64

	// DeliveryFailures counts groups whose forwarding check missed a
	// member (must be zero; non-zero indicates a bug).
	DeliveryFailures int
}

// RunScalability executes the experiment.
func RunScalability(cfg ScalabilityConfig) (*ScalabilityResult, error) {
	topo, err := topology.New(cfg.Topology)
	if err != nil {
		return nil, err
	}
	dep, err := placement.Place(topo, cfg.Placement)
	if err != nil {
		return nil, err
	}
	groups, err := groupgen.Generate(dep, cfg.Groups)
	if err != nil {
		return nil, err
	}
	res := &ScalabilityResult{
		Config:          cfg,
		TotalGroups:     len(groups),
		TrafficOverhead: make(map[int]float64),
		UnicastOverhead: make(map[int]float64),
		OverlayOverhead: make(map[int]float64),
	}

	// Shared s-rule occupancy across all groups (streaming capacity),
	// in the controller's atomic counters so the encoding phase can run
	// on concurrent workers.
	occ := controller.NewOccupancy(topo, cfg.Controller.SRuleCapacity)

	fab := fabric.New(topo, cfg.Controller.SRuleCapacity)
	li := baselines.NewLiState(topo)
	rng := rand.New(rand.NewSource(cfg.Seed))

	var progress *telemetry.Gauge
	if cfg.Metrics != nil {
		fab.SetMetrics(fabric.NewMetrics(cfg.Metrics))
		progress = cfg.Metrics.Gauge("elmo_sim_groups_measured",
			"Groups measured so far in the scalability run.")
	}
	if cfg.Observer != nil {
		fab.SetObserver(cfg.Observer)
	}

	elmoBytes := make(map[int]float64, len(cfg.PacketSizes))
	idealBytes := make(map[int]float64, len(cfg.PacketSizes))
	uniBytes := make(map[int]float64, len(cfg.PacketSizes))
	ovlBytes := make(map[int]float64, len(cfg.PacketSizes))
	sampleIdeal := make(map[int]float64, len(cfg.PacketSizes))

	payloads := make(map[int][]byte, len(cfg.PacketSizes))
	for _, n := range cfg.PacketSizes {
		payloads[n] = make([]byte, n)
	}

	// The encoder phase fans out across workers; this measurement
	// callback runs serially in group order (the batch committer), so
	// the rng draw sequence and all aggregates match a serial run.
	measure := func(gi int, enc *controller.Encoding) error {
		g := &groups[gi]
		switch {
		case !enc.Exact():
			res.GroupsWithDefault++
		case enc.UsesSRules():
			res.GroupsWithSRules++
		default:
			res.GroupsPRulesOnly++
		}
		if len(enc.LeafSRules) == 0 && enc.DLeafDefault == nil {
			res.LeafPRulesOnly++
		}
		li.InstallGroup(g.ID, g.Hosts)

		// Traffic measurement: one packet from a random member through
		// the real data plane.
		sender := g.Hosts[rng.Intn(len(g.Hosts))]
		hdr, err := controller.SenderHeader(topo, cfg.Controller, enc, sender, nil)
		if err != nil {
			return fmt.Errorf("sim: header for group %d: %w", g.ID, err)
		}
		res.HeaderBytes.Add(float64(header.EncodedSize(header.LayoutFor(topo), hdr)))

		addr := dataplane.GroupAddr{VNI: uint32(g.Tenant), Group: g.ID}
		if err := fab.InstallEncoding(addr, enc, g.Hosts); err != nil {
			return err
		}
		if err := fab.InstallSenderHeader(addr, sender, hdr); err != nil {
			return err
		}
		sampleBaselines := cfg.BaselineSampleEvery > 0 && gi%cfg.BaselineSampleEvery == 0
		for _, n := range cfg.PacketSizes {
			d, err := fab.Send(sender, addr, payloads[n])
			if err != nil {
				return fmt.Errorf("sim: send group %d: %w", g.ID, err)
			}
			if len(d.Received) != countOthers(g.Hosts, sender) || d.Lost != 0 {
				res.DeliveryFailures++
			}
			ideal := fabric.IdealBytes(topo, sender, g.Hosts, n)
			elmoBytes[n] += float64(d.LinkBytes)
			idealBytes[n] += float64(ideal)
			if sampleBaselines {
				du, err := fab.SendUnicast(sender, g.Hosts, payloads[n])
				if err != nil {
					return err
				}
				do, _, err := fab.SendOverlay(sender, g.Hosts, payloads[n])
				if err != nil {
					return err
				}
				uniBytes[n] += float64(du.LinkBytes)
				ovlBytes[n] += float64(do.LinkBytes)
				sampleIdeal[n] += float64(ideal)
			}
		}
		fab.RemoveSenderHeader(addr, sender)
		fab.UninstallEncoding(addr, enc, g.Hosts)
		if progress != nil {
			progress.Add(1)
		}
		return nil
	}

	receivers := func(gi int) []topology.HostID { return groups[gi].Hosts }
	if _, err := controller.EncodeBatch(topo, cfg.Controller, occ,
		len(groups), cfg.Workers, receivers, measure); err != nil {
		var be *controller.BatchError
		if errors.As(err, &be) {
			return nil, fmt.Errorf("sim: group %d: %w", groups[be.Index].ID, be.Err)
		}
		return nil, fmt.Errorf("sim: %w", err)
	}

	for _, n := range cfg.PacketSizes {
		if idealBytes[n] > 0 {
			res.TrafficOverhead[n] = elmoBytes[n]/idealBytes[n] - 1
		}
		if sampleIdeal[n] > 0 {
			res.UnicastOverhead[n] = uniBytes[n]/sampleIdeal[n] - 1
			res.OverlayOverhead[n] = ovlBytes[n]/sampleIdeal[n] - 1
		}
	}
	for l := 0; l < topo.NumLeaves(); l++ {
		res.LeafSRules.Add(float64(occ.LeafCount(topology.LeafID(l))))
	}
	for s := 0; s < topo.NumSpines(); s++ {
		res.SpineSRules.Add(float64(occ.SpineCount(topology.SpineID(s))))
	}
	for _, v := range li.LeafEntries {
		res.LiLeafEntries.Add(float64(v))
	}
	for _, v := range li.SpineEntries {
		res.LiSpineEntries.Add(float64(v))
	}
	for _, v := range li.CoreEntries {
		res.LiCoreEntries.Add(float64(v))
	}
	return res, nil
}

func countOthers(hosts []topology.HostID, sender topology.HostID) int {
	n := 0
	for _, h := range hosts {
		if h != sender {
			n++
		}
	}
	return n
}

// CoveredFraction returns the fraction of groups encodable without a
// default p-rule — the Figure 4/5 left-panel metric.
func (r *ScalabilityResult) CoveredFraction() float64 {
	if r.TotalGroups == 0 {
		return 0
	}
	return float64(r.GroupsPRulesOnly+r.GroupsWithSRules) / float64(r.TotalGroups)
}

// Table renders the run as an aligned results table.
func (r *ScalabilityResult) Table(name string) *metrics.Table {
	t := metrics.NewTable(name,
		"metric", "value")
	t.AddRow("groups", r.TotalGroups)
	t.AddRow("covered by p-rules only", r.GroupsPRulesOnly)
	t.AddRow("leaf layer p-rules only", r.LeafPRulesOnly)
	t.AddRow("covered with s-rules", r.GroupsWithSRules)
	t.AddRow("needing default p-rule", r.GroupsWithDefault)
	t.AddRow("covered fraction", r.CoveredFraction())
	t.AddRow("leaf s-rules mean", r.LeafSRules.Mean())
	t.AddRow("leaf s-rules p95", r.LeafSRules.Percentile(95))
	t.AddRow("leaf s-rules max", r.LeafSRules.Max())
	t.AddRow("spine s-rules mean", r.SpineSRules.Mean())
	t.AddRow("spine s-rules max", r.SpineSRules.Max())
	t.AddRow("Li leaf entries mean", r.LiLeafEntries.Mean())
	t.AddRow("Li leaf entries max", r.LiLeafEntries.Max())
	t.AddRow("header bytes mean", r.HeaderBytes.Mean())
	t.AddRow("header bytes min", r.HeaderBytes.Min())
	t.AddRow("header bytes max", r.HeaderBytes.Max())
	for _, n := range r.Config.PacketSizes {
		t.AddRow(fmt.Sprintf("traffic overhead %dB", n), r.TrafficOverhead[n])
		t.AddRow(fmt.Sprintf("unicast overhead %dB", n), r.UnicastOverhead[n])
		t.AddRow(fmt.Sprintf("overlay overhead %dB", n), r.OverlayOverhead[n])
	}
	t.AddRow("delivery failures", r.DeliveryFailures)
	return t
}
