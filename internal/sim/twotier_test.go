package sim

import (
	"testing"

	"elmo/internal/controller"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// TestTwoTierLeafSpine reproduces the §5.1.1 side note: the same
// experiment on a CONGA-style two-tier leaf-spine topology behaves
// qualitatively like the three-tier runs. In a two-tier fabric every
// group is single-pod, so headers carry no core or d-spine sections,
// and coverage is governed purely by the leaf-layer budget.
func TestTwoTierLeafSpine(t *testing.T) {
	cfg := ScalabilityConfig{
		Topology: topology.TwoTierLeafSpine(4, 24, 12), // 288 hosts
		Placement: placement.Config{
			Tenants: 60, VMsPerHost: 20, MinVMs: 5, MaxVMs: 24, MeanVMs: 14, P: 1, Seed: 21,
		},
		Groups: groupgen.Config{TotalGroups: 600, MinSize: 5, Dist: groupgen.WVE, Seed: 23},
		Controller: controller.Config{
			MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
			KMaxSpine: 2, KMaxLeaf: 2, R: 6, SRuleCapacity: 100,
		},
		PacketSizes:         []int{1500},
		BaselineSampleEvery: 13,
		Seed:                25,
	}
	res, err := RunScalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryFailures != 0 {
		t.Fatalf("delivery failures = %d", res.DeliveryFailures)
	}
	if res.CoveredFraction() < 0.95 {
		t.Fatalf("two-tier coverage %.3f; leaf budget should cover almost everything", res.CoveredFraction())
	}
	if res.TrafficOverhead[1500] <= 0 || res.TrafficOverhead[1500] > 0.4 {
		t.Fatalf("two-tier overhead = %.3f", res.TrafficOverhead[1500])
	}
	if res.UnicastOverhead[1500] <= res.TrafficOverhead[1500] {
		t.Fatal("unicast should cost more than Elmo on two-tier too")
	}
	// No spine s-rules should ever be needed: single-pod groups put
	// their pod-internal fan-out in the u-spine rule and d-leaf rules.
	if res.SpineSRules.Max() != 0 {
		t.Fatalf("two-tier spine s-rules max = %f", res.SpineSRules.Max())
	}
}
