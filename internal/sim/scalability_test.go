package sim

import (
	"reflect"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// smallScalability is a fast, scaled-down §5.1 experiment: 4 pods of
// 8 leaves × 8 hosts (256 hosts), 60 tenants, 800 groups.
func smallScalability(p, r, srules int) ScalabilityConfig {
	return ScalabilityConfig{
		Topology: topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 8, CoresPerPlane: 2},
		Placement: placement.Config{
			Tenants: 60, VMsPerHost: 20, MinVMs: 5, MaxVMs: 28, MeanVMs: 16, P: p, Seed: 11,
		},
		Groups: groupgen.Config{TotalGroups: 800, MinSize: 5, Dist: groupgen.WVE, Seed: 13},
		Controller: controller.Config{
			MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
			KMaxSpine: 2, KMaxLeaf: 2, R: r, SRuleCapacity: srules,
		},
		PacketSizes:         []int{64, 1500},
		BaselineSampleEvery: 7,
		Seed:                17,
	}
}

func TestScalabilityRunBasics(t *testing.T) {
	res, err := RunScalability(smallScalability(4, 0, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGroups != 800 {
		t.Fatalf("groups = %d", res.TotalGroups)
	}
	if res.DeliveryFailures != 0 {
		t.Fatalf("delivery failures = %d", res.DeliveryFailures)
	}
	if got := res.GroupsPRulesOnly + res.GroupsWithSRules + res.GroupsWithDefault; got != 800 {
		t.Fatalf("coverage categories sum to %d", got)
	}
	if res.CoveredFraction() < 0.9 {
		t.Fatalf("covered fraction %.3f unexpectedly low with ample capacity", res.CoveredFraction())
	}
	// Traffic overhead: positive, smaller for large packets, and far
	// below the unicast baseline (the paper's headline relationship).
	o64 := res.TrafficOverhead[64]
	o1500 := res.TrafficOverhead[1500]
	if o64 <= 0 || o1500 <= 0 {
		t.Fatalf("overheads: 64B=%.3f 1500B=%.3f", o64, o1500)
	}
	if o1500 >= o64 {
		t.Fatalf("1500B overhead %.3f should be below 64B overhead %.3f", o1500, o64)
	}
	if res.UnicastOverhead[1500] <= o1500 {
		t.Fatalf("unicast overhead %.3f should exceed Elmo %.3f", res.UnicastOverhead[1500], o1500)
	}
	if res.OverlayOverhead[1500] <= o1500 || res.OverlayOverhead[1500] >= res.UnicastOverhead[1500] {
		t.Fatalf("overlay overhead %.3f should sit between Elmo %.3f and unicast %.3f",
			res.OverlayOverhead[1500], o1500, res.UnicastOverhead[1500])
	}
	// Headers fit the budget.
	if res.HeaderBytes.Max() > 325 {
		t.Fatalf("max header %f exceeds budget", res.HeaderBytes.Max())
	}
	if res.HeaderBytes.Mean() <= 0 {
		t.Fatal("header sizes not recorded")
	}
}

func TestScalabilityRaisingRImprovesCoverage(t *testing.T) {
	// Figure 4/5 (left): more redundancy -> more groups covered by
	// p-rules alone. Use zero s-rule capacity so the effect is pure.
	prev := -1
	for _, r := range []int{0, 6, 12} {
		res, err := RunScalability(smallScalability(1, r, 0))
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.GroupsPRulesOnly < prev-20 {
			t.Fatalf("R=%d covered %d, noticeably fewer than %d at lower R", r, res.GroupsPRulesOnly, prev)
		}
		prev = res.GroupsPRulesOnly
		if res.DeliveryFailures != 0 {
			t.Fatalf("R=%d: delivery failures", r)
		}
	}
}

func TestScalabilityRaisingRReducesSRules(t *testing.T) {
	// Figure 4/5 (center): s-rule usage drops as R grows.
	r0, err := RunScalability(smallScalability(4, 0, 2000))
	if err != nil {
		t.Fatal(err)
	}
	r12, err := RunScalability(smallScalability(4, 12, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if r12.LeafSRules.Mean() > r0.LeafSRules.Mean() {
		t.Fatalf("R=12 leaf s-rules %.1f should not exceed R=0's %.1f",
			r12.LeafSRules.Mean(), r0.LeafSRules.Mean())
	}
}

func TestScalabilityElmoBeatsLiOnState(t *testing.T) {
	// Figure 4/5 (center): Elmo's s-rule usage is far below Li et
	// al.'s per-switch group-table entries.
	res, err := RunScalability(smallScalability(1, 6, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.LeafSRules.Mean() >= res.LiLeafEntries.Mean() {
		t.Fatalf("Elmo leaf s-rules %.1f should be below Li's %.1f",
			res.LeafSRules.Mean(), res.LiLeafEntries.Mean())
	}
}

func TestScalabilityClusteredPlacementCoversMore(t *testing.T) {
	// P=12-style clustered placement encodes more groups with p-rules
	// than dispersed P=1 (Figure 4 vs Figure 5).
	clustered, err := RunScalability(smallScalability(8, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	dispersed, err := RunScalability(smallScalability(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if clustered.GroupsPRulesOnly < dispersed.GroupsPRulesOnly {
		t.Fatalf("clustered covered %d < dispersed %d", clustered.GroupsPRulesOnly, dispersed.GroupsPRulesOnly)
	}
}

func TestScalabilityTableRenders(t *testing.T) {
	res, err := RunScalability(smallScalability(4, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table("test run").String()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}

func TestScalabilityErrorsAndOptions(t *testing.T) {
	// Invalid topology surfaces as an error.
	bad := smallScalability(4, 0, 10)
	bad.Topology.Pods = 0
	if _, err := RunScalability(bad); err == nil {
		t.Fatal("invalid topology accepted")
	}
	// Invalid placement too.
	bad2 := smallScalability(4, 0, 10)
	bad2.Placement.Tenants = 0
	if _, err := RunScalability(bad2); err == nil {
		t.Fatal("invalid placement accepted")
	}
	// Baselines disabled: overhead maps stay zero-valued.
	cfg := smallScalability(4, 0, 100)
	cfg.Groups.TotalGroups = 100
	cfg.BaselineSampleEvery = 0
	res, err := RunScalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnicastOverhead[1500] != 0 || res.OverlayOverhead[1500] != 0 {
		t.Fatal("baselines measured despite being disabled")
	}
	if res.TrafficOverhead[1500] <= 0 {
		t.Fatal("elmo traffic not measured")
	}
	// Leaf-layer coverage is at least the all-layer coverage.
	if res.LeafPRulesOnly < res.GroupsPRulesOnly {
		t.Fatalf("leaf-only %d < all-layer %d", res.LeafPRulesOnly, res.GroupsPRulesOnly)
	}
}

// TestScalabilityParallelMatchesSerial pins the determinism guarantee
// of the sharded encoding pipeline at the harness level: the full
// experiment result — coverage counts, occupancy distributions,
// traffic overheads, header stats — is identical for 1 and 4 workers.
func TestScalabilityParallelMatchesSerial(t *testing.T) {
	serialCfg := smallScalability(1, 1, 8) // tight capacity: forces commit-point recomputes
	serialCfg.Workers = 1
	parallelCfg := serialCfg
	parallelCfg.Workers = 4

	serial, err := RunScalability(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunScalability(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zero the configs (they differ only in Workers) and compare the
	// rest of the result wholesale.
	serial.Config = ScalabilityConfig{}
	parallel.Config = ScalabilityConfig{}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}
