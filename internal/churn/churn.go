// Package churn implements the control-plane scalability experiments of
// paper §5.1.3: group-membership dynamics (Table 2) and network
// failures.
//
// Members are randomly assigned sender / receiver / both roles.
// Join/leave events are generated with per-group frequency proportional
// to group size; a join adds a random non-member VM of the owning
// tenant, a leave removes a random member. The controller's update
// counters then yield per-switch update rates, compared against the Li
// et al. baseline driven by the same event stream.
package churn

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"elmo/internal/baselines"
	"elmo/internal/controller"
	"elmo/internal/groupgen"
	"elmo/internal/metrics"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// Config parameterizes a churn run.
type Config struct {
	// Events is the total number of join/leave events (paper: 1M over
	// 1M groups; scale both together).
	Events int
	// EventsPerSecond converts counts to rates (paper: 1,000).
	EventsPerSecond float64
	// Seed drives role assignment and event sampling.
	Seed int64
	// Workers applies the generated events concurrently across that
	// many goroutines, partitioned by group so per-group ordering (and
	// therefore each group's final encoding) is preserved. 1 applies
	// serially; 0 uses GOMAXPROCS. Event generation and the Li baseline
	// are always serial and identical for every worker count;
	// controller results match the serial run whenever s-rule capacity
	// is uncontended.
	Workers int
	// Metrics, when non-nil, publishes live event counters and the final
	// weight drift to a telemetry registry during the run.
	Metrics *Metrics
}

// Result holds per-switch update rates (updates per second).
type Result struct {
	Duration float64 // seconds of simulated churn

	Hypervisor metrics.Samples
	Leaf       metrics.Samples
	Spine      metrics.Samples
	CoreRate   float64 // always 0 for Elmo; kept to document the claim

	LiLeaf  metrics.Samples
	LiSpine metrics.Samples
	LiCore  metrics.Samples

	EventsApplied int
	EventsSkipped int

	// WeightDrift is the largest divergence observed at the end of the
	// run between a group's sampling weight and its actual membership
	// size — zero when the live-weight invariant holds (regression
	// guard for the stale-weight bug).
	WeightDrift int
	// Workers is the number of apply workers used.
	Workers int
}

// RoleFor deterministically assigns one of the three roles (§5.1.3a:
// "we randomly assign one of these three types to each member").
func RoleFor(rng *rand.Rand) controller.Role {
	switch rng.Intn(3) {
	case 0:
		return controller.RoleSender
	case 1:
		return controller.RoleReceiver
	default:
		return controller.RoleBoth
	}
}

// Setup creates all groups in the controller with randomized roles.
// Groups whose receiver set would be empty get one forced receiver so
// trees exist. Role assignment is serial (one rng); the installs go
// through the controller's parallel bulk pipeline, whose result is
// byte-identical to serial CreateGroup calls in group order.
func Setup(ctrl *controller.Controller, dep *placement.Deployment, groups []groupgen.Group, rng *rand.Rand) error {
	specs := make([]controller.BatchSpec, len(groups))
	for gi := range groups {
		g := &groups[gi]
		members := make(map[topology.HostID]controller.Role, len(g.Hosts))
		hasReceiver := false
		for _, h := range g.Hosts {
			r := RoleFor(rng)
			members[h] = r
			if r.CanReceive() {
				hasReceiver = true
			}
		}
		if !hasReceiver {
			members[g.Hosts[0]] = controller.RoleBoth
		}
		specs[gi] = controller.BatchSpec{Key: key(g), Members: members}
	}
	_, err := ctrl.InstallBatch(specs, controller.BatchOptions{})
	return err
}

func key(g *groupgen.Group) controller.GroupKey {
	return controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID}
}

// event is one generated membership change; role carries the joining
// role or the leaving member's full role.
type event struct {
	gi   int
	host topology.HostID
	role controller.Role
	join bool
}

// shadowGroup mirrors one group's membership during event generation,
// so generation (and the Li baseline) never reads live controller
// state and the apply phase can run concurrently.
type shadowGroup struct {
	roles map[topology.HostID]controller.Role
	hosts []topology.HostID // members, ascending (deterministic sampling)
}

func newShadowGroup(st *controller.GroupState) *shadowGroup {
	s := &shadowGroup{roles: make(map[topology.HostID]controller.Role, len(st.Members))}
	for h, r := range st.Members {
		s.roles[h] = r
		s.hosts = append(s.hosts, h)
	}
	sort.Slice(s.hosts, func(i, j int) bool { return s.hosts[i] < s.hosts[j] })
	return s
}

func (s *shadowGroup) add(h topology.HostID, r controller.Role) {
	s.roles[h] = r
	i := sort.Search(len(s.hosts), func(i int) bool { return s.hosts[i] >= h })
	s.hosts = append(s.hosts, 0)
	copy(s.hosts[i+1:], s.hosts[i:])
	s.hosts[i] = h
}

func (s *shadowGroup) remove(h topology.HostID) {
	delete(s.roles, h)
	i := sort.Search(len(s.hosts), func(i int) bool { return s.hosts[i] >= h })
	s.hosts = append(s.hosts[:i], s.hosts[i+1:]...)
}

func (s *shadowGroup) receivers() []topology.HostID {
	out := make([]topology.HostID, 0, len(s.hosts))
	for _, h := range s.hosts {
		if s.roles[h].CanReceive() {
			out = append(out, h)
		}
	}
	return out
}

// Run generates cfg.Events join/leave events against the controller
// (already Setup) and measures update rates. The Li et al. baseline is
// charged from the same event stream.
//
// The run is two-phase: events are generated serially against shadow
// membership state (with sampling weights tracked live in a Fenwick
// tree, so per-group event frequency stays proportional to the
// *current* group size), then applied to the controller — serially, or
// across cfg.Workers goroutines partitioned by group.
func Run(ctrl *controller.Controller, dep *placement.Deployment, groups []groupgen.Group, cfg Config) (*Result, error) {
	if cfg.Events <= 0 || cfg.EventsPerSecond <= 0 {
		return nil, fmt.Errorf("churn: Events and EventsPerSecond must be positive")
	}
	topo := ctrl.Topology()
	rng := rand.New(rand.NewSource(cfg.Seed))
	li := baselines.NewLiState(topo)
	ctrl.ResetStats()

	// Shadow membership + live size-proportional sampling weights
	// (largest groups churn most — and keep churning most as they grow).
	shadows := make([]*shadowGroup, len(groups))
	weights := make([]int, len(groups))
	for i := range groups {
		st := ctrl.Group(key(&groups[i]))
		if st == nil {
			return nil, fmt.Errorf("churn: group %d missing from controller", groups[i].ID)
		}
		shadows[i] = newShadowGroup(st)
		weights[i] = len(shadows[i].hosts)
	}
	fw := newFenwick(weights)

	workers := controller.ResolveWorkers(cfg.Workers)
	res := &Result{
		Duration: float64(cfg.Events) / cfg.EventsPerSecond,
		Workers:  workers,
	}
	if cfg.Metrics != nil {
		cfg.Metrics.rate.Set(cfg.EventsPerSecond)
	}

	// Phase 1: serial generation. Identical for every worker count.
	events := make([]event, 0, cfg.Events)
	for e := 0; e < cfg.Events; e++ {
		gi := fw.find(rng.Intn(fw.total()))
		g := &groups[gi]
		sh := shadows[gi]
		join := rng.Intn(2) == 0
		if len(sh.hosts) <= 1 {
			join = true
		}
		if join {
			host, ok := pickNonMember(rng, dep, g, sh)
			if !ok {
				res.EventsSkipped++
				cfg.Metrics.onSkipped()
				continue
			}
			role := RoleFor(rng)
			sh.add(host, role)
			fw.add(gi, 1)
			events = append(events, event{gi: gi, host: host, role: role, join: true})
		} else {
			host := sh.hosts[rng.Intn(len(sh.hosts))]
			role := sh.roles[host]
			sh.remove(host)
			fw.add(gi, -1)
			events = append(events, event{gi: gi, host: host, role: role})
		}
		res.EventsApplied++
		li.ApplyChurnEvent(g.ID, sh.receivers())
	}
	for i := range shadows {
		if d := fw.weight(i) - len(shadows[i].hosts); d > res.WeightDrift {
			res.WeightDrift = d
		} else if -d > res.WeightDrift {
			res.WeightDrift = -d
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.drift.Set(float64(res.WeightDrift))
	}

	// Phase 2: apply. Partitioning by group preserves per-group event
	// order, so each group's membership trajectory — and with
	// uncontended s-rule capacity, its encodings and update charges —
	// matches the serial run.
	if err := applyEvents(ctrl, groups, events, workers, cfg.Metrics); err != nil {
		return nil, err
	}

	// Convert counts to per-switch rates over all switches of each
	// class (absent switches contribute zero).
	stats := ctrl.Stats()
	for h := 0; h < topo.NumHosts(); h++ {
		res.Hypervisor.Add(float64(stats.Hypervisor[topology.HostID(h)]) / res.Duration)
	}
	for l := 0; l < topo.NumLeaves(); l++ {
		res.Leaf.Add(float64(stats.Leaf[topology.LeafID(l)]) / res.Duration)
	}
	for s := 0; s < topo.NumSpines(); s++ {
		res.Spine.Add(float64(stats.Spine[topology.SpineID(s)]) / res.Duration)
	}
	res.CoreRate = float64(stats.Core) / res.Duration
	for _, v := range li.LeafUpdates {
		res.LiLeaf.Add(float64(v) / res.Duration)
	}
	for _, v := range li.SpineUpdates {
		res.LiSpine.Add(float64(v) / res.Duration)
	}
	for _, v := range li.CoreUpdates {
		res.LiCore.Add(float64(v) / res.Duration)
	}
	return res, nil
}

// applyEvents replays the generated events against the controller.
// With one worker the events run in generation order; with more, each
// worker owns the groups with gi % workers == its index and applies
// their events in order.
func applyEvents(ctrl *controller.Controller, groups []groupgen.Group, events []event, workers int, m *Metrics) error {
	apply := func(ev event) error {
		k := key(&groups[ev.gi])
		var err error
		if ev.join {
			err = ctrl.Join(k, ev.host, ev.role)
		} else {
			err = ctrl.Leave(k, ev.host, ev.role)
		}
		if err == nil {
			m.onApplied()
		}
		return err
	}
	if workers <= 1 {
		for i, ev := range events {
			if err := apply(ev); err != nil {
				return fmt.Errorf("churn: event %d: %w", i, err)
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, ev := range events {
				if ev.gi%workers != w {
					continue
				}
				if err := apply(ev); err != nil {
					errs[w] = fmt.Errorf("churn: event %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func pickNonMember(rng *rand.Rand, dep *placement.Deployment, g *groupgen.Group, sh *shadowGroup) (topology.HostID, bool) {
	tenant := &dep.Tenants[g.Tenant]
	for try := 0; try < 16; try++ {
		vm := tenant.VMs[rng.Intn(len(tenant.VMs))]
		if _, member := sh.roles[vm.Host]; !member {
			return vm.Host, true
		}
	}
	return 0, false
}

// Table2 renders the churn result as the paper's Table 2.
func (r *Result) Table2() *metrics.Table {
	t := metrics.NewTable("Table 2: avg (max) switch updates per second",
		"switch", "Elmo avg", "Elmo max", "Li et al. avg", "Li et al. max")
	t.AddRow("hypervisor", r.Hypervisor.Mean(), r.Hypervisor.Max(), "NE", "NE")
	t.AddRow("leaf", r.Leaf.Mean(), r.Leaf.Max(), r.LiLeaf.Mean(), r.LiLeaf.Max())
	t.AddRow("spine", r.Spine.Mean(), r.Spine.Max(), r.LiSpine.Mean(), r.LiSpine.Max())
	t.AddRow("core", r.CoreRate, r.CoreRate, r.LiCore.Mean(), r.LiCore.Max())
	return t
}

// FailureResult summarizes the §5.1.3b failure experiment.
type FailureResult struct {
	// SpineImpactedFrac / CoreImpactedFrac are the fractions of groups
	// impacted by a single spine / core failure (paper: up to 12.3%
	// and 25.8%).
	SpineImpactedFrac float64
	CoreImpactedFrac  float64
	// SpineHypervisorUpdates / CoreHypervisorUpdates count hypervisor
	// updates per failure event (paper: avg 176.9 / 674.9 at 1M
	// groups).
	SpineHypervisorUpdates int
	CoreHypervisorUpdates  int
}

// RunFailures fails one spine and one core (chosen by seed), measuring
// group impact and hypervisor update counts, repairing the fabric
// between trials.
func RunFailures(ctrl *controller.Controller, seed int64) *FailureResult {
	topo := ctrl.Topology()
	rng := rand.New(rand.NewSource(seed))
	res := &FailureResult{}
	total := ctrl.NumGroups()
	if total == 0 {
		return res
	}

	spine := topology.SpineID(rng.Intn(topo.NumSpines()))
	ctrl.ResetStats()
	impacted := ctrl.FailSpine(spine)
	res.SpineImpactedFrac = float64(impacted) / float64(total)
	res.SpineHypervisorUpdates = totalHV(ctrl)
	ctrl.RepairSpine(spine)

	core := topology.CoreID(rng.Intn(topo.NumCores()))
	ctrl.ResetStats()
	impacted = ctrl.FailCore(core)
	res.CoreImpactedFrac = float64(impacted) / float64(total)
	res.CoreHypervisorUpdates = totalHV(ctrl)
	ctrl.RepairCore(core)
	ctrl.ResetStats()
	return res
}

func totalHV(ctrl *controller.Controller) int {
	n := 0
	for _, v := range ctrl.Stats().Hypervisor {
		n += v
	}
	return n
}
