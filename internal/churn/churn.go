// Package churn implements the control-plane scalability experiments of
// paper §5.1.3: group-membership dynamics (Table 2) and network
// failures.
//
// Members are randomly assigned sender / receiver / both roles.
// Join/leave events are generated with per-group frequency proportional
// to group size; a join adds a random non-member VM of the owning
// tenant, a leave removes a random member. The controller's update
// counters then yield per-switch update rates, compared against the Li
// et al. baseline driven by the same event stream.
package churn

import (
	"fmt"
	"math/rand"
	"sort"

	"elmo/internal/baselines"
	"elmo/internal/controller"
	"elmo/internal/groupgen"
	"elmo/internal/metrics"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// Config parameterizes a churn run.
type Config struct {
	// Events is the total number of join/leave events (paper: 1M over
	// 1M groups; scale both together).
	Events int
	// EventsPerSecond converts counts to rates (paper: 1,000).
	EventsPerSecond float64
	// Seed drives role assignment and event sampling.
	Seed int64
}

// Result holds per-switch update rates (updates per second).
type Result struct {
	Duration float64 // seconds of simulated churn

	Hypervisor metrics.Samples
	Leaf       metrics.Samples
	Spine      metrics.Samples
	CoreRate   float64 // always 0 for Elmo; kept to document the claim

	LiLeaf  metrics.Samples
	LiSpine metrics.Samples
	LiCore  metrics.Samples

	EventsApplied int
	EventsSkipped int
}

// RoleFor deterministically assigns one of the three roles (§5.1.3a:
// "we randomly assign one of these three types to each member").
func RoleFor(rng *rand.Rand) controller.Role {
	switch rng.Intn(3) {
	case 0:
		return controller.RoleSender
	case 1:
		return controller.RoleReceiver
	default:
		return controller.RoleBoth
	}
}

// Setup creates all groups in the controller with randomized roles,
// returning the per-group member bookkeeping the event loop uses.
// Groups whose receiver set would be empty get one forced receiver so
// trees exist.
func Setup(ctrl *controller.Controller, dep *placement.Deployment, groups []groupgen.Group, rng *rand.Rand) error {
	for gi := range groups {
		g := &groups[gi]
		members := make(map[topology.HostID]controller.Role, len(g.Hosts))
		hasReceiver := false
		for _, h := range g.Hosts {
			r := RoleFor(rng)
			members[h] = r
			if r.CanReceive() {
				hasReceiver = true
			}
		}
		if !hasReceiver {
			members[g.Hosts[0]] = controller.RoleBoth
		}
		if _, err := ctrl.CreateGroup(key(g), members); err != nil {
			return err
		}
	}
	return nil
}

func key(g *groupgen.Group) controller.GroupKey {
	return controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID}
}

// Run generates cfg.Events join/leave events against the controller
// (already Setup) and measures update rates. The Li et al. baseline is
// charged from the same event stream.
func Run(ctrl *controller.Controller, dep *placement.Deployment, groups []groupgen.Group, cfg Config) (*Result, error) {
	if cfg.Events <= 0 || cfg.EventsPerSecond <= 0 {
		return nil, fmt.Errorf("churn: Events and EventsPerSecond must be positive")
	}
	topo := ctrl.Topology()
	rng := rand.New(rand.NewSource(cfg.Seed))
	li := baselines.NewLiState(topo)
	ctrl.ResetStats()

	// Weighted group sampling by size (largest groups churn most).
	cum := make([]int, len(groups))
	total := 0
	for i := range groups {
		total += groups[i].Size()
		cum[i] = total
	}
	pick := func() *groupgen.Group {
		x := rng.Intn(total)
		i := sort.SearchInts(cum, x+1)
		return &groups[i]
	}

	res := &Result{Duration: float64(cfg.Events) / cfg.EventsPerSecond}
	for e := 0; e < cfg.Events; e++ {
		g := pick()
		st := ctrl.Group(key(g))
		if st == nil {
			return nil, fmt.Errorf("churn: group %d missing from controller", g.ID)
		}
		join := rng.Intn(2) == 0
		if len(st.Members) <= 1 {
			join = true
		}
		var err error
		if join {
			host, ok := pickNonMember(rng, dep, g, st)
			if !ok {
				res.EventsSkipped++
				continue
			}
			err = ctrl.Join(key(g), host, RoleFor(rng))
		} else {
			host := pickMember(rng, st)
			err = ctrl.Leave(key(g), host, st.Members[host])
		}
		if err != nil {
			return nil, fmt.Errorf("churn: event %d: %w", e, err)
		}
		res.EventsApplied++
		li.ApplyChurnEvent(g.ID, st.Receivers())
	}

	// Convert counts to per-switch rates over all switches of each
	// class (absent switches contribute zero).
	stats := ctrl.Stats()
	for h := 0; h < topo.NumHosts(); h++ {
		res.Hypervisor.Add(float64(stats.Hypervisor[topology.HostID(h)]) / res.Duration)
	}
	for l := 0; l < topo.NumLeaves(); l++ {
		res.Leaf.Add(float64(stats.Leaf[topology.LeafID(l)]) / res.Duration)
	}
	for s := 0; s < topo.NumSpines(); s++ {
		res.Spine.Add(float64(stats.Spine[topology.SpineID(s)]) / res.Duration)
	}
	res.CoreRate = float64(stats.Core) / res.Duration
	for _, v := range li.LeafUpdates {
		res.LiLeaf.Add(float64(v) / res.Duration)
	}
	for _, v := range li.SpineUpdates {
		res.LiSpine.Add(float64(v) / res.Duration)
	}
	for _, v := range li.CoreUpdates {
		res.LiCore.Add(float64(v) / res.Duration)
	}
	return res, nil
}

func pickNonMember(rng *rand.Rand, dep *placement.Deployment, g *groupgen.Group, st *controller.GroupState) (topology.HostID, bool) {
	tenant := &dep.Tenants[g.Tenant]
	for try := 0; try < 16; try++ {
		vm := tenant.VMs[rng.Intn(len(tenant.VMs))]
		if _, member := st.Members[vm.Host]; !member {
			return vm.Host, true
		}
	}
	return 0, false
}

func pickMember(rng *rand.Rand, st *controller.GroupState) topology.HostID {
	i := rng.Intn(len(st.Members))
	for h := range st.Members {
		if i == 0 {
			return h
		}
		i--
	}
	panic("unreachable")
}

// Table2 renders the churn result as the paper's Table 2.
func (r *Result) Table2() *metrics.Table {
	t := metrics.NewTable("Table 2: avg (max) switch updates per second",
		"switch", "Elmo avg", "Elmo max", "Li et al. avg", "Li et al. max")
	t.AddRow("hypervisor", r.Hypervisor.Mean(), r.Hypervisor.Max(), "NE", "NE")
	t.AddRow("leaf", r.Leaf.Mean(), r.Leaf.Max(), r.LiLeaf.Mean(), r.LiLeaf.Max())
	t.AddRow("spine", r.Spine.Mean(), r.Spine.Max(), r.LiSpine.Mean(), r.LiSpine.Max())
	t.AddRow("core", r.CoreRate, r.CoreRate, r.LiCore.Mean(), r.LiCore.Max())
	return t
}

// FailureResult summarizes the §5.1.3b failure experiment.
type FailureResult struct {
	// SpineImpactedFrac / CoreImpactedFrac are the fractions of groups
	// impacted by a single spine / core failure (paper: up to 12.3%
	// and 25.8%).
	SpineImpactedFrac float64
	CoreImpactedFrac  float64
	// SpineHypervisorUpdates / CoreHypervisorUpdates count hypervisor
	// updates per failure event (paper: avg 176.9 / 674.9 at 1M
	// groups).
	SpineHypervisorUpdates int
	CoreHypervisorUpdates  int
}

// RunFailures fails one spine and one core (chosen by seed), measuring
// group impact and hypervisor update counts, repairing the fabric
// between trials.
func RunFailures(ctrl *controller.Controller, seed int64) *FailureResult {
	topo := ctrl.Topology()
	rng := rand.New(rand.NewSource(seed))
	res := &FailureResult{}
	total := ctrl.NumGroups()
	if total == 0 {
		return res
	}

	spine := topology.SpineID(rng.Intn(topo.NumSpines()))
	ctrl.ResetStats()
	impacted := ctrl.FailSpine(spine)
	res.SpineImpactedFrac = float64(impacted) / float64(total)
	res.SpineHypervisorUpdates = totalHV(ctrl)
	ctrl.RepairSpine(spine)

	core := topology.CoreID(rng.Intn(topo.NumCores()))
	ctrl.ResetStats()
	impacted = ctrl.FailCore(core)
	res.CoreImpactedFrac = float64(impacted) / float64(total)
	res.CoreHypervisorUpdates = totalHV(ctrl)
	ctrl.RepairCore(core)
	ctrl.ResetStats()
	return res
}

func totalHV(ctrl *controller.Controller) int {
	n := 0
	for _, v := range ctrl.Stats().Hypervisor {
		n += v
	}
	return n
}
