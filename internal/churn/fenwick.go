package churn

// fenwick is a binary indexed tree over per-group weights, giving the
// event generator O(log n) size-proportional sampling with live
// updates — the fix for the stale-weight bug where the cumulative
// table was built once from initial group sizes and never tracked
// membership churn.
type fenwick struct {
	tree []int // 1-based; tree[i] covers (i - lowbit(i), i]
	n    int
}

// newFenwick builds a tree over the initial weights in O(n).
func newFenwick(weights []int) *fenwick {
	f := &fenwick{tree: make([]int, len(weights)+1), n: len(weights)}
	for i, w := range weights {
		f.tree[i+1] += w
		if p := (i + 1) + ((i + 1) & -(i + 1)); p <= f.n {
			f.tree[p] += f.tree[i+1]
		}
	}
	return f
}

// add adjusts weight i by delta.
func (f *fenwick) add(i, delta int) {
	for j := i + 1; j <= f.n; j += j & -j {
		f.tree[j] += delta
	}
}

// total returns the sum of all weights.
func (f *fenwick) total() int {
	return f.prefix(f.n)
}

// prefix returns the sum of weights [0, i).
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// weight returns the current weight of index i.
func (f *fenwick) weight(i int) int {
	return f.prefix(i+1) - f.prefix(i)
}

// find returns the smallest index i whose prefix sum through i exceeds
// x (i.e. samples index i when x is uniform in [0, total)). Requires
// 0 <= x < total.
func (f *fenwick) find(x int) int {
	i := 0
	// Highest power of two <= n.
	step := 1
	for step<<1 <= f.n {
		step <<= 1
	}
	for ; step > 0; step >>= 1 {
		if next := i + step; next <= f.n && f.tree[next] <= x {
			i = next
			x -= f.tree[next]
		}
	}
	return i
}
