package churn

import "elmo/internal/telemetry"

// Metrics publishes churn progress to a telemetry registry so a
// /metrics scrape during a long soak sees the event stream move in real
// time (the Result totals only exist after Run returns). Attach via
// Config.Metrics; nil keeps the run telemetry-free.
type Metrics struct {
	applied *telemetry.Counter
	skipped *telemetry.Counter
	rate    *telemetry.Gauge
	drift   *telemetry.Gauge
}

// NewMetrics registers the churn metric families in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		applied: reg.Counter("elmo_churn_events_applied_total",
			"Join/leave events applied to the controller."),
		skipped: reg.Counter("elmo_churn_events_skipped_total",
			"Generated events skipped (no eligible non-member VM found)."),
		rate: reg.Gauge("elmo_churn_events_per_second",
			"Configured churn event rate (events/sec of simulated time)."),
		drift: reg.Gauge("elmo_churn_weight_drift",
			"Largest divergence between a group's sampling weight and its live size."),
	}
}

func (m *Metrics) onApplied() {
	if m != nil {
		m.applied.Inc()
	}
}

func (m *Metrics) onSkipped() {
	if m != nil {
		m.skipped.Inc()
	}
}
