package churn

import (
	"math/rand"
	"reflect"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/topology"
)

// churnFixture builds a controller with placed tenants and groups.
func churnFixture(t *testing.T, nGroups int) (*controller.Controller, *placement.Deployment, []groupgen.Group) {
	t.Helper()
	topo := topology.MustNew(topology.Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 8, HostsPerLeaf: 8, CoresPerPlane: 2})
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 40, VMsPerHost: 20, MinVMs: 6, MaxVMs: 28, MeanVMs: 14, P: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: nGroups, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(topo, controller.Config{
		MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
		KMaxSpine: 2, KMaxLeaf: 2, R: 0, SRuleCapacity: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Setup(ctrl, dep, groups, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	return ctrl, dep, groups
}

func TestChurnRun(t *testing.T) {
	ctrl, dep, groups := churnFixture(t, 150)
	res, err := Run(ctrl, dep, groups, Config{Events: 600, EventsPerSecond: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsApplied+res.EventsSkipped != 600 {
		t.Fatalf("events: applied %d skipped %d", res.EventsApplied, res.EventsSkipped)
	}
	if res.EventsApplied == 0 {
		t.Fatal("no events applied")
	}
	// Table 2 structure: hypervisors take the most updates; the core
	// takes none under Elmo but plenty under Li et al.
	if res.CoreRate != 0 {
		t.Fatalf("Elmo core rate = %f, must be 0", res.CoreRate)
	}
	if res.Hypervisor.Mean() <= res.Leaf.Mean() {
		t.Fatalf("hypervisor rate %.3f should exceed leaf rate %.3f",
			res.Hypervisor.Mean(), res.Leaf.Mean())
	}
	if res.LiCore.Mean() <= 0 {
		t.Fatal("Li et al. core updates missing")
	}
	// Elmo's network-switch update load is below Li et al.'s.
	if res.Leaf.Mean() >= res.LiLeaf.Mean() {
		t.Fatalf("Elmo leaf %.3f should be below Li %.3f", res.Leaf.Mean(), res.LiLeaf.Mean())
	}
	if res.Spine.Mean() >= res.LiSpine.Mean() {
		t.Fatalf("Elmo spine %.3f should be below Li %.3f", res.Spine.Mean(), res.LiSpine.Mean())
	}
	out := res.Table2().String()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}

func TestChurnRejectsBadConfig(t *testing.T) {
	ctrl, dep, groups := churnFixture(t, 20)
	if _, err := Run(ctrl, dep, groups, Config{Events: 0, EventsPerSecond: 1}); err == nil {
		t.Fatal("zero events accepted")
	}
	if _, err := Run(ctrl, dep, groups, Config{Events: 1, EventsPerSecond: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestChurnMembershipStaysConsistent(t *testing.T) {
	ctrl, dep, groups := churnFixture(t, 80)
	if _, err := Run(ctrl, dep, groups, Config{Events: 400, EventsPerSecond: 100, Seed: 10}); err != nil {
		t.Fatal(err)
	}
	// Every group still exists, has at least one member, and all
	// members belong to the owning tenant.
	for gi := range groups {
		g := &groups[gi]
		st := ctrl.Group(controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID})
		if st == nil {
			t.Fatalf("group %d lost", g.ID)
		}
		if len(st.Members) == 0 {
			t.Fatalf("group %d empty", g.ID)
		}
		tenantHosts := make(map[topology.HostID]bool)
		for _, vm := range dep.Tenants[g.Tenant].VMs {
			tenantHosts[vm.Host] = true
		}
		for h := range st.Members {
			if !tenantHosts[h] {
				t.Fatalf("group %d member %d not in tenant", g.ID, h)
			}
		}
	}
}

func TestRunFailures(t *testing.T) {
	ctrl, _, _ := churnFixture(t, 120)
	res := RunFailures(ctrl, 42)
	if res.SpineImpactedFrac < 0 || res.SpineImpactedFrac > 1 {
		t.Fatalf("spine impact = %f", res.SpineImpactedFrac)
	}
	// Core failures impact cross-pod groups, typically more than a
	// single pod's spine failure (paper: 12.3% vs 25.8%).
	if res.CoreImpactedFrac <= 0 {
		t.Fatal("core failure impacted no groups")
	}
	if res.SpineHypervisorUpdates < 0 || res.CoreHypervisorUpdates <= 0 {
		t.Fatalf("hypervisor updates: spine=%d core=%d",
			res.SpineHypervisorUpdates, res.CoreHypervisorUpdates)
	}
	// Failure handling must leave the failure set clean (repaired).
	if !ctrl.Failures().Empty() {
		t.Fatal("failures not repaired after experiment")
	}
}

func TestRoleForCoversAllRoles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[controller.Role]bool)
	for i := 0; i < 100; i++ {
		seen[RoleFor(rng)] = true
	}
	if !seen[controller.RoleSender] || !seen[controller.RoleReceiver] || !seen[controller.RoleBoth] {
		t.Fatalf("roles seen: %v", seen)
	}
}

func TestFenwick(t *testing.T) {
	weights := []int{3, 0, 5, 1, 2, 7, 4}
	f := newFenwick(weights)
	if got := f.total(); got != 22 {
		t.Fatalf("total = %d, want 22", got)
	}
	for i, w := range weights {
		if got := f.weight(i); got != w {
			t.Fatalf("weight(%d) = %d, want %d", i, got, w)
		}
	}
	// find maps every point in [0, total) to the index owning that
	// slice of the cumulative distribution.
	wantIdx := func(x int) int {
		cum := 0
		for i, w := range weights {
			cum += w
			if x < cum {
				return i
			}
		}
		t.Fatalf("x=%d out of range", x)
		return -1
	}
	for x := 0; x < 22; x++ {
		if got := f.find(x); got != wantIdx(x) {
			t.Fatalf("find(%d) = %d, want %d", x, got, wantIdx(x))
		}
	}
	// Live updates shift the distribution.
	f.add(1, 6)
	f.add(5, -7)
	if f.weight(1) != 6 || f.weight(5) != 0 || f.total() != 21 {
		t.Fatalf("after updates: w1=%d w5=%d total=%d", f.weight(1), f.weight(5), f.total())
	}
	weights[1], weights[5] = 6, 0
	for x := 0; x < 21; x++ {
		if got := f.find(x); got != wantIdx(x) {
			t.Fatalf("after update find(%d) = %d, want %d", x, got, wantIdx(x))
		}
	}
}

// TestChurnWeightsTrackSize is the regression test for the
// stale-weight bug: after a long churn run, every group's sampling
// weight must equal its actual membership size.
func TestChurnWeightsTrackSize(t *testing.T) {
	ctrl, dep, groups := churnFixture(t, 100)
	res, err := Run(ctrl, dep, groups, Config{Events: 2000, EventsPerSecond: 100, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightDrift != 0 {
		t.Fatalf("sampling weights drifted %d from membership sizes", res.WeightDrift)
	}
	// The shadow replay driving the weights must agree with the
	// controller's actual final membership.
	for gi := range groups {
		g := &groups[gi]
		st := ctrl.Group(controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID})
		if st == nil {
			t.Fatalf("group %d lost", g.ID)
		}
	}
}

// TestChurnConcurrentMatchesSerial runs the same churn twice — serial
// apply and 4-worker apply — and asserts identical controller end
// state (memberships, encodings, update stats) plus identical
// generated-stream results (Li baseline, applied/skipped counts).
func TestChurnConcurrentMatchesSerial(t *testing.T) {
	run := func(workers int) (*controller.Controller, *Result, []groupgen.Group) {
		ctrl, dep, groups := churnFixture(t, 100)
		res, err := Run(ctrl, dep, groups, Config{Events: 1500, EventsPerSecond: 100, Seed: 23, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, res, groups
	}
	sc, sr, groups := run(1)
	cc, cr, _ := run(4)

	if sr.EventsApplied != cr.EventsApplied || sr.EventsSkipped != cr.EventsSkipped {
		t.Fatalf("event counts differ: serial %d/%d concurrent %d/%d",
			sr.EventsApplied, sr.EventsSkipped, cr.EventsApplied, cr.EventsSkipped)
	}
	if sr.LiLeaf.Mean() != cr.LiLeaf.Mean() || sr.LiSpine.Mean() != cr.LiSpine.Mean() || sr.LiCore.Mean() != cr.LiCore.Mean() {
		t.Fatal("Li baseline differs between serial and concurrent runs")
	}
	for gi := range groups {
		g := &groups[gi]
		k := controller.GroupKey{Tenant: uint32(g.Tenant), Group: g.ID}
		ss, cs := sc.Group(k), cc.Group(k)
		if ss == nil || cs == nil {
			t.Fatalf("group %d missing", g.ID)
		}
		if !reflect.DeepEqual(ss.Members, cs.Members) {
			t.Fatalf("group %d membership differs", g.ID)
		}
		if !reflect.DeepEqual(ss.Enc, cs.Enc) {
			t.Fatalf("group %d encoding differs", g.ID)
		}
	}
	topo := sc.Topology()
	for l := 0; l < topo.NumLeaves(); l++ {
		if sc.LeafSRuleCount(topology.LeafID(l)) != cc.LeafSRuleCount(topology.LeafID(l)) {
			t.Fatalf("leaf %d occupancy differs", l)
		}
	}
	for s := 0; s < topo.NumSpines(); s++ {
		if sc.SpineSRuleCount(topology.SpineID(s)) != cc.SpineSRuleCount(topology.SpineID(s)) {
			t.Fatalf("spine %d occupancy differs", s)
		}
	}
	if !reflect.DeepEqual(sc.Stats(), cc.Stats()) {
		t.Fatal("update stats differ between serial and concurrent runs")
	}
	if sr.Hypervisor.Mean() != cr.Hypervisor.Mean() || sr.Leaf.Mean() != cr.Leaf.Mean() || sr.Spine.Mean() != cr.Spine.Mean() {
		t.Fatal("rate summaries differ between serial and concurrent runs")
	}
}
