package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"elmo/internal/bitmap"
)

// equalAssignments compares two assignments field by field, treating
// nil and empty slices as equal only when both are empty, and bitmaps
// by content.
func equalAssignments(a, b Assignment) error {
	if a.Redundancy != b.Redundancy {
		return fmt.Errorf("redundancy %d != %d", a.Redundancy, b.Redundancy)
	}
	if len(a.PRules) != len(b.PRules) {
		return fmt.Errorf("p-rule count %d != %d", len(a.PRules), len(b.PRules))
	}
	for i := range a.PRules {
		ra, rb := a.PRules[i], b.PRules[i]
		if len(ra.Switches) != len(rb.Switches) {
			return fmt.Errorf("rule %d switch count %d != %d", i, len(ra.Switches), len(rb.Switches))
		}
		for j := range ra.Switches {
			if ra.Switches[j] != rb.Switches[j] {
				return fmt.Errorf("rule %d switches %v != %v", i, ra.Switches, rb.Switches)
			}
		}
		if !ra.Bitmap.Equal(rb.Bitmap) {
			return fmt.Errorf("rule %d bitmap %s != %s", i, ra.Bitmap, rb.Bitmap)
		}
	}
	if len(a.SRules) != len(b.SRules) {
		return fmt.Errorf("s-rule count %d != %d", len(a.SRules), len(b.SRules))
	}
	for sw, bm := range a.SRules {
		other, ok := b.SRules[sw]
		if !ok || !bm.Equal(other) {
			return fmt.Errorf("s-rule for switch %d differs", sw)
		}
	}
	if (a.Default == nil) != (b.Default == nil) {
		return fmt.Errorf("default presence %t != %t", a.Default != nil, b.Default != nil)
	}
	if a.Default != nil && !a.Default.Equal(*b.Default) {
		return fmt.Errorf("default bitmap %s != %s", a.Default, b.Default)
	}
	if len(a.DefaultSwitches) != len(b.DefaultSwitches) {
		return fmt.Errorf("default switch count %d != %d", len(a.DefaultSwitches), len(b.DefaultSwitches))
	}
	for i := range a.DefaultSwitches {
		if a.DefaultSwitches[i] != b.DefaultSwitches[i] {
			return fmt.Errorf("default switches %v != %v", a.DefaultSwitches, b.DefaultSwitches)
		}
	}
	return nil
}

// capEvery returns a capacity callback admitting switches whose ID is
// divisible by mod (mod 0 = nil callback, mod 1 = all switches).
func capEvery(mod int) func(uint16) bool {
	if mod == 0 {
		return nil
	}
	return func(sw uint16) bool { return int(sw)%mod == 0 }
}

// TestGoldenEquivalence is the golden proof that the scratch rewrite
// is byte-identical to the frozen pre-optimization implementation:
// AssignInto (with a warm, reused scratch) and Assign must match
// ReferenceAssign on randomized member sets across widths, sizes, and
// the constraint corners (R=0, KMax=1, HMax=0, nil HasSRuleCapacity,
// partial capacity, duplicate bitmaps forcing class splits).
func TestGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	var s Scratch // deliberately reused across all cases
	widths := []int{1, 2, 8, 16, 48, 64, 65, 130}
	for trial := 0; trial < 400; trial++ {
		width := widths[rng.Intn(len(widths))]
		n := rng.Intn(40) + 1
		// Duplicate bitmaps are likely at small widths, exercising
		// class collapse and KMax splitting.
		ms := make([]Member, n)
		for i := range ms {
			b := bitmap.New(width)
			k := rng.Intn(min(width, 8)) + 1
			for j := 0; j < k; j++ {
				b.Set(rng.Intn(width))
			}
			ms[i] = Member{Switch: uint16(i), Ports: b}
		}
		c := Constraints{
			R:                rng.Intn(10),
			HMax:             rng.Intn(12),
			KMax:             rng.Intn(6), // 0 = unlimited
			HasSRuleCapacity: capEvery(rng.Intn(4)),
		}
		want := ReferenceAssign(ms, c)
		got := AssignInto(ms, c, &s)
		if err := equalAssignments(got, want); err != nil {
			t.Fatalf("trial %d (width=%d n=%d %+v): AssignInto diverged: %v",
				trial, width, n, c, err)
		}
		owned := Assign(ms, c)
		if err := equalAssignments(owned, want); err != nil {
			t.Fatalf("trial %d: Assign diverged: %v", trial, err)
		}
	}
}

// TestGoldenEquivalenceCorners pins the explicit constraint corners the
// issue calls out: R=0, KMax=1, HMax=0, nil HasSRuleCapacity.
func TestGoldenEquivalenceCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	var s Scratch
	corners := []Constraints{
		{R: 0, HMax: 5, KMax: 2},
		{R: 0, HMax: 5, KMax: 2, HasSRuleCapacity: capEvery(1)},
		{R: 4, HMax: 8, KMax: 1}, // KMax=1: no sharing possible
		{R: 4, HMax: 0, KMax: 4}, // HMax=0: everything spills
		{R: 4, HMax: 0, KMax: 4, HasSRuleCapacity: capEvery(2)},
		{R: 100, HMax: 1, KMax: 0}, // one giant rule, unlimited K
	}
	for ci, c := range corners {
		for trial := 0; trial < 50; trial++ {
			ms := make([]Member, rng.Intn(25)+1)
			for i := range ms {
				b := bitmap.New(32)
				for j := 0; j < rng.Intn(5)+1; j++ {
					b.Set(rng.Intn(32))
				}
				ms[i] = Member{Switch: uint16(i), Ports: b}
			}
			want := ReferenceAssign(ms, c)
			got := AssignInto(ms, c, &s)
			if err := equalAssignments(got, want); err != nil {
				t.Fatalf("corner %d trial %d: %v", ci, trial, err)
			}
		}
	}
}

// FuzzAssignEquivalence drives the same equivalence property through
// the fuzzer: for any seed-derived member set and constraints, the
// scratch implementation must match the frozen reference.
func FuzzAssignEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1), uint8(0))
	f.Add(int64(2), uint8(3), uint8(5), uint8(2), uint8(1))
	f.Add(int64(99), uint8(7), uint8(0), uint8(0), uint8(2)) // HMax=0
	f.Add(int64(7), uint8(0), uint8(9), uint8(1), uint8(3))  // R=0, KMax=1
	f.Fuzz(func(t *testing.T, seed int64, rRaw, hRaw, kRaw, capRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		width := rng.Intn(100) + 1
		n := rng.Intn(40) + 1
		ms := make([]Member, n)
		for i := range ms {
			b := bitmap.New(width)
			for j := 0; j < rng.Intn(min(width, 9))+1; j++ {
				b.Set(rng.Intn(width))
			}
			ms[i] = Member{Switch: uint16(i), Ports: b}
		}
		c := Constraints{
			R:                int(rRaw % 16),
			HMax:             int(hRaw % 16),
			KMax:             int(kRaw % 8),
			HasSRuleCapacity: capEvery(int(capRaw % 4)),
		}
		var s Scratch
		got := AssignInto(ms, c, &s)
		want := ReferenceAssign(ms, c)
		if err := equalAssignments(got, want); err != nil {
			t.Fatalf("seed=%d %+v: %v", seed, c, err)
		}
	})
}

// TestDefaultRuleRedundancyAccounting is the regression test for the
// default-rule accounting path: the frozen implementation resolved each
// default switch's ports with a linear member scan (refPortsOf, which
// panicked on a miss); the rewrite reads them off the class records.
// With no p-rule budget and capacity on a strict subset of switches,
// every uncovered switch lands on the default rule and its redundancy
// must be exactly |default OR| − |own ports| per switch.
func TestDefaultRuleRedundancyAccounting(t *testing.T) {
	ms := []Member{
		{Switch: 3, Ports: bitmap.FromPorts(8, 0)},
		{Switch: 9, Ports: bitmap.FromPorts(8, 1, 2)},
		{Switch: 4, Ports: bitmap.FromPorts(8, 5)},
		{Switch: 12, Ports: bitmap.FromPorts(8, 0)}, // same class as 3
		{Switch: 6, Ports: bitmap.FromPorts(8, 7)},
	}
	// Only switch 6 has s-rule capacity; no p-rules allowed.
	c := Constraints{HMax: 0, KMax: 2, HasSRuleCapacity: func(sw uint16) bool { return sw == 6 }}
	var s Scratch
	a := AssignInto(ms, c, &s)
	if len(a.PRules) != 0 || len(a.SRules) != 1 {
		t.Fatalf("p=%d s=%d, want 0/1", len(a.PRules), len(a.SRules))
	}
	wantDefault := bitmap.FromPorts(8, 0, 1, 2, 5)
	if a.Default == nil || !a.Default.Equal(wantDefault) {
		t.Fatalf("default = %v, want %s", a.Default, wantDefault)
	}
	if got, want := a.DefaultSwitches, []uint16{3, 4, 9, 12}; len(got) != len(want) {
		t.Fatalf("default switches = %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("default switches = %v, want %v", got, want)
			}
		}
	}
	// |default| = 4. Redundancy: sw3 4-1, sw12 4-1, sw9 4-2, sw4 4-1 = 11.
	if a.Redundancy != 11 {
		t.Fatalf("redundancy = %d, want 11", a.Redundancy)
	}
	if err := equalAssignments(a, ReferenceAssign(ms, c)); err != nil {
		t.Fatalf("reference divergence: %v", err)
	}
}

// TestAssignIntoWarmScratchZeroAlloc pins the hot path at zero heap
// allocations: a warm scratch re-running a representative pod-sized
// leaf layer (30 leaves, 48-port bitmaps, the WVE-sized workload of the
// paper's evaluation) must not allocate at all.
func TestAssignIntoWarmScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ms := randomMembers(48, 30, 3, rng)
	c := Constraints{R: 6, HMax: 30, KMax: 8, HasSRuleCapacity: noCapacity}
	var s Scratch
	AssignInto(ms, c, &s) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		AssignInto(ms, c, &s)
	})
	if allocs != 0 {
		t.Fatalf("warm AssignInto allocated %.1f per op, want 0", allocs)
	}
}

// TestAssignIntoWarmScratchZeroAllocWithSRules covers the spill path
// too: s-rule map writes into a warm map must stay allocation-free.
func TestAssignIntoWarmScratchZeroAllocWithSRules(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ms := randomMembers(48, 30, 3, rng)
	c := Constraints{R: 0, HMax: 4, KMax: 2, HasSRuleCapacity: fullCapacity}
	var s Scratch
	AssignInto(ms, c, &s)
	allocs := testing.AllocsPerRun(200, func() {
		AssignInto(ms, c, &s)
	})
	if allocs != 0 {
		t.Fatalf("warm AssignInto (s-rule spill) allocated %.1f per op, want 0", allocs)
	}
}

func BenchmarkAssignIntoWarmScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ms := randomMembers(48, 30, 3, rng)
	c := Constraints{R: 6, HMax: 30, KMax: 8, HasSRuleCapacity: noCapacity}
	var s Scratch
	AssignInto(ms, c, &s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AssignInto(ms, c, &s)
	}
}

func BenchmarkReferenceAssignWVESizedGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ms := randomMembers(48, 30, 3, rng)
	c := Constraints{R: 6, HMax: 30, KMax: 8, HasSRuleCapacity: noCapacity}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ReferenceAssign(ms, c)
	}
}

func BenchmarkAssignIntoLargeGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ms := randomMembers(48, 500, 8, rng)
	c := Constraints{R: 12, HMax: 30, KMax: 8, HasSRuleCapacity: fullCapacity}
	var s Scratch
	AssignInto(ms, c, &s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AssignInto(ms, c, &s)
	}
}
