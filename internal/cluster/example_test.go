package cluster_test

import (
	"fmt"

	"elmo/internal/bitmap"
	"elmo/internal/cluster"
)

// ExampleAssign reproduces the paper's Figure 3a leaf-layer assignment
// at R=2: leaves L0 and L6 share a rule (identical bitmaps 11), and
// L5/L7 share one by ORing 10 and 01 into 11 at a cost of two
// redundant transmissions.
func ExampleAssign() {
	members := []cluster.Member{
		{Switch: 0, Ports: bitmap.FromPorts(2, 0, 1)}, // L0: Ha, Hb
		{Switch: 5, Ports: bitmap.FromPorts(2, 0)},    // L5: Hk
		{Switch: 6, Ports: bitmap.FromPorts(2, 0, 1)}, // L6: Hm, Hn
		{Switch: 7, Ports: bitmap.FromPorts(2, 1)},    // L7: Hp
	}
	a := cluster.Assign(members, cluster.Constraints{
		R: 2, HMax: 2, KMax: 2,
	})
	for _, r := range a.PRules {
		fmt.Printf("p-rule %s -> switches %v\n", r.Bitmap, r.Switches)
	}
	fmt.Printf("redundant transmissions: %d\n", a.Redundancy)
	// Output:
	// p-rule 11 -> switches [0 6]
	// p-rule 11 -> switches [5 7]
	// redundant transmissions: 2
}
