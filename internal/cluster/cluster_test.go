package cluster

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"elmo/internal/bitmap"
)

func noCapacity(uint16) bool   { return false }
func fullCapacity(uint16) bool { return true }

func members(width int, ports map[uint16][]int) []Member {
	ms := make([]Member, 0, len(ports))
	for sw, ps := range ports {
		ms = append(ms, Member{Switch: sw, Ports: bitmap.FromPorts(width, ps...)})
	}
	return ms
}

func TestEmptyInput(t *testing.T) {
	a := Assign(nil, Constraints{R: 0, HMax: 10})
	if len(a.PRules) != 0 || len(a.SRules) != 0 || a.Default != nil {
		t.Fatal("empty input produced rules")
	}
	if !a.CoveredExactly() {
		t.Fatal("empty input not covered")
	}
}

// Paper Fig. 3a, leaf layer, R=0: L0 and L6 have identical bitmaps (11)
// and share a rule; L5 (10) gets its own; L7 (01) overflows to an
// s-rule when capacity exists, else the default rule.
func TestPaperExampleLeafLayer(t *testing.T) {
	ms := members(2, map[uint16][]int{
		0: {0, 1}, // L0: Ha, Hb
		5: {0},    // L5: Hk
		6: {0, 1}, // L6: Hm, Hn
		7: {1},    // L7: Hp
	})
	t.Run("R0 with s-rule capacity", func(t *testing.T) {
		a := Assign(ms, Constraints{R: 0, HMax: 2, KMax: 2, HasSRuleCapacity: fullCapacity})
		if len(a.PRules) != 2 {
			t.Fatalf("p-rules = %d, want 2", len(a.PRules))
		}
		if len(a.SRules) != 1 {
			t.Fatalf("s-rules = %d, want 1", len(a.SRules))
		}
		if a.Default != nil {
			t.Fatal("default rule should not be needed")
		}
		if a.Redundancy != 0 {
			t.Fatalf("redundancy = %d, want 0 at R=0", a.Redundancy)
		}
		// The shared rule must be {0,6} with bitmap 11.
		found := false
		for _, r := range a.PRules {
			if len(r.Switches) == 2 && r.Switches[0] == 0 && r.Switches[1] == 6 {
				found = true
				if r.Bitmap.String() != "11" {
					t.Fatalf("shared bitmap = %s", r.Bitmap)
				}
			}
		}
		if !found {
			t.Fatalf("L0+L6 shared rule missing: %+v", a.PRules)
		}
	})
	t.Run("R0 without capacity -> default", func(t *testing.T) {
		a := Assign(ms, Constraints{R: 0, HMax: 2, KMax: 2, HasSRuleCapacity: noCapacity})
		if a.Default == nil {
			t.Fatal("expected default rule")
		}
		if len(a.DefaultSwitches) != 1 {
			t.Fatalf("default switches = %v", a.DefaultSwitches)
		}
		if a.CoveredExactly() {
			t.Fatal("CoveredExactly should be false")
		}
	})
	t.Run("R2 shares everything in two rules", func(t *testing.T) {
		a := Assign(ms, Constraints{R: 2, HMax: 2, KMax: 2, HasSRuleCapacity: noCapacity})
		if len(a.PRules) != 2 || a.Default != nil || len(a.SRules) != 0 {
			t.Fatalf("R2: p=%d s=%d def=%v", len(a.PRules), len(a.SRules), a.Default)
		}
		// Paper: {L0,L6} share 11 and {L5,L7} share 11 with 2 redundant bits.
		if a.Redundancy == 0 {
			t.Fatal("R2 sharing should introduce redundancy for L5/L7")
		}
	})
}

func TestRBoundRespected(t *testing.T) {
	for _, r := range []int{0, 1, 2, 4, 8} {
		a := Assign(randomMembers(64, 40, 12, rand.New(rand.NewSource(7))),
			Constraints{R: r, HMax: 40, KMax: 8, HasSRuleCapacity: noCapacity})
		for _, rule := range a.PRules {
			for _, sw := range rule.Switches {
				// Distance of each member to the rule's OR must be <= R.
				d := memberPorts(t, sw).HammingDistance(rule.Bitmap)
				if d > r {
					t.Fatalf("R=%d violated: switch %d distance %d", r, sw, d)
				}
			}
		}
	}
}

var lastMembers []Member

func memberPorts(t *testing.T, sw uint16) bitmap.Bitmap {
	t.Helper()
	for _, m := range lastMembers {
		if m.Switch == sw {
			return m.Ports
		}
	}
	t.Fatalf("switch %d not found", sw)
	return bitmap.Bitmap{}
}

func randomMembers(width, n, maxPorts int, rng *rand.Rand) []Member {
	ms := make([]Member, n)
	for i := range ms {
		b := bitmap.New(width)
		k := rng.Intn(maxPorts) + 1
		for j := 0; j < k; j++ {
			b.Set(rng.Intn(width))
		}
		ms[i] = Member{Switch: uint16(i), Ports: b}
	}
	lastMembers = ms
	return ms
}

func TestHMaxRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ms := randomMembers(48, 30, 6, rng)
	for _, hmax := range []int{0, 1, 3, 10} {
		a := Assign(ms, Constraints{R: 0, HMax: hmax, KMax: 4, HasSRuleCapacity: fullCapacity})
		if len(a.PRules) > hmax {
			t.Fatalf("HMax=%d: emitted %d p-rules", hmax, len(a.PRules))
		}
		// Everything must be covered somewhere.
		covered := len(a.SRules) + len(a.DefaultSwitches)
		for _, r := range a.PRules {
			covered += len(r.Switches)
		}
		if covered != len(ms) {
			t.Fatalf("HMax=%d: covered %d of %d", hmax, covered, len(ms))
		}
	}
}

func TestKMaxRespected(t *testing.T) {
	// 20 switches with identical bitmaps must be split into rules of
	// at most KMax switches.
	ms := make([]Member, 20)
	for i := range ms {
		ms[i] = Member{Switch: uint16(i), Ports: bitmap.FromPorts(8, 3)}
	}
	a := Assign(ms, Constraints{R: 0, HMax: 100, KMax: 6, HasSRuleCapacity: noCapacity})
	total := 0
	for _, r := range a.PRules {
		if len(r.Switches) > 6 {
			t.Fatalf("rule has %d switches, KMax=6", len(r.Switches))
		}
		total += len(r.Switches)
	}
	if total != 20 || a.Default != nil {
		t.Fatalf("coverage: %d p-rule switches, default=%v", total, a.Default)
	}
}

func TestSRuleCapacityCallback(t *testing.T) {
	ms := members(4, map[uint16][]int{1: {0}, 2: {1}, 3: {2}})
	// No p-rule budget; only switch 2 has capacity.
	cap2 := func(sw uint16) bool { return sw == 2 }
	a := Assign(ms, Constraints{R: 0, HMax: 0, KMax: 2, HasSRuleCapacity: cap2})
	if len(a.PRules) != 0 {
		t.Fatal("HMax=0 should emit no p-rules")
	}
	if _, ok := a.SRules[2]; !ok || len(a.SRules) != 1 {
		t.Fatalf("SRules = %v", a.SRules)
	}
	if len(a.DefaultSwitches) != 2 {
		t.Fatalf("DefaultSwitches = %v", a.DefaultSwitches)
	}
	// Default = OR of switch 1 and 3 bitmaps.
	if !a.Default.Equal(bitmap.FromPorts(4, 0, 2)) {
		t.Fatalf("Default = %s", a.Default)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ms := randomMembers(48, 25, 5, rng)
	a1 := Assign(ms, Constraints{R: 2, HMax: 8, KMax: 4, HasSRuleCapacity: noCapacity})
	a2 := Assign(ms, Constraints{R: 2, HMax: 8, KMax: 4, HasSRuleCapacity: noCapacity})
	if len(a1.PRules) != len(a2.PRules) || a1.Redundancy != a2.Redundancy {
		t.Fatal("assignment not deterministic")
	}
	for i := range a1.PRules {
		if !a1.PRules[i].Bitmap.Equal(a2.PRules[i].Bitmap) {
			t.Fatal("rule order not deterministic")
		}
	}
}

// Property: every input switch is covered exactly once, across
// p-rules, s-rules, and the default rule; and applied bitmaps are
// supersets of required bitmaps.
func TestQuickCoverageInvariant(t *testing.T) {
	f := func(seed int64, rRaw, hRaw, kRaw uint8, withCap bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		ms := make([]Member, n)
		byID := make(map[uint16]bitmap.Bitmap, n)
		for i := range ms {
			b := bitmap.New(32)
			k := rng.Intn(6) + 1
			for j := 0; j < k; j++ {
				b.Set(rng.Intn(32))
			}
			ms[i] = Member{Switch: uint16(i), Ports: b}
			byID[uint16(i)] = b
		}
		capFn := noCapacity
		if withCap {
			capFn = fullCapacity
		}
		c := Constraints{
			R:                int(rRaw % 8),
			HMax:             int(hRaw % 20),
			KMax:             int(kRaw%6) + 1,
			HasSRuleCapacity: capFn,
		}
		a := Assign(ms, c)
		seen := make(map[uint16]int)
		for _, r := range a.PRules {
			if len(r.Switches) > c.KMax {
				return false
			}
			for _, sw := range r.Switches {
				seen[sw]++
				// Rule bitmap must cover the member's ports.
				if !r.Bitmap.Contains(byID[sw]) {
					return false
				}
				if byID[sw].HammingDistance(r.Bitmap) > c.R {
					return false
				}
			}
		}
		for sw, bm := range a.SRules {
			seen[sw]++
			if !bm.Equal(byID[sw]) {
				return false
			}
		}
		for _, sw := range a.DefaultSwitches {
			seen[sw]++
			if !a.Default.Contains(byID[sw]) {
				return false
			}
		}
		if len(a.PRules) > c.HMax {
			return false
		}
		if len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: raising R never increases the number of switches that fall
// off p-rules (monotonicity that drives Figures 4/5 left panels).
func TestQuickRMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ms := randomMembers(32, rng.Intn(30)+2, 5, rng)
		prev := -1
		for _, r := range []int{0, 2, 6, 12} {
			a := Assign(ms, Constraints{R: r, HMax: 5, KMax: 4, HasSRuleCapacity: noCapacity})
			inP := 0
			for _, rule := range a.PRules {
				inP += len(rule.Switches)
			}
			if prev >= 0 && inP < prev {
				// The greedy heuristic is not strictly monotone on
				// every instance, but a drop of more than one rule's
				// worth indicates a bug.
				if prev-inP > 4 {
					return false
				}
			}
			prev = inP
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAssignWVESizedGroup(b *testing.B) {
	// A 60-member group spread over ~30 leaves with 48-port bitmaps —
	// the typical per-group clustering workload at paper scale.
	rng := rand.New(rand.NewSource(9))
	ms := randomMembers(48, 30, 3, rng)
	c := Constraints{R: 6, HMax: 30, KMax: 8, HasSRuleCapacity: noCapacity}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(ms, c)
	}
}

func BenchmarkAssignLargeGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ms := randomMembers(48, 500, 8, rng)
	c := Constraints{R: 12, HMax: 30, KMax: 8, HasSRuleCapacity: fullCapacity}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(ms, c)
	}
}

// TestAssignConcurrent pins down the reentrancy contract the parallel
// controller pipeline relies on: many goroutines running Assign over
// the same shared member slice produce identical assignments and never
// trip the race detector (run via `make race`).
func TestAssignConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ms := randomMembers(48, 40, 4, rng)
	c := Constraints{R: 4, HMax: 10, KMax: 4, HasSRuleCapacity: fullCapacity}
	want := Assign(ms, c)

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got := Assign(ms, c)
				if !reflect.DeepEqual(got, want) {
					errs <- "concurrent Assign diverged from serial result"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
