// Package cluster implements the controller's p-/s-rule generation for
// one downstream layer of one multicast group (paper §3.2, Algorithm 1).
//
// The input is the set of (logical) switches on the group's tree at
// that layer, each with the bitmap of output ports it must forward on.
// The algorithm packs switches into at most HMax shared p-rules — a
// shared rule's bitmap is the bitwise OR of its members' bitmaps, and
// sharing is allowed only while the sum of the members' Hamming
// distances to the OR stays within R (bounding spurious transmissions,
// D3) — then spills the
// remainder into per-switch s-rules where group-table capacity remains
// (D5), and finally ORs anything left into a single default p-rule (D4).
//
// Choosing which switches share a rule is the MIN-K-UNION problem
// (NP-hard); ApproxMinKUnion is the standard greedy approximation:
// start from the smallest set and repeatedly add the set that grows
// the union least.
package cluster

import (
	"sort"

	"elmo/internal/bitmap"
)

// Member is one switch at a layer with its required output ports.
type Member struct {
	// Switch is the logical switch identifier (pod ID for the spine
	// layer, global leaf ID for the leaf layer).
	Switch uint16
	// Ports is the downstream output-port bitmap of the switch in the
	// group's multicast tree. Never empty for a tree member.
	Ports bitmap.Bitmap
}

// Constraints bounds the assignment for one layer.
type Constraints struct {
	// R is the redundancy limit: switches may share a p-rule only if
	// the SUM of Hamming distances from each member's bitmap to the
	// rule's OR bitmap is at most R ("the sum of Hamming Distances of
	// each input bitmap to the output bitmap", §3.2) — so R bounds the
	// spurious transmissions one shared rule can cause. R=0 shares
	// only identical bitmaps.
	R int
	// HMax is the maximum number of non-default p-rules for the layer.
	HMax int
	// KMax is the maximum number of switches sharing one p-rule. It
	// bounds the identifier list so the rule's wire size is known a
	// priori. Zero means no limit beyond wire framing.
	KMax int
	// HasSRuleCapacity reports whether the given switch still has
	// group-table space (Fmax check). A nil func means no capacity
	// anywhere, pushing the overflow to the default p-rule.
	HasSRuleCapacity func(sw uint16) bool
}

// Rule is one shared p-rule produced by the assignment.
type Rule struct {
	Switches []uint16
	Bitmap   bitmap.Bitmap
}

// Assignment is the output of Algorithm 1 for one layer.
type Assignment struct {
	// PRules are the non-default p-rules, each covering one or more
	// switches.
	PRules []Rule
	// SRules maps switches that received a group-table entry to their
	// exact port bitmap.
	SRules map[uint16]bitmap.Bitmap
	// Default is the OR of the bitmaps of all switches that neither
	// fit a p-rule nor had s-rule capacity; nil if every switch was
	// covered exactly.
	Default *bitmap.Bitmap
	// DefaultSwitches lists the switches relying on the default rule.
	DefaultSwitches []uint16
	// Redundancy is the total number of spurious port transmissions
	// introduced by sharing and the default rule: for every switch,
	// the set bits its applied bitmap has beyond its own requirement.
	Redundancy int
}

// CoveredExactly reports whether no default rule was needed; the
// evaluation's "groups covered with p-rules" counts groups whose
// layers are all covered by p-rules and s-rules only.
func (a *Assignment) CoveredExactly() bool { return a.Default == nil }

// Assign runs Algorithm 1 over the members of one layer.
// Members must have bitmaps of equal width; the slice may be in any
// order, and is not modified. The result is deterministic.
//
// Assign is safe for concurrent use: it reads its inputs (including
// the member bitmaps, which it never mutates) and builds fresh output
// structures, so the parallel controller pipeline runs it from many
// workers against shared member slices. The HasSRuleCapacity callback
// must itself be safe to call concurrently (the controller passes
// closures over atomic occupancy counters).
func Assign(members []Member, c Constraints) Assignment {
	out := Assignment{SRules: make(map[uint16]bitmap.Bitmap)}
	if len(members) == 0 {
		return out
	}
	kmax := c.KMax
	if kmax <= 0 || kmax > len(members) {
		kmax = len(members)
	}

	// Collapse identical bitmaps into classes: identical members can
	// always share (distance 0), and classes shrink the MIN-K-UNION
	// candidate set dramatically for clustered placements. Classes
	// larger than KMax are split so every emitted rule honors KMax.
	classes := splitClasses(buildClasses(members), kmax)

	for len(classes) > 0 && len(out.PRules) < c.HMax {
		group, union := pickGroup(classes, kmax, c.R)
		rule := Rule{Bitmap: union}
		for _, ci := range group {
			cl := classes[ci]
			rule.Switches = append(rule.Switches, cl.switches...)
			out.Redundancy += union.AndNot(cl.ports).PopCount() * len(cl.switches)
		}
		sort.Slice(rule.Switches, func(i, j int) bool { return rule.Switches[i] < rule.Switches[j] })
		out.PRules = append(out.PRules, rule)
		classes = removeClasses(classes, group)
	}

	// Spill: s-rules where capacity remains, default p-rule otherwise.
	for _, cl := range classes {
		for _, sw := range cl.switches {
			if c.HasSRuleCapacity != nil && c.HasSRuleCapacity(sw) {
				out.SRules[sw] = cl.ports.Clone()
				continue
			}
			if out.Default == nil {
				d := cl.ports.Clone()
				out.Default = &d
			} else {
				out.Default.OrInPlace(cl.ports)
			}
			out.DefaultSwitches = append(out.DefaultSwitches, sw)
		}
	}
	// Account default-rule redundancy after the final OR is known.
	if out.Default != nil {
		for _, sw := range out.DefaultSwitches {
			out.Redundancy += out.Default.AndNot(portsOf(members, sw)).PopCount()
		}
		sort.Slice(out.DefaultSwitches, func(i, j int) bool {
			return out.DefaultSwitches[i] < out.DefaultSwitches[j]
		})
	}
	return out
}

func portsOf(members []Member, sw uint16) bitmap.Bitmap {
	for _, m := range members {
		if m.Switch == sw {
			return m.Ports
		}
	}
	panic("cluster: unknown switch")
}

// class groups members sharing an identical bitmap.
type class struct {
	ports    bitmap.Bitmap
	switches []uint16
	pop      int
}

func buildClasses(members []Member) []*class {
	byKey := make(map[string]*class, len(members))
	order := make([]*class, 0, len(members))
	keyBuf := make([]byte, 0, 64)
	for _, m := range members {
		keyBuf = m.Ports.AppendWire(keyBuf[:0])
		k := string(keyBuf)
		cl, ok := byKey[k]
		if !ok {
			cl = &class{ports: m.Ports.Clone(), pop: m.Ports.PopCount()}
			byKey[k] = cl
			order = append(order, cl)
		}
		cl.switches = append(cl.switches, m.Switch)
	}
	for _, cl := range order {
		sort.Slice(cl.switches, func(i, j int) bool { return cl.switches[i] < cl.switches[j] })
	}
	// Deterministic order: by ascending popcount, then wire key.
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].pop != order[j].pop {
			return order[i].pop < order[j].pop
		}
		return order[i].switches[0] < order[j].switches[0]
	})
	return order
}

// splitClasses chops any class with more than kmax switches into
// chunks of at most kmax, preserving deterministic order.
func splitClasses(classes []*class, kmax int) []*class {
	out := make([]*class, 0, len(classes))
	for _, cl := range classes {
		for len(cl.switches) > kmax {
			out = append(out, &class{ports: cl.ports, pop: cl.pop, switches: cl.switches[:kmax]})
			cl = &class{ports: cl.ports, pop: cl.pop, switches: cl.switches[kmax:]}
		}
		out = append(out, cl)
	}
	return out
}

// pickGroup selects the next shared p-rule: the greedy MIN-K-UNION
// approximation, constrained to keep the rule's total redundancy — the
// sum over members of their Hamming distance to the (growing) union,
// weighted by class multiplicity — at most r. The seed is the class
// covering the most switches (ties: fewest ports, then lowest switch
// ID), so a rule covers as many tree switches as possible before the
// HMax budget runs out; the growth step then adds, while the K budget
// lasts, the class with the smallest union growth that keeps the sum
// within r. Returns the picked class indices (ascending) and their
// union bitmap.
func pickGroup(classes []*class, k, r int) ([]int, bitmap.Bitmap) {
	seed := 0
	for i, cl := range classes[1:] {
		s := classes[seed]
		if len(cl.switches) > len(s.switches) ||
			(len(cl.switches) == len(s.switches) && cl.pop < s.pop) {
			seed = i + 1
		}
	}
	picked := []int{seed}
	budget := k - len(classes[seed].switches)
	union := classes[seed].ports.Clone()
	for budget > 0 {
		best, bestGrowth := -1, -1
		for i, cl := range classes {
			if i == seed || contains(picked, i) || len(cl.switches) > budget {
				continue
			}
			growth := cl.ports.AndNot(union).PopCount()
			if best != -1 && growth >= bestGrowth {
				continue
			}
			// R check against the prospective union: total redundant
			// transmissions across all members of the rule.
			newUnion := union.Or(cl.ports)
			sum := len(cl.switches) * cl.ports.HammingDistance(newUnion)
			for _, pi := range picked {
				sum += len(classes[pi].switches) * classes[pi].ports.HammingDistance(newUnion)
			}
			if sum > r {
				continue
			}
			best, bestGrowth = i, growth
		}
		if best == -1 {
			break
		}
		picked = append(picked, best)
		union.OrInPlace(classes[best].ports)
		budget -= len(classes[best].switches)
	}
	sort.Ints(picked)
	return picked, union
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func removeClasses(classes []*class, idxs []int) []*class {
	drop := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		drop[i] = true
	}
	out := classes[:0]
	for i, cl := range classes {
		if !drop[i] {
			out = append(out, cl)
		}
	}
	return out
}
