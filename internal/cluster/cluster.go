// Package cluster implements the controller's p-/s-rule generation for
// one downstream layer of one multicast group (paper §3.2, Algorithm 1).
//
// The input is the set of (logical) switches on the group's tree at
// that layer, each with the bitmap of output ports it must forward on.
// The algorithm packs switches into at most HMax shared p-rules — a
// shared rule's bitmap is the bitwise OR of its members' bitmaps, and
// sharing is allowed only while the sum of the members' Hamming
// distances to the OR stays within R (bounding spurious transmissions,
// D3) — then spills the
// remainder into per-switch s-rules where group-table capacity remains
// (D5), and finally ORs anything left into a single default p-rule (D4).
//
// Choosing which switches share a rule is the MIN-K-UNION problem
// (NP-hard); ApproxMinKUnion is the standard greedy approximation:
// start from the smallest set and repeatedly add the set that grows
// the union least.
//
// This is the controller's encode hot path: it runs once per layer per
// group install and once per layer per churn re-encode, so at paper
// scale (a million groups, thousands of events per second) its constant
// factors decide controller throughput. AssignInto is the
// allocation-free core: all working state lives in a caller-provided
// Scratch, the greedy loop maintains its union and redundancy sums
// incrementally (O(1) per candidate instead of O(picked) bitmap
// temporaries), and the returned Assignment aliases scratch memory.
// Assign wraps it with a private scratch and deep-copied results for
// callers that want owned data.
package cluster

import (
	"cmp"
	"slices"

	"elmo/internal/bitmap"
)

// Member is one switch at a layer with its required output ports.
// Switch IDs must be unique within one Assign call (a switch appears at
// most once on a group's tree at a layer).
type Member struct {
	// Switch is the logical switch identifier (pod ID for the spine
	// layer, global leaf ID for the leaf layer).
	Switch uint16
	// Ports is the downstream output-port bitmap of the switch in the
	// group's multicast tree. Never empty for a tree member.
	Ports bitmap.Bitmap
}

// Constraints bounds the assignment for one layer.
type Constraints struct {
	// R is the redundancy limit: switches may share a p-rule only if
	// the SUM of Hamming distances from each member's bitmap to the
	// rule's OR bitmap is at most R ("the sum of Hamming Distances of
	// each input bitmap to the output bitmap", §3.2) — so R bounds the
	// spurious transmissions one shared rule can cause. R=0 shares
	// only identical bitmaps.
	R int
	// HMax is the maximum number of non-default p-rules for the layer.
	HMax int
	// KMax is the maximum number of switches sharing one p-rule. It
	// bounds the identifier list so the rule's wire size is known a
	// priori. Zero means no limit beyond wire framing.
	KMax int
	// HasSRuleCapacity reports whether the given switch still has
	// group-table space (Fmax check). A nil func means no capacity
	// anywhere, pushing the overflow to the default p-rule.
	HasSRuleCapacity func(sw uint16) bool
}

// Rule is one shared p-rule produced by the assignment.
type Rule struct {
	Switches []uint16
	Bitmap   bitmap.Bitmap
}

// Assignment is the output of Algorithm 1 for one layer.
type Assignment struct {
	// PRules are the non-default p-rules, each covering one or more
	// switches.
	PRules []Rule
	// SRules maps switches that received a group-table entry to their
	// exact port bitmap.
	SRules map[uint16]bitmap.Bitmap
	// Default is the OR of the bitmaps of all switches that neither
	// fit a p-rule nor had s-rule capacity; nil if every switch was
	// covered exactly.
	Default *bitmap.Bitmap
	// DefaultSwitches lists the switches relying on the default rule.
	DefaultSwitches []uint16
	// Redundancy is the total number of spurious port transmissions
	// introduced by sharing and the default rule: for every switch,
	// the set bits its applied bitmap has beyond its own requirement.
	Redundancy int
}

// CoveredExactly reports whether no default rule was needed; the
// evaluation's "groups covered with p-rules" counts groups whose
// layers are all covered by p-rules and s-rules only.
func (a *Assignment) CoveredExactly() bool { return a.Default == nil }

// Clone returns a deep copy of the assignment owning all of its memory:
// fresh rule slices, bitmap clones, and a fresh SRules map. Use it to
// persist an AssignInto result beyond the scratch's next use.
func (a Assignment) Clone() Assignment {
	out := Assignment{
		SRules:     make(map[uint16]bitmap.Bitmap, len(a.SRules)),
		Redundancy: a.Redundancy,
	}
	if len(a.PRules) > 0 {
		out.PRules = make([]Rule, len(a.PRules))
		for i, r := range a.PRules {
			out.PRules[i] = Rule{Switches: slices.Clone(r.Switches), Bitmap: r.Bitmap.Clone()}
		}
	}
	for sw, bm := range a.SRules {
		out.SRules[sw] = bm.Clone()
	}
	if a.Default != nil {
		d := a.Default.Clone()
		out.Default = &d
	}
	out.DefaultSwitches = slices.Clone(a.DefaultSwitches)
	return out
}

// classRec groups members sharing an identical bitmap. ports aliases
// the first member's (read-only) bitmap; switches is a sub-slice of the
// scratch switch buffer.
type classRec struct {
	ports    bitmap.Bitmap
	switches []uint16
	pop      int
}

// Scratch holds all working and output state of one AssignInto run, so
// a warm scratch executes a full layer assignment with zero heap
// allocations. A Scratch is single-goroutine state: give each encoder
// worker its own. The zero value is ready to use.
type Scratch struct {
	// class building
	idx     []int32    // member indices, sorted by bitmap content
	swBuf   []uint16   // switches in grouped order; classes sub-slice it
	classes []classRec // grouped classes before KMax splitting
	work    []classRec // post-split working set, compacted as rules emit

	// greedy state
	union      bitmap.Bitmap // running union of the rule being built
	picked     []int         // indices into work picked for the rule
	pickedMark []bool        // membership bitset over work

	// outputs (aliased by the returned Assignment)
	prules      []Rule
	ruleSw      []uint16        // backing array for all rules' Switches
	ruleBMs     []bitmap.Bitmap // reusable storage for rule bitmaps
	srules      map[uint16]bitmap.Bitmap
	defaultBM   bitmap.Bitmap
	defSwitches []uint16
	defPops     []int
}

// Assign runs Algorithm 1 over the members of one layer.
// Members must have bitmaps of equal width and unique Switch IDs; the
// slice may be in any order, and is not modified. The result is
// deterministic and owns all of its memory.
//
// Assign is safe for concurrent use: it reads its inputs (including
// the member bitmaps, which it never mutates) and builds fresh output
// structures, so the parallel controller pipeline runs it from many
// workers against shared member slices. The HasSRuleCapacity callback
// must itself be safe to call concurrently (the controller passes
// closures over atomic occupancy counters).
func Assign(members []Member, c Constraints) Assignment {
	var s Scratch
	return AssignInto(members, c, &s).Clone()
}

// AssignInto is the allocation-free core of Assign: identical output,
// but every temporary lives in s and the returned Assignment's slices,
// bitmaps, and SRules map alias scratch memory (SRules values and the
// Default bitmap may also alias input member bitmaps). The result is
// valid only until the next AssignInto call with the same scratch;
// callers that persist it must Clone. Like Assign it never mutates the
// member bitmaps, but the scratch itself is not safe for concurrent
// use.
func AssignInto(members []Member, c Constraints, s *Scratch) Assignment {
	if s.srules == nil {
		s.srules = make(map[uint16]bitmap.Bitmap)
	}
	clear(s.srules)
	out := Assignment{SRules: s.srules}
	if len(members) == 0 {
		return out
	}
	kmax := c.KMax
	if kmax <= 0 || kmax > len(members) {
		kmax = len(members)
	}

	// Collapse identical bitmaps into classes: identical members can
	// always share (distance 0), and classes shrink the MIN-K-UNION
	// candidate set dramatically for clustered placements. Classes
	// larger than KMax are split so every emitted rule honors KMax.
	work := s.buildClasses(members, kmax)

	// Rule emission. The switch backing buffer is pre-sized to the
	// worst case (every member lands in a p-rule) so emitted sub-slices
	// are never invalidated by growth.
	s.prules = s.prules[:0]
	if cap(s.ruleSw) < len(members) {
		s.ruleSw = make([]uint16, 0, len(members))
	}
	s.ruleSw = s.ruleSw[:0]

	for len(work) > 0 && len(s.prules) < c.HMax {
		popUnion := s.pickGroup(work, kmax, c.R)
		swStart := len(s.ruleSw)
		for _, ci := range s.picked {
			cl := &work[ci]
			// cl.ports ⊆ union, so the redundancy the rule inflicts on
			// this class is (|union| − |ports|) spurious ports per switch.
			out.Redundancy += (popUnion - cl.pop) * len(cl.switches)
			s.ruleSw = append(s.ruleSw, cl.switches...)
		}
		sws := s.ruleSw[swStart:len(s.ruleSw):len(s.ruleSw)]
		slices.Sort(sws)
		s.prules = append(s.prules, Rule{Switches: sws, Bitmap: s.ruleBitmap(len(s.prules))})
		work = s.removePicked(work)
	}
	if len(s.prules) > 0 {
		out.PRules = s.prules
	}

	// Spill: s-rules where capacity remains, default p-rule otherwise.
	s.defSwitches = s.defSwitches[:0]
	s.defPops = s.defPops[:0]
	haveDefault := false
	for i := range work {
		cl := &work[i]
		for _, sw := range cl.switches {
			if c.HasSRuleCapacity != nil && c.HasSRuleCapacity(sw) {
				out.SRules[sw] = cl.ports
				continue
			}
			if !haveDefault {
				s.defaultBM.CopyFrom(cl.ports)
				haveDefault = true
			} else {
				s.defaultBM.OrInPlace(cl.ports)
			}
			s.defSwitches = append(s.defSwitches, sw)
			s.defPops = append(s.defPops, cl.pop)
		}
	}
	// Account default-rule redundancy after the final OR is known: each
	// default switch's ports ⊆ default, so its spurious ports are
	// |default| − |ports| — no per-switch member scan needed.
	if haveDefault {
		dp := s.defaultBM.PopCount()
		for _, p := range s.defPops {
			out.Redundancy += dp - p
		}
		slices.Sort(s.defSwitches)
		out.Default = &s.defaultBM
		out.DefaultSwitches = s.defSwitches
	}
	return out
}

// buildClasses groups members with identical bitmaps, orders classes
// deterministically (ascending popcount, then lowest switch ID), and
// splits classes larger than kmax. The returned slice and everything it
// references live in the scratch.
func (s *Scratch) buildClasses(members []Member, kmax int) []classRec {
	n := len(members)
	if cap(s.idx) < n {
		s.idx = make([]int32, n)
	}
	s.idx = s.idx[:n]
	for i := range s.idx {
		s.idx[i] = int32(i)
	}
	// Sorting by bitmap content makes identical bitmaps adjacent; the
	// switch-ID tie-break leaves each run's switches already ascending.
	slices.SortFunc(s.idx, func(a, b int32) int {
		if c := compareBits(members[a].Ports, members[b].Ports); c != 0 {
			return c
		}
		return cmp.Compare(members[a].Switch, members[b].Switch)
	})

	if cap(s.swBuf) < n {
		s.swBuf = make([]uint16, 0, n)
	}
	s.swBuf = s.swBuf[:0]
	for _, mi := range s.idx {
		s.swBuf = append(s.swBuf, members[mi].Switch)
	}

	s.classes = s.classes[:0]
	for start := 0; start < n; {
		end := start + 1
		for end < n && members[s.idx[start]].Ports.Equal(members[s.idx[end]].Ports) {
			end++
		}
		p := members[s.idx[start]].Ports
		s.classes = append(s.classes, classRec{
			ports:    p,
			pop:      p.PopCount(),
			switches: s.swBuf[start:end:end],
		})
		start = end
	}
	// Deterministic order: ascending popcount, then lowest switch ID.
	// Classes partition the (unique) switches, so switches[0] breaks
	// every tie; the bit-content comparison only defends determinism if
	// a caller ever violates the uniqueness contract.
	slices.SortFunc(s.classes, func(a, b classRec) int {
		if a.pop != b.pop {
			return cmp.Compare(a.pop, b.pop)
		}
		if a.switches[0] != b.switches[0] {
			return cmp.Compare(a.switches[0], b.switches[0])
		}
		return compareBits(a.ports, b.ports)
	})

	// Split oversized classes into KMax-sized chunks, preserving order.
	s.work = s.work[:0]
	for _, cl := range s.classes {
		for len(cl.switches) > kmax {
			s.work = append(s.work, classRec{ports: cl.ports, pop: cl.pop, switches: cl.switches[:kmax]})
			cl.switches = cl.switches[kmax:]
		}
		s.work = append(s.work, cl)
	}
	if len(s.pickedMark) < len(s.work) {
		s.pickedMark = make([]bool, len(s.work))
	}
	return s.work
}

// compareBits orders equal-width bitmaps by content (word-lexicographic).
func compareBits(a, b bitmap.Bitmap) int {
	aw, bw := a.Words(), b.Words()
	for i := range aw {
		if aw[i] != bw[i] {
			return cmp.Compare(aw[i], bw[i])
		}
	}
	return 0
}

// pickGroup selects the next shared p-rule: the greedy MIN-K-UNION
// approximation, constrained to keep the rule's total redundancy — the
// sum over members of their Hamming distance to the (growing) union,
// weighted by class multiplicity — at most r. The seed is the class
// covering the most switches (ties: fewest ports), so a rule covers as
// many tree switches as possible before the HMax budget runs out; the
// growth step then adds, while the K budget lasts, the class with the
// smallest union growth that keeps the sum within r.
//
// Every picked class's ports are a subset of the union, so each
// member's Hamming distance to a prospective union is |union∪cand| −
// |member|. That collapses the R check to arithmetic over three
// incrementally-maintained sums — no temporary bitmaps and no O(picked)
// rescan per candidate. The picked indices (ascending) land in
// s.picked, the union in s.union; the return value is the union's
// popcount.
func (s *Scratch) pickGroup(work []classRec, k, r int) (popUnion int) {
	seed := 0
	for i := 1; i < len(work); i++ {
		cl, sd := &work[i], &work[seed]
		if len(cl.switches) > len(sd.switches) ||
			(len(cl.switches) == len(sd.switches) && cl.pop < sd.pop) {
			seed = i
		}
	}
	s.picked = append(s.picked[:0], seed)
	s.pickedMark[seed] = true
	budget := k - len(work[seed].switches)
	s.union.CopyFrom(work[seed].ports)
	popUnion = work[seed].pop
	pickedSwitches := len(work[seed].switches)     // Σ class sizes picked
	weightedPop := work[seed].pop * pickedSwitches // Σ size·|ports| picked
	for budget > 0 {
		best, bestGrowth := -1, -1
		for i := range work {
			cl := &work[i]
			if s.pickedMark[i] || len(cl.switches) > budget {
				continue
			}
			growth := cl.ports.AndNotCount(s.union)
			if best != -1 && growth >= bestGrowth {
				continue
			}
			// R check against the prospective union: total redundant
			// transmissions across all members of the rule.
			popNew := popUnion + growth
			sum := popNew*(pickedSwitches+len(cl.switches)) -
				(weightedPop + len(cl.switches)*cl.pop)
			if sum > r {
				continue
			}
			best, bestGrowth = i, growth
		}
		if best == -1 {
			break
		}
		cl := &work[best]
		s.picked = append(s.picked, best)
		s.pickedMark[best] = true
		s.union.OrInPlace(cl.ports)
		popUnion += bestGrowth
		budget -= len(cl.switches)
		pickedSwitches += len(cl.switches)
		weightedPop += len(cl.switches) * cl.pop
	}
	slices.Sort(s.picked)
	return popUnion
}

// ruleBitmap hands out reusable storage for emitted rule bitmaps,
// loaded with the current union.
func (s *Scratch) ruleBitmap(i int) bitmap.Bitmap {
	if i == len(s.ruleBMs) {
		s.ruleBMs = append(s.ruleBMs, bitmap.Bitmap{})
	}
	s.ruleBMs[i].CopyFrom(s.union)
	return s.ruleBMs[i]
}

// removePicked compacts work in place, dropping the classes picked for
// the just-emitted rule and clearing their marks.
func (s *Scratch) removePicked(work []classRec) []classRec {
	out := work[:0]
	for i := range work {
		if !s.pickedMark[i] {
			out = append(out, work[i])
		}
	}
	for _, i := range s.picked {
		s.pickedMark[i] = false
	}
	return out
}
