package cluster

import (
	"sort"

	"elmo/internal/bitmap"
)

// This file freezes the original, allocation-heavy implementation of
// Algorithm 1 exactly as it shipped before the scratch-buffer rewrite.
// It exists for two reasons:
//
//   - It is the golden oracle: the equivalence tests run AssignInto and
//     ReferenceAssign against randomized inputs and require
//     byte-identical output (same p-rules, s-rules, default rule, and
//     redundancy).
//   - It is the benchmark baseline: the encode benchmark gate
//     (cmd/elmo-bench, BENCH_encode.json) measures the allocation and
//     throughput delta of the rewrite against it, so the "allocs/op
//     reduction" claim stays measured rather than remembered.
//
// Do not optimize or otherwise modify this implementation.

// ReferenceAssign is the frozen pre-optimization Assign. Its results
// are identical to Assign for inputs with unique Switch IDs; its cost
// is O(classes²·picked) bitmap temporaries per rule plus a linear
// member scan per default-rule switch.
func ReferenceAssign(members []Member, c Constraints) Assignment {
	out := Assignment{SRules: make(map[uint16]bitmap.Bitmap)}
	if len(members) == 0 {
		return out
	}
	kmax := c.KMax
	if kmax <= 0 || kmax > len(members) {
		kmax = len(members)
	}

	classes := refSplitClasses(refBuildClasses(members), kmax)

	for len(classes) > 0 && len(out.PRules) < c.HMax {
		group, union := refPickGroup(classes, kmax, c.R)
		rule := Rule{Bitmap: union}
		for _, ci := range group {
			cl := classes[ci]
			rule.Switches = append(rule.Switches, cl.switches...)
			out.Redundancy += union.AndNot(cl.ports).PopCount() * len(cl.switches)
		}
		sort.Slice(rule.Switches, func(i, j int) bool { return rule.Switches[i] < rule.Switches[j] })
		out.PRules = append(out.PRules, rule)
		classes = refRemoveClasses(classes, group)
	}

	// Spill: s-rules where capacity remains, default p-rule otherwise.
	for _, cl := range classes {
		for _, sw := range cl.switches {
			if c.HasSRuleCapacity != nil && c.HasSRuleCapacity(sw) {
				out.SRules[sw] = cl.ports.Clone()
				continue
			}
			if out.Default == nil {
				d := cl.ports.Clone()
				out.Default = &d
			} else {
				out.Default.OrInPlace(cl.ports)
			}
			out.DefaultSwitches = append(out.DefaultSwitches, sw)
		}
	}
	// Account default-rule redundancy after the final OR is known.
	if out.Default != nil {
		for _, sw := range out.DefaultSwitches {
			out.Redundancy += out.Default.AndNot(refPortsOf(members, sw)).PopCount()
		}
		sort.Slice(out.DefaultSwitches, func(i, j int) bool {
			return out.DefaultSwitches[i] < out.DefaultSwitches[j]
		})
	}
	return out
}

func refPortsOf(members []Member, sw uint16) bitmap.Bitmap {
	for _, m := range members {
		if m.Switch == sw {
			return m.Ports
		}
	}
	panic("cluster: unknown switch")
}

// refClass groups members sharing an identical bitmap.
type refClass struct {
	ports    bitmap.Bitmap
	switches []uint16
	pop      int
}

func refBuildClasses(members []Member) []*refClass {
	byKey := make(map[string]*refClass, len(members))
	order := make([]*refClass, 0, len(members))
	keyBuf := make([]byte, 0, 64)
	for _, m := range members {
		keyBuf = m.Ports.AppendWire(keyBuf[:0])
		k := string(keyBuf)
		cl, ok := byKey[k]
		if !ok {
			cl = &refClass{ports: m.Ports.Clone(), pop: m.Ports.PopCount()}
			byKey[k] = cl
			order = append(order, cl)
		}
		cl.switches = append(cl.switches, m.Switch)
	}
	for _, cl := range order {
		sort.Slice(cl.switches, func(i, j int) bool { return cl.switches[i] < cl.switches[j] })
	}
	// Deterministic order: by ascending popcount, then lowest switch.
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].pop != order[j].pop {
			return order[i].pop < order[j].pop
		}
		return order[i].switches[0] < order[j].switches[0]
	})
	return order
}

func refSplitClasses(classes []*refClass, kmax int) []*refClass {
	out := make([]*refClass, 0, len(classes))
	for _, cl := range classes {
		for len(cl.switches) > kmax {
			out = append(out, &refClass{ports: cl.ports, pop: cl.pop, switches: cl.switches[:kmax]})
			cl = &refClass{ports: cl.ports, pop: cl.pop, switches: cl.switches[kmax:]}
		}
		out = append(out, cl)
	}
	return out
}

func refPickGroup(classes []*refClass, k, r int) ([]int, bitmap.Bitmap) {
	seed := 0
	for i, cl := range classes[1:] {
		s := classes[seed]
		if len(cl.switches) > len(s.switches) ||
			(len(cl.switches) == len(s.switches) && cl.pop < s.pop) {
			seed = i + 1
		}
	}
	picked := []int{seed}
	budget := k - len(classes[seed].switches)
	union := classes[seed].ports.Clone()
	for budget > 0 {
		best, bestGrowth := -1, -1
		for i, cl := range classes {
			if i == seed || refContains(picked, i) || len(cl.switches) > budget {
				continue
			}
			growth := cl.ports.AndNot(union).PopCount()
			if best != -1 && growth >= bestGrowth {
				continue
			}
			// R check against the prospective union: total redundant
			// transmissions across all members of the rule.
			newUnion := union.Or(cl.ports)
			sum := len(cl.switches) * cl.ports.HammingDistance(newUnion)
			for _, pi := range picked {
				sum += len(classes[pi].switches) * classes[pi].ports.HammingDistance(newUnion)
			}
			if sum > r {
				continue
			}
			best, bestGrowth = i, growth
		}
		if best == -1 {
			break
		}
		picked = append(picked, best)
		union.OrInPlace(classes[best].ports)
		budget -= len(classes[best].switches)
	}
	sort.Ints(picked)
	return picked, union
}

func refContains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func refRemoveClasses(classes []*refClass, idxs []int) []*refClass {
	drop := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		drop[i] = true
	}
	out := classes[:0]
	for i, cl := range classes {
		if !drop[i] {
			out = append(out, cl)
		}
	}
	return out
}
