// Package chaos is the deterministic fault-injection subsystem: a
// seeded Injector that all three fabric tiers consult at every link
// crossing (via the dataplane.FaultInjector hook), a FaultPlan that
// scripts failures and repairs against a logical clock, and a Monitor
// that detects failures from probe loss — rather than being told —
// and drives the controller through the §3.3 recovery path.
//
// Faults are drawn from a splitmix64 stream seeded by Config.Seed, so
// a chaos run on the synchronous fabric is exactly reproducible; on
// the concurrent tiers the fault *stream* is reproducible but its
// assignment to packets depends on goroutine scheduling. Like the
// flight recorder, an attached-but-disabled injector adds one nil
// check plus one atomic load per crossing and zero allocations.
package chaos

import (
	"sync"
	"sync/atomic"

	"elmo/internal/dataplane"
	"elmo/internal/trace"
)

// Config sets the ambient fault probabilities of an Injector. All
// probabilities are per link crossing, in [0, 1].
type Config struct {
	// Seed initializes the deterministic fault stream.
	Seed uint64
	// Drop is the ambient loss probability on every link.
	Drop float64
	// Duplicate is the probability a crossing forwards a second copy.
	Duplicate float64
	// Corrupt is the probability the wire bytes are flipped in flight.
	Corrupt float64
	// Reorder is the probability a packet is held back and released
	// after later traffic (implemented as a random delay of 1..MaxDelay
	// fabric steps).
	Reorder float64
	// MaxDelay bounds the reorder delay in fabric steps (sync fabric:
	// forwarding-loop iterations; live fabrics: milliseconds). Zero
	// means DefaultMaxDelay.
	MaxDelay int
}

// DefaultMaxDelay is the reorder delay bound when Config.MaxDelay is 0.
const DefaultMaxDelay = 4

// endpoint keys the per-switch loss overrides.
type endpoint struct {
	tier dataplane.LinkTier
	id   int32
}

// Stats is a snapshot of the faults an Injector has fired.
type Stats struct {
	Crossings int64
	Drops     int64
	Dups      int64
	Corrupts  int64
	Delays    int64
}

// Injector implements dataplane.FaultInjector: one instance is shared
// by every switch and link of a fabric tier. Ambient probabilities
// come from Config; per-switch and per-link loss overrides model gray
// failures (0 < loss < 1) and dead devices (loss = 1), and are what
// scripted FaultPlans toggle.
type Injector struct {
	cfg      Config
	maxDelay int32

	enabled atomic.Bool
	state   atomic.Uint64 // splitmix64 position

	// overrides is set when any switch/link loss override or partition
	// exists, so the common path skips the lock entirely.
	overrides  atomic.Bool
	mu         sync.RWMutex
	switchLoss map[endpoint]float64
	linkLoss   map[dataplane.Link]float64
	// partitioned holds hosts currently cut off from the rest of the
	// fabric (see partition.go). Kept separate from switchLoss so Heal
	// restores exactly the partition without clearing crash overrides.
	partitioned map[int32]bool

	crossings atomic.Int64
	drops     atomic.Int64
	dups      atomic.Int64
	corrupts  atomic.Int64
	delays    atomic.Int64

	// Tracer receives CatChaos events for every fault fired; set while
	// the fabric is quiet. Nil or disabled costs one check per fault.
	Tracer trace.Recorder

	plan     FaultPlan
	planStep int
}

// New creates an Injector in the disabled state.
func New(cfg Config) *Injector {
	inj := &Injector{
		cfg:         cfg,
		maxDelay:    int32(cfg.MaxDelay),
		switchLoss:  make(map[endpoint]float64),
		linkLoss:    make(map[dataplane.Link]float64),
		partitioned: make(map[int32]bool),
	}
	if inj.maxDelay <= 0 {
		inj.maxDelay = DefaultMaxDelay
	}
	inj.state.Store(cfg.Seed)
	return inj
}

// Enable arms the injector. Disable disarms it; overrides and the
// fault stream position are retained.
func (inj *Injector) Enable()  { inj.enabled.Store(true) }
func (inj *Injector) Disable() { inj.enabled.Store(false) }

// Active reports whether faults can fire: one atomic load.
func (inj *Injector) Active() bool { return inj.enabled.Load() }

// next advances the splitmix64 stream and returns the next value.
func (inj *Injector) next() uint64 {
	x := inj.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// chance draws one value and reports true with probability p.
func (inj *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		inj.next() // keep the stream position independent of p
		return true
	}
	return float64(inj.next()>>11)/(1<<53) < p
}

// Chance draws one value from the fault stream and reports true with
// probability p — for callers (e.g. reliable-session control-loss
// hooks) that want extra faults tied to the same seed.
func (inj *Injector) Chance(p float64) bool { return inj.chance(p) }

// SetSwitchLoss sets (or, with loss <= 0, clears) a loss override on
// every link touching the switch: loss = 1 kills the device, a
// fraction models a gray failure.
func (inj *Injector) SetSwitchLoss(tier dataplane.LinkTier, id int32, loss float64) {
	inj.mu.Lock()
	if loss <= 0 {
		delete(inj.switchLoss, endpoint{tier, id})
	} else {
		inj.switchLoss[endpoint{tier, id}] = loss
	}
	inj.refreshOverridesLocked()
	inj.mu.Unlock()
}

// refreshOverridesLocked recomputes the overrides fast-path flag; the
// caller holds mu.
func (inj *Injector) refreshOverridesLocked() {
	inj.overrides.Store(len(inj.switchLoss)+len(inj.linkLoss)+len(inj.partitioned) > 0)
}

// SetLinkLoss sets (or clears) a loss override on one directed link.
func (inj *Injector) SetLinkLoss(l dataplane.Link, loss float64) {
	inj.mu.Lock()
	if loss <= 0 {
		delete(inj.linkLoss, l)
	} else {
		inj.linkLoss[l] = loss
	}
	inj.refreshOverridesLocked()
	inj.mu.Unlock()
}

// SwitchLoss returns the current loss override for a switch (0 if none).
func (inj *Injector) SwitchLoss(tier dataplane.LinkTier, id int32) float64 {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return inj.switchLoss[endpoint{tier, id}]
}

// ClearOverrides removes every switch and link loss override. Active
// partitions are NOT cleared — they are a distinct fault class, undone
// only by Heal.
func (inj *Injector) ClearOverrides() {
	inj.mu.Lock()
	inj.switchLoss = make(map[endpoint]float64)
	inj.linkLoss = make(map[dataplane.Link]float64)
	inj.refreshOverridesLocked()
	inj.mu.Unlock()
}

// overrideLoss returns the strongest loss override touching the link.
func (inj *Injector) overrideLoss(l dataplane.Link) float64 {
	if !inj.overrides.Load() {
		return 0
	}
	inj.mu.RLock()
	loss := inj.switchLoss[endpoint{l.FromTier, l.From}]
	if o := inj.switchLoss[endpoint{l.ToTier, l.To}]; o > loss {
		loss = o
	}
	if o := inj.linkLoss[l]; o > loss {
		loss = o
	}
	// A partitioned host drops everything entering or leaving it: the
	// symmetric cut that makes split brain possible (the host is alive,
	// just unreachable — and it can't reach anyone either).
	if (l.FromTier == dataplane.LinkHost && inj.partitioned[l.From]) ||
		(l.ToTier == dataplane.LinkHost && inj.partitioned[l.To]) {
		loss = 1
	}
	inj.mu.RUnlock()
	return loss
}

// Cross returns the fault verdict for one packet crossing a link.
// Health probes (dataplane.ProbeVNI) see only the loss overrides —
// they measure device health, not ambient congestion noise — so
// detection thresholds stay crisp under background chaos.
func (inj *Injector) Cross(l dataplane.Link, vni, group uint32) dataplane.FaultVerdict {
	var v dataplane.FaultVerdict
	if !inj.enabled.Load() {
		return v
	}
	inj.crossings.Add(1)
	loss := inj.overrideLoss(l)
	probe := vni == dataplane.ProbeVNI
	if !probe && inj.cfg.Drop > loss {
		loss = inj.cfg.Drop
	}
	if inj.chance(loss) {
		v.Drop = true
		inj.drops.Add(1)
		inj.traceFault(trace.KindFaultDrop, l, vni, group, 0)
		return v
	}
	if probe {
		return v
	}
	if inj.chance(inj.cfg.Duplicate) {
		v.Duplicate = true
		inj.dups.Add(1)
		inj.traceFault(trace.KindFaultDup, l, vni, group, 0)
	}
	if inj.chance(inj.cfg.Corrupt) {
		v.Corrupt = true
		inj.corrupts.Add(1)
		inj.traceFault(trace.KindFaultCorrupt, l, vni, group, 0)
	}
	if inj.chance(inj.cfg.Reorder) {
		v.DelaySteps = 1 + int32(inj.next()%uint64(inj.maxDelay))
		inj.delays.Add(1)
		inj.traceFault(trace.KindFaultDelay, l, vni, group, int64(v.DelaySteps))
	}
	return v
}

// CorruptWire flips 1–3 bytes of the frame in place, positions drawn
// from the fault stream.
func (inj *Injector) CorruptWire(frame []byte) {
	if len(frame) == 0 {
		return
	}
	n := 1 + int(inj.next()%3)
	for k := 0; k < n; k++ {
		pos := int(inj.next() % uint64(len(frame)))
		frame[pos] ^= byte(inj.next() | 1)
	}
}

// traceFault records one injected fault against the receiving end of
// the link.
func (inj *Injector) traceFault(kind trace.Kind, l dataplane.Link, vni, group uint32, arg int64) {
	if !trace.On(inj.Tracer, trace.CatChaos) {
		return
	}
	inj.Tracer.Record(trace.Event{
		Cat: trace.CatChaos, Kind: kind,
		Tier: traceTier(l.ToTier), Switch: l.To,
		VNI: vni, Group: group, Arg: arg,
	})
}

// traceTier maps a link tier to the trace tier enum.
func traceTier(t dataplane.LinkTier) trace.Tier {
	switch t {
	case dataplane.LinkLeaf:
		return trace.TierLeaf
	case dataplane.LinkSpine:
		return trace.TierSpine
	case dataplane.LinkCore:
		return trace.TierCore
	default:
		return trace.TierHost
	}
}

// Stats snapshots the fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Crossings: inj.crossings.Load(),
		Drops:     inj.drops.Load(),
		Dups:      inj.dups.Load(),
		Corrupts:  inj.corrupts.Load(),
		Delays:    inj.delays.Load(),
	}
}
