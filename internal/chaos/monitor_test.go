package chaos

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"elmo/internal/dataplane"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

func noSleep(time.Duration) {}

// TestMonitorDetectsSpineFlap kills a spine at the physical layer (an
// injector loss override — the controller is never told directly),
// checks the monitor detects it from probe loss after FailAfter
// consecutive rounds, refreshes the watched flow around the failure,
// and on repair converges the sender header back to the exact
// pre-failure encoding.
func TestMonitorDetectsSpineFlap(t *testing.T) {
	topo, ctrl, fab, inj, key := chaosFixture(t, Config{Seed: 1})
	inj.Enable()
	lay := header.LayoutFor(topo)
	pre, err := ctrl.HeaderFor(key, fixtureSender)
	if err != nil {
		t.Fatal(err)
	}
	preWire, err := header.Encode(lay, pre)
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.New(trace.Config{})
	rec.Enable()
	mon, err := NewMonitor(ctrl, fab, MonitorConfig{Sleep: noSleep, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch(key, fixtureSender)

	if tr := mon.ProbeRound(); len(tr) != 0 {
		t.Fatalf("healthy fabric produced transitions: %+v", tr)
	}

	// Physically kill spine 0 (the sender pod's plane-0 spine).
	inj.SetSwitchLoss(dataplane.LinkSpine, 0, 1.0)
	if tr := mon.ProbeRound(); len(tr) != 0 {
		t.Fatalf("declared after 1 lost round (FailAfter=2): %+v", tr)
	}
	tr := mon.ProbeRound()
	if len(tr) != 1 || tr[0].Tier != dataplane.LinkSpine || tr[0].ID != 0 || !tr[0].Down {
		t.Fatalf("want spine-0 down transition, got %+v", tr)
	}
	if !mon.SpineDown(0) || !ctrl.Failures().SpineFailed(0) {
		t.Fatal("detection did not reach the controller's failure set")
	}

	// The refreshed header routes around the dead spine: multicast
	// still reaches every receiver mid-failure.
	mid, err := ctrl.HeaderFor(key, fixtureSender)
	if err != nil {
		t.Fatal(err)
	}
	if mid.ULeaf.Multipath {
		t.Fatal("failure-mode header still multipaths")
	}
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	d, err := fab.Send(fixtureSender, addr, []byte("mid-failure"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range fixtureReceivers {
		if _, ok := d.Received[h]; !ok {
			t.Fatalf("host %d lost mid-failure delivery", h)
		}
	}

	// Repair the device; after RepairAfter clean rounds the monitor
	// reverses the declaration and the encoding converges byte-for-byte.
	inj.SetSwitchLoss(dataplane.LinkSpine, 0, 0)
	mon.ProbeRound()
	tr = mon.ProbeRound()
	if len(tr) != 1 || tr[0].Down {
		t.Fatalf("want spine-0 repair transition, got %+v", tr)
	}
	if mon.SpineDown(0) || ctrl.Failures().SpineFailed(0) {
		t.Fatal("repair did not clear the failure")
	}
	post, err := ctrl.HeaderFor(key, fixtureSender)
	if err != nil {
		t.Fatal(err)
	}
	postWire, err := header.Encode(lay, post)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preWire, postWire) {
		t.Fatalf("post-repair encoding differs from pre-failure:\npre  %x\npost %x", preWire, postWire)
	}

	var fails, repairs int
	for _, ev := range rec.Snapshot() {
		switch ev.Kind {
		case trace.KindDetectFail:
			fails++
		case trace.KindDetectRepair:
			repairs++
		}
	}
	if fails != 1 || repairs != 1 {
		t.Fatalf("want 1 detect-fail + 1 detect-repair event, got %d/%d", fails, repairs)
	}
}

// TestMonitorDetectsCoreFailure: a dead core is detected by the
// cross-pod probes and declared to the controller.
func TestMonitorDetectsCoreFailure(t *testing.T) {
	_, ctrl, fab, inj, key := chaosFixture(t, Config{Seed: 2})
	inj.Enable()
	mon, err := NewMonitor(ctrl, fab, MonitorConfig{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch(key, fixtureSender)

	inj.SetSwitchLoss(dataplane.LinkCore, 3, 1.0)
	mon.ProbeRound()
	tr := mon.ProbeRound()
	if len(tr) != 1 || tr[0].Tier != dataplane.LinkCore || tr[0].ID != 3 || !tr[0].Down {
		t.Fatalf("want core-3 down transition, got %+v", tr)
	}
	if !mon.CoreDown(3) || !ctrl.Failures().CoreFailed(3) {
		t.Fatal("core detection did not reach the controller")
	}
	inj.SetSwitchLoss(dataplane.LinkCore, 3, 0)
	mon.ProbeRound()
	if tr := mon.ProbeRound(); len(tr) != 1 || tr[0].Down {
		t.Fatalf("want core-3 repair transition, got %+v", tr)
	}
}

// TestMonitorDegradesToUnicast kills both spines of the sender's pod:
// the controller finds no path (§3.3), the monitor pulls the sender
// flow so publishers fall back to unicast, and repair restores
// multicast.
func TestMonitorDegradesToUnicast(t *testing.T) {
	_, ctrl, fab, inj, key := chaosFixture(t, Config{Seed: 3})
	inj.Enable()
	mon, err := NewMonitor(ctrl, fab, MonitorConfig{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch(key, fixtureSender)
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}

	inj.SetSwitchLoss(dataplane.LinkSpine, 0, 1.0)
	inj.SetSwitchLoss(dataplane.LinkSpine, 1, 1.0)
	mon.ProbeRound()
	mon.ProbeRound()
	if !mon.SpineDown(0) || !mon.SpineDown(1) {
		t.Fatal("pod-0 spines not both detected")
	}
	if !mon.Degraded(key, fixtureSender) {
		t.Fatal("flow with no healthy path not degraded")
	}
	if _, err := fab.Send(fixtureSender, addr, []byte("x")); !errors.Is(err, dataplane.ErrNoSenderFlow) {
		t.Fatalf("degraded flow still has a sender flow (err=%v)", err)
	}

	inj.ClearOverrides()
	mon.ProbeRound()
	mon.ProbeRound()
	if mon.Degraded(key, fixtureSender) {
		t.Fatal("flow still degraded after repair")
	}
	d, err := fab.Send(fixtureSender, addr, []byte("restored"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range fixtureReceivers {
		if _, ok := d.Received[h]; !ok {
			t.Fatalf("host %d missing post-repair delivery", h)
		}
	}
}

// TestMonitorRecoveryRetryBackoff: transient install failures are
// retried with exponential backoff; a permanently failing install
// exhausts the budget and is counted, not spun on.
func TestMonitorRecoveryRetryBackoff(t *testing.T) {
	_, ctrl, fab, inj, key := chaosFixture(t, Config{Seed: 4})
	inj.Enable()
	var sleeps []time.Duration
	installs := 0
	mon, err := NewMonitor(ctrl, fab, MonitorConfig{
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
		InstallFn: func(fl MonitoredFlow, hdr *header.Header) error {
			installs++
			if installs <= 2 {
				return errors.New("transient install failure")
			}
			return fab.Hypervisors[fl.Sender].InstallSenderFlow(
				dataplane.GroupAddr{VNI: fl.Key.Tenant, Group: fl.Key.Group}, hdr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch(key, fixtureSender)

	inj.SetSwitchLoss(dataplane.LinkSpine, 0, 1.0)
	mon.ProbeRound()
	mon.ProbeRound()
	if installs != 3 {
		t.Fatalf("want 3 install attempts (2 transient failures), got %d", installs)
	}
	if mon.RecoveryRetries != 2 || mon.RefreshFailures != 0 {
		t.Fatalf("retries=%d refreshFailures=%d, want 2/0", mon.RecoveryRetries, mon.RefreshFailures)
	}
	want := []time.Duration{DefaultBackoffBase, 2 * DefaultBackoffBase}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", sleeps, want)
	}

	// Permanent failure: budget exhausts, RefreshFailures increments.
	mon2, err := NewMonitor(ctrl, fab, MonitorConfig{
		Sleep:              noSleep,
		MaxRecoveryRetries: 2,
		InstallFn: func(MonitoredFlow, *header.Header) error {
			return errors.New("permanent install failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon2.Watch(key, fixtureSender)
	inj.SetSwitchLoss(dataplane.LinkSpine, 0, 0)
	inj.SetSwitchLoss(dataplane.LinkSpine, 2, 1.0)
	mon2.ProbeRound()
	mon2.ProbeRound()
	if mon2.RefreshFailures != 1 {
		t.Fatalf("want 1 exhausted refresh, got %d", mon2.RefreshFailures)
	}
}

// TestMonitorGrayFailure: a 50% lossy spine flaps probes but the
// consecutive-round thresholds keep detection stable — it is declared
// failed only once probe loss is persistent, and ambient chaos on
// ordinary traffic never triggers declarations (probes skip ambient
// faults).
func TestMonitorAmbientChaosNoFalsePositives(t *testing.T) {
	_, ctrl, fab, inj, key := chaosFixture(t, Config{
		Seed: 5, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1, Reorder: 0.2,
	})
	inj.Enable()
	mon, err := NewMonitor(ctrl, fab, MonitorConfig{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch(key, fixtureSender)
	for i := 0; i < 20; i++ {
		if tr := mon.ProbeRound(); len(tr) != 0 {
			t.Fatalf("round %d: ambient chaos caused declarations: %+v", i, tr)
		}
	}
	for s := 0; s < fab.Topology().NumSpines(); s++ {
		if mon.SpineDown(topology.SpineID(s)) {
			t.Fatalf("spine %d falsely down", s)
		}
	}
	_ = ctrl
	_ = key
}
