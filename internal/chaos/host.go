package chaos

import (
	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

// CrashHost severs every link touching a host's hypervisor — the
// chaos-model equivalent of the machine dying. It enables the injector
// if needed (a zero-probability Config means only overrides fire).
func (inj *Injector) CrashHost(h topology.HostID) {
	inj.SetSwitchLoss(dataplane.LinkHost, int32(h), 1.0)
	inj.Enable()
}

// RestoreHost clears a CrashHost override, reconnecting the machine.
func (inj *Injector) RestoreHost(h topology.HostID) {
	inj.SetSwitchLoss(dataplane.LinkHost, int32(h), 0)
}

// HostDown reports whether the host is currently crashed.
func (inj *Injector) HostDown(h topology.HostID) bool {
	return inj.SwitchLoss(dataplane.LinkHost, int32(h)) >= 1
}
