package chaos

import (
	"testing"

	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

// chaosFixture builds the paper-example fabric with an attached (but
// not yet enabled) injector, and one installed multicast group:
// tenant 9 group 1, sender host 0, the figure-3 receiver spread.
func chaosFixture(t *testing.T, cfg Config) (*topology.Topology, *controller.Controller, *fabric.Fabric, *Injector, controller.GroupKey) {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	ccfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, ccfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	inj := New(cfg)
	fab.SetInjector(inj)

	key := controller.GroupKey{Tenant: 9, Group: 1}
	members := map[topology.HostID]controller.Role{fixtureSender: controller.RoleSender}
	for _, h := range fixtureReceivers {
		members[h] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	return topo, ctrl, fab, inj, key
}

const fixtureSender = topology.HostID(0)

// fixtureReceivers spans the sender's leaf (1), the pod's other leaf
// (9), and three remote pods (17, 40, 56) — exercising every tier.
var fixtureReceivers = []topology.HostID{1, 9, 17, 40, 56}
