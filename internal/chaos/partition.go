package chaos

import "elmo/internal/topology"

// Network partitions. A partition isolates a set of hosts from the
// rest of the fabric symmetrically: every packet entering OR leaving a
// partitioned host's NIC link is dropped, probes included. Unlike
// CrashHost, the host itself keeps running — its controller still
// heartbeats, still believes it leads — which is exactly the scenario
// leadership fencing exists for: the majority side promotes a
// successor while the minority side's leader is alive and writing.
//
// Partition state is held apart from the loss overrides so the two
// fault classes compose: Heal reconnects the partitioned hosts without
// resurrecting hosts killed by CrashHost, and ClearOverrides repairs
// gray failures without silently mending a partition.

// Partition cuts the given hosts off from the rest of the fabric
// (bidirectionally), arming the injector if needed. Calling it again
// extends the partitioned set.
func (inj *Injector) Partition(hosts ...topology.HostID) {
	inj.mu.Lock()
	for _, h := range hosts {
		inj.partitioned[int32(h)] = true
	}
	inj.refreshOverridesLocked()
	inj.mu.Unlock()
	inj.Enable()
}

// Heal removes the partition entirely: every partitioned host is
// reconnected. Loss overrides (crashes, gray failures) are untouched.
func (inj *Injector) Heal() {
	inj.mu.Lock()
	inj.partitioned = make(map[int32]bool)
	inj.refreshOverridesLocked()
	inj.mu.Unlock()
}

// Partitioned reports whether a host is currently cut off.
func (inj *Injector) Partitioned(h topology.HostID) bool {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return inj.partitioned[int32(h)]
}

// PartitionSize reports how many hosts are currently partitioned.
func (inj *Injector) PartitionSize() int {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return len(inj.partitioned)
}
