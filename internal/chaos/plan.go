package chaos

import (
	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

// PlanEvent is one scripted fault transition: at logical step Step,
// set the loss override of a switch (or, when Link is non-nil, of one
// directed link) to Loss. Loss = 1 kills the device, a fraction grays
// it, and 0 repairs it — so a link flap is a pair of events (fail at
// step N, repair at step M). When PartitionHosts is non-empty the
// event instead cuts those hosts off bidirectionally (see
// partition.go); when HealPartition is set it reconnects them all.
type PlanEvent struct {
	Step   int
	Tier   dataplane.LinkTier
	Switch int32
	Loss   float64
	Link   *dataplane.Link
	// PartitionHosts, when non-empty, makes this event a symmetric
	// partition of the named hosts instead of a loss transition.
	PartitionHosts []topology.HostID
	// HealPartition, when set, makes this event heal every partition.
	HealPartition bool
}

// FaultPlan is a schedule of fault transitions against the injector's
// logical clock, advanced by Step(). Events may appear in any order;
// every event whose Step matches the clock is applied on that step.
type FaultPlan []PlanEvent

// LoadPlan installs a schedule and resets the logical clock to zero.
func (inj *Injector) LoadPlan(p FaultPlan) {
	inj.mu.Lock()
	inj.plan = p
	inj.planStep = 0
	inj.mu.Unlock()
}

// Step advances the logical clock one tick and applies every plan
// event due at the new step, returning the applied events. Drive it
// from the workload loop (e.g. once per message sent) so the schedule
// is phase-locked to the traffic regardless of wall-clock speed.
func (inj *Injector) Step() []PlanEvent {
	inj.mu.Lock()
	inj.planStep++
	now := inj.planStep
	var due []PlanEvent
	for _, ev := range inj.plan {
		if ev.Step == now {
			due = append(due, ev)
		}
	}
	inj.mu.Unlock()
	for _, ev := range due {
		switch {
		case ev.HealPartition:
			inj.Heal()
		case len(ev.PartitionHosts) > 0:
			inj.Partition(ev.PartitionHosts...)
		case ev.Link != nil:
			inj.SetLinkLoss(*ev.Link, ev.Loss)
		default:
			inj.SetSwitchLoss(ev.Tier, ev.Switch, ev.Loss)
		}
	}
	return due
}

// Now returns the logical clock's current step.
func (inj *Injector) Now() int {
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return inj.planStep
}
