package chaos

import (
	"time"

	"elmo/internal/bitmap"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// MonitorConfig tunes failure detection and recovery.
type MonitorConfig struct {
	// FailAfter is how many consecutive lost probe rounds declare a
	// switch failed; RepairAfter how many consecutive successful rounds
	// declare it repaired. Zero means DefaultFailAfter/DefaultRepairAfter.
	FailAfter   int
	RepairAfter int
	// MaxRecoveryRetries bounds the re-attempts of a failed flow
	// refresh (header recompute + install); BackoffBase is the first
	// retry's sleep, doubled per attempt. Zero means the defaults.
	MaxRecoveryRetries int
	BackoffBase        time.Duration
	// Sleep replaces time.Sleep for backoff pacing (tests pass a no-op).
	Sleep func(time.Duration)
	// InstallFn replaces the default sender-flow install (write the
	// encoded header into the sender's hypervisor); tests inject
	// transient install errors through it.
	InstallFn func(fl MonitoredFlow, hdr *header.Header) error
	// Tracer receives detect-fail/detect-repair events.
	Tracer trace.Recorder
}

// Defaults for MonitorConfig zero fields.
const (
	DefaultFailAfter          = 2
	DefaultRepairAfter        = 2
	DefaultMaxRecoveryRetries = 3
	DefaultBackoffBase        = time.Millisecond
)

// MonitoredFlow is one (group, sender) whose flow the monitor keeps
// consistent with detected fabric health.
type MonitoredFlow struct {
	Key    controller.GroupKey
	Sender topology.HostID
}

// Transition is one health verdict the monitor reached.
type Transition struct {
	Tier dataplane.LinkTier
	ID   int32
	Down bool
	// Impacted is the controller's count of groups the declaration
	// touched.
	Impacted int
}

// probe is a pinned source-routed liveness packet through one switch.
type probe struct {
	src    topology.HostID
	target topology.HostID
	addr   dataplane.GroupAddr
}

// switchHealth is the detection state for one monitored switch.
type switchHealth struct {
	fails int
	oks   int
	down  bool
}

// Monitor detects switch failures from probe loss — rather than being
// told via FailSpine/FailCore — and drives recovery: on a detection it
// declares the failure to the controller, recomputes the headers of
// every watched flow with bounded retry and exponential backoff, and
// degrades flows the controller can no longer route (ErrNoPath) to
// unicast by removing their sender flows; on detected repair it
// reverses all of it.
//
// Each spine probe is a source-routed packet pinned through that spine
// (explicit upstream ports, §3.3 mechanism) between two hosts of its
// pod; each core probe is pinned through that core between two pods.
// Probes ride dataplane.ProbeVNI: the fabrics let them bypass
// *declared* failure drops, so what a probe measures is the physical
// device (the injector's loss overrides), which is exactly the
// detection-vs-declaration distinction.
type Monitor struct {
	topo *topology.Topology
	ctrl *controller.Controller
	fab  *fabric.Fabric
	cfg  MonitorConfig

	spineProbes []probe
	coreProbes  []probe
	spines      []switchHealth
	cores       []switchHealth

	flows    []MonitoredFlow
	degraded map[MonitoredFlow]bool

	// Rounds counts probe rounds run; RecoveryRetries counts flow
	// refresh attempts beyond the first; RefreshFailures counts flows
	// whose refresh exhausted its retry budget.
	Rounds          int
	RecoveryRetries int
	RefreshFailures int
}

// NewMonitor builds the monitor and installs its probe flows (sender
// flows on probe source hosts, receive filters on probe targets).
func NewMonitor(ctrl *controller.Controller, fab *fabric.Fabric, cfg MonitorConfig) (*Monitor, error) {
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.RepairAfter <= 0 {
		cfg.RepairAfter = DefaultRepairAfter
	}
	if cfg.MaxRecoveryRetries <= 0 {
		cfg.MaxRecoveryRetries = DefaultMaxRecoveryRetries
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	m := &Monitor{
		topo:     fab.Topology(),
		ctrl:     ctrl,
		fab:      fab,
		cfg:      cfg,
		degraded: make(map[MonitoredFlow]bool),
	}
	m.spines = make([]switchHealth, m.topo.NumSpines())
	m.cores = make([]switchHealth, m.topo.NumCores())
	if err := m.buildSpineProbes(); err != nil {
		return nil, err
	}
	if err := m.buildCoreProbes(); err != nil {
		return nil, err
	}
	return m, nil
}

// probeAddr allocates the probe group address for a monitored switch;
// spine s gets group s, core c gets group NumSpines + c.
func (m *Monitor) probeAddr(group int) dataplane.GroupAddr {
	return dataplane.GroupAddr{VNI: dataplane.ProbeVNI, Group: uint32(group)}
}

// buildSpineProbes pins one probe through every spine: up from the
// pod's first leaf on the spine's plane, down to a second leaf (or the
// same leaf in single-leaf pods).
func (m *Monitor) buildSpineProbes() error {
	lay := header.LayoutFor(m.topo)
	m.spineProbes = make([]probe, m.topo.NumSpines())
	for s := 0; s < m.topo.NumSpines(); s++ {
		spine := topology.SpineID(s)
		pod := m.topo.SpinePod(spine)
		plane := m.topo.SpinePlane(spine)
		srcLeaf := m.topo.LeafAt(pod, 0)
		targetIdx := 0
		if m.topo.Config().LeavesPerPod > 1 {
			targetIdx = 1
		}
		targetLeaf := m.topo.LeafAt(pod, targetIdx)
		src := m.topo.HostAt(srcLeaf, 0)
		target := m.topo.HostAt(targetLeaf, 0)
		hdr := &header.Header{
			ULeaf:  &header.UpstreamRule{Down: bitmap.New(lay.LeafDown), Up: bitmap.FromPorts(lay.LeafUp, plane)},
			USpine: &header.UpstreamRule{Down: bitmap.FromPorts(lay.SpineDown, targetIdx), Up: bitmap.New(lay.SpineUp)},
			DLeaf: []header.PRule{{
				Switches: []uint16{uint16(targetLeaf)},
				Bitmap:   bitmap.FromPorts(lay.LeafDown, 0),
			}},
		}
		p := probe{src: src, target: target, addr: m.probeAddr(s)}
		if err := m.installProbe(p, hdr); err != nil {
			return err
		}
		m.spineProbes[s] = p
	}
	return nil
}

// buildCoreProbes pins one probe through every core, from pod 0 to
// pod 1 (single-pod fabrics carry no core traffic and get no core
// probes).
func (m *Monitor) buildCoreProbes() error {
	lay := header.LayoutFor(m.topo)
	m.coreProbes = make([]probe, m.topo.NumCores())
	if m.topo.NumPods() < 2 {
		return nil
	}
	cfg := m.topo.Config()
	for c := 0; c < m.topo.NumCores(); c++ {
		core := topology.CoreID(c)
		plane := m.topo.CorePlane(core)
		idxInPlane := c - plane*cfg.CoresPerPlane
		srcPod, dstPod := topology.PodID(0), topology.PodID(1)
		srcLeaf := m.topo.LeafAt(srcPod, 0)
		dstLeaf := m.topo.LeafAt(dstPod, 0)
		src := m.topo.HostAt(srcLeaf, 0)
		target := m.topo.HostAt(dstLeaf, 0)
		pods := bitmap.FromPorts(lay.CoreDown, int(dstPod))
		hdr := &header.Header{
			ULeaf:  &header.UpstreamRule{Down: bitmap.New(lay.LeafDown), Up: bitmap.FromPorts(lay.LeafUp, plane)},
			USpine: &header.UpstreamRule{Down: bitmap.New(lay.SpineDown), Up: bitmap.FromPorts(lay.SpineUp, idxInPlane)},
			Core:   &pods,
			DSpine: []header.PRule{{
				Switches: []uint16{uint16(dstPod)},
				Bitmap:   bitmap.FromPorts(lay.SpineDown, 0),
			}},
			DLeaf: []header.PRule{{
				Switches: []uint16{uint16(dstLeaf)},
				Bitmap:   bitmap.FromPorts(lay.LeafDown, 0),
			}},
		}
		p := probe{src: src, target: target, addr: m.probeAddr(m.topo.NumSpines() + c)}
		if err := m.installProbe(p, hdr); err != nil {
			return err
		}
		m.coreProbes[c] = p
	}
	return nil
}

func (m *Monitor) installProbe(p probe, hdr *header.Header) error {
	if err := m.fab.Hypervisors[p.src].InstallSenderFlow(p.addr, hdr); err != nil {
		return err
	}
	m.fab.Hypervisors[p.target].SetReceiving(p.addr, true)
	return nil
}

// Watch registers a flow the monitor refreshes on every detected
// failure or repair.
func (m *Monitor) Watch(key controller.GroupKey, sender topology.HostID) {
	m.flows = append(m.flows, MonitoredFlow{Key: key, Sender: sender})
}

// Degraded reports whether a watched flow is currently degraded to
// unicast (no failure-free multicast path).
func (m *Monitor) Degraded(key controller.GroupKey, sender topology.HostID) bool {
	return m.degraded[MonitoredFlow{Key: key, Sender: sender}]
}

// SpineDown / CoreDown report the monitor's current belief.
func (m *Monitor) SpineDown(s topology.SpineID) bool { return m.spines[s].down }
func (m *Monitor) CoreDown(c topology.CoreID) bool   { return m.cores[c].down }

// sendProbe fires one probe and reports whether it arrived.
func (m *Monitor) sendProbe(p probe) bool {
	d, err := m.fab.Send(p.src, p.addr, []byte("elmo-probe"))
	if err != nil {
		return false
	}
	_, ok := d.Received[p.target]
	return ok
}

// ProbeRound probes every monitored switch once, updates the detection
// state machines, and acts on any transition (declare to the
// controller, refresh watched flows). It returns the transitions that
// fired this round.
func (m *Monitor) ProbeRound() []Transition {
	m.Rounds++
	var out []Transition
	for s := range m.spineProbes {
		ok := m.sendProbe(m.spineProbes[s])
		if tr, fired := m.judge(&m.spines[s], ok, dataplane.LinkSpine, int32(s)); fired {
			out = append(out, tr)
		}
	}
	for c := range m.coreProbes {
		p := m.coreProbes[c]
		if p.addr.VNI == 0 {
			continue // single-pod fabric: no core probes
		}
		// A core probe transits one spine in each pod it crosses; while
		// either is believed down the probe's fate says nothing about
		// the core, so skip the round (gray-failure attribution).
		plane := m.topo.CorePlane(topology.CoreID(c))
		if m.spines[m.topo.SpineAt(0, plane)].down || m.spines[m.topo.SpineAt(1, plane)].down {
			continue
		}
		ok := m.sendProbe(p)
		if tr, fired := m.judge(&m.cores[c], ok, dataplane.LinkCore, int32(c)); fired {
			out = append(out, tr)
		}
	}
	return out
}

// judge advances one switch's detection state machine and acts on a
// verdict flip.
func (m *Monitor) judge(h *switchHealth, ok bool, tier dataplane.LinkTier, id int32) (Transition, bool) {
	if ok {
		h.oks++
		h.fails = 0
		if h.down && h.oks >= m.cfg.RepairAfter {
			h.down = false
			return m.declare(tier, id, false, h.oks), true
		}
		return Transition{}, false
	}
	h.fails++
	h.oks = 0
	if !h.down && h.fails >= m.cfg.FailAfter {
		h.down = true
		return m.declare(tier, id, true, h.fails), true
	}
	return Transition{}, false
}

// declare tells the controller about a detected transition and
// refreshes every watched flow.
func (m *Monitor) declare(tier dataplane.LinkTier, id int32, down bool, rounds int) Transition {
	var impacted int
	switch {
	case tier == dataplane.LinkSpine && down:
		impacted = m.ctrl.FailSpine(topology.SpineID(id))
	case tier == dataplane.LinkSpine && !down:
		impacted = m.ctrl.RepairSpine(topology.SpineID(id))
	case tier == dataplane.LinkCore && down:
		impacted = m.ctrl.FailCore(topology.CoreID(id))
	default:
		impacted = m.ctrl.RepairCore(topology.CoreID(id))
	}
	kind := trace.KindDetectRepair
	if down {
		kind = trace.KindDetectFail
	}
	if trace.On(m.cfg.Tracer, trace.CatChaos) {
		m.cfg.Tracer.Record(trace.Event{
			Cat: trace.CatChaos, Kind: kind,
			Tier: traceTier(tier), Switch: id, Arg: int64(rounds),
		})
	}
	m.refreshFlows()
	return Transition{Tier: tier, ID: id, Down: down, Impacted: impacted}
}

// refreshFlows recomputes and reinstalls every watched flow's header
// under the controller's current failure view, with bounded retry and
// exponential backoff. Flows the controller cannot route (ErrNoPath /
// ErrLegacyPath) have their sender flows removed so publishers degrade
// to unicast until a later refresh restores them.
func (m *Monitor) refreshFlows() {
	for _, fl := range m.flows {
		addr := dataplane.GroupAddr{VNI: fl.Key.Tenant, Group: fl.Key.Group}
		done := false
		for attempt := 0; attempt <= m.cfg.MaxRecoveryRetries && !done; attempt++ {
			if attempt > 0 {
				m.RecoveryRetries++
				m.cfg.Sleep(m.cfg.BackoffBase << (attempt - 1))
			}
			hdr, err := m.ctrl.HeaderFor(fl.Key, fl.Sender)
			if err == controller.ErrNoPath || err == controller.ErrLegacyPath {
				m.fab.Hypervisors[fl.Sender].RemoveSenderFlow(addr)
				m.degraded[fl] = true
				done = true
				break
			}
			if err != nil {
				continue
			}
			if err := m.install(fl, hdr); err != nil {
				continue
			}
			delete(m.degraded, fl)
			done = true
		}
		if !done {
			m.RefreshFailures++
		}
	}
}

func (m *Monitor) install(fl MonitoredFlow, hdr *header.Header) error {
	if m.cfg.InstallFn != nil {
		return m.cfg.InstallFn(fl, hdr)
	}
	addr := dataplane.GroupAddr{VNI: fl.Key.Tenant, Group: fl.Key.Group}
	return m.fab.Hypervisors[fl.Sender].InstallSenderFlow(addr, hdr)
}
