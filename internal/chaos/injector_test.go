package chaos

import (
	"bytes"
	"testing"

	"elmo/internal/dataplane"
	"elmo/internal/trace"
)

func testLink() dataplane.Link {
	return dataplane.Link{
		FromTier: dataplane.LinkLeaf, From: 0,
		ToTier: dataplane.LinkSpine, To: 1,
	}
}

// TestInjectorDeterminism: two injectors with the same seed produce
// the same verdict sequence; a different seed diverges.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.2, Duplicate: 0.1, Corrupt: 0.1, Reorder: 0.2}
	verdicts := func(seed uint64) []dataplane.FaultVerdict {
		inj := New(Config{Seed: seed, Drop: cfg.Drop, Duplicate: cfg.Duplicate,
			Corrupt: cfg.Corrupt, Reorder: cfg.Reorder})
		inj.Enable()
		out := make([]dataplane.FaultVerdict, 200)
		for i := range out {
			out[i] = inj.Cross(testLink(), 1, 1)
		}
		return out
	}
	a, b := verdicts(42), verdicts(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := verdicts(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical verdict sequences")
	}
}

// TestInjectorDisabledIsInert: an armed config with the injector
// disabled never fires, and FaultsOn short-circuits.
func TestInjectorDisabledIsInert(t *testing.T) {
	inj := New(Config{Seed: 1, Drop: 1})
	if dataplane.FaultsOn(inj) {
		t.Fatal("disabled injector reports active")
	}
	if v := inj.Cross(testLink(), 1, 1); v != (dataplane.FaultVerdict{}) {
		t.Fatalf("disabled injector fired: %+v", v)
	}
	inj.Enable()
	if !dataplane.FaultsOn(inj) {
		t.Fatal("enabled injector reports inactive")
	}
	if v := inj.Cross(testLink(), 1, 1); !v.Drop {
		t.Fatal("drop probability 1 did not drop")
	}
}

// TestInjectorOverrides: a dead switch kills every crossing touching
// it (including probes), a gray switch drops a fraction, and clearing
// restores clean forwarding.
func TestInjectorOverrides(t *testing.T) {
	inj := New(Config{Seed: 7})
	inj.Enable()
	if v := inj.Cross(testLink(), 1, 1); v.Drop {
		t.Fatal("no-fault injector dropped")
	}
	inj.SetSwitchLoss(dataplane.LinkSpine, 1, 1.0)
	if v := inj.Cross(testLink(), 1, 1); !v.Drop {
		t.Fatal("dead switch did not drop")
	}
	if v := inj.Cross(testLink(), dataplane.ProbeVNI, 1); !v.Drop {
		t.Fatal("dead switch did not drop the probe")
	}
	other := dataplane.Link{FromTier: dataplane.LinkLeaf, From: 2, ToTier: dataplane.LinkSpine, To: 3}
	if v := inj.Cross(other, 1, 1); v.Drop {
		t.Fatal("unrelated link dropped")
	}
	// Gray failure: ~50% loss.
	inj.SetSwitchLoss(dataplane.LinkSpine, 1, 0.5)
	drops := 0
	for i := 0; i < 1000; i++ {
		if inj.Cross(testLink(), 1, 1).Drop {
			drops++
		}
	}
	if drops < 350 || drops > 650 {
		t.Fatalf("gray 0.5 loss dropped %d of 1000", drops)
	}
	inj.SetSwitchLoss(dataplane.LinkSpine, 1, 0)
	if v := inj.Cross(testLink(), 1, 1); v.Drop {
		t.Fatal("cleared override still drops")
	}
}

// TestInjectorProbesSkipAmbientFaults: probe traffic ignores ambient
// drop/dup/corrupt/reorder (it measures device health only).
func TestInjectorProbesSkipAmbientFaults(t *testing.T) {
	inj := New(Config{Seed: 9, Drop: 1, Duplicate: 1, Corrupt: 1, Reorder: 1})
	inj.Enable()
	for i := 0; i < 50; i++ {
		if v := inj.Cross(testLink(), dataplane.ProbeVNI, 3); v != (dataplane.FaultVerdict{}) {
			t.Fatalf("probe got ambient fault: %+v", v)
		}
	}
}

// TestFaultPlanFlap scripts fail-at-3 / repair-at-6 and walks the
// logical clock through the flap.
func TestFaultPlanFlap(t *testing.T) {
	inj := New(Config{Seed: 11})
	inj.Enable()
	inj.LoadPlan(FaultPlan{
		{Step: 3, Tier: dataplane.LinkSpine, Switch: 1, Loss: 1.0},
		{Step: 6, Tier: dataplane.LinkSpine, Switch: 1, Loss: 0},
	})
	for step := 1; step <= 8; step++ {
		applied := inj.Step()
		switch step {
		case 3, 6:
			if len(applied) != 1 {
				t.Fatalf("step %d applied %d events", step, len(applied))
			}
		default:
			if len(applied) != 0 {
				t.Fatalf("step %d applied %d events", step, len(applied))
			}
		}
		dropped := inj.Cross(testLink(), 1, 1).Drop
		want := step >= 3 && step < 6
		if dropped != want {
			t.Fatalf("step %d: drop=%v want %v", step, dropped, want)
		}
	}
	if inj.Now() != 8 {
		t.Fatalf("clock at %d, want 8", inj.Now())
	}
}

// TestCorruptWire flips at least one byte, deterministically per seed.
func TestCorruptWire(t *testing.T) {
	frame := func() []byte { return []byte("elmo header bytes to corrupt") }
	a, b := frame(), frame()
	New(Config{Seed: 5}).CorruptWire(a)
	if bytes.Equal(a, frame()) {
		t.Fatal("corruption changed nothing")
	}
	New(Config{Seed: 5}).CorruptWire(b)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed corrupted differently")
	}
}

// TestInjectorTracesFaults: fired faults land in the flight recorder
// under CatChaos.
func TestInjectorTracesFaults(t *testing.T) {
	inj := New(Config{Seed: 3, Drop: 1})
	rec := trace.New(trace.Config{})
	rec.Enable()
	inj.Tracer = rec
	inj.Enable()
	inj.Cross(testLink(), 7, 9)
	evs := rec.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("want 1 chaos event, got %d", len(evs))
	}
	ev := evs[0]
	if ev.Cat != trace.CatChaos || ev.Kind != trace.KindFaultDrop {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.Tier != trace.TierSpine || ev.Switch != 1 || ev.VNI != 7 || ev.Group != 9 {
		t.Fatalf("bad event location: %+v", ev)
	}
	if s := inj.Stats(); s.Drops != 1 || s.Crossings != 1 {
		t.Fatalf("bad stats: %+v", s)
	}
}
