package chaos

import (
	"testing"

	"elmo/internal/dataplane"
	"elmo/internal/topology"
)

// hostLink builds the NIC link between host h and leaf l, in the given
// direction (up: host -> leaf).
func hostLink(h topology.HostID, l int32, up bool) dataplane.Link {
	if up {
		return dataplane.Link{FromTier: dataplane.LinkHost, From: int32(h), ToTier: dataplane.LinkLeaf, To: l}
	}
	return dataplane.Link{FromTier: dataplane.LinkLeaf, From: l, ToTier: dataplane.LinkHost, To: int32(h)}
}

// TestPartitionIsBidirectional: a partitioned host can neither send
// nor receive — both directions of its NIC link drop, probes included
// — while unrelated hosts are untouched.
func TestPartitionIsBidirectional(t *testing.T) {
	inj := New(Config{Seed: 3})
	inj.Partition(5)
	if !inj.Active() {
		t.Fatal("Partition did not arm the injector")
	}
	if !inj.Partitioned(5) || inj.Partitioned(6) {
		t.Fatal("Partitioned() wrong membership")
	}
	if v := inj.Cross(hostLink(5, 0, true), 1, 1); !v.Drop {
		t.Fatal("partitioned host's outbound packet survived")
	}
	if v := inj.Cross(hostLink(5, 0, false), 1, 1); !v.Drop {
		t.Fatal("partitioned host's inbound packet survived")
	}
	if v := inj.Cross(hostLink(5, 0, false), dataplane.ProbeVNI, 1); !v.Drop {
		t.Fatal("probe crossed the partition")
	}
	if v := inj.Cross(hostLink(6, 0, true), 1, 1); v.Drop {
		t.Fatal("unpartitioned host's packet dropped")
	}
	// Switch-to-switch links are unaffected: the cut is at host NICs.
	if v := inj.Cross(testLink(), 1, 1); v.Drop {
		t.Fatal("switch link dropped under host partition")
	}
}

// TestHealRestoresOnlyPartition: Heal reconnects partitioned hosts but
// leaves crash overrides in place, and ClearOverrides conversely does
// not mend a partition.
func TestHealRestoresOnlyPartition(t *testing.T) {
	inj := New(Config{Seed: 11})
	inj.CrashHost(2)
	inj.Partition(5, 7)
	if inj.PartitionSize() != 2 {
		t.Fatalf("PartitionSize = %d, want 2", inj.PartitionSize())
	}

	// ClearOverrides repairs the crash but keeps the partition.
	inj.ClearOverrides()
	if inj.HostDown(2) {
		t.Fatal("ClearOverrides left host 2 crashed")
	}
	if v := inj.Cross(hostLink(5, 0, true), 1, 1); !v.Drop {
		t.Fatal("ClearOverrides silently healed the partition")
	}

	// Re-crash, then Heal: the partition lifts, the crash stays.
	inj.CrashHost(2)
	inj.Heal()
	if inj.Partitioned(5) || inj.Partitioned(7) || inj.PartitionSize() != 0 {
		t.Fatal("Heal left hosts partitioned")
	}
	if v := inj.Cross(hostLink(5, 0, true), 1, 1); v.Drop {
		t.Fatal("healed host still dropping")
	}
	if !inj.HostDown(2) {
		t.Fatal("Heal cleared the CrashHost override")
	}
	if v := inj.Cross(hostLink(2, 0, true), 1, 1); !v.Drop {
		t.Fatal("crashed host forwarding after Heal")
	}
}

// TestPlanPartitionEvents scripts partition-at-2 / heal-at-4 and walks
// the logical clock through it.
func TestPlanPartitionEvents(t *testing.T) {
	inj := New(Config{Seed: 13})
	inj.Enable()
	inj.LoadPlan(FaultPlan{
		{Step: 2, PartitionHosts: []topology.HostID{1, 4}},
		{Step: 4, HealPartition: true},
	})
	inj.Step() // step 1: nothing
	if inj.Partitioned(1) {
		t.Fatal("partition fired early")
	}
	if ev := inj.Step(); len(ev) != 1 { // step 2: cut
		t.Fatalf("step 2 applied %d events", len(ev))
	}
	if !inj.Partitioned(1) || !inj.Partitioned(4) {
		t.Fatal("scripted partition not applied")
	}
	inj.Step() // step 3
	inj.Step() // step 4: heal
	if inj.PartitionSize() != 0 {
		t.Fatal("scripted heal not applied")
	}
}
