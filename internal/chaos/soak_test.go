package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/livefabric"
	"elmo/internal/reliable"
	"elmo/internal/topology"
	"elmo/internal/udpfabric"
)

// ambientChaos is the fault mix every soak runs under.
var ambientChaos = Config{
	Drop: 0.05, Duplicate: 0.05, Corrupt: 0.03, Reorder: 0.08,
}

// TestChaosSoakSyncFabric is the full robustness loop on the
// synchronous tier: ambient drop/dup/corrupt/reorder plus a scripted
// spine flap, a reliable session whose control plane also loses
// frames, and a monitor that must *detect* the flap from probe loss,
// steer the flow around it, and converge the encoding after repair.
func TestChaosSoakSyncFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	cfg := ambientChaos
	cfg.Seed = 1009
	topo, ctrl, fab, inj, key := chaosFixture(t, cfg)
	lay := header.LayoutFor(topo)
	pre, err := ctrl.HeaderFor(key, fixtureSender)
	if err != nil {
		t.Fatal(err)
	}
	preWire, err := header.Encode(lay, pre)
	if err != nil {
		t.Fatal(err)
	}

	mon, err := NewMonitor(ctrl, fab, MonitorConfig{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	mon.Watch(key, fixtureSender)

	sess, err := reliable.NewSession(fab, ctrl, key, fixtureSender, 512)
	if err != nil {
		t.Fatal(err)
	}
	sess.ControlLoss = func(uint8, topology.HostID, topology.HostID) bool {
		return inj.Chance(0.10)
	}

	inj.LoadPlan(FaultPlan{
		{Step: 30, Tier: dataplane.LinkSpine, Switch: 0, Loss: 1.0},
		{Step: 70, Tier: dataplane.LinkSpine, Switch: 0, Loss: 0},
	})
	inj.Enable()

	const n = 110
	var transitions []Transition
	for i := 0; i < n; i++ {
		inj.Step()
		transitions = append(transitions, mon.ProbeRound()...)
		if err := sess.Publish([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	// The flap must have been detected and reversed, not scripted into
	// the controller: both verdicts came from probe loss.
	var sawFail, sawRepair bool
	for _, tr := range transitions {
		if tr.Tier == dataplane.LinkSpine && tr.ID == 0 {
			if tr.Down {
				sawFail = true
			} else if sawFail {
				sawRepair = true
			}
		}
	}
	if !sawFail || !sawRepair {
		t.Fatalf("flap not detected: transitions=%+v", transitions)
	}
	if ctrl.Failures().SpineFailed(0) {
		t.Fatal("spine 0 still declared failed after repair")
	}

	// Eventual 100% in-order delivery despite everything.
	for _, h := range fixtureReceivers {
		got := sess.Delivered(h)
		if len(got) != n {
			t.Fatalf("host %d delivered %d of %d (NAKs=%d retries=%d corrupt=%d)",
				h, len(got), n, sess.NAKs, sess.NAKRetries, sess.CorruptFrames)
		}
		for i, p := range got {
			if string(p) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("host %d out of order at %d: %q", h, i, p)
			}
		}
	}

	// The ambient mix actually fired every fault class.
	st := inj.Stats()
	if st.Drops == 0 || st.Dups == 0 || st.Corrupts == 0 || st.Delays == 0 {
		t.Fatalf("ambient chaos incomplete: %+v", st)
	}
	if sess.NAKs == 0 {
		t.Fatal("soak never exercised NAK repair")
	}

	// Post-repair the sender encoding converges to the pre-failure
	// bytes.
	post, err := ctrl.HeaderFor(key, fixtureSender)
	if err != nil {
		t.Fatal(err)
	}
	postWire, err := header.Encode(lay, post)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preWire, postWire) {
		t.Fatalf("post-repair encoding diverged:\npre  %x\npost %x", preWire, postWire)
	}
}

// sealPayload / openPayload wrap soak payloads with an application
// CRC: on the concurrent tiers chaos corruption can flip payload
// bytes (not just Elmo header bytes), and a real receiver stack
// discards those frames as loss and NAKs the gap.
func sealPayload(seq int, body string) []byte {
	data := []byte(fmt.Sprintf("%s-%d", body, seq))
	out := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(out, crc32.ChecksumIEEE(data))
	copy(out[4:], data)
	return out
}

func openPayload(p []byte) (string, bool) {
	if len(p) < 4 {
		return "", false
	}
	if crc32.ChecksumIEEE(p[4:]) != binary.BigEndian.Uint32(p) {
		return "", false
	}
	return string(p[4:]), true
}

// concurrentSoak drives reliable Sender/Receiver framing over a
// concurrent tier (live goroutine fabric or real UDP): n sealed
// frames go out through the chaotic fabric, receivers integrity-check
// what arrives, and a lossless out-of-band NAK/RDATA loop (the
// unicast control plane) repairs the gaps. Every receiver must end at
// 100% in-order delivery.
func concurrentSoak(t *testing.T, n int, send func(frame []byte) error,
	collect func(h topology.HostID) [][]byte, mid func(i int)) {
	t.Helper()
	// Window n+1: the sender window evicts seq-WindowSize+1 on each
	// send, so exactly n would make seq 0 unrecoverable at the tail.
	s := reliable.NewSender(n + 1)
	recvs := make(map[topology.HostID]*reliable.Receiver)
	delivered := make(map[topology.HostID][]string)
	for _, h := range fixtureReceivers {
		recvs[h] = reliable.NewReceiver(n + 1)
	}

	for i := 0; i < n; i++ {
		mid(i)
		frame, _, err := s.Next(sealPayload(i, "soak"))
		if err != nil {
			t.Fatal(err)
		}
		if err := send(frame); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	corrupted := 0
	deliver := func(h topology.HostID, out [][]byte) {
		for _, p := range out {
			body, ok := openPayload(p)
			if !ok {
				t.Fatalf("host %d: integrity failure escaped the receive check", h)
			}
			delivered[h] = append(delivered[h], body)
		}
	}
	for _, h := range fixtureReceivers {
		r := recvs[h]
		for _, frame := range collect(h) {
			m, err := reliable.Unmarshal(frame)
			if err != nil || m.Type != reliable.TypeData {
				corrupted++ // corrupted past framing: counts as loss
				continue
			}
			if _, ok := openPayload(m.Payload); !ok {
				corrupted++ // payload bit-flip: discard, NAK recovers it
				continue
			}
			out, _, err := r.Handle(frame)
			if err != nil {
				corrupted++
				continue
			}
			deliver(h, out)
		}
		// Out-of-band repair: NAK the full remaining gap until the
		// receiver has consumed every sequence.
		for attempt := 0; r.Next() < uint32(n); attempt++ {
			if attempt > n {
				t.Fatalf("host %d: repair did not converge (next=%d)", h, r.Next())
			}
			nak := &reliable.Message{Type: reliable.TypeNAK,
				Ranges: []reliable.Range{{First: r.Next(), Last: uint32(n - 1)}}}
			repairs, err := s.HandleNAK(nak)
			if err != nil {
				t.Fatal(err)
			}
			if len(repairs) == 0 {
				t.Fatalf("host %d: window evicted at seq %d", h, r.Next())
			}
			for _, rd := range repairs {
				out, _, err := r.Handle(rd)
				if err != nil {
					t.Fatal(err)
				}
				deliver(h, out)
			}
		}
	}

	for _, h := range fixtureReceivers {
		got := delivered[h]
		if len(got) != n {
			t.Fatalf("host %d delivered %d of %d (corrupted=%d)", h, len(got), n, corrupted)
		}
		for i, body := range got {
			if want := fmt.Sprintf("soak-%d", i); body != want {
				t.Fatalf("host %d out of order at %d: %q", h, i, body)
			}
		}
	}
}

// drainQuiet reads a host channel until it has been silent for the
// quiet window — longer than the injector's max reorder delay, so
// held-back frames are included.
func drainQuiet[T any](rx <-chan T, inner func(T) []byte, quiet time.Duration) [][]byte {
	var out [][]byte
	timer := time.NewTimer(quiet)
	defer timer.Stop()
	for {
		select {
		case p := <-rx:
			out = append(out, inner(p))
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(quiet)
		case <-timer.C:
			return out
		}
	}
}

// concurrentGroup builds controller + base fabric + group for the
// concurrent-tier soaks and returns them with an attached injector.
func concurrentGroup(t *testing.T, cfg Config) (*controller.Controller, *fabric.Fabric, *Injector, dataplane.GroupAddr, controller.GroupKey) {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	ccfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fabric.New(topo, ccfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	inj := New(cfg)
	key := controller.GroupKey{Tenant: 9, Group: 1}
	members := map[topology.HostID]controller.Role{fixtureSender: controller.RoleSender}
	for _, h := range fixtureReceivers {
		members[h] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	return ctrl, base, inj, dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}, key
}

// TestChaosSoakLiveFabric: the goroutine tier under the ambient mix
// plus a gray spine flap (75% loss) injected mid-stream.
func TestChaosSoakLiveFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	cfg := ambientChaos
	cfg.Seed = 2017
	ctrl, base, inj, addr, key := concurrentGroup(t, cfg)
	lf := livefabric.New(base, livefabric.DefaultConfig())
	lf.SetInjector(inj)
	if _, err := lf.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	lf.Start()
	defer lf.Stop()
	inj.Enable()

	const n = 120
	concurrentSoak(t, n,
		func(frame []byte) error { return lf.Send(fixtureSender, addr, frame) },
		func(h topology.HostID) [][]byte {
			return drainQuiet(lf.HostRx(h), func(p livefabric.HostPacket) []byte { return p.Inner }, 150*time.Millisecond)
		},
		func(i int) {
			switch i {
			case n / 3:
				inj.SetSwitchLoss(dataplane.LinkSpine, 0, 0.75)
			case 2 * n / 3:
				inj.SetSwitchLoss(dataplane.LinkSpine, 0, 0)
			}
		})

	if st := inj.Stats(); st.Drops == 0 || st.Dups == 0 || st.Corrupts == 0 || st.Delays == 0 {
		t.Fatalf("ambient chaos incomplete on live tier: %+v", st)
	}
}

// TestChaosSoakUDPFabric: the same soak over real UDP sockets.
func TestChaosSoakUDPFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	cfg := Config{Drop: 0.03, Duplicate: 0.03, Corrupt: 0.02, Reorder: 0.05, Seed: 3023}
	ctrl, base, inj, addr, key := concurrentGroup(t, cfg)
	u, err := udpfabric.New(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	u.SetInjector(inj)
	if _, err := u.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	u.Start()
	inj.Enable()

	const n = 60
	concurrentSoak(t, n,
		func(frame []byte) error { return u.Send(fixtureSender, addr, frame) },
		func(h topology.HostID) [][]byte {
			return drainQuiet(u.HostRx(h), func(p udpfabric.HostPacket) []byte { return p.Inner }, 200*time.Millisecond)
		},
		func(i int) {
			switch i {
			case n / 3:
				inj.SetSwitchLoss(dataplane.LinkSpine, 1, 0.75)
			case 2 * n / 3:
				inj.SetSwitchLoss(dataplane.LinkSpine, 1, 0)
			}
		})

	if st := inj.Stats(); st.Drops == 0 {
		t.Fatalf("ambient chaos never fired on UDP tier: %+v", st)
	}
}

// TestChaosDisabledAllocParity is the acceptance bar for the disabled
// path: a fabric with a disabled injector attached allocates exactly
// as much per multicast send as a fabric with no injector at all.
func TestChaosDisabledAllocParity(t *testing.T) {
	build := func(attach bool) *fabric.Fabric {
		topo := topology.MustNew(topology.PaperExample())
		ccfg := controller.PaperConfig(0)
		ctrl, err := controller.New(topo, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		fab := fabric.New(topo, ccfg.SRuleCapacity)
		fab.SetFailures(ctrl.Failures())
		if attach {
			fab.SetInjector(New(Config{Seed: 1, Drop: 0.5})) // armed but never enabled
		}
		key := controller.GroupKey{Tenant: 9, Group: 1}
		members := map[topology.HostID]controller.Role{fixtureSender: controller.RoleSender}
		for _, h := range fixtureReceivers {
			members[h] = controller.RoleReceiver
		}
		if _, err := ctrl.CreateGroup(key, members); err != nil {
			t.Fatal(err)
		}
		if _, err := fab.InstallGroup(ctrl, key); err != nil {
			t.Fatal(err)
		}
		return fab
	}
	send := func(f *fabric.Fabric) func() {
		addr := dataplane.GroupAddr{VNI: 9, Group: 1}
		payload := []byte("alloc probe")
		return func() {
			if _, err := f.Send(fixtureSender, addr, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	baseline := testing.AllocsPerRun(200, send(build(false)))
	withDisabled := testing.AllocsPerRun(200, send(build(true)))
	if withDisabled != baseline {
		t.Fatalf("disabled injector changed allocations: %.1f → %.1f per send",
			baseline, withDisabled)
	}
}

// BenchmarkForwardChaosOff measures the forward path with a disabled
// injector attached — the budget is one nil check plus one atomic
// load per crossing and zero extra allocations.
func BenchmarkForwardChaosOff(b *testing.B) {
	topo := topology.MustNew(topology.PaperExample())
	ccfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, ccfg)
	if err != nil {
		b.Fatal(err)
	}
	fab := fabric.New(topo, ccfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	fab.SetInjector(New(Config{Seed: 1, Drop: 0.5})) // attached, never enabled
	key := controller.GroupKey{Tenant: 9, Group: 1}
	members := map[topology.HostID]controller.Role{fixtureSender: controller.RoleSender}
	for _, h := range fixtureReceivers {
		members[h] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		b.Fatal(err)
	}
	if _, err := fab.InstallGroup(ctrl, key); err != nil {
		b.Fatal(err)
	}
	addr := dataplane.GroupAddr{VNI: 9, Group: 1}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fab.Send(fixtureSender, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}
