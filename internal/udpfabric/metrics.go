package udpfabric

import (
	"elmo/internal/fabric"
	"elmo/internal/telemetry"
)

// Metrics is the UDP transport's telemetry bundle: socket-level
// counters plus the wrapped fabric/dataplane set. Handles are interned
// at construction; attach with SetMetrics before Start.
type Metrics struct {
	Fabric *fabric.Metrics

	sent       *telemetry.Counter
	sendErrors *telemetry.Counter
	recv       *telemetry.Counter
	retries    *telemetry.Counter
	malformed  *telemetry.Counter
	hostDrops  *telemetry.Counter
}

// NewMetrics registers the udpfabric metric families in reg (and the
// fabric/dataplane families underneath).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Fabric: fabric.NewMetrics(reg),
		sent: reg.Counter("elmo_udp_datagrams_sent_total",
			"Datagrams successfully written to fabric UDP sockets."),
		sendErrors: reg.Counter("elmo_udpfabric_send_errors_total",
			"Datagram writes that failed at the socket."),
		recv: reg.Counter("elmo_udp_datagrams_received_total",
			"Datagrams read from fabric UDP sockets."),
		retries: reg.Counter("elmo_udp_read_retries_total",
			"Transient socket read errors retried with backoff."),
		malformed: reg.Counter("elmo_udp_malformed_total",
			"Undecodable datagrams discarded by switch or host readers."),
		hostDrops: reg.Counter("elmo_udp_host_queue_drops_total",
			"Frames discarded at full host delivery queues."),
	}
}

func (m *Metrics) onSent() {
	if m != nil {
		m.sent.Inc()
	}
}

func (m *Metrics) onSendError() {
	if m != nil {
		m.sendErrors.Inc()
	}
}

func (m *Metrics) onRecv() {
	if m != nil {
		m.recv.Inc()
	}
}

func (m *Metrics) onRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *Metrics) onMalformed() {
	if m != nil {
		m.malformed.Inc()
	}
}

func (m *Metrics) onHostDrop() {
	if m != nil {
		m.hostDrops.Inc()
	}
}

// SetMetrics attaches telemetry to the UDP transport and the wrapped
// fabric's switches and hypervisors. Call before Start; nil detaches.
func (u *UDPFabric) SetMetrics(m *Metrics) {
	u.metrics = m
	if m != nil {
		u.base.SetMetrics(m.Fabric)
	} else {
		u.base.SetMetrics(nil)
	}
}
