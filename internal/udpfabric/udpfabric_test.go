package udpfabric

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

func udpFixture(t *testing.T, enableINT bool) (*UDPFabric, controller.GroupKey, []topology.HostID) {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	cfg.EnableINT = enableINT
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 21, Group: 1}
	hosts := []topology.HostID{0, 1, 40, 48, 63}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	u, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	if _, err := u.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	u.Start()
	return u, key, hosts
}

func TestDeliveryOverRealUDP(t *testing.T) {
	u, key, hosts := udpFixture(t, false)
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	const n = 25
	for i := 0; i < n; i++ {
		if err := u.Send(0, addr, []byte(fmt.Sprintf("udp %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts[1:] {
		got, err := u.WaitForDeliveries(h, n, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range got {
			if p.Addr != addr {
				t.Fatalf("host %d: wrong group %+v", h, p.Addr)
			}
			seen[string(p.Inner)] = true
		}
		if len(seen) != n {
			t.Fatalf("host %d: %d distinct of %d", h, len(seen), n)
		}
	}
	if u.Malformed != 0 || u.Dropped != 0 {
		t.Fatalf("malformed=%d dropped=%d", u.Malformed, u.Dropped)
	}
}

func TestINTOverRealUDP(t *testing.T) {
	u, key, _ := udpFixture(t, true)
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	if err := u.Send(0, addr, []byte("trace")); err != nil {
		t.Fatal(err)
	}
	got, err := u.WaitForDeliveries(63, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	path := got[0].Telemetry
	if len(path) < 3 {
		t.Fatalf("cross-pod path too short: %+v", path)
	}
	if path[0].Tier != header.INTTierLeaf {
		t.Fatalf("path does not start at a leaf: %+v", path)
	}
}

func TestHostAddrStable(t *testing.T) {
	u, _, _ := udpFixture(t, false)
	a1 := u.HostAddr(5)
	a2 := u.HostAddr(5)
	if a1.Port == 0 || a1.String() != a2.String() {
		t.Fatalf("host addr unstable: %v vs %v", a1, a2)
	}
	if u.HostAddr(6).Port == a1.Port {
		t.Fatal("distinct hosts share a port")
	}
}

func TestGarbageDatagramCounted(t *testing.T) {
	u, _, _ := udpFixture(t, false)
	// Fire a garbage datagram straight at a leaf socket.
	conn := u.hostConn[3]
	if _, err := conn.WriteToUDP([]byte{0xde, 0xad}, u.leafConn[0].LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		u.mu.Lock()
		m := u.Malformed
		u.mu.Unlock()
		if m == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("malformed datagram not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSendAccountingCountsSuccessesOnly(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	key := controller.GroupKey{Tenant: 7, Group: 2}
	if _, err := ctrl.CreateGroup(key, map[topology.HostID]controller.Role{
		0: controller.RoleBoth, 1: controller.RoleBoth,
	}); err != nil {
		t.Fatal(err)
	}
	u, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	if _, err := u.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	u.SetMetrics(NewMetrics(reg))
	// No Start: nothing else writes, so counters are fully deterministic.
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}

	if err := u.Send(0, addr, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got := u.metrics.sent.Value(); got != 1 {
		t.Fatalf("sent after success = %d, want 1", got)
	}
	if got := u.metrics.sendErrors.Value(); got != 0 {
		t.Fatalf("sendErrors after success = %d, want 0", got)
	}

	// Closing the sender's socket makes the next write fail; the failure
	// must land in SendErrors, never in the sent totals.
	u.hostConn[0].Close()
	if err := u.Send(0, addr, []byte("broken")); err == nil {
		t.Fatal("Send on closed socket did not error")
	}
	if got := u.metrics.sent.Value(); got != 1 {
		t.Fatalf("sent after failure = %d, want 1 (failure must not count)", got)
	}
	if got := u.metrics.sendErrors.Value(); got != 1 {
		t.Fatalf("sendErrors after failure = %d, want 1", got)
	}
	u.mu.Lock()
	se := u.SendErrors
	u.mu.Unlock()
	if se != 1 {
		t.Fatalf("SendErrors field = %d, want 1", se)
	}
}

func TestStartIsIdempotentAndConcurrencySafe(t *testing.T) {
	u, key, hosts := udpFixture(t, false) // fixture already called Start once
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u.Start()
		}()
	}
	wg.Wait()
	u.Start()
	// The fabric must still work normally: one reader set, every member
	// sees each frame exactly once.
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	const n = 10
	for i := 0; i < n; i++ {
		if err := u.Send(0, addr, []byte(fmt.Sprintf("idem %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts[1:] {
		got, err := u.WaitForDeliveries(h, n, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range got {
			seen[string(p.Inner)] = true
		}
		if len(seen) != n {
			t.Fatalf("host %d: %d distinct of %d", h, len(seen), n)
		}
	}
}

func TestBatchedReaderHandlesBursts(t *testing.T) {
	// Fire well over readBatch datagrams at once so the drain loop
	// exercises both the batch-full and queue-empty exits, and verify
	// nothing is lost or corrupted by frame recycling.
	u, key, hosts := udpFixture(t, false)
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	const n = 4 * readBatch
	for i := 0; i < n; i++ {
		if err := u.Send(0, addr, []byte(fmt.Sprintf("burst %04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts[1:] {
		got, err := u.WaitForDeliveries(h, n, 15*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range got {
			seen[string(p.Inner)] = true
		}
		if len(seen) != n {
			t.Fatalf("host %d: %d distinct of %d (recycled frame corruption?)", h, len(seen), n)
		}
	}
}
