package udpfabric

import (
	"strings"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// TestTracePathOverRealUDP records one multicast send across real UDP
// sockets and checks the flight recorder reconstructs the multi-hop
// path — the same deterministic tree the synchronous fabric builds,
// captured from concurrent socket-reader goroutines.
func TestTracePathOverRealUDP(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.Config{
		MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
		KMaxSpine: 2, KMaxLeaf: 2, SRuleCapacity: 16,
	}
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	u, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	rec := trace.New(trace.Config{})
	rec.Enable(trace.CatHop, trace.CatHost, trace.CatFabric)
	u.SetTracer(rec)

	key := controller.GroupKey{Tenant: 1, Group: 1}
	hosts := []topology.HostID{0, 1, 40, 48, 49, 63}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	if _, err := u.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	u.Start()

	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	if err := u.Send(0, addr, []byte("traced udp")); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts[1:] {
		if _, err := u.WaitForDeliveries(h, 1, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	rendered := trace.RenderPath(rec.Snapshot(), uint32(key.Tenant), uint32(key.Group))
	for _, want := range []string{
		"group vni=1 g=1: host 0",
		"leaf 0 [p-rule ports=01000000 up=10",
		"spine 0 [p-rule up=01",
		"core 1 [p-rule ports=0011",
		"spine 6 [s-rule ports=11",
		"leaf 5 [p-rule ports=10000000",
		"leaf 6 [p-rule ports=11000000",
		"leaf 7 [p-rule ports=00000001",
		"host 40 ✓", "host 48 ✓", "host 49 ✓", "host 63 ✓",
	} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered path missing %q:\n%s", want, rendered)
		}
	}
	var delivers int
	for _, ev := range rec.Snapshot() {
		if ev.Kind == trace.KindDeliver {
			delivers++
		}
	}
	if delivers != len(hosts)-1 {
		t.Fatalf("want %d delivery events, got %d", len(hosts)-1, delivers)
	}
}
