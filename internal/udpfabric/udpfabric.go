// Package udpfabric runs the Elmo data plane over real UDP sockets:
// every leaf, spine, and core switch — and every host — is a localhost
// datagram endpoint, and packets cross genuine OS sockets as the exact
// wire bytes (outer Ethernet/IPv4/UDP/VXLAN encapsulation + Elmo
// section stream + inner frame) that the header package defines.
//
// This is the highest-fidelity emulation tier: where package fabric
// forwards synchronously in process and package livefabric uses
// channels, udpfabric exercises the full marshal → socket → parse path
// per hop, the shape a userspace software-switch deployment (PISCES/
// OVS-style) actually has. It is used by tests and examples, not by
// the large-scale simulations.
package udpfabric

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// maxFrame bounds one datagram (outer + 512-byte header budget + MTU).
const maxFrame = 4096

// HostPacket is a frame delivered to a host endpoint.
type HostPacket struct {
	Addr      dataplane.GroupAddr
	Inner     []byte
	Telemetry []header.INTRecord
}

// UDPFabric binds a fabric's switches to UDP sockets.
type UDPFabric struct {
	topo   *topology.Topology
	layout header.Layout
	base   *fabric.Fabric

	leafConn  []*net.UDPConn
	spineConn []*net.UDPConn
	coreConn  []*net.UDPConn
	hostConn  []*net.UDPConn

	hostRx []chan HostPacket

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
	started  bool
	tracer   trace.Recorder
	injector dataplane.FaultInjector
	metrics  *Metrics

	mu sync.Mutex
	// Malformed counts undecodable datagrams; Dropped counts frames
	// discarded at full host queues; ReadErrors counts transient socket
	// read errors the readers retried past.
	Malformed, Dropped, ReadErrors int
}

// New binds one ephemeral localhost UDP socket per switch and host of
// the base fabric. Install group state, then call Start to spawn the
// switch/host readers (switch group tables are not guarded; installs
// must happen while the fabric is quiet, same contract as livefabric).
func New(base *fabric.Fabric) (*UDPFabric, error) {
	topo := base.Topology()
	u := &UDPFabric{
		topo:    topo,
		layout:  header.LayoutFor(topo),
		base:    base,
		stopped: make(chan struct{}),
	}
	var err error
	if u.leafConn, err = listenN(topo.NumLeaves()); err != nil {
		return nil, err
	}
	if u.spineConn, err = listenN(topo.NumSpines()); err != nil {
		u.Close()
		return nil, err
	}
	if u.coreConn, err = listenN(topo.NumCores()); err != nil {
		u.Close()
		return nil, err
	}
	if u.hostConn, err = listenN(topo.NumHosts()); err != nil {
		u.Close()
		return nil, err
	}
	u.hostRx = make([]chan HostPacket, topo.NumHosts())
	for i := range u.hostRx {
		u.hostRx[i] = make(chan HostPacket, 1024)
	}
	return u, nil
}

// Start spawns the per-switch and per-host reader goroutines.
func (u *UDPFabric) Start() {
	if u.started {
		return
	}
	u.started = true
	for i := range u.leafConn {
		u.wg.Add(1)
		go u.runLeaf(topology.LeafID(i))
	}
	for i := range u.spineConn {
		u.wg.Add(1)
		go u.runSpine(topology.SpineID(i))
	}
	for i := range u.coreConn {
		u.wg.Add(1)
		go u.runCore(topology.CoreID(i))
	}
	for i := range u.hostConn {
		u.wg.Add(1)
		go u.runHost(topology.HostID(i))
	}
}

func listenN(n int) ([]*net.UDPConn, error) {
	conns := make([]*net.UDPConn, n)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for _, prev := range conns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("udpfabric: %w", err)
		}
		conns[i] = c
	}
	return conns, nil
}

// Close shuts the sockets down and waits for the readers.
func (u *UDPFabric) Close() {
	u.stopOnce.Do(func() { close(u.stopped) })
	for _, set := range [][]*net.UDPConn{u.leafConn, u.spineConn, u.coreConn, u.hostConn} {
		for _, c := range set {
			if c != nil {
				c.Close()
			}
		}
	}
	u.wg.Wait()
}

// HostRx returns the delivery channel for a host.
func (u *UDPFabric) HostRx(h topology.HostID) <-chan HostPacket { return u.hostRx[h] }

// HostAddr returns the UDP address a host endpoint listens on (the
// "NIC" applications would send through).
func (u *UDPFabric) HostAddr(h topology.HostID) *net.UDPAddr {
	return u.hostConn[h].LocalAddr().(*net.UDPAddr)
}

// Send encapsulates at the sender's hypervisor and transmits the frame
// to the sender's leaf over UDP.
func (u *UDPFabric) Send(sender topology.HostID, addr dataplane.GroupAddr, inner []byte) error {
	pkt, err := u.base.Hypervisors[sender].Encap(addr, inner)
	if err != nil {
		return err
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		return err
	}
	leaf := u.topo.HostLeaf(sender)
	if dataplane.FaultsOn(u.injector) {
		u.admitWire(dataplane.Link{
			FromTier: dataplane.LinkHost, From: int32(sender),
			ToTier: dataplane.LinkLeaf, To: int32(leaf),
		}, addr.VNI, addr.Group, u.hostConn[sender], u.leafConn[leaf], wire)
		return nil
	}
	_, err = u.hostConn[sender].WriteToUDP(wire, u.leafConn[leaf].LocalAddr().(*net.UDPAddr))
	if err == nil {
		u.metrics.onSent()
	}
	return err
}

// InstallGroup proxies to the base fabric.
func (u *UDPFabric) InstallGroup(ctrl *controller.Controller, key controller.GroupKey) ([]topology.HostID, error) {
	return u.base.InstallGroup(ctrl, key)
}

// SetTracer attaches a flight recorder to the underlying switches and
// hypervisors and to the UDP fabric's own transport events. Call
// before Start.
func (u *UDPFabric) SetTracer(r trace.Recorder) {
	u.tracer = r
	u.base.SetTracer(r)
}

// SetInjector attaches a fault injector to every link crossing (and to
// the base fabric). Call before Start. Delay verdicts are interpreted
// as milliseconds.
func (u *UDPFabric) SetInjector(inj dataplane.FaultInjector) {
	u.injector = inj
	u.base.SetInjector(inj)
}

func (u *UDPFabric) countMalformed() {
	u.mu.Lock()
	u.Malformed++
	u.mu.Unlock()
	u.metrics.onMalformed()
	if trace.On(u.tracer, trace.CatFabric) {
		u.tracer.Record(trace.Event{Cat: trace.CatFabric, Kind: trace.KindMalformed})
	}
}

// readErrBackoffCap bounds the retry backoff after consecutive
// transient socket read errors.
const readErrBackoffCap = 100 * time.Millisecond

// readLoop drains one socket, handing each datagram to fn until close.
// Transient read errors (e.g. ECONNREFUSED bounced back on localhost,
// buffer pressure) are counted and retried with exponential backoff
// capped at readErrBackoffCap; only a closed socket or fabric stop
// ends the loop.
func (u *UDPFabric) readLoop(conn *net.UDPConn, fn func(wire []byte)) {
	defer u.wg.Done()
	buf := make([]byte, maxFrame)
	backoff := time.Duration(0)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			u.mu.Lock()
			u.ReadErrors++
			u.mu.Unlock()
			u.metrics.onRetry()
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > readErrBackoffCap {
				backoff = readErrBackoffCap
			}
			select {
			case <-u.stopped:
				return
			case <-time.After(backoff):
				continue
			}
		}
		backoff = 0
		u.metrics.onRecv()
		wire := make([]byte, n)
		copy(wire, buf[:n])
		fn(wire)
	}
}

func (u *UDPFabric) process(sw *dataplane.NetworkSwitch, wire []byte) []dataplane.Emission {
	pkt, err := dataplane.Unmarshal(u.layout, wire)
	if err != nil {
		u.countMalformed()
		return nil
	}
	ems, err := sw.Process(pkt)
	if err != nil {
		u.countMalformed()
		return nil
	}
	return ems
}

func (u *UDPFabric) forward(l dataplane.Link, from *net.UDPConn, to *net.UDPConn, pkt dataplane.Packet) {
	wire, err := pkt.Marshal(nil)
	if err != nil {
		u.countMalformed()
		return
	}
	if dataplane.FaultsOn(u.injector) {
		a, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
		u.admitWire(l, a.VNI, a.Group, from, to, wire)
		return
	}
	from.WriteToUDP(wire, to.LocalAddr().(*net.UDPAddr))
	u.metrics.onSent()
}

// admitWire applies the injector verdict to a marshaled datagram and
// transmits the surviving copies.
func (u *UDPFabric) admitWire(l dataplane.Link, vni, group uint32, from, to *net.UDPConn, wire []byte) {
	v := u.injector.Cross(l, vni, group)
	if v.Drop {
		return
	}
	if v.Corrupt {
		u.injector.CorruptWire(wire)
	}
	dst := to.LocalAddr().(*net.UDPAddr)
	if v.Duplicate {
		from.WriteToUDP(wire, dst)
		u.metrics.onSent()
	}
	if v.DelaySteps > 0 {
		delayed := append([]byte(nil), wire...)
		u.wg.Add(1)
		go func() {
			defer u.wg.Done()
			select {
			case <-time.After(time.Duration(v.DelaySteps) * time.Millisecond):
			case <-u.stopped:
				return
			}
			from.WriteToUDP(delayed, dst)
			u.metrics.onSent()
		}()
		return
	}
	from.WriteToUDP(wire, dst)
	u.metrics.onSent()
}

func (u *UDPFabric) runLeaf(id topology.LeafID) {
	conn := u.leafConn[id]
	sw := u.base.Leaves[id]
	u.readLoop(conn, func(wire []byte) {
		for _, em := range u.process(sw, wire) {
			if em.Up {
				spine := u.topo.LeafUpstream(id, em.Port)
				u.forward(dataplane.Link{
					FromTier: dataplane.LinkLeaf, From: int32(id),
					ToTier: dataplane.LinkSpine, To: int32(spine),
				}, conn, u.spineConn[spine], em.Packet)
			} else {
				host := u.topo.HostAt(id, em.Port)
				u.forward(dataplane.Link{
					FromTier: dataplane.LinkLeaf, From: int32(id),
					ToTier: dataplane.LinkHost, To: int32(host),
				}, conn, u.hostConn[host], em.Packet)
			}
		}
	})
}

func (u *UDPFabric) runSpine(id topology.SpineID) {
	conn := u.spineConn[id]
	sw := u.base.Spines[id]
	u.readLoop(conn, func(wire []byte) {
		for _, em := range u.process(sw, wire) {
			if em.Up {
				core := u.topo.SpineUpstream(id, em.Port)
				u.forward(dataplane.Link{
					FromTier: dataplane.LinkSpine, From: int32(id),
					ToTier: dataplane.LinkCore, To: int32(core),
				}, conn, u.coreConn[core], em.Packet)
			} else {
				leaf := u.topo.SpineDownstream(id, em.Port)
				u.forward(dataplane.Link{
					FromTier: dataplane.LinkSpine, From: int32(id),
					ToTier: dataplane.LinkLeaf, To: int32(leaf),
				}, conn, u.leafConn[leaf], em.Packet)
			}
		}
	})
}

func (u *UDPFabric) runCore(id topology.CoreID) {
	conn := u.coreConn[id]
	sw := u.base.Cores[id]
	u.readLoop(conn, func(wire []byte) {
		for _, em := range u.process(sw, wire) {
			spine := u.topo.CoreDownstream(id, topology.PodID(em.Port))
			u.forward(dataplane.Link{
				FromTier: dataplane.LinkCore, From: int32(id),
				ToTier: dataplane.LinkSpine, To: int32(spine),
			}, conn, u.spineConn[spine], em.Packet)
		}
	})
}

func (u *UDPFabric) runHost(h topology.HostID) {
	conn := u.hostConn[h]
	hv := u.base.Hypervisors[h]
	u.readLoop(conn, func(wire []byte) {
		pkt, err := dataplane.Unmarshal(u.layout, wire)
		if err != nil {
			u.countMalformed()
			return
		}
		inner, tel, ok := hv.DeliverFull(pkt)
		if !ok {
			return
		}
		addr, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
		select {
		case u.hostRx[h] <- HostPacket{Addr: addr, Inner: inner, Telemetry: tel}:
		default:
			u.mu.Lock()
			u.Dropped++
			u.mu.Unlock()
			u.metrics.onHostDrop()
			if trace.On(u.tracer, trace.CatFabric) {
				u.tracer.Record(trace.Event{
					Cat: trace.CatFabric, Kind: trace.KindHostDrop, Tier: trace.TierHost,
					Switch: int32(h), VNI: addr.VNI, Group: addr.Group,
				})
			}
		}
	})
}

// WaitForDeliveries collects n frames from a host with a deadline —
// a convenience for tests and examples on real sockets.
func (u *UDPFabric) WaitForDeliveries(h topology.HostID, n int, timeout time.Duration) ([]HostPacket, error) {
	out := make([]HostPacket, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case p := <-u.hostRx[h]:
			out = append(out, p)
		case <-deadline:
			return out, fmt.Errorf("udpfabric: host %d got %d of %d before timeout", h, len(out), n)
		}
	}
	return out, nil
}
