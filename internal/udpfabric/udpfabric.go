// Package udpfabric runs the Elmo data plane over real UDP sockets:
// every leaf, spine, and core switch — and every host — is a localhost
// datagram endpoint, and packets cross genuine OS sockets as the exact
// wire bytes (outer Ethernet/IPv4/UDP/VXLAN encapsulation + Elmo
// section stream + inner frame) that the header package defines.
//
// This is the highest-fidelity emulation tier: where package fabric
// forwards synchronously in process and package livefabric uses
// channels, udpfabric exercises the full marshal → socket → parse path
// per hop, the shape a userspace software-switch deployment (PISCES/
// OVS-style) actually has. It is used by tests and examples, not by
// the large-scale simulations.
package udpfabric

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// maxFrame bounds one datagram (outer + 512-byte header budget + MTU).
const maxFrame = 4096

// HostPacket is a frame delivered to a host endpoint.
type HostPacket struct {
	Addr      dataplane.GroupAddr
	Inner     []byte
	Telemetry []header.INTRecord
}

// UDPFabric binds a fabric's switches to UDP sockets.
type UDPFabric struct {
	topo   *topology.Topology
	layout header.Layout
	base   *fabric.Fabric

	leafConn  []*net.UDPConn
	spineConn []*net.UDPConn
	coreConn  []*net.UDPConn
	hostConn  []*net.UDPConn

	// Destination addresses resolved once at bind time, so the hot
	// forwarding path never repeats the LocalAddr type assertion per
	// datagram.
	leafAddr  []*net.UDPAddr
	spineAddr []*net.UDPAddr
	coreAddr  []*net.UDPAddr
	hostAddr  []*net.UDPAddr

	hostRx []chan HostPacket

	startOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}
	wg        sync.WaitGroup
	tracer    trace.Recorder
	injector  dataplane.FaultInjector
	metrics   *Metrics

	mu sync.Mutex
	// Malformed counts undecodable datagrams; Dropped counts frames
	// discarded at full host queues; ReadErrors counts transient socket
	// read errors the readers retried past; SendErrors counts datagram
	// writes the socket rejected.
	Malformed, Dropped, ReadErrors, SendErrors int
}

// New binds one ephemeral localhost UDP socket per switch and host of
// the base fabric. Install group state, then call Start to spawn the
// switch/host readers (switch group tables are not guarded; installs
// must happen while the fabric is quiet, same contract as livefabric).
func New(base *fabric.Fabric) (*UDPFabric, error) {
	topo := base.Topology()
	u := &UDPFabric{
		topo:    topo,
		layout:  header.LayoutFor(topo),
		base:    base,
		stopped: make(chan struct{}),
	}
	var err error
	if u.leafConn, err = listenN(topo.NumLeaves()); err != nil {
		return nil, err
	}
	if u.spineConn, err = listenN(topo.NumSpines()); err != nil {
		u.Close()
		return nil, err
	}
	if u.coreConn, err = listenN(topo.NumCores()); err != nil {
		u.Close()
		return nil, err
	}
	if u.hostConn, err = listenN(topo.NumHosts()); err != nil {
		u.Close()
		return nil, err
	}
	u.leafAddr = addrsOf(u.leafConn)
	u.spineAddr = addrsOf(u.spineConn)
	u.coreAddr = addrsOf(u.coreConn)
	u.hostAddr = addrsOf(u.hostConn)
	u.hostRx = make([]chan HostPacket, topo.NumHosts())
	for i := range u.hostRx {
		u.hostRx[i] = make(chan HostPacket, 1024)
	}
	return u, nil
}

// Start spawns the per-switch and per-host reader goroutines. It is
// idempotent and safe to call from multiple goroutines; only the first
// call spawns readers.
func (u *UDPFabric) Start() {
	u.startOnce.Do(func() {
		for i := range u.leafConn {
			u.wg.Add(1)
			go u.runLeaf(topology.LeafID(i))
		}
		for i := range u.spineConn {
			u.wg.Add(1)
			go u.runSpine(topology.SpineID(i))
		}
		for i := range u.coreConn {
			u.wg.Add(1)
			go u.runCore(topology.CoreID(i))
		}
		for i := range u.hostConn {
			u.wg.Add(1)
			go u.runHost(topology.HostID(i))
		}
	})
}

func addrsOf(conns []*net.UDPConn) []*net.UDPAddr {
	addrs := make([]*net.UDPAddr, len(conns))
	for i, c := range conns {
		addrs[i] = c.LocalAddr().(*net.UDPAddr)
	}
	return addrs
}

func listenN(n int) ([]*net.UDPConn, error) {
	conns := make([]*net.UDPConn, n)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for _, prev := range conns[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("udpfabric: %w", err)
		}
		conns[i] = c
	}
	return conns, nil
}

// Close shuts the sockets down and waits for the readers.
func (u *UDPFabric) Close() {
	u.stopOnce.Do(func() { close(u.stopped) })
	for _, set := range [][]*net.UDPConn{u.leafConn, u.spineConn, u.coreConn, u.hostConn} {
		for _, c := range set {
			if c != nil {
				c.Close()
			}
		}
	}
	u.wg.Wait()
}

// HostRx returns the delivery channel for a host.
func (u *UDPFabric) HostRx(h topology.HostID) <-chan HostPacket { return u.hostRx[h] }

// HostAddr returns the UDP address a host endpoint listens on (the
// "NIC" applications would send through).
func (u *UDPFabric) HostAddr(h topology.HostID) *net.UDPAddr {
	return u.hostAddr[h]
}

// writeTo transmits one datagram and keeps the send accounting honest:
// only a successful write counts toward the sent totals; failures are
// tallied separately as SendErrors.
func (u *UDPFabric) writeTo(from *net.UDPConn, wire []byte, dst *net.UDPAddr) error {
	if _, err := from.WriteToUDP(wire, dst); err != nil {
		u.mu.Lock()
		u.SendErrors++
		u.mu.Unlock()
		u.metrics.onSendError()
		return err
	}
	u.metrics.onSent()
	return nil
}

// Send encapsulates at the sender's hypervisor and transmits the frame
// to the sender's leaf over UDP.
func (u *UDPFabric) Send(sender topology.HostID, addr dataplane.GroupAddr, inner []byte) error {
	pkt, err := u.base.Hypervisors[sender].Encap(addr, inner)
	if err != nil {
		return err
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		return err
	}
	leaf := u.topo.HostLeaf(sender)
	if dataplane.FaultsOn(u.injector) {
		u.admitWire(dataplane.Link{
			FromTier: dataplane.LinkHost, From: int32(sender),
			ToTier: dataplane.LinkLeaf, To: int32(leaf),
		}, addr.VNI, addr.Group, u.hostConn[sender], u.leafAddr[leaf], wire)
		return nil
	}
	return u.writeTo(u.hostConn[sender], wire, u.leafAddr[leaf])
}

// InstallGroup proxies to the base fabric.
func (u *UDPFabric) InstallGroup(ctrl *controller.Controller, key controller.GroupKey) ([]topology.HostID, error) {
	return u.base.InstallGroup(ctrl, key)
}

// SetTracer attaches a flight recorder to the underlying switches and
// hypervisors and to the UDP fabric's own transport events. Call
// before Start.
func (u *UDPFabric) SetTracer(r trace.Recorder) {
	u.tracer = r
	u.base.SetTracer(r)
}

// SetInjector attaches a fault injector to every link crossing (and to
// the base fabric). Call before Start. Delay verdicts are interpreted
// as milliseconds.
func (u *UDPFabric) SetInjector(inj dataplane.FaultInjector) {
	u.injector = inj
	u.base.SetInjector(inj)
}

func (u *UDPFabric) countMalformed() {
	u.mu.Lock()
	u.Malformed++
	u.mu.Unlock()
	u.metrics.onMalformed()
	if trace.On(u.tracer, trace.CatFabric) {
		u.tracer.Record(trace.Event{Cat: trace.CatFabric, Kind: trace.KindMalformed})
	}
}

// readErrBackoffCap bounds the retry backoff after consecutive
// transient socket read errors.
const readErrBackoffCap = 100 * time.Millisecond

// readBatch caps how many queued datagrams one reader wakeup drains
// before processing them, emulating recvmmsg-style batching with the
// stdlib: one blocking read, then non-blocking polls until the socket
// queue is empty or the batch is full.
const readBatch = 32

// pastDeadline is any instant in the past; setting it as a read
// deadline turns ReadFromUDP into a non-blocking poll.
var pastDeadline = time.Unix(1, 0)

// readLoop drains one socket, handing each datagram to fn until close.
// Frames are drawn from a per-reader freelist and recycled after fn
// returns, so fn must not retain wire (or any slice aliasing it)
// beyond its call. Each wakeup coalesces up to readBatch datagrams:
// the first read blocks, the rest poll with an already-expired
// deadline and stop at the first timeout. Transient read errors on the
// blocking read (e.g. ECONNREFUSED bounced back on localhost, buffer
// pressure) are counted and retried with exponential backoff capped at
// readErrBackoffCap; poll timeouts are the normal empty-queue signal
// and are never counted. Only a closed socket or fabric stop ends the
// loop.
func (u *UDPFabric) readLoop(conn *net.UDPConn, fn func(wire []byte)) {
	defer u.wg.Done()
	var free [][]byte
	batch := make([][]byte, 0, readBatch)
	getFrame := func() []byte {
		if n := len(free); n > 0 {
			f := free[n-1]
			free = free[:n-1]
			return f
		}
		return make([]byte, maxFrame)
	}
	backoff := time.Duration(0)
	for {
		conn.SetReadDeadline(time.Time{})
		frame := getFrame()
		n, _, err := conn.ReadFromUDP(frame)
		if err != nil {
			free = append(free, frame)
			if errors.Is(err, net.ErrClosed) {
				return
			}
			u.mu.Lock()
			u.ReadErrors++
			u.mu.Unlock()
			u.metrics.onRetry()
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > readErrBackoffCap {
				backoff = readErrBackoffCap
			}
			select {
			case <-u.stopped:
				return
			case <-time.After(backoff):
				continue
			}
		}
		backoff = 0
		u.metrics.onRecv()
		batch = append(batch, frame[:n])
		conn.SetReadDeadline(pastDeadline)
		for len(batch) < readBatch {
			frame := getFrame()
			n, _, err := conn.ReadFromUDP(frame)
			if err != nil {
				// Timeout means the queue is drained; a real error
				// (including close) recurs on the next blocking read,
				// where it is counted or ends the loop.
				free = append(free, frame)
				break
			}
			u.metrics.onRecv()
			batch = append(batch, frame[:n])
		}
		for _, wire := range batch {
			fn(wire)
			free = append(free, wire[:maxFrame])
		}
		batch = batch[:0]
	}
}

func (u *UDPFabric) process(sw *dataplane.NetworkSwitch, wire []byte, sc *dataplane.SwitchScratch) []dataplane.Emission {
	pkt, err := dataplane.Unmarshal(u.layout, wire)
	if err != nil {
		u.countMalformed()
		return nil
	}
	sc.Reset()
	ems, err := sw.ProcessInto(pkt, sc)
	if err != nil {
		u.countMalformed()
		return nil
	}
	return ems
}

// forward marshals one emission into the caller's reusable scratch
// buffer and transmits it. WriteToUDP copies the payload into the
// kernel before returning (and admitWire's delayed path copies for
// itself), so the scratch — returned with any capacity growth — is
// free for the next emission as soon as forward returns.
func (u *UDPFabric) forward(l dataplane.Link, from *net.UDPConn, dst *net.UDPAddr, pkt dataplane.Packet, mbuf []byte) []byte {
	wire, err := pkt.Marshal(mbuf[:0])
	if err != nil {
		u.countMalformed()
		return mbuf
	}
	if dataplane.FaultsOn(u.injector) {
		a, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
		u.admitWire(l, a.VNI, a.Group, from, dst, wire)
		return wire
	}
	u.writeTo(from, wire, dst)
	return wire
}

// admitWire applies the injector verdict to a marshaled datagram and
// transmits the surviving copies. wire may be a reusable scratch; the
// delayed path copies it before the goroutine escapes the call.
func (u *UDPFabric) admitWire(l dataplane.Link, vni, group uint32, from *net.UDPConn, dst *net.UDPAddr, wire []byte) {
	v := u.injector.Cross(l, vni, group)
	if v.Drop {
		return
	}
	if v.Corrupt {
		u.injector.CorruptWire(wire)
	}
	if v.Duplicate {
		u.writeTo(from, wire, dst)
	}
	if v.DelaySteps > 0 {
		delayed := append([]byte(nil), wire...)
		u.wg.Add(1)
		go func() {
			defer u.wg.Done()
			select {
			case <-time.After(time.Duration(v.DelaySteps) * time.Millisecond):
			case <-u.stopped:
				return
			}
			u.writeTo(from, delayed, dst)
		}()
		return
	}
	u.writeTo(from, wire, dst)
}

// Each switch reader owns one SwitchScratch (reset per datagram; all
// emissions are re-marshaled before the next frame) and one marshal
// scratch buffer reused across emissions.
func (u *UDPFabric) runLeaf(id topology.LeafID) {
	conn := u.leafConn[id]
	sw := u.base.Leaves[id]
	var sc dataplane.SwitchScratch
	var mbuf []byte
	u.readLoop(conn, func(wire []byte) {
		for _, em := range u.process(sw, wire, &sc) {
			if em.Up {
				spine := u.topo.LeafUpstream(id, em.Port)
				mbuf = u.forward(dataplane.Link{
					FromTier: dataplane.LinkLeaf, From: int32(id),
					ToTier: dataplane.LinkSpine, To: int32(spine),
				}, conn, u.spineAddr[spine], em.Packet, mbuf)
			} else {
				host := u.topo.HostAt(id, em.Port)
				mbuf = u.forward(dataplane.Link{
					FromTier: dataplane.LinkLeaf, From: int32(id),
					ToTier: dataplane.LinkHost, To: int32(host),
				}, conn, u.hostAddr[host], em.Packet, mbuf)
			}
		}
	})
}

func (u *UDPFabric) runSpine(id topology.SpineID) {
	conn := u.spineConn[id]
	sw := u.base.Spines[id]
	var sc dataplane.SwitchScratch
	var mbuf []byte
	u.readLoop(conn, func(wire []byte) {
		for _, em := range u.process(sw, wire, &sc) {
			if em.Up {
				core := u.topo.SpineUpstream(id, em.Port)
				mbuf = u.forward(dataplane.Link{
					FromTier: dataplane.LinkSpine, From: int32(id),
					ToTier: dataplane.LinkCore, To: int32(core),
				}, conn, u.coreAddr[core], em.Packet, mbuf)
			} else {
				leaf := u.topo.SpineDownstream(id, em.Port)
				mbuf = u.forward(dataplane.Link{
					FromTier: dataplane.LinkSpine, From: int32(id),
					ToTier: dataplane.LinkLeaf, To: int32(leaf),
				}, conn, u.leafAddr[leaf], em.Packet, mbuf)
			}
		}
	})
}

func (u *UDPFabric) runCore(id topology.CoreID) {
	conn := u.coreConn[id]
	sw := u.base.Cores[id]
	var sc dataplane.SwitchScratch
	var mbuf []byte
	u.readLoop(conn, func(wire []byte) {
		for _, em := range u.process(sw, wire, &sc) {
			spine := u.topo.CoreDownstream(id, topology.PodID(em.Port))
			mbuf = u.forward(dataplane.Link{
				FromTier: dataplane.LinkCore, From: int32(id),
				ToTier: dataplane.LinkSpine, To: int32(spine),
			}, conn, u.spineAddr[spine], em.Packet, mbuf)
		}
	})
}

func (u *UDPFabric) runHost(h topology.HostID) {
	conn := u.hostConn[h]
	hv := u.base.Hypervisors[h]
	u.readLoop(conn, func(wire []byte) {
		pkt, err := dataplane.Unmarshal(u.layout, wire)
		if err != nil {
			u.countMalformed()
			return
		}
		inner, tel, ok := hv.DeliverFull(pkt)
		if !ok {
			return
		}
		// inner aliases the reader's recycled frame buffer; the queued
		// HostPacket outlives this call, so it gets its own copy.
		inner = append([]byte(nil), inner...)
		addr, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
		select {
		case u.hostRx[h] <- HostPacket{Addr: addr, Inner: inner, Telemetry: tel}:
		default:
			u.mu.Lock()
			u.Dropped++
			u.mu.Unlock()
			u.metrics.onHostDrop()
			if trace.On(u.tracer, trace.CatFabric) {
				u.tracer.Record(trace.Event{
					Cat: trace.CatFabric, Kind: trace.KindHostDrop, Tier: trace.TierHost,
					Switch: int32(h), VNI: addr.VNI, Group: addr.Group,
				})
			}
		}
	})
}

// WaitForDeliveries collects n frames from a host with a deadline —
// a convenience for tests and examples on real sockets.
func (u *UDPFabric) WaitForDeliveries(h topology.HostID, n int, timeout time.Duration) ([]HostPacket, error) {
	out := make([]HostPacket, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case p := <-u.hostRx[h]:
			out = append(out, p)
		case <-deadline:
			return out, fmt.Errorf("udpfabric: host %d got %d of %d before timeout", h, len(out), n)
		}
	}
	return out, nil
}
