package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, w := range []int{0, 1, 7, 8, 63, 64, 65, 576} {
		b := New(w)
		if b.Width() != w {
			t.Errorf("width %d: got %d", w, b.Width())
		}
		if !b.IsEmpty() {
			t.Errorf("width %d: new bitmap not empty", w)
		}
		if b.PopCount() != 0 {
			t.Errorf("width %d: popcount %d", w, b.PopCount())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative width")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.PopCount(); got != 8 {
		t.Fatalf("popcount = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.PopCount(); got != 7 {
		t.Fatalf("popcount = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(8)
	for name, fn := range map[string]func(){
		"Set":   func() { b.Set(8) },
		"Test":  func() { b.Test(-1) },
		"Clear": func() { b.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromPorts(t *testing.T) {
	b := FromPorts(48, 0, 5, 47)
	if b.PopCount() != 3 || !b.Test(0) || !b.Test(5) || !b.Test(47) {
		t.Fatalf("FromPorts wrong contents: %s", b)
	}
}

func TestOrAndNot(t *testing.T) {
	a := FromPorts(10, 1, 3, 5)
	b := FromPorts(10, 3, 4)
	or := a.Or(b)
	want := FromPorts(10, 1, 3, 4, 5)
	if !or.Equal(want) {
		t.Fatalf("Or = %s, want %s", or, want)
	}
	// Or must not mutate operands.
	if a.PopCount() != 3 || b.PopCount() != 2 {
		t.Fatal("Or mutated an operand")
	}
	an := a.AndNot(b)
	if !an.Equal(FromPorts(10, 1, 5)) {
		t.Fatalf("AndNot = %s", an)
	}
	and := a.And(b)
	if !and.Equal(FromPorts(10, 3)) {
		t.Fatalf("And = %s", and)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width mismatch")
		}
	}()
	New(8).Or(New(9))
}

func TestHammingDistance(t *testing.T) {
	a := FromPorts(70, 0, 1, 69)
	b := FromPorts(70, 1, 2)
	if d := a.HammingDistance(b); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
}

func TestContains(t *testing.T) {
	a := FromPorts(10, 1, 3, 5)
	if !a.Contains(FromPorts(10, 1, 5)) {
		t.Fatal("Contains subset = false")
	}
	if a.Contains(FromPorts(10, 1, 2)) {
		t.Fatal("Contains non-subset = true")
	}
	if !a.Contains(New(10)) {
		t.Fatal("Contains empty = false")
	}
}

func TestPortsAndForEach(t *testing.T) {
	want := []int{0, 7, 8, 63, 64, 100}
	b := FromPorts(128, want...)
	got := b.Ports()
	if len(got) != len(want) {
		t.Fatalf("Ports = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ports = %v, want %v", got, want)
		}
	}
	var fe []int
	b.ForEach(func(p int) { fe = append(fe, p) })
	for i := range want {
		if fe[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", fe, want)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, w := range []int{1, 7, 8, 9, 48, 63, 64, 65, 576} {
		b := New(w)
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < w; i++ {
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		wire := b.AppendWire(nil)
		if len(wire) != ByteLen(w) {
			t.Fatalf("width %d: wire len %d, want %d", w, len(wire), ByteLen(w))
		}
		dec, n, err := FromWire(w, wire)
		if err != nil {
			t.Fatalf("width %d: decode: %v", w, err)
		}
		if n != len(wire) {
			t.Fatalf("width %d: consumed %d, want %d", w, n, len(wire))
		}
		if !dec.Equal(b) {
			t.Fatalf("width %d: roundtrip %s != %s", w, dec, b)
		}
	}
}

func TestFromWireErrors(t *testing.T) {
	if _, _, err := FromWire(16, []byte{0xff}); err == nil {
		t.Fatal("expected short-buffer error")
	}
	// Width 4 occupies one byte; upper nibble is padding and must be 0.
	if _, _, err := FromWire(4, []byte{0xf0}); err == nil {
		t.Fatal("expected padding-bit error")
	}
	if _, _, err := FromWire(4, []byte{0x0f}); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
}

func TestString(t *testing.T) {
	b := FromPorts(4, 1, 3)
	if s := b.String(); s != "0101" {
		t.Fatalf("String = %q, want 0101", s)
	}
}

func TestUnion(t *testing.T) {
	u := Union(FromPorts(6, 0), FromPorts(6, 2), FromPorts(6, 2, 4))
	if !u.Equal(FromPorts(6, 0, 2, 4)) {
		t.Fatalf("Union = %s", u)
	}
}

func TestUnionEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Union()
}

// randomBitmap builds a width-w bitmap from a quick-generated seed.
func randomBitmap(w int, seed int64) Bitmap {
	rng := rand.New(rand.NewSource(seed))
	b := New(w)
	for i := 0; i < w; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i)
		}
	}
	return b
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		w := int(wRaw)%200 + 1
		b := randomBitmap(w, seed)
		dec, _, err := FromWire(w, b.AppendWire(nil))
		return err == nil && dec.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrIsUpperBound(t *testing.T) {
	// a|b contains both a and b; Hamming distance from a to a|b equals
	// popcount(b &^ a) — the property Algorithm 1's R-bound relies on.
	f := func(s1, s2 int64, wRaw uint8) bool {
		w := int(wRaw)%100 + 1
		a, b := randomBitmap(w, s1), randomBitmap(w, s2)
		or := a.Or(b)
		if !or.Contains(a) || !or.Contains(b) {
			return false
		}
		return a.HammingDistance(or) == b.AndNot(a).PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPopCountAfterOr(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b|
	f := func(s1, s2 int64, wRaw uint8) bool {
		w := int(wRaw)%100 + 1
		a, b := randomBitmap(w, s1), randomBitmap(w, s2)
		return a.Or(b).PopCount() == a.PopCount()+b.PopCount()-a.And(b).PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOrInPlace576(b *testing.B) {
	x := randomBitmap(576, 1)
	y := randomBitmap(576, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.OrInPlace(y)
	}
}

func BenchmarkAppendWire48(b *testing.B) {
	x := randomBitmap(48, 3)
	buf := make([]byte, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = x.AppendWire(buf[:0])
	}
}

// randBits returns a bitmap of the given width with each bit set with
// probability 1/2.
func randBits(rng *rand.Rand, width int) Bitmap {
	b := New(width)
	for i := 0; i < width; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	return b
}

// The fused kernels must agree with the compositional operations they
// replace, across widths straddling word boundaries.
func TestFusedKernelsMatchCompositional(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{0, 1, 7, 8, 63, 64, 65, 127, 128, 200, 576} {
		for trial := 0; trial < 20; trial++ {
			a := randBits(rng, w)
			b := randBits(rng, w)

			if got, want := a.AndNotCount(b), a.AndNot(b).PopCount(); got != want {
				t.Fatalf("width %d: AndNotCount = %d, want %d", w, got, want)
			}

			u := a.Clone()
			wantGrowth := b.AndNot(a).PopCount()
			wantUnion := a.Or(b)
			if got := u.OrWithGrowth(b); got != wantGrowth {
				t.Fatalf("width %d: OrWithGrowth = %d, want %d", w, got, wantGrowth)
			}
			if !u.Equal(wantUnion) {
				t.Fatalf("width %d: OrWithGrowth union = %s, want %s", w, u, wantUnion)
			}
		}
	}
}

func TestResetAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var b Bitmap
	for _, w := range []int{64, 5, 200, 0, 128, 65} {
		src := randBits(rng, w)
		b.CopyFrom(src)
		if !b.Equal(src) {
			t.Fatalf("width %d: CopyFrom mismatch", w)
		}
		// Mutating the copy must not touch the source.
		if w > 0 {
			before := src.Test(0)
			if before {
				b.Clear(0)
			} else {
				b.Set(0)
			}
			if src.Test(0) != before {
				t.Fatal("CopyFrom aliased the source")
			}
		}
		b.Reset(w)
		if b.Width() != w || !b.IsEmpty() {
			t.Fatalf("Reset(%d): width=%d empty=%t", w, b.Width(), b.IsEmpty())
		}
	}
}

// Reset and CopyFrom must reuse storage: a warm bitmap cycled through
// same-or-smaller widths performs no allocations.
func TestResetCopyFromNoAlloc(t *testing.T) {
	src := randBits(rand.New(rand.NewSource(13)), 192)
	var b Bitmap
	b.Reset(192) // warm to max width
	allocs := testing.AllocsPerRun(100, func() {
		b.CopyFrom(src)
		b.Reset(64)
		b.Reset(192)
	})
	if allocs != 0 {
		t.Fatalf("warm Reset/CopyFrom allocated %.1f per run", allocs)
	}
}

// The word-level AppendWire must round-trip through FromWire and match
// the bit-order contract at every width.
func TestAppendWireWordLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, w := range []int{0, 1, 3, 8, 9, 16, 63, 64, 65, 71, 72, 128, 129, 576} {
		b := randBits(rng, w)
		wire := b.AppendWire(nil)
		if len(wire) != b.ByteLen() {
			t.Fatalf("width %d: wire length %d, want %d", w, len(wire), b.ByteLen())
		}
		for i := 0; i < w; i++ {
			got := wire[i/8]&(1<<uint(i%8)) != 0
			if got != b.Test(i) {
				t.Fatalf("width %d: wire bit %d = %t, want %t", w, i, got, b.Test(i))
			}
		}
		back, n, err := FromWire(w, wire)
		if err != nil || n != len(wire) {
			t.Fatalf("width %d: FromWire n=%d err=%v", w, n, err)
		}
		if !back.Equal(b) {
			t.Fatalf("width %d: round trip mismatch", w)
		}
	}
}
