// Package bitmap provides dense, fixed-width port bitmaps.
//
// A Bitmap is the unit of Elmo's p-rule encoding (design decision D1 in
// the paper): each p-rule carries the set of switch output ports as a
// bitmap, because that is the internal representation a switch's queue
// manager consumes to replicate a packet. Bitmaps here are fixed-width
// (the width is the switch's port count for the relevant direction) and
// are encoded on the wire as ceil(width/8) big-endian bytes.
package bitmap

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitmap is a fixed-width bitset. The zero value is an empty bitmap of
// width 0; use New to create a bitmap of a given width.
//
// Bit i corresponds to output port i. Bits at positions >= Width are
// always zero; all operations preserve this invariant.
type Bitmap struct {
	width int
	words []uint64
}

// New returns an empty bitmap able to hold width bits.
// It panics if width is negative.
func New(width int) Bitmap {
	if width < 0 {
		panic("bitmap: negative width")
	}
	return Bitmap{width: width, words: make([]uint64, (width+63)/64)}
}

// FromPorts returns a bitmap of the given width with the listed port
// bits set. It panics if any port is out of range.
func FromPorts(width int, ports ...int) Bitmap {
	b := New(width)
	for _, p := range ports {
		b.Set(p)
	}
	return b
}

// Width reports the number of bits the bitmap holds.
func (b Bitmap) Width() int { return b.width }

// Clone returns an independent copy of b.
func (b Bitmap) Clone() Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return Bitmap{width: b.width, words: w}
}

// Set sets bit i. It panics if i is out of range.
func (b Bitmap) Set(i int) {
	b.check(i)
	b.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear clears bit i. It panics if i is out of range.
func (b Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/64] &^= 1 << (uint(i) % 64)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (b Bitmap) Test(i int) bool {
	b.check(i)
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (b Bitmap) check(i int) {
	if i < 0 || i >= b.width {
		panic(fmt.Sprintf("bitmap: bit %d out of range [0,%d)", i, b.width))
	}
}

// OrInPlace sets b = b | other. The two bitmaps must have equal width.
func (b Bitmap) OrInPlace(other Bitmap) {
	b.mustMatch(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Or returns b | other as a new bitmap. Widths must match.
func (b Bitmap) Or(other Bitmap) Bitmap {
	c := b.Clone()
	c.OrInPlace(other)
	return c
}

// OrWithGrowth sets b = b | other and returns the number of bits the
// union grew by (bits set in other but not previously in b). It is the
// fused form of AndNotCount + OrInPlace the clustering hot loop uses to
// maintain a running union and its popcount without temporaries.
// Widths must match.
func (b Bitmap) OrWithGrowth(other Bitmap) (growth int) {
	b.mustMatch(other)
	for i, w := range other.words {
		growth += bits.OnesCount64(w &^ b.words[i])
		b.words[i] |= w
	}
	return growth
}

// AndNotCount returns PopCount(b &^ other) without materializing the
// difference bitmap. Widths must match.
func (b Bitmap) AndNotCount(other Bitmap) int {
	b.mustMatch(other)
	n := 0
	for i, w := range b.words {
		n += bits.OnesCount64(w &^ other.words[i])
	}
	return n
}

// Reset re-shapes b in place to an empty bitmap of the given width,
// reusing the existing word storage when it is large enough. It panics
// if width is negative.
func (b *Bitmap) Reset(width int) {
	if width < 0 {
		panic("bitmap: negative width")
	}
	n := (width + 63) / 64
	if cap(b.words) < n {
		b.words = make([]uint64, n)
	} else {
		b.words = b.words[:n]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.width = width
}

// CopyFrom sets *b to an independent copy of src, reusing b's word
// storage when possible. After CopyFrom, b has src's width and bits but
// shares no memory with it.
func (b *Bitmap) CopyFrom(src Bitmap) {
	n := len(src.words)
	if cap(b.words) < n {
		b.words = make([]uint64, n)
	} else {
		b.words = b.words[:n]
	}
	copy(b.words, src.words)
	b.width = src.width
}

// AndNot returns b &^ other as a new bitmap. Widths must match.
func (b Bitmap) AndNot(other Bitmap) Bitmap {
	b.mustMatch(other)
	c := b.Clone()
	for i, w := range other.words {
		c.words[i] &^= w
	}
	return c
}

// And returns b & other as a new bitmap. Widths must match.
func (b Bitmap) And(other Bitmap) Bitmap {
	b.mustMatch(other)
	c := b.Clone()
	for i, w := range other.words {
		c.words[i] &= w
	}
	return c
}

func (b Bitmap) mustMatch(other Bitmap) {
	if b.width != other.width {
		panic(fmt.Sprintf("bitmap: width mismatch %d != %d", b.width, other.width))
	}
}

// Words exposes the backing word slice (bit i is bit i%64 of word
// i/64; bits beyond Width are zero). It is a read-only view for
// word-level consumers such as comparison and hashing — mutating it
// breaks the width invariant.
func (b Bitmap) Words() []uint64 { return b.words }

// PopCount returns the number of set bits.
func (b Bitmap) PopCount() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether no bits are set.
func (b Bitmap) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and other have the same width and bits.
func (b Bitmap) Equal(other Bitmap) bool {
	if b.width != other.width {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// HammingDistance returns the number of bit positions at which b and
// other differ. Widths must match.
//
// The clustering algorithm (paper §3.2) uses the distance from each
// member bitmap to the shared OR bitmap to bound redundant
// transmissions R.
func (b Bitmap) HammingDistance(other Bitmap) int {
	b.mustMatch(other)
	n := 0
	for i, w := range b.words {
		n += bits.OnesCount64(w ^ other.words[i])
	}
	return n
}

// Contains reports whether every bit set in other is also set in b.
func (b Bitmap) Contains(other Bitmap) bool {
	b.mustMatch(other)
	for i, w := range other.words {
		if w&^b.words[i] != 0 {
			return false
		}
	}
	return true
}

// Ports returns the indices of all set bits in ascending order.
func (b Bitmap) Ports() []int {
	ports := make([]int, 0, b.PopCount())
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			ports = append(ports, wi*64+tz)
			w &^= 1 << uint(tz)
		}
	}
	return ports
}

// ForEach calls fn for every set bit in ascending order. It avoids the
// allocation of Ports for hot paths.
func (b Bitmap) ForEach(fn func(port int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*64 + tz)
			w &^= 1 << uint(tz)
		}
	}
}

// ByteLen returns the number of bytes needed to encode b on the wire.
func (b Bitmap) ByteLen() int { return ByteLen(b.width) }

// ByteLen returns the wire size in bytes of a bitmap of the given width.
func ByteLen(width int) int { return (width + 7) / 8 }

// AppendWire appends the big-endian wire encoding of b to dst and
// returns the extended slice. Bit i is the (i%8)'th least significant
// bit of byte i/8, so the encoding is independent of word size.
//
// Because byte i of the encoding is exactly byte i%8 (little-endian) of
// word i/8 — bits beyond width are zero by invariant — the encoding is
// emitted a word at a time instead of a bit at a time.
func (b Bitmap) AppendWire(dst []byte) []byte {
	n := b.ByteLen()
	for wi := 0; n > 0; wi++ {
		w := b.words[wi]
		k := n
		if k > 8 {
			k = 8
		}
		for j := 0; j < k; j++ {
			dst = append(dst, byte(w>>(8*uint(j))))
		}
		n -= k
	}
	return dst
}

// FromWire decodes a bitmap of the given width from the prefix of data,
// returning the bitmap and the number of bytes consumed. It returns an
// error if data is too short or if padding bits beyond width are set
// (a malformed encoding).
func FromWire(width int, data []byte) (Bitmap, int, error) {
	var b Bitmap
	n, err := FromWireInto(width, data, &b)
	if err != nil {
		return Bitmap{}, 0, err
	}
	return b, n, nil
}

// FromWireInto is FromWire decoding into b, reusing its word storage
// when wide enough — the data-plane parse path calls it per packet and
// must not allocate once its scratch bitmaps are warm. On error b is
// left empty at the requested width.
func FromWireInto(width int, data []byte, b *Bitmap) (int, error) {
	n := ByteLen(width)
	if len(data) < n {
		return 0, fmt.Errorf("bitmap: need %d bytes for width %d, have %d", n, width, len(data))
	}
	b.Reset(width)
	for i := 0; i < n; i++ {
		by := data[i]
		base := i * 8
		for j := 0; j < 8; j++ {
			if by&(1<<uint(j)) == 0 {
				continue
			}
			bit := base + j
			if bit >= width {
				b.Reset(width)
				return 0, fmt.Errorf("bitmap: padding bit %d set beyond width %d", bit, width)
			}
			b.words[bit/64] |= 1 << (uint(bit) % 64)
		}
	}
	return n, nil
}

// String renders the bitmap as a binary string, bit 0 first, matching
// the paper's figures (e.g. "01" = port 1 only on a 2-port switch).
func (b Bitmap) String() string {
	var sb strings.Builder
	sb.Grow(b.width)
	for i := 0; i < b.width; i++ {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Union returns the bitwise OR of all the given bitmaps, which must
// share a width. It panics if bitmaps is empty.
func Union(bitmaps ...Bitmap) Bitmap {
	if len(bitmaps) == 0 {
		panic("bitmap: Union of no bitmaps")
	}
	u := bitmaps[0].Clone()
	for _, b := range bitmaps[1:] {
		u.OrInPlace(b)
	}
	return u
}
