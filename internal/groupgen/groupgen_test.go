package groupgen

import (
	"testing"

	"elmo/internal/placement"
	"elmo/internal/topology"
)

func testDeployment(t *testing.T) *placement.Deployment {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	cfg := placement.Config{
		Tenants: 10, VMsPerHost: 20, MinVMs: 6, MaxVMs: 40, MeanVMs: 15, P: 4, Seed: 2,
	}
	d, err := placement.Place(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateInvariants(t *testing.T) {
	d := testDeployment(t)
	cfg := Config{TotalGroups: 200, MinSize: 5, Dist: WVE, Seed: 4}
	groups, err := Generate(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 200 {
		t.Fatalf("groups = %d, want 200", len(groups))
	}
	tenantHosts := make([]map[topology.HostID]bool, len(d.Tenants))
	for i, tn := range d.Tenants {
		tenantHosts[i] = make(map[topology.HostID]bool)
		for _, vm := range tn.VMs {
			tenantHosts[i][vm.Host] = true
		}
	}
	seenIDs := make(map[uint32]bool)
	for _, g := range groups {
		if seenIDs[g.ID] {
			t.Fatalf("duplicate group ID %d", g.ID)
		}
		seenIDs[g.ID] = true
		if g.Size() < 5 && g.Size() != len(d.Tenants[g.Tenant].VMs) {
			t.Fatalf("group %d size %d below MinSize", g.ID, g.Size())
		}
		prev := topology.HostID(-1)
		for _, h := range g.Hosts {
			if h <= prev {
				t.Fatalf("group %d hosts not strictly ascending: %v", g.ID, g.Hosts)
			}
			prev = h
			if !tenantHosts[g.Tenant][h] {
				t.Fatalf("group %d contains host %d not owned by tenant %d", g.ID, h, g.Tenant)
			}
		}
	}
}

func TestGroupsProportionalToTenantSize(t *testing.T) {
	d := testDeployment(t)
	groups, err := Generate(d, Config{TotalGroups: 500, MinSize: 5, Dist: WVE, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(d.Tenants))
	for _, g := range groups {
		counts[g.Tenant]++
	}
	total := d.TotalVMs()
	for i, tn := range d.Tenants {
		exact := 500 * float64(tn.Size()) / float64(total)
		if float64(counts[i]) < exact-1 || float64(counts[i]) > exact+1 {
			t.Fatalf("tenant %d: %d groups, expected ~%.1f", i, counts[i], exact)
		}
	}
}

func TestUniformDistribution(t *testing.T) {
	d := testDeployment(t)
	groups, err := Generate(d, Config{TotalGroups: 300, MinSize: 5, Dist: Uniform, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		max := d.Tenants[g.Tenant].Size()
		if g.Size() > max {
			t.Fatalf("group %d larger than tenant", g.ID)
		}
	}
}

func TestWVEShape(t *testing.T) {
	// Sample the WVE sampler directly through a large synthetic tenant
	// so clamping does not distort the distribution shape.
	topo := topology.MustNew(topology.FacebookFabric())
	cfg := placement.Config{Tenants: 2, VMsPerHost: 20, MinVMs: 1400, MaxVMs: 1400, MeanVMs: 1400, P: 12, Seed: 5}
	d, err := placement.Place(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Generate(d, Config{TotalGroups: 20000, MinSize: 5, Dist: WVE, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(topo, groups)
	if s.MeanSize < 40 || s.MeanSize > 80 {
		t.Errorf("WVE mean size = %.1f, paper reports ~60", s.MeanSize)
	}
	if s.Below61 < 0.72 || s.Below61 > 0.88 {
		t.Errorf("WVE fraction below 61 = %.3f, paper reports ~0.80", s.Below61)
	}
	// §5.1.2 implies ~78% of groups below ~30 members at P=1.
	below31 := 0
	for i := range groups {
		if groups[i].Size() < 31 {
			below31++
		}
	}
	if frac := float64(below31) / float64(len(groups)); frac < 0.70 || frac > 0.85 {
		t.Errorf("WVE fraction below 31 = %.3f, want ~0.78", frac)
	}
	if s.Above700 < 0.002 || s.Above700 > 0.012 {
		t.Errorf("WVE fraction above 700 = %.4f, paper reports ~0.006", s.Above700)
	}
	if s.MinSize < 5 {
		t.Errorf("min group size = %d", s.MinSize)
	}
}

func TestGenerateErrors(t *testing.T) {
	d := testDeployment(t)
	if _, err := Generate(d, Config{TotalGroups: -1, MinSize: 5}); err == nil {
		t.Error("negative TotalGroups accepted")
	}
	if _, err := Generate(d, Config{TotalGroups: 1, MinSize: 0}); err == nil {
		t.Error("zero MinSize accepted")
	}
	empty := &placement.Deployment{Topo: d.Topo, Tenants: []placement.Tenant{}}
	if _, err := Generate(empty, Config{TotalGroups: 1, MinSize: 5}); err == nil {
		t.Error("empty deployment accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := testDeployment(t)
	cfg := Config{TotalGroups: 100, MinSize: 5, Dist: WVE, Seed: 13}
	g1, _ := Generate(d, cfg)
	g2, _ := Generate(d, cfg)
	if len(g1) != len(g2) {
		t.Fatal("not deterministic")
	}
	for i := range g1 {
		if g1[i].Size() != g2[i].Size() || g1[i].Tenant != g2[i].Tenant {
			t.Fatal("not deterministic")
		}
		for j := range g1[i].Hosts {
			if g1[i].Hosts[j] != g2[i].Hosts[j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	s := Summarize(topo, nil)
	if s.Groups != 0 || s.MinSize != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func BenchmarkGenerate(b *testing.B) {
	topo := topology.MustNew(topology.FacebookFabric())
	cfg := placement.PaperConfig(12)
	cfg.Tenants = 100
	d, err := placement.Place(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := Config{TotalGroups: 5000, MinSize: 5, Dist: WVE, Seed: 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(d, gcfg); err != nil {
			b.Fatal(err)
		}
	}
}
