// Package groupgen generates multicast-group workloads over a placed
// deployment, following the paper's evaluation setup (§5.1.1):
//
//   - The total number of groups is fixed (1M at paper scale) and each
//     tenant receives groups in proportion to its VM count.
//   - Group sizes follow either the IBM WebSphere Virtual Enterprise
//     (WVE) production distribution — average size 60, ~80% of groups
//     below 61 members, ~0.6% above 700 — or a Uniform distribution
//     between the minimum size and the tenant size.
//   - Every group has at least MinSize (5) members; members are VMs of
//     the owning tenant chosen uniformly without replacement, capped
//     by the tenant size.
package groupgen

import (
	"fmt"
	"math/rand"
	"sort"

	"elmo/internal/placement"
	"elmo/internal/topology"
)

// Distribution selects the group-size distribution.
type Distribution int

const (
	// WVE is the IBM WebSphere Virtual Enterprise trace distribution.
	WVE Distribution = iota
	// Uniform draws sizes uniformly in [MinSize, tenantSize].
	Uniform
)

func (d Distribution) String() string {
	switch d {
	case WVE:
		return "WVE"
	case Uniform:
		return "Uniform"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Config parameterizes group generation.
type Config struct {
	// TotalGroups across all tenants (paper: 1,000,000).
	TotalGroups int
	// MinSize is the minimum members per group (paper: 5).
	MinSize int
	// Dist selects the size distribution.
	Dist Distribution
	// Seed makes generation deterministic.
	Seed int64
}

// PaperConfig returns the evaluation's group workload for a
// distribution at a given total group count.
func PaperConfig(total int, dist Distribution) Config {
	return Config{TotalGroups: total, MinSize: 5, Dist: dist, Seed: 7}
}

// Group is one multicast group: the owning tenant and the member VMs'
// hosts. A host appears once per member VM placed on it; because
// placement never co-locates two VMs of a tenant, hosts are distinct.
type Group struct {
	// ID is the group index, unique across the deployment; the
	// provider maps it to the tenant-scoped group IP.
	ID uint32
	// Tenant owns the group.
	Tenant int
	// Hosts are the member hosts, ascending.
	Hosts []topology.HostID
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.Hosts) }

// Generate produces the group workload for a deployment.
func Generate(dep *placement.Deployment, cfg Config) ([]Group, error) {
	if cfg.TotalGroups < 0 {
		return nil, fmt.Errorf("groupgen: negative TotalGroups")
	}
	if cfg.MinSize < 1 {
		return nil, fmt.Errorf("groupgen: MinSize must be >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	totalVMs := dep.TotalVMs()
	if totalVMs == 0 {
		return nil, fmt.Errorf("groupgen: deployment has no VMs")
	}
	groups := make([]Group, 0, cfg.TotalGroups)
	// Apportion groups to tenants proportionally to size (largest
	// remainder method keeps the total exact).
	counts := apportion(dep, cfg.TotalGroups)
	id := uint32(0)
	for ti := range dep.Tenants {
		tenant := &dep.Tenants[ti]
		n := counts[ti]
		for i := 0; i < n; i++ {
			size := sampleSize(rng, cfg, tenant.Size())
			g := Group{ID: id, Tenant: tenant.ID, Hosts: pickMembers(rng, tenant, size)}
			id++
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// apportion distributes total groups over tenants proportionally to VM
// count using largest remainders.
func apportion(dep *placement.Deployment, total int) []int {
	totalVMs := dep.TotalVMs()
	counts := make([]int, len(dep.Tenants))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(dep.Tenants))
	assigned := 0
	for i := range dep.Tenants {
		exact := float64(total) * float64(dep.Tenants[i].Size()) / float64(totalVMs)
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total && i < len(rems); i++ {
		counts[rems[i].idx]++
		assigned++
	}
	return counts
}

// sampleSize draws a group size, clamped to [MinSize, tenantSize]. If
// the tenant is smaller than MinSize the group takes the whole tenant.
func sampleSize(rng *rand.Rand, cfg Config, tenantSize int) int {
	max := tenantSize
	if max < cfg.MinSize {
		return max
	}
	var s int
	switch cfg.Dist {
	case Uniform:
		s = cfg.MinSize + rng.Intn(max-cfg.MinSize+1)
	default: // WVE
		s = sampleWVE(rng)
	}
	if s < cfg.MinSize {
		s = cfg.MinSize
	}
	if s > max {
		s = max
	}
	return s
}

// sampleWVE reproduces the WVE trace's group-size distribution from
// its published moments: average size 60, ~80% of groups below 61
// members, ~0.6% above 700, and — via the P=1 evaluation's "77.8% of
// groups have less than 36 switches" (≈ members + pods + core on the
// logical tree) — ~78% of groups below ~30 members. The bulk is small
// groups in [5,30); a thin band covers [30,61); the upper-middle band
// is a shifted exponential truncated at 700; the heavy tail is uniform
// in (700, 1364] (1,364 = the trace's group count, used as the scale
// ceiling). Overall mean ≈ 60.
func sampleWVE(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.778:
		return 5 + rng.Intn(26) // [5, 30], mean ≈ 17.5
	case u < 0.80:
		return 31 + rng.Intn(30) // [31, 60]
	case u < 0.994:
		// Shifted exponential, mean 170 beyond 61, truncated at 700:
		// band mean ≈ 210.
		for {
			x := 61 + int(rng.ExpFloat64()*170)
			if x <= 700 {
				return x
			}
		}
	default:
		return 701 + rng.Intn(1364-701+1) // heavy tail, mean ≈ 1032
	}
}

// pickMembers samples 'size' distinct VMs of the tenant (partial
// Fisher–Yates) and returns their hosts in ascending order.
func pickMembers(rng *rand.Rand, t *placement.Tenant, size int) []topology.HostID {
	n := t.Size()
	idx := rng.Perm(n)[:size]
	hosts := make([]topology.HostID, size)
	for i, j := range idx {
		hosts[i] = t.VMs[j].Host
	}
	sort.Slice(hosts, func(a, b int) bool { return hosts[a] < hosts[b] })
	return hosts
}

// Stats summarizes a generated workload.
type Stats struct {
	Groups    int
	MeanSize  float64
	MaxSize   int
	MinSize   int
	Below61   float64 // fraction of groups with < 61 members
	Above700  float64 // fraction of groups with > 700 members
	MeanLeafs float64 // mean distinct leaves per group
}

// Summarize computes workload statistics (used by tests and the
// experiment harness to validate the distribution shape).
func Summarize(topo *topology.Topology, groups []Group) Stats {
	s := Stats{Groups: len(groups), MinSize: 1 << 30}
	if len(groups) == 0 {
		s.MinSize = 0
		return s
	}
	var sumSize, sumLeaves int
	var below, above int
	for i := range groups {
		n := groups[i].Size()
		sumSize += n
		if n < 61 {
			below++
		}
		if n > 700 {
			above++
		}
		if n > s.MaxSize {
			s.MaxSize = n
		}
		if n < s.MinSize {
			s.MinSize = n
		}
		sumLeaves += len(placement.LeavesOf(topo, groups[i].Hosts))
	}
	s.MeanSize = float64(sumSize) / float64(len(groups))
	s.Below61 = float64(below) / float64(len(groups))
	s.Above700 = float64(above) / float64(len(groups))
	s.MeanLeafs = float64(sumLeaves) / float64(len(groups))
	return s
}
