package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
)

// checkedEvent encodes a writer id and per-writer index into one hop
// event, with a checksum spread across independent fields. A torn event
// (fields from two different writes) fails the checksum; a lost event
// leaves a hole in the per-writer index coverage.
func checkedEvent(writer, i int) Event {
	vni := uint32(writer)<<16 | uint32(i)
	return Event{
		Cat: CatHop, Kind: KindHop, Tier: TierLeaf,
		Switch: int32(writer),
		VNI:    vni,
		Group:  vni ^ 0xdeadbeef,
		Arg:    int64(writer)<<32 | int64(i),
	}
}

func verifyChecked(ev Event) (writer, index int, ok bool) {
	writer = int(ev.Switch)
	index = int(ev.VNI & 0xffff)
	ok = ev.VNI == uint32(writer)<<16|uint32(index) &&
		ev.Group == ev.VNI^0xdeadbeef &&
		ev.Arg == int64(writer)<<32|int64(index)
	return writer, index, ok
}

// TestConcurrentWritersNoLostOrTornEvents hammers the ring from many
// goroutines with the capacity sized to hold everything: afterwards
// every (writer, index) pair must be present exactly once with
// self-consistent fields — the ring under contention neither drops nor
// tears an event.
func TestConcurrentWritersNoLostOrTornEvents(t *testing.T) {
	const writers, perWriter = 8, 512
	r := New(Config{Capacity: writers * perWriter})
	r.Enable()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(checkedEvent(w, i))
			}
		}(w)
	}
	wg.Wait()

	evs := r.Snapshot()
	if len(evs) != writers*perWriter {
		t.Fatalf("ring held %d events, want %d", len(evs), writers*perWriter)
	}
	seen := make([][]bool, writers)
	for w := range seen {
		seen[w] = make([]bool, perWriter)
	}
	lastPerWriter := make([]int, writers)
	for w := range lastPerWriter {
		lastPerWriter[w] = -1
	}
	for i, ev := range evs {
		if i > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot Seq not dense at %d: %d after %d", i, ev.Seq, evs[i-1].Seq)
		}
		w, idx, ok := verifyChecked(ev)
		if !ok {
			t.Fatalf("torn event: VNI=%#x Group=%#x Arg=%#x", ev.VNI, ev.Group, ev.Arg)
		}
		if seen[w][idx] {
			t.Fatalf("duplicate event writer %d index %d", w, idx)
		}
		seen[w][idx] = true
		// One writer's events must appear in its program order.
		if idx <= lastPerWriter[w] {
			t.Fatalf("writer %d order inverted: index %d after %d", w, idx, lastPerWriter[w])
		}
		lastPerWriter[w] = idx
	}
	for w := range seen {
		for idx, ok := range seen[w] {
			if !ok {
				t.Fatalf("lost event: writer %d index %d missing", w, idx)
			}
		}
	}
}

// TestConcurrentSnapshotAndChromeExport runs writers, snapshot readers,
// and Chrome exporters simultaneously (the -race target): every
// mid-flight snapshot must be internally consistent — dense Seq, no
// torn fields — and every export valid JSON.
func TestConcurrentSnapshotAndChromeExport(t *testing.T) {
	const writers, perWriter, readers = 4, 2000, 3
	r := New(Config{Capacity: 256}) // small ring: force wraparound under load
	r.Enable()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(checkedEvent(w, i))
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Snapshot()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq != evs[i-1].Seq+1 {
						t.Errorf("mid-flight snapshot Seq gap: %d after %d", evs[i].Seq, evs[i-1].Seq)
						return
					}
					if _, _, ok := verifyChecked(evs[i]); !ok {
						t.Errorf("torn event in mid-flight snapshot: VNI=%#x Group=%#x Arg=%#x",
							evs[i].VNI, evs[i].Group, evs[i].Arg)
						return
					}
				}
				if err := WriteChrome(io.Discard, evs); err != nil {
					t.Errorf("WriteChrome during writes: %v", err)
					return
				}
			}
		}()
	}

	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Stop readers once all writers are done: Seen reports total offered.
	for r.Seen(CatHop) < writers*perWriter {
	}
	close(stop)
	<-done

	// Final export parses as one JSON array of trace_event objects.
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("final Chrome export is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range decoded.TraceEvents {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != 256 {
		t.Fatalf("final export carries %d complete events, want full ring of 256", complete)
	}
}
