package trace

import (
	"fmt"
	"strings"
)

// RenderPath reconstructs the packet-path of a group's send from the
// hop and host events in evs, in record order:
//
//	group vni=1 g=1: host 0 → leaf 0 [p-rule ports=01100000 up=1] →
//	host 1 ✓ → spine 0 [p-rule ...] → core 1 [p-rule ...] → ...
//
// Hops appear in the order the switches processed the packet (the
// fabric's breadth-first traversal), so the chain is the flattened
// multicast tree: every switch the packet visited, with the rule kind
// (p-rule / s-rule / default) that forwarded it there and the header
// bytes popped. Deliveries render as "host N ✓", spurious copies a
// hypervisor filtered as "host N ✗", drops as "leaf N ✗drop".
//
// Pass the events of one send (e.g. a Snapshot taken around a single
// Send call); events of other groups are skipped via the vni/group
// filter. An empty result means no matching events.
func RenderPath(evs []Event, vni, group uint32) string {
	var prefix string
	parts := make([]string, 0, len(evs))
	for _, ev := range evs {
		if ev.VNI != vni || ev.Group != group {
			continue
		}
		switch ev.Kind {
		case KindEncap:
			if prefix == "" {
				prefix = fmt.Sprintf("group vni=%d g=%d: host %d", vni, group, ev.Switch)
			}
		case KindHop:
			parts = append(parts, hopString(ev))
		case KindDrop:
			parts = append(parts, fmt.Sprintf("%s %d ✗drop", ev.Tier, ev.Switch))
		case KindDeliver:
			parts = append(parts, fmt.Sprintf("host %d ✓", ev.Switch))
		case KindFilter:
			parts = append(parts, fmt.Sprintf("host %d ✗", ev.Switch))
		case KindHostDrop:
			parts = append(parts, fmt.Sprintf("host %d ✗queue-full", ev.Switch))
		case KindFaultDrop:
			parts = append(parts, fmt.Sprintf("%s %d ✗fault-drop", ev.Tier, ev.Switch))
		case KindFaultDup:
			parts = append(parts, fmt.Sprintf("%s %d ⧉fault-dup", ev.Tier, ev.Switch))
		case KindFaultCorrupt:
			parts = append(parts, fmt.Sprintf("%s %d ≈fault-corrupt", ev.Tier, ev.Switch))
		case KindFaultDelay:
			parts = append(parts, fmt.Sprintf("%s %d …fault-delay+%d", ev.Tier, ev.Switch, ev.Arg))
		}
	}
	if prefix == "" && len(parts) == 0 {
		return ""
	}
	if prefix == "" {
		prefix = fmt.Sprintf("group vni=%d g=%d:", vni, group)
	}
	if len(parts) == 0 {
		return prefix
	}
	return prefix + " → " + strings.Join(parts, " → ")
}

// hopString renders one switch traversal: tier, switch ID, the rule
// kind that matched, the chosen output ports, and the header delta.
func hopString(ev Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %d [%s", ev.Tier, ev.Switch, ev.Rule)
	if ev.PortWidth > 0 && !ev.Ports.Empty() {
		fmt.Fprintf(&sb, " ports=%s", ev.Ports.BitString(int(ev.PortWidth)))
	}
	if ev.UpWidth > 0 && !ev.UpPorts.Empty() {
		fmt.Fprintf(&sb, " up=%s", ev.UpPorts.BitString(int(ev.UpWidth)))
	}
	if ev.Popped != 0 {
		fmt.Fprintf(&sb, " popped=%dB", ev.Popped)
	}
	sb.WriteByte(']')
	return sb.String()
}

// RenderControl renders the control-plane and encoder events of evs as
// one line each, in record order — the controller's flight log during
// a churn or failure window.
func RenderControl(evs []Event) string {
	var sb strings.Builder
	for _, ev := range evs {
		detect := ev.Kind == KindDetectFail || ev.Kind == KindDetectRepair
		if ev.Cat != CatControl && ev.Cat != CatEncoder && !detect {
			continue
		}
		fmt.Fprintf(&sb, "%-12s", ev.Kind)
		if ev.VNI != 0 || ev.Group != 0 {
			fmt.Fprintf(&sb, " vni=%d g=%d", ev.VNI, ev.Group)
		}
		switch ev.Kind {
		case KindJoin, KindLeave:
			fmt.Fprintf(&sb, " host=%d", ev.Arg)
		case KindCreateGroup, KindRemoveGroup:
			fmt.Fprintf(&sb, " members=%d", ev.Arg)
		case KindRecompute:
			if ev.Arg >= 0 {
				fmt.Fprintf(&sb, " changed-host=%d", ev.Arg)
			}
		case KindFailSpine, KindRepairSpine:
			fmt.Fprintf(&sb, " spine=%d impacted=%d", ev.Switch, ev.Arg)
		case KindFailCore, KindRepairCore:
			fmt.Fprintf(&sb, " core=%d impacted=%d", ev.Switch, ev.Arg)
		case KindDetectFail, KindDetectRepair:
			fmt.Fprintf(&sb, " %s=%d rounds=%d", ev.Tier, ev.Switch, ev.Arg)
		}
		if ev.Note != "" {
			fmt.Fprintf(&sb, " %s", ev.Note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
