package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// Array / "traceEvents" object format chrome://tracing and Perfetto
// load). Packet and control events are emitted as complete events
// (ph="X"); process/thread names as metadata events (ph="M").
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeFile is the object-form container ({"traceEvents": [...]}),
// which both loaders accept and which permits trailing metadata.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes events as Chrome trace_event JSON. Rows map
// the fabric hierarchy: each tier (host/leaf/spine/core/controller) is
// a process, each switch within it a thread, so loading the file in
// chrome://tracing or Perfetto shows packet hops per switch on a
// shared timeline alongside the controller's actions. Timestamps are
// microseconds since the recorder started; every event is emitted as
// a complete (ph="X") slice so per-hop durations are visible (hops are
// effectively instantaneous here and get a 1µs floor).
func WriteChrome(w io.Writer, events []Event) error {
	out := chromeFile{DisplayTimeUnit: "ns"}
	out.TraceEvents = make([]chromeEvent, 0, len(events)+8)
	// Name the tier "processes" once.
	for _, t := range []Tier{TierHost, TierLeaf, TierSpine, TierCore, TierController} {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: int(t),
			Args: map[string]interface{}{"name": t.String()},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: chromeName(ev),
			Cat:  ev.Cat.String(),
			Ph:   "X",
			TS:   float64(ev.TS) / 1e3, // ns → µs
			Dur:  1,
			PID:  int(ev.Tier),
			TID:  int(ev.Switch),
			Args: chromeArgs(ev),
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func chromeName(ev Event) string {
	switch ev.Kind {
	case KindHop:
		return fmt.Sprintf("%s %d %s", ev.Tier, ev.Switch, ev.Rule)
	case KindDeliver, KindFilter, KindEncap:
		return fmt.Sprintf("%s host %d", ev.Kind, ev.Switch)
	default:
		return ev.Kind.String()
	}
}

func chromeArgs(ev Event) map[string]interface{} {
	args := map[string]interface{}{
		"seq":  ev.Seq,
		"kind": ev.Kind.String(),
	}
	if ev.VNI != 0 || ev.Group != 0 {
		args["vni"] = ev.VNI
		args["group"] = ev.Group
	}
	if ev.Rule != RuleNone {
		args["rule"] = ev.Rule.String()
	}
	if ev.PortWidth > 0 && !ev.Ports.Empty() {
		args["ports"] = ev.Ports.BitString(int(ev.PortWidth))
	}
	if ev.UpWidth > 0 && !ev.UpPorts.Empty() {
		args["up"] = ev.UpPorts.BitString(int(ev.UpWidth))
	}
	if ev.Popped != 0 {
		args["popped_bytes"] = ev.Popped
	}
	if ev.Arg != 0 {
		args["arg"] = ev.Arg
	}
	if ev.Note != "" {
		args["note"] = ev.Note
	}
	return args
}
