package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func hopEvent(sw int32, rule RuleKind) Event {
	var ports, up PortMask
	ports.Set(1)
	ports.Set(2)
	up.Set(0)
	return Event{
		Cat: CatHop, Kind: KindHop, Tier: TierLeaf, Switch: sw,
		Rule: rule, VNI: 7, Group: 9,
		Ports: ports, PortWidth: 4, UpPorts: up, UpWidth: 2, Popped: 6,
	}
}

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	r := New(Config{Capacity: 16})
	if On(r, CatHop) {
		t.Fatal("new recorder should start disabled")
	}
	r.Record(hopEvent(1, RulePRule))
	if r.Len() != 0 {
		t.Fatalf("disabled recorder stored %d events", r.Len())
	}
	var nilRec Recorder
	if On(nilRec, CatHop) {
		t.Fatal("nil recorder must be off")
	}
}

func TestEnablePerCategory(t *testing.T) {
	r := New(Config{Capacity: 16})
	r.Enable(CatControl)
	if On(r, CatHop) {
		t.Fatal("hop category should stay off")
	}
	if !On(r, CatControl) {
		t.Fatal("control category should be on")
	}
	r.Record(hopEvent(1, RulePRule)) // wrong category: ignored
	r.Record(Event{Cat: CatControl, Kind: KindJoin, VNI: 1, Group: 2, Arg: 5})
	if r.Len() != 1 {
		t.Fatalf("got %d events, want 1", r.Len())
	}
	r.Enable() // no args = everything
	if !On(r, CatHop) || !On(r, CatEncoder) {
		t.Fatal("Enable() should turn all categories on")
	}
	r.Disable()
	if On(r, CatControl) {
		t.Fatal("Disable should turn everything off")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(Config{Capacity: 4})
	r.Enable(CatHop)
	for i := 0; i < 10; i++ {
		r.Record(hopEvent(int32(i), RulePRule))
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring held %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int32(6 + i); ev.Switch != want {
			t.Fatalf("event %d switch = %d, want %d (oldest-first order)", i, ev.Switch, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotonic Seq: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestSampling(t *testing.T) {
	r := New(Config{Capacity: 128, SampleEvery: map[Category]int{CatHop: 10}})
	r.Enable()
	for i := 0; i < 100; i++ {
		r.Record(hopEvent(int32(i), RulePRule))
	}
	// Control events are unsampled.
	r.Record(Event{Cat: CatControl, Kind: KindJoin})
	evs := r.Snapshot()
	hops := 0
	for _, ev := range evs {
		if ev.Cat == CatHop {
			hops++
		}
	}
	if hops != 10 {
		t.Fatalf("sampled %d hop events, want 10 (1-in-10 of 100)", hops)
	}
	if got := r.Seen(CatHop); got != 100 {
		t.Fatalf("Seen(CatHop) = %d, want 100", got)
	}
	if len(evs) != 11 {
		t.Fatalf("total events %d, want 11", len(evs))
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(Config{Capacity: 1024})
	r.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(hopEvent(int32(g), RulePRule))
			}
		}(g)
	}
	wg.Wait()
	evs := r.Snapshot()
	if len(evs) != 1024 {
		t.Fatalf("ring held %d, want full 1024", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
}

func TestOnDisabledPathDoesNotAllocate(t *testing.T) {
	r := New(Config{Capacity: 16})
	var rec Recorder = r
	if n := testing.AllocsPerRun(1000, func() {
		if On(rec, CatHop) {
			t.Fatal("should be disabled")
		}
	}); n != 0 {
		t.Fatalf("disabled-path guard allocates %.1f per run, want 0", n)
	}
}

func TestPortMask(t *testing.T) {
	var m PortMask
	if !m.Empty() {
		t.Fatal("zero mask should be empty")
	}
	m.Set(1)
	m.Set(3)
	m.Set(500) // beyond capacity: ignored, not a panic
	if got := m.BitString(5); got != "01010" {
		t.Fatalf("BitString = %q, want 01010", got)
	}
	if got := m.Ports(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Ports = %v", got)
	}
}

func TestRenderPath(t *testing.T) {
	evs := []Event{
		{Cat: CatHost, Kind: KindEncap, Tier: TierHost, Switch: 0, VNI: 7, Group: 9},
		hopEvent(1, RulePRule),
		{Cat: CatHop, Kind: KindHop, Tier: TierSpine, Switch: 2, Rule: RuleSRule, VNI: 7, Group: 9},
		{Cat: CatHop, Kind: KindHop, Tier: TierLeaf, Switch: 3, Rule: RuleDefault, VNI: 7, Group: 9},
		{Cat: CatHost, Kind: KindDeliver, Tier: TierHost, Switch: 12, VNI: 7, Group: 9},
		{Cat: CatHost, Kind: KindFilter, Tier: TierHost, Switch: 13, VNI: 7, Group: 9},
		// Different group: must be filtered out.
		{Cat: CatHop, Kind: KindHop, Tier: TierCore, Switch: 99, Rule: RulePRule, VNI: 1, Group: 1},
	}
	got := RenderPath(evs, 7, 9)
	for _, want := range []string{
		"group vni=7 g=9: host 0",
		"leaf 1 [p-rule ports=0110 up=10 popped=6B]",
		"spine 2 [s-rule]",
		"leaf 3 [default]",
		"host 12 ✓",
		"host 13 ✗",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("RenderPath missing %q in:\n%s", want, got)
		}
	}
	if strings.Contains(got, "core 99") {
		t.Fatalf("RenderPath leaked another group's hop:\n%s", got)
	}
	if RenderPath(evs, 5, 5) != "" {
		t.Fatal("RenderPath of absent group should be empty")
	}
}

func TestRenderControl(t *testing.T) {
	evs := []Event{
		{Cat: CatControl, Kind: KindJoin, VNI: 1, Group: 2, Arg: 40},
		{Cat: CatControl, Kind: KindFailSpine, Tier: TierController, Switch: 3, Arg: 2},
		{Cat: CatEncoder, Kind: KindEncode, VNI: 1, Group: 2, Note: "R=0 HmaxLeaf=30"},
		hopEvent(1, RulePRule), // not a control event
	}
	got := RenderControl(evs)
	for _, want := range []string{"join", "host=40", "fail-spine", "spine=3 impacted=2", "R=0 HmaxLeaf=30"} {
		if !strings.Contains(got, want) {
			t.Fatalf("RenderControl missing %q in:\n%s", want, got)
		}
	}
	if strings.Contains(got, "hop") {
		t.Fatalf("RenderControl included a hop event:\n%s", got)
	}
	if n := len(strings.Split(strings.TrimRight(got, "\n"), "\n")); n != 3 {
		t.Fatalf("RenderControl produced %d lines, want 3", n)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	r := New(Config{Capacity: 64})
	r.Enable()
	r.Record(Event{Cat: CatHost, Kind: KindEncap, Tier: TierHost, Switch: 0, VNI: 7, Group: 9})
	r.Record(hopEvent(1, RulePRule))
	r.Record(Event{Cat: CatControl, Kind: KindFailSpine, Tier: TierController, Switch: 2, Arg: 1, Note: "x"})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range decoded.TraceEvents {
		if ev["ph"] == "X" {
			complete++
			for _, field := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[field]; !ok {
					t.Fatalf("complete event missing %q: %v", field, ev)
				}
			}
		}
	}
	if complete != 3 {
		t.Fatalf("got %d complete events, want 3 (one per recorded event)", complete)
	}
}
