// Package trace is the repo's cross-layer flight recorder: a bounded,
// lock-light ring buffer of typed events that the data planes (the
// switch pipelines shared by the fabric, livefabric, and udpfabric
// tiers), the hypervisors, and the controller emit while they work.
//
// Tracing answers the questions metrics cannot: *why* did a packet
// take a path (which p-rule, s-rule, or default rule forwarded it at
// each hop, and how many header bytes were popped), and *what* did the
// controller do during a churn or failure event (joins, recomputes,
// FailSpine/FailCore, rollbacks) — the per-hop encoding behavior the
// paper's §3–§5 claims are about.
//
// The disabled path is free: instrumented code guards every event with
// On(r, cat), a nil check plus a single atomic load, and builds the
// event only when it passes, so a disabled (or absent) recorder adds
// zero allocations and no locking to packet forwarding. When enabled,
// events go through per-category 1-in-N sampling and land in a
// fixed-capacity ring that overwrites the oldest entries, so the
// recorder is safe to leave attached to long runs.
//
// Exporters: RenderPath reconstructs a human-readable per-packet hop
// chain ("group vni=1 g=1: host 0 → leaf 0 [p-rule ports=...] → ...");
// WriteChrome emits Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Category is a coarse event class with its own enable bit and
// sampling rate. Hot-path packet events and cold control-plane events
// are separate categories so one can be sampled without the other.
type Category uint8

const (
	// CatHop is a network-switch pipeline traversal (leaf/spine/core).
	CatHop Category = iota
	// CatHost is a hypervisor event: encapsulation, delivery, filter.
	CatHost
	// CatControl is a controller lifecycle event: group create/remove,
	// join/leave, failure, repair, rollback.
	CatControl
	// CatEncoder is an encoding/clustering decision with its
	// Hmax/Kmax/R/Fmax context.
	CatEncoder
	// CatFabric is a fabric-tier transport event: queue overflow drops,
	// malformed frames (live fabrics only; the sync fabric surfaces
	// these as errors).
	CatFabric
	// CatChaos is an injected fault: a chaos injector dropped,
	// duplicated, corrupted, or delayed a packet at a link crossing, or
	// the health monitor detected a failure/repair from probe loss.
	CatChaos

	numCategories
)

func (c Category) String() string {
	switch c {
	case CatHop:
		return "hop"
	case CatHost:
		return "host"
	case CatControl:
		return "control"
	case CatEncoder:
		return "encoder"
	case CatFabric:
		return "fabric"
	case CatChaos:
		return "chaos"
	default:
		return "?"
	}
}

// allMask enables every category.
const allMask = 1<<numCategories - 1

// Kind is the specific event type within a category.
type Kind uint8

const (
	// KindHop (CatHop): one switch processed a packet and emitted
	// copies; Rule says what matched, Ports/UpPorts where copies went,
	// Popped how many Elmo header bytes the switch consumed.
	KindHop Kind = iota
	// KindDrop (CatHop): a switch dropped the packet; Arg is the
	// dataplane drop reason code.
	KindDrop
	// KindEncap (CatHost): a hypervisor encapsulated a send; Arg is the
	// Elmo stream length in bytes.
	KindEncap
	// KindDeliver (CatHost): a hypervisor accepted a copy for a member.
	KindDeliver
	// KindFilter (CatHost): a hypervisor discarded a spurious copy.
	KindFilter
	// KindHostDrop (CatFabric): a live fabric dropped a frame at a full
	// host queue.
	KindHostDrop
	// KindMalformed (CatFabric): a live fabric failed to parse a frame.
	KindMalformed
	// KindCreateGroup / KindRemoveGroup (CatControl): group lifecycle;
	// Arg is the member count.
	KindCreateGroup
	KindRemoveGroup
	// KindJoin / KindLeave (CatControl): membership churn; Arg is the
	// host, Note the role.
	KindJoin
	KindLeave
	// KindRecompute (CatControl): a group's tree was recomputed; Arg is
	// the host that changed (or -1).
	KindRecompute
	// KindFailSpine / KindFailCore / KindRepairSpine / KindRepairCore
	// (CatControl): failure charging; Switch is the failed switch, Arg
	// the number of groups impacted.
	KindFailSpine
	KindFailCore
	KindRepairSpine
	KindRepairCore
	// KindRollback (CatControl): an update failed and state was rolled
	// back; Note carries the error.
	KindRollback
	// KindEncode (CatEncoder): one encoding run; Note carries the
	// Hmax/Kmax/R/Fmax context and the resulting rule counts.
	KindEncode
	// KindFaultDrop / KindFaultDup / KindFaultCorrupt / KindFaultDelay
	// (CatChaos): an injector verdict at a link crossing; Tier/Switch
	// identify the receiving end of the link, Arg the delay in steps for
	// KindFaultDelay.
	KindFaultDrop
	KindFaultDup
	KindFaultCorrupt
	KindFaultDelay
	// KindDetectFail / KindDetectRepair (CatChaos): the health monitor
	// concluded from probe loss that a switch failed or recovered;
	// Tier/Switch identify the switch, Arg the consecutive probe rounds
	// behind the verdict.
	KindDetectFail
	KindDetectRepair
)

func (k Kind) String() string {
	switch k {
	case KindHop:
		return "hop"
	case KindDrop:
		return "drop"
	case KindEncap:
		return "encap"
	case KindDeliver:
		return "deliver"
	case KindFilter:
		return "filter"
	case KindHostDrop:
		return "host-drop"
	case KindMalformed:
		return "malformed"
	case KindCreateGroup:
		return "create-group"
	case KindRemoveGroup:
		return "remove-group"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindRecompute:
		return "recompute"
	case KindFailSpine:
		return "fail-spine"
	case KindFailCore:
		return "fail-core"
	case KindRepairSpine:
		return "repair-spine"
	case KindRepairCore:
		return "repair-core"
	case KindRollback:
		return "rollback"
	case KindEncode:
		return "encode"
	case KindFaultDrop:
		return "fault-drop"
	case KindFaultDup:
		return "fault-dup"
	case KindFaultCorrupt:
		return "fault-corrupt"
	case KindFaultDelay:
		return "fault-delay"
	case KindDetectFail:
		return "detect-fail"
	case KindDetectRepair:
		return "detect-repair"
	default:
		return "?"
	}
}

// RuleKind classifies what forwarded a packet at a hop, the §4.1
// ingress control flow: packet p-rule, group-table s-rule, or the
// default p-rule.
type RuleKind uint8

const (
	// RuleNone: no rule involved (drops, host events).
	RuleNone RuleKind = iota
	// RulePRule: a p-rule carried in the packet matched.
	RulePRule
	// RuleSRule: the switch's group table (s-rule) matched.
	RuleSRule
	// RuleDefault: the header's default p-rule was used.
	RuleDefault
)

func (r RuleKind) String() string {
	switch r {
	case RulePRule:
		return "p-rule"
	case RuleSRule:
		return "s-rule"
	case RuleDefault:
		return "default"
	default:
		return "-"
	}
}

// Tier locates an event's emitter in the Clos hierarchy.
type Tier uint8

const (
	// TierHost is a hypervisor (host software switch).
	TierHost Tier = iota
	// TierLeaf, TierSpine, TierCore are the switch tiers.
	TierLeaf
	TierSpine
	TierCore
	// TierController is the control plane.
	TierController
)

func (t Tier) String() string {
	switch t {
	case TierHost:
		return "host"
	case TierLeaf:
		return "leaf"
	case TierSpine:
		return "spine"
	case TierCore:
		return "core"
	case TierController:
		return "controller"
	default:
		return "?"
	}
}

// maxPorts bounds the ports a PortMask can represent; switches with
// more ports than this record a truncated mask (realistic Clos radixes
// fit comfortably).
const maxPorts = 256

// PortMask is a fixed-size output-port set, value-typed so recording
// a hop allocates nothing. Bit i corresponds to output port i.
type PortMask [maxPorts / 64]uint64

// Set marks port i; ports beyond the mask capacity are ignored.
func (m *PortMask) Set(i int) {
	if i < 0 || i >= maxPorts {
		return
	}
	m[i/64] |= 1 << (uint(i) % 64)
}

// Test reports whether port i is set.
func (m *PortMask) Test(i int) bool {
	if i < 0 || i >= maxPorts {
		return false
	}
	return m[i/64]&(1<<(uint(i)%64)) != 0
}

// Empty reports whether no port is set.
func (m *PortMask) Empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// BitString renders the first width ports as a binary string, bit 0
// first — the same convention as bitmap.Bitmap.String and the paper's
// figures ("01" = port 1 only on a 2-port switch).
func (m *PortMask) BitString(width int) string {
	if width > maxPorts {
		width = maxPorts
	}
	buf := make([]byte, width)
	for i := 0; i < width; i++ {
		if m.Test(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// Ports returns the set port indices in ascending order.
func (m *PortMask) Ports() []int {
	var out []int
	for i := 0; i < maxPorts; i++ {
		if m.Test(i) {
			out = append(out, i)
		}
	}
	return out
}

// Event is one flight-recorder entry. It is a flat value type — fixed
// arrays, no pointers — so recording a packet-path event performs no
// allocation; only control-plane kinds populate Note (a string), where
// an allocation is acceptable.
type Event struct {
	// Seq is the global record order (assigned by the recorder).
	Seq uint64
	// TS is nanoseconds since the recorder was created.
	TS int64
	// Cat / Kind classify the event.
	Cat  Category
	Kind Kind
	// Tier and Switch identify the emitter (switch ID within its tier,
	// host ID for TierHost, failed-switch ID for failure events).
	Tier   Tier
	Switch int32
	// Rule is what forwarded the packet at a hop.
	Rule RuleKind
	// VNI / Group identify the multicast group the event concerns.
	VNI, Group uint32
	// Ports are the downstream output ports chosen at this hop, and
	// UpPorts the upstream ones; widths give the rendering widths.
	Ports     PortMask
	PortWidth uint16
	UpPorts   PortMask
	UpWidth   uint16
	// Popped is the Elmo header byte delta at this hop: input stream
	// length minus output stream length of the first emitted copy
	// (negative when an INT section grows in flight).
	Popped int32
	// Arg is a kind-specific scalar (see the Kind docs).
	Arg int64
	// Note is kind-specific context, set only on control-plane and
	// encoder events.
	Note string
}

// Recorder is the interface instrumented code emits through. The
// concrete implementation is *FlightRecorder; tests may substitute
// their own. Implementations must make Enabled a cheap, concurrent-
// safe check and Record safe for concurrent use (live fabrics emit
// from many switch goroutines).
type Recorder interface {
	// Enabled reports whether the category is being recorded.
	Enabled(Category) bool
	// Record stores the event (subject to sampling).
	Record(Event)
}

// On is the hot-path guard: instrumented code wraps every event build
// in `if trace.On(r, cat) { ... }`. It costs a nil check plus one
// atomic load and never allocates, which is what keeps the disabled
// path free.
func On(r Recorder, c Category) bool {
	return r != nil && r.Enabled(c)
}

// Config tunes a FlightRecorder.
type Config struct {
	// Capacity is the ring size in events; the recorder keeps the most
	// recent Capacity events. Zero means DefaultCapacity.
	Capacity int
	// SampleEvery records one in N events per category (0 and 1 both
	// mean every event). Sampling applies per category so hop events
	// can be thinned without losing control-plane history.
	SampleEvery map[Category]int
}

// DefaultCapacity is the ring size used when Config.Capacity is zero.
const DefaultCapacity = 8192

// FlightRecorder is the bounded ring-buffer Recorder. The enable mask
// is an atomic word read once per guarded event; the ring itself is a
// single short-critical-section mutex, taken only when tracing is on.
type FlightRecorder struct {
	mask  atomic.Uint32 // enabled-category bitmask; 0 = fully off
	start time.Time

	sampleEvery [numCategories]uint64
	seen        [numCategories]atomic.Uint64

	mu   sync.Mutex
	buf  []Event
	next uint64 // total events stored; buf slot = next % len(buf)
}

// New creates a disabled recorder; call Enable to start recording.
func New(cfg Config) *FlightRecorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &FlightRecorder{
		start: time.Now(),
		buf:   make([]Event, 0, capacity),
	}
	for c, n := range cfg.SampleEvery {
		if int(c) < int(numCategories) && n > 1 {
			r.sampleEvery[c] = uint64(n)
		}
	}
	return r
}

// Enable turns on recording for the given categories (all categories
// when none are given). Safe to call while traffic flows.
func (r *FlightRecorder) Enable(cats ...Category) {
	if len(cats) == 0 {
		r.mask.Store(allMask)
		return
	}
	m := r.mask.Load()
	for _, c := range cats {
		m |= 1 << c
	}
	r.mask.Store(m)
}

// Disable turns recording fully off; already-recorded events remain
// readable via Snapshot.
func (r *FlightRecorder) Disable() { r.mask.Store(0) }

// Enabled reports whether the category is recording: one atomic load.
func (r *FlightRecorder) Enabled(c Category) bool {
	return r.mask.Load()&(1<<c) != 0
}

// Record stores the event, stamping Seq and TS. Events of a disabled
// category are ignored (instrumentation normally guards with On, but
// Record stays correct without it); sampled-out events only bump the
// per-category counter.
func (r *FlightRecorder) Record(ev Event) {
	if !r.Enabled(ev.Cat) {
		return
	}
	n := r.seen[ev.Cat].Add(1)
	if every := r.sampleEvery[ev.Cat]; every > 1 && (n-1)%every != 0 {
		return
	}
	ev.TS = int64(time.Since(r.start))
	r.mu.Lock()
	ev.Seq = r.next
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next%uint64(len(r.buf))] = ev
	}
	r.next++
	r.mu.Unlock()
}

// Seen returns how many events of the category were offered to the
// recorder while enabled (before sampling).
func (r *FlightRecorder) Seen(c Category) uint64 {
	if c >= numCategories {
		return 0
	}
	return r.seen[c].Load()
}

// Len returns the number of events currently held in the ring.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Snapshot returns the retained events in record order (oldest first).
func (r *FlightRecorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) || r.next == uint64(len(r.buf)) {
		copy(out, r.buf)
		return out
	}
	// Ring has wrapped: oldest event sits at next % len.
	head := int(r.next % uint64(len(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// Reset drops all retained events and sampling counters, keeping the
// enable mask and configuration.
func (r *FlightRecorder) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.mu.Unlock()
	for i := range r.seen {
		r.seen[i].Store(0)
	}
}
