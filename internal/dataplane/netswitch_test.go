package dataplane

import (
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// spineUpstreamPacket builds a packet as a spine would receive it from
// a source leaf: u-spine at the front.
func spineUpstreamPacket(t *testing.T, l header.Layout, down, up []int, multipath bool, tail *header.Header) Packet {
	t.Helper()
	h := &header.Header{
		USpine: &header.UpstreamRule{
			Down:      bitmap.FromPorts(l.SpineDown, down...),
			Up:        bitmap.FromPorts(l.SpineUp, up...),
			Multipath: multipath,
		},
	}
	if tail != nil {
		h.Core = tail.Core
		h.DSpine = tail.DSpine
		h.DSpineDefault = tail.DSpineDefault
		h.DLeaf = tail.DLeaf
		h.DLeafDefault = tail.DLeafDefault
	}
	stream, err := header.Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	return Packet{Outer: header.OuterFields{TTL: 30, DstIP: header.GroupIP(4), VNI: 2}, Elmo: stream}
}

func TestSpineUpstreamTurn(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	sw := NewSpine(topo, 0, 4)
	core := bitmap.FromPorts(l.CoreDown, 2)
	tail := &header.Header{
		Core:  &core,
		DLeaf: []header.PRule{{Switches: []uint16{5}, Bitmap: bitmap.FromPorts(l.LeafDown, 0)}},
	}
	// Down to leaf index 1 of the pod, multipath up.
	p := spineUpstreamPacket(t, l, []int{1}, nil, true, tail)
	ems, err := sw.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	var ups, downs int
	for _, em := range ems {
		if em.Up {
			ups++
			// The upward copy keeps the core section at its front.
			if tag, _ := header.PeekTag(em.Packet.Elmo); tag != header.TagCore {
				t.Fatalf("up copy front tag %#x", tag)
			}
		} else {
			downs++
			if em.Port != 1 {
				t.Fatalf("down port = %d", em.Port)
			}
			// The down copy skips ahead to the d-leaf section.
			if tag, _ := header.PeekTag(em.Packet.Elmo); tag != header.TagDLeaf {
				t.Fatalf("down copy front tag %#x", tag)
			}
		}
	}
	if ups != 1 || downs != 1 {
		t.Fatalf("ups=%d downs=%d", ups, downs)
	}
}

func TestSpineDownstreamMatchAndDefault(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	def := bitmap.FromPorts(l.SpineDown, 0, 1)
	h := &header.Header{
		DSpine: []header.PRule{
			{Switches: []uint16{2}, Bitmap: bitmap.FromPorts(l.SpineDown, 1)},
		},
		DSpineDefault: &def,
		DLeaf:         []header.PRule{{Switches: []uint16{4}, Bitmap: bitmap.FromPorts(l.LeafDown, 3)}},
	}
	stream, err := header.Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	pkt := Packet{Outer: header.OuterFields{TTL: 9, DstIP: header.GroupIP(1), VNI: 1}, Elmo: stream}

	// Spine 4 is in pod 2: matches the p-rule (port 1).
	sw := NewSpine(topo, 4, 4)
	ems, err := sw.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 1 || ems[0].Port != 1 || ems[0].Up {
		t.Fatalf("ems = %+v", ems)
	}
	if sw.Stats().PRuleHits != 1 {
		t.Fatal("p-rule hit not counted")
	}

	// Spine 6 (pod 3): no match, no s-rule -> default (two ports).
	sw3 := NewSpine(topo, 6, 4)
	ems, err = sw3.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 2 {
		t.Fatalf("default fan-out = %d", len(ems))
	}
	if sw3.Stats().Defaults != 1 {
		t.Fatal("default use not counted")
	}

	// With an s-rule installed, it wins over the default.
	sw5 := NewSpine(topo, 6, 4)
	if err := sw5.InstallSRule(GroupAddr{VNI: 1, Group: 1}, bitmap.FromPorts(l.SpineDown, 0)); err != nil {
		t.Fatal(err)
	}
	ems, err = sw5.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 1 || ems[0].Port != 0 {
		t.Fatalf("s-rule path = %+v", ems)
	}
	if sw5.Stats().SRuleHits != 1 {
		t.Fatal("s-rule hit not counted")
	}
}

func TestCoreFanOut(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	core := bitmap.FromPorts(l.CoreDown, 1, 3)
	h := &header.Header{Core: &core}
	stream, err := header.Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewCore(topo, 2)
	if sw.Kind() != KindCore || sw.Kind().String() != "core" {
		t.Fatal("kind wrong")
	}
	ems, err := sw.Process(Packet{Outer: header.OuterFields{TTL: 5}, Elmo: stream})
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 2 || ems[0].Port != 1 || ems[1].Port != 3 {
		t.Fatalf("core emissions = %+v", ems)
	}
	for _, em := range ems {
		if tag, _ := header.PeekTag(em.Packet.Elmo); tag != header.TagEnd {
			t.Fatalf("core did not pop its section: %#x", tag)
		}
	}
}

func TestLegacySwitchProcess(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	sw := NewLeaf(topo, 3, 4)
	sw.Legacy = true
	addr := GroupAddr{VNI: 2, Group: 9}
	if err := sw.InstallSRule(addr, bitmap.FromPorts(l.LeafDown, 2, 5)); err != nil {
		t.Fatal(err)
	}
	stream, _ := header.Encode(l, &header.Header{
		DLeaf: []header.PRule{{Switches: []uint16{3}, Bitmap: bitmap.FromPorts(l.LeafDown, 7)}},
	})
	pkt := Packet{Outer: header.OuterFields{TTL: 8, DstIP: header.GroupIP(9), VNI: 2}, Elmo: stream}
	ems, err := sw.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	// The legacy switch ignores the p-rule (port 7) and uses its group
	// table (ports 2, 5), leaving the stream unpopped.
	if len(ems) != 2 {
		t.Fatalf("legacy fan-out = %+v", ems)
	}
	for _, em := range ems {
		if len(em.Packet.Elmo) != len(stream) {
			t.Fatal("legacy switch modified the stream")
		}
	}
	// Without an s-rule the legacy switch drops.
	sw.RemoveSRule(addr)
	ems, err = sw.Process(pkt)
	if err != nil || len(ems) != 0 {
		t.Fatalf("ems=%v err=%v", ems, err)
	}
	if sw.Stats().Drops[DropNoRule] == 0 {
		t.Fatal("legacy no-rule drop not counted")
	}
	// Legacy cores are rejected.
	coreSw := NewCore(topo, 0)
	coreSw.Legacy = true
	if _, err := coreSw.Process(pkt); err == nil {
		t.Fatal("legacy core accepted")
	}
}

func TestPredictPathMatchesDataplane(t *testing.T) {
	// The controller-side prediction must agree with the actual
	// pipeline choices for every sender and group.
	topo := topology.MustNew(topology.FacebookFabric())
	l := header.LayoutFor(topo)
	for i := 0; i < 200; i++ {
		host := topology.HostID((i * 997) % topo.NumHosts())
		addr := GroupAddr{VNI: uint32(i % 7), Group: uint32(i)}
		outer := SenderOuter(topo, host, addr)
		wantPlane, wantCore := PredictPath(topo, outer, host)

		leaf := NewLeaf(topo, topo.HostLeaf(host), 1)
		h := &header.Header{ULeaf: &header.UpstreamRule{
			Down: bitmap.New(l.LeafDown), Up: bitmap.New(l.LeafUp), Multipath: true,
		}}
		stream, err := header.Encode(l, h)
		if err != nil {
			t.Fatal(err)
		}
		ems, err := leaf.Process(Packet{Outer: outer, Elmo: stream})
		if err != nil {
			t.Fatal(err)
		}
		if len(ems) != 1 || ems[0].Port != wantPlane {
			t.Fatalf("host %d: leaf picked %d, predicted %d", host, ems[0].Port, wantPlane)
		}
		spineID := topo.SpineAt(topo.HostPod(host), wantPlane)
		spine := NewSpine(topo, spineID, 1)
		core := bitmap.FromPorts(l.CoreDown, int(topo.HostPod(host)+1)%topo.NumPods())
		h2 := &header.Header{
			USpine: &header.UpstreamRule{Down: bitmap.New(l.SpineDown), Up: bitmap.New(l.SpineUp), Multipath: true},
			Core:   &core,
		}
		stream2, err := header.Encode(l, h2)
		if err != nil {
			t.Fatal(err)
		}
		ems2, err := spine.Process(Packet{Outer: outer, Elmo: stream2})
		if err != nil {
			t.Fatal(err)
		}
		if len(ems2) != 1 || !ems2[0].Up {
			t.Fatalf("host %d: spine emissions %+v", host, ems2)
		}
		gotCore := topo.SpineUpstream(spineID, ems2[0].Port)
		if gotCore != wantCore {
			t.Fatalf("host %d: spine picked core %d, predicted %d", host, gotCore, wantCore)
		}
	}
}

func TestStreamLenAndHostAccessors(t *testing.T) {
	topo := paperTopo()
	hv := NewHypervisor(topo, 17)
	if hv.Host() != 17 {
		t.Fatal("Host accessor wrong")
	}
	addr := GroupAddr{VNI: 1, Group: 1}
	if err := hv.InstallSenderFlow(addr, &header.Header{}); err != nil {
		t.Fatal(err)
	}
	// SenderFlow.StreamLen is visible through Encap'd packet size.
	pkt, err := hv.Encap(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt.Elmo) != 1 {
		t.Fatalf("empty header stream len = %d", len(pkt.Elmo))
	}
}

func TestUpstreamPickerOverride(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	sw := NewLeaf(topo, 0, 4)
	var sawAlive []int
	sw.UpstreamPicker = func(f header.OuterFields, alive []int) int {
		sawAlive = append([]int{}, alive...)
		return alive[len(alive)-1]
	}
	sw.UpstreamAlive = func(port int) bool { return port != 0 }
	h := &header.Header{ULeaf: &header.UpstreamRule{
		Down: bitmap.New(l.LeafDown), Up: bitmap.New(l.LeafUp), Multipath: true,
	}}
	stream, _ := header.Encode(l, h)
	ems, err := sw.Process(Packet{Outer: header.OuterFields{TTL: 5}, Elmo: stream})
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 1 || ems[0].Port != 1 {
		t.Fatalf("ems = %+v", ems)
	}
	if len(sawAlive) != 1 || sawAlive[0] != 1 {
		t.Fatalf("picker saw %v, want only alive port 1", sawAlive)
	}
}
