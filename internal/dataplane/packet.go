// Package dataplane implements Elmo's switch data planes in software:
// the hypervisor switch that encapsulates tenant multicast packets with
// a precomputed Elmo header (paper §4.2), and the network switch
// pipeline that parses p-rules with match-and-set semantics, falls back
// to s-rule group tables and default p-rules, replicates packets, and
// pops consumed header sections per hop (paper §4.1).
//
// The pipeline semantics mirror the paper's P4 programs: the parser
// scans the section stream and stops at the first matching p-rule; the
// ingress control checks matched-flag → s-rule table → default bitmap;
// the queue manager replicates to the port bitmap; the egress deparser
// invalidates the sections the next layer no longer needs.
package dataplane

import (
	"fmt"

	"elmo/internal/header"
	"elmo/internal/topology"
)

// GroupAddr identifies a group on the wire: the packet's VNI plus the
// group index recovered from the 239/8 destination IP. It is the s-rule
// group-table key.
type GroupAddr struct {
	VNI   uint32
	Group uint32
}

// GroupAddrFromOuter extracts the group address from outer fields; ok
// is false for non-multicast destinations.
func GroupAddrFromOuter(f header.OuterFields) (GroupAddr, bool) {
	g, ok := header.GroupFromIP(f.DstIP)
	if !ok {
		return GroupAddr{}, false
	}
	return GroupAddr{VNI: f.VNI, Group: g}, true
}

// Packet is a fabric packet in flight. Outer fields are kept decoded
// (switches rewrite only TTL), the Elmo section stream is a byte slice
// popped by pure re-slicing per hop, and the inner frame is opaque.
type Packet struct {
	Outer header.OuterFields
	// Elmo is the section stream (ending in TagEnd). A nil or
	// one-byte stream means no source routing remains.
	Elmo  []byte
	Inner []byte
	// NoINT is a provenance hint: true only when the stream is known
	// to carry no INT section. Encap and Unmarshal set it (both walk
	// the stream anyway), and emissions inherit it, so the forwarding
	// fast path can skip the per-hop structural scan that stamping
	// and host-copy stripping otherwise need. The zero value means
	// "unknown" and always falls back to scanning, so hand-built
	// packets stay correct.
	NoINT bool
}

// WireSize returns the bytes this packet occupies on a link — the
// quantity the traffic-overhead experiments integrate per hop. Headers
// shrink as sections pop, so WireSize decreases along the path.
func (p *Packet) WireSize() int {
	return header.OuterSize + len(p.Elmo) + len(p.Inner)
}

// Marshal serializes the packet to wire bytes (used by the live fabric
// and the examples; the simulation harness works on the struct form).
func (p *Packet) Marshal(dst []byte) ([]byte, error) {
	dst, err := header.AppendOuter(dst, p.Outer, len(p.Elmo)+len(p.Inner))
	if err != nil {
		return dst, err
	}
	dst = append(dst, p.Elmo...)
	dst = append(dst, p.Inner...)
	return dst, nil
}

// Unmarshal parses wire bytes into a packet. The Elmo stream length is
// determined structurally under the layout.
func Unmarshal(l header.Layout, data []byte) (Packet, error) {
	var p Packet
	outer, payload, err := header.ParseOuter(data)
	if err != nil {
		return p, err
	}
	p.Outer = outer
	if outer.ElmoVersion == 0 {
		p.Inner = payload
		p.NoINT = true
		return p, nil
	}
	if outer.ElmoVersion != header.Version {
		return p, fmt.Errorf("dataplane: unsupported Elmo version %d", outer.ElmoVersion)
	}
	n, hasINT, err := header.StreamInfo(l, payload)
	if err != nil {
		return p, err
	}
	p.Elmo = payload[:n]
	p.Inner = payload[n:]
	p.NoINT = !hasINT
	return p, nil
}

// SenderOuter builds the outer-header template a hypervisor uses for a
// group flow; the controller reuses it to predict the flow's ECMP path
// (e.g. for failure-impact analysis).
func SenderOuter(topo *topology.Topology, host topology.HostID, addr GroupAddr) header.OuterFields {
	return header.OuterFields{
		SrcMAC:      header.HostMAC(host),
		DstMAC:      groupMAC(addr),
		SrcIP:       header.HostIP(topo, host),
		DstIP:       header.GroupIP(addr.Group),
		SrcPort:     uint16(49152 + (uint32(host)^addr.Group)%16384),
		VNI:         addr.VNI,
		ElmoVersion: header.Version,
		TTL:         64,
	}
}

// leafSalt/spineSalt are the per-switch ECMP salts; prediction and the
// live pipeline must agree on them.
func leafSalt(l topology.LeafID) uint32 {
	return uint32(KindLeaf)<<24 | uint32(l)<<12
}

func spineSalt(s topology.SpineID) uint32 {
	return uint32(KindSpine)<<24 | uint32(s)
}

// PredictPath returns the spine plane and core a healthy fabric's ECMP
// would carry the sender's group flow through. The controller uses it
// to decide which groups a spine/core failure actually impacts (§5.1.3b).
func PredictPath(topo *topology.Topology, outer header.OuterFields, sender topology.HostID) (plane int, core topology.CoreID) {
	cfg := topo.Config()
	leaf := topo.HostLeaf(sender)
	plane = int(ECMPHash(outer, leafSalt(leaf)) % uint32(cfg.SpinesPerPod))
	spine := topo.SpineAt(topo.LeafPod(leaf), plane)
	corePort := int(ECMPHash(outer, spineSalt(spine)) % uint32(cfg.CoresPerPlane))
	return plane, topology.CoreID(plane*cfg.CoresPerPlane + corePort)
}

// FNV-1a constants (hash/fnv's 32-bit parameters, inlined below).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// ECMPHash computes the multipath hash a switch uses to pick one
// upstream port, salted by the switch identity so consecutive tiers
// don't correlate. It hashes the outer flow 5-tuple surrogate
// (IPs, source port, VNI).
//
// The FNV-1a loop is inlined so the buffer stays on the stack: the
// hash/fnv digest is an interface value and heap-escapes per call,
// which the forwarding fast path cannot afford. The byte layout —
// including the trailing zero pad at b[17], which the original
// implementation hashed — is frozen; a golden test pins the values so
// no multipath decision (or PredictPath result) ever moves.
func ECMPHash(f header.OuterFields, salt uint32) uint32 {
	var b [18]byte
	copy(b[0:4], f.SrcIP[:])
	copy(b[4:8], f.DstIP[:])
	b[8] = byte(f.SrcPort >> 8)
	b[9] = byte(f.SrcPort)
	b[10] = byte(f.VNI >> 16)
	b[11] = byte(f.VNI >> 8)
	b[12] = byte(f.VNI)
	b[13] = byte(salt >> 24)
	b[14] = byte(salt >> 16)
	b[15] = byte(salt >> 8)
	b[16] = byte(salt)
	h := uint32(fnvOffset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return h
}
