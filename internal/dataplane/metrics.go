package dataplane

import (
	"elmo/internal/telemetry"
	"elmo/internal/trace"
)

// SwitchCounters caches the telemetry handles one switch tier bumps on
// its packet path. Handles are interned once at construction; every
// increment is a single atomic add. A nil *SwitchCounters (telemetry
// off) costs each site one branch — the same contract as a nil Tracer,
// and what the fabric alloc-parity test pins.
type SwitchCounters struct {
	packets     *telemetry.Counter
	copies      *telemetry.Counter
	ruleHits    [4]*telemetry.Counter // indexed by trace.RuleKind
	drops       [4]*telemetry.Counter // indexed by DropReason
	popped      *telemetry.Counter
	headerBytes *telemetry.Counter
	fenced      *telemetry.Counter
}

func (m *SwitchCounters) packet() {
	if m != nil {
		m.packets.Inc()
	}
}

func (m *SwitchCounters) emitted(n int) {
	if m != nil {
		m.copies.Add(int64(n))
	}
}

func (m *SwitchCounters) hit(r trace.RuleKind) {
	if m != nil {
		m.ruleHits[r].Inc()
	}
}

func (m *SwitchCounters) drop(r DropReason) {
	if m != nil {
		m.drops[r].Inc()
	}
}

// poppedBytes records one header section pop of n bytes (egress
// stripping included — invalidated p-rules count as consumed header).
func (m *SwitchCounters) poppedBytes(n int) {
	if m != nil && n > 0 {
		m.popped.Inc()
		m.headerBytes.Add(int64(n))
	}
}

// fencingRejected records one install rejected by the epoch fence.
func (m *SwitchCounters) fencingRejected() {
	if m != nil {
		m.fenced.Inc()
	}
}

// HostCounters caches the hypervisor-side telemetry handles.
type HostCounters struct {
	encapsulated *telemetry.Counter
	delivered    *telemetry.Counter
	filtered     *telemetry.Counter
	headerBytes  *telemetry.Counter
	fenced       *telemetry.Counter
}

func (m *HostCounters) encap(streamLen int) {
	if m != nil {
		m.encapsulated.Inc()
		m.headerBytes.Add(int64(streamLen))
	}
}

func (m *HostCounters) deliver() {
	if m != nil {
		m.delivered.Inc()
	}
}

func (m *HostCounters) filter() {
	if m != nil {
		m.filtered.Inc()
	}
}

// fencingRejected records one install rejected by the epoch fence.
func (m *HostCounters) fencingRejected() {
	if m != nil {
		m.fenced.Inc()
	}
}

// Metrics is the dataplane's handle bundle: one SwitchCounters per
// Clos tier (shared by every switch of that tier — counters are
// atomic, so concurrent switch goroutines may bump them) plus the
// host-side hypervisor counters.
type Metrics struct {
	Leaf  *SwitchCounters
	Spine *SwitchCounters
	Core  *SwitchCounters
	Host  *HostCounters
}

// NewMetrics registers (or re-attaches to) the dataplane metric
// families in reg and returns the interned handles.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	packets := reg.CounterVec("elmo_dataplane_packets_total",
		"Packets entering a switch pipeline, by Clos tier.", "tier")
	copies := reg.CounterVec("elmo_dataplane_copies_total",
		"Packet copies emitted by switch pipelines, by Clos tier.", "tier")
	hits := reg.CounterVec("elmo_dataplane_rule_hits_total",
		"Forwarding decisions by matching rule stage (p-rule, s-rule, default).", "tier", "rule")
	drops := reg.CounterVec("elmo_dataplane_drops_total",
		"Packets dropped in a switch pipeline, by reason.", "tier", "reason")
	popped := reg.CounterVec("elmo_dataplane_prules_popped_total",
		"Hops that consumed (popped or stripped) Elmo header sections.", "tier")
	hdrBytes := reg.CounterVec("elmo_dataplane_header_bytes_popped_total",
		"Elmo header bytes consumed by switch pipelines, by tier.", "tier")
	fenced := reg.CounterVec("elmo_fencing_rejected_total",
		"Install/update messages rejected because they carried a stale leadership epoch, by tier.", "tier")

	tier := func(name string) *SwitchCounters {
		sc := &SwitchCounters{
			packets:     packets.With(name),
			copies:      copies.With(name),
			popped:      popped.With(name),
			headerBytes: hdrBytes.With(name),
			fenced:      fenced.With(name),
		}
		for r, label := range map[trace.RuleKind]string{
			trace.RuleNone: "none", trace.RulePRule: "prule",
			trace.RuleSRule: "srule", trace.RuleDefault: "default",
		} {
			sc.ruleHits[r] = hits.With(name, label)
		}
		for r, label := range map[DropReason]string{
			DropNone: "none", DropNoRule: "no_rule",
			DropTTL: "ttl", DropMalformed: "malformed",
		} {
			sc.drops[r] = drops.With(name, label)
		}
		return sc
	}
	return &Metrics{
		Leaf:  tier("leaf"),
		Spine: tier("spine"),
		Core:  tier("core"),
		Host: &HostCounters{
			encapsulated: reg.Counter("elmo_host_encapsulated_total",
				"Multicast packets encapsulated by hypervisors."),
			delivered: reg.Counter("elmo_host_delivered_total",
				"Packets accepted by hypervisors for local member VMs."),
			filtered: reg.Counter("elmo_host_filtered_total",
				"Spurious packets filtered by hypervisors on receive."),
			headerBytes: reg.Counter("elmo_host_header_bytes_added_total",
				"Elmo header bytes added at encapsulation."),
			fenced: fenced.With("host"),
		},
	}
}

// For returns the tier's counter set (nil-safe on a nil Metrics).
func (m *Metrics) For(k SwitchKind) *SwitchCounters {
	if m == nil {
		return nil
	}
	switch k {
	case KindLeaf:
		return m.Leaf
	case KindSpine:
		return m.Spine
	case KindCore:
		return m.Core
	default:
		return nil
	}
}

// HostFor returns the hypervisor counter set (nil-safe).
func (m *Metrics) HostFor() *HostCounters {
	if m == nil {
		return nil
	}
	return m.Host
}
