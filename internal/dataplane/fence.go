package dataplane

import (
	"errors"
	"fmt"
	"sync/atomic"

	"elmo/internal/bitmap"
	"elmo/internal/header"
)

// Leadership fencing at the device level (switches and hypervisors).
//
// The durable controller stamps every install/update message with its
// leadership epoch. Each device remembers the highest epoch it has
// accepted a message from; a message from a lower epoch is a deposed
// leader still talking on the losing side of a partition, and the
// device rejects it — the table entry is untouched, a counter bumps,
// and the caller gets a StaleEpochError carrying the device's current
// floor so the stale controller can learn it was superseded and step
// down. Epoch 0 is the unfenced bootstrap value: it is always
// accepted and never raises the floor, so single-controller
// deployments (and every pre-fencing code path) behave exactly as
// before.

// ErrStaleEpoch is the class of all fencing rejections; match with
// errors.Is, or errors.As a *StaleEpochError for the observed floor.
var ErrStaleEpoch = errors.New("dataplane: install from stale epoch rejected")

// StaleEpochError reports a fenced install: a device at floor Current
// rejected a message stamped Epoch.
type StaleEpochError struct {
	// Device names the rejecting device (e.g. "leaf 3", "host 17").
	Device string
	// Epoch is the stale epoch the message carried.
	Epoch uint64
	// Current is the device's epoch floor — the successor's term. A
	// deposed leader should feed it to ObserveEpoch and demote.
	Current uint64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("dataplane: %s fenced install from epoch %d (current epoch %d)", e.Device, e.Epoch, e.Current)
}

// Is makes errors.Is(err, ErrStaleEpoch) match.
func (e *StaleEpochError) Unwrap() error { return ErrStaleEpoch }

// EpochFence is a device's monotonic leadership floor. Admit is safe
// for concurrent use (the live fabrics install from the controller
// goroutine while switch goroutines read).
type EpochFence struct {
	cur      atomic.Uint64
	rejected atomic.Int64
}

// Admit reports whether a message stamped with epoch may be applied,
// raising the floor when the epoch is new. Epoch 0 (unfenced) is
// always admitted and never raises the floor.
func (f *EpochFence) Admit(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	for {
		cur := f.cur.Load()
		if epoch < cur {
			f.rejected.Add(1)
			return false
		}
		if epoch == cur || f.cur.CompareAndSwap(cur, epoch) {
			return true
		}
	}
}

// Observe raises the floor to epoch without carrying an install — the
// "epoch announcement" a freshly promoted controller broadcasts so
// every device fences its predecessor before any new state flows.
func (f *EpochFence) Observe(epoch uint64) {
	f.Admit(epoch)
}

// Current returns the device's epoch floor.
func (f *EpochFence) Current() uint64 { return f.cur.Load() }

// Rejected returns how many messages this fence has rejected.
func (f *EpochFence) Rejected() int64 { return f.rejected.Load() }

// deviceName renders the switch identity for StaleEpochError.
func (sw *NetworkSwitch) deviceName() string {
	switch sw.kind {
	case KindLeaf:
		return fmt.Sprintf("leaf %d", sw.leaf)
	case KindSpine:
		return fmt.Sprintf("spine %d", sw.spine)
	default:
		return fmt.Sprintf("core %d", sw.core)
	}
}

// Fence exposes the switch's epoch floor (telemetry, tests).
func (sw *NetworkSwitch) Fence() *EpochFence { return &sw.fence }

// InstallSRuleAt is InstallSRule with the controller's leadership
// epoch stamped on the message. A stale epoch leaves the group table
// untouched, bumps elmo_fencing_rejected_total, and returns a
// *StaleEpochError carrying the device's floor.
func (sw *NetworkSwitch) InstallSRuleAt(epoch uint64, addr GroupAddr, ports bitmap.Bitmap) error {
	if !sw.fence.Admit(epoch) {
		sw.Counters.fencingRejected()
		return &StaleEpochError{Device: sw.deviceName(), Epoch: epoch, Current: sw.fence.Current()}
	}
	return sw.InstallSRule(addr, ports)
}

// RemoveSRuleAt is RemoveSRule behind the epoch fence: a deposed
// leader must not be able to delete the successor's rules either.
func (sw *NetworkSwitch) RemoveSRuleAt(epoch uint64, addr GroupAddr) error {
	if !sw.fence.Admit(epoch) {
		sw.Counters.fencingRejected()
		return &StaleEpochError{Device: sw.deviceName(), Epoch: epoch, Current: sw.fence.Current()}
	}
	sw.RemoveSRule(addr)
	return nil
}

// Fence exposes the hypervisor's epoch floor (telemetry, tests).
func (hv *Hypervisor) Fence() *EpochFence { return &hv.fence }

func (hv *Hypervisor) deviceName() string {
	return fmt.Sprintf("host %d", hv.host)
}

// InstallSenderFlowAt is InstallSenderFlow behind the epoch fence.
func (hv *Hypervisor) InstallSenderFlowAt(epoch uint64, addr GroupAddr, h *header.Header) error {
	if !hv.fence.Admit(epoch) {
		hv.Counters.fencingRejected()
		return &StaleEpochError{Device: hv.deviceName(), Epoch: epoch, Current: hv.fence.Current()}
	}
	return hv.InstallSenderFlow(addr, h)
}

// RemoveSenderFlowAt is RemoveSenderFlow behind the epoch fence.
func (hv *Hypervisor) RemoveSenderFlowAt(epoch uint64, addr GroupAddr) error {
	if !hv.fence.Admit(epoch) {
		hv.Counters.fencingRejected()
		return &StaleEpochError{Device: hv.deviceName(), Epoch: epoch, Current: hv.fence.Current()}
	}
	hv.RemoveSenderFlow(addr)
	return nil
}

// SetReceivingAt is SetReceiving behind the epoch fence.
func (hv *Hypervisor) SetReceivingAt(epoch uint64, addr GroupAddr, on bool) error {
	if !hv.fence.Admit(epoch) {
		hv.Counters.fencingRejected()
		return &StaleEpochError{Device: hv.deviceName(), Epoch: epoch, Current: hv.fence.Current()}
	}
	hv.SetReceiving(addr, on)
	return nil
}
