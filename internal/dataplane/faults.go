package dataplane

// Fault injection contract. The concrete injector lives in
// internal/chaos; the interface sits here so every fabric tier can
// hold one without importing the chaos package (which itself imports
// the fabrics for its health monitor). The fabrics consult the
// injector at each link crossing; the verdict is applied before the
// receiving element processes the packet, modeling loss, duplication,
// corruption, and delay on the wire rather than in the switch logic.

// LinkTier identifies the network element class at one end of a link.
type LinkTier uint8

const (
	// LinkHost is a host hypervisor endpoint.
	LinkHost LinkTier = iota
	// LinkLeaf, LinkSpine, LinkCore are the switch tiers.
	LinkLeaf
	LinkSpine
	LinkCore
)

func (t LinkTier) String() string {
	switch t {
	case LinkHost:
		return "host"
	case LinkLeaf:
		return "leaf"
	case LinkSpine:
		return "spine"
	case LinkCore:
		return "core"
	default:
		return "?"
	}
}

// Link is one directed link crossing: the packet leaves From (of tier
// FromTier) toward To (of tier ToTier). IDs are the fabric-global
// switch or host indices.
type Link struct {
	FromTier LinkTier
	From     int32
	ToTier   LinkTier
	To       int32
}

// FaultVerdict is what the injector decided for one crossing. Zero
// value means "deliver untouched". Drop wins over everything else;
// Duplicate means the fabric forwards a second, independent copy;
// Corrupt means the fabric flips bytes in the wire encoding (tiers
// that forward structs re-marshal to apply it); DelaySteps holds the
// packet for that many fabric steps (sync fabric: forwarding-loop
// iterations; live fabrics: milliseconds) before delivery.
type FaultVerdict struct {
	Drop       bool
	Duplicate  bool
	Corrupt    bool
	DelaySteps int32
}

// FaultInjector is consulted by the fabrics at every link crossing.
// Implementations must make Active a single cheap check and Cross
// allocation-free: the disabled path of an attached injector must not
// change forwarding cost at all.
type FaultInjector interface {
	// Active reports whether any fault can currently fire; when false
	// the fabrics skip Cross entirely.
	Active() bool
	// Cross returns the verdict for one packet crossing the link. The
	// group address lets injectors discriminate probe traffic.
	Cross(l Link, vni, group uint32) FaultVerdict
	// CorruptWire flips bytes of a marshaled frame in place,
	// deterministically per injector state.
	CorruptWire(frame []byte)
}

// FaultsOn is the hot-path guard mirroring trace.On: a nil check plus
// the injector's own cheap activity check.
func FaultsOn(i FaultInjector) bool {
	return i != nil && i.Active()
}

// ProbeVNI is the reserved VNI the chaos health monitor sends its
// liveness probes on. Probe packets bypass the fabric's declared-
// failure drops (a declared failure models the controller's *belief*;
// probes measure the physical device, which the injector models), so
// repair of a declared-failed switch remains detectable.
const ProbeVNI uint32 = 0xFFFFFE
