package dataplane

import (
	"fmt"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// SwitchKind is the tier of a network switch.
type SwitchKind int

const (
	// KindLeaf is a top-of-rack switch.
	KindLeaf SwitchKind = iota
	// KindSpine is a pod spine switch.
	KindSpine
	// KindCore is a core (fabric) switch.
	KindCore
)

func (k SwitchKind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindSpine:
		return "spine"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("SwitchKind(%d)", int(k))
	}
}

// Emission is one packet copy a switch produces: the output port in
// the given direction and the (popped) packet.
type Emission struct {
	Port   int
	Up     bool
	Packet Packet
}

// DropReason classifies why a switch dropped a packet.
type DropReason int

const (
	// DropNone means not dropped.
	DropNone DropReason = iota
	// DropNoRule: no p-rule matched, no s-rule, no default.
	DropNoRule
	// DropTTL: outer TTL expired.
	DropTTL
	// DropMalformed: the section stream failed to parse.
	DropMalformed
)

// Stats counts a switch's data-plane events.
type Stats struct {
	Packets   int
	Copies    int
	Drops     map[DropReason]int
	SRuleHits int
	PRuleHits int
	Defaults  int
}

// NetworkSwitch is one physical leaf, spine, or core switch. Its only
// multicast state is the s-rule group table; everything else arrives
// in packets. Methods are not safe for concurrent use; the fabric
// serializes per switch.
type NetworkSwitch struct {
	topo   *topology.Topology
	layout header.Layout
	kind   SwitchKind
	// Identity within the tier.
	leaf  topology.LeafID
	spine topology.SpineID
	core  topology.CoreID

	groupTable map[GroupAddr]bitmap.Bitmap
	capacity   int

	// UpstreamAlive reports whether upstream port i currently leads to
	// a healthy switch; the fabric wires it to the failure set so that
	// multipath hashing skips dead paths (link-state-aware ECMP).
	// A nil func treats all ports as alive.
	UpstreamAlive func(port int) bool

	// Legacy marks a switch that has not migrated to Elmo (§7): it
	// treats the Elmo section stream as opaque VXLAN payload, forwards
	// purely from its group table, and pops nothing. Downstream modern
	// switches skip the stale sections a legacy hop leaves in place.
	Legacy bool

	// UpstreamPicker overrides the multipath scheme (the paper's D2
	// multipath flag defers to "the configured underlying multipathing
	// scheme (e.g., ECMP, CONGA, or HULA)"). It receives the flow's
	// outer fields and the currently-alive upstream ports and returns
	// the chosen port. Nil means flow-hash ECMP.
	UpstreamPicker func(f header.OuterFields, alive []int) int

	// Tracer receives a flight-recorder event per processed packet
	// (which rule matched, output ports, header bytes popped) when the
	// hop category is enabled. Nil or disabled costs one nil check /
	// atomic load per packet and allocates nothing. Set it while the
	// switch is quiet (same contract as the group table).
	Tracer trace.Recorder

	// Counters bumps live telemetry alongside stats when attached
	// (typically the tier's shared SwitchCounters); nil costs one
	// branch per site and allocates nothing. Set while quiet.
	Counters *SwitchCounters

	// fence is the leadership epoch floor: installs stamped with a
	// lower epoch are rejected (see fence.go).
	fence EpochFence

	stats Stats
}

// NewLeaf creates the leaf switch for the given ID.
func NewLeaf(topo *topology.Topology, id topology.LeafID, sRuleCapacity int) *NetworkSwitch {
	return &NetworkSwitch{topo: topo, layout: header.LayoutFor(topo), kind: KindLeaf, leaf: id,
		groupTable: make(map[GroupAddr]bitmap.Bitmap), capacity: sRuleCapacity}
}

// NewSpine creates the spine switch for the given ID.
func NewSpine(topo *topology.Topology, id topology.SpineID, sRuleCapacity int) *NetworkSwitch {
	return &NetworkSwitch{topo: topo, layout: header.LayoutFor(topo), kind: KindSpine, spine: id,
		groupTable: make(map[GroupAddr]bitmap.Bitmap), capacity: sRuleCapacity}
}

// NewCore creates the core switch for the given ID. Cores hold no
// group state in Elmo.
func NewCore(topo *topology.Topology, id topology.CoreID) *NetworkSwitch {
	return &NetworkSwitch{topo: topo, layout: header.LayoutFor(topo), kind: KindCore, core: id}
}

// Kind returns the switch tier.
func (sw *NetworkSwitch) Kind() SwitchKind { return sw.kind }

// Stats returns the switch's counters.
func (sw *NetworkSwitch) Stats() *Stats {
	if sw.stats.Drops == nil {
		sw.stats.Drops = make(map[DropReason]int)
	}
	return &sw.stats
}

// InstallSRule adds a group-table entry. It fails when the table is at
// capacity (Fmax) — the controller should never let that happen, so an
// error here indicates a capacity-accounting bug.
func (sw *NetworkSwitch) InstallSRule(addr GroupAddr, ports bitmap.Bitmap) error {
	if sw.kind == KindCore {
		return fmt.Errorf("dataplane: core switches hold no s-rules")
	}
	if _, exists := sw.groupTable[addr]; !exists && len(sw.groupTable) >= sw.capacity {
		return fmt.Errorf("dataplane: %s group table full (%d entries)", sw.kind, sw.capacity)
	}
	sw.groupTable[addr] = ports.Clone()
	return nil
}

// RemoveSRule deletes a group-table entry (idempotent).
func (sw *NetworkSwitch) RemoveSRule(addr GroupAddr) {
	delete(sw.groupTable, addr)
}

// SRuleCount returns the current group-table occupancy.
func (sw *NetworkSwitch) SRuleCount() int { return len(sw.groupTable) }

// Process runs the switch pipeline on one packet and returns the
// emitted copies. A nil error with no emissions means the packet was
// dropped (see Stats().Drops).
func (sw *NetworkSwitch) Process(p Packet) ([]Emission, error) {
	st := sw.Stats()
	st.Packets++
	sw.Counters.packet()
	if p.Outer.TTL <= 1 {
		st.Drops[DropTTL]++
		sw.Counters.drop(DropTTL)
		sw.traceDrop(p, DropTTL)
		return nil, nil
	}
	p.Outer.TTL--
	var out []Emission
	var err error
	switch {
	case sw.Legacy:
		out, err = sw.processLegacy(p)
	case sw.kind == KindLeaf:
		out, err = sw.processLeaf(p)
	case sw.kind == KindSpine:
		out, err = sw.processSpine(p)
	case sw.kind == KindCore:
		out, err = sw.processCore(p)
	}
	if err != nil {
		st.Drops[DropMalformed]++
		sw.Counters.drop(DropMalformed)
		sw.traceDrop(p, DropMalformed)
		return nil, err
	}
	st.Copies += len(out)
	sw.Counters.emitted(len(out))
	return out, nil
}

// processLegacy forwards an Elmo packet from the group table alone —
// the paper's tested legacy-switch behavior: the switch was configured
// to consult its multicast group table when it sees an Elmo packet,
// treating the section stream as opaque payload (never popped).
func (sw *NetworkSwitch) processLegacy(p Packet) ([]Emission, error) {
	if sw.kind == KindCore {
		return nil, fmt.Errorf("dataplane: legacy cores are not modeled")
	}
	addr, ok := GroupAddrFromOuter(p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	ports, ok := sw.groupTable[addr]
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	sw.Stats().SRuleHits++
	sw.Counters.hit(trace.RuleSRule)
	var out []Emission
	ports.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Packet: p})
	})
	sw.traceHop(p, trace.RuleSRule, out)
	return out, nil
}

// processLeaf handles both directions: packets from hosts carry a
// u-leaf section; packets from spines carry (at most) a d-leaf section.
func (sw *NetworkSwitch) processLeaf(p Packet) ([]Emission, error) {
	tag, err := header.PeekTag(p.Elmo)
	if err != nil {
		return nil, err
	}
	if tag == header.TagULeaf {
		rule, rest, err := header.ConsumeUpstream(sw.layout, header.TagULeaf, p.Elmo)
		if err != nil {
			return nil, err
		}
		rest = sw.stamp(rest, p.Outer.TTL)
		var out []Emission
		// Host deliveries: strip the remaining p-rules — the egress
		// invalidates all p-rules toward hosts (§4.1).
		rule.Down.ForEach(func(port int) {
			out = append(out, Emission{Port: port, Packet: sw.hostCopy(p, rest)})
		})
		out = append(out, sw.upstreamCopies(p, rest, rule, sw.topo.LeafUpWidth())...)
		sw.Stats().PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		sw.traceHop(p, trace.RulePRule, out)
		return out, nil
	}
	// Downstream: skip any stale earlier sections (a legacy hop pops
	// nothing), then match our own leaf ID if a d-leaf section is
	// present; otherwise consult the group table directly.
	stream, err := streamFrom(sw.layout, p.Elmo, header.TagDLeaf)
	if err != nil {
		return nil, err
	}
	tag, err = header.PeekTag(stream)
	if err != nil {
		return nil, err
	}
	m, _, err := sw.downstreamMatch(header.TagDLeaf, uint16(sw.leaf), stream, tag)
	if err != nil {
		return nil, err
	}
	ports, rule, ok := sw.resolve(m, p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	stamped := sw.stamp(stream, p.Outer.TTL)
	var out []Emission
	ports.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Packet: sw.hostCopy(p, stamped)})
	})
	sw.traceHop(p, rule, out)
	return out, nil
}

// processSpine handles the upstream turn (u-spine section) and the
// downstream fan-out (d-spine section keyed by pod).
func (sw *NetworkSwitch) processSpine(p Packet) ([]Emission, error) {
	tag, err := header.PeekTag(p.Elmo)
	if err != nil {
		return nil, err
	}
	if tag == header.TagUSpine {
		rule, rest, err := header.ConsumeUpstream(sw.layout, header.TagUSpine, p.Elmo)
		if err != nil {
			return nil, err
		}
		rest = sw.stamp(rest, p.Outer.TTL)
		var out []Emission
		if !rule.Down.IsEmpty() {
			// Down-copies into our own pod skip ahead to the d-leaf
			// section: the core and d-spine sections are not for them.
			downStream, err := streamFrom(sw.layout, rest, header.TagDLeaf)
			if err != nil {
				return nil, err
			}
			rule.Down.ForEach(func(port int) {
				out = append(out, Emission{Port: port, Packet: Packet{Outer: p.Outer, Elmo: downStream, Inner: p.Inner}})
			})
		}
		out = append(out, sw.upstreamCopies(p, rest, rule, sw.topo.SpineUpWidth())...)
		sw.Stats().PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		sw.traceHop(p, trace.RulePRule, out)
		return out, nil
	}
	// Downstream from core: skip stale sections, then match our pod in
	// the d-spine section.
	stream, err := streamFrom(sw.layout, p.Elmo, header.TagDSpine)
	if err != nil {
		return nil, err
	}
	tag, err = header.PeekTag(stream)
	if err != nil {
		return nil, err
	}
	pod := sw.topo.SpinePod(sw.spine)
	m, rest, err := sw.downstreamMatch(header.TagDSpine, uint16(pod), stream, tag)
	if err != nil {
		return nil, err
	}
	ports, rule, ok := sw.resolve(m, p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	rest = sw.stamp(rest, p.Outer.TTL)
	var out []Emission
	ports.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Packet: Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}})
	})
	sw.traceHop(p, rule, out)
	return out, nil
}

// processCore forwards one copy to each pod named in the core bitmap,
// popping the core section.
func (sw *NetworkSwitch) processCore(p Packet) ([]Emission, error) {
	pods, rest, err := header.ConsumeCore(sw.layout, p.Elmo)
	if err != nil {
		return nil, err
	}
	rest = sw.stamp(rest, p.Outer.TTL)
	var out []Emission
	pods.ForEach(func(pod int) {
		out = append(out, Emission{Port: pod, Packet: Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}})
	})
	sw.Stats().PRuleHits++
	sw.Counters.hit(trace.RulePRule)
	sw.traceHop(p, trace.RulePRule, out)
	return out, nil
}

// upstreamCopies emits the upward copies of an upstream rule: one
// ECMP-chosen port under multipathing, or every explicit Up port.
func (sw *NetworkSwitch) upstreamCopies(p Packet, rest []byte, rule header.UpstreamRule, upWidth int) []Emission {
	var out []Emission
	next := Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}
	if rule.Multipath {
		if port, ok := sw.pickUpstream(p.Outer, upWidth); ok {
			out = append(out, Emission{Port: port, Up: true, Packet: next})
		}
		return out
	}
	rule.Up.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Up: true, Packet: next})
	})
	return out
}

// pickUpstream hashes the flow over the alive upstream ports.
func (sw *NetworkSwitch) pickUpstream(f header.OuterFields, width int) (int, bool) {
	alive := make([]int, 0, width)
	for i := 0; i < width; i++ {
		if sw.UpstreamAlive == nil || sw.UpstreamAlive(i) {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return 0, false
	}
	if sw.UpstreamPicker != nil {
		return sw.UpstreamPicker(f, alive), true
	}
	var salt uint32
	if sw.kind == KindLeaf {
		salt = leafSalt(sw.leaf)
	} else {
		salt = spineSalt(sw.spine)
	}
	return alive[ECMPHash(f, salt)%uint32(len(alive))], true
}

// downstreamMatch consumes the section with wantTag if present; when
// the front tag is beyond it (already popped or never encoded), it
// returns an empty match so the caller falls through to the s-rule
// table, leaving the stream untouched for the next tier.
func (sw *NetworkSwitch) downstreamMatch(wantTag byte, id uint16, stream []byte, frontTag byte) (header.DownstreamMatch, []byte, error) {
	if frontTag == wantTag {
		return consumeDownstreamAt(sw.layout, wantTag, id, stream)
	}
	// The section may legitimately be absent (all switches covered by
	// s-rules): the stream then starts at a later valid tag or TagEnd.
	if frontTag == header.TagEnd || (frontTag > wantTag && frontTag <= header.TagDLeaf) {
		return header.DownstreamMatch{}, stream, nil
	}
	return header.DownstreamMatch{}, nil, fmt.Errorf("dataplane: %s switch saw unexpected tag %#x", sw.kind, frontTag)
}

func consumeDownstreamAt(l header.Layout, tag byte, id uint16, stream []byte) (header.DownstreamMatch, []byte, error) {
	return header.ConsumeDownstream(l, tag, id, stream)
}

// resolve implements the §4.1 ingress control flow: matched p-rule
// bitmap, else s-rule group table, else default p-rule. The returned
// RuleKind records which stage matched, for the flight recorder.
func (sw *NetworkSwitch) resolve(m header.DownstreamMatch, outer header.OuterFields) (bitmap.Bitmap, trace.RuleKind, bool) {
	st := sw.Stats()
	if m.Matched {
		st.PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		return m.Bitmap, trace.RulePRule, true
	}
	if addr, ok := GroupAddrFromOuter(outer); ok {
		if ports, ok := sw.groupTable[addr]; ok {
			st.SRuleHits++
			sw.Counters.hit(trace.RuleSRule)
			return ports, trace.RuleSRule, true
		}
	}
	if m.HasDefault {
		st.Defaults++
		sw.Counters.hit(trace.RuleDefault)
		return m.Default, trace.RuleDefault, true
	}
	return bitmap.Bitmap{}, trace.RuleNone, false
}

// stamp appends this switch's INT record when the stream carries a
// telemetry section (§7 Monitoring); the remaining TTL serves as the
// per-hop metadata. Streams without an INT section pass through
// untouched and unallocated.
func (sw *NetworkSwitch) stamp(stream []byte, ttl byte) []byte {
	var rec header.INTRecord
	switch sw.kind {
	case KindLeaf:
		rec = header.INTRecord{Tier: header.INTTierLeaf, ID: uint16(sw.leaf), Meta: ttl}
	case KindSpine:
		rec = header.INTRecord{Tier: header.INTTierSpine, ID: uint16(sw.spine), Meta: ttl}
	default:
		rec = header.INTRecord{Tier: header.INTTierCore, ID: uint16(sw.core), Meta: ttl}
	}
	out, err := header.AppendINTRecord(sw.layout, stream, rec)
	if err != nil {
		return stream
	}
	return out
}

// hostCopy strips the p-rule sections for host delivery, preserving a
// telemetry section if present (the host's hypervisor is the INT sink).
func (sw *NetworkSwitch) hostCopy(p Packet, stream []byte) Packet {
	rest, err := streamFrom(sw.layout, stream, header.TagINT)
	if err != nil || len(rest) == 0 {
		rest = emptyStream
	}
	return Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}
}

// streamFrom advances the stream to the section with the given tag (or
// to TagEnd if that section is absent).
func streamFrom(l header.Layout, stream []byte, tag byte) ([]byte, error) {
	for {
		front, err := header.PeekTag(stream)
		if err != nil {
			return nil, err
		}
		if front == tag || front == header.TagEnd || front > tag {
			return stream, nil
		}
		_, rest, err := header.SkipSection(l, stream)
		if err != nil {
			return nil, err
		}
		stream = rest
	}
}

var emptyStream = []byte{header.TagEnd}

// traceIdentity fills the event's tier/switch fields and the port
// widths used for rendering.
func (sw *NetworkSwitch) traceIdentity(ev *trace.Event) {
	switch sw.kind {
	case KindLeaf:
		ev.Tier, ev.Switch = trace.TierLeaf, int32(sw.leaf)
		ev.PortWidth = uint16(sw.topo.LeafDownWidth())
		ev.UpWidth = uint16(sw.topo.LeafUpWidth())
	case KindSpine:
		ev.Tier, ev.Switch = trace.TierSpine, int32(sw.spine)
		ev.PortWidth = uint16(sw.topo.SpineDownWidth())
		ev.UpWidth = uint16(sw.topo.SpineUpWidth())
	default:
		ev.Tier, ev.Switch = trace.TierCore, int32(sw.core)
		ev.PortWidth = uint16(sw.topo.CoreDownWidth())
	}
}

// traceHop records one pipeline traversal: the rule kind that matched,
// where the copies went, and the header bytes this hop consumed. Fully
// guarded — a nil or disabled tracer costs one check and no allocation.
func (sw *NetworkSwitch) traceHop(p Packet, rule trace.RuleKind, out []Emission) {
	if len(out) > 0 {
		sw.Counters.poppedBytes(len(p.Elmo) - len(out[0].Packet.Elmo))
	}
	if !trace.On(sw.Tracer, trace.CatHop) {
		return
	}
	ev := trace.Event{Cat: trace.CatHop, Kind: trace.KindHop, Rule: rule}
	sw.traceIdentity(&ev)
	if addr, ok := GroupAddrFromOuter(p.Outer); ok {
		ev.VNI, ev.Group = addr.VNI, addr.Group
	}
	for _, em := range out {
		if em.Up {
			ev.UpPorts.Set(em.Port)
		} else {
			ev.Ports.Set(em.Port)
		}
	}
	if len(out) > 0 {
		ev.Popped = int32(len(p.Elmo) - len(out[0].Packet.Elmo))
	}
	sw.Tracer.Record(ev)
}

// traceDrop records a dropped packet with its DropReason in Arg.
func (sw *NetworkSwitch) traceDrop(p Packet, reason DropReason) {
	if !trace.On(sw.Tracer, trace.CatHop) {
		return
	}
	ev := trace.Event{Cat: trace.CatHop, Kind: trace.KindDrop, Arg: int64(reason)}
	sw.traceIdentity(&ev)
	if addr, ok := GroupAddrFromOuter(p.Outer); ok {
		ev.VNI, ev.Group = addr.VNI, addr.Group
	}
	sw.Tracer.Record(ev)
}
