package dataplane

import (
	"fmt"
	"math/bits"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// SwitchKind is the tier of a network switch.
type SwitchKind int

const (
	// KindLeaf is a top-of-rack switch.
	KindLeaf SwitchKind = iota
	// KindSpine is a pod spine switch.
	KindSpine
	// KindCore is a core (fabric) switch.
	KindCore
)

func (k SwitchKind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindSpine:
		return "spine"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("SwitchKind(%d)", int(k))
	}
}

// Emission is one packet copy a switch produces: the output port in
// the given direction and the (popped) packet.
type Emission struct {
	Port   int
	Up     bool
	Packet Packet
}

// DropReason classifies why a switch dropped a packet.
type DropReason int

const (
	// DropNone means not dropped.
	DropNone DropReason = iota
	// DropNoRule: no p-rule matched, no s-rule, no default.
	DropNoRule
	// DropTTL: outer TTL expired.
	DropTTL
	// DropMalformed: the section stream failed to parse.
	DropMalformed
)

// Stats counts a switch's data-plane events.
type Stats struct {
	Packets   int
	Copies    int
	Drops     map[DropReason]int
	SRuleHits int
	PRuleHits int
	Defaults  int
}

// NetworkSwitch is one physical leaf, spine, or core switch. Its only
// multicast state is the s-rule group table; everything else arrives
// in packets. Methods are not safe for concurrent use; the fabric
// serializes per switch.
type NetworkSwitch struct {
	topo   *topology.Topology
	layout header.Layout
	kind   SwitchKind
	// Identity within the tier.
	leaf  topology.LeafID
	spine topology.SpineID
	core  topology.CoreID

	groupTable map[GroupAddr]bitmap.Bitmap
	capacity   int

	// UpstreamAlive reports whether upstream port i currently leads to
	// a healthy switch; the fabric wires it to the failure set so that
	// multipath hashing skips dead paths (link-state-aware ECMP).
	// A nil func treats all ports as alive.
	UpstreamAlive func(port int) bool

	// Legacy marks a switch that has not migrated to Elmo (§7): it
	// treats the Elmo section stream as opaque VXLAN payload, forwards
	// purely from its group table, and pops nothing. Downstream modern
	// switches skip the stale sections a legacy hop leaves in place.
	Legacy bool

	// UpstreamPicker overrides the multipath scheme (the paper's D2
	// multipath flag defers to "the configured underlying multipathing
	// scheme (e.g., ECMP, CONGA, or HULA)"). It receives the flow's
	// outer fields and the currently-alive upstream ports and returns
	// the chosen port. Nil means flow-hash ECMP.
	UpstreamPicker func(f header.OuterFields, alive []int) int

	// Tracer receives a flight-recorder event per processed packet
	// (which rule matched, output ports, header bytes popped) when the
	// hop category is enabled. Nil or disabled costs one nil check /
	// atomic load per packet and allocates nothing. Set it while the
	// switch is quiet (same contract as the group table).
	Tracer trace.Recorder

	// Counters bumps live telemetry alongside stats when attached
	// (typically the tier's shared SwitchCounters); nil costs one
	// branch per site and allocates nothing. Set while quiet.
	Counters *SwitchCounters

	// fence is the leadership epoch floor: installs stamped with a
	// lower epoch are rejected (see fence.go).
	fence EpochFence

	stats Stats

	// procScratch backs the Process convenience wrapper so occasional
	// callers get the fast path without owning a scratch. Bulk callers
	// (the fabrics) hold their own per-worker SwitchScratch instead.
	procScratch SwitchScratch
}

// NewLeaf creates the leaf switch for the given ID.
func NewLeaf(topo *topology.Topology, id topology.LeafID, sRuleCapacity int) *NetworkSwitch {
	return &NetworkSwitch{topo: topo, layout: header.LayoutFor(topo), kind: KindLeaf, leaf: id,
		groupTable: make(map[GroupAddr]bitmap.Bitmap), capacity: sRuleCapacity}
}

// NewSpine creates the spine switch for the given ID.
func NewSpine(topo *topology.Topology, id topology.SpineID, sRuleCapacity int) *NetworkSwitch {
	return &NetworkSwitch{topo: topo, layout: header.LayoutFor(topo), kind: KindSpine, spine: id,
		groupTable: make(map[GroupAddr]bitmap.Bitmap), capacity: sRuleCapacity}
}

// NewCore creates the core switch for the given ID. Cores hold no
// group state in Elmo.
func NewCore(topo *topology.Topology, id topology.CoreID) *NetworkSwitch {
	return &NetworkSwitch{topo: topo, layout: header.LayoutFor(topo), kind: KindCore, core: id}
}

// Kind returns the switch tier.
func (sw *NetworkSwitch) Kind() SwitchKind { return sw.kind }

// Stats returns the switch's counters.
func (sw *NetworkSwitch) Stats() *Stats {
	if sw.stats.Drops == nil {
		sw.stats.Drops = make(map[DropReason]int)
	}
	return &sw.stats
}

// InstallSRule adds a group-table entry. It fails when the table is at
// capacity (Fmax) — the controller should never let that happen, so an
// error here indicates a capacity-accounting bug.
func (sw *NetworkSwitch) InstallSRule(addr GroupAddr, ports bitmap.Bitmap) error {
	if sw.kind == KindCore {
		return fmt.Errorf("dataplane: core switches hold no s-rules")
	}
	if _, exists := sw.groupTable[addr]; !exists && len(sw.groupTable) >= sw.capacity {
		return fmt.Errorf("dataplane: %s group table full (%d entries)", sw.kind, sw.capacity)
	}
	sw.groupTable[addr] = ports.Clone()
	return nil
}

// RemoveSRule deletes a group-table entry (idempotent).
func (sw *NetworkSwitch) RemoveSRule(addr GroupAddr) {
	delete(sw.groupTable, addr)
}

// SRuleCount returns the current group-table occupancy.
func (sw *NetworkSwitch) SRuleCount() int { return len(sw.groupTable) }

// Process runs the switch pipeline on one packet and returns the
// emitted copies. A nil error with no emissions means the packet was
// dropped (see Stats().Drops).
//
// Process is a cloning wrapper over ProcessInto: it runs the fast path
// against a per-switch scratch and returns emissions whose memory is
// independent of the scratch, so callers may hold them indefinitely.
// Bulk callers (the fabric event loops) should call ProcessInto with
// their own scratch instead and skip the copies.
func (sw *NetworkSwitch) Process(p Packet) ([]Emission, error) {
	sw.procScratch.Reset()
	out, err := sw.ProcessInto(p, &sw.procScratch)
	if err != nil || len(out) == 0 {
		return nil, err
	}
	res := make([]Emission, len(out))
	copy(res, out)
	if sw.procScratch.stamped {
		// Stamped streams alias the scratch arena; detach them. Unstamped
		// streams alias the input packet, exactly as the reference
		// pipeline's emissions did.
		for i := range res {
			res[i].Packet.Elmo = append([]byte(nil), res[i].Packet.Elmo...)
		}
	}
	return res, nil
}

// ProcessInto runs the switch pipeline on one packet using the
// caller-owned scratch and returns the emitted copies. It is
// emission-identical to Process and ReferenceProcess (asserted by
// randomized tests) and performs no heap allocation once the scratch
// is warm.
//
// The returned slice aliases s and is valid only until the next
// ProcessInto call with the same scratch. INT-stamped streams alias
// s's arena and stay valid across calls until s.Reset(); see
// SwitchScratch for the lifetime contract.
func (sw *NetworkSwitch) ProcessInto(p Packet, s *SwitchScratch) ([]Emission, error) {
	s.emissions = s.emissions[:0]
	s.stamped = false
	st := sw.Stats()
	st.Packets++
	sw.Counters.packet()
	if p.Outer.TTL <= 1 {
		st.Drops[DropTTL]++
		sw.Counters.drop(DropTTL)
		sw.traceDrop(p, DropTTL)
		return nil, nil
	}
	p.Outer.TTL--
	var err error
	switch {
	case sw.Legacy:
		err = sw.legacyInto(p, s)
	case sw.kind == KindLeaf:
		err = sw.leafInto(p, s)
	case sw.kind == KindSpine:
		err = sw.spineInto(p, s)
	case sw.kind == KindCore:
		err = sw.coreInto(p, s)
	}
	if err != nil {
		st.Drops[DropMalformed]++
		sw.Counters.drop(DropMalformed)
		sw.traceDrop(p, DropMalformed)
		return nil, err
	}
	st.Copies += len(s.emissions)
	sw.Counters.emitted(len(s.emissions))
	if len(s.emissions) == 0 {
		return nil, nil
	}
	return s.emissions, nil
}

// appendPortEmissions fans pkt out to every set bit of bm in ascending
// port order. It iterates words directly instead of using ForEach: the
// closure there captures the growing emission slice and escapes,
// costing an allocation per packet.
func appendPortEmissions(s *SwitchScratch, bm bitmap.Bitmap, up bool, pkt Packet) {
	for wi, w := range bm.Words() {
		base := wi * 64
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			s.emissions = append(s.emissions, Emission{Port: base + tz, Up: up, Packet: pkt})
			w &^= 1 << uint(tz)
		}
	}
}

// legacyInto forwards an Elmo packet from the group table alone — the
// paper's tested legacy-switch behavior: the switch was configured to
// consult its multicast group table when it sees an Elmo packet,
// treating the section stream as opaque payload (never popped).
func (sw *NetworkSwitch) legacyInto(p Packet, s *SwitchScratch) error {
	if sw.kind == KindCore {
		return fmt.Errorf("dataplane: legacy cores are not modeled")
	}
	addr, ok := GroupAddrFromOuter(p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil
	}
	ports, ok := sw.groupTable[addr]
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil
	}
	sw.Stats().SRuleHits++
	sw.Counters.hit(trace.RuleSRule)
	appendPortEmissions(s, ports, false, p)
	sw.traceHop(p, trace.RuleSRule, s.emissions)
	return nil
}

// leafInto handles both directions: packets from hosts carry a u-leaf
// section; packets from spines carry (at most) a d-leaf section.
func (sw *NetworkSwitch) leafInto(p Packet, s *SwitchScratch) error {
	tag, err := header.PeekTag(p.Elmo)
	if err != nil {
		return err
	}
	if tag == header.TagULeaf {
		rest, err := header.ConsumeUpstreamInto(sw.layout, header.TagULeaf, p.Elmo, &s.uRule)
		if err != nil {
			return err
		}
		if !p.NoINT {
			rest = sw.stampInto(rest, p.Outer.TTL, s)
		}
		// Host deliveries: strip the remaining p-rules — the egress
		// invalidates all p-rules toward hosts (§4.1). The stripped
		// packet is identical for every port, so build it once.
		appendPortEmissions(s, s.uRule.Down, false, sw.hostCopy(p, rest))
		sw.upstreamCopiesInto(p, rest, s.uRule, sw.topo.LeafUpWidth(), s)
		sw.Stats().PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		sw.traceHop(p, trace.RulePRule, s.emissions)
		return nil
	}
	// Downstream: skip any stale earlier sections (a legacy hop pops
	// nothing), then match our own leaf ID if a d-leaf section is
	// present; otherwise consult the group table directly.
	stream, err := streamFrom(sw.layout, p.Elmo, header.TagDLeaf)
	if err != nil {
		return err
	}
	tag, err = header.PeekTag(stream)
	if err != nil {
		return err
	}
	if _, err := sw.downstreamMatchInto(header.TagDLeaf, uint16(sw.leaf), stream, tag, &s.match); err != nil {
		return err
	}
	ports, rule, ok := sw.resolve(s.match, p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil
	}
	stamped := stream
	if !p.NoINT {
		stamped = sw.stampInto(stream, p.Outer.TTL, s)
	}
	appendPortEmissions(s, ports, false, sw.hostCopy(p, stamped))
	sw.traceHop(p, rule, s.emissions)
	return nil
}

// spineInto handles the upstream turn (u-spine section) and the
// downstream fan-out (d-spine section keyed by pod).
func (sw *NetworkSwitch) spineInto(p Packet, s *SwitchScratch) error {
	tag, err := header.PeekTag(p.Elmo)
	if err != nil {
		return err
	}
	if tag == header.TagUSpine {
		rest, err := header.ConsumeUpstreamInto(sw.layout, header.TagUSpine, p.Elmo, &s.uRule)
		if err != nil {
			return err
		}
		if !p.NoINT {
			rest = sw.stampInto(rest, p.Outer.TTL, s)
		}
		if !s.uRule.Down.IsEmpty() {
			// Down-copies into our own pod skip ahead to the d-leaf
			// section: the core and d-spine sections are not for them.
			downStream, err := streamFrom(sw.layout, rest, header.TagDLeaf)
			if err != nil {
				return err
			}
			appendPortEmissions(s, s.uRule.Down, false, Packet{Outer: p.Outer, Elmo: downStream, Inner: p.Inner, NoINT: p.NoINT})
		}
		sw.upstreamCopiesInto(p, rest, s.uRule, sw.topo.SpineUpWidth(), s)
		sw.Stats().PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		sw.traceHop(p, trace.RulePRule, s.emissions)
		return nil
	}
	// Downstream from core: skip stale sections, then match our pod in
	// the d-spine section.
	stream, err := streamFrom(sw.layout, p.Elmo, header.TagDSpine)
	if err != nil {
		return err
	}
	tag, err = header.PeekTag(stream)
	if err != nil {
		return err
	}
	pod := sw.topo.SpinePod(sw.spine)
	rest, err := sw.downstreamMatchInto(header.TagDSpine, uint16(pod), stream, tag, &s.match)
	if err != nil {
		return err
	}
	ports, rule, ok := sw.resolve(s.match, p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil
	}
	if !p.NoINT {
		rest = sw.stampInto(rest, p.Outer.TTL, s)
	}
	appendPortEmissions(s, ports, false, Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner, NoINT: p.NoINT})
	sw.traceHop(p, rule, s.emissions)
	return nil
}

// coreInto forwards one copy to each pod named in the core bitmap,
// popping the core section.
func (sw *NetworkSwitch) coreInto(p Packet, s *SwitchScratch) error {
	rest, err := header.ConsumeCoreInto(sw.layout, p.Elmo, &s.pods)
	if err != nil {
		return err
	}
	if !p.NoINT {
		rest = sw.stampInto(rest, p.Outer.TTL, s)
	}
	appendPortEmissions(s, s.pods, false, Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner, NoINT: p.NoINT})
	sw.Stats().PRuleHits++
	sw.Counters.hit(trace.RulePRule)
	sw.traceHop(p, trace.RulePRule, s.emissions)
	return nil
}

// upstreamCopiesInto emits the upward copies of an upstream rule: one
// ECMP-chosen port under multipathing, or every explicit Up port.
func (sw *NetworkSwitch) upstreamCopiesInto(p Packet, rest []byte, rule header.UpstreamRule, upWidth int, s *SwitchScratch) {
	next := Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner, NoINT: p.NoINT}
	if rule.Multipath {
		if port, ok := sw.pickUpstreamInto(p.Outer, upWidth, s); ok {
			s.emissions = append(s.emissions, Emission{Port: port, Up: true, Packet: next})
		}
		return
	}
	appendPortEmissions(s, rule.Up, true, next)
}

// pickUpstreamInto hashes the flow over the alive upstream ports,
// collected into the scratch alive slice. An UpstreamPicker override
// receives that scratch slice and must not retain it past the call.
func (sw *NetworkSwitch) pickUpstreamInto(f header.OuterFields, width int, s *SwitchScratch) (int, bool) {
	alive := s.alive[:0]
	for i := 0; i < width; i++ {
		if sw.UpstreamAlive == nil || sw.UpstreamAlive(i) {
			alive = append(alive, i)
		}
	}
	s.alive = alive
	if len(alive) == 0 {
		return 0, false
	}
	if sw.UpstreamPicker != nil {
		return sw.UpstreamPicker(f, alive), true
	}
	var salt uint32
	if sw.kind == KindLeaf {
		salt = leafSalt(sw.leaf)
	} else {
		salt = spineSalt(sw.spine)
	}
	return alive[ECMPHash(f, salt)%uint32(len(alive))], true
}

// downstreamMatchInto consumes the section with wantTag if present,
// decoding into m; when the front tag is beyond it (already popped or
// never encoded), it leaves m empty so the caller falls through to the
// s-rule table, leaving the stream untouched for the next tier.
func (sw *NetworkSwitch) downstreamMatchInto(wantTag byte, id uint16, stream []byte, frontTag byte, m *header.DownstreamMatch) ([]byte, error) {
	if frontTag == wantTag {
		return header.ConsumeDownstreamInto(sw.layout, wantTag, id, stream, m)
	}
	// The section may legitimately be absent (all switches covered by
	// s-rules): the stream then starts at a later valid tag or TagEnd.
	if frontTag == header.TagEnd || (frontTag > wantTag && frontTag <= header.TagDLeaf) {
		m.Matched, m.HasDefault = false, false
		return stream, nil
	}
	return nil, fmt.Errorf("dataplane: %s switch saw unexpected tag %#x", sw.kind, frontTag)
}

// resolve implements the §4.1 ingress control flow: matched p-rule
// bitmap, else s-rule group table, else default p-rule. The returned
// RuleKind records which stage matched, for the flight recorder.
func (sw *NetworkSwitch) resolve(m header.DownstreamMatch, outer header.OuterFields) (bitmap.Bitmap, trace.RuleKind, bool) {
	st := sw.Stats()
	if m.Matched {
		st.PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		return m.Bitmap, trace.RulePRule, true
	}
	if addr, ok := GroupAddrFromOuter(outer); ok {
		if ports, ok := sw.groupTable[addr]; ok {
			st.SRuleHits++
			sw.Counters.hit(trace.RuleSRule)
			return ports, trace.RuleSRule, true
		}
	}
	if m.HasDefault {
		st.Defaults++
		sw.Counters.hit(trace.RuleDefault)
		return m.Default, trace.RuleDefault, true
	}
	return bitmap.Bitmap{}, trace.RuleNone, false
}

// intRecord builds this switch's INT record; the remaining TTL serves
// as the per-hop metadata (§7 Monitoring).
func (sw *NetworkSwitch) intRecord(ttl byte) header.INTRecord {
	switch sw.kind {
	case KindLeaf:
		return header.INTRecord{Tier: header.INTTierLeaf, ID: uint16(sw.leaf), Meta: ttl}
	case KindSpine:
		return header.INTRecord{Tier: header.INTTierSpine, ID: uint16(sw.spine), Meta: ttl}
	default:
		return header.INTRecord{Tier: header.INTTierCore, ID: uint16(sw.core), Meta: ttl}
	}
}

// stampInto appends this switch's INT record when the stream carries a
// telemetry section, writing the rewritten stream into the scratch
// arena (append-only, so streams stamped for earlier packets in the
// batch stay valid). Streams without an INT section pass through
// untouched and unallocated; malformed streams are returned unchanged
// for the downstream parser to reject.
func (sw *NetworkSwitch) stampInto(stream []byte, ttl byte, s *SwitchScratch) []byte {
	start := len(s.arena)
	arena, ok, err := header.AppendINTRecordTo(sw.layout, s.arena, stream, sw.intRecord(ttl))
	if err != nil || !ok {
		return stream
	}
	s.arena = arena
	s.stamped = true
	// Full slice expression: an append to the returned stream must
	// reallocate rather than grow into later arena bytes.
	return s.arena[start:len(s.arena):len(s.arena)]
}

// hostCopy strips the p-rule sections for host delivery, preserving a
// telemetry section if present (the host's hypervisor is the INT sink).
func (sw *NetworkSwitch) hostCopy(p Packet, stream []byte) Packet {
	if p.NoINT {
		// No INT section can exist, so the scan below would always land
		// on TagEnd; emptyStream is that same single-byte stream.
		return Packet{Outer: p.Outer, Elmo: emptyStream, Inner: p.Inner, NoINT: true}
	}
	rest, err := streamFrom(sw.layout, stream, header.TagINT)
	if err != nil || len(rest) == 0 {
		rest = emptyStream
	}
	return Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner, NoINT: p.NoINT}
}

// streamFrom advances the stream to the section with the given tag (or
// to TagEnd if that section is absent).
func streamFrom(l header.Layout, stream []byte, tag byte) ([]byte, error) {
	for {
		front, err := header.PeekTag(stream)
		if err != nil {
			return nil, err
		}
		if front == tag || front == header.TagEnd || front > tag {
			return stream, nil
		}
		_, rest, err := header.SkipSection(l, stream)
		if err != nil {
			return nil, err
		}
		stream = rest
	}
}

var emptyStream = []byte{header.TagEnd}

// traceIdentity fills the event's tier/switch fields and the port
// widths used for rendering.
func (sw *NetworkSwitch) traceIdentity(ev *trace.Event) {
	switch sw.kind {
	case KindLeaf:
		ev.Tier, ev.Switch = trace.TierLeaf, int32(sw.leaf)
		ev.PortWidth = uint16(sw.topo.LeafDownWidth())
		ev.UpWidth = uint16(sw.topo.LeafUpWidth())
	case KindSpine:
		ev.Tier, ev.Switch = trace.TierSpine, int32(sw.spine)
		ev.PortWidth = uint16(sw.topo.SpineDownWidth())
		ev.UpWidth = uint16(sw.topo.SpineUpWidth())
	default:
		ev.Tier, ev.Switch = trace.TierCore, int32(sw.core)
		ev.PortWidth = uint16(sw.topo.CoreDownWidth())
	}
}

// traceHop records one pipeline traversal: the rule kind that matched,
// where the copies went, and the header bytes this hop consumed. Fully
// guarded — a nil or disabled tracer costs one check and no allocation.
func (sw *NetworkSwitch) traceHop(p Packet, rule trace.RuleKind, out []Emission) {
	if len(out) > 0 {
		sw.Counters.poppedBytes(len(p.Elmo) - len(out[0].Packet.Elmo))
	}
	if !trace.On(sw.Tracer, trace.CatHop) {
		return
	}
	ev := trace.Event{Cat: trace.CatHop, Kind: trace.KindHop, Rule: rule}
	sw.traceIdentity(&ev)
	if addr, ok := GroupAddrFromOuter(p.Outer); ok {
		ev.VNI, ev.Group = addr.VNI, addr.Group
	}
	for _, em := range out {
		if em.Up {
			ev.UpPorts.Set(em.Port)
		} else {
			ev.Ports.Set(em.Port)
		}
	}
	if len(out) > 0 {
		ev.Popped = int32(len(p.Elmo) - len(out[0].Packet.Elmo))
	}
	sw.Tracer.Record(ev)
}

// traceDrop records a dropped packet with its DropReason in Arg.
func (sw *NetworkSwitch) traceDrop(p Packet, reason DropReason) {
	if !trace.On(sw.Tracer, trace.CatHop) {
		return
	}
	ev := trace.Event{Cat: trace.CatHop, Kind: trace.KindDrop, Arg: int64(reason)}
	sw.traceIdentity(&ev)
	if addr, ok := GroupAddrFromOuter(p.Outer); ok {
		ev.VNI, ev.Group = addr.VNI, addr.Group
	}
	sw.Tracer.Record(ev)
}
