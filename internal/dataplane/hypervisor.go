package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// ErrNoSenderFlow is returned (wrapped) by Encap when the hypervisor
// has no flow installed for the group — the signal a sender uses to
// fall back to unicast while the controller repairs the group (§3.3).
var ErrNoSenderFlow = errors.New("dataplane: no sender flow")

// SenderFlow is a hypervisor flow-table entry for one group a local VM
// sends to: the precomputed Elmo section stream and the outer-header
// template. Precomputing the stream is the §4.2 optimization — the
// hypervisor encapsulates with a single contiguous write instead of
// one write per p-rule header.
type SenderFlow struct {
	addr   GroupAddr
	outer  header.OuterFields
	stream []byte
	noINT  bool
}

// StreamLen returns the Elmo header bytes this flow adds per packet.
func (f *SenderFlow) StreamLen() int { return len(f.stream) }

// Hypervisor is the software switch on one host (paper §2): it
// encapsulates multicast packets from local VMs with the group's Elmo
// header, and on receive it filters packets to groups with local
// members, discarding the rest.
type Hypervisor struct {
	topo   *topology.Topology
	layout header.Layout
	host   topology.HostID

	// mu guards flows and receiving: the live fabrics deliver on
	// concurrent switch goroutines while the controller installs.
	mu        sync.RWMutex
	flows     map[GroupAddr]*SenderFlow
	receiving map[GroupAddr]bool

	// Counters (atomic: the receive path may run on concurrent leaf
	// goroutines in the live fabric).
	encapsulated atomic.Int64
	delivered    atomic.Int64
	filtered     atomic.Int64

	// Tracer receives encap/deliver/filter flight-recorder events when
	// the host category is enabled; nil or disabled costs one check per
	// packet. Set while the fabric is quiet.
	Tracer trace.Recorder

	// Counters bumps live telemetry alongside the local counters when
	// attached (typically the fabric-wide HostCounters); nil costs one
	// branch per packet. Set while the fabric is quiet.
	Counters *HostCounters

	// fence is the leadership epoch floor: installs stamped with a
	// lower epoch are rejected (see fence.go).
	fence EpochFence
}

// NewHypervisor creates the hypervisor switch for a host.
func NewHypervisor(topo *topology.Topology, host topology.HostID) *Hypervisor {
	return &Hypervisor{
		topo:      topo,
		layout:    header.LayoutFor(topo),
		host:      host,
		flows:     make(map[GroupAddr]*SenderFlow),
		receiving: make(map[GroupAddr]bool),
	}
}

// Host returns the host this hypervisor runs on.
func (hv *Hypervisor) Host() topology.HostID { return hv.host }

// InstallSenderFlow installs (or replaces) the encapsulation state for
// a group: the controller-computed header h is serialized once and
// reused for every packet.
func (hv *Hypervisor) InstallSenderFlow(addr GroupAddr, h *header.Header) error {
	stream, err := header.Encode(hv.layout, h)
	if err != nil {
		return fmt.Errorf("dataplane: encoding sender flow: %w", err)
	}
	hv.mu.Lock()
	hv.flows[addr] = &SenderFlow{
		addr:   addr,
		outer:  SenderOuter(hv.topo, hv.host, addr),
		stream: stream,
		noINT:  !h.INTEnabled,
	}
	hv.mu.Unlock()
	return nil
}

// RemoveSenderFlow drops the encapsulation state for a group.
func (hv *Hypervisor) RemoveSenderFlow(addr GroupAddr) {
	hv.mu.Lock()
	delete(hv.flows, addr)
	hv.mu.Unlock()
}

// SetReceiving marks whether a local VM is a member of the group; the
// receive path drops packets of other groups.
func (hv *Hypervisor) SetReceiving(addr GroupAddr, on bool) {
	hv.mu.Lock()
	if on {
		hv.receiving[addr] = true
	} else {
		delete(hv.receiving, addr)
	}
	hv.mu.Unlock()
}

// Encap encapsulates an inner frame for the group, returning the
// packet handed to the source leaf. It fails if no flow is installed
// (the hypervisor discards sends to unknown groups).
func (hv *Hypervisor) Encap(addr GroupAddr, inner []byte) (Packet, error) {
	hv.mu.RLock()
	f, ok := hv.flows[addr]
	hv.mu.RUnlock()
	if !ok {
		return Packet{}, fmt.Errorf("host %d, group %+v: %w", hv.host, addr, ErrNoSenderFlow)
	}
	hv.encapsulated.Add(1)
	hv.Counters.encap(len(f.stream))
	if trace.On(hv.Tracer, trace.CatHost) {
		hv.Tracer.Record(trace.Event{
			Cat: trace.CatHost, Kind: trace.KindEncap, Tier: trace.TierHost,
			Switch: int32(hv.host), VNI: addr.VNI, Group: addr.Group,
			Arg: int64(len(f.stream)),
		})
	}
	return Packet{Outer: f.outer, Elmo: f.stream, Inner: inner, NoINT: f.noINT}, nil
}

// Deliver is the receive path: it accepts the packet if a local VM
// belongs to the group, returning the inner frame. Spurious packets
// (reaching this host only through shared-bitmap or default-rule
// redundancy) are filtered, mirroring "each hypervisor switch only
// maintains flow rules for multicast groups that have member VMs
// running on the same host, discarding packets belonging to other
// groups" (§2).
func (hv *Hypervisor) Deliver(p Packet) ([]byte, bool) {
	inner, _, ok := hv.DeliverFull(p)
	return inner, ok
}

// DeliverFull is Deliver plus the packet's in-band telemetry records
// (§7 Monitoring): the per-hop path the copy actually took, when the
// sender enabled INT.
func (hv *Hypervisor) DeliverFull(p Packet) ([]byte, []header.INTRecord, bool) {
	addr, ok := GroupAddrFromOuter(p.Outer)
	if ok {
		hv.mu.RLock()
		ok = hv.receiving[addr]
		hv.mu.RUnlock()
	}
	if !ok {
		hv.filtered.Add(1)
		hv.Counters.filter()
		if trace.On(hv.Tracer, trace.CatHost) {
			hv.Tracer.Record(trace.Event{
				Cat: trace.CatHost, Kind: trace.KindFilter, Tier: trace.TierHost,
				Switch: int32(hv.host), VNI: addr.VNI, Group: addr.Group,
			})
		}
		return nil, nil, false
	}
	hv.delivered.Add(1)
	hv.Counters.deliver()
	if trace.On(hv.Tracer, trace.CatHost) {
		hv.Tracer.Record(trace.Event{
			Cat: trace.CatHost, Kind: trace.KindDeliver, Tier: trace.TierHost,
			Switch: int32(hv.host), VNI: addr.VNI, Group: addr.Group,
		})
	}
	records, err := header.ExtractINT(hv.layout, p.Elmo)
	if err != nil {
		records = nil
	}
	return p.Inner, records, true
}

// Encapsulated reports the packets this hypervisor encapsulated.
func (hv *Hypervisor) Encapsulated() int { return int(hv.encapsulated.Load()) }

// Delivered reports the packets accepted for local member VMs.
func (hv *Hypervisor) Delivered() int { return int(hv.delivered.Load()) }

// Filtered reports the spurious packets discarded on receive.
func (hv *Hypervisor) Filtered() int { return int(hv.filtered.Load()) }

// groupMAC maps a group address to the standard IPv4-multicast MAC
// (01:00:5e + low 23 bits).
func groupMAC(addr GroupAddr) [6]byte {
	ip := header.GroupIP(addr.Group)
	return [6]byte{0x01, 0x00, 0x5e, ip[1] & 0x7f, ip[2], ip[3]}
}
