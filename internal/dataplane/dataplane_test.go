package dataplane

import (
	"testing"
	"testing/quick"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

func paperTopo() *topology.Topology { return topology.MustNew(topology.PaperExample()) }

func TestGroupAddrFromOuter(t *testing.T) {
	f := header.OuterFields{DstIP: header.GroupIP(77), VNI: 5}
	addr, ok := GroupAddrFromOuter(f)
	if !ok || addr.VNI != 5 || addr.Group != 77 {
		t.Fatalf("addr = %+v ok=%v", addr, ok)
	}
	if _, ok := GroupAddrFromOuter(header.OuterFields{DstIP: [4]byte{10, 0, 0, 1}}); ok {
		t.Fatal("unicast IP accepted as group")
	}
}

func TestPacketMarshalUnmarshal(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	core := bitmap.FromPorts(l.CoreDown, 1, 2)
	stream, err := header.Encode(l, &header.Header{Core: &core})
	if err != nil {
		t.Fatal(err)
	}
	p := Packet{
		Outer: header.OuterFields{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: header.GroupIP(3),
			VNI: 9, ElmoVersion: header.Version, TTL: 60,
		},
		Elmo:  stream,
		Inner: []byte("payload"),
	}
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != p.WireSize() {
		t.Fatalf("wire %d != WireSize %d", len(wire), p.WireSize())
	}
	q, err := Unmarshal(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Outer != p.Outer || string(q.Inner) != "payload" || len(q.Elmo) != len(stream) {
		t.Fatalf("roundtrip mismatch: %+v", q)
	}
}

func TestUnmarshalPlainVXLAN(t *testing.T) {
	l := header.LayoutFor(paperTopo())
	p := Packet{
		Outer: header.OuterFields{DstIP: [4]byte{10, 0, 0, 2}, TTL: 4},
		Inner: []byte("plain"),
	}
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Elmo != nil || string(q.Inner) != "plain" {
		t.Fatalf("plain VXLAN mishandled: %+v", q)
	}
}

func TestHypervisorEncapDeliver(t *testing.T) {
	topo := paperTopo()
	hv := NewHypervisor(topo, 3)
	addr := GroupAddr{VNI: 7, Group: 12}
	h := &header.Header{}
	if err := hv.InstallSenderFlow(addr, h); err != nil {
		t.Fatal(err)
	}
	pkt, err := hv.Encap(addr, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Outer.VNI != 7 || pkt.Outer.DstIP != header.GroupIP(12) {
		t.Fatalf("outer = %+v", pkt.Outer)
	}
	if pkt.Outer.SrcIP != header.HostIP(topo, 3) {
		t.Fatal("source IP wrong")
	}
	// Unknown group: encap fails.
	if _, err := hv.Encap(GroupAddr{VNI: 7, Group: 99}, nil); err == nil {
		t.Fatal("encap for unknown group accepted")
	}
	// Delivery filter.
	if _, ok := hv.Deliver(pkt); ok {
		t.Fatal("non-member hypervisor accepted packet")
	}
	hv.SetReceiving(addr, true)
	inner, ok := hv.Deliver(pkt)
	if !ok || string(inner) != "msg" {
		t.Fatal("member hypervisor rejected packet")
	}
	hv.SetReceiving(addr, false)
	if _, ok := hv.Deliver(pkt); ok {
		t.Fatal("filter not removed")
	}
	if hv.Encapsulated() != 1 || hv.Delivered() != 1 || hv.Filtered() != 2 {
		t.Fatalf("counters: %d %d %d", hv.Encapsulated(), hv.Delivered(), hv.Filtered())
	}
	hv.RemoveSenderFlow(addr)
	if _, err := hv.Encap(addr, nil); err == nil {
		t.Fatal("flow not removed")
	}
}

func TestSRuleCapacityEnforced(t *testing.T) {
	topo := paperTopo()
	sw := NewLeaf(topo, 0, 2)
	bm := bitmap.FromPorts(topo.LeafDownWidth(), 1)
	if err := sw.InstallSRule(GroupAddr{VNI: 1, Group: 1}, bm); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallSRule(GroupAddr{VNI: 1, Group: 2}, bm); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallSRule(GroupAddr{VNI: 1, Group: 3}, bm); err == nil {
		t.Fatal("capacity exceeded silently")
	}
	// Overwriting an existing entry is allowed at capacity.
	if err := sw.InstallSRule(GroupAddr{VNI: 1, Group: 2}, bm); err != nil {
		t.Fatal(err)
	}
	sw.RemoveSRule(GroupAddr{VNI: 1, Group: 1})
	if sw.SRuleCount() != 1 {
		t.Fatalf("count = %d", sw.SRuleCount())
	}
	if err := sw.InstallSRule(GroupAddr{VNI: 1, Group: 3}, bm); err != nil {
		t.Fatal(err)
	}
	core := NewCore(topo, 0)
	if err := core.InstallSRule(GroupAddr{VNI: 1, Group: 1}, bm); err == nil {
		t.Fatal("core accepted an s-rule")
	}
}

func TestTTLExpiry(t *testing.T) {
	topo := paperTopo()
	sw := NewLeaf(topo, 0, 4)
	l := header.LayoutFor(topo)
	stream, _ := header.Encode(l, &header.Header{})
	p := Packet{Outer: header.OuterFields{TTL: 1}, Elmo: stream}
	ems, err := sw.Process(p)
	if err != nil || len(ems) != 0 {
		t.Fatalf("ems=%v err=%v", ems, err)
	}
	if sw.Stats().Drops[DropTTL] != 1 {
		t.Fatal("TTL drop not counted")
	}
}

func TestMalformedStreamCountsDrop(t *testing.T) {
	topo := paperTopo()
	sw := NewLeaf(topo, 0, 4)
	p := Packet{Outer: header.OuterFields{TTL: 9}, Elmo: []byte{0x77}}
	if _, err := sw.Process(p); err == nil {
		t.Fatal("malformed stream accepted")
	}
	if sw.Stats().Drops[DropMalformed] != 1 {
		t.Fatal("malformed drop not counted")
	}
}

func TestLeafDropsWithoutAnyRule(t *testing.T) {
	topo := paperTopo()
	sw := NewLeaf(topo, 2, 4)
	l := header.LayoutFor(topo)
	// Downstream packet with no d-leaf section, no s-rule installed.
	stream, _ := header.Encode(l, &header.Header{})
	p := Packet{
		Outer: header.OuterFields{TTL: 9, DstIP: header.GroupIP(5), VNI: 1},
		Elmo:  stream,
	}
	ems, err := sw.Process(p)
	if err != nil || len(ems) != 0 {
		t.Fatalf("ems=%v err=%v", ems, err)
	}
	if sw.Stats().Drops[DropNoRule] != 1 {
		t.Fatal("no-rule drop not counted")
	}
}

func TestLeafUpstreamMultipathSkipsDeadSpines(t *testing.T) {
	topo := paperTopo()
	sw := NewLeaf(topo, 0, 4)
	dead := map[int]bool{0: true}
	sw.UpstreamAlive = func(port int) bool { return !dead[port] }
	l := header.LayoutFor(topo)
	h := &header.Header{
		ULeaf: &header.UpstreamRule{
			Down:      bitmap.New(l.LeafDown),
			Up:        bitmap.New(l.LeafUp),
			Multipath: true,
		},
	}
	stream, _ := header.Encode(l, h)
	p := Packet{Outer: header.OuterFields{TTL: 9}, Elmo: stream}
	ems, err := sw.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) != 1 || !ems[0].Up || ems[0].Port != 1 {
		t.Fatalf("ems = %+v, want single up copy on port 1", ems)
	}
	// All spines dead: the copy is simply not emitted.
	dead[1] = true
	ems, err = sw.Process(p)
	if err != nil || len(ems) != 0 {
		t.Fatalf("ems=%v err=%v", ems, err)
	}
}

func TestExplicitUpstreamPorts(t *testing.T) {
	topo := paperTopo()
	sw := NewLeaf(topo, 0, 4)
	l := header.LayoutFor(topo)
	h := &header.Header{
		ULeaf: &header.UpstreamRule{
			Down:      bitmap.FromPorts(l.LeafDown, 2),
			Up:        bitmap.FromPorts(l.LeafUp, 0, 1),
			Multipath: false,
		},
	}
	stream, _ := header.Encode(l, h)
	p := Packet{Outer: header.OuterFields{TTL: 9}, Elmo: stream}
	ems, err := sw.Process(p)
	if err != nil {
		t.Fatal(err)
	}
	ups, downs := 0, 0
	for _, em := range ems {
		if em.Up {
			ups++
		} else {
			downs++
			if len(em.Packet.Elmo) != 1 {
				t.Fatal("host copy not stripped")
			}
		}
	}
	if ups != 2 || downs != 1 {
		t.Fatalf("ups=%d downs=%d", ups, downs)
	}
}

func TestECMPHashDeterministicAndSpread(t *testing.T) {
	f1 := header.OuterFields{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: header.GroupIP(1), SrcPort: 5}
	if ECMPHash(f1, 7) != ECMPHash(f1, 7) {
		t.Fatal("hash not deterministic")
	}
	if ECMPHash(f1, 7) == ECMPHash(f1, 8) {
		t.Fatal("salt has no effect")
	}
	// Different flows should spread (weak check: not all equal).
	seen := make(map[uint32]bool)
	for port := 0; port < 64; port++ {
		f := f1
		f.SrcPort = uint16(port)
		seen[ECMPHash(f, 7)%4] = true
	}
	if len(seen) < 2 {
		t.Fatal("hash does not spread flows")
	}
}

func TestQuickMarshalUnmarshalRoundTrip(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	f := func(vni uint32, group uint32, inner []byte) bool {
		p := Packet{
			Outer: header.OuterFields{
				DstIP: header.GroupIP(group % (1 << 24)), VNI: vni % (1 << 24),
				ElmoVersion: header.Version, TTL: 12,
			},
			Elmo:  []byte{header.TagEnd},
			Inner: inner,
		}
		wire, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		q, err := Unmarshal(l, wire)
		if err != nil {
			return false
		}
		return q.Outer == p.Outer && len(q.Inner) == len(inner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHypervisorEncap(b *testing.B) {
	topo := paperTopo()
	hv := NewHypervisor(topo, 0)
	addr := GroupAddr{VNI: 1, Group: 1}
	l := header.LayoutFor(topo)
	core := bitmap.FromPorts(l.CoreDown, 1, 2, 3)
	if err := hv.InstallSenderFlow(addr, &header.Header{Core: &core}); err != nil {
		b.Fatal(err)
	}
	inner := make([]byte, 1500-100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hv.Encap(addr, inner); err != nil {
			b.Fatal(err)
		}
	}
}
