package dataplane

import (
	"elmo/internal/bitmap"
	"elmo/internal/header"
)

// SwitchScratch is the caller-owned working memory for ProcessInto —
// the forwarding-path analogue of cluster.Scratch on the encode path.
// One scratch serves one goroutine's packets; it is not safe for
// concurrent use.
//
// Two lifetimes coexist inside a scratch:
//
//   - The emission list and decode state (alive ports, upstream rule,
//     downstream match, core pods) are valid only until the next
//     ProcessInto call with the same scratch. Callers must consume or
//     copy the returned emissions before processing another packet.
//
//   - The INT arena is append-only across calls: stamped section
//     streams returned in emissions alias it, so queued packets stay
//     valid while later packets are processed. Call Reset only when
//     every packet emitted since the previous Reset is dead (fully
//     forwarded or dropped) — typically once per fabric send or per
//     datagram batch. Arena growth reallocates and leaves the old
//     backing array to the still-live slices, so growth never corrupts
//     queued packets.
type SwitchScratch struct {
	emissions []Emission
	alive     []int
	// arena backs INT-stamped streams (append-only between Resets).
	arena []byte
	// stamped reports whether the latest ProcessInto wrote the arena —
	// i.e. whether any returned emission aliases scratch-owned bytes
	// rather than the input stream.
	stamped bool

	uRule header.UpstreamRule
	match header.DownstreamMatch
	pods  bitmap.Bitmap
}

// Reset recycles the INT arena. Call it only when all packets emitted
// from this scratch since the last Reset are dead; their Elmo streams
// may alias the arena and are clobbered by subsequent stamping.
func (s *SwitchScratch) Reset() {
	s.arena = s.arena[:0]
	s.stamped = false
}

// Stamped reports whether the most recent ProcessInto emitted packets
// whose section streams alias the scratch arena (INT stamping
// happened). Callers that hand emissions to an unknown-lifetime
// consumer can use it to decide when a defensive copy is needed.
func (s *SwitchScratch) Stamped() bool { return s.stamped }
