package dataplane

import (
	"bytes"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// fnvOracle is the original ECMPHash implementation (hash/fnv digest
// over the 18-byte flow buffer, trailing pad byte included).
func fnvOracle(f header.OuterFields, salt uint32) uint32 {
	h := fnv.New32a()
	var b [18]byte
	copy(b[0:4], f.SrcIP[:])
	copy(b[4:8], f.DstIP[:])
	b[8] = byte(f.SrcPort >> 8)
	b[9] = byte(f.SrcPort)
	b[10] = byte(f.VNI >> 16)
	b[11] = byte(f.VNI >> 8)
	b[12] = byte(f.VNI)
	b[13] = byte(salt >> 24)
	b[14] = byte(salt >> 16)
	b[15] = byte(salt >> 8)
	b[16] = byte(salt)
	h.Write(b[:])
	return h.Sum32()
}

// TestECMPHashGolden pins literal hash values: if any of these move,
// every multipath decision (and PredictPath) moves with them, breaking
// controller/data-plane agreement across versions.
func TestECMPHashGolden(t *testing.T) {
	cases := []struct {
		f    header.OuterFields
		salt uint32
		want uint32
	}{
		{header.OuterFields{}, 0, 0x4211a50d},
		{header.OuterFields{SrcIP: [4]byte{10, 0, 1, 2}, DstIP: [4]byte{239, 0, 0, 7}, SrcPort: 49321, VNI: 3}, 0x00001005, 0xb4489f87},
		{header.OuterFields{SrcIP: [4]byte{10, 3, 0, 9}, DstIP: [4]byte{239, 1, 2, 3}, SrcPort: 65535, VNI: 0xABCDEF}, 0x01000004, 0xc7ec9b84},
		{header.OuterFields{SrcIP: [4]byte{192, 168, 255, 1}, DstIP: [4]byte{239, 255, 255, 255}, SrcPort: 1, VNI: 1}, 0xFFFFFFFF, 0x7c77692b},
	}
	for i, c := range cases {
		if got := ECMPHash(c.f, c.salt); got != c.want {
			t.Errorf("case %d: ECMPHash = %#x, want %#x", i, got, c.want)
		}
	}
}

// TestECMPHashMatchesFNV checks the inlined FNV-1a loop against the
// hash/fnv digest on randomized flows.
func TestECMPHashMatchesFNV(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var f header.OuterFields
		r.Read(f.SrcIP[:])
		r.Read(f.DstIP[:])
		f.SrcPort = uint16(r.Uint32())
		f.VNI = r.Uint32() & 0xFFFFFF
		salt := r.Uint32()
		if got, want := ECMPHash(f, salt), fnvOracle(f, salt); got != want {
			t.Fatalf("flow %d: inline hash %#x != fnv %#x", i, got, want)
		}
	}
}

// randPorts returns a random (possibly empty) port subset of width.
func randPorts(r *rand.Rand, width int) bitmap.Bitmap {
	b := bitmap.New(width)
	for i := 0; i < width; i++ {
		if r.Intn(3) == 0 {
			b.Set(i)
		}
	}
	return b
}

func randSwitchIDs(r *rand.Rand, max int, include uint16) []uint16 {
	ids := make([]uint16, 0, 3)
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		ids = append(ids, uint16(r.Intn(max)))
	}
	if r.Intn(2) == 0 {
		ids[r.Intn(len(ids))] = include
	}
	return ids
}

// randHeader builds a randomized (valid) section stream for the given
// receiving tier/direction, exercising p-rule match, miss, default, and
// INT-stamping combinations.
func randHeader(t *testing.T, r *rand.Rand, topo *topology.Topology, l header.Layout, scenario string, leafID topology.LeafID, pod int) []byte {
	t.Helper()
	h := &header.Header{}
	addDLeaf := func() {
		if r.Intn(2) == 0 {
			var rules []header.PRule
			for i := 0; i < 1+r.Intn(2); i++ {
				bm := randPorts(r, l.LeafDown)
				rules = append(rules, header.PRule{Switches: randSwitchIDs(r, topo.NumLeaves(), uint16(leafID)), Bitmap: bm})
			}
			h.DLeaf = rules
		}
		if r.Intn(2) == 0 {
			def := randPorts(r, l.LeafDown)
			h.DLeafDefault = &def
		}
	}
	addDSpine := func() {
		if r.Intn(2) == 0 {
			var rules []header.PRule
			for i := 0; i < 1+r.Intn(2); i++ {
				bm := randPorts(r, l.SpineDown)
				rules = append(rules, header.PRule{Switches: randSwitchIDs(r, topo.NumPods(), uint16(pod)), Bitmap: bm})
			}
			h.DSpine = rules
		}
		if r.Intn(2) == 0 {
			def := randPorts(r, l.SpineDown)
			h.DSpineDefault = &def
		}
	}
	switch scenario {
	case "leaf-up":
		h.ULeaf = &header.UpstreamRule{
			Down:      randPorts(r, l.LeafDown),
			Up:        randPorts(r, l.LeafUp),
			Multipath: r.Intn(2) == 0,
		}
		if r.Intn(2) == 0 {
			core := randPorts(r, l.CoreDown)
			h.Core = &core
		}
		addDSpine()
		addDLeaf()
	case "spine-up":
		h.USpine = &header.UpstreamRule{
			Down:      randPorts(r, l.SpineDown),
			Up:        randPorts(r, l.SpineUp),
			Multipath: r.Intn(2) == 0,
		}
		if r.Intn(2) == 0 {
			core := randPorts(r, l.CoreDown)
			h.Core = &core
		}
		addDSpine()
		addDLeaf()
	case "core":
		core := randPorts(r, l.CoreDown)
		h.Core = &core
		addDSpine()
		addDLeaf()
	case "spine-down":
		addDSpine()
		addDLeaf()
	case "leaf-down", "legacy":
		addDLeaf()
	}
	if r.Intn(2) == 0 {
		h.INTEnabled = true
		for i := 0; i < r.Intn(3); i++ {
			h.INT = append(h.INT, header.INTRecord{
				Tier: uint8(1 + r.Intn(3)), ID: uint16(r.Intn(64)), Meta: uint8(r.Intn(256)),
			})
		}
	}
	stream, err := header.Encode(l, h)
	if err != nil {
		t.Fatalf("encode %s: %v", scenario, err)
	}
	return stream
}

func emissionsEqual(a, b []Emission) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Port != b[i].Port || a[i].Up != b[i].Up ||
			a[i].Packet.Outer != b[i].Packet.Outer ||
			!bytes.Equal(a[i].Packet.Elmo, b[i].Packet.Elmo) ||
			!bytes.Equal(a[i].Packet.Inner, b[i].Packet.Inner) {
			return false
		}
	}
	return true
}

func statsEqual(a, b *Stats) bool {
	return a.Packets == b.Packets && a.Copies == b.Copies &&
		a.SRuleHits == b.SRuleHits && a.PRuleHits == b.PRuleHits &&
		a.Defaults == b.Defaults && reflect.DeepEqual(a.Drops, b.Drops)
}

// TestProcessIntoEquivalence drives randomized traffic through all
// three switch tiers (both directions, INT stamping, s-rule and
// default-rule fallback, legacy mode, TTL drops, truncated streams)
// and asserts ReferenceProcess, Process, and ProcessInto agree on
// emissions, errors, and stats.
func TestProcessIntoEquivalence(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	scenarios := []string{"leaf-up", "leaf-down", "spine-up", "spine-down", "core", "legacy"}
	r := rand.New(rand.NewSource(42))
	var scratch SwitchScratch

	for i := 0; i < 3000; i++ {
		scenario := scenarios[r.Intn(len(scenarios))]
		leafID := topology.LeafID(r.Intn(topo.NumLeaves()))
		spineID := topology.SpineID(r.Intn(topo.NumSpines()))
		coreID := topology.CoreID(r.Intn(topo.NumCores()))
		pod := int(topo.SpinePod(spineID))

		// Three identically-configured switches: one per implementation,
		// so stats can be compared too.
		var sws [3]*NetworkSwitch
		for j := range sws {
			switch scenario {
			case "leaf-up", "leaf-down", "legacy":
				sws[j] = NewLeaf(topo, leafID, 8)
			case "spine-up", "spine-down":
				sws[j] = NewSpine(topo, spineID, 8)
			case "core":
				sws[j] = NewCore(topo, coreID)
			}
		}
		group := uint32(r.Intn(32))
		vni := uint32(r.Intn(8))
		if scenario == "legacy" {
			sws[0].Legacy, sws[1].Legacy, sws[2].Legacy = true, true, true
		}
		if sws[0].kind != KindCore && r.Intn(2) == 0 {
			ports := randPorts(r, l.LeafDown)
			if sws[0].kind == KindSpine {
				ports = randPorts(r, l.SpineDown)
			}
			for j := range sws {
				if err := sws[j].InstallSRule(GroupAddr{VNI: vni, Group: group}, ports); err != nil {
					t.Fatal(err)
				}
			}
		}
		if r.Intn(3) == 0 {
			dead := r.Intn(8)
			for j := range sws {
				sws[j].UpstreamAlive = func(port int) bool { return port != dead }
			}
		}

		stream := randHeader(t, r, topo, l, scenario, leafID, pod)
		if r.Intn(10) == 0 && len(stream) > 1 {
			stream = stream[:r.Intn(len(stream))] // truncated/malformed
		}
		ttl := byte(r.Intn(40)) // includes TTL<=1 drops
		outer := header.OuterFields{
			SrcIP:   [4]byte{10, byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))},
			DstIP:   header.GroupIP(group),
			SrcPort: uint16(49152 + r.Intn(16384)),
			VNI:     vni,
			TTL:     ttl,
		}
		inner := make([]byte, r.Intn(32))
		r.Read(inner)
		p := Packet{Outer: outer, Elmo: stream, Inner: inner}

		refEms, refErr := sws[0].ReferenceProcess(p)
		wrapEms, wrapErr := sws[1].Process(p)
		intoEms, intoErr := sws[2].ProcessInto(p, &scratch)
		scratch.Reset()

		if (refErr == nil) != (wrapErr == nil) || (refErr == nil) != (intoErr == nil) {
			t.Fatalf("iter %d (%s): error mismatch ref=%v wrap=%v into=%v", i, scenario, refErr, wrapErr, intoErr)
		}
		if refErr != nil && (refErr.Error() != wrapErr.Error() || refErr.Error() != intoErr.Error()) {
			t.Fatalf("iter %d (%s): error text mismatch ref=%q wrap=%q into=%q", i, scenario, refErr, wrapErr, intoErr)
		}
		if !emissionsEqual(refEms, wrapEms) {
			t.Fatalf("iter %d (%s): Process emissions diverge\nref:  %+v\nwrap: %+v", i, scenario, refEms, wrapEms)
		}
		if !emissionsEqual(refEms, intoEms) {
			t.Fatalf("iter %d (%s): ProcessInto emissions diverge\nref:  %+v\ninto: %+v", i, scenario, refEms, intoEms)
		}
		if !statsEqual(sws[0].Stats(), sws[1].Stats()) || !statsEqual(sws[0].Stats(), sws[2].Stats()) {
			t.Fatalf("iter %d (%s): stats diverge ref=%+v wrap=%+v into=%+v",
				i, scenario, sws[0].Stats(), sws[1].Stats(), sws[2].Stats())
		}
	}
}

// TestProcessIntoArenaBatchSafety checks the append-only arena
// contract: emissions from earlier packets in a batch (INT-stamped
// streams aliasing the arena) survive later ProcessInto calls on the
// same scratch, including calls that force arena growth.
func TestProcessIntoArenaBatchSafety(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	core := bitmap.FromPorts(l.CoreDown, 0, 1)
	h := &header.Header{Core: &core, INTEnabled: true}
	stream, err := header.Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewCore(topo, 3)
	p := Packet{Outer: header.OuterFields{TTL: 9}, Elmo: stream}

	var s SwitchScratch
	first, err := sw.ProcessInto(p, &s)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stamped() {
		t.Fatal("INT-enabled stream did not stamp")
	}
	snapshot := make([][]byte, len(first))
	for i, em := range first {
		snapshot[i] = append([]byte(nil), em.Packet.Elmo...)
	}
	held := make([]Emission, len(first))
	copy(held, first)
	// Process many more packets without Reset: arena must grow without
	// invalidating the held emissions.
	for i := 0; i < 200; i++ {
		if _, err := sw.ProcessInto(p, &s); err != nil {
			t.Fatal(err)
		}
	}
	for i, em := range held {
		if !bytes.Equal(em.Packet.Elmo, snapshot[i]) {
			t.Fatalf("batch emission %d corrupted by later stamping", i)
		}
	}
}

// TestProcessIntoZeroAllocs asserts the fast path performs no heap
// allocation once the scratch is warm, on every tier and on the
// INT-stamping and s-rule fallback paths.
func TestProcessIntoZeroAllocs(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)

	mk := func(h *header.Header, ttl byte, group, vni uint32) Packet {
		stream, err := header.Encode(l, h)
		if err != nil {
			t.Fatal(err)
		}
		return Packet{Outer: header.OuterFields{TTL: ttl, DstIP: header.GroupIP(group), VNI: vni, SrcPort: 49153}, Elmo: stream}
	}

	coreBM := bitmap.FromPorts(l.CoreDown, 0, 2)
	dspineDef := bitmap.FromPorts(l.SpineDown, 1)
	cases := []struct {
		name string
		sw   *NetworkSwitch
		pkt  Packet
	}{
		{
			name: "leaf-upstream-int-multipath",
			sw:   NewLeaf(topo, 2, 8),
			pkt: mk(&header.Header{
				ULeaf: &header.UpstreamRule{
					Down:      bitmap.FromPorts(l.LeafDown, 0, 3),
					Up:        bitmap.New(l.LeafUp),
					Multipath: true,
				},
				Core:       &coreBM,
				INTEnabled: true,
			}, 17, 4, 2),
		},
		{
			name: "spine-upstream",
			sw:   NewSpine(topo, 1, 8),
			pkt: mk(&header.Header{
				USpine: &header.UpstreamRule{
					Down: bitmap.FromPorts(l.SpineDown, 1),
					Up:   bitmap.FromPorts(l.SpineUp, 0),
				},
				Core:  &coreBM,
				DLeaf: []header.PRule{{Switches: []uint16{3}, Bitmap: bitmap.FromPorts(l.LeafDown, 2)}},
			}, 17, 4, 2),
		},
		{
			name: "core-int",
			sw:   NewCore(topo, 0),
			pkt: mk(&header.Header{
				Core:       &coreBM,
				INTEnabled: true,
			}, 17, 4, 2),
		},
		{
			name: "spine-downstream-default",
			sw:   NewSpine(topo, 0, 8),
			pkt: mk(&header.Header{
				DSpine:        []header.PRule{{Switches: []uint16{3}, Bitmap: bitmap.FromPorts(l.SpineDown, 0)}},
				DSpineDefault: &dspineDef,
				DLeaf:         []header.PRule{{Switches: []uint16{3}, Bitmap: bitmap.FromPorts(l.LeafDown, 2)}},
			}, 17, 4, 2),
		},
		{
			name: "leaf-downstream-prule-int",
			sw:   NewLeaf(topo, 3, 8),
			pkt: mk(&header.Header{
				DLeaf:      []header.PRule{{Switches: []uint16{3}, Bitmap: bitmap.FromPorts(l.LeafDown, 1, 5)}},
				INTEnabled: true,
			}, 17, 4, 2),
		},
	}

	// s-rule fallback tier: leaf consults its group table.
	srLeaf := NewLeaf(topo, 5, 8)
	if err := srLeaf.InstallSRule(GroupAddr{VNI: 2, Group: 4}, bitmap.FromPorts(l.LeafDown, 0, 7)); err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		sw   *NetworkSwitch
		pkt  Packet
	}{"leaf-srule-fallback", srLeaf, mk(&header.Header{}, 17, 4, 2)})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var s SwitchScratch
			// Warm the scratch (grow emissions, alive, arena, decode bitmaps).
			for i := 0; i < 8; i++ {
				s.Reset()
				if _, err := c.sw.ProcessInto(c.pkt, &s); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				s.Reset()
				if _, err := c.sw.ProcessInto(c.pkt, &s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("ProcessInto allocs/op = %v, want 0", allocs)
			}
		})
	}
}

func BenchmarkProcessIntoLeafUpstream(b *testing.B) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	core := bitmap.FromPorts(l.CoreDown, 0)
	h := &header.Header{
		ULeaf: &header.UpstreamRule{
			Down:      bitmap.FromPorts(l.LeafDown, 0, 3),
			Up:        bitmap.New(l.LeafUp),
			Multipath: true,
		},
		Core: &core,
	}
	stream, err := header.Encode(l, h)
	if err != nil {
		b.Fatal(err)
	}
	sw := NewLeaf(topo, 2, 8)
	p := Packet{Outer: header.OuterFields{TTL: 17, DstIP: header.GroupIP(4), VNI: 2}, Elmo: stream}
	var s SwitchScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, err := sw.ProcessInto(p, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceProcessLeafUpstream(b *testing.B) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	core := bitmap.FromPorts(l.CoreDown, 0)
	h := &header.Header{
		ULeaf: &header.UpstreamRule{
			Down:      bitmap.FromPorts(l.LeafDown, 0, 3),
			Up:        bitmap.New(l.LeafUp),
			Multipath: true,
		},
		Core: &core,
	}
	stream, err := header.Encode(l, h)
	if err != nil {
		b.Fatal(err)
	}
	sw := NewLeaf(topo, 2, 8)
	p := Packet{Outer: header.OuterFields{TTL: 17, DstIP: header.GroupIP(4), VNI: 2}, Elmo: stream}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.ReferenceProcess(p); err != nil {
			b.Fatal(err)
		}
	}
}
