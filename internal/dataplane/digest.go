package dataplane

import (
	"encoding/binary"
	"io"
	"sort"

	"elmo/internal/bitmap"
)

// Deterministic state digests, the currency of split-brain audits: the
// partition soak hashes every device's forwarding state and demands
// that the old leader (rejoined as follower), the new leader, and the
// data plane all agree bit-for-bit after heal. Map iteration order is
// randomized, so each digest sorts its entries first.

// sortedAddrs returns the map's group addresses in (VNI, Group) order.
func sortedAddrs[V any](m map[GroupAddr]V) []GroupAddr {
	addrs := make([]GroupAddr, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].VNI != addrs[j].VNI {
			return addrs[i].VNI < addrs[j].VNI
		}
		return addrs[i].Group < addrs[j].Group
	})
	return addrs
}

func writeAddr(w io.Writer, a GroupAddr) {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], a.VNI)
	binary.BigEndian.PutUint32(b[4:8], a.Group)
	w.Write(b[:])
}

func writeBitmap(w io.Writer, bm bitmap.Bitmap) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(bm.Width()))
	w.Write(b[:])
	for _, word := range bm.Words() {
		binary.BigEndian.PutUint64(b[:], word)
		w.Write(b[:])
	}
}

// WriteStateDigest streams the switch's group table (sorted) into w —
// feed it a hash to fingerprint the device.
func (sw *NetworkSwitch) WriteStateDigest(w io.Writer) {
	for _, a := range sortedAddrs(sw.groupTable) {
		writeAddr(w, a)
		writeBitmap(w, sw.groupTable[a])
	}
}

// WriteStateDigest streams the hypervisor's flow table and receive
// filters (sorted) into w. Safe to call while the fabric is quiet.
func (hv *Hypervisor) WriteStateDigest(w io.Writer) {
	hv.mu.RLock()
	defer hv.mu.RUnlock()
	var b [8]byte
	for _, a := range sortedAddrs(hv.flows) {
		writeAddr(w, a)
		f := hv.flows[a]
		binary.BigEndian.PutUint64(b[:], uint64(len(f.stream)))
		w.Write(b[:])
		w.Write(f.stream)
	}
	for _, a := range sortedAddrs(hv.receiving) {
		writeAddr(w, a)
		w.Write([]byte{1})
	}
}
