package dataplane

// Flow observation contract. The concrete observer lives in
// internal/obs; the interface sits here so the fabrics can hold one
// without importing the ops plane (which itself imports the controller
// for its introspection handlers). The contract mirrors FaultInjector:
// Active must be a single cheap check, and the disabled path of an
// attached observer must not change forwarding cost at all — the
// fabrics guard every call site with ObsOn, so a nil or disabled
// observer costs one nil check plus one atomic load per site and never
// allocates.

// SendSample is the per-send accounting handed to the observer at the
// single per-send site (after the forwarding loop drains). Fields are
// plain values so passing the struct allocates nothing.
type SendSample struct {
	// VNI and Group identify the multicast group (zero for baseline
	// unicast/overlay sends, which carry no group address).
	VNI, Group uint32
	// Delivered counts member hosts that received the packet; Lost
	// counts copies dropped in flight (failed switches, chaos drops,
	// unparseable corrupted headers).
	Delivered, Lost int
	// Bytes is the total wire bytes this send pushed across links.
	Bytes int64
	// Hops counts switch traversals.
	Hops int
	// Nanos is the wall-clock forwarding time of the send.
	Nanos int64
}

// FlowObserver receives per-link and per-send traffic accounting from
// the fabrics. ObserveLink fires once per directed link crossing (the
// same crossings LinkBytes counts); ObserveSend fires once per send.
// Implementations must tolerate concurrent calls: the live fabrics
// forward from many goroutines.
type FlowObserver interface {
	// Active reports whether observation is currently enabled; when
	// false the fabrics skip the observe calls entirely.
	Active() bool
	// ObserveLink records bytes crossing one directed link.
	ObserveLink(l Link, bytes int)
	// ObserveSend records the outcome of one completed send.
	ObserveSend(s SendSample)
}

// ObsOn is the hot-path guard mirroring FaultsOn: a nil check plus the
// observer's own cheap activity check.
func ObsOn(o FlowObserver) bool {
	return o != nil && o.Active()
}
