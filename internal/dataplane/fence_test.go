package dataplane

import (
	"errors"
	"sync"
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/telemetry"
)

func TestEpochFenceAdmit(t *testing.T) {
	var f EpochFence

	// Epoch 0 is the unfenced bootstrap: always admitted, floor stays 0.
	if !f.Admit(0) {
		t.Fatal("epoch 0 rejected on fresh fence")
	}
	if f.Current() != 0 {
		t.Fatalf("epoch 0 raised floor to %d", f.Current())
	}

	// First real epoch raises the floor; replays at the floor pass.
	if !f.Admit(3) || f.Current() != 3 {
		t.Fatalf("admit(3): floor %d", f.Current())
	}
	if !f.Admit(3) {
		t.Fatal("same-epoch install rejected")
	}

	// Lower epochs are fenced and counted; the floor holds.
	if f.Admit(2) {
		t.Fatal("stale epoch 2 admitted past floor 3")
	}
	if f.Admit(1) {
		t.Fatal("stale epoch 1 admitted past floor 3")
	}
	if got := f.Rejected(); got != 2 {
		t.Fatalf("Rejected() = %d, want 2", got)
	}

	// Epoch 0 still passes after the floor rises (legacy paths keep
	// working on a fenced device) and still doesn't move the floor.
	if !f.Admit(0) || f.Current() != 3 {
		t.Fatalf("epoch 0 after floor: admit failed or floor %d", f.Current())
	}

	// A higher epoch advances the floor.
	f.Observe(7)
	if f.Current() != 7 {
		t.Fatalf("Observe(7): floor %d", f.Current())
	}
	if f.Admit(3) {
		t.Fatal("old floor epoch admitted after Observe raised it")
	}
}

func TestEpochFenceConcurrent(t *testing.T) {
	var f EpochFence
	var wg sync.WaitGroup
	for e := uint64(1); e <= 64; e++ {
		wg.Add(1)
		go func(e uint64) {
			defer wg.Done()
			f.Admit(e)
		}(e)
	}
	wg.Wait()
	if f.Current() != 64 {
		t.Fatalf("floor after concurrent admits = %d, want 64", f.Current())
	}
}

func TestSwitchInstallAtFencesStaleEpoch(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	sw := NewLeaf(topo, 3, 4)
	sw.Counters = m.Leaf
	addr := GroupAddr{VNI: 1, Group: 9}
	ports := bitmap.FromPorts(l.LeafDown, 0)

	if err := sw.InstallSRuleAt(2, addr, ports); err != nil {
		t.Fatal(err)
	}
	if sw.SRuleCount() != 1 {
		t.Fatalf("s-rule count %d after fenced install", sw.SRuleCount())
	}

	// A deposed leader at epoch 1 can neither install nor remove.
	err := sw.InstallSRuleAt(1, GroupAddr{VNI: 1, Group: 10}, ports)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale install error = %v", err)
	}
	var se *StaleEpochError
	if !errors.As(err, &se) {
		t.Fatalf("error %T not a *StaleEpochError", err)
	}
	if se.Device != "leaf 3" || se.Epoch != 1 || se.Current != 2 {
		t.Fatalf("StaleEpochError = %+v", se)
	}
	if err := sw.RemoveSRuleAt(1, addr); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale remove error = %v", err)
	}
	if sw.SRuleCount() != 1 {
		t.Fatalf("stale ops changed table: count %d", sw.SRuleCount())
	}
	if got := sw.Fence().Rejected(); got != 2 {
		t.Fatalf("fence rejections %d, want 2", got)
	}
	if got := m.Leaf.fenced.Value(); got != 2 {
		t.Fatalf("elmo_fencing_rejected_total{tier=leaf} = %d, want 2", got)
	}

	// The successor removes at its own epoch just fine.
	if err := sw.RemoveSRuleAt(2, addr); err != nil {
		t.Fatal(err)
	}
	if sw.SRuleCount() != 0 {
		t.Fatalf("count %d after epoch-2 remove", sw.SRuleCount())
	}
}

func TestHypervisorInstallAtFencesStaleEpoch(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	hv := NewHypervisor(topo, 17)
	hv.Counters = m.Host
	addr := GroupAddr{VNI: 2, Group: 4}
	h := &header.Header{
		DLeaf: []header.PRule{{Switches: []uint16{0}, Bitmap: bitmap.FromPorts(l.LeafDown, 1)}},
	}

	if err := hv.InstallSenderFlowAt(5, addr, h); err != nil {
		t.Fatal(err)
	}
	if err := hv.SetReceivingAt(5, addr, true); err != nil {
		t.Fatal(err)
	}

	var se *StaleEpochError
	if err := hv.InstallSenderFlowAt(4, addr, h); !errors.As(err, &se) {
		t.Fatalf("stale flow install error = %v", err)
	} else if se.Device != "host 17" || se.Current != 5 {
		t.Fatalf("StaleEpochError = %+v", se)
	}
	if err := hv.RemoveSenderFlowAt(4, addr); !errors.Is(err, ErrStaleEpoch) {
		t.Fatal("stale flow remove admitted")
	}
	if err := hv.SetReceivingAt(4, addr, false); !errors.Is(err, ErrStaleEpoch) {
		t.Fatal("stale receiving update admitted")
	}

	// State is untouched: the sender flow still encapsulates and the
	// group is still receiving.
	if _, err := hv.Encap(addr, []byte("x")); err != nil {
		t.Fatalf("flow lost after fenced ops: %v", err)
	}
	if got := m.Host.fenced.Value(); got != 3 {
		t.Fatalf("elmo_fencing_rejected_total{tier=host} = %d, want 3", got)
	}
	if got := hv.Fence().Rejected(); got != 3 {
		t.Fatalf("fence rejections %d, want 3", got)
	}
}
