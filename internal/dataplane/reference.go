package dataplane

import (
	"fmt"

	"elmo/internal/header"
	"elmo/internal/trace"
)

// This file freezes the original allocating Process implementation as
// ReferenceProcess. It is the equivalence oracle for the scratch-based
// fast path (ProcessInto) and the baseline the dataplane benchmark
// stage compares against — the same role cluster.ReferenceAssign plays
// for the encode path. Do not optimize it.

// ReferenceProcess runs the original (allocating) switch pipeline on
// one packet. It is emission-identical to Process/ProcessInto; tests
// assert this on randomized traffic.
func (sw *NetworkSwitch) ReferenceProcess(p Packet) ([]Emission, error) {
	st := sw.Stats()
	st.Packets++
	sw.Counters.packet()
	if p.Outer.TTL <= 1 {
		st.Drops[DropTTL]++
		sw.Counters.drop(DropTTL)
		sw.traceDrop(p, DropTTL)
		return nil, nil
	}
	p.Outer.TTL--
	var out []Emission
	var err error
	switch {
	case sw.Legacy:
		out, err = sw.refProcessLegacy(p)
	case sw.kind == KindLeaf:
		out, err = sw.refProcessLeaf(p)
	case sw.kind == KindSpine:
		out, err = sw.refProcessSpine(p)
	case sw.kind == KindCore:
		out, err = sw.refProcessCore(p)
	}
	if err != nil {
		st.Drops[DropMalformed]++
		sw.Counters.drop(DropMalformed)
		sw.traceDrop(p, DropMalformed)
		return nil, err
	}
	st.Copies += len(out)
	sw.Counters.emitted(len(out))
	return out, nil
}

// refProcessLegacy forwards an Elmo packet from the group table alone —
// the paper's tested legacy-switch behavior: the switch was configured
// to consult its multicast group table when it sees an Elmo packet,
// treating the section stream as opaque payload (never popped).
func (sw *NetworkSwitch) refProcessLegacy(p Packet) ([]Emission, error) {
	if sw.kind == KindCore {
		return nil, fmt.Errorf("dataplane: legacy cores are not modeled")
	}
	addr, ok := GroupAddrFromOuter(p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	ports, ok := sw.groupTable[addr]
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	sw.Stats().SRuleHits++
	sw.Counters.hit(trace.RuleSRule)
	var out []Emission
	ports.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Packet: p})
	})
	sw.traceHop(p, trace.RuleSRule, out)
	return out, nil
}

// refProcessLeaf handles both directions: packets from hosts carry a
// u-leaf section; packets from spines carry (at most) a d-leaf section.
func (sw *NetworkSwitch) refProcessLeaf(p Packet) ([]Emission, error) {
	tag, err := header.PeekTag(p.Elmo)
	if err != nil {
		return nil, err
	}
	if tag == header.TagULeaf {
		rule, rest, err := header.ConsumeUpstream(sw.layout, header.TagULeaf, p.Elmo)
		if err != nil {
			return nil, err
		}
		rest = sw.refStamp(rest, p.Outer.TTL)
		var out []Emission
		// Host deliveries: strip the remaining p-rules — the egress
		// invalidates all p-rules toward hosts (§4.1).
		rule.Down.ForEach(func(port int) {
			out = append(out, Emission{Port: port, Packet: sw.refHostCopy(p, rest)})
		})
		out = append(out, sw.refUpstreamCopies(p, rest, rule, sw.topo.LeafUpWidth())...)
		sw.Stats().PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		sw.traceHop(p, trace.RulePRule, out)
		return out, nil
	}
	// Downstream: skip any stale earlier sections (a legacy hop pops
	// nothing), then match our own leaf ID if a d-leaf section is
	// present; otherwise consult the group table directly.
	stream, err := streamFrom(sw.layout, p.Elmo, header.TagDLeaf)
	if err != nil {
		return nil, err
	}
	tag, err = header.PeekTag(stream)
	if err != nil {
		return nil, err
	}
	m, _, err := sw.refDownstreamMatch(header.TagDLeaf, uint16(sw.leaf), stream, tag)
	if err != nil {
		return nil, err
	}
	ports, rule, ok := sw.resolve(m, p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	stamped := sw.refStamp(stream, p.Outer.TTL)
	var out []Emission
	ports.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Packet: sw.refHostCopy(p, stamped)})
	})
	sw.traceHop(p, rule, out)
	return out, nil
}

// refProcessSpine handles the upstream turn (u-spine section) and the
// downstream fan-out (d-spine section keyed by pod).
func (sw *NetworkSwitch) refProcessSpine(p Packet) ([]Emission, error) {
	tag, err := header.PeekTag(p.Elmo)
	if err != nil {
		return nil, err
	}
	if tag == header.TagUSpine {
		rule, rest, err := header.ConsumeUpstream(sw.layout, header.TagUSpine, p.Elmo)
		if err != nil {
			return nil, err
		}
		rest = sw.refStamp(rest, p.Outer.TTL)
		var out []Emission
		if !rule.Down.IsEmpty() {
			// Down-copies into our own pod skip ahead to the d-leaf
			// section: the core and d-spine sections are not for them.
			downStream, err := streamFrom(sw.layout, rest, header.TagDLeaf)
			if err != nil {
				return nil, err
			}
			rule.Down.ForEach(func(port int) {
				out = append(out, Emission{Port: port, Packet: Packet{Outer: p.Outer, Elmo: downStream, Inner: p.Inner}})
			})
		}
		out = append(out, sw.refUpstreamCopies(p, rest, rule, sw.topo.SpineUpWidth())...)
		sw.Stats().PRuleHits++
		sw.Counters.hit(trace.RulePRule)
		sw.traceHop(p, trace.RulePRule, out)
		return out, nil
	}
	// Downstream from core: skip stale sections, then match our pod in
	// the d-spine section.
	stream, err := streamFrom(sw.layout, p.Elmo, header.TagDSpine)
	if err != nil {
		return nil, err
	}
	tag, err = header.PeekTag(stream)
	if err != nil {
		return nil, err
	}
	pod := sw.topo.SpinePod(sw.spine)
	m, rest, err := sw.refDownstreamMatch(header.TagDSpine, uint16(pod), stream, tag)
	if err != nil {
		return nil, err
	}
	ports, rule, ok := sw.resolve(m, p.Outer)
	if !ok {
		sw.Stats().Drops[DropNoRule]++
		sw.Counters.drop(DropNoRule)
		sw.traceDrop(p, DropNoRule)
		return nil, nil
	}
	rest = sw.refStamp(rest, p.Outer.TTL)
	var out []Emission
	ports.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Packet: Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}})
	})
	sw.traceHop(p, rule, out)
	return out, nil
}

// refProcessCore forwards one copy to each pod named in the core
// bitmap, popping the core section.
func (sw *NetworkSwitch) refProcessCore(p Packet) ([]Emission, error) {
	pods, rest, err := header.ConsumeCore(sw.layout, p.Elmo)
	if err != nil {
		return nil, err
	}
	rest = sw.refStamp(rest, p.Outer.TTL)
	var out []Emission
	pods.ForEach(func(pod int) {
		out = append(out, Emission{Port: pod, Packet: Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}})
	})
	sw.Stats().PRuleHits++
	sw.Counters.hit(trace.RulePRule)
	sw.traceHop(p, trace.RulePRule, out)
	return out, nil
}

// refUpstreamCopies emits the upward copies of an upstream rule: one
// ECMP-chosen port under multipathing, or every explicit Up port.
func (sw *NetworkSwitch) refUpstreamCopies(p Packet, rest []byte, rule header.UpstreamRule, upWidth int) []Emission {
	var out []Emission
	next := Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}
	if rule.Multipath {
		if port, ok := sw.refPickUpstream(p.Outer, upWidth); ok {
			out = append(out, Emission{Port: port, Up: true, Packet: next})
		}
		return out
	}
	rule.Up.ForEach(func(port int) {
		out = append(out, Emission{Port: port, Up: true, Packet: next})
	})
	return out
}

// refPickUpstream hashes the flow over the alive upstream ports.
func (sw *NetworkSwitch) refPickUpstream(f header.OuterFields, width int) (int, bool) {
	alive := make([]int, 0, width)
	for i := 0; i < width; i++ {
		if sw.UpstreamAlive == nil || sw.UpstreamAlive(i) {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return 0, false
	}
	if sw.UpstreamPicker != nil {
		return sw.UpstreamPicker(f, alive), true
	}
	var salt uint32
	if sw.kind == KindLeaf {
		salt = leafSalt(sw.leaf)
	} else {
		salt = spineSalt(sw.spine)
	}
	return alive[ECMPHash(f, salt)%uint32(len(alive))], true
}

// refDownstreamMatch consumes the section with wantTag if present; when
// the front tag is beyond it (already popped or never encoded), it
// returns an empty match so the caller falls through to the s-rule
// table, leaving the stream untouched for the next tier.
func (sw *NetworkSwitch) refDownstreamMatch(wantTag byte, id uint16, stream []byte, frontTag byte) (header.DownstreamMatch, []byte, error) {
	if frontTag == wantTag {
		return header.ConsumeDownstream(sw.layout, wantTag, id, stream)
	}
	// The section may legitimately be absent (all switches covered by
	// s-rules): the stream then starts at a later valid tag or TagEnd.
	if frontTag == header.TagEnd || (frontTag > wantTag && frontTag <= header.TagDLeaf) {
		return header.DownstreamMatch{}, stream, nil
	}
	return header.DownstreamMatch{}, nil, fmt.Errorf("dataplane: %s switch saw unexpected tag %#x", sw.kind, frontTag)
}

// refHostCopy strips the p-rule sections for host delivery, preserving
// a telemetry section if present. It is the original hostCopy, kept
// scanning unconditionally: the fast-path hostCopy now shortcuts on the
// NoINT hint, and the frozen baseline must not inherit that speedup.
func (sw *NetworkSwitch) refHostCopy(p Packet, stream []byte) Packet {
	rest, err := streamFrom(sw.layout, stream, header.TagINT)
	if err != nil || len(rest) == 0 {
		rest = emptyStream
	}
	return Packet{Outer: p.Outer, Elmo: rest, Inner: p.Inner}
}

// refStamp appends this switch's INT record when the stream carries a
// telemetry section (§7 Monitoring); the remaining TTL serves as the
// per-hop metadata. Streams without an INT section pass through
// untouched and unallocated.
func (sw *NetworkSwitch) refStamp(stream []byte, ttl byte) []byte {
	out, err := header.AppendINTRecord(sw.layout, stream, sw.intRecord(ttl))
	if err != nil {
		return stream
	}
	return out
}
