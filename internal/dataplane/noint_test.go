package dataplane

import (
	"math/rand"
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// TestNoINTProvenance pins the two producers of the NoINT hint: Encap
// (from the group's INTEnabled flag) and Unmarshal (from the framing
// walk). The hint must be true exactly when the stream verifiably
// carries no INT section.
func TestNoINTProvenance(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	hv := NewHypervisor(topo, 3)
	addr := GroupAddr{VNI: 7, Group: 12}

	if err := hv.InstallSenderFlow(addr, &header.Header{}); err != nil {
		t.Fatal(err)
	}
	pkt, err := hv.Encap(addr, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if !pkt.NoINT {
		t.Fatal("Encap with INT disabled did not set NoINT")
	}
	if err := hv.InstallSenderFlow(addr, &header.Header{INTEnabled: true}); err != nil {
		t.Fatal(err)
	}
	pkt, err = hv.Encap(addr, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if pkt.NoINT {
		t.Fatal("Encap with INT enabled claimed NoINT")
	}

	for _, intOn := range []bool{false, true} {
		core := bitmap.FromPorts(l.CoreDown, 1)
		stream, err := header.Encode(l, &header.Header{Core: &core, INTEnabled: intOn})
		if err != nil {
			t.Fatal(err)
		}
		p := Packet{
			Outer: header.OuterFields{DstIP: header.GroupIP(3), ElmoVersion: header.Version, TTL: 9},
			Elmo:  stream,
			Inner: []byte("x"),
		}
		wire, err := p.Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Unmarshal(l, wire)
		if err != nil {
			t.Fatal(err)
		}
		if q.NoINT == intOn {
			t.Fatalf("Unmarshal with INT=%v set NoINT=%v", intOn, q.NoINT)
		}
	}

	// Plain VXLAN has no Elmo stream at all, so no INT either.
	plain := Packet{Outer: header.OuterFields{DstIP: [4]byte{10, 0, 0, 2}, TTL: 4}, Inner: []byte("p")}
	wire, err := plain.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !q.NoINT {
		t.Fatal("plain VXLAN packet did not set NoINT")
	}
}

// TestNoINTHintEmissionIdentical asserts the hint is purely an
// optimization: for randomized INT-free streams, ProcessInto emits
// byte-identical copies whether or not the packet carries the hint
// (hinted emissions skip the stamp/host-copy scans entirely).
func TestNoINTHintEmissionIdentical(t *testing.T) {
	topo := paperTopo()
	l := header.LayoutFor(topo)
	scenarios := []string{"leaf-up", "leaf-down", "spine-up", "spine-down", "core"}
	r := rand.New(rand.NewSource(7))
	var sScan, sHint SwitchScratch

	checked := 0
	for i := 0; checked < 500; i++ {
		scenario := scenarios[r.Intn(len(scenarios))]
		leafID := topology.LeafID(r.Intn(topo.NumLeaves()))
		spineID := topology.SpineID(r.Intn(topo.NumSpines()))
		coreID := topology.CoreID(r.Intn(topo.NumCores()))
		pod := int(topo.SpinePod(spineID))

		stream := randHeader(t, r, topo, l, scenario, leafID, pod)
		if _, hasINT, err := header.StreamInfo(l, stream); err != nil || hasINT {
			continue // the hint only ever accompanies verified INT-free streams
		}

		var sw *NetworkSwitch
		switch scenario {
		case "leaf-up", "leaf-down":
			sw = NewLeaf(topo, leafID, 8)
		case "spine-up", "spine-down":
			sw = NewSpine(topo, spineID, 8)
		case "core":
			sw = NewCore(topo, coreID)
		}
		group, vni := uint32(r.Intn(32)), uint32(r.Intn(8))
		if sw.kind != KindCore && r.Intn(2) == 0 {
			ports := randPorts(r, l.LeafDown)
			if sw.kind == KindSpine {
				ports = randPorts(r, l.SpineDown)
			}
			if err := sw.InstallSRule(GroupAddr{VNI: vni, Group: group}, ports); err != nil {
				t.Fatal(err)
			}
		}

		p := Packet{
			Outer: header.OuterFields{
				SrcIP:   [4]byte{10, 0, 0, byte(r.Intn(256))},
				DstIP:   header.GroupIP(group),
				SrcPort: uint16(49152 + r.Intn(16384)),
				VNI:     vni,
				TTL:     byte(2 + r.Intn(30)),
			},
			Elmo:  stream,
			Inner: []byte("inner"),
		}
		hinted := p
		hinted.NoINT = true

		sScan.Reset()
		sHint.Reset()
		scanEms, scanErr := sw.ProcessInto(p, &sScan)
		hintEms, hintErr := sw.ProcessInto(hinted, &sHint)
		if (scanErr == nil) != (hintErr == nil) {
			t.Fatalf("iter %d (%s): error mismatch scan=%v hint=%v", i, scenario, scanErr, hintErr)
		}
		if !emissionsEqual(scanEms, hintEms) {
			t.Fatalf("iter %d (%s): hinted emissions diverge\nscan: %+v\nhint: %+v",
				i, scenario, scanEms, hintEms)
		}
		checked++
	}
}
