package multidc

import (
	"testing"

	"elmo/internal/controller"
	"elmo/internal/header"
	"elmo/internal/topology"
)

func bridgeFixture(t *testing.T) *Bridge {
	t.Helper()
	cfg := controller.PaperConfig(0)
	east, err := NewDatacenter("east", topology.PaperExample(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A differently-shaped fabric on the west side.
	west, err := NewDatacenter("west", topology.Config{
		Pods: 2, SpinesPerPod: 2, LeavesPerPod: 4, HostsPerLeaf: 6, CoresPerPlane: 2,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBridge(east, west)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGlobalGroupDelivery(t *testing.T) {
	b := bridgeFixture(t)
	key := controller.GroupKey{Tenant: 7, Group: 1}
	members := map[string][]topology.HostID{
		"east": {0, 1, 40},
		"west": {5, 13, 30},
	}
	if err := b.CreateGlobalGroup(key, members); err != nil {
		t.Fatal(err)
	}
	out, err := b.Send("east", 0, key, []byte("global"))
	if err != nil {
		t.Fatal(err)
	}
	// East: local multicast to the 2 other members.
	if d := out["east"]; len(d.Received) != 2 || d.Lost != 0 {
		t.Fatalf("east delivery: %s", d)
	}
	// West: relay (host 5) re-multicast reaches all 3 members (relay
	// counts as receiving its WAN copy).
	if d := out["west"]; len(d.Received) != 3 {
		t.Fatalf("west delivery: %s", d)
	}
	// Exactly one WAN copy for one remote DC.
	if b.WANCopies != 1 {
		t.Fatalf("WAN copies = %d", b.WANCopies)
	}
	if b.WANBytes != header.OuterSize+len("global") {
		t.Fatalf("WAN bytes = %d", b.WANBytes)
	}
}

func TestGlobalGroupWANScalesWithDCsNotMembers(t *testing.T) {
	b := bridgeFixture(t)
	key := controller.GroupKey{Tenant: 7, Group: 2}
	// Many members in the remote DC: still one WAN copy per send.
	members := map[string][]topology.HostID{
		"east": {0},
		"west": {0, 6, 12, 18, 24, 30, 36, 42},
	}
	if err := b.CreateGlobalGroup(key, members); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Send("east", 0, key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if b.WANCopies != 5 {
		t.Fatalf("WAN copies = %d, want one per send", b.WANCopies)
	}
}

func TestGlobalGroupSingleDC(t *testing.T) {
	b := bridgeFixture(t)
	key := controller.GroupKey{Tenant: 7, Group: 3}
	if err := b.CreateGlobalGroup(key, map[string][]topology.HostID{"west": {1, 7}}); err != nil {
		t.Fatal(err)
	}
	out, err := b.Send("west", 1, key, []byte("local-only"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || b.WANCopies != 0 {
		t.Fatalf("out=%d wan=%d", len(out), b.WANCopies)
	}
}

func TestBridgeErrors(t *testing.T) {
	b := bridgeFixture(t)
	key := controller.GroupKey{Tenant: 7, Group: 4}
	if err := b.CreateGlobalGroup(key, map[string][]topology.HostID{"mars": {1}}); err == nil {
		t.Fatal("unknown DC accepted")
	}
	if err := b.CreateGlobalGroup(key, map[string][]topology.HostID{}); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := b.Send("east", 0, key, nil); err == nil {
		t.Fatal("send to missing group accepted")
	}
	if err := b.CreateGlobalGroup(key, map[string][]topology.HostID{"east": {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateGlobalGroup(key, map[string][]topology.HostID{"east": {2}}); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if _, err := b.Send("mars", 0, key, nil); err == nil {
		t.Fatal("send from unknown DC accepted")
	}
	if err := b.RemoveGlobalGroup(key); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveGlobalGroup(key); err == nil {
		t.Fatal("double remove accepted")
	}
	cfgDup, _ := NewDatacenter("dup", topology.PaperExample(), controller.PaperConfig(0))
	cfgDup2, _ := NewDatacenter("dup", topology.PaperExample(), controller.PaperConfig(0))
	if _, err := NewBridge(cfgDup, cfgDup2); err == nil {
		t.Fatal("duplicate DC names accepted")
	}
}
