// Package multidc implements the paper's §7 multi-datacenter
// deployment sketch: "For multi-datacenter multicast groups, the
// source hypervisor switch in Elmo can send a unicast packet to a
// hypervisor in the target datacenter, which will then multicast it
// using the group's p- and s-rules for that datacenter."
//
// Each datacenter runs its own controller and fabric with its own
// topology (fabrics need not match). A global group is the union of
// per-DC groups plus one relay hypervisor per remote DC; a send costs
// exactly one WAN copy per remote member DC, regardless of how many
// members that DC holds.
package multidc

import (
	"fmt"
	"sort"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// Datacenter is one site: a controller/fabric pair under a name.
type Datacenter struct {
	Name string
	Ctrl *controller.Controller
	Fab  *fabric.Fabric
}

// NewDatacenter builds a site.
func NewDatacenter(name string, topoCfg topology.Config, cfg controller.Config) (*Datacenter, error) {
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		return nil, err
	}
	fab := fabric.New(topo, cfg.SRuleCapacity)
	fab.SetFailures(ctrl.Failures())
	return &Datacenter{Name: name, Ctrl: ctrl, Fab: fab}, nil
}

// Bridge federates datacenters for global groups.
type Bridge struct {
	dcs    map[string]*Datacenter
	order  []string
	groups map[controller.GroupKey]*globalGroup

	// WANBytes counts inter-DC bytes (one relay copy per remote DC
	// per send); WANCopies counts the relay packets.
	WANBytes  int
	WANCopies int
}

type globalGroup struct {
	key     controller.GroupKey
	members map[string][]topology.HostID
	relay   map[string]topology.HostID
}

// NewBridge federates the given sites; names must be unique.
func NewBridge(dcs ...*Datacenter) (*Bridge, error) {
	b := &Bridge{dcs: make(map[string]*Datacenter, len(dcs)), groups: make(map[controller.GroupKey]*globalGroup)}
	for _, dc := range dcs {
		if _, dup := b.dcs[dc.Name]; dup {
			return nil, fmt.Errorf("multidc: duplicate datacenter %q", dc.Name)
		}
		b.dcs[dc.Name] = dc
		b.order = append(b.order, dc.Name)
	}
	sort.Strings(b.order)
	return b, nil
}

// CreateGlobalGroup builds the per-DC groups. members maps a DC name
// to its member hosts (all RoleBoth). In every DC with members, the
// lowest member host doubles as the WAN relay: it is also registered
// as a sender so it can re-multicast arriving WAN copies.
func (b *Bridge) CreateGlobalGroup(key controller.GroupKey, members map[string][]topology.HostID) error {
	if _, dup := b.groups[key]; dup {
		return fmt.Errorf("multidc: group %v exists", key)
	}
	g := &globalGroup{key: key, members: make(map[string][]topology.HostID), relay: make(map[string]topology.HostID)}
	for name, hosts := range members {
		dc, ok := b.dcs[name]
		if !ok {
			return fmt.Errorf("multidc: unknown datacenter %q", name)
		}
		if len(hosts) == 0 {
			continue
		}
		sorted := append([]topology.HostID(nil), hosts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m := make(map[topology.HostID]controller.Role, len(sorted))
		for _, h := range sorted {
			m[h] = controller.RoleBoth
		}
		if _, err := dc.Ctrl.CreateGroup(key, m); err != nil {
			return err
		}
		if _, err := dc.Fab.InstallGroup(dc.Ctrl, key); err != nil {
			return err
		}
		g.members[name] = sorted
		g.relay[name] = sorted[0]
	}
	if len(g.members) == 0 {
		return fmt.Errorf("multidc: group %v has no members anywhere", key)
	}
	b.groups[key] = g
	return nil
}

// Send multicasts from a sender in the named DC to the global group:
// native multicast locally, one WAN unicast to each remote DC's relay,
// and native multicast from each relay. It returns per-DC deliveries.
func (b *Bridge) Send(fromDC string, sender topology.HostID, key controller.GroupKey, inner []byte) (map[string]*fabric.Delivery, error) {
	g, ok := b.groups[key]
	if !ok {
		return nil, fmt.Errorf("multidc: group %v not found", key)
	}
	src, ok := b.dcs[fromDC]
	if !ok {
		return nil, fmt.Errorf("multidc: unknown datacenter %q", fromDC)
	}
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	out := make(map[string]*fabric.Delivery, len(g.members))
	if _, local := g.members[fromDC]; local {
		d, err := src.Fab.Send(sender, addr, inner)
		if err != nil {
			return nil, err
		}
		out[fromDC] = d
	}
	for _, name := range b.order {
		if name == fromDC {
			continue
		}
		hosts, ok := g.members[name]
		if !ok {
			continue
		}
		dc := b.dcs[name]
		relay := g.relay[name]
		// One WAN copy: outer + inner (the Elmo header is per-DC and
		// re-attached by the relay's hypervisor).
		b.WANBytes += header.OuterSize + len(inner)
		b.WANCopies++
		d, err := dc.Fab.Send(relay, addr, inner)
		if err != nil {
			return nil, err
		}
		// The relay consumes the WAN copy locally too: it is a member.
		d.Received[relay] = inner
		out[name] = d
		_ = hosts
	}
	return out, nil
}

// Members returns the group's per-DC membership (for assertions).
func (b *Bridge) Members(key controller.GroupKey) map[string][]topology.HostID {
	g, ok := b.groups[key]
	if !ok {
		return nil
	}
	return g.members
}

// RemoveGlobalGroup tears the group down everywhere.
func (b *Bridge) RemoveGlobalGroup(key controller.GroupKey) error {
	g, ok := b.groups[key]
	if !ok {
		return fmt.Errorf("multidc: group %v not found", key)
	}
	for name := range g.members {
		dc := b.dcs[name]
		if err := dc.Fab.UninstallGroup(dc.Ctrl, key); err != nil {
			return err
		}
		if err := dc.Ctrl.RemoveGroup(key); err != nil {
			return err
		}
	}
	delete(b.groups, key)
	return nil
}
