package livefabric

import (
	"strings"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// TestTracePathOverLiveFabric records one multicast send on the
// concurrent fabric and checks the flight recorder captured the full
// multi-hop path — every switch traversed with its rule kind — while
// the switch goroutines were recording in parallel.
func TestTracePathOverLiveFabric(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.Config{
		MaxHeaderBytes: 325, SpineRuleLimit: 2, LeafRuleLimit: 30,
		KMaxSpine: 2, KMaxLeaf: 2, SRuleCapacity: 16,
	}
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	lf := New(base, DefaultConfig())

	rec := trace.New(trace.Config{})
	rec.Enable(trace.CatHop, trace.CatHost, trace.CatFabric)
	lf.SetTracer(rec)

	key := controller.GroupKey{Tenant: 1, Group: 1}
	hosts := []topology.HostID{0, 1, 40, 48, 49, 63}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	if _, err := lf.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	lf.Start()
	defer lf.Stop()

	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	if err := lf.Send(0, addr, []byte("traced live")); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts[1:] {
		select {
		case <-lf.HostRx(h):
		case <-time.After(5 * time.Second):
			t.Fatalf("host %d: no delivery", h)
		}
	}
	if err := lf.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Hop order across branches is scheduler-dependent, but the set of
	// switches is the same deterministic multicast tree the synchronous
	// fabric builds (ECMP is a pure flow hash).
	rendered := trace.RenderPath(rec.Snapshot(), uint32(key.Tenant), uint32(key.Group))
	for _, want := range []string{
		"group vni=1 g=1: host 0",
		"leaf 0 [p-rule ports=01000000 up=10",
		"spine 0 [p-rule up=01",
		"core 1 [p-rule ports=0011",
		"spine 6 [s-rule ports=11",
		"leaf 5 [p-rule ports=10000000",
		"leaf 6 [p-rule ports=11000000",
		"leaf 7 [p-rule ports=00000001",
		"host 40 ✓", "host 48 ✓", "host 49 ✓", "host 63 ✓",
	} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered path missing %q:\n%s", want, rendered)
		}
	}
	var delivers int
	for _, ev := range rec.Snapshot() {
		if ev.Kind == trace.KindDeliver {
			delivers++
		}
	}
	if delivers != len(hosts)-1 {
		t.Fatalf("want %d delivery events, got %d", len(hosts)-1, delivers)
	}
}
