// Package livefabric runs the emulated Elmo fabric as a concurrent
// system: every leaf, spine, and core switch is a goroutine consuming
// fully marshaled wire frames from its ingress channel, running the
// dataplane pipeline (parse → match → replicate → pop), and writing the
// resulting frames to its neighbors' channels. Hosts receive decoded
// frames on per-host channels.
//
// Where package fabric forwards synchronously for deterministic
// measurement, livefabric exercises the same switch pipelines under
// real concurrency and real (de)serialization per hop — the form the
// example applications (market data feeds, chat) run on.
package livefabric

import (
	"fmt"
	"sync"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/header"
	"elmo/internal/topology"
	"elmo/internal/trace"
)

// HostPacket is one frame delivered to a host's VMs.
type HostPacket struct {
	Addr      dataplane.GroupAddr
	Inner     []byte
	Telemetry []header.INTRecord
}

// Config tunes the live fabric.
type Config struct {
	// QueueDepth is each switch ingress queue's capacity. Queues full
	// enough to block model congestion; frames are never dropped.
	QueueDepth int
	// HostQueueDepth is each host RX channel's capacity; overflow
	// drops the frame (receiver too slow), counted in Stats.
	HostQueueDepth int
}

// DefaultConfig returns sensible emulation defaults.
func DefaultConfig() Config { return Config{QueueDepth: 4096, HostQueueDepth: 4096} }

// LiveFabric wraps a fabric's switches with goroutines and channels.
type LiveFabric struct {
	topo   *topology.Topology
	layout header.Layout
	base   *fabric.Fabric
	cfg    Config

	leafIn  []chan []byte
	spineIn []chan []byte
	coreIn  []chan []byte
	hostRx  []chan HostPacket

	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
	tracer   trace.Recorder
	injector dataplane.FaultInjector
	metrics  *Metrics

	mu sync.Mutex
	// HostDrops counts frames dropped at full host queues.
	HostDrops int
	// Malformed counts frames a switch failed to parse.
	Malformed int
}

// New wraps an existing (already configured) fabric. Group state must
// be installed through the base fabric before Start; the live fabric
// only moves packets.
func New(base *fabric.Fabric, cfg Config) *LiveFabric {
	topo := base.Topology()
	lf := &LiveFabric{
		topo:   topo,
		layout: header.LayoutFor(topo),
		base:   base,
		cfg:    cfg,
		stop:   make(chan struct{}),
	}
	lf.leafIn = makeChans(topo.NumLeaves(), cfg.QueueDepth)
	lf.spineIn = makeChans(topo.NumSpines(), cfg.QueueDepth)
	lf.coreIn = makeChans(topo.NumCores(), cfg.QueueDepth)
	lf.hostRx = make([]chan HostPacket, topo.NumHosts())
	for i := range lf.hostRx {
		lf.hostRx[i] = make(chan HostPacket, cfg.HostQueueDepth)
	}
	return lf
}

func makeChans(n, depth int) []chan []byte {
	chs := make([]chan []byte, n)
	for i := range chs {
		chs[i] = make(chan []byte, depth)
	}
	return chs
}

// Base returns the wrapped fabric (for group installation).
func (lf *LiveFabric) Base() *fabric.Fabric { return lf.base }

// SetTracer attaches a flight recorder to the underlying switches and
// hypervisors and to the live fabric's own transport events (host
// queue overflows, malformed frames). Call before Start.
func (lf *LiveFabric) SetTracer(r trace.Recorder) {
	lf.tracer = r
	lf.base.SetTracer(r)
}

// SetInjector attaches a fault injector to every link crossing (and to
// the base fabric). Call before Start. Delay verdicts are interpreted
// as milliseconds here; an inactive injector costs one nil check plus
// one atomic load per crossing.
func (lf *LiveFabric) SetInjector(inj dataplane.FaultInjector) {
	lf.injector = inj
	lf.base.SetInjector(inj)
}

// HostRx returns the delivery channel for a host.
func (lf *LiveFabric) HostRx(h topology.HostID) <-chan HostPacket { return lf.hostRx[h] }

// Start launches one goroutine per switch.
func (lf *LiveFabric) Start() {
	if lf.started {
		return
	}
	lf.started = true
	for i := range lf.leafIn {
		lf.wg.Add(1)
		go lf.runLeaf(topology.LeafID(i))
	}
	for i := range lf.spineIn {
		lf.wg.Add(1)
		go lf.runSpine(topology.SpineID(i))
	}
	for i := range lf.coreIn {
		lf.wg.Add(1)
		go lf.runCore(topology.CoreID(i))
	}
}

// Stop terminates the switch goroutines. In-flight frames may be lost;
// call Drain first for a clean shutdown.
func (lf *LiveFabric) Stop() {
	if !lf.started {
		return
	}
	close(lf.stop)
	lf.wg.Wait()
	lf.started = false
}

// Drain waits until all switch ingress queues are empty (quiescence),
// up to the timeout. It does not guarantee host channels were read.
func (lf *LiveFabric) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if lf.queuesEmpty() {
			// Double-check after a settle period: a frame may be
			// between queues (popped but not yet re-enqueued).
			time.Sleep(2 * time.Millisecond)
			if lf.queuesEmpty() {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livefabric: drain timeout")
		}
		time.Sleep(time.Millisecond)
	}
}

func (lf *LiveFabric) queuesEmpty() bool {
	for _, ch := range lf.leafIn {
		if len(ch) > 0 {
			return false
		}
	}
	for _, ch := range lf.spineIn {
		if len(ch) > 0 {
			return false
		}
	}
	for _, ch := range lf.coreIn {
		if len(ch) > 0 {
			return false
		}
	}
	return true
}

// Send encapsulates at the sender's hypervisor and injects the frame
// at its leaf. It returns immediately; deliveries arrive on HostRx
// channels.
func (lf *LiveFabric) Send(sender topology.HostID, addr dataplane.GroupAddr, inner []byte) error {
	pkt, err := lf.base.Hypervisors[sender].Encap(addr, inner)
	if err != nil {
		return err
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		return err
	}
	leaf := lf.topo.HostLeaf(sender)
	if dataplane.FaultsOn(lf.injector) {
		l := dataplane.Link{
			FromTier: dataplane.LinkHost, From: int32(sender),
			ToTier: dataplane.LinkLeaf, To: int32(leaf),
		}
		lf.admitWire(l, addr.VNI, addr.Group, lf.leafIn[leaf], wire)
		return nil
	}
	select {
	case lf.leafIn[leaf] <- wire:
		return nil
	case <-lf.stop:
		return fmt.Errorf("livefabric: stopped")
	}
}

func (lf *LiveFabric) runLeaf(id topology.LeafID) {
	defer lf.wg.Done()
	sw := lf.base.Leaves[id]
	var sc dataplane.SwitchScratch
	for {
		select {
		case <-lf.stop:
			return
		case wire := <-lf.leafIn[id]:
			ems, ok := lf.process(sw, wire, &sc)
			if !ok {
				continue
			}
			for _, em := range ems {
				if em.Up {
					spine := lf.topo.LeafUpstream(id, em.Port)
					lf.forwardWire(dataplane.Link{
						FromTier: dataplane.LinkLeaf, From: int32(id),
						ToTier: dataplane.LinkSpine, To: int32(spine),
					}, lf.spineIn[spine], em.Packet)
				} else {
					lf.deliverHost(id, lf.topo.HostAt(id, em.Port), em.Packet)
				}
			}
		}
	}
}

func (lf *LiveFabric) runSpine(id topology.SpineID) {
	defer lf.wg.Done()
	sw := lf.base.Spines[id]
	var sc dataplane.SwitchScratch
	for {
		select {
		case <-lf.stop:
			return
		case wire := <-lf.spineIn[id]:
			ems, ok := lf.process(sw, wire, &sc)
			if !ok {
				continue
			}
			for _, em := range ems {
				if em.Up {
					core := lf.topo.SpineUpstream(id, em.Port)
					lf.forwardWire(dataplane.Link{
						FromTier: dataplane.LinkSpine, From: int32(id),
						ToTier: dataplane.LinkCore, To: int32(core),
					}, lf.coreIn[core], em.Packet)
				} else {
					leaf := lf.topo.SpineDownstream(id, em.Port)
					lf.forwardWire(dataplane.Link{
						FromTier: dataplane.LinkSpine, From: int32(id),
						ToTier: dataplane.LinkLeaf, To: int32(leaf),
					}, lf.leafIn[leaf], em.Packet)
				}
			}
		}
	}
}

func (lf *LiveFabric) runCore(id topology.CoreID) {
	defer lf.wg.Done()
	sw := lf.base.Cores[id]
	var sc dataplane.SwitchScratch
	for {
		select {
		case <-lf.stop:
			return
		case wire := <-lf.coreIn[id]:
			ems, ok := lf.process(sw, wire, &sc)
			if !ok {
				continue
			}
			for _, em := range ems {
				spine := lf.topo.CoreDownstream(id, topology.PodID(em.Port))
				lf.forwardWire(dataplane.Link{
					FromTier: dataplane.LinkCore, From: int32(id),
					ToTier: dataplane.LinkSpine, To: int32(spine),
				}, lf.spineIn[spine], em.Packet)
			}
		}
	}
}

// process unmarshals and runs the switch pipeline through the
// goroutine's scratch, counting malformed frames. The scratch is reset
// per frame: every emission is fully consumed (re-marshaled onward or
// delivered to a host) before the goroutine picks up its next frame,
// so no arena bytes outlive the call.
func (lf *LiveFabric) process(sw *dataplane.NetworkSwitch, wire []byte, sc *dataplane.SwitchScratch) ([]dataplane.Emission, bool) {
	pkt, err := dataplane.Unmarshal(lf.layout, wire)
	if err != nil {
		lf.countMalformed()
		return nil, false
	}
	sc.Reset()
	ems, err := sw.ProcessInto(pkt, sc)
	if err != nil {
		lf.countMalformed()
		return nil, false
	}
	return ems, true
}

// forwardWire marshals and enqueues a frame, blocking on a full queue
// (congestion) unless the fabric stops. With an active injector the
// link crossing may drop, duplicate, corrupt, or delay the frame.
func (lf *LiveFabric) forwardWire(l dataplane.Link, ch chan []byte, pkt dataplane.Packet) {
	wire, err := pkt.Marshal(nil)
	if err != nil {
		lf.countMalformed()
		return
	}
	if dataplane.FaultsOn(lf.injector) {
		a, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
		lf.admitWire(l, a.VNI, a.Group, ch, wire)
		return
	}
	select {
	case ch <- wire:
	case <-lf.stop:
	}
}

// admitWire applies the injector verdict to a marshaled frame and
// enqueues the surviving copies; the frame is owned by this call.
func (lf *LiveFabric) admitWire(l dataplane.Link, vni, group uint32, ch chan []byte, wire []byte) {
	v := lf.injector.Cross(l, vni, group)
	if v.Drop {
		return
	}
	if v.Corrupt {
		lf.injector.CorruptWire(wire)
	}
	if v.Duplicate {
		dup := append([]byte(nil), wire...)
		lf.enqueue(ch, dup, 0)
	}
	lf.enqueue(ch, wire, v.DelaySteps)
}

// enqueue writes a frame to a switch queue, after delayMS milliseconds
// when positive (injected delay/reordering).
func (lf *LiveFabric) enqueue(ch chan []byte, wire []byte, delayMS int32) {
	if delayMS > 0 {
		lf.wg.Add(1)
		go func() {
			defer lf.wg.Done()
			select {
			case <-time.After(time.Duration(delayMS) * time.Millisecond):
			case <-lf.stop:
				return
			}
			select {
			case ch <- wire:
			case <-lf.stop:
			}
		}()
		return
	}
	select {
	case ch <- wire:
	case <-lf.stop:
	}
}

func (lf *LiveFabric) deliverHost(from topology.LeafID, h topology.HostID, pkt dataplane.Packet) {
	if dataplane.FaultsOn(lf.injector) {
		a, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
		v := lf.injector.Cross(dataplane.Link{
			FromTier: dataplane.LinkLeaf, From: int32(from),
			ToTier: dataplane.LinkHost, To: int32(h),
		}, a.VNI, a.Group)
		// The last hop applies loss and duplication only: the frame is
		// already decoded, and host-queue latency dominates any injected
		// delay at this point.
		if v.Drop {
			return
		}
		if v.Duplicate {
			lf.deliverHostDirect(h, pkt)
		}
	}
	lf.deliverHostDirect(h, pkt)
}

func (lf *LiveFabric) deliverHostDirect(h topology.HostID, pkt dataplane.Packet) {
	inner, tel, ok := lf.base.Hypervisors[h].DeliverFull(pkt)
	if !ok {
		return
	}
	addr, _ := dataplane.GroupAddrFromOuter(pkt.Outer)
	hp := HostPacket{Addr: addr, Inner: inner, Telemetry: tel}
	select {
	case lf.hostRx[h] <- hp:
	default:
		lf.mu.Lock()
		lf.HostDrops++
		lf.mu.Unlock()
		lf.metrics.onHostDrop()
		if trace.On(lf.tracer, trace.CatFabric) {
			lf.tracer.Record(trace.Event{
				Cat: trace.CatFabric, Kind: trace.KindHostDrop, Tier: trace.TierHost,
				Switch: int32(h), VNI: addr.VNI, Group: addr.Group,
			})
		}
	}
}

func (lf *LiveFabric) countMalformed() {
	lf.mu.Lock()
	lf.Malformed++
	lf.mu.Unlock()
	lf.metrics.onMalformed()
	if trace.On(lf.tracer, trace.CatFabric) {
		lf.tracer.Record(trace.Event{Cat: trace.CatFabric, Kind: trace.KindMalformed})
	}
}

// EnableCongestionAwareMultipath replaces flow-hash ECMP with a
// CONGA/HULA-style least-loaded picker: each switch steers multipathed
// packets to the upstream port whose next-hop ingress queue is
// shortest (ties broken by flow hash so steady state stays spread).
// Call before Start.
func (lf *LiveFabric) EnableCongestionAwareMultipath() {
	cfg := lf.topo.Config()
	for i, sw := range lf.base.Leaves {
		leaf := topology.LeafID(i)
		sw.UpstreamPicker = func(f header.OuterFields, alive []int) int {
			return lf.leastLoaded(alive, f, func(port int) int {
				return len(lf.spineIn[lf.topo.LeafUpstream(leaf, port)])
			})
		}
	}
	for i, sw := range lf.base.Spines {
		plane := lf.topo.SpinePlane(topology.SpineID(i))
		sw.UpstreamPicker = func(f header.OuterFields, alive []int) int {
			return lf.leastLoaded(alive, f, func(port int) int {
				return len(lf.coreIn[plane*cfg.CoresPerPlane+port])
			})
		}
	}
}

// leastLoaded returns the alive port with the smallest queue estimate,
// breaking ties with the flow hash.
func (lf *LiveFabric) leastLoaded(alive []int, f header.OuterFields, depth func(port int) int) int {
	best := alive[0]
	bestDepth := depth(best)
	for _, p := range alive[1:] {
		if d := depth(p); d < bestDepth {
			best, bestDepth = p, d
		}
	}
	// Tie-break across equally-empty queues by hashing the flow.
	ties := make([]int, 0, len(alive))
	for _, p := range alive {
		if depth(p) == bestDepth {
			ties = append(ties, p)
		}
	}
	if len(ties) > 1 {
		return ties[dataplane.ECMPHash(f, 0x10ad)%uint32(len(ties))]
	}
	return best
}

// InstallGroup is a convenience proxy to the base fabric. Call before
// Start, or after Drain while senders are quiet — switch goroutines
// read the same group tables.
func (lf *LiveFabric) InstallGroup(ctrl *controller.Controller, key controller.GroupKey) ([]topology.HostID, error) {
	return lf.base.InstallGroup(ctrl, key)
}
