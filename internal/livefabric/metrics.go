package livefabric

import (
	"elmo/internal/fabric"
	"elmo/internal/telemetry"
)

// Metrics is the live fabric's telemetry bundle: channel-transport
// counters plus the wrapped fabric/dataplane set. Handles are interned
// at construction; attach with SetMetrics before Start.
type Metrics struct {
	Fabric *fabric.Metrics

	hostDrops *telemetry.Counter
	malformed *telemetry.Counter
}

// NewMetrics registers the livefabric metric families in reg (and the
// fabric/dataplane families underneath).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Fabric: fabric.NewMetrics(reg),
		hostDrops: reg.Counter("elmo_live_host_queue_drops_total",
			"Frames discarded at full host delivery channels."),
		malformed: reg.Counter("elmo_live_malformed_total",
			"Undecodable frames discarded by switch goroutines."),
	}
}

func (m *Metrics) onHostDrop() {
	if m != nil {
		m.hostDrops.Inc()
	}
}

func (m *Metrics) onMalformed() {
	if m != nil {
		m.malformed.Inc()
	}
}

// SetMetrics attaches telemetry to the live fabric's transport and the
// wrapped fabric's switches and hypervisors. Call before Start; nil
// detaches.
func (lf *LiveFabric) SetMetrics(m *Metrics) {
	lf.metrics = m
	if m != nil {
		lf.base.SetMetrics(m.Fabric)
	} else {
		lf.base.SetMetrics(nil)
	}
}
