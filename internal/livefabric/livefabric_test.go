package livefabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

func liveFixture(t *testing.T, enableINT bool) (*LiveFabric, *controller.Controller, controller.GroupKey, []topology.HostID) {
	t.Helper()
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	cfg.EnableINT = enableINT
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 11, Group: 1}
	hosts := []topology.HostID{0, 1, 40, 48, 49, 63}
	members := make(map[topology.HostID]controller.Role)
	for _, h := range hosts {
		members[h] = controller.RoleBoth
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	lf := New(base, DefaultConfig())
	if _, err := lf.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	return lf, ctrl, key, hosts
}

// collect drains a host channel until want frames arrive or timeout.
func collect(t *testing.T, lf *LiveFabric, h topology.HostID, want int, timeout time.Duration) []HostPacket {
	t.Helper()
	var got []HostPacket
	deadline := time.After(timeout)
	for len(got) < want {
		select {
		case p := <-lf.HostRx(h):
			got = append(got, p)
		case <-deadline:
			t.Fatalf("host %d: got %d of %d frames before timeout", h, len(got), want)
		}
	}
	return got
}

func TestLiveDelivery(t *testing.T) {
	lf, _, key, hosts := liveFixture(t, false)
	lf.Start()
	defer lf.Stop()
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}

	const n = 50
	for i := 0; i < n; i++ {
		if err := lf.Send(0, addr, []byte(fmt.Sprintf("tick %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts[1:] {
		got := collect(t, lf, h, n, 5*time.Second)
		seen := make(map[string]bool)
		for _, p := range got {
			if p.Addr != addr {
				t.Fatalf("host %d: wrong group %+v", h, p.Addr)
			}
			seen[string(p.Inner)] = true
		}
		if len(seen) != n {
			t.Fatalf("host %d: %d distinct messages, want %d", h, len(seen), n)
		}
	}
	if err := lf.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if lf.Malformed != 0 || lf.HostDrops != 0 {
		t.Fatalf("malformed=%d drops=%d", lf.Malformed, lf.HostDrops)
	}
}

func TestLiveConcurrentSenders(t *testing.T) {
	lf, _, key, hosts := liveFixture(t, false)
	lf.Start()
	defer lf.Stop()
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}

	const perSender = 20
	errs := make(chan error, len(hosts))
	for _, sender := range hosts {
		go func(s topology.HostID) {
			for i := 0; i < perSender; i++ {
				if err := lf.Send(s, addr, []byte(fmt.Sprintf("%d/%d", s, i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(sender)
	}
	for range hosts {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every member receives perSender messages from each OTHER member.
	want := perSender * (len(hosts) - 1)
	for _, h := range hosts {
		got := collect(t, lf, h, want, 10*time.Second)
		if len(got) != want {
			t.Fatalf("host %d: %d of %d", h, len(got), want)
		}
	}
}

func TestLiveINTTelemetry(t *testing.T) {
	lf, _, key, _ := liveFixture(t, true)
	lf.Start()
	defer lf.Stop()
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	if err := lf.Send(0, addr, []byte("traced")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, lf, 63, 1, 5*time.Second)
	if len(got[0].Telemetry) == 0 {
		t.Fatal("no telemetry on delivered frame")
	}
	// Host 63 is cross-pod from sender 0: expect >= 3 hops recorded.
	if len(got[0].Telemetry) < 3 {
		t.Fatalf("telemetry = %+v", got[0].Telemetry)
	}
}

func TestLiveStopIsIdempotent(t *testing.T) {
	lf, _, _, _ := liveFixture(t, false)
	lf.Start()
	lf.Start() // no-op
	lf.Stop()
	lf.Stop() // no-op
}

func TestLiveSendUnknownGroupFails(t *testing.T) {
	lf, _, _, _ := liveFixture(t, false)
	lf.Start()
	defer lf.Stop()
	err := lf.Send(0, dataplane.GroupAddr{VNI: 99, Group: 99}, []byte("x"))
	if err == nil {
		t.Fatal("send without flow accepted")
	}
}

func TestLiveDrainTimesOutWhenStopped(t *testing.T) {
	lf, _, _, _ := liveFixture(t, false)
	// Not started: queues are empty, drain returns immediately.
	if err := lf.Drain(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestLiveBaseAccessor(t *testing.T) {
	lf, _, _, _ := liveFixture(t, false)
	if lf.Base() == nil || lf.Base().Topology() == nil {
		t.Fatal("base accessor broken")
	}
}

func TestCongestionAwareMultipathDelivers(t *testing.T) {
	lf, _, key, hosts := liveFixture(t, false)
	lf.EnableCongestionAwareMultipath()
	lf.Start()
	defer lf.Stop()
	addr := dataplane.GroupAddr{VNI: key.Tenant, Group: key.Group}
	const n = 30
	for i := 0; i < n; i++ {
		if err := lf.Send(0, addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range hosts[1:] {
		got := collect(t, lf, h, n, 5*time.Second)
		if len(got) != n {
			t.Fatalf("host %d: %d of %d", h, len(got), n)
		}
	}
}

// BenchmarkLivePipeline measures end-to-end throughput of the
// goroutine fabric: one sender, Fig. 3-style group, real wire
// marshal/parse at every hop.
func BenchmarkLivePipeline(b *testing.B) {
	topo := topology.MustNew(topology.PaperExample())
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	base := fabric.New(topo, cfg.SRuleCapacity)
	base.SetFailures(ctrl.Failures())
	key := controller.GroupKey{Tenant: 1, Group: 1}
	hosts := []topology.HostID{0, 1, 40, 48, 49, 63}
	members := make(map[topology.HostID]controller.Role)
	members[0] = controller.RoleSender
	for _, h := range hosts[1:] {
		members[h] = controller.RoleReceiver
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		b.Fatal(err)
	}
	lf := New(base, DefaultConfig())
	if _, err := lf.InstallGroup(ctrl, key); err != nil {
		b.Fatal(err)
	}
	lf.Start()
	defer lf.Stop()
	addr := dataplane.GroupAddr{VNI: 1, Group: 1}
	payload := make([]byte, 100)

	// Drain receivers concurrently so queues never fill.
	done := make(chan struct{})
	var received int64
	var wg sync.WaitGroup
	for _, h := range hosts[1:] {
		wg.Add(1)
		go func(h topology.HostID) {
			defer wg.Done()
			for {
				select {
				case <-lf.HostRx(h):
					atomic.AddInt64(&received, 1)
				case <-done:
					return
				}
			}
		}(h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lf.Send(0, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := lf.Drain(30 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	close(done)
	wg.Wait()
	b.ReportMetric(float64(atomic.LoadInt64(&received))/float64(b.N), "deliveries/msg")
}
