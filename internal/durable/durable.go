// Package durable adds crash durability and replicated failover to the
// Elmo controller. The controller's own state is soft in the paper's
// sense (recomputable from membership), but a provider restarting a
// controller for 1M groups cannot afford to lose the membership map or
// re-learn it from hypervisors — so the control plane logs every
// state-mutating op to a write-ahead log before applying it, compacts
// the log with periodic full-state snapshots, and streams the same log
// through the RSM multicast layer so warm followers can take over when
// the leader dies.
//
// Invariants:
//   - WAL order == apply order (both happen under one mutex), so
//     replaying the log against a fresh controller reproduces the
//     crashed instance exactly.
//   - Durability is prefix-closed: a record is durable only if all
//     records before it are (single flusher commits in order).
//   - A snapshot at LSN n plus the log after n is equivalent to the
//     full log; TruncateThrough(n) is safe the moment the snapshot
//     file is atomically in place.
package durable

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"elmo/internal/controller"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
	"elmo/internal/wal"
)

const (
	snapshotFile    = "snapshot.bin"
	snapshotMagic   = "ELMOSNAP"
	snapshotVersion = 2
	// envelope: magic(8) | version(2) | lsn(8) | epoch(8) | payloadLen(8) | sha256(32)
	envelopeBytes = 8 + 2 + 8 + 8 + 8 + 32
)

// Leadership errors. Every mutating entry point fails fast with an
// error satisfying errors.Is(err, ErrNotLeader) once the controller
// has lost (or given up) leadership, so callers can redirect to the
// new leader with bounded backoff instead of blocking.
var (
	// ErrNotLeader is the base class: this controller no longer accepts
	// mutations.
	ErrNotLeader = errors.New("durable: not leader (read-only)")
	// ErrLeaseExpired means the leader self-demoted: it failed to
	// observe any follower ack within its lease budget and can no
	// longer rule out that a partition has elected a successor.
	ErrLeaseExpired = fmt.Errorf("durable: leader lease expired: %w", ErrNotLeader)
	// ErrDeposed means the leader observed a higher epoch — a successor
	// was promoted — and stepped down immediately.
	ErrDeposed = fmt.Errorf("durable: deposed by a higher epoch: %w", ErrNotLeader)
)

// Lease ties the leader's right to mutate to observed follower
// progress, in the same deterministic currency as the failure
// Detector: heartbeat rounds. Each Heartbeat that streams a record but
// observes zero follower acks burns one unit of budget; any ack
// refills it. When the budget is gone the leader cannot rule out that
// a partition has separated it from a quorum of followers (who may by
// now have promoted a successor), so it self-demotes to read-only
// rather than keep writing on the losing side of a split brain.
type Lease struct {
	// MissBudget is the number of consecutive heartbeat rounds with
	// zero follower acks tolerated before self-demotion. <= 0 disables
	// the lease.
	MissBudget int
}

// Options configures a DurableController.
type Options struct {
	// Dir is the durability root; the WAL lives in Dir/wal and the
	// snapshot in Dir/snapshot.bin.
	Dir string
	// SegmentBytes overrides the WAL segment size (0 = default).
	SegmentBytes int
	// NoSync skips fsync (tests and benchmarks that measure CPU cost).
	NoSync bool
	// BatchWorkers is the worker count for replayed InstallBatch calls
	// (<=0 = GOMAXPROCS).
	BatchWorkers int
	// Registry, when set, registers WAL telemetry.
	Registry *telemetry.Registry
	// Replicate, when set, receives every logged payload in LSN order
	// after it is applied locally (still under the op mutex, so stream
	// order == log order), stamped with the leader's epoch. Used to
	// feed warm followers via the RSM layer.
	Replicate func(lsn, epoch uint64, payload []byte) error
	// Epoch overrides the starting leadership epoch. The effective
	// epoch is the maximum of this, the snapshot's epoch, the WAL
	// tail's epoch, and 1 — a durable controller always runs fenced.
	Epoch uint64
	// Lease, when enabled, self-demotes the leader after
	// Lease.MissBudget heartbeat rounds without a follower ack.
	Lease Lease
	// FollowerAcks reports (acked, total) follower counts for the
	// lease: how many followers have applied everything streamed so
	// far. Typically ReplicaSet.FollowerAcks.
	FollowerAcks func() (acked, total int)
}

// RecoveryStats reports what Open did to rebuild state.
type RecoveryStats struct {
	// SnapshotLSN is the LSN the loaded snapshot covered (0 = none).
	SnapshotLSN uint64
	// SnapshotBytes is the snapshot payload size.
	SnapshotBytes int64
	// SnapshotElapsed is the time spent restoring the snapshot.
	SnapshotElapsed time.Duration
	// Replayed counts WAL records applied after the snapshot.
	Replayed int
	// DroppedTail counts trailing records of an incomplete batch that
	// were discarded (the batch was never acked, so dropping is
	// correct).
	DroppedTail int
	// ReplayElapsed is the time spent replaying the log.
	ReplayElapsed time.Duration
	// LastLSN is the highest LSN recovered.
	LastLSN uint64
	// Groups is the group count after recovery.
	Groups int
	// Epoch is the leadership epoch the controller runs at.
	Epoch uint64
}

// DurableController wraps a controller with write-ahead logging,
// snapshot/restore, and an optional replication tap.
type DurableController struct {
	mu      sync.Mutex
	ctrl    *controller.Controller
	log     *wal.Log
	opts    Options
	walMet  *wal.Metrics
	snapLSN uint64
	closed  bool
	// epoch is the leadership term every WAL frame, streamed record,
	// and data-plane install is stamped with. Immutable after Open.
	epoch uint64
	// notLeader latches the demotion reason (ErrLeaseExpired or
	// ErrDeposed); once set, every mutating op fails fast with it.
	// Demotion is one-way: a demoted leader rejoins as a Follower.
	notLeader   error
	leaseMisses int
	// snapMu serializes the whole snapshot path (state write + rename +
	// log truncation): two racing snapshots could otherwise rename an
	// older state over a newer one while the newer LSN drives
	// truncation, deleting segments the surviving snapshot needs.
	snapMu sync.Mutex
	// replErr latches the first replication failure; the leader keeps
	// serving (followers are warm spares, not a quorum), but the stall
	// is an alarm: replSkipped counts every record followers missed,
	// Heartbeat returns the latched error so the probe machinery sees
	// it, and ReplicationErr exposes it directly.
	replErr     error
	replSkipped *telemetry.Counter
}

// Open recovers (or initializes) a durable controller in opts.Dir:
// load the snapshot if present, replay the log after it, then open the
// WAL for appending.
func Open(topo *topology.Topology, cfg controller.Config, opts Options) (*DurableController, *RecoveryStats, error) {
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		return nil, nil, err
	}
	walDir := filepath.Join(opts.Dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, err
	}
	stats := &RecoveryStats{}

	// 1. Snapshot.
	from := uint64(1)
	epoch := opts.Epoch
	payload, snapLSN, snapEpoch, err := readSnapshotFile(filepath.Join(opts.Dir, snapshotFile))
	switch {
	case err == nil:
		start := time.Now()
		if err := ctrl.ReadState(bytes.NewReader(payload)); err != nil {
			return nil, nil, fmt.Errorf("durable: snapshot state: %w", err)
		}
		stats.SnapshotLSN = snapLSN
		stats.SnapshotBytes = int64(len(payload))
		stats.SnapshotElapsed = time.Since(start)
		from = snapLSN + 1
		if snapEpoch > epoch {
			epoch = snapEpoch
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh start (or log-only recovery).
	default:
		return nil, nil, err
	}

	// 2. Replay the log after the snapshot.
	start := time.Now()
	var asm batchAssembler
	var pendingFirst uint64
	last, err := wal.Replay(walDir, from, func(rec wal.Record) error {
		op, err := DecodeRecord(rec.Data)
		if err != nil {
			return fmt.Errorf("lsn %d: %w", rec.LSN, err)
		}
		if op.Type != RecBatch && asm.pending() {
			return fmt.Errorf("lsn %d: %s interleaved with batch chunks", rec.LSN, recName(op.Type))
		}
		switch op.Type {
		case RecCreate:
			_, _ = ctrl.CreateGroup(op.Key, op.Members)
		case RecJoin:
			_ = ctrl.Join(op.Key, op.Host, op.Role)
		case RecLeave:
			_ = ctrl.Leave(op.Key, op.Host, op.Role)
		case RecRemove:
			_ = ctrl.RemoveGroup(op.Key)
		case RecBatch:
			if !asm.pending() {
				pendingFirst = rec.LSN
			}
			if err := asm.add(op); err != nil {
				return fmt.Errorf("lsn %d: %w", rec.LSN, err)
			}
			if !op.More {
				_, _ = ctrl.InstallBatch(asm.specs, controller.BatchOptions{Workers: opts.BatchWorkers})
				asm.reset()
			}
		case RecHeartbeat:
			// Liveness only; no state.
		}
		stats.Replayed++
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("durable: replay: %w", err)
	}
	if asm.pending() {
		// The log ends inside a chunked batch: the final chunk never
		// became durable, so the batch was never acked nor (on the
		// crashed instance's durable prefix) applied. Dropping it
		// logically is not enough — the surviving chunks are durable
		// frames, and a later recovery would replay them into an error
		// or merge them into an unrelated batch — so truncate them off
		// the log before reopening it for append.
		stats.Replayed -= asm.recs
		stats.DroppedTail = asm.recs
		if err := wal.TruncateFrom(walDir, pendingFirst); err != nil {
			return nil, nil, fmt.Errorf("durable: dropping batch tail: %w", err)
		}
		last = pendingFirst - 1
	}
	stats.ReplayElapsed = time.Since(start)
	stats.LastLSN = last
	stats.Groups = ctrl.NumGroups()

	// 3. Open the WAL for appending (truncates any torn tail).
	var met *wal.Metrics
	var replSkipped *telemetry.Counter
	if opts.Registry != nil {
		met = wal.NewMetrics(opts.Registry)
		replSkipped = opts.Registry.Counter("elmo_durable_repl_skipped_total",
			"Records not replicated because the replication stream stalled (followers are stale until resynced).")
	}
	if epoch == 0 {
		epoch = 1 // a durable controller always runs fenced
	}
	log, err := wal.Open(wal.Options{
		Dir:          walDir,
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Metrics:      met,
		Epoch:        epoch,
	})
	if err != nil {
		return nil, nil, err
	}
	// The WAL tail may carry a higher epoch than the snapshot or the
	// caller asked for; the log's resolved epoch is authoritative.
	stats.Epoch = log.Epoch()
	d := &DurableController{ctrl: ctrl, log: log, opts: opts, walMet: met,
		snapLSN: stats.SnapshotLSN, epoch: log.Epoch(), replSkipped: replSkipped}
	return d, stats, nil
}

// Controller exposes the wrapped controller for reads (headers,
// counts, fingerprints). Mutations MUST go through the durable
// wrappers or they will be lost on restart.
func (d *DurableController) Controller() *controller.Controller { return d.ctrl }

// WALMetrics returns the WAL telemetry bundle (nil without a Registry).
func (d *DurableController) WALMetrics() *wal.Metrics { return d.walMet }

// LastLSN reports the highest assigned LSN.
func (d *DurableController) LastLSN() uint64 { return d.log.LastLSN() }

// ReplicationErr reports the first replication failure, if any.
func (d *DurableController) ReplicationErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replErr
}

// Epoch reports the leadership term this controller stamps on every
// WAL frame, streamed record, and data-plane install.
func (d *DurableController) Epoch() uint64 { return d.epoch }

// NotLeaderErr reports why this controller is read-only (nil while it
// still holds leadership).
func (d *DurableController) NotLeaderErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.notLeader
}

// LeaseMisses reports the consecutive heartbeat rounds without a
// follower ack (0 when the lease is healthy or disabled).
func (d *DurableController) LeaseMisses() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.leaseMisses
}

// ObserveEpoch tells the controller another leadership term exists. A
// higher epoch — learned from a fencing rejection, a follower, or the
// replication stream — deposes this leader immediately: the successor
// was promoted from replicated state, so continuing to mutate here
// would fork history. Returns the (possibly just-latched) demotion
// error, nil if still leading.
func (d *DurableController) ObserveEpoch(epoch uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if epoch > d.epoch && d.notLeader == nil {
		d.notLeader = fmt.Errorf("durable: saw epoch %d above own %d: %w", epoch, d.epoch, ErrDeposed)
	}
	return d.notLeader
}

// ResyncState serializes the controller's full state together with its
// epoch — the seed a deposed leader ships to NewFollowerFromState so
// it can rejoin a successor's replica set as a warm standby.
func (d *DurableController) ResyncState() (epoch uint64, state []byte, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var buf bytes.Buffer
	if err := d.ctrl.WriteState(&buf); err != nil {
		return 0, nil, err
	}
	return d.epoch, buf.Bytes(), nil
}

// mutate is the log-before-apply spine: append the record, apply the
// op, and stream to followers — all under d.mu so WAL order, apply
// order, and stream order coincide — then wait for durability OUTSIDE
// the lock, which lets concurrent ops share one fsync (group commit).
func (d *DurableController) mutate(payload []byte, apply func() error) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("durable: controller closed")
	}
	if d.notLeader != nil {
		err := d.notLeader
		d.mu.Unlock()
		return err
	}
	ack, err := d.log.Append(payload[0], payload)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	applyErr := apply()
	d.streamLocked(ack.LSN(), payload)
	d.mu.Unlock()
	if err := ack.Wait(); err != nil {
		return fmt.Errorf("durable: commit lsn %d: %w", ack.LSN(), err)
	}
	return applyErr
}

func (d *DurableController) streamLocked(lsn uint64, payload []byte) {
	if d.opts.Replicate == nil {
		return
	}
	if d.replErr != nil {
		if d.replSkipped != nil {
			d.replSkipped.Inc()
		}
		return
	}
	if err := d.opts.Replicate(lsn, d.epoch, payload); err != nil {
		d.replErr = fmt.Errorf("durable: replication stalled at lsn %d: %w", lsn, err)
		if d.replSkipped != nil {
			d.replSkipped.Inc()
		}
	}
}

// CreateGroup durably creates a group. A membership too large to fit
// one streamable record is logged through the chunked batch path
// instead (InstallBatch replay is byte-identical to CreateGroup), so
// no single create can exceed the replication layer's record size
// limit.
func (d *DurableController) CreateGroup(key controller.GroupKey, members map[topology.HostID]controller.Role) error {
	payload := EncodeCreate(key, members)
	if len(payload) <= maxChunkBytes {
		return d.mutate(payload, func() error {
			_, err := d.ctrl.CreateGroup(key, members)
			return err
		})
	}
	chunks := EncodeBatchChunks([]controller.BatchSpec{{Key: key, Members: members}})
	_, err := d.mutateChunks(chunks, func() (*controller.BatchResult, error) {
		_, err := d.ctrl.CreateGroup(key, members)
		return nil, err
	})
	return err
}

// Join durably adds (or upgrades) a member.
func (d *DurableController) Join(key controller.GroupKey, host topology.HostID, role controller.Role) error {
	return d.mutate(EncodeMembership(RecJoin, key, host, role), func() error {
		return d.ctrl.Join(key, host, role)
	})
}

// Leave durably removes a member role.
func (d *DurableController) Leave(key controller.GroupKey, host topology.HostID, role controller.Role) error {
	return d.mutate(EncodeMembership(RecLeave, key, host, role), func() error {
		return d.ctrl.Leave(key, host, role)
	})
}

// RemoveGroup durably deletes a group.
func (d *DurableController) RemoveGroup(key controller.GroupKey) error {
	return d.mutate(EncodeRemove(key), func() error {
		return d.ctrl.RemoveGroup(key)
	})
}

// InstallBatch durably bulk-creates groups. The specs are chunked
// across WAL records; the op is applied (and acked) only after every
// chunk is enqueued, and replay drops a trailing incomplete batch, so
// a crash mid-batch can never surface a half-applied batch.
func (d *DurableController) InstallBatch(specs []controller.BatchSpec, opts controller.BatchOptions) (*controller.BatchResult, error) {
	return d.mutateChunks(EncodeBatchChunks(specs), func() (*controller.BatchResult, error) {
		return d.ctrl.InstallBatch(specs, opts)
	})
}

// mutateChunks is the chunked variant of mutate: append every chunk,
// apply, stream, all under d.mu; wait only on the last chunk's ack.
func (d *DurableController) mutateChunks(chunks [][]byte, apply func() (*controller.BatchResult, error)) (*controller.BatchResult, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("durable: controller closed")
	}
	if d.notLeader != nil {
		err := d.notLeader
		d.mu.Unlock()
		return nil, err
	}
	acks := make([]*wal.Ack, 0, len(chunks))
	for _, c := range chunks {
		ack, err := d.log.Append(RecBatch, c)
		if err != nil {
			d.mu.Unlock()
			return nil, err
		}
		acks = append(acks, ack)
	}
	res, applyErr := apply()
	for i, c := range chunks {
		d.streamLocked(acks[i].LSN(), c)
	}
	d.mu.Unlock()
	// Durability is prefix-closed, so the last chunk's ack covers all.
	if err := acks[len(acks)-1].Wait(); err != nil {
		return nil, fmt.Errorf("durable: commit batch: %w", err)
	}
	return res, applyErr
}

// Heartbeat appends a liveness record (no state change) so followers
// see a moving stream even when the control plane is idle. A latched
// replication failure is returned here — the heartbeat is the probe
// path, so a stalled stream surfaces as an unhealthy leader instead
// of a silent follower divergence. With a Lease configured, each
// heartbeat round also audits follower acks: MissBudget consecutive
// rounds without one and the leader self-demotes (ErrLeaseExpired) —
// on the losing side of a partition this fires in the same round
// currency as the followers' Detector, bounding the split-brain
// window to the lease budget.
func (d *DurableController) Heartbeat() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("durable: controller closed")
	}
	if d.notLeader != nil {
		err := d.notLeader
		d.mu.Unlock()
		return err
	}
	ack, err := d.log.Append(RecHeartbeat, EncodeHeartbeat(d.log.LastLSN()))
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.streamLocked(ack.LSN(), EncodeHeartbeat(ack.LSN()-1))
	replErr := d.replErr
	d.mu.Unlock()
	if err := ack.Wait(); err != nil {
		return err
	}
	if err := d.auditLease(); err != nil {
		return err
	}
	return replErr
}

// auditLease burns or refills the lease budget based on follower acks
// observed this round, self-demoting when the budget runs out.
func (d *DurableController) auditLease() error {
	if d.opts.Lease.MissBudget <= 0 || d.opts.FollowerAcks == nil {
		return nil
	}
	acked, _ := d.opts.FollowerAcks()
	d.mu.Lock()
	defer d.mu.Unlock()
	if acked > 0 {
		d.leaseMisses = 0
		return nil
	}
	d.leaseMisses++
	if d.leaseMisses >= d.opts.Lease.MissBudget && d.notLeader == nil {
		d.notLeader = fmt.Errorf("durable: no follower ack for %d heartbeat rounds: %w",
			d.leaseMisses, ErrLeaseExpired)
	}
	return d.notLeader
}

// Snapshot writes the full controller state to an atomically-replaced
// snapshot file and truncates WAL segments wholly covered by it.
// Returns the LSN the snapshot covers. Concurrent Snapshot calls are
// serialized end to end (snapMu), so the file on disk always covers
// the highest LSN any truncation was driven by.
func (d *DurableController) Snapshot() (uint64, error) {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	// Quiesce mutations so the state matches an exact LSN boundary.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, fmt.Errorf("durable: controller closed")
	}
	if err := d.log.Sync(); err != nil {
		d.mu.Unlock()
		return 0, err
	}
	lsn := d.log.LastLSN()
	var buf bytes.Buffer
	err := d.ctrl.WriteState(&buf)
	d.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := writeSnapshotFile(filepath.Join(d.opts.Dir, snapshotFile), lsn, d.epoch, buf.Bytes(), d.opts.NoSync); err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.snapLSN = lsn
	d.mu.Unlock()
	if _, err := d.log.TruncateThrough(lsn); err != nil {
		return lsn, err
	}
	return lsn, nil
}

// SnapshotLSN reports the LSN covered by the latest snapshot.
func (d *DurableController) SnapshotLSN() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapLSN
}

// Close flushes and closes the WAL.
func (d *DurableController) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	return d.log.Close()
}

func recName(t byte) string {
	switch t {
	case RecCreate:
		return "create"
	case RecJoin:
		return "join"
	case RecLeave:
		return "leave"
	case RecRemove:
		return "remove"
	case RecBatch:
		return "batch"
	case RecHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("type%d", t)
}

// writeSnapshotFile writes envelope+payload to a temp file and renames
// it into place, so a crash mid-write leaves the previous snapshot
// intact.
func writeSnapshotFile(path string, lsn, epoch uint64, payload []byte, noSync bool) error {
	var hdr [envelopeBytes]byte
	copy(hdr[:8], snapshotMagic)
	hdr[8] = 0
	hdr[9] = snapshotVersion
	putU64(hdr[10:], lsn)
	putU64(hdr[18:], epoch)
	putU64(hdr[26:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[34:], sum[:])

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if !noSync {
		if dir, err := os.Open(filepath.Dir(path)); err == nil {
			_ = dir.Sync()
			dir.Close()
		}
	}
	return nil
}

// readSnapshotFile validates the envelope and returns the payload, the
// covered LSN, and the writing leader's epoch. A missing file returns
// os.ErrNotExist; any corruption (bad magic, version, length, or
// checksum) is an explicit error — never a silent partial restore.
func readSnapshotFile(path string) ([]byte, uint64, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(b) < envelopeBytes {
		return nil, 0, 0, fmt.Errorf("durable: snapshot %s: short envelope (%d bytes)", path, len(b))
	}
	if string(b[:8]) != snapshotMagic {
		return nil, 0, 0, fmt.Errorf("durable: snapshot %s: bad magic", path)
	}
	ver := int(b[8])<<8 | int(b[9])
	if ver != snapshotVersion {
		return nil, 0, 0, fmt.Errorf("durable: snapshot %s: version %d, want %d", path, ver, snapshotVersion)
	}
	lsn := getU64(b[10:])
	epoch := getU64(b[18:])
	plen := getU64(b[26:])
	payload := b[envelopeBytes:]
	if uint64(len(payload)) != plen {
		return nil, 0, 0, fmt.Errorf("durable: snapshot %s: payload %d bytes, envelope says %d", path, len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], b[34:34+32]) {
		return nil, 0, 0, fmt.Errorf("durable: snapshot %s: checksum mismatch", path)
	}
	return payload, lsn, epoch, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
