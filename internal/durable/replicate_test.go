package durable

import (
	"math/rand"
	"testing"

	"elmo/internal/chaos"
	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

type replicaFixture struct {
	dc  *DurableController
	rs  *ReplicaSet
	inj *chaos.Injector
}

const (
	replLeader    = topology.HostID(0)
	replFollowerA = topology.HostID(8)
	replFollowerB = topology.HostID(17)
)

func newReplicaFixture(t *testing.T, dir string) *replicaFixture {
	t.Helper()
	topo := durableTopo()
	netCfg := controller.PaperConfig(0)
	netCtrl, err := controller.New(topo, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, netCfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: 1})
	fab.SetInjector(inj)

	rs, err := NewReplicaSet(ReplicaSetConfig{
		Net:          Net(netCtrl, fab),
		Key:          controller.GroupKey{Tenant: 200, Group: 1},
		Leader:       replLeader,
		Followers:    []topology.HostID{replFollowerA, replFollowerB},
		Window:       64,
		Topo:         topo,
		Cfg:          durableCfg(),
		BatchWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc, _, err := Open(topo, durableCfg(), Options{
		Dir:          dir,
		NoSync:       true,
		BatchWorkers: 1,
		Replicate:    rs.Replicator(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &replicaFixture{dc: dc, rs: rs, inj: inj}
}

func TestReplicaSetMirrorsLeader(t *testing.T) {
	fx := newReplicaFixture(t, t.TempDir())
	defer fx.dc.Close()
	rng := rand.New(rand.NewSource(5))
	for _, o := range churnScript(rng, 150, durableTopo().NumHosts()) {
		o.applyDurable(fx.dc)
	}
	if err := fx.rs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fx.dc.ReplicationErr(); err != nil {
		t.Fatalf("replication error: %v", err)
	}
	want := fx.dc.Controller().Fingerprint()
	for _, h := range []topology.HostID{replFollowerA, replFollowerB} {
		f := fx.rs.Follower(h)
		if f.Records() == 0 {
			t.Fatalf("follower %d saw no records", h)
		}
		if got := f.Controller().Fingerprint(); got != want {
			t.Fatalf("follower %d fingerprint %s != leader %s", h, got, want)
		}
	}
}

// TestFailoverUnderChaos crashes the leader host with the chaos
// injector and walks the full failover sequence: heartbeats stop
// arriving, the detector declares the leader dead after DeadAfter
// silent probe rounds, and a warm follower promotes into a new durable
// controller whose state matches the leader's last replicated state.
func TestFailoverUnderChaos(t *testing.T) {
	fx := newReplicaFixture(t, t.TempDir())
	defer fx.dc.Close()
	rng := rand.New(rand.NewSource(9))
	for _, o := range churnScript(rng, 100, durableTopo().NumHosts()) {
		o.applyDurable(fx.dc)
	}
	if err := fx.rs.Sync(); err != nil {
		t.Fatal(err)
	}
	preCrash := fx.dc.Controller().Fingerprint()

	// Heartbeats flow while the leader is alive: no false positive.
	det := &Detector{DeadAfter: 3}
	follower := fx.rs.Follower(replFollowerA)
	for i := 0; i < 5; i++ {
		if err := fx.dc.Heartbeat(); err != nil {
			t.Fatal(err)
		}
		if det.Observe(follower.Records()) {
			t.Fatal("live leader declared dead")
		}
	}

	// Kill the leader's host. Its local WAL keeps working, but nothing
	// reaches the followers any more.
	fx.inj.CrashHost(replLeader)
	if !fx.inj.HostDown(replLeader) {
		t.Fatal("CrashHost did not register")
	}
	_ = fx.dc.Heartbeat() // lost in the fabric

	rounds := 0
	for !det.Observe(follower.Records()) {
		rounds++
		if rounds > 10 {
			t.Fatal("dead leader never detected")
		}
	}
	if rounds < det.DeadAfter-1 {
		t.Fatalf("declared dead after %d rounds, budget %d", rounds, det.DeadAfter)
	}

	// Promote the warm standby.
	promoted, stats, err := Promote(follower, Options{Dir: t.TempDir(), NoSync: true, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if got := promoted.Controller().Fingerprint(); got != preCrash {
		t.Fatalf("promoted fingerprint %s != leader pre-crash %s", got, preCrash)
	}
	if stats.Groups != fx.dc.Controller().NumGroups() {
		t.Fatalf("promoted %d groups, leader had %d", stats.Groups, fx.dc.Controller().NumGroups())
	}

	// The promoted controller accepts new durable ops immediately.
	if err := promoted.CreateGroup(controller.GroupKey{Tenant: 77, Group: 1},
		map[topology.HostID]controller.Role{1: controller.RoleBoth, 40: controller.RoleReceiver}); err != nil {
		t.Fatal(err)
	}

	// And the host coming back does not resurrect the old overrides.
	fx.inj.RestoreHost(replLeader)
	if fx.inj.HostDown(replLeader) {
		t.Fatal("RestoreHost did not clear the crash")
	}
}
