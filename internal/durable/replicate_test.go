package durable

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"elmo/internal/chaos"
	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/topology"
)

type replicaFixture struct {
	dc  *DurableController
	rs  *ReplicaSet
	inj *chaos.Injector
}

const (
	replLeader    = topology.HostID(0)
	replFollowerA = topology.HostID(8)
	replFollowerB = topology.HostID(17)
)

func newReplicaFixture(t *testing.T, dir string) *replicaFixture {
	t.Helper()
	topo := durableTopo()
	netCfg := controller.PaperConfig(0)
	netCtrl, err := controller.New(topo, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, netCfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: 1})
	fab.SetInjector(inj)

	rs, err := NewReplicaSet(ReplicaSetConfig{
		Net:          Net(netCtrl, fab),
		Key:          controller.GroupKey{Tenant: 200, Group: 1},
		Leader:       replLeader,
		Followers:    []topology.HostID{replFollowerA, replFollowerB},
		Window:       64,
		Topo:         topo,
		Cfg:          durableCfg(),
		BatchWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc, _, err := Open(topo, durableCfg(), Options{
		Dir:          dir,
		NoSync:       true,
		BatchWorkers: 1,
		Replicate:    rs.Replicator(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &replicaFixture{dc: dc, rs: rs, inj: inj}
}

func TestReplicaSetMirrorsLeader(t *testing.T) {
	fx := newReplicaFixture(t, t.TempDir())
	defer fx.dc.Close()
	rng := rand.New(rand.NewSource(5))
	for _, o := range churnScript(rng, 150, durableTopo().NumHosts()) {
		o.applyDurable(fx.dc)
	}
	if err := fx.rs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fx.dc.ReplicationErr(); err != nil {
		t.Fatalf("replication error: %v", err)
	}
	want := fx.dc.Controller().Fingerprint()
	for _, h := range []topology.HostID{replFollowerA, replFollowerB} {
		f := fx.rs.Follower(h)
		if f.Records() == 0 {
			t.Fatalf("follower %d saw no records", h)
		}
		if got := f.Controller().Fingerprint(); got != want {
			t.Fatalf("follower %d fingerprint %s != leader %s", h, got, want)
		}
	}
}

// TestFailoverUnderChaos crashes the leader host with the chaos
// injector and walks the full failover sequence: heartbeats stop
// arriving, the detector declares the leader dead after DeadAfter
// silent probe rounds, and a warm follower promotes into a new durable
// controller whose state matches the leader's last replicated state.
func TestFailoverUnderChaos(t *testing.T) {
	fx := newReplicaFixture(t, t.TempDir())
	defer fx.dc.Close()
	rng := rand.New(rand.NewSource(9))
	for _, o := range churnScript(rng, 100, durableTopo().NumHosts()) {
		o.applyDurable(fx.dc)
	}
	if err := fx.rs.Sync(); err != nil {
		t.Fatal(err)
	}
	preCrash := fx.dc.Controller().Fingerprint()

	// Heartbeats flow while the leader is alive: no false positive.
	det := &Detector{DeadAfter: 3}
	follower := fx.rs.Follower(replFollowerA)
	for i := 0; i < 5; i++ {
		if err := fx.dc.Heartbeat(); err != nil {
			t.Fatal(err)
		}
		if det.Observe(follower.Records()) {
			t.Fatal("live leader declared dead")
		}
	}

	// Kill the leader's host. Its local WAL keeps working, but nothing
	// reaches the followers any more.
	fx.inj.CrashHost(replLeader)
	if !fx.inj.HostDown(replLeader) {
		t.Fatal("CrashHost did not register")
	}
	_ = fx.dc.Heartbeat() // lost in the fabric

	rounds := 0
	for !det.Observe(follower.Records()) {
		rounds++
		if rounds > 10 {
			t.Fatal("dead leader never detected")
		}
	}
	if rounds < det.DeadAfter-1 {
		t.Fatalf("declared dead after %d rounds, budget %d", rounds, det.DeadAfter)
	}

	// Promote the warm standby.
	promoted, stats, err := Promote(follower, Options{Dir: t.TempDir(), NoSync: true, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if got := promoted.Controller().Fingerprint(); got != preCrash {
		t.Fatalf("promoted fingerprint %s != leader pre-crash %s", got, preCrash)
	}
	if stats.Groups != fx.dc.Controller().NumGroups() {
		t.Fatalf("promoted %d groups, leader had %d", stats.Groups, fx.dc.Controller().NumGroups())
	}

	// The promoted controller accepts new durable ops immediately.
	if err := promoted.CreateGroup(controller.GroupKey{Tenant: 77, Group: 1},
		map[topology.HostID]controller.Role{1: controller.RoleBoth, 40: controller.RoleReceiver}); err != nil {
		t.Fatal(err)
	}

	// And the host coming back does not resurrect the old overrides.
	fx.inj.RestoreHost(replLeader)
	if fx.inj.HostDown(replLeader) {
		t.Fatal("RestoreHost did not clear the crash")
	}
}

// TestPromoteRefusesDirtyDir: promoting into a directory that already
// holds a WAL (e.g. reusing the dead leader's) would replay stale
// records from LSN 1 on top of the standby snapshot. Promote must
// refuse rather than assume a fresh epoch.
func TestPromoteRefusesDirtyDir(t *testing.T) {
	dir := t.TempDir()
	d1, _ := openTest(t, dir)
	if err := d1.CreateGroup(controller.GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]controller.Role{0: controller.RoleBoth, 8: controller.RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := NewFollower(durableTopo(), durableCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Promote(f, Options{Dir: dir, NoSync: true}); err == nil {
		t.Fatal("promote into a directory with an existing WAL accepted")
	}

	// A snapshot alone (no WAL) is also a stale epoch: refuse.
	snapOnly := t.TempDir()
	d2, _ := openTest(t, snapOnly)
	if err := d2.CreateGroup(controller.GroupKey{Tenant: 1, Group: 2},
		map[topology.HostID]controller.Role{0: controller.RoleBoth, 8: controller.RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(snapOnly, "wal")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Promote(f, Options{Dir: snapOnly, NoSync: true}); err == nil {
		t.Fatal("promote over an existing snapshot accepted")
	}

	// A genuinely fresh directory still works.
	promoted, _, err := Promote(f, Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	promoted.Close()
}

// TestReplicateOversizedCreate is the regression for the record-size
// divergence: one CreateGroup whose membership encodes past the rsm
// command limit used to fail ProposeApply, silently latch the stream
// off, and leave followers permanently stale. It must now be chunked,
// replicate cleanly, and recover to the same fingerprint after a
// crash.
func TestReplicateOversizedCreate(t *testing.T) {
	bigTopo := topology.MustNew(topology.TwoTierLeafSpine(4, 96, 256)) // 24576 hosts
	bigCfg := controller.PaperConfig(0)

	netTopo := durableTopo()
	netCtrl, err := controller.New(netTopo, controller.PaperConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(netTopo, controller.PaperConfig(0).SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	rs, err := NewReplicaSet(ReplicaSetConfig{
		Net:          Net(netCtrl, fab),
		Key:          controller.GroupKey{Tenant: 200, Group: 2},
		Leader:       replLeader,
		Followers:    []topology.HostID{replFollowerA},
		Window:       64,
		Topo:         bigTopo,
		Cfg:          bigCfg,
		BatchWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dc, _, err := Open(bigTopo, bigCfg, Options{Dir: dir, NoSync: true, BatchWorkers: 1, Replicate: rs.Replicator()})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	members := make(map[topology.HostID]controller.Role, bigTopo.NumHosts())
	members[0] = controller.RoleBoth
	for h := 1; h < bigTopo.NumHosts(); h++ {
		members[topology.HostID(h)] = controller.RoleReceiver
	}
	if n := len(EncodeCreate(controller.GroupKey{Tenant: 1, Group: 1}, members)); n <= maxChunkBytes {
		t.Fatalf("test membership encodes to %d bytes; not oversized", n)
	}
	if err := dc.CreateGroup(controller.GroupKey{Tenant: 1, Group: 1}, members); err != nil {
		t.Fatal(err)
	}
	// A normal op after the big one: the stream must still be alive.
	if err := dc.Join(controller.GroupKey{Tenant: 1, Group: 1}, 0, controller.RoleBoth); err != nil {
		t.Fatal(err)
	}
	if err := rs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := dc.ReplicationErr(); err != nil {
		t.Fatalf("replication stalled: %v", err)
	}
	if err := dc.Heartbeat(); err != nil {
		t.Fatalf("heartbeat reports unhealthy leader: %v", err)
	}
	want := dc.Controller().Fingerprint()
	if got := rs.Follower(replFollowerA).Controller().Fingerprint(); got != want {
		t.Fatalf("follower fingerprint %s != leader %s", got, want)
	}

	// And the WAL round-trips the chunked create on recovery.
	d2, _, err := Open(bigTopo, bigCfg, Options{Dir: dir, NoSync: true, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Controller().Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %s != %s", got, want)
	}
}
