package durable

import (
	"bytes"
	"reflect"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/topology"
)

func TestRecordRoundTrip(t *testing.T) {
	key := controller.GroupKey{Tenant: 7, Group: 42}
	members := map[topology.HostID]controller.Role{
		0: controller.RoleBoth, 17: controller.RoleReceiver, 63: controller.RoleSender,
	}

	cases := []struct {
		name string
		b    []byte
		want OpRecord
	}{
		{"create", EncodeCreate(key, members),
			OpRecord{Type: RecCreate, Key: key, Members: members}},
		{"join", EncodeMembership(RecJoin, key, 5, controller.RoleReceiver),
			OpRecord{Type: RecJoin, Key: key, Host: 5, Role: controller.RoleReceiver}},
		{"leave", EncodeMembership(RecLeave, key, 5, controller.RoleBoth),
			OpRecord{Type: RecLeave, Key: key, Host: 5, Role: controller.RoleBoth}},
		{"remove", EncodeRemove(key),
			OpRecord{Type: RecRemove, Key: key}},
	}
	for _, tc := range cases {
		got, err := DecodeRecord(tc.b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s: %+v != %+v", tc.name, got, tc.want)
		}
	}

	hb := EncodeHeartbeat(12345)
	got, err := DecodeRecord(hb)
	if err != nil || got.Type != RecHeartbeat {
		t.Fatalf("heartbeat: %+v, %v", got, err)
	}
}

func TestBatchChunking(t *testing.T) {
	n := batchChunkSpecs*2 + 10
	specs := make([]controller.BatchSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, controller.BatchSpec{
			Key: controller.GroupKey{Tenant: 1, Group: uint32(i + 1)},
			Members: map[topology.HostID]controller.Role{
				topology.HostID(i % 64): controller.RoleBoth,
			},
		})
	}
	chunks := EncodeBatchChunks(specs)
	if len(chunks) != 3 {
		t.Fatalf("%d chunks for %d specs", len(chunks), len(specs))
	}
	var joined []controller.BatchSpec
	for i, c := range chunks {
		rec, err := DecodeRecord(c)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		wantMore := i < len(chunks)-1
		if rec.More != wantMore {
			t.Fatalf("chunk %d more=%v, want %v", i, rec.More, wantMore)
		}
		joined = append(joined, rec.Specs...)
	}
	if !reflect.DeepEqual(joined, specs) {
		t.Fatal("reassembled specs differ")
	}

	// Empty batch still encodes one terminal chunk.
	chunks = EncodeBatchChunks(nil)
	if len(chunks) != 1 {
		t.Fatalf("empty batch encoded as %d chunks", len(chunks))
	}
	rec, err := DecodeRecord(chunks[0])
	if err != nil || rec.More || len(rec.Specs) != 0 {
		t.Fatalf("empty chunk decoded as %+v, %v", rec, err)
	}
}

func TestDecodeRecordRejectsCorruptInput(t *testing.T) {
	valid := EncodeCreate(controller.GroupKey{Tenant: 1, Group: 2},
		map[topology.HostID]controller.Role{3: controller.RoleBoth})
	bad := map[string][]byte{
		"empty":        {},
		"unknown type": {0x7f, 0, 0, 0},
		"truncated":    valid[:len(valid)-1],
		"trailing":     append(append([]byte{}, valid...), 0xcc),
		"huge count":   {RecCreate, 0, 0, 0, 1, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"bad more":     {RecBatch, 7, 0},
	}
	for name, b := range bad {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Single-byte mutations never panic.
	for off := 0; off < len(valid); off++ {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		_, _ = DecodeRecord(mut)
	}
}
