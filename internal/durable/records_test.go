package durable

import (
	"bytes"
	"reflect"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/rsm"
	"elmo/internal/topology"
)

func TestRecordRoundTrip(t *testing.T) {
	key := controller.GroupKey{Tenant: 7, Group: 42}
	members := map[topology.HostID]controller.Role{
		0: controller.RoleBoth, 17: controller.RoleReceiver, 63: controller.RoleSender,
	}

	cases := []struct {
		name string
		b    []byte
		want OpRecord
	}{
		{"create", EncodeCreate(key, members),
			OpRecord{Type: RecCreate, Key: key, Members: members}},
		{"join", EncodeMembership(RecJoin, key, 5, controller.RoleReceiver),
			OpRecord{Type: RecJoin, Key: key, Host: 5, Role: controller.RoleReceiver}},
		{"leave", EncodeMembership(RecLeave, key, 5, controller.RoleBoth),
			OpRecord{Type: RecLeave, Key: key, Host: 5, Role: controller.RoleBoth}},
		{"remove", EncodeRemove(key),
			OpRecord{Type: RecRemove, Key: key}},
	}
	for _, tc := range cases {
		got, err := DecodeRecord(tc.b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s: %+v != %+v", tc.name, got, tc.want)
		}
	}

	hb := EncodeHeartbeat(12345)
	got, err := DecodeRecord(hb)
	if err != nil || got.Type != RecHeartbeat {
		t.Fatalf("heartbeat: %+v, %v", got, err)
	}
}

func TestBatchChunking(t *testing.T) {
	n := batchChunkSpecs*2 + 10
	specs := make([]controller.BatchSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, controller.BatchSpec{
			Key: controller.GroupKey{Tenant: 1, Group: uint32(i + 1)},
			Members: map[topology.HostID]controller.Role{
				topology.HostID(i % 64): controller.RoleBoth,
			},
		})
	}
	chunks := EncodeBatchChunks(specs)
	if len(chunks) != 3 {
		t.Fatalf("%d chunks for %d specs", len(chunks), len(specs))
	}
	var joined []controller.BatchSpec
	for i, c := range chunks {
		rec, err := DecodeRecord(c)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		wantMore := i < len(chunks)-1
		if rec.More != wantMore {
			t.Fatalf("chunk %d more=%v, want %v", i, rec.More, wantMore)
		}
		joined = append(joined, rec.Specs...)
	}
	if !reflect.DeepEqual(joined, specs) {
		t.Fatal("reassembled specs differ")
	}

	// Empty batch still encodes one terminal chunk.
	chunks = EncodeBatchChunks(nil)
	if len(chunks) != 1 {
		t.Fatalf("empty batch encoded as %d chunks", len(chunks))
	}
	rec, err := DecodeRecord(chunks[0])
	if err != nil || rec.More || len(rec.Specs) != 0 {
		t.Fatalf("empty chunk decoded as %+v, %v", rec, err)
	}
}

func TestDecodeRecordRejectsCorruptInput(t *testing.T) {
	valid := EncodeCreate(controller.GroupKey{Tenant: 1, Group: 2},
		map[topology.HostID]controller.Role{3: controller.RoleBoth})
	bad := map[string][]byte{
		"empty":        {},
		"unknown type": {0x7f, 0, 0, 0},
		"truncated":    valid[:len(valid)-1],
		"trailing":     append(append([]byte{}, valid...), 0xcc),
		"huge count":   {RecCreate, 0, 0, 0, 1, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"bad more":     {RecBatch, 7, 0},
	}
	for name, b := range bad {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Single-byte mutations never panic.
	for off := 0; off < len(valid); off++ {
		mut := bytes.Clone(valid)
		mut[off] ^= 0xff
		_, _ = DecodeRecord(mut)
	}
}

// TestBatchChunkingByteBound drives memberships large enough that the
// spec-count cap alone would overflow the replication layer's record
// size limit: every chunk must stay streamable as an rsm command, and
// a single spec larger than one chunk must split across continuation
// chunks and reassemble to the exact original membership.
func TestBatchChunkingByteBound(t *testing.T) {
	bigMembers := func(n, base int) map[topology.HostID]controller.Role {
		m := make(map[topology.HostID]controller.Role, n)
		for i := 0; i < n; i++ {
			m[topology.HostID(base+i)] = controller.Role(1 + i%3)
		}
		return m
	}
	cases := []struct {
		name  string
		specs []controller.BatchSpec
	}{
		{"many-medium-specs", func() []controller.BatchSpec {
			// 200 specs x ~2000 bytes: fits the count cap, busts the old
			// single-chunk byte budget many times over.
			var specs []controller.BatchSpec
			for i := 0; i < 200; i++ {
				specs = append(specs, controller.BatchSpec{
					Key:     controller.GroupKey{Tenant: 1, Group: uint32(i + 1)},
					Members: bigMembers(500, i),
				})
			}
			return specs
		}()},
		{"one-giant-spec", []controller.BatchSpec{{
			Key:     controller.GroupKey{Tenant: 2, Group: 7},
			Members: bigMembers(20000, 0),
		}}},
		{"giant-between-small", []controller.BatchSpec{
			{Key: controller.GroupKey{Tenant: 3, Group: 1}, Members: bigMembers(3, 0)},
			{Key: controller.GroupKey{Tenant: 3, Group: 2}, Members: bigMembers(30000, 0)},
			{Key: controller.GroupKey{Tenant: 3, Group: 3}, Members: bigMembers(2, 9)},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks := EncodeBatchChunks(tc.specs)
			var asm batchAssembler
			for i, c := range chunks {
				if len(c) > maxChunkBytes+64 {
					t.Fatalf("chunk %d is %d bytes, bound %d", i, len(c), maxChunkBytes)
				}
				// The payload must survive the replication layer verbatim.
				if _, err := (rsm.Command{Op: rsm.OpApply, Value: string(c)}).Marshal(); err != nil {
					t.Fatalf("chunk %d not streamable: %v", i, err)
				}
				rec, err := DecodeRecord(c)
				if err != nil {
					t.Fatalf("chunk %d: %v", i, err)
				}
				if wantMore := i < len(chunks)-1; rec.More != wantMore {
					t.Fatalf("chunk %d more=%v, want %v", i, rec.More, wantMore)
				}
				if err := asm.add(rec); err != nil {
					t.Fatalf("chunk %d: %v", i, err)
				}
			}
			if !reflect.DeepEqual(asm.specs, tc.specs) {
				t.Fatalf("reassembled %d specs differ from %d input specs", len(asm.specs), len(tc.specs))
			}
		})
	}
}

// TestBatchAssemblerRejectsBadContinuation covers the stream-corruption
// guards: a continuation with nothing before it, and one whose key
// does not match the spec it claims to continue.
func TestBatchAssemblerRejectsBadContinuation(t *testing.T) {
	split := EncodeBatchChunks([]controller.BatchSpec{{
		Key: controller.GroupKey{Tenant: 1, Group: 1},
		Members: func() map[topology.HostID]controller.Role {
			m := make(map[topology.HostID]controller.Role)
			for i := 0; i < 30000; i++ {
				m[topology.HostID(i)] = controller.RoleReceiver
			}
			return m
		}(),
	}})
	if len(split) < 2 {
		t.Fatalf("giant spec encoded as %d chunks", len(split))
	}
	cont, err := DecodeRecord(split[1])
	if err != nil || !cont.Cont {
		t.Fatalf("second chunk not a continuation: %+v, %v", cont, err)
	}

	var orphan batchAssembler
	if err := orphan.add(cont); err == nil {
		t.Fatal("continuation without predecessor accepted")
	}

	var wrongKey batchAssembler
	first, err := DecodeRecord(split[0])
	if err != nil {
		t.Fatal(err)
	}
	first.Specs[len(first.Specs)-1].Key = controller.GroupKey{Tenant: 9, Group: 9}
	if err := wrongKey.add(first); err != nil {
		t.Fatal(err)
	}
	if err := wrongKey.add(cont); err == nil {
		t.Fatal("continuation with mismatched key accepted")
	}
}
