package durable

import (
	"encoding/binary"
	"fmt"
	"sort"

	"elmo/internal/controller"
	"elmo/internal/topology"
)

// WAL record types. Every state-mutating controller op has one; the
// payload carries exactly the op's arguments, so replaying the log
// against a deterministic controller reproduces the crashed instance.
const (
	// RecCreate: key | members.
	RecCreate byte = 1
	// RecJoin: key | host | role.
	RecJoin byte = 2
	// RecLeave: key | host | role.
	RecLeave byte = 3
	// RecRemove: key.
	RecRemove byte = 4
	// RecBatch: more(1) | spec count | specs. A large InstallBatch is
	// chunked across consecutive records; every chunk except the last
	// sets more=1. Replay accumulates chunks and applies them as ONE
	// InstallBatch, preserving the all-at-once admission order that
	// produced the logged outcome.
	RecBatch byte = 5
	// RecHeartbeat: leader liveness beacon for the replication stream;
	// carries no controller mutation and is skipped on replay.
	RecHeartbeat byte = 6
)

// batchChunkSpecs bounds the specs per RecBatch record so records stay
// well under the rsm command size limit when streamed to followers.
const batchChunkSpecs = 256

// OpRecord is a decoded WAL record.
type OpRecord struct {
	Type    byte
	Key     controller.GroupKey
	Host    topology.HostID
	Role    controller.Role
	Members map[topology.HostID]controller.Role // RecCreate
	Specs   []controller.BatchSpec              // RecBatch
	More    bool                                // RecBatch: further chunks follow
}

func appendKey(b []byte, key controller.GroupKey) []byte {
	b = binary.BigEndian.AppendUint32(b, key.Tenant)
	return binary.BigEndian.AppendUint32(b, key.Group)
}

func appendMembers(b []byte, members map[topology.HostID]controller.Role) []byte {
	hosts := make([]topology.HostID, 0, len(members))
	for h := range members {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	b = binary.AppendUvarint(b, uint64(len(hosts)))
	for _, h := range hosts {
		b = binary.AppendUvarint(b, uint64(h))
		b = append(b, byte(members[h]))
	}
	return b
}

// EncodeCreate builds a RecCreate payload.
func EncodeCreate(key controller.GroupKey, members map[topology.HostID]controller.Role) []byte {
	b := make([]byte, 0, 16+3*len(members))
	b = append(b, RecCreate)
	b = appendKey(b, key)
	return appendMembers(b, members)
}

// EncodeMembership builds a RecJoin or RecLeave payload.
func EncodeMembership(typ byte, key controller.GroupKey, host topology.HostID, role controller.Role) []byte {
	b := make([]byte, 0, 16)
	b = append(b, typ)
	b = appendKey(b, key)
	b = binary.AppendUvarint(b, uint64(host))
	return append(b, byte(role))
}

// EncodeRemove builds a RecRemove payload.
func EncodeRemove(key controller.GroupKey) []byte {
	b := make([]byte, 0, 9)
	b = append(b, RecRemove)
	return appendKey(b, key)
}

// EncodeBatchChunks splits an InstallBatch's specs into RecBatch
// payloads, all but the last flagged "more".
func EncodeBatchChunks(specs []controller.BatchSpec) [][]byte {
	if len(specs) == 0 {
		return [][]byte{encodeBatchChunk(nil, false)}
	}
	var out [][]byte
	for off := 0; off < len(specs); off += batchChunkSpecs {
		end := off + batchChunkSpecs
		if end > len(specs) {
			end = len(specs)
		}
		out = append(out, encodeBatchChunk(specs[off:end], end < len(specs)))
	}
	return out
}

func encodeBatchChunk(specs []controller.BatchSpec, more bool) []byte {
	b := make([]byte, 0, 2+16*len(specs))
	b = append(b, RecBatch)
	if more {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(specs)))
	for _, s := range specs {
		b = appendKey(b, s.Key)
		b = appendMembers(b, s.Members)
	}
	return b
}

// EncodeHeartbeat builds a RecHeartbeat payload carrying the leader's
// committed LSN.
func EncodeHeartbeat(lsn uint64) []byte {
	b := make([]byte, 0, 10)
	b = append(b, RecHeartbeat)
	return binary.AppendUvarint(b, lsn)
}

type recReader struct {
	b   []byte
	off int
}

func (r *recReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("durable: truncated varint at %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *recReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("durable: truncated record at %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *recReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("durable: truncated u32 at %d", r.off)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *recReader) key() (controller.GroupKey, error) {
	t, err := r.u32()
	if err != nil {
		return controller.GroupKey{}, err
	}
	g, err := r.u32()
	if err != nil {
		return controller.GroupKey{}, err
	}
	return controller.GroupKey{Tenant: t, Group: g}, nil
}

func (r *recReader) members() (map[topology.HostID]controller.Role, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("durable: member count %d exceeds record", n)
	}
	m := make(map[topology.HostID]controller.Role, n)
	for i := uint64(0); i < n; i++ {
		h, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		role, err := r.byte()
		if err != nil {
			return nil, err
		}
		m[topology.HostID(h)] = controller.Role(role)
	}
	return m, nil
}

// DecodeRecord parses a WAL record payload. It is strict: unknown
// types and trailing bytes are errors, so a corrupted-but-CRC-valid
// record (software bug, not media fault) cannot be half-applied.
func DecodeRecord(b []byte) (OpRecord, error) {
	var rec OpRecord
	r := &recReader{b: b}
	typ, err := r.byte()
	if err != nil {
		return rec, err
	}
	rec.Type = typ
	switch typ {
	case RecCreate:
		if rec.Key, err = r.key(); err != nil {
			return rec, err
		}
		if rec.Members, err = r.members(); err != nil {
			return rec, err
		}
	case RecJoin, RecLeave:
		if rec.Key, err = r.key(); err != nil {
			return rec, err
		}
		h, err := r.uvarint()
		if err != nil {
			return rec, err
		}
		rec.Host = topology.HostID(h)
		role, err := r.byte()
		if err != nil {
			return rec, err
		}
		rec.Role = controller.Role(role)
	case RecRemove:
		if rec.Key, err = r.key(); err != nil {
			return rec, err
		}
	case RecBatch:
		more, err := r.byte()
		if err != nil {
			return rec, err
		}
		if more > 1 {
			return rec, fmt.Errorf("durable: bad more flag %d", more)
		}
		rec.More = more == 1
		n, err := r.uvarint()
		if err != nil {
			return rec, err
		}
		if n > uint64(len(r.b)-r.off) {
			return rec, fmt.Errorf("durable: spec count %d exceeds record", n)
		}
		rec.Specs = make([]controller.BatchSpec, 0, n)
		for i := uint64(0); i < n; i++ {
			key, err := r.key()
			if err != nil {
				return rec, err
			}
			m, err := r.members()
			if err != nil {
				return rec, err
			}
			rec.Specs = append(rec.Specs, controller.BatchSpec{Key: key, Members: m})
		}
	case RecHeartbeat:
		if _, err := r.uvarint(); err != nil {
			return rec, err
		}
	default:
		return rec, fmt.Errorf("durable: unknown record type %d", typ)
	}
	if r.off != len(b) {
		return rec, fmt.Errorf("durable: %d trailing bytes in record", len(b)-r.off)
	}
	return rec, nil
}
