package durable

import (
	"encoding/binary"
	"fmt"
	"sort"

	"elmo/internal/controller"
	"elmo/internal/topology"
)

// WAL record types. Every state-mutating controller op has one; the
// payload carries exactly the op's arguments, so replaying the log
// against a deterministic controller reproduces the crashed instance.
const (
	// RecCreate: key | members.
	RecCreate byte = 1
	// RecJoin: key | host | role.
	RecJoin byte = 2
	// RecLeave: key | host | role.
	RecLeave byte = 3
	// RecRemove: key.
	RecRemove byte = 4
	// RecBatch: flags(1) | spec count | specs. A large InstallBatch is
	// chunked across consecutive records; every chunk except the last
	// sets the "more" flag bit. A chunk whose first spec continues the
	// previous chunk's last spec (a single membership too large for one
	// chunk) sets the "cont" flag bit; reassembly merges the two specs'
	// members. Replay accumulates chunks and applies them as ONE
	// InstallBatch, preserving the all-at-once admission order that
	// produced the logged outcome.
	RecBatch byte = 5
	// RecHeartbeat: leader liveness beacon for the replication stream;
	// carries no controller mutation and is skipped on replay.
	RecHeartbeat byte = 6
)

// RecBatch flag bits.
const (
	batchFlagMore byte = 1 << 0
	batchFlagCont byte = 1 << 1
)

// batchChunkSpecs bounds the specs per RecBatch record, keeping replay
// accumulation incremental.
const batchChunkSpecs = 256

// maxChunkBytes bounds one chunk's encoded spec bytes. The whole
// record payload doubles as an rsm command value when streamed to
// followers, and rsm.Command.Marshal rejects values over 0xffff — the
// bound leaves ample headroom for the record header, so a chunk can
// never fail replication on size alone.
const maxChunkBytes = 56 << 10

// OpRecord is a decoded WAL record.
type OpRecord struct {
	Type    byte
	Key     controller.GroupKey
	Host    topology.HostID
	Role    controller.Role
	Members map[topology.HostID]controller.Role // RecCreate
	Specs   []controller.BatchSpec              // RecBatch
	More    bool                                // RecBatch: further chunks follow
	Cont    bool                                // RecBatch: first spec continues the previous chunk's last spec
}

func appendKey(b []byte, key controller.GroupKey) []byte {
	b = binary.BigEndian.AppendUint32(b, key.Tenant)
	return binary.BigEndian.AppendUint32(b, key.Group)
}

func appendMembers(b []byte, members map[topology.HostID]controller.Role) []byte {
	hosts := make([]topology.HostID, 0, len(members))
	for h := range members {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	b = binary.AppendUvarint(b, uint64(len(hosts)))
	for _, h := range hosts {
		b = binary.AppendUvarint(b, uint64(h))
		b = append(b, byte(members[h]))
	}
	return b
}

// EncodeCreate builds a RecCreate payload.
func EncodeCreate(key controller.GroupKey, members map[topology.HostID]controller.Role) []byte {
	b := make([]byte, 0, 16+3*len(members))
	b = append(b, RecCreate)
	b = appendKey(b, key)
	return appendMembers(b, members)
}

// EncodeMembership builds a RecJoin or RecLeave payload.
func EncodeMembership(typ byte, key controller.GroupKey, host topology.HostID, role controller.Role) []byte {
	b := make([]byte, 0, 16)
	b = append(b, typ)
	b = appendKey(b, key)
	b = binary.AppendUvarint(b, uint64(host))
	return append(b, byte(role))
}

// EncodeRemove builds a RecRemove payload.
func EncodeRemove(key controller.GroupKey) []byte {
	b := make([]byte, 0, 9)
	b = append(b, RecRemove)
	return appendKey(b, key)
}

// EncodeBatchChunks splits an InstallBatch's specs into RecBatch
// payloads, all but the last flagged "more". Chunks are bounded by
// both spec count (batchChunkSpecs) and encoded size (maxChunkBytes):
// a spec whose membership alone exceeds the byte bound is split at a
// member boundary, with the follow-on pieces repeating the key in a
// fresh chunk flagged "cont" so reassembly merges them back into one
// spec.
func EncodeBatchChunks(specs []controller.BatchSpec) [][]byte {
	type rawChunk struct {
		body  []byte
		count int
		cont  bool
	}
	var chunks []rawChunk
	var cur rawChunk
	flush := func() {
		chunks = append(chunks, cur)
		cur = rawChunk{}
	}
	for _, s := range specs {
		hosts := sortedHosts(s.Members)
		start := 0
		first := true
		for {
			if cur.count >= batchChunkSpecs {
				flush()
			}
			rem := maxChunkBytes - len(cur.body)
			end := pieceEnd(hosts, start, rem)
			if end == start && len(hosts) > 0 {
				// Not even one member fits; an empty chunk always fits
				// at least one, so this chunk just needs flushing.
				flush()
				continue
			}
			if !first && cur.count == 0 {
				cur.cont = true
			}
			cur.body = appendKey(cur.body, s.Key)
			cur.body = binary.AppendUvarint(cur.body, uint64(end-start))
			for _, h := range hosts[start:end] {
				cur.body = binary.AppendUvarint(cur.body, uint64(h))
				cur.body = append(cur.body, byte(s.Members[h]))
			}
			cur.count++
			first = false
			start = end
			if start >= len(hosts) {
				break
			}
		}
	}
	if len(chunks) == 0 && cur.count == 0 {
		// Empty batch still encodes one terminal chunk.
		flush()
	} else if cur.count > 0 {
		flush()
	}
	out := make([][]byte, len(chunks))
	for i, c := range chunks {
		var flags byte
		if i < len(chunks)-1 {
			flags |= batchFlagMore
		}
		if c.cont {
			flags |= batchFlagCont
		}
		p := make([]byte, 0, 2+binary.MaxVarintLen64+len(c.body))
		p = append(p, RecBatch, flags)
		p = binary.AppendUvarint(p, uint64(c.count))
		p = append(p, c.body...)
		out[i] = p
	}
	return out
}

func sortedHosts(members map[topology.HostID]controller.Role) []topology.HostID {
	hosts := make([]topology.HostID, 0, len(members))
	for h := range members {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// pieceEnd returns the largest end such that hosts[start:end] encodes
// (with key and count prefix) in at most rem bytes.
func pieceEnd(hosts []topology.HostID, start, rem int) int {
	end := start
	memBytes := 0
	for end < len(hosts) {
		mb := uvarintLen(uint64(hosts[end])) + 1
		n := end - start + 1
		if 8+uvarintLen(uint64(n))+memBytes+mb > rem {
			break
		}
		memBytes += mb
		end++
	}
	return end
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodeHeartbeat builds a RecHeartbeat payload carrying the leader's
// committed LSN.
func EncodeHeartbeat(lsn uint64) []byte {
	b := make([]byte, 0, 10)
	b = append(b, RecHeartbeat)
	return binary.AppendUvarint(b, lsn)
}

type recReader struct {
	b   []byte
	off int
}

func (r *recReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("durable: truncated varint at %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *recReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("durable: truncated record at %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *recReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("durable: truncated u32 at %d", r.off)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *recReader) key() (controller.GroupKey, error) {
	t, err := r.u32()
	if err != nil {
		return controller.GroupKey{}, err
	}
	g, err := r.u32()
	if err != nil {
		return controller.GroupKey{}, err
	}
	return controller.GroupKey{Tenant: t, Group: g}, nil
}

func (r *recReader) members() (map[topology.HostID]controller.Role, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("durable: member count %d exceeds record", n)
	}
	m := make(map[topology.HostID]controller.Role, n)
	for i := uint64(0); i < n; i++ {
		h, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		role, err := r.byte()
		if err != nil {
			return nil, err
		}
		m[topology.HostID(h)] = controller.Role(role)
	}
	return m, nil
}

// DecodeRecord parses a WAL record payload. It is strict: unknown
// types and trailing bytes are errors, so a corrupted-but-CRC-valid
// record (software bug, not media fault) cannot be half-applied.
func DecodeRecord(b []byte) (OpRecord, error) {
	var rec OpRecord
	r := &recReader{b: b}
	typ, err := r.byte()
	if err != nil {
		return rec, err
	}
	rec.Type = typ
	switch typ {
	case RecCreate:
		if rec.Key, err = r.key(); err != nil {
			return rec, err
		}
		if rec.Members, err = r.members(); err != nil {
			return rec, err
		}
	case RecJoin, RecLeave:
		if rec.Key, err = r.key(); err != nil {
			return rec, err
		}
		h, err := r.uvarint()
		if err != nil {
			return rec, err
		}
		rec.Host = topology.HostID(h)
		role, err := r.byte()
		if err != nil {
			return rec, err
		}
		rec.Role = controller.Role(role)
	case RecRemove:
		if rec.Key, err = r.key(); err != nil {
			return rec, err
		}
	case RecBatch:
		flags, err := r.byte()
		if err != nil {
			return rec, err
		}
		if flags&^(batchFlagMore|batchFlagCont) != 0 {
			return rec, fmt.Errorf("durable: bad batch flags %#x", flags)
		}
		rec.More = flags&batchFlagMore != 0
		rec.Cont = flags&batchFlagCont != 0
		n, err := r.uvarint()
		if err != nil {
			return rec, err
		}
		if n > uint64(len(r.b)-r.off) {
			return rec, fmt.Errorf("durable: spec count %d exceeds record", n)
		}
		if rec.Cont && n == 0 {
			return rec, fmt.Errorf("durable: continuation chunk with no specs")
		}
		rec.Specs = make([]controller.BatchSpec, 0, n)
		for i := uint64(0); i < n; i++ {
			key, err := r.key()
			if err != nil {
				return rec, err
			}
			m, err := r.members()
			if err != nil {
				return rec, err
			}
			rec.Specs = append(rec.Specs, controller.BatchSpec{Key: key, Members: m})
		}
	case RecHeartbeat:
		if _, err := r.uvarint(); err != nil {
			return rec, err
		}
	default:
		return rec, fmt.Errorf("durable: unknown record type %d", typ)
	}
	if r.off != len(b) {
		return rec, fmt.Errorf("durable: %d trailing bytes in record", len(b)-r.off)
	}
	return rec, nil
}

// batchAssembler reassembles a chunked InstallBatch from consecutive
// RecBatch records, merging a spec split across a continuation
// boundary back into one membership. Replay and followers share it so
// both sides reconstruct the exact batch the leader admitted.
type batchAssembler struct {
	specs []controller.BatchSpec
	recs  int
}

// pending reports whether a batch is mid-assembly.
func (a *batchAssembler) pending() bool { return a.recs > 0 }

// add folds one decoded RecBatch chunk in.
func (a *batchAssembler) add(op OpRecord) error {
	specs := op.Specs
	if op.Cont {
		if len(a.specs) == 0 || len(specs) == 0 {
			return fmt.Errorf("durable: continuation chunk without a spec to continue")
		}
		last := &a.specs[len(a.specs)-1]
		if specs[0].Key != last.Key {
			return fmt.Errorf("durable: continuation key %v does not match %v", specs[0].Key, last.Key)
		}
		for h, r := range specs[0].Members {
			last.Members[h] = r
		}
		specs = specs[1:]
	}
	a.specs = append(a.specs, specs...)
	a.recs++
	return nil
}

// reset clears the assembler after the batch is applied (or dropped).
func (a *batchAssembler) reset() { a.specs, a.recs = nil, 0 }
