package durable

import "testing"

// TestDetectorBoundary pins the miss-budget arithmetic at its edges:
// DeadAfter-1 consecutive misses keep the leader alive, the DeadAfter-
// th declares it, and the declaration latches.
func TestDetectorBoundary(t *testing.T) {
	d := &Detector{DeadAfter: 3}
	if d.Observe(1) {
		t.Fatal("progress round declared dead")
	}
	for i := 1; i < d.DeadAfter; i++ {
		if d.Observe(1) {
			t.Fatalf("declared dead after %d misses, budget %d", i, d.DeadAfter)
		}
		if d.Misses() != i {
			t.Fatalf("Misses() = %d, want %d", d.Misses(), i)
		}
	}
	if !d.Observe(1) {
		t.Fatalf("not declared dead at exactly %d misses", d.DeadAfter)
	}
	// Latched: even a progress round cannot resurrect a declared leader
	// (promotion is already in flight — flapping back would split brain).
	if !d.Observe(100) {
		t.Fatal("declaration did not latch")
	}
}

// TestDetectorHeartbeatOnDeclaringRound: progress arriving on what
// would have been the declaring round resets the budget — only
// CONSECUTIVE misses count.
func TestDetectorHeartbeatOnDeclaringRound(t *testing.T) {
	d := &Detector{DeadAfter: 3}
	d.Observe(1) // progress
	if d.Observe(1) || d.Observe(1) {
		t.Fatal("dead before budget")
	}
	// Miss count is now 2; one more silent round would declare. The
	// heartbeat lands just in time.
	if d.Observe(2) {
		t.Fatal("progress on the declaring round still declared dead")
	}
	if d.Misses() != 0 {
		t.Fatalf("Misses() = %d after progress, want 0", d.Misses())
	}
	// The budget restarts from scratch.
	if d.Observe(2) || d.Observe(2) {
		t.Fatal("dead before fresh budget ran out")
	}
	if !d.Observe(2) {
		t.Fatal("fresh budget did not declare")
	}
}
