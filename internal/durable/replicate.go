package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"elmo/internal/controller"
	"elmo/internal/fabric"
	"elmo/internal/rsm"
	"elmo/internal/topology"
)

// This file wires the durable controller's WAL stream through the RSM
// multicast layer: the leader's Replicate hook proposes every logged
// record as an OpApply command, the network fans it out (one copy per
// link, the paper's whole point), and each follower host applies it to
// a warm standby controller. When the leader is declared dead the
// standby promotes: its in-memory state becomes the snapshot seed of a
// fresh durable controller, so failover cost is a state serialization,
// not a full log replay.

// Follower maintains a warm standby controller by applying streamed
// WAL records in order.
type Follower struct {
	ctrl         *controller.Controller
	batchWorkers int
	asm          batchAssembler
	records      int
	hbLSN        uint64
	epoch        uint64 // highest leadership epoch seen in the stream
}

// NewFollower builds an empty standby for the given fabric shape.
func NewFollower(topo *topology.Topology, cfg controller.Config, batchWorkers int) (*Follower, error) {
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		return nil, err
	}
	return &Follower{ctrl: ctrl, batchWorkers: batchWorkers}, nil
}

// NewFollowerFromState builds a warm standby pre-seeded with a
// leader's serialized state and epoch (ResyncState on the leader).
// This is the rejoin path: a healed, deposed leader resyncs from the
// successor's snapshot and re-enters the cluster as a follower
// instead of replaying a log it can no longer extend.
func NewFollowerFromState(topo *topology.Topology, cfg controller.Config, batchWorkers int, epoch uint64, state []byte) (*Follower, error) {
	f, err := NewFollower(topo, cfg, batchWorkers)
	if err != nil {
		return nil, err
	}
	if err := f.ctrl.ReadState(bytes.NewReader(state)); err != nil {
		return nil, fmt.Errorf("durable: resync state: %w", err)
	}
	f.epoch = epoch
	return f, nil
}

// Apply consumes one replicated WAL record payload stamped with the
// proposing leader's epoch. Op-level apply errors are ignored (they
// failed identically on the leader); decode and stream-order
// violations are fatal. Stale-epoch records never reach this hook —
// the rsm replica fences them first.
func (f *Follower) Apply(epoch uint64, payload []byte) error {
	if epoch > f.epoch {
		f.epoch = epoch
	}
	op, err := DecodeRecord(payload)
	if err != nil {
		return err
	}
	if op.Type != RecBatch && f.asm.pending() {
		return fmt.Errorf("durable: %s interleaved with batch chunks in replica stream", recName(op.Type))
	}
	switch op.Type {
	case RecCreate:
		_, _ = f.ctrl.CreateGroup(op.Key, op.Members)
	case RecJoin:
		_ = f.ctrl.Join(op.Key, op.Host, op.Role)
	case RecLeave:
		_ = f.ctrl.Leave(op.Key, op.Host, op.Role)
	case RecRemove:
		_ = f.ctrl.RemoveGroup(op.Key)
	case RecBatch:
		if err := f.asm.add(op); err != nil {
			return err
		}
		if !op.More {
			_, _ = f.ctrl.InstallBatch(f.asm.specs, controller.BatchOptions{Workers: f.batchWorkers})
			f.asm.reset()
		}
	case RecHeartbeat:
		// Liveness marker; Records still advances below.
	}
	f.records++
	return nil
}

// Controller exposes the standby state (for fingerprint checks and
// promotion).
func (f *Follower) Controller() *controller.Controller { return f.ctrl }

// Records reports how many stream records this follower has applied.
func (f *Follower) Records() int { return f.records }

// Epoch reports the highest leadership epoch this follower has seen
// in the stream (or was seeded with). Promote mints its successor.
func (f *Follower) Epoch() uint64 { return f.epoch }

// ReplicaSetConfig wires a replication group onto a fabric.
type ReplicaSetConfig struct {
	// Net is the controller that routes the replication multicast
	// group itself (the network control plane — usually distinct from
	// the controller state being replicated).
	Net *fabricNet
	// Key identifies the replication group.
	Key controller.GroupKey
	// Leader is the durable controller's host; Followers run standbys.
	Leader    topology.HostID
	Followers []topology.HostID
	// Window is the reliable session's retransmit window.
	Window int
	// Topo/Cfg describe the fabric the REPLICATED controller manages
	// (standbys are built with the same shape as the leader).
	Topo *topology.Topology
	Cfg  controller.Config
	// BatchWorkers for standby InstallBatch replays.
	BatchWorkers int
}

// fabricNet bundles the network control plane and data plane a
// replica set multicasts over.
type fabricNet struct {
	Ctrl *controller.Controller
	Fab  *fabric.Fabric
}

// Net pairs the controller and fabric carrying the replication group.
func Net(ctrl *controller.Controller, fab *fabric.Fabric) *fabricNet {
	return &fabricNet{Ctrl: ctrl, Fab: fab}
}

// ReplicaSet is a leader's view of its warm standbys.
type ReplicaSet struct {
	cluster   *rsm.Cluster
	followers map[topology.HostID]*Follower
	leader    topology.HostID
	streamed  int // records handed to the stream by the Replicator
}

// NewReplicaSet creates the replication multicast group and a warm
// standby per follower host.
func NewReplicaSet(rc ReplicaSetConfig) (*ReplicaSet, error) {
	cluster, err := rsm.NewCluster(rc.Net.Ctrl, rc.Net.Fab, rc.Key, rc.Leader, rc.Followers, rc.Window)
	if err != nil {
		return nil, err
	}
	rs := &ReplicaSet{cluster: cluster, followers: make(map[topology.HostID]*Follower, len(rc.Followers)), leader: rc.Leader}
	for _, h := range rc.Followers {
		f, err := NewFollower(rc.Topo, rc.Cfg, rc.BatchWorkers)
		if err != nil {
			return nil, err
		}
		rs.followers[h] = f
		rs.cluster.Replica(h).SetApplier(f.Apply)
	}
	return rs, nil
}

// Replicator returns the hook to plug into Options.Replicate. Every
// record is proposed with the leader's epoch stamped on it, arming
// the replicas' fencing against a deposed leader's residue.
func (rs *ReplicaSet) Replicator() func(lsn, epoch uint64, payload []byte) error {
	return func(lsn, epoch uint64, payload []byte) error {
		if err := rs.cluster.ProposeApplyAt(epoch, payload); err != nil {
			return err
		}
		rs.streamed++
		return nil
	}
}

// FollowerAcks reports how many followers have applied every record
// streamed so far (the lease's currency) and the follower total. The
// multicast fabric delivers synchronously, so a reachable follower is
// always caught up by the time the propose returns; one that is not
// is on the far side of a loss or partition.
func (rs *ReplicaSet) FollowerAcks() (acked, total int) {
	for _, f := range rs.followers {
		if f.Records() >= rs.streamed {
			acked++
		}
	}
	return acked, len(rs.followers)
}

// AdoptFollower replaces the standby for host h with f — the rejoin
// path. A healed, deposed leader resyncs from the successor's state
// (ResyncState + NewFollowerFromState) and is adopted into the
// successor's replica set; session repair then replays anything
// proposed between the resync and the adoption. Replays of ops the
// resync already covered are no-ops on controller state (the op-level
// errors are ignored, same as any follower apply).
func (rs *ReplicaSet) AdoptFollower(h topology.HostID, f *Follower) error {
	r := rs.cluster.Replica(h)
	if r == nil {
		return fmt.Errorf("durable: host %d is not in the replica set", h)
	}
	rs.followers[h] = f
	r.SetApplier(f.Apply)
	return nil
}

// Sync forces a repair round so every follower catches up (tail-loss
// recovery before a fingerprint check or a promotion).
func (rs *ReplicaSet) Sync() error { return rs.cluster.Sync() }

// Cluster exposes the underlying RSM cluster (loss injection, session).
func (rs *ReplicaSet) Cluster() *rsm.Cluster { return rs.cluster }

// Follower returns a host's standby.
func (rs *ReplicaSet) Follower(h topology.HostID) *Follower { return rs.followers[h] }

// Detector declares a leader dead after DeadAfter consecutive probe
// rounds in which a follower's applied-record count fails to advance.
// The leader keeps the stream moving with Heartbeat() even when idle,
// so "no new records" genuinely means "leader silent", not "no load".
type Detector struct {
	// DeadAfter is the miss budget (probe rounds without progress).
	DeadAfter int
	misses    int
	last      int
	dead      bool
}

// Observe feeds one probe round's applied-record count; it returns
// true once the leader has been declared dead (latched).
func (d *Detector) Observe(records int) bool {
	if d.dead {
		return true
	}
	if records > d.last {
		d.last = records
		d.misses = 0
		return false
	}
	d.misses++
	if d.misses >= d.DeadAfter {
		d.dead = true
	}
	return d.dead
}

// Misses reports the current consecutive-miss count.
func (d *Detector) Misses() int { return d.misses }

// Promote turns a warm standby into a new durable controller rooted at
// opts.Dir: the standby's state is written as the initial snapshot and
// a fresh WAL starts after it. Promotion mints the next leadership
// epoch — one above the highest the standby saw in the old leader's
// stream — and records it durably in the snapshot envelope and every
// subsequent WAL frame, so the new leader's installs fence the old
// one's everywhere they meet. A trailing incomplete batch in the
// stream is discarded (it was never acked by the old leader).
// opts.Dir must be a fresh directory: the snapshot is written at LSN
// 0, so one already holding WAL segments (e.g. the dead leader's)
// would replay stale records from LSN 1 on top of the standby state —
// Promote refuses such a directory instead of corrupting itself.
func Promote(f *Follower, opts Options) (*DurableController, *RecoveryStats, error) {
	if minted := f.Epoch() + 1; minted > opts.Epoch {
		opts.Epoch = minted
	}
	if segs, err := filepath.Glob(filepath.Join(opts.Dir, "wal", "*.wal")); err != nil {
		return nil, nil, err
	} else if len(segs) > 0 {
		return nil, nil, fmt.Errorf("durable: promote into %s: wal already holds %d segments (needs a fresh directory)", opts.Dir, len(segs))
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, snapshotFile)); err == nil {
		return nil, nil, fmt.Errorf("durable: promote into %s: snapshot already exists (needs a fresh directory)", opts.Dir)
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f.asm.reset()
	var buf bytes.Buffer
	if err := f.ctrl.WriteState(&buf); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	if err := writeSnapshotFile(filepath.Join(opts.Dir, snapshotFile), 0, opts.Epoch, buf.Bytes(), opts.NoSync); err != nil {
		return nil, nil, err
	}
	return Open(f.ctrl.Topology(), f.ctrl.Config(), opts)
}
