package durable

import (
	"errors"
	"strings"
	"testing"

	"elmo/internal/chaos"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

// fencedFixture is the split-brain test bench: a replication plane
// (netCtrl + fab + injector) carrying the WAL stream with lease and
// follower-ack wiring, plus a SEPARATE managed data plane (dp) the
// leader installs groups into with its epoch stamped — the fabric
// whose state the fencing must protect.
type fencedFixture struct {
	dc  *DurableController
	rs  *ReplicaSet
	inj *chaos.Injector
	net *fabricNet // replication-plane controller + fabric
	dp  *fabric.Fabric
	reg *telemetry.Registry
}

func newFencedFixture(t *testing.T, dir string) *fencedFixture {
	t.Helper()
	topo := durableTopo()
	netCfg := controller.PaperConfig(0)
	netCtrl, err := controller.New(topo, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(topo, netCfg.SRuleCapacity)
	fab.SetFailures(netCtrl.Failures())
	inj := chaos.New(chaos.Config{Seed: 1})
	fab.SetInjector(inj)

	rs, err := NewReplicaSet(ReplicaSetConfig{
		Net:          Net(netCtrl, fab),
		Key:          controller.GroupKey{Tenant: 200, Group: 1},
		Leader:       replLeader,
		Followers:    []topology.HostID{replFollowerA, replFollowerB},
		Window:       64,
		Topo:         topo,
		Cfg:          durableCfg(),
		BatchWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc, _, err := Open(topo, durableCfg(), Options{
		Dir:          dir,
		NoSync:       true,
		BatchWorkers: 1,
		Replicate:    rs.Replicator(),
		Lease:        Lease{MissBudget: 3},
		FollowerAcks: rs.FollowerAcks,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	dp := fabric.New(topo, netCfg.SRuleCapacity)
	dp.SetMetrics(fabric.NewMetrics(reg))
	return &fencedFixture{dc: dc, rs: rs, inj: inj, net: Net(netCtrl, fab), dp: dp, reg: reg}
}

// fencingRejectedTotal sums the elmo_fencing_rejected_total series in
// the registry across all tiers.
func fencingRejectedTotal(reg *telemetry.Registry) float64 {
	var sum float64
	snap := reg.Snapshot()
	for _, k := range snap.Keys() {
		if strings.HasPrefix(k, "elmo_fencing_rejected_total") {
			sum += snap[k]
		}
	}
	return sum
}

// TestPartitionSoakSplitBrain is the end-to-end split-brain soak (run
// it under -race; `make partition` does): the leader is partitioned —
// NOT crashed — so it stays alive and keeps writing through the whole
// failover. The majority side detects, promotes at the next epoch, and
// fences the data plane; every stale install the old leader attempts
// is rejected and counted; the old leader self-demotes by lease; after
// heal it resyncs from the successor and converges as a follower, and
// the old leader's state, the new leader's state, and the data plane
// all fingerprint identically.
func TestPartitionSoakSplitBrain(t *testing.T) {
	fx := newFencedFixture(t, t.TempDir())
	defer fx.dc.Close()
	topo := durableTopo()
	cfg := durableCfg()

	if fx.dc.Epoch() != 1 {
		t.Fatalf("fresh leader epoch %d, want 1", fx.dc.Epoch())
	}

	// Epoch-1 regime: create groups, install them fenced.
	keys := []controller.GroupKey{
		{Tenant: 7, Group: 1}, {Tenant: 7, Group: 2}, {Tenant: 7, Group: 3},
	}
	members := map[topology.HostID]controller.Role{
		1: controller.RoleBoth, 9: controller.RoleReceiver, 24: controller.RoleReceiver,
	}
	for _, k := range keys {
		if err := fx.dc.CreateGroup(k, members); err != nil {
			t.Fatal(err)
		}
		if _, err := fx.dp.InstallGroupAt(fx.dc.Epoch(), fx.dc.Controller(), k); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy regime: heartbeats ack, lease stays fresh, no detection.
	det := &Detector{DeadAfter: 3}
	follower := fx.rs.Follower(replFollowerA)
	for i := 0; i < 5; i++ {
		if err := fx.dc.Heartbeat(); err != nil {
			t.Fatalf("healthy heartbeat %d: %v", i, err)
		}
		if det.Observe(follower.Records()) {
			t.Fatal("live leader declared dead")
		}
		if fx.dc.LeaseMisses() != 0 {
			t.Fatalf("healthy lease misses %d", fx.dc.LeaseMisses())
		}
	}

	// Partition the leader. It is alive — its WAL keeps accepting
	// appends — but nothing crosses its NIC in either direction.
	fx.inj.Partition(replLeader)
	if !fx.inj.Partitioned(replLeader) {
		t.Fatal("leader not partitioned")
	}
	preFailover := fx.dc.Controller().Fingerprint()
	lsnAtCut := fx.dc.LastLSN()

	// The old leader heartbeats into the void; the follower's detector
	// and the leader's own lease burn down in the same round currency.
	var hbErr error
	for i := 0; i < 5; i++ {
		hbErr = fx.dc.Heartbeat()
		det.Observe(follower.Records())
	}
	if !det.Observe(follower.Records()) {
		t.Fatal("partitioned leader never declared dead")
	}
	if !errors.Is(hbErr, ErrLeaseExpired) || !errors.Is(hbErr, ErrNotLeader) {
		t.Fatalf("lease did not expire: %v", hbErr)
	}
	if fx.dc.LastLSN() <= lsnAtCut {
		t.Fatal("old leader stopped writing its WAL — it must stay alive through failover")
	}
	if err := fx.dc.CreateGroup(controller.GroupKey{Tenant: 8, Group: 1}, members); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("demoted leader accepted a mutation: %v", err)
	}

	// Majority side: a second replica set for the new term (the old
	// leader will be re-adopted into it after heal), then promote.
	rs2, err := NewReplicaSet(ReplicaSetConfig{
		Net:          fx.net,
		Key:          controller.GroupKey{Tenant: 200, Group: 2},
		Leader:       replFollowerA,
		Followers:    []topology.HostID{replLeader},
		Window:       64,
		Topo:         topo,
		Cfg:          cfg,
		BatchWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	promoted, stats, err := Promote(follower, Options{
		Dir:          t.TempDir(),
		NoSync:       true,
		BatchWorkers: 1,
		Replicate:    rs2.Replicator(),
		Lease:        Lease{MissBudget: 3},
		FollowerAcks: rs2.FollowerAcks,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if promoted.Epoch() != 2 || stats.Epoch != 2 {
		t.Fatalf("promoted epoch %d (stats %d), want 2", promoted.Epoch(), stats.Epoch)
	}
	if got := promoted.Controller().Fingerprint(); got != preFailover {
		t.Fatalf("promoted fingerprint %s != pre-failover %s", got, preFailover)
	}

	// Takeover: fence the whole data plane at epoch 2 FIRST, then
	// mutate and reinstall under the new term.
	fx.dp.AnnounceEpoch(promoted.Epoch())
	if err := promoted.Join(keys[0], 40, controller.RoleReceiver); err != nil {
		t.Fatal(err)
	}
	extra := controller.GroupKey{Tenant: 7, Group: 4}
	if err := promoted.CreateGroup(extra, members); err != nil {
		t.Fatal(err)
	}
	for _, k := range append(append([]controller.GroupKey{}, keys...), extra) {
		if _, err := fx.dp.InstallGroupAt(promoted.Epoch(), promoted.Controller(), k); err != nil {
			t.Fatal(err)
		}
	}
	fpTakeover := fx.dp.Fingerprint()
	rejectedBefore := fx.dp.FencingRejections()

	// Split brain: the old leader — alive, partitioned, still at epoch
	// 1 — pushes its stale view at the data plane. Every attempt must
	// be rejected, counted, and leave the state bit-for-bit untouched.
	var se *dataplane.StaleEpochError
	if _, err := fx.dp.InstallGroupAt(fx.dc.Epoch(), fx.dc.Controller(), keys[0]); !errors.As(err, &se) {
		t.Fatalf("stale install not fenced: %v", err)
	} else if se.Epoch != 1 || se.Current != 2 {
		t.Fatalf("StaleEpochError = %+v", se)
	}
	if err := fx.dp.UninstallGroupAt(fx.dc.Epoch(), fx.dc.Controller(), keys[1]); !errors.Is(err, dataplane.ErrStaleEpoch) {
		t.Fatalf("stale uninstall not fenced: %v", err)
	}
	if got := fx.dp.FencingRejections(); got <= rejectedBefore {
		t.Fatalf("fencing rejections %d, want > %d", got, rejectedBefore)
	}
	if got := fencingRejectedTotal(fx.reg); got <= 0 {
		t.Fatalf("elmo_fencing_rejected_total = %v, want > 0", got)
	}
	if fx.dp.Fingerprint() != fpTakeover {
		t.Fatal("stale-epoch install changed data-plane state")
	}
	// The rejection carries the successor's epoch: feeding it back
	// keeps the old leader demoted (it already lost its lease).
	if err := fx.dc.ObserveEpoch(se.Current); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("ObserveEpoch(%d) = %v, want not-leader", se.Current, err)
	}

	// Heal. The old leader resyncs from the successor's state and is
	// adopted into the new replica set as a follower.
	fx.inj.Heal()
	if fx.inj.Partitioned(replLeader) {
		t.Fatal("heal left the leader partitioned")
	}
	epoch, state, err := promoted.ResyncState()
	if err != nil {
		t.Fatal(err)
	}
	rejoined, err := NewFollowerFromState(topo, cfg, 1, epoch, state)
	if err != nil {
		t.Fatal(err)
	}
	if rejoined.Epoch() != 2 {
		t.Fatalf("rejoined follower epoch %d, want 2", rejoined.Epoch())
	}
	if err := rs2.AdoptFollower(replLeader, rejoined); err != nil {
		t.Fatal(err)
	}

	// The new leader keeps mutating; the rejoined follower tracks it.
	last := controller.GroupKey{Tenant: 7, Group: 5}
	if err := promoted.CreateGroup(last, members); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.dp.InstallGroupAt(promoted.Epoch(), promoted.Controller(), last); err != nil {
		t.Fatal(err)
	}
	if err := rs2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := promoted.Heartbeat(); err != nil {
		t.Fatalf("post-heal heartbeat: %v", err)
	}
	if promoted.LeaseMisses() != 0 {
		t.Fatalf("post-heal lease misses %d", promoted.LeaseMisses())
	}

	// Convergence: old leader (as follower), new leader, and the data
	// plane all agree.
	want := promoted.Controller().Fingerprint()
	if got := rejoined.Controller().Fingerprint(); got != want {
		t.Fatalf("rejoined follower fingerprint %s != new leader %s", got, want)
	}
	ref := fabric.New(topo, cfg.SRuleCapacity)
	for _, k := range []controller.GroupKey{keys[0], keys[1], keys[2], extra, last} {
		if _, err := ref.InstallGroupAt(promoted.Epoch(), promoted.Controller(), k); err != nil {
			t.Fatal(err)
		}
	}
	if fx.dp.Fingerprint() != ref.Fingerprint() {
		t.Fatal("data-plane fingerprint diverged from the new leader's state")
	}
}

// TestDeposedByFencingRejection exercises the rejection-feedback path
// in isolation (no lease): a leader that learns of a higher epoch from
// a StaleEpochError steps down immediately with ErrDeposed.
func TestDeposedByFencingRejection(t *testing.T) {
	topo := durableTopo()
	cfg := durableCfg()
	dc, _, err := Open(topo, cfg, Options{Dir: t.TempDir(), NoSync: true, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	key := controller.GroupKey{Tenant: 3, Group: 1}
	if err := dc.CreateGroup(key, map[topology.HostID]controller.Role{
		1: controller.RoleBoth, 9: controller.RoleReceiver,
	}); err != nil {
		t.Fatal(err)
	}

	dp := fabric.New(topo, cfg.SRuleCapacity)
	dp.AnnounceEpoch(4) // a successor took over out-of-band

	var se *dataplane.StaleEpochError
	if _, err := dp.InstallGroupAt(dc.Epoch(), dc.Controller(), key); !errors.As(err, &se) {
		t.Fatalf("install at epoch %d not fenced: %v", dc.Epoch(), err)
	}
	if err := dc.ObserveEpoch(se.Current); !errors.Is(err, ErrDeposed) {
		t.Fatalf("ObserveEpoch = %v, want ErrDeposed", err)
	}
	if err := dc.CreateGroup(controller.GroupKey{Tenant: 3, Group: 2}, nil); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("deposed leader accepted a mutation: %v", err)
	}
	if err := dc.Heartbeat(); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed heartbeat = %v, want ErrDeposed", err)
	}
	// Deposition is one-way: observing its own epoch later cannot
	// restore leadership.
	if err := dc.ObserveEpoch(dc.Epoch()); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("deposition not latched: %v", err)
	}
}
