package durable

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"elmo/internal/controller"
	"elmo/internal/topology"
	"elmo/internal/wal"
)

func durableTopo() *topology.Topology { return topology.MustNew(topology.PaperExample()) }

func durableCfg() controller.Config { return controller.PaperConfig(0) }

func openTest(t *testing.T, dir string) (*DurableController, *RecoveryStats) {
	t.Helper()
	d, stats, err := Open(durableTopo(), durableCfg(), Options{Dir: dir, NoSync: true, BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d, stats
}

// op is one scripted mutation, applied identically to the durable
// controller and to an in-memory reference.
type op struct {
	kind    byte
	key     controller.GroupKey
	host    topology.HostID
	role    controller.Role
	members map[topology.HostID]controller.Role
	specs   []controller.BatchSpec
}

func (o op) applyDurable(d *DurableController) {
	switch o.kind {
	case RecCreate:
		_ = d.CreateGroup(o.key, o.members)
	case RecJoin:
		_ = d.Join(o.key, o.host, o.role)
	case RecLeave:
		_ = d.Leave(o.key, o.host, o.role)
	case RecRemove:
		_ = d.RemoveGroup(o.key)
	case RecBatch:
		_, _ = d.InstallBatch(o.specs, controller.BatchOptions{Workers: 1})
	}
}

func (o op) applyPlain(c *controller.Controller) {
	switch o.kind {
	case RecCreate:
		_, _ = c.CreateGroup(o.key, o.members)
	case RecJoin:
		_ = c.Join(o.key, o.host, o.role)
	case RecLeave:
		_ = c.Leave(o.key, o.host, o.role)
	case RecRemove:
		_ = c.RemoveGroup(o.key)
	case RecBatch:
		_, _ = c.InstallBatch(o.specs, controller.BatchOptions{Workers: 1})
	}
}

// churnScript generates n ops, deliberately including some that fail
// (duplicate creates, joins to missing groups) — replay must reproduce
// failures as faithfully as successes.
func churnScript(rng *rand.Rand, n, hosts int) []op {
	ops := make([]op, 0, n)
	newMembers := func() map[topology.HostID]controller.Role {
		m := map[topology.HostID]controller.Role{}
		size := 2 + rng.Intn(8)
		for len(m) < size {
			m[topology.HostID(rng.Intn(hosts))] = controller.Role(1 + rng.Intn(3))
		}
		return m
	}
	for i := 0; i < n; i++ {
		key := controller.GroupKey{Tenant: uint32(1 + rng.Intn(4)), Group: uint32(1 + rng.Intn(n/4+2))}
		switch r := rng.Intn(100); {
		case r < 30:
			ops = append(ops, op{kind: RecCreate, key: key, members: newMembers()})
		case r < 60:
			ops = append(ops, op{kind: RecJoin, key: key,
				host: topology.HostID(rng.Intn(hosts)), role: controller.Role(1 + rng.Intn(3))})
		case r < 80:
			ops = append(ops, op{kind: RecLeave, key: key,
				host: topology.HostID(rng.Intn(hosts)), role: controller.Role(1 + rng.Intn(3))})
		case r < 92:
			ops = append(ops, op{kind: RecRemove, key: key})
		default:
			specs := make([]controller.BatchSpec, 0, 4)
			for j := 0; j < 4; j++ {
				specs = append(specs, controller.BatchSpec{
					Key:     controller.GroupKey{Tenant: 9, Group: uint32(i*10 + j + 1)},
					Members: newMembers(),
				})
			}
			ops = append(ops, op{kind: RecBatch, specs: specs})
		}
	}
	return ops
}

func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	topo := durableTopo()
	ops := churnScript(rng, 200, topo.NumHosts())

	d1, _ := openTest(t, dir)
	ref, _ := controller.New(topo, durableCfg())
	for _, o := range ops {
		o.applyDurable(d1)
		o.applyPlain(ref)
	}
	want := d1.Controller().Fingerprint()
	if want != ref.Fingerprint() {
		t.Fatal("durable and plain controller diverge before any crash")
	}
	// Crash: drop d1 without Close. Acked ops are on disk.
	d2, stats := openTest(t, dir)
	defer d2.Close()
	if got := d2.Controller().Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %s != %s", got, want)
	}
	if stats.Replayed == 0 {
		t.Fatal("no records replayed")
	}
	if stats.Groups != ref.NumGroups() {
		t.Fatalf("recovered %d groups, want %d", stats.Groups, ref.NumGroups())
	}
}

func TestDurableSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	topo := durableTopo()
	ops := churnScript(rng, 300, topo.NumHosts())

	d1, _ := openTest(t, dir)
	for i, o := range ops {
		o.applyDurable(d1)
		if i == 150 {
			lsn, err := d1.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if lsn == 0 {
				t.Fatal("snapshot covered nothing")
			}
		}
	}
	want := d1.Controller().Fingerprint()

	d2, stats := openTest(t, dir)
	defer d2.Close()
	if stats.SnapshotBytes == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	if got := d2.Controller().Fingerprint(); got != want {
		t.Fatalf("post-snapshot recovery fingerprint %s != %s", got, want)
	}
}

func TestDurableTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	d1, _ := openTest(t, dir)
	if err := d1.CreateGroup(controller.GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]controller.Role{0: controller.RoleBoth, 40: controller.RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	want := d1.Controller().Fingerprint()

	// Simulate a torn write: garbage at the tail of the last segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, _ := openTest(t, dir)
	defer d2.Close()
	if got := d2.Controller().Fingerprint(); got != want {
		t.Fatal("torn tail changed recovered state")
	}
	// The new instance can keep appending past the truncated tail.
	if err := d2.Join(controller.GroupKey{Tenant: 1, Group: 1}, 56, controller.RoleReceiver); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	d1, _ := openTest(t, dir)
	if err := d1.CreateGroup(controller.GroupKey{Tenant: 1, Group: 1},
		map[topology.HostID]controller.Role{0: controller.RoleBoth, 40: controller.RoleReceiver}); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(durableTopo(), durableCfg(), Options{Dir: dir, NoSync: true}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestDurableSoakCrashMidChurn is the satellite soak: run a churn
// script against a durable controller, crash and restart it at several
// arbitrary points (with snapshots interleaved), and require the final
// state to be byte-identical to a never-crashed replay of the same
// script.
func TestDurableSoakCrashMidChurn(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1234))
	topo := durableTopo()
	const total = 600
	ops := churnScript(rng, total, topo.NumHosts())

	ref, _ := controller.New(topo, durableCfg())
	for _, o := range ops {
		o.applyPlain(ref)
	}

	crashAt := map[int]bool{97: true, 205: true, 206: true, 399: true, 598: true}
	snapAt := map[int]bool{150: true, 400: true}
	d, _ := openTest(t, dir)
	for i, o := range ops {
		o.applyDurable(d)
		if snapAt[i] {
			if _, err := d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if crashAt[i] {
			// Crash without Close and recover.
			d, _ = openTest(t, dir)
		}
	}
	defer d.Close()
	if got, want := d.Controller().Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("soak fingerprint %s != never-crashed %s", got, want)
	}
	if d.Controller().NumGroups() != ref.NumGroups() {
		t.Fatalf("soak groups %d != %d", d.Controller().NumGroups(), ref.NumGroups())
	}
}

func TestDurableBatchChunkReplay(t *testing.T) {
	dir := t.TempDir()
	topo := durableTopo()
	// Over one chunk's worth of specs so replay must reassemble.
	n := batchChunkSpecs + 50
	specs := make([]controller.BatchSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, controller.BatchSpec{
			Key: controller.GroupKey{Tenant: 2, Group: uint32(i + 1)},
			Members: map[topology.HostID]controller.Role{
				topology.HostID(i % topo.NumHosts()):        controller.RoleBoth,
				topology.HostID((i + 13) % topo.NumHosts()): controller.RoleReceiver,
			},
		})
	}
	d1, _ := openTest(t, dir)
	if _, err := d1.InstallBatch(specs, controller.BatchOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := d1.Controller().Fingerprint()

	d2, stats := openTest(t, dir)
	defer d2.Close()
	if stats.Groups != n {
		t.Fatalf("replayed %d groups, want %d", stats.Groups, n)
	}
	if got := d2.Controller().Fingerprint(); got != want {
		t.Fatal("batch replay diverged")
	}
}

// TestDurableDroppedBatchTailTruncated is the regression for the
// stale-chunk bug: a crash mid-batch leaves durable RecBatch chunks
// with no terminal chunk. Recovery must not only drop the batch
// logically but remove the chunks from the log — otherwise the NEXT
// recovery either fails ("interleaved with batch chunks") or merges
// the dead chunks into a later batch, resurrecting groups that were
// reported lost.
func TestDurableDroppedBatchTailTruncated(t *testing.T) {
	specsFor := func(tenant uint32, n int) []controller.BatchSpec {
		specs := make([]controller.BatchSpec, 0, n)
		for i := 0; i < n; i++ {
			specs = append(specs, controller.BatchSpec{
				Key:     controller.GroupKey{Tenant: tenant, Group: uint32(i + 1)},
				Members: map[topology.HostID]controller.Role{topology.HostID(i % 64): controller.RoleBoth},
			})
		}
		return specs
	}
	crashMidBatch := func(t *testing.T, dir string) {
		// Simulate the crash window: every chunk except the terminal one
		// became durable.
		chunks := EncodeBatchChunks(specsFor(9, batchChunkSpecs+50))
		if len(chunks) < 2 {
			t.Fatalf("batch encoded as %d chunks", len(chunks))
		}
		l, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks[:len(chunks)-1] {
			if _, err := l.AppendSync(RecBatch, c); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	keyA := controller.GroupKey{Tenant: 1, Group: 1}
	keyB := controller.GroupKey{Tenant: 1, Group: 2}
	members := map[topology.HostID]controller.Role{0: controller.RoleBoth, 40: controller.RoleReceiver}

	t.Run("followed-by-single-op", func(t *testing.T) {
		dir := t.TempDir()
		d1, _ := openTest(t, dir)
		if err := d1.CreateGroup(keyA, members); err != nil {
			t.Fatal(err)
		}
		if err := d1.Close(); err != nil {
			t.Fatal(err)
		}
		crashMidBatch(t, dir)

		d2, stats := openTest(t, dir)
		if stats.DroppedTail == 0 {
			t.Fatal("incomplete batch tail not detected")
		}
		// The op that used to blow up the NEXT recovery.
		if err := d2.CreateGroup(keyB, members); err != nil {
			t.Fatal(err)
		}
		want := d2.Controller().Fingerprint()
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}

		d3, stats := openTest(t, dir)
		defer d3.Close()
		if stats.DroppedTail != 0 {
			t.Fatalf("second recovery still drops %d records", stats.DroppedTail)
		}
		if got := d3.Controller().Fingerprint(); got != want {
			t.Fatalf("fingerprint %s != %s", got, want)
		}
		if n := d3.Controller().NumGroups(); n != 2 {
			t.Fatalf("recovered %d groups, want 2", n)
		}
	})

	t.Run("followed-by-batch", func(t *testing.T) {
		dir := t.TempDir()
		d1, _ := openTest(t, dir)
		if err := d1.CreateGroup(keyA, members); err != nil {
			t.Fatal(err)
		}
		if err := d1.Close(); err != nil {
			t.Fatal(err)
		}
		crashMidBatch(t, dir)

		d2, _ := openTest(t, dir)
		fresh := specsFor(5, 10)
		if _, err := d2.InstallBatch(fresh, controller.BatchOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		want := d2.Controller().Fingerprint()
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}

		d3, _ := openTest(t, dir)
		defer d3.Close()
		if got := d3.Controller().Fingerprint(); got != want {
			t.Fatal("recovery merged dead chunks into the new batch")
		}
		// None of the dropped batch's tenant-9 groups may exist.
		for _, k := range d3.Controller().GroupKeys() {
			if k.Tenant == 9 {
				t.Fatalf("dropped group %v resurrected", k)
			}
		}
		if n := d3.Controller().NumGroups(); n != 1+len(fresh) {
			t.Fatalf("recovered %d groups, want %d", n, 1+len(fresh))
		}
	})
}

// TestDurableConcurrentSnapshots races Snapshot calls against live
// mutations: serialization must guarantee the snapshot on disk always
// covers every segment any snapshot's truncation removed, so recovery
// never hits an LSN gap.
func TestDurableConcurrentSnapshots(t *testing.T) {
	dir := t.TempDir()
	d1, _, err := Open(durableTopo(), durableCfg(), Options{Dir: dir, NoSync: true, BatchWorkers: 1, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d1.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		_ = d1.CreateGroup(controller.GroupKey{Tenant: 4, Group: uint32(i + 1)},
			map[topology.HostID]controller.Role{topology.HostID(i % 64): controller.RoleBoth, topology.HostID((i + 7) % 64): controller.RoleReceiver})
	}
	close(stop)
	wg.Wait()
	want := d1.Controller().Fingerprint()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2, _ := openTest(t, dir)
	defer d2.Close()
	if got := d2.Controller().Fingerprint(); got != want {
		t.Fatalf("recovery after racing snapshots: %s != %s", got, want)
	}
}
