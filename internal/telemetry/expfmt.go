package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then
// every series. Histograms expand to cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Families are emitted in name order
// and series in creation order, so output is stable scrape to scrape.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		if len(ser) == 0 {
			continue
		}
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			writeEscapedHelp(bw, f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range ser {
			switch f.kind {
			case KindCounter:
				writeSeries(bw, f.name, f.labels, s.labelVals, "", 0, float64(s.c.Value()))
			case KindGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.g.Value()
				}
				writeSeries(bw, f.name, f.labels, s.labelVals, "", 0, v)
			case KindHistogram:
				cum := make([]int64, len(s.h.buckets))
				total := s.h.cumulative(cum)
				for i, b := range s.h.bounds {
					writeSeries(bw, f.name+"_bucket", f.labels, s.labelVals, "le", b, float64(cum[i]))
				}
				writeSeries(bw, f.name+"_bucket", f.labels, s.labelVals, "le", math.Inf(1), float64(total))
				writeSeries(bw, f.name+"_sum", f.labels, s.labelVals, "", 0, s.h.Sum())
				writeSeries(bw, f.name+"_count", f.labels, s.labelVals, "", 0, float64(total))
			}
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, name string, labels, values []string, extraLabel string, extraVal, v float64) {
	bw.WriteString(seriesKey(name, labels, values, extraLabel, extraVal))
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeEscapedHelp escapes backslash and newline per the exposition
// format (quotes are legal in HELP text).
func writeEscapedHelp(bw *bufio.Writer, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteRune(r)
		}
	}
}
