package telemetry

import (
	"strings"
	"testing"
)

// TestExpositionConformance pins the Prometheus text-format (0.0.4)
// guarantees WriteText makes: label-value escaping, metric-name
// validation, and stable ordering (families by name, series in
// creation order).
func TestExpositionConformance(t *testing.T) {
	t.Run("label value escaping", func(t *testing.T) {
		cases := []struct {
			name  string
			value string
			want  string // escaped form inside the quotes
		}{
			{"plain", "plain", "plain"},
			{"backslash", `back\slash`, `back\\slash`},
			{"quote", `say "hi"`, `say \"hi\"`},
			{"newline", "line1\nline2", `line1\nline2`},
			{"all three", "\\\"\n", `\\\"\n`},
			{"unicode passthrough", "pod→leaf", "pod→leaf"},
			{"empty", "", ""},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				reg := NewRegistry()
				reg.CounterVec("m_total", "", "l").With(tc.value).Add(1)
				var sb strings.Builder
				if err := reg.WriteText(&sb); err != nil {
					t.Fatal(err)
				}
				want := `m_total{l="` + tc.want + `"} 1` + "\n"
				if !strings.Contains(sb.String(), want) {
					t.Errorf("exposition missing %q:\n%s", want, sb.String())
				}
			})
		}
	})

	t.Run("metric name validity", func(t *testing.T) {
		valid := []string{"a", "elmo_groups_total", "ns:sub_sys", "_lead", "A9"}
		for _, name := range valid {
			reg := NewRegistry()
			reg.Counter(name, "") // must not panic
		}
		invalid := []string{"", "9lead", "has-dash", "has space", "dotted.name", "né"}
		for _, name := range invalid {
			name := name
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("registering %q did not panic", name)
					}
				}()
				NewRegistry().Counter(name, "")
			}()
		}
		// Label names follow the same rule, and "le" is reserved.
		for _, label := range []string{"bad-label", "le"} {
			label := label
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("label %q did not panic", label)
					}
				}()
				NewRegistry().CounterVec("ok_total", "", label)
			}()
		}
	})

	t.Run("stable ordering", func(t *testing.T) {
		reg := NewRegistry()
		// Register families out of name order and series out of
		// lexicographic order.
		bv := reg.CounterVec("zebra_total", "last family", "shard")
		bv.With("9").Add(9)
		bv.With("1").Add(1)
		reg.Gauge("alpha_level", "first family").Set(2)
		reg.Counter("mid_total", "").Add(3)

		var first strings.Builder
		if err := reg.WriteText(&first); err != nil {
			t.Fatal(err)
		}
		got := first.String()

		// Families emit sorted by name; series keep creation order.
		wantOrder := []string{
			"# HELP alpha_level first family",
			"# TYPE alpha_level gauge",
			"alpha_level 2",
			"# TYPE mid_total counter",
			"mid_total 3",
			"# HELP zebra_total last family",
			"# TYPE zebra_total counter",
			`zebra_total{shard="9"} 9`,
			`zebra_total{shard="1"} 1`,
		}
		pos := -1
		for _, want := range wantOrder {
			i := strings.Index(got, want)
			if i < 0 {
				t.Fatalf("exposition missing %q:\n%s", want, got)
			}
			if i <= pos {
				t.Fatalf("line %q out of order:\n%s", want, got)
			}
			pos = i
		}

		// Byte-for-byte stable scrape to scrape.
		var second strings.Builder
		if err := reg.WriteText(&second); err != nil {
			t.Fatal(err)
		}
		if got != second.String() {
			t.Fatalf("exposition not stable across scrapes:\n--- first\n%s--- second\n%s", got, second.String())
		}
	})

	t.Run("histogram le label", func(t *testing.T) {
		reg := NewRegistry()
		h := reg.Histogram("lat_seconds", "", []float64{0.5, 1})
		h.Observe(0.2)
		h.Observe(2)
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		got := sb.String()
		for _, want := range []string{
			`lat_seconds_bucket{le="0.5"} 1`,
			`lat_seconds_bucket{le="1"} 1`,
			`lat_seconds_bucket{le="+Inf"} 2`,
			"lat_seconds_count 2",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("exposition missing %q:\n%s", want, got)
			}
		}
	})
}
