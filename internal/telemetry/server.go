package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Server is a live observability endpoint: /metrics (Prometheus text),
// /debug/pprof/* (CPU, heap, goroutine, trace), an index of every
// mounted endpoint at /, and whatever the ops plane mounts via Handle.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux

	mu        sync.Mutex
	endpoints []string
}

// Serve starts the observability listener on addr (e.g. ":9090" or
// "localhost:0") and serves until Close. It returns once the listener
// is bound, so the caller can log the resolved address immediately.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	s := &Server{
		reg: reg, ln: ln, mux: mux,
		srv:       &http.Server{Handler: mux},
		endpoints: []string{"/metrics", "/debug/pprof/"},
	}
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.index)
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Handle mounts h at pattern and lists the pattern on the index page.
// http.ServeMux registration is safe while the server runs, so the ops
// plane can mount its endpoints after Serve.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mu.Lock()
	s.endpoints = append(s.endpoints, pattern)
	s.mu.Unlock()
	s.mux.Handle(pattern, h)
}

// Endpoints returns the mounted patterns, sorted.
func (s *Server) Endpoints() []string {
	s.mu.Lock()
	out := append([]string(nil), s.endpoints...)
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// index serves the endpoint directory at exactly "/".
func (s *Server) index(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "elmo telemetry\n\n")
	for _, e := range s.Endpoints() {
		fmt.Fprintln(w, e)
	}
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// runtimeStats caches one runtime.ReadMemStats per refresh interval so
// a burst of scrapes (or one scrape reading several gauges) triggers at
// most one stop-the-world per interval.
type runtimeStats struct {
	mu      sync.Mutex
	last    time.Time
	ttl     time.Duration
	ms      runtime.MemStats
	prevGCs uint32
}

func (rs *runtimeStats) snapshot() *runtime.MemStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if time.Since(rs.last) >= rs.ttl {
		runtime.ReadMemStats(&rs.ms)
		rs.last = time.Now()
	}
	return &rs.ms
}

// RegisterRuntime wires Go runtime health gauges into reg:
// goroutine count, heap in use, total allocated, GC cycle count and
// cumulative pause time, and next-GC target. MemStats reads are cached
// for one second across the gauge set.
func RegisterRuntime(reg *Registry) {
	rs := &runtimeStats{ttl: time.Second}
	reg.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_memstats_heap_inuse_bytes", "Heap bytes in in-use spans.",
		func() float64 { return float64(rs.snapshot().HeapInuse) })
	reg.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(rs.snapshot().HeapObjects) })
	reg.GaugeFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(rs.snapshot().TotalAlloc) })
	reg.GaugeFunc("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.",
		func() float64 { return float64(rs.snapshot().NextGC) })
	reg.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(rs.snapshot().NumGC) })
	reg.GaugeFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(rs.snapshot().PauseTotalNs) / 1e9 })
}
