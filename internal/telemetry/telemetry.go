// Package telemetry is the repo's live instrumentation layer: atomic
// counters and gauges, lock-free fixed-bound histograms, and a labeled
// registry with cheap label-set interning, exposed in Prometheus text
// format over an opt-in HTTP listener (see Serve) next to net/http/pprof.
//
// Where package trace answers *why* one packet took a path and package
// metrics aggregates offline experiment results, telemetry answers
// *what is the system doing right now*: s-rule occupancy against Fmax,
// per-tier forward rates, control-plane update latency, churn pressure —
// the §5 quantities observed continuously on a running process instead
// of tabulated after it exits.
//
// Cost model, which wiring code must preserve:
//
//   - Instrument handles (Counter, Gauge, Histogram) are obtained once
//     at setup via the registry (or a Vec's With, which interns the
//     label set under a short mutex). Hot paths never touch the
//     registry.
//   - The hot-path operations — Counter.Inc/Add, Gauge.Set/Add,
//     Histogram.Observe — are single atomic operations (Observe adds a
//     bounded binary search) and never allocate.
//   - Telemetry off means no handle attached: instrumented code guards
//     with a nil check, so a process that never wires a registry pays
//     one predictable branch per counter site and nothing else. The
//     fabric alloc-parity tests pin this.
//
// Registration is get-or-create: asking for an existing name with the
// same kind and label names returns the same instrument, so independent
// subsystems can share a family. Asking with a different kind or label
// set panics — that is a programming error, caught at wiring time.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use, but counters are normally created through a Registry so they
// appear in the exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; non-positive deltas are ignored
// (counters are monotonic by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable value that can go up and down, stored as float64
// bits so rates and ratios fit alongside integral levels.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; allocation-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed, precomputed upper-bound
// buckets (Prometheus "le" semantics: bucket i counts v <= bounds[i];
// one implicit +Inf bucket catches the rest). Observe is lock-free:
// a bounded binary search plus three atomic operations, no allocation.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. NaN observations are dropped — they would
// poison the sum without landing in any bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bound >= v, hand-rolled so the disabled-inlining path of
	// sort.Search never costs a closure.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly inside the target bucket the way
// Prometheus' histogram_quantile does. Conventions:
//
//   - The target bucket is the first whose cumulative count reaches
//     rank = q * Count(). Within it the estimate interpolates linearly
//     between the bucket's bounds; the implicit first bucket spans
//     [0, bounds[0]), so estimates never go below zero.
//   - q = 0 snaps to the first bucket: 0 when it holds observations,
//     else its upper bound (an empty bucket has no width to
//     interpolate across). q = 1 returns the upper bound of the
//     highest occupied finite bucket.
//   - Overflow: observations above the largest finite bound land in
//     the implicit +Inf bucket, which has no upper edge to
//     interpolate toward, so any rank landing there clamps to the
//     largest finite bound — the estimate is a floor, not an exact
//     order statistic. A histogram with all mass in overflow therefore
//     reports its largest finite bound for every q in (0, 1].
//   - Returns NaN for q outside [0, 1], for NaN q, for a histogram
//     with no observations, and for a histogram with no finite
//     buckets.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	cum := make([]int64, len(h.buckets))
	total := h.cumulative(cum)
	if total == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: best effort is the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		var below int64
		if i > 0 {
			lower = h.bounds[i-1]
			below = cum[i-1]
		}
		width := h.bounds[i] - lower
		inBucket := c - below
		if inBucket == 0 {
			return h.bounds[i]
		}
		return lower + width*(rank-float64(below))/float64(inBucket)
	}
	return h.bounds[len(h.bounds)-1]
}

// cumulative fills out with the cumulative bucket counts (le
// semantics), returning the total.
func (h *Histogram) cumulative(out []int64) int64 {
	var acc int64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		out[i] = acc
	}
	return acc
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets spans 1µs..5s — control-plane operations land in the
// µs..ms decades, full batch installs in the upper ones.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Kind is the instrument family type.
type Kind uint8

const (
	// KindCounter is a monotonic counter.
	KindCounter Kind = iota
	// KindGauge is a settable level (or a function-backed gauge).
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one label-set instantiation of a family.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	fn        func() float64 // function-backed gauge
}

// family is one named metric with its labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu    sync.Mutex
	order []*series
	byKey map[string]*series
}

// get interns one label-value set, creating the series on first use.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s
}

// Registry holds instrument families and renders them as snapshots and
// Prometheus text exposition. Safe for concurrent use; instruments are
// created under a short mutex and operated on without it.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family gets or creates a family, enforcing kind/label/bounds
// consistency.
func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		if !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		byKey:  make(map[string]*series),
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// Counter returns the unlabeled counter with the given name, creating
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).c
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).g
}

// GaugeFunc registers a function-backed gauge, evaluated at snapshot
// and exposition time. Re-registering the same name replaces the
// function — re-wiring a fresh subsystem into a long-lived registry
// re-points the gauge at the live instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.family(name, help, KindGauge, nil, nil).get(nil)
	s.fn = fn
}

// Histogram returns the unlabeled histogram with the given name and
// bucket upper bounds (sorted copies; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, KindHistogram, nil, bounds).get(nil).h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labels, nil)}
}

// With interns the label values and returns their counter. Callers
// cache the handle; With itself takes the family mutex.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labels, nil)}
}

// With interns the label values and returns their gauge.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// Func binds a function-backed gauge to one label set (replacing any
// previous function there).
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.get(values).fn = fn
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family; all series share
// the bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labels, bounds)}
}

// With interns the label values and returns their histogram.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// Snapshot is a point-in-time flat view of every series, keyed by the
// exposition series identity (`name` or `name{l="v",...}`; histograms
// expand to `_bucket{...,le="..."}`, `_sum`, and `_count` entries with
// cumulative bucket counts). Deterministic scenarios therefore diff to
// exact deltas.
type Snapshot map[string]float64

// Get returns the value at the exact series key (0 when absent).
func (s Snapshot) Get(key string) float64 { return s[key] }

// Delta returns s - prev per key: the metric movement between two
// snapshots. Keys absent from prev count from zero; keys absent from s
// yield their negated prev value (a series that disappeared).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range prev {
		if _, ok := s[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

// Keys returns the snapshot's series keys, sorted.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot captures every series (evaluating function gauges).
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot)
	for _, f := range r.families() {
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		for _, s := range ser {
			base := seriesKey(f.name, f.labels, s.labelVals, "", 0)
			switch f.kind {
			case KindCounter:
				out[base] = float64(s.c.Value())
			case KindGauge:
				if s.fn != nil {
					out[base] = s.fn()
				} else {
					out[base] = s.g.Value()
				}
			case KindHistogram:
				cum := make([]int64, len(s.h.buckets))
				total := s.h.cumulative(cum)
				for i, b := range s.h.bounds {
					out[seriesKey(f.name+"_bucket", f.labels, s.labelVals, "le", b)] = float64(cum[i])
				}
				out[seriesKey(f.name+"_bucket", f.labels, s.labelVals, "le", math.Inf(1))] = float64(total)
				out[seriesKey(f.name+"_sum", f.labels, s.labelVals, "", 0)] = s.h.Sum()
				out[seriesKey(f.name+"_count", f.labels, s.labelVals, "", 0)] = float64(total)
			}
		}
	}
	return out
}

// families returns the family list sorted by name (short lock).
func (r *Registry) families() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// seriesKey renders the canonical series identity; extraLabel (e.g.
// "le") is appended last, Prometheus-style.
func seriesKey(name string, labels, values []string, extraLabel string, extraVal float64) string {
	if len(labels) == 0 && extraLabel == "" {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraLabel != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraLabel)
		sb.WriteString(`="`)
		sb.WriteString(formatBound(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
