// End-to-end acceptance test for the telemetry pipeline: a live churn
// soak with the HTTP endpoint up, scraped over real HTTP while events
// flow, plus exact snapshot-diff assertions against controller state
// transitions. Lives in the external test package so it can pull in the
// instrumented layers (controller, fabric, churn) without a cycle.
package telemetry_test

import (
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"elmo/internal/churn"
	"elmo/internal/controller"
	"elmo/internal/dataplane"
	"elmo/internal/fabric"
	"elmo/internal/groupgen"
	"elmo/internal/placement"
	"elmo/internal/telemetry"
	"elmo/internal/topology"
)

func e2eTopo(t testing.TB) *topology.Topology {
	t.Helper()
	return topology.MustNew(topology.Config{
		Pods: 2, SpinesPerPod: 2, LeavesPerPod: 2, HostsPerLeaf: 4, CoresPerPlane: 1,
	})
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	return string(body)
}

// checkExposition validates the scrape as Prometheus text: every line
// is a comment or "series value", every TYPE is declared once, and
// every series belongs to a declared family.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if typed[parts[2]] {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !typed[base] {
			t.Fatalf("series %q has no TYPE declaration", name)
		}
	}
}

// TestScrapeDuringChurnSoak runs the full pipeline: an instrumented
// controller and fabric behind a live /metrics listener, a churn soak
// scraped over HTTP while it runs, and a final scrape asserted to carry
// the controller occupancy gauges, per-tier forward counters, and
// install-latency histogram buckets.
func TestScrapeDuringChurnSoak(t *testing.T) {
	topo := e2eTopo(t)
	cfg := controller.PaperConfig(0)
	ctrl, err := controller.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntime(reg)
	ctrl.EnableMetrics(reg)

	f := fabric.New(topo, cfg.SRuleCapacity)
	f.SetFailures(ctrl.Failures())
	f.SetMetrics(fabric.NewMetrics(reg))

	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/metrics"

	// One multicast send that crosses every tier, so the per-tier
	// forward counters are live before the soak.
	key := controller.GroupKey{Tenant: 1, Group: 9999}
	members := map[topology.HostID]controller.Role{
		topo.HostAt(0, 0):                 controller.RoleBoth,
		topo.HostAt(0, 1):                 controller.RoleBoth,
		topo.HostAt(1, 0):                 controller.RoleBoth,
		topo.HostAt(topo.LeafAt(1, 0), 0): controller.RoleBoth,
	}
	if _, err := ctrl.CreateGroup(key, members); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InstallGroup(ctrl, key); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Send(topo.HostAt(0, 0), dataplane.GroupAddr{VNI: 1, Group: 9999}, []byte("e2e")); err != nil {
		t.Fatal(err)
	}

	// The churn workload: bulk-install through the batch pipeline (the
	// install-latency histogram), then a soak scraped while it runs.
	dep, err := placement.Place(topo, placement.Config{
		Tenants: 8, VMsPerHost: 20, MinVMs: 5, MaxVMs: 12, MeanVMs: 8, P: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := groupgen.Generate(dep, groupgen.Config{TotalGroups: 120, MinSize: 5, Dist: groupgen.WVE, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := churn.Setup(ctrl, dep, gs, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := churn.Run(ctrl, dep, gs, churn.Config{
			Events: 4000, EventsPerSecond: 1000, Seed: 9, Workers: 2,
			Metrics: churn.NewMetrics(reg),
		})
		done <- err
	}()
	scrapes := 0
soak:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break soak
		default:
			checkExposition(t, scrape(t, url))
			scrapes++
		}
	}
	if scrapes == 0 {
		t.Fatal("soak finished before a single concurrent scrape")
	}

	body := scrape(t, url)
	checkExposition(t, body)
	for _, want := range []string{
		// Controller occupancy gauges vs Fmax.
		`elmo_controller_srule_occupancy{tier="leaf",stat="total"}`,
		`elmo_controller_srule_occupancy{tier="spine",stat="max"}`,
		"elmo_controller_srule_capacity",
		"elmo_controller_groups",
		// Per-tier forward counters from the send above.
		`elmo_dataplane_packets_total{tier="leaf"}`,
		`elmo_dataplane_packets_total{tier="spine"}`,
		`elmo_dataplane_packets_total{tier="core"}`,
		// Install-latency histogram buckets from the batch pipeline.
		`elmo_controller_op_duration_seconds_bucket{op="install",le="+Inf"}`,
		`elmo_controller_op_duration_seconds_count{op="install"}`,
		// Live churn counters.
		"elmo_churn_events_applied_total",
		// Runtime collector.
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("final scrape missing %q", want)
		}
	}

	// The install histogram observed exactly one commit per group.
	snap := reg.Snapshot()
	if got := snap.Get(`elmo_controller_op_duration_seconds_count{op="install"}`); got != float64(len(gs)) {
		t.Errorf("install observations = %v, want %d", got, len(gs))
	}
	if snap.Get("elmo_churn_events_applied_total") == 0 {
		t.Error("churn applied counter did not move")
	}
}

// TestSnapshotDiffExactOperationDeltas drives a deterministic operation
// sequence and asserts the snapshot diff reproduces it as exact counter
// deltas — the API tests lean on for precise assertions.
func TestSnapshotDiffExactOperationDeltas(t *testing.T) {
	topo := e2eTopo(t)
	ctrl, err := controller.New(topo, controller.PaperConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ctrl.EnableMetrics(reg)

	key := controller.GroupKey{Tenant: 2, Group: 1}
	if _, err := ctrl.CreateGroup(key, map[topology.HostID]controller.Role{
		topo.HostAt(0, 0): controller.RoleBoth,
		topo.HostAt(0, 1): controller.RoleBoth,
	}); err != nil {
		t.Fatal(err)
	}

	before := reg.Snapshot()
	joined := []topology.HostID{
		topo.HostAt(1, 0), topo.HostAt(1, 1), topo.HostAt(topo.LeafAt(1, 0), 0),
	}
	for _, h := range joined {
		if err := ctrl.Join(key, h, controller.RoleReceiver); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range joined[:2] {
		if err := ctrl.Leave(key, h, controller.RoleReceiver); err != nil {
			t.Fatal(err)
		}
	}
	delta := reg.Snapshot().Delta(before)

	for series, want := range map[string]float64{
		`elmo_controller_ops_total{op="join"}`:                            3,
		`elmo_controller_ops_total{op="leave"}`:                           2,
		`elmo_controller_op_duration_seconds_count{op="join"}`:            3,
		`elmo_controller_op_duration_seconds_count{op="leave"}`:           2,
		`elmo_controller_op_duration_seconds_bucket{op="join",le="+Inf"}`: 3,
	} {
		if got := delta.Get(series); got != want {
			t.Errorf("delta[%s] = %v, want %v", series, got, want)
		}
	}
	if got := delta.Get(`elmo_controller_ops_total{op="create"}`); got != 0 {
		t.Errorf("create delta = %v, want 0 (create happened before the baseline)", got)
	}
	// Joins and leaves recompute the tree each time: 5 recomputes.
	if got := delta.Get("elmo_controller_recomputes_total"); got != 5 {
		t.Errorf("recompute delta = %v, want 5", got)
	}

	// A second identical snapshot diffs to nothing.
	a := reg.Snapshot()
	if d := reg.Snapshot().Delta(a); len(d) != 0 {
		t.Errorf("idle delta not empty: %v", d)
	}
}
