package telemetry

import (
	"math"
	"testing"
)

// Edge-case coverage for Histogram.Quantile, pinning the conventions
// documented on the method: empty histograms, all-mass-in-overflow,
// and the q=0 / q=1 endpoints.
func TestQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4}

	t.Run("empty histogram", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", bounds)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); !math.IsNaN(got) {
				t.Errorf("Quantile(%v) on empty histogram = %v, want NaN", q, got)
			}
		}
	})

	t.Run("q outside [0,1]", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", bounds)
		h.Observe(1.5)
		for _, q := range []float64{-0.1, 1.1, math.NaN()} {
			if got := h.Quantile(q); !math.IsNaN(got) {
				t.Errorf("Quantile(%v) = %v, want NaN", q, got)
			}
		}
	})

	t.Run("all mass in overflow bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", bounds)
		for i := 0; i < 10; i++ {
			h.Observe(100) // far above the largest finite bound (4)
		}
		// No upper edge to interpolate toward: every quantile in (0,1]
		// clamps to the largest finite bound.
		for _, q := range []float64{0.1, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 4 {
				t.Errorf("Quantile(%v) all-overflow = %v, want 4", q, got)
			}
		}
	})

	t.Run("q=0 and q=1", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", bounds)
		h.Observe(0.5) // first bucket
		h.Observe(3)   // third bucket
		if got := h.Quantile(0); got != 0 {
			t.Errorf("Quantile(0) = %v, want 0 (lower edge of occupied first bucket)", got)
		}
		if got := h.Quantile(1); got != 4 {
			t.Errorf("Quantile(1) = %v, want 4 (upper bound of highest occupied bucket)", got)
		}
	})

	t.Run("q=0 with empty first bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", bounds)
		h.Observe(3)
		if got := h.Quantile(0); got != 1 {
			t.Errorf("Quantile(0) = %v, want 1 (empty first bucket snaps to its upper bound)", got)
		}
	})

	t.Run("interpolation inside a bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", bounds)
		// 4 observations in (1,2]: median rank 2 of 4 lands halfway up
		// the bucket.
		for i := 0; i < 4; i++ {
			h.Observe(1.5)
		}
		if got := h.Quantile(0.5); got != 1.5 {
			t.Errorf("Quantile(0.5) = %v, want 1.5", got)
		}
	})

	t.Run("no finite buckets", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", nil)
		h.Observe(1)
		if got := h.Quantile(0.5); !math.IsNaN(got) {
			t.Errorf("Quantile with no finite buckets = %v, want NaN", got)
		}
	})
}
