package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("elmo_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("elmo_test_level", "level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("elmo_test_ops_total", "ops") != c {
		t.Fatal("re-registering counter returned a different instrument")
	}
	if r.Gauge("elmo_test_level", "level") != g {
		t.Fatal("re-registering gauge returned a different instrument")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("elmo_test_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 100, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", got)
	}
	if got := h.Sum(); math.Abs(got-106.65) > 1e-9 {
		t.Fatalf("sum = %v, want 106.65", got)
	}
	cum := make([]int64, 4)
	total := h.cumulative(cum)
	// le=0.1 -> {0.05, 0.1}; le=1 -> +{0.5, 1}; le=10 -> +{5}; +Inf -> +{100}
	want := []int64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
}

func TestVecInterning(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("elmo_test_pkts_total", "pkts", "tier")
	leaf := v.With("leaf")
	leaf2 := v.With("leaf")
	if leaf != leaf2 {
		t.Fatal("With should intern identical label sets")
	}
	spine := v.With("spine")
	if leaf == spine {
		t.Fatal("distinct label sets must get distinct counters")
	}
	leaf.Add(3)
	spine.Inc()
	snap := r.Snapshot()
	if got := snap.Get(`elmo_test_pkts_total{tier="leaf"}`); got != 3 {
		t.Fatalf("leaf series = %v, want 3", got)
	}
	if got := snap.Get(`elmo_test_pkts_total{tier="spine"}`); got != 1 {
		t.Fatalf("spine series = %v, want 1", got)
	}
}

func TestRegistryMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("elmo_test_x_total", "x")
	for name, fn := range map[string]func(){
		"kind":   func() { r.Gauge("elmo_test_x_total", "x") },
		"labels": func() { r.CounterVec("elmo_test_x_total", "x", "tier") },
		"badname": func() {
			r.Counter("1bad name", "x")
		},
		"le-label": func() { r.CounterVec("elmo_test_y_total", "y", "le") },
		"arity": func() {
			v := r.CounterVec("elmo_test_z_total", "z", "a", "b")
			v.With("only-one")
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("elmo_test_fn", "fn", func() float64 { return 1 })
	r.GaugeFunc("elmo_test_fn", "fn", func() float64 { return 2 })
	if got := r.Snapshot().Get("elmo_test_fn"); got != 2 {
		t.Fatalf("gauge func = %v, want 2 (replaced)", got)
	}
	v := r.GaugeVec("elmo_test_fnv", "fnv", "tier")
	v.Func(func() float64 { return 7 }, "leaf")
	if got := r.Snapshot().Get(`elmo_test_fnv{tier="leaf"}`); got != 7 {
		t.Fatalf("labeled gauge func = %v, want 7", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("elmo_test_d_total", "d")
	h := r.Histogram("elmo_test_dh_seconds", "dh", []float64{1})
	before := r.Snapshot()
	c.Add(4)
	h.Observe(0.5)
	h.Observe(2)
	d := r.Snapshot().Delta(before)
	checks := map[string]float64{
		"elmo_test_d_total":                      4,
		`elmo_test_dh_seconds_bucket{le="1"}`:    1,
		`elmo_test_dh_seconds_bucket{le="+Inf"}`: 2,
		"elmo_test_dh_seconds_count":             2,
		"elmo_test_dh_seconds_sum":               2.5,
	}
	for k, want := range checks {
		if got := d.Get(k); got != want {
			t.Errorf("delta[%s] = %v, want %v", k, got, want)
		}
	}
	// Unchanged series are elided from the delta.
	if _, ok := d[`elmo_test_dh_seconds_bucket{le="1"}`]; !ok {
		t.Error("expected changed bucket key present")
	}
	d2 := r.Snapshot().Delta(r.Snapshot())
	if len(d2) != 0 {
		t.Fatalf("self-delta should be empty, got %v", d2)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("elmo_test_a_total", "a counter").Add(2)
	r.GaugeVec("elmo_test_b", "b gauge", "tier").With(`we"ird\v` + "\n").Set(1.5)
	h := r.Histogram("elmo_test_c_seconds", "c hist", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP elmo_test_a_total a counter",
		"# TYPE elmo_test_a_total counter",
		"elmo_test_a_total 2",
		"# TYPE elmo_test_b gauge",
		`elmo_test_b{tier="we\"ird\\v\n"} 1.5`,
		"# TYPE elmo_test_c_seconds histogram",
		`elmo_test_c_seconds_bucket{le="0.5"} 1`,
		`elmo_test_c_seconds_bucket{le="2"} 2`,
		`elmo_test_c_seconds_bucket{le="+Inf"} 2`,
		"elmo_test_c_seconds_sum 1.1",
		"elmo_test_c_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Families render in name order.
	ia := strings.Index(out, "elmo_test_a_total")
	ib := strings.Index(out, "elmo_test_b")
	ic := strings.Index(out, "elmo_test_c_seconds")
	if !(ia < ib && ib < ic) {
		t.Errorf("families out of order: a=%d b=%d c=%d", ia, ib, ic)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	r.Counter("elmo_test_served_total", "served").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	body := get("/metrics")
	for _, want := range []string{"elmo_test_served_total 1", "go_goroutines", "go_memstats_heap_inuse_bytes"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("pprof index not served")
	}
	if !strings.Contains(get("/"), "/metrics") {
		t.Error("index page not served")
	}
}

func TestConcurrentInstrumentsRace(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("elmo_test_race_total", "race", "w")
	h := r.Histogram("elmo_test_race_seconds", "race", LatencyBuckets)
	g := r.Gauge("elmo_test_race_level", "race")
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With(fmt.Sprint(w % 2)) // interning raced on purpose
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				g.Add(1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes while writers run
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.WriteText(io.Discard)
			_ = r.Snapshot()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot()
	total := snap.Get(`elmo_test_race_total{w="0"}`) + snap.Get(`elmo_test_race_total{w="1"}`)
	if want := float64(workers * iters); total != want {
		t.Fatalf("lost counter increments: %v, want %v", total, want)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("lost observations: %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != float64(workers*iters) {
		t.Fatalf("lost gauge adds: %v, want %v", got, workers*iters)
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("elmo_test_alloc_total", "alloc", "tier").With("leaf")
	g := r.Gauge("elmo_test_alloc_level", "alloc")
	h := r.Histogram("elmo_test_alloc_seconds", "alloc", LatencyBuckets)
	g.Set(1) // warm the CAS path
	if n := testing.AllocsPerRun(500, func() {
		c.Inc()
		c.Add(2)
		g.Add(0.5)
		h.Observe(3e-4)
	}); n != 0 {
		t.Fatalf("hot path allocated %v allocs/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("elmo_bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("elmo_bench_seconds", "b", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkVecWithCached(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("elmo_bench_vec_total", "b", "tier").With("leaf")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("elmo_test_quantile", "q", LinearBuckets(10, 10, 10)) // 10..100
	// Empty histogram has no answer.
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram produced a quantile")
	}
	// 100 uniform samples 1..100: median should interpolate near 50.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q < 40 || q > 60 {
		t.Fatalf("p50 = %v, want ~50", q)
	}
	if q := h.Quantile(0.99); q < 90 || q > 100 {
		t.Fatalf("p99 = %v, want ~99", q)
	}
	if q := h.Quantile(0); q > 10 {
		t.Fatalf("p0 = %v, want <= first bound", q)
	}
	// Everything in the overflow bucket degrades to the last bound.
	h2 := r.Histogram("elmo_test_quantile_inf", "q", []float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.9); q != 2 {
		t.Fatalf("overflow quantile = %v, want 2", q)
	}
	// Out-of-range q.
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q accepted")
	}
}
