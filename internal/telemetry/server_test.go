package telemetry

import (
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// TestServerIndex covers the endpoint directory at "/": it lists the
// built-in mounts plus anything registered later via Handle, and
// unknown paths 404 instead of silently serving the index.
func TestServerIndex(t *testing.T) {
	srv, err := Serve("localhost:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/debug/elmo/demo", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "demo")
	}))
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, index := get("/")
	if code != http.StatusOK {
		t.Fatalf("index status %d, want 200", code)
	}
	for _, want := range []string{"/metrics", "/debug/pprof/", "/debug/elmo/demo"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %s:\n%s", want, index)
		}
	}

	// Handle-mounted endpoints actually serve.
	if code, body := get("/debug/elmo/demo"); code != http.StatusOK || body != "demo" {
		t.Fatalf("mounted endpoint: status=%d body=%q", code, body)
	}

	// The catch-all index does not swallow unknown paths.
	if code, _ := get("/no/such/endpoint"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}

	// Endpoints() reports a sorted snapshot including late mounts.
	eps := srv.Endpoints()
	if !sort.StringsAreSorted(eps) {
		t.Fatalf("Endpoints not sorted: %v", eps)
	}
	found := false
	for _, e := range eps {
		if e == "/debug/elmo/demo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Endpoints missing late mount: %v", eps)
	}
}
