package header

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elmo/internal/bitmap"
	"elmo/internal/topology"
)

func paperLayout() Layout {
	return LayoutFor(topology.MustNew(topology.PaperExample()))
}

// paperHeader builds the header of Fig. 3b (sender Ha, R=0, one
// default leaf rule) on the paper's example topology.
func paperHeader() *Header {
	l := paperLayout()
	uleaf := &UpstreamRule{
		Down:      bitmap.FromPorts(l.LeafDown, 1), // deliver to Hb
		Up:        bitmap.New(l.LeafUp),
		Multipath: true,
	}
	uspine := &UpstreamRule{
		Down:      bitmap.New(l.SpineDown),
		Up:        bitmap.New(l.SpineUp),
		Multipath: true,
	}
	core := bitmap.FromPorts(l.CoreDown, 2, 3) // pods P2, P3
	dspineDef := bitmap.FromPorts(l.SpineDown, 0, 1)
	dleafDef := bitmap.FromPorts(l.LeafDown, 7)
	return &Header{
		ULeaf:  uleaf,
		USpine: uspine,
		Core:   &core,
		DSpine: []PRule{
			{Switches: []uint16{2}, Bitmap: bitmap.FromPorts(l.SpineDown, 1)}, // P2 -> L5
		},
		DSpineDefault: &dspineDef,
		DLeaf: []PRule{
			{Switches: []uint16{0, 6}, Bitmap: bitmap.FromPorts(l.LeafDown, 0, 1)},
			{Switches: []uint16{5}, Bitmap: bitmap.FromPorts(l.LeafDown, 2)},
		},
		DLeafDefault: &dleafDef,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := paperLayout()
	h := paperHeader()
	wire, err := Encode(l, h)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(wire) != EncodedSize(l, h) {
		t.Fatalf("EncodedSize = %d, wire = %d", EncodedSize(l, h), len(wire))
	}
	dec, n, err := Decode(l, wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("decode consumed %d of %d", n, len(wire))
	}
	assertHeadersEqual(t, h, dec)
}

func assertHeadersEqual(t *testing.T, want, got *Header) {
	t.Helper()
	cmpUp := func(name string, a, b *UpstreamRule) {
		if (a == nil) != (b == nil) {
			t.Fatalf("%s presence mismatch", name)
		}
		if a == nil {
			return
		}
		if !a.Down.Equal(b.Down) || !a.Up.Equal(b.Up) || a.Multipath != b.Multipath {
			t.Fatalf("%s mismatch: %+v vs %+v", name, a, b)
		}
	}
	cmpUp("ULeaf", want.ULeaf, got.ULeaf)
	cmpUp("USpine", want.USpine, got.USpine)
	if (want.Core == nil) != (got.Core == nil) {
		t.Fatal("Core presence mismatch")
	}
	if want.Core != nil && !want.Core.Equal(*got.Core) {
		t.Fatalf("Core mismatch: %s vs %s", want.Core, got.Core)
	}
	cmpRules := func(name string, a, b []PRule) {
		if len(a) != len(b) {
			t.Fatalf("%s rule count %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if len(a[i].Switches) != len(b[i].Switches) {
				t.Fatalf("%s[%d] switch count mismatch", name, i)
			}
			for j := range a[i].Switches {
				if a[i].Switches[j] != b[i].Switches[j] {
					t.Fatalf("%s[%d] switch %d mismatch", name, i, j)
				}
			}
			if !a[i].Bitmap.Equal(b[i].Bitmap) {
				t.Fatalf("%s[%d] bitmap mismatch", name, i)
			}
		}
	}
	cmpRules("DSpine", want.DSpine, got.DSpine)
	cmpRules("DLeaf", want.DLeaf, got.DLeaf)
	cmpDef := func(name string, a, b *bitmap.Bitmap) {
		if (a == nil) != (b == nil) {
			t.Fatalf("%s default presence mismatch", name)
		}
		if a != nil && !a.Equal(*b) {
			t.Fatalf("%s default mismatch", name)
		}
	}
	cmpDef("DSpine", want.DSpineDefault, got.DSpineDefault)
	cmpDef("DLeaf", want.DLeafDefault, got.DLeafDefault)
}

func TestEmptyHeader(t *testing.T) {
	l := paperLayout()
	wire, err := Encode(l, &Header{})
	if err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if len(wire) != 1 || wire[0] != TagEnd {
		t.Fatalf("empty header wire = %v", wire)
	}
	dec, _, err := Decode(l, wire)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if dec.ULeaf != nil || dec.Core != nil || len(dec.DLeaf) != 0 {
		t.Fatal("empty header decoded non-empty")
	}
}

func TestEncodeRejectsBadWidths(t *testing.T) {
	l := paperLayout()
	badCore := bitmap.New(l.CoreDown + 1)
	if _, err := Encode(l, &Header{Core: &badCore}); err == nil {
		t.Fatal("expected width error for core")
	}
	if _, err := Encode(l, &Header{DLeaf: []PRule{{Switches: []uint16{1}, Bitmap: bitmap.New(3)}}}); err == nil {
		t.Fatal("expected width error for leaf rule")
	}
	if _, err := Encode(l, &Header{DLeaf: []PRule{{Bitmap: bitmap.New(l.LeafDown)}}}); err == nil {
		t.Fatal("expected error for rule without switches")
	}
	if _, err := Encode(l, &Header{ULeaf: &UpstreamRule{Down: bitmap.New(1), Up: bitmap.New(l.LeafUp)}}); err == nil {
		t.Fatal("expected width error for upstream rule")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	l := paperLayout()
	good, err := Encode(l, paperHeader())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"no tagend":    good[:len(good)-1],
		"unknown tag":  {0x77, TagEnd},
		"out of order": append([]byte{TagCore, 0x00}, append([]byte{TagULeaf}, good[1:]...)...),
		"truncated":    good[:5],
	}
	for name, data := range cases {
		if _, _, err := Decode(l, data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestDecodeRejectsDuplicateSection(t *testing.T) {
	l := paperLayout()
	core := bitmap.FromPorts(l.CoreDown, 1)
	wire, err := Encode(l, &Header{Core: &core})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the core section: tags must strictly increase.
	dup := append([]byte{}, wire[:len(wire)-1]...)
	dup = append(dup, wire[:len(wire)-1]...)
	dup = append(dup, TagEnd)
	if _, _, err := Decode(l, dup); err == nil {
		t.Fatal("expected error for duplicate section")
	}
}

func TestConsumeUpstreamPopsSection(t *testing.T) {
	l := paperLayout()
	h := paperHeader()
	wire, err := Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	rule, rest, err := ConsumeUpstream(l, TagULeaf, wire)
	if err != nil {
		t.Fatalf("consume u-leaf: %v", err)
	}
	if !rule.Multipath || !rule.Down.Test(1) || rule.Down.PopCount() != 1 {
		t.Fatalf("u-leaf rule = %+v", rule)
	}
	if len(rest) >= len(wire) {
		t.Fatal("popping did not shrink the stream")
	}
	// The popped stream must decode as a header without ULeaf.
	dec, _, err := Decode(l, rest)
	if err != nil {
		t.Fatalf("decode popped: %v", err)
	}
	if dec.ULeaf != nil {
		t.Fatal("ULeaf still present after pop")
	}
	if dec.USpine == nil || dec.Core == nil {
		t.Fatal("later sections lost by pop")
	}
}

func TestConsumeCore(t *testing.T) {
	l := paperLayout()
	h := paperHeader()
	wire, _ := Encode(l, h)
	_, rest, err := ConsumeUpstream(l, TagULeaf, wire)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err = ConsumeUpstream(l, TagUSpine, rest)
	if err != nil {
		t.Fatal(err)
	}
	pods, rest, err := ConsumeCore(l, rest)
	if err != nil {
		t.Fatalf("consume core: %v", err)
	}
	if !pods.Test(2) || !pods.Test(3) || pods.PopCount() != 2 {
		t.Fatalf("core pods = %s", pods)
	}
	dec, _, err := Decode(l, rest)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Core != nil || len(dec.DSpine) != 1 {
		t.Fatal("core pop corrupted stream")
	}
}

// downstreamOnly encodes just the downstream sections of h.
func downstreamOnly(t *testing.T, l Layout, h *Header) []byte {
	t.Helper()
	wire, err := Encode(l, &Header{
		DSpine: h.DSpine, DSpineDefault: h.DSpineDefault,
		DLeaf: h.DLeaf, DLeafDefault: h.DLeafDefault,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestConsumeDownstreamMatch(t *testing.T) {
	l := paperLayout()
	h := paperHeader()
	wire := downstreamOnly(t, l, h)

	// Pod 2 matches the first spine rule.
	m, rest, err := ConsumeDownstream(l, TagDSpine, 2, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Matched || !m.Bitmap.Test(1) || m.Bitmap.PopCount() != 1 {
		t.Fatalf("pod 2 match = %+v", m)
	}
	if !m.HasDefault {
		t.Fatal("default not reported")
	}
	// Pod 0 does not match; default present.
	m0, _, err := ConsumeDownstream(l, TagDSpine, 0, wire)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Matched {
		t.Fatal("pod 0 unexpectedly matched")
	}
	if !m0.HasDefault || m0.Default.PopCount() != 2 {
		t.Fatalf("pod 0 default = %+v", m0)
	}
	// After popping the spine section, leaf 6 matches the shared rule.
	mLeaf, rest2, err := ConsumeDownstream(l, TagDLeaf, 6, rest)
	if err != nil {
		t.Fatal(err)
	}
	if !mLeaf.Matched || !mLeaf.Bitmap.Test(0) || !mLeaf.Bitmap.Test(1) {
		t.Fatalf("leaf 6 match = %+v", mLeaf)
	}
	if tag, _ := PeekTag(rest2); tag != TagEnd {
		t.Fatalf("after leaf pop, tag = %#x, want TagEnd", tag)
	}
}

func TestConsumeDownstreamFirstMatchWins(t *testing.T) {
	l := paperLayout()
	h := &Header{
		DLeaf: []PRule{
			{Switches: []uint16{7}, Bitmap: bitmap.FromPorts(l.LeafDown, 0)},
			{Switches: []uint16{7}, Bitmap: bitmap.FromPorts(l.LeafDown, 1)},
		},
	}
	wire := downstreamOnly(t, l, h)
	m, _, err := ConsumeDownstream(l, TagDLeaf, 7, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Matched || !m.Bitmap.Test(0) || m.Bitmap.Test(1) {
		t.Fatal("first-match semantics violated")
	}
}

func TestSkipSectionAndStreamLen(t *testing.T) {
	l := paperLayout()
	h := paperHeader()
	wire, _ := Encode(l, h)
	n, err := StreamLen(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("StreamLen = %d, want %d", n, len(wire))
	}
	tags := []byte{}
	rest := wire
	for {
		tag, r, err := SkipSection(l, rest)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, tag)
		rest = r
		if tag == TagEnd {
			break
		}
	}
	want := []byte{TagULeaf, TagUSpine, TagCore, TagDSpine, TagDLeaf, TagEnd}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}
}

func randomHeader(l Layout, rng *rand.Rand) *Header {
	randBM := func(w int) bitmap.Bitmap {
		b := bitmap.New(w)
		for i := 0; i < w; i++ {
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		return b
	}
	h := &Header{}
	if rng.Intn(2) == 1 {
		h.ULeaf = &UpstreamRule{Down: randBM(l.LeafDown), Up: randBM(l.LeafUp), Multipath: rng.Intn(2) == 1}
	}
	if rng.Intn(2) == 1 {
		h.USpine = &UpstreamRule{Down: randBM(l.SpineDown), Up: randBM(l.SpineUp), Multipath: rng.Intn(2) == 1}
	}
	if rng.Intn(2) == 1 {
		c := randBM(l.CoreDown)
		h.Core = &c
	}
	genRules := func(width, maxID int) []PRule {
		n := rng.Intn(4)
		rules := make([]PRule, 0, n)
		for i := 0; i < n; i++ {
			k := rng.Intn(3) + 1
			ids := make([]uint16, k)
			for j := range ids {
				ids[j] = uint16(rng.Intn(maxID))
			}
			rules = append(rules, PRule{Switches: ids, Bitmap: randBM(width)})
		}
		return rules
	}
	h.DSpine = genRules(l.SpineDown, l.CoreDown)
	if rng.Intn(2) == 1 {
		d := randBM(l.SpineDown)
		h.DSpineDefault = &d
	}
	h.DLeaf = genRules(l.LeafDown, l.CoreDown*l.SpineDown)
	if rng.Intn(2) == 1 {
		d := randBM(l.LeafDown)
		h.DLeafDefault = &d
	}
	return h
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	layouts := []Layout{
		paperLayout(),
		LayoutFor(topology.MustNew(topology.FacebookFabric())),
	}
	f := func(seed int64, which bool) bool {
		l := layouts[0]
		if which {
			l = layouts[1]
		}
		rng := rand.New(rand.NewSource(seed))
		h := randomHeader(l, rng)
		wire, err := Encode(l, h)
		if err != nil {
			return false
		}
		if len(wire) != EncodedSize(l, h) {
			return false
		}
		dec, n, err := Decode(l, wire)
		if err != nil || n != len(wire) {
			return false
		}
		re, err := Encode(l, dec)
		if err != nil || len(re) != len(wire) {
			return false
		}
		for i := range re {
			if re[i] != wire[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Fuzz-ish: random bytes must produce an error or a header, never a
	// panic or an out-of-bounds read.
	l := paperLayout()
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(l, data)
		StreamLen(l, data)
		ConsumeDownstream(l, TagDLeaf, 3, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	l := paperLayout()
	h := paperHeader()
	c := h.Clone()
	assertHeadersEqual(t, h, c)
	// Mutating the clone must not affect the original.
	c.DLeaf[0].Bitmap.Set(5)
	c.ULeaf.Down.Set(7)
	if h.DLeaf[0].Bitmap.Test(5) || h.ULeaf.Down.Test(7) {
		t.Fatal("Clone shares storage with original")
	}
	_ = l
}

func TestNumPRules(t *testing.T) {
	h := paperHeader()
	s, lf := h.NumPRules()
	if s != 2 || lf != 3 {
		t.Fatalf("NumPRules = %d,%d want 2,3", s, lf)
	}
}

func BenchmarkEncodePaperHeader(b *testing.B) {
	l := paperLayout()
	h := paperHeader()
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEncode(buf[:0], l, h)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsumeDownstreamLeaf(b *testing.B) {
	l := LayoutFor(topology.MustNew(topology.FacebookFabric()))
	rules := make([]PRule, 30)
	for i := range rules {
		rules[i] = PRule{Switches: []uint16{uint16(i * 7)}, Bitmap: bitmap.FromPorts(l.LeafDown, i%l.LeafDown)}
	}
	wire, err := Encode(l, &Header{DLeaf: rules})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Worst case: match the last rule.
		if _, _, err := ConsumeDownstream(l, TagDLeaf, 29*7, wire); err != nil {
			b.Fatal(err)
		}
	}
}
