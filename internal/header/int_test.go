package header

import (
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/topology"
)

func TestINTEncodeDecodeRoundTrip(t *testing.T) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	h := &Header{
		INTEnabled: true,
		INT: []INTRecord{
			{Tier: INTTierLeaf, ID: 3, Meta: 60},
			{Tier: INTTierCore, ID: 1, Meta: 58},
		},
	}
	wire, err := Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != EncodedSize(l, h) {
		t.Fatalf("size mismatch: %d vs %d", len(wire), EncodedSize(l, h))
	}
	dec, _, err := Decode(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.INTEnabled || len(dec.INT) != 2 {
		t.Fatalf("decoded INT = %+v", dec.INT)
	}
	if dec.INT[0] != h.INT[0] || dec.INT[1] != h.INT[1] {
		t.Fatalf("records mismatch: %+v", dec.INT)
	}
}

func TestINTEmptySection(t *testing.T) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	wire, err := Encode(l, &Header{INTEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decode(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.INTEnabled || len(dec.INT) != 0 {
		t.Fatalf("empty INT mishandled: %+v", dec)
	}
	records, err := ExtractINT(l, wire)
	if err != nil || len(records) != 0 {
		t.Fatalf("ExtractINT = %v, %v", records, err)
	}
}

func TestAppendINTRecord(t *testing.T) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	core := bitmap.FromPorts(l.CoreDown, 2)
	h := &Header{Core: &core, INTEnabled: true}
	wire, err := Encode(l, h)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]byte{}, wire...)
	r1 := INTRecord{Tier: INTTierLeaf, ID: 7, Meta: 63}
	s1, err := AppendINTRecord(l, wire, r1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(wire)+4 {
		t.Fatalf("grew by %d, want 4", len(s1)-len(wire))
	}
	// The input stream must be untouched (shared between copies).
	for i := range orig {
		if wire[i] != orig[i] {
			t.Fatal("AppendINTRecord mutated its input")
		}
	}
	r2 := INTRecord{Tier: INTTierSpine, ID: 2, Meta: 62}
	s2, err := AppendINTRecord(l, s1, r2)
	if err != nil {
		t.Fatal(err)
	}
	records, err := ExtractINT(l, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0] != r1 || records[1] != r2 {
		t.Fatalf("records = %+v", records)
	}
	// The stream must still decode after popping the core section.
	_, rest, err := SkipSection(l, s2)
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := ExtractINT(l, rest)
	if err != nil || len(recs2) != 2 {
		t.Fatalf("after pop: %v %v", recs2, err)
	}
}

func TestAppendINTRecordWithoutSection(t *testing.T) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	core := bitmap.FromPorts(l.CoreDown, 1)
	wire, err := Encode(l, &Header{Core: &core})
	if err != nil {
		t.Fatal(err)
	}
	out, err := AppendINTRecord(l, wire, INTRecord{Tier: 1, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(wire) {
		t.Fatal("record added to a stream without an INT section")
	}
}

func TestINTSectionFullDropsRecord(t *testing.T) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	records := make([]INTRecord, 255)
	for i := range records {
		records[i] = INTRecord{Tier: 1, ID: uint16(i)}
	}
	wire, err := Encode(l, &Header{INTEnabled: true, INT: records})
	if err != nil {
		t.Fatal(err)
	}
	out, err := AppendINTRecord(l, wire, INTRecord{Tier: 2, ID: 999})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(wire) {
		t.Fatal("overfull INT section grew")
	}
}
