package header_test

import (
	"fmt"

	"elmo/internal/bitmap"
	"elmo/internal/header"
	"elmo/internal/topology"
)

// ExampleConsumeDownstream walks the paper's forwarding pipeline by
// hand: a downstream spine pops its section (matching its pod's
// p-rule), then the receiver leaf pops the leaf section, leaving only
// the terminator for the host.
func ExampleConsumeDownstream() {
	topo := topology.MustNew(topology.PaperExample())
	l := header.LayoutFor(topo)
	h := &header.Header{
		DSpine: []header.PRule{
			{Switches: []uint16{2}, Bitmap: bitmap.FromPorts(l.SpineDown, 1)},
		},
		DLeaf: []header.PRule{
			{Switches: []uint16{5}, Bitmap: bitmap.FromPorts(l.LeafDown, 0)},
		},
	}
	stream, _ := header.Encode(l, h)
	fmt.Printf("at core exit: %d bytes\n", len(stream))

	// Spine of pod 2 matches its p-rule and pops the spine section.
	m, rest, _ := header.ConsumeDownstream(l, header.TagDSpine, 2, stream)
	fmt.Printf("spine pod 2: forward to leaf ports %v, %d bytes remain\n",
		m.Bitmap.Ports(), len(rest))

	// Leaf 5 matches the leaf section and delivers to host ports.
	m, rest, _ = header.ConsumeDownstream(l, header.TagDLeaf, 5, rest)
	fmt.Printf("leaf 5: deliver to host ports %v, %d bytes remain\n",
		m.Bitmap.Ports(), len(rest))
	// Output:
	// at core exit: 15 bytes
	// spine pod 2: forward to leaf ports [1], 8 bytes remain
	// leaf 5: deliver to host ports [0], 1 bytes remain
}
