package header

import (
	"testing"

	"elmo/internal/bitmap"
	"elmo/internal/topology"
)

// Fuzz targets for the wire parsers: any byte string must produce an
// error or a valid structure — never a panic, out-of-bounds read, or
// a header that re-encodes to something that fails to parse. Run with
// `go test -fuzz FuzzDecode ./internal/header` for a real fuzzing
// session; under plain `go test` the seed corpus below runs as tests.

func fuzzSeeds(f *testing.F) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	hdrs := []*Header{
		{},
		func() *Header {
			core := bitmap.FromPorts(l.CoreDown, 1, 3)
			return &Header{Core: &core}
		}(),
		{
			ULeaf: &UpstreamRule{Down: bitmap.FromPorts(l.LeafDown, 1), Up: bitmap.New(l.LeafUp), Multipath: true},
			DLeaf: []PRule{{Switches: []uint16{3, 4}, Bitmap: bitmap.FromPorts(l.LeafDown, 0, 7)}},
		},
		{INTEnabled: true, INT: []INTRecord{{Tier: 1, ID: 9, Meta: 3}}},
	}
	for _, h := range hdrs {
		wire, err := Encode(l, h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{TagEnd})
	f.Add([]byte{0x77, 0x01, 0x02})
	f.Add([]byte{TagDLeaf, 0xff, 0x00})
}

func FuzzDecode(f *testing.F) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := Decode(l, data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// A successfully decoded header must re-encode and re-decode.
		wire, err := Encode(l, h)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, _, err := Decode(l, wire); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzScanPipeline(f *testing.F) {
	l := LayoutFor(topology.MustNew(topology.PaperExample()))
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// The hot-path scanners must agree with Decode about validity.
		if n, err := StreamLen(l, data); err == nil {
			if _, _, derr := Decode(l, data[:n]); derr != nil {
				// StreamLen is purely structural; Decode may still
				// reject semantic violations (tag order). That is the
				// only allowed divergence.
				_ = derr
			}
		}
		ConsumeDownstream(l, TagDLeaf, 5, data)
		ConsumeDownstream(l, TagDSpine, 1, data)
		ConsumeUpstream(l, TagULeaf, data)
		ConsumeCore(l, data)
		ExtractINT(l, data)
		AppendINTRecord(l, data, INTRecord{Tier: 1, ID: 2, Meta: 3})
	})
}

func FuzzParseOuter(f *testing.F) {
	pkt, _ := AppendOuter(nil, OuterFields{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: GroupIP(5), VNI: 9,
		ElmoVersion: Version, TTL: 64,
	}, 4)
	f.Add(append(pkt, 1, 2, 3, 4))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fields, payload, err := ParseOuter(data)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatal("payload longer than frame")
		}
		// Valid outers must round-trip.
		re, err := AppendOuter(nil, fields, len(payload))
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if len(re) != OuterSize {
			t.Fatalf("outer size %d", len(re))
		}
	})
}
