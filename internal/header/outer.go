package header

import (
	"encoding/binary"
	"fmt"

	"elmo/internal/topology"
)

// This file implements the outer encapsulation Elmo rides on (paper
// §2, §7 "path to deployment"): Ethernet / IPv4 / UDP / VXLAN, with
// real byte layouts. The Elmo section stream follows the VXLAN header;
// the Elmo version is carried in VXLAN's first reserved byte, so the
// section stream itself can be popped by pure slicing at each hop.

// Encapsulation sizes in bytes.
const (
	EthernetSize = 14
	IPv4Size     = 20
	UDPSize      = 8
	VXLANSize    = 8
	// OuterSize is the total outer-header overhead preceding the Elmo
	// section stream.
	OuterSize = EthernetSize + IPv4Size + UDPSize + VXLANSize
	// VXLANPort is the IANA-assigned VXLAN UDP destination port.
	VXLANPort = 4789
	// ethertype for IPv4
	etherTypeIPv4 = 0x0800
	protoUDP      = 17
)

// OuterFields are the mutable fields of the outer encapsulation; the
// rest (ethertype, protocol, ports, checksums, lengths) are fixed or
// derived.
type OuterFields struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   [4]byte
	// SrcPort provides flow entropy for the fabric's ECMP hashing, as
	// VXLAN deployments do.
	SrcPort uint16
	// VNI is the 24-bit tenant network identifier; it gives Elmo
	// address-space isolation (§1): group IPs are scoped per VNI.
	VNI uint32
	// ElmoVersion is carried in the VXLAN reserved byte; zero means
	// "plain VXLAN, no Elmo section stream".
	ElmoVersion byte
	// TTL of the outer IPv4 header.
	TTL byte
}

// AppendOuter appends the 50-byte outer encapsulation for a payload of
// the given length (Elmo section stream + inner frame) to dst.
func AppendOuter(dst []byte, f OuterFields, payloadLen int) ([]byte, error) {
	if f.VNI >= 1<<24 {
		return dst, fmt.Errorf("header: VNI %d exceeds 24 bits", f.VNI)
	}
	ipLen := IPv4Size + UDPSize + VXLANSize + payloadLen
	if ipLen > 0xffff {
		return dst, fmt.Errorf("header: IPv4 total length %d overflows", ipLen)
	}
	ttl := f.TTL
	if ttl == 0 {
		ttl = 64
	}
	// Ethernet
	dst = append(dst, f.DstMAC[:]...)
	dst = append(dst, f.SrcMAC[:]...)
	dst = binary.BigEndian.AppendUint16(dst, etherTypeIPv4)
	// IPv4
	ipStart := len(dst)
	dst = append(dst, 0x45, 0) // version 4, IHL 5, DSCP 0
	dst = binary.BigEndian.AppendUint16(dst, uint16(ipLen))
	dst = append(dst, 0, 0, 0x40, 0) // ident 0, flags DF, frag 0
	dst = append(dst, ttl, protoUDP, 0, 0)
	dst = append(dst, f.SrcIP[:]...)
	dst = append(dst, f.DstIP[:]...)
	cs := ipv4Checksum(dst[ipStart : ipStart+IPv4Size])
	binary.BigEndian.PutUint16(dst[ipStart+10:], cs)
	// UDP (checksum 0: legal over IPv4 and conventional for VXLAN)
	dst = binary.BigEndian.AppendUint16(dst, f.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, VXLANPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(UDPSize+VXLANSize+payloadLen))
	dst = append(dst, 0, 0)
	// VXLAN: flags (I bit), reserved[0]=Elmo version, VNI, reserved
	dst = append(dst, 0x08, f.ElmoVersion, 0, 0)
	dst = append(dst, byte(f.VNI>>16), byte(f.VNI>>8), byte(f.VNI))
	dst = append(dst, 0)
	return dst, nil
}

// ParseOuter validates and parses the outer encapsulation, returning
// the fields and the payload (Elmo section stream + inner frame).
func ParseOuter(data []byte) (OuterFields, []byte, error) {
	var f OuterFields
	if len(data) < OuterSize {
		return f, nil, fmt.Errorf("header: outer truncated (%d bytes)", len(data))
	}
	copy(f.DstMAC[:], data[0:6])
	copy(f.SrcMAC[:], data[6:12])
	if et := binary.BigEndian.Uint16(data[12:]); et != etherTypeIPv4 {
		return f, nil, fmt.Errorf("header: ethertype %#x, want IPv4", et)
	}
	ip := data[EthernetSize:]
	if ip[0] != 0x45 {
		return f, nil, fmt.Errorf("header: IPv4 version/IHL %#x, want 0x45", ip[0])
	}
	if ip[9] != protoUDP {
		return f, nil, fmt.Errorf("header: IP protocol %d, want UDP", ip[9])
	}
	if cs := ipv4Checksum(ip[:IPv4Size]); cs != 0 {
		return f, nil, fmt.Errorf("header: bad IPv4 checksum")
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:]))
	if EthernetSize+totalLen > len(data) {
		return f, nil, fmt.Errorf("header: IPv4 length %d exceeds frame", totalLen)
	}
	f.TTL = ip[8]
	copy(f.SrcIP[:], ip[12:16])
	copy(f.DstIP[:], ip[16:20])
	udp := data[EthernetSize+IPv4Size:]
	f.SrcPort = binary.BigEndian.Uint16(udp)
	if dp := binary.BigEndian.Uint16(udp[2:]); dp != VXLANPort {
		return f, nil, fmt.Errorf("header: UDP dst port %d, want %d", dp, VXLANPort)
	}
	vx := data[EthernetSize+IPv4Size+UDPSize:]
	if vx[0]&0x08 == 0 {
		return f, nil, fmt.Errorf("header: VXLAN I flag not set")
	}
	f.ElmoVersion = vx[1]
	f.VNI = uint32(vx[4])<<16 | uint32(vx[5])<<8 | uint32(vx[6])
	end := EthernetSize + totalLen
	return f, data[OuterSize:end], nil
}

// ipv4Checksum computes the Internet checksum over hdr. Computing it
// over a header whose checksum field holds the correct value yields 0.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// HostIP returns the underlay IPv4 address for a host:
// 10.<pod>.<leaf-in-pod>.<port+1>. Panics if the topology exceeds the
// /8 addressing plan (paper-scale fabrics fit comfortably).
func HostIP(t *topology.Topology, h topology.HostID) [4]byte {
	pod := int(t.HostPod(h))
	leaf := t.LeafIndexInPod(t.HostLeaf(h))
	port := t.HostPort(h)
	if pod > 255 || leaf > 255 || port > 253 {
		panic("header: topology exceeds 10/8 addressing plan")
	}
	return [4]byte{10, byte(pod), byte(leaf), byte(port + 1)}
}

// GroupIP returns the provider-scoped multicast address for a group
// index: 239.<g23-16>.<g15-8>.<g7-0>. Group indices are scoped per
// tenant VNI, so tenants choose group addresses independently
// (address-space isolation).
func GroupIP(group uint32) [4]byte {
	if group >= 1<<24 {
		panic(fmt.Sprintf("header: group index %d exceeds 24 bits", group))
	}
	return [4]byte{239, byte(group >> 16), byte(group >> 8), byte(group)}
}

// GroupFromIP inverts GroupIP. The boolean reports whether ip is in
// the 239/8 administratively-scoped block this package allocates from.
func GroupFromIP(ip [4]byte) (uint32, bool) {
	if ip[0] != 239 {
		return 0, false
	}
	return uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3]), true
}

// HostMAC returns a locally-administered MAC for a host.
func HostMAC(h topology.HostID) [6]byte {
	return [6]byte{0x02, 0x65, 0x6c, byte(h >> 16), byte(h >> 8), byte(h)}
}
