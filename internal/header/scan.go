package header

import (
	"encoding/binary"
	"fmt"

	"elmo/internal/bitmap"
)

// This file is the data-plane hot path: the match-and-set parsing a
// PISA switch performs on the Elmo section stream (paper §4.1). A
// switch peeks at the front tag, consumes exactly its own layer's
// section (matching a p-rule as it scans, stopping at the first
// match), and forwards the suffix — popping is slicing, never copying.

// PeekTag returns the tag at the front of the section stream.
func PeekTag(data []byte) (byte, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("header: empty section stream")
	}
	return data[0], nil
}

// upstreamSectionLen returns the byte length of an upstream section
// body (flags + two bitmaps).
func upstreamSectionLen(downW, upW int) int {
	return 1 + bitmap.ByteLen(downW) + bitmap.ByteLen(upW)
}

// ConsumeUpstream parses the upstream section with the given tag
// (TagULeaf or TagUSpine) at the front of data and returns the rule
// and the remaining stream (the popped header the switch forwards).
func ConsumeUpstream(l Layout, tag byte, data []byte) (UpstreamRule, []byte, error) {
	var r UpstreamRule
	rest, err := ConsumeUpstreamInto(l, tag, data, &r)
	if err != nil {
		return UpstreamRule{}, nil, err
	}
	return r, rest, nil
}

// ConsumeUpstreamInto is ConsumeUpstream decoding into r, reusing its
// bitmap storage — the allocation-free form the data-plane fast path
// (dataplane.ProcessInto) calls per packet with a caller-owned scratch
// rule. The decoded rule is valid until the next call with the same r.
func ConsumeUpstreamInto(l Layout, tag byte, data []byte, r *UpstreamRule) ([]byte, error) {
	downW, upW, err := upstreamWidths(l, tag)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 || data[0] != tag {
		return nil, fmt.Errorf("header: expected tag %#x at front", tag)
	}
	body := data[1:]
	need := upstreamSectionLen(downW, upW)
	if len(body) < need {
		return nil, fmt.Errorf("header: truncated upstream section")
	}
	flags := data[1]
	if flags&^upMultipathBit != 0 {
		return nil, fmt.Errorf("header: unknown upstream flags %#x", flags)
	}
	off := 2
	n, err := bitmap.FromWireInto(downW, data[off:], &r.Down)
	if err != nil {
		return nil, fmt.Errorf("header: upstream down: %w", err)
	}
	off += n
	n, err = bitmap.FromWireInto(upW, data[off:], &r.Up)
	if err != nil {
		return nil, fmt.Errorf("header: upstream up: %w", err)
	}
	off += n
	r.Multipath = flags&upMultipathBit != 0
	return data[off:], nil
}

func upstreamWidths(l Layout, tag byte) (downW, upW int, err error) {
	switch tag {
	case TagULeaf:
		return l.LeafDown, l.LeafUp, nil
	case TagUSpine:
		return l.SpineDown, l.SpineUp, nil
	default:
		return 0, 0, fmt.Errorf("header: tag %#x is not an upstream section", tag)
	}
}

// ConsumeCore parses the core section at the front of data, returning
// the pods bitmap and the remaining stream.
func ConsumeCore(l Layout, data []byte) (bitmap.Bitmap, []byte, error) {
	var bm bitmap.Bitmap
	rest, err := ConsumeCoreInto(l, data, &bm)
	if err != nil {
		return bitmap.Bitmap{}, nil, err
	}
	return bm, rest, nil
}

// ConsumeCoreInto is ConsumeCore decoding the pods bitmap into bm,
// reusing its word storage (allocation-free once warm).
func ConsumeCoreInto(l Layout, data []byte, bm *bitmap.Bitmap) ([]byte, error) {
	if len(data) == 0 || data[0] != TagCore {
		return nil, fmt.Errorf("header: expected core section at front")
	}
	n, err := bitmap.FromWireInto(l.CoreDown, data[1:], bm)
	if err != nil {
		return nil, err
	}
	return data[1+n:], nil
}

// DownstreamMatch is the result of scanning a downstream section for a
// switch's identifier, mirroring the parser metadata of §4.1: a
// matched bitmap, or a default bitmap, or neither (the switch should
// then consult its s-rule group table — NoMatch with HasDefault false).
type DownstreamMatch struct {
	// Matched is true if a p-rule listed the switch identifier;
	// Bitmap then holds its output ports.
	Matched bool
	Bitmap  bitmap.Bitmap
	// HasDefault is true if the section carries a default p-rule;
	// Default then holds its output ports. Per the paper, the default
	// applies only when no p-rule matched AND no s-rule exists.
	HasDefault bool
	Default    bitmap.Bitmap
}

// ConsumeDownstream scans the downstream section with the given tag
// (TagDSpine or TagDLeaf) for the switch identifier id, and returns
// the match result plus the remaining stream after popping the entire
// section (D2d: a packet visits each layer once, so the whole layer's
// section is removed when forwarding onward).
//
// The scan stops decoding bitmaps at the first matching rule; the
// remaining rules are skipped structurally (length arithmetic only),
// which is what keeps per-packet work bounded on a line-rate parser.
func ConsumeDownstream(l Layout, tag byte, id uint16, data []byte) (DownstreamMatch, []byte, error) {
	var m DownstreamMatch
	rest, err := ConsumeDownstreamInto(l, tag, id, data, &m)
	if err != nil {
		return DownstreamMatch{}, nil, err
	}
	return m, rest, nil
}

// ConsumeDownstreamInto is ConsumeDownstream decoding into m, reusing
// its matched/default bitmap storage — the allocation-free form the
// data-plane fast path calls per packet. m is fully overwritten; the
// decoded match is valid until the next call with the same m.
func ConsumeDownstreamInto(l Layout, tag byte, id uint16, data []byte, m *DownstreamMatch) ([]byte, error) {
	var width int
	switch tag {
	case TagDSpine:
		width = l.SpineDown
	case TagDLeaf:
		width = l.LeafDown
	default:
		return nil, fmt.Errorf("header: tag %#x is not a downstream section", tag)
	}
	if len(data) < 2 || data[0] != tag {
		return nil, fmt.Errorf("header: expected tag %#x at front", tag)
	}
	bmLen := bitmap.ByteLen(width)
	count := int(data[1])
	off := 2
	m.Matched, m.HasDefault = false, false
	for i := 0; i < count; i++ {
		if off >= len(data) {
			return nil, fmt.Errorf("header: truncated rule %d", i)
		}
		nIDs := int(data[off])
		off++
		if nIDs == 0 {
			return nil, fmt.Errorf("header: rule %d has zero identifiers", i)
		}
		idsEnd := off + 2*nIDs
		ruleEnd := idsEnd + bmLen
		if ruleEnd > len(data) {
			return nil, fmt.Errorf("header: truncated rule %d", i)
		}
		if !m.Matched {
			for j := off; j < idsEnd; j += 2 {
				if binary.BigEndian.Uint16(data[j:]) == id {
					if _, err := bitmap.FromWireInto(width, data[idsEnd:ruleEnd], &m.Bitmap); err != nil {
						return nil, fmt.Errorf("header: rule %d bitmap: %w", i, err)
					}
					m.Matched = true
					break
				}
			}
		}
		off = ruleEnd
	}
	if off >= len(data) {
		return nil, fmt.Errorf("header: truncated default-presence byte")
	}
	hasDef := data[off]
	off++
	if hasDef > 1 {
		return nil, fmt.Errorf("header: bad default-presence byte %#x", hasDef)
	}
	if hasDef == 1 {
		n, err := bitmap.FromWireInto(width, data[off:], &m.Default)
		if err != nil {
			return nil, fmt.Errorf("header: default bitmap: %w", err)
		}
		off += n
		m.HasDefault = true
	}
	return data[off:], nil
}

// SkipSection pops the section at the front of data without
// interpreting its rules, returning the tag and the remaining stream.
// Switches use it to discard sections that do not concern them (e.g. a
// spine receiving a packet whose core section was not needed).
func SkipSection(l Layout, data []byte) (byte, []byte, error) {
	tag, err := PeekTag(data)
	if err != nil {
		return 0, nil, err
	}
	switch tag {
	case TagEnd:
		return TagEnd, data[1:], nil
	case TagULeaf:
		n := 1 + upstreamSectionLen(l.LeafDown, l.LeafUp)
		if len(data) < n {
			return 0, nil, fmt.Errorf("header: truncated u-leaf section")
		}
		return tag, data[n:], nil
	case TagUSpine:
		n := 1 + upstreamSectionLen(l.SpineDown, l.SpineUp)
		if len(data) < n {
			return 0, nil, fmt.Errorf("header: truncated u-spine section")
		}
		return tag, data[n:], nil
	case TagCore:
		n := 1 + bitmap.ByteLen(l.CoreDown)
		if len(data) < n {
			return 0, nil, fmt.Errorf("header: truncated core section")
		}
		return tag, data[n:], nil
	case TagDSpine, TagDLeaf:
		width := l.SpineDown
		if tag == TagDLeaf {
			width = l.LeafDown
		}
		rest, err := skipDownstream(width, data)
		if err != nil {
			return 0, nil, err
		}
		return tag, rest, nil
	case TagINT:
		n, err := intSectionLen(data)
		if err != nil {
			return 0, nil, err
		}
		return tag, data[n:], nil
	default:
		return 0, nil, fmt.Errorf("header: unknown tag %#x", tag)
	}
}

func skipDownstream(width int, data []byte) ([]byte, error) {
	bmLen := bitmap.ByteLen(width)
	if len(data) < 2 {
		return nil, fmt.Errorf("header: truncated downstream section")
	}
	count := int(data[1])
	off := 2
	for i := 0; i < count; i++ {
		if off >= len(data) {
			return nil, fmt.Errorf("header: truncated rule %d", i)
		}
		nIDs := int(data[off])
		off += 1 + 2*nIDs + bmLen
		if off > len(data) {
			return nil, fmt.Errorf("header: truncated rule %d", i)
		}
	}
	if off >= len(data) {
		return nil, fmt.Errorf("header: truncated default-presence byte")
	}
	hasDef := data[off]
	off++
	if hasDef == 1 {
		off += bmLen
		if off > len(data) {
			return nil, fmt.Errorf("header: truncated default bitmap")
		}
	} else if hasDef > 1 {
		return nil, fmt.Errorf("header: bad default-presence byte %#x", hasDef)
	}
	return data[off:], nil
}

// StreamLen returns the total byte length of the section stream
// (through TagEnd), validating framing structurally.
func StreamLen(l Layout, data []byte) (int, error) {
	n, _, err := StreamInfo(l, data)
	return n, err
}

// StreamInfo is StreamLen plus a free byproduct of the same single
// structural walk: whether the stream carries an INT section. Decoders
// that walk the stream anyway (dataplane.Unmarshal) use it to record
// INT presence without a second pass.
func StreamInfo(l Layout, data []byte) (n int, hasINT bool, err error) {
	rest := data
	for {
		tag, next, err := SkipSection(l, rest)
		if err != nil {
			return 0, false, err
		}
		if tag == TagINT {
			hasINT = true
		}
		rest = next
		if tag == TagEnd {
			return len(data) - len(rest), hasINT, nil
		}
	}
}
