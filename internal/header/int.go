package header

import "fmt"

// In-band network telemetry (INT) support — the §7 "Monitoring"
// extension: a multicast packet can carry a telemetry section that
// every Elmo switch on the path appends a record to, so receivers (or
// analytics collectors) can reconstruct the replication tree a copy
// actually took and debug routing configurations.
//
// The INT section rides between the d-leaf section and TagEnd (tag
// order stays ascending). Unlike p-rule sections it survives popping:
// switches pop their own layer from the front and append INT records
// near the back, and the leaf's host-facing egress keeps the section
// while stripping all p-rules.

// TagINT frames the telemetry section.
const TagINT = 0x06

// INT tier codes.
const (
	INTTierLeaf  = 1
	INTTierSpine = 2
	INTTierCore  = 3
)

// INTRecord is one per-hop telemetry record: the switch tier and
// identifier, plus an implementation-defined 8-bit metadata field
// (queue depth in the paper's INT use case; hop index in the emulated
// fabric).
type INTRecord struct {
	Tier uint8
	ID   uint16
	Meta uint8
}

// intRecordSize is the wire size of one record.
const intRecordSize = 4

// AppendINTSection appends an (initially empty or pre-filled) INT
// section to dst.
func appendINTSection(dst []byte, records []INTRecord) ([]byte, error) {
	if len(records) > 255 {
		return dst, fmt.Errorf("header: %d INT records exceeds section limit", len(records))
	}
	dst = append(dst, TagINT, byte(len(records)))
	for _, r := range records {
		dst = append(dst, r.Tier, byte(r.ID>>8), byte(r.ID), r.Meta)
	}
	return dst, nil
}

func decodeINTSection(data []byte, off int) ([]INTRecord, int, error) {
	if off >= len(data) {
		return nil, off, fmt.Errorf("header: truncated INT section")
	}
	count := int(data[off])
	off++
	if off+count*intRecordSize > len(data) {
		return nil, off, fmt.Errorf("header: truncated INT records")
	}
	records := make([]INTRecord, count)
	for i := range records {
		records[i] = INTRecord{
			Tier: data[off],
			ID:   uint16(data[off+1])<<8 | uint16(data[off+2]),
			Meta: data[off+3],
		}
		off += intRecordSize
	}
	return records, off, nil
}

// intSectionLen returns the full section length (tag byte included) at
// the front of data, or an error.
func intSectionLen(data []byte) (int, error) {
	if len(data) < 2 || data[0] != TagINT {
		return 0, fmt.Errorf("header: expected INT section at front")
	}
	n := 2 + int(data[1])*intRecordSize
	if n > len(data) {
		return 0, fmt.Errorf("header: truncated INT section")
	}
	return n, nil
}

// AppendINTRecord rewrites a section stream whose trailing sections
// include an INT section, appending one record. It returns a new slice
// (the input is not modified — streams are shared between packet
// copies). If the stream carries no INT section the input is returned
// unchanged, so switches can call it unconditionally.
func AppendINTRecord(l Layout, stream []byte, rec INTRecord) ([]byte, error) {
	dst, ok, err := AppendINTRecordTo(l, make([]byte, 0, len(stream)+intRecordSize), stream, rec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return stream, nil // no INT section (or full): nothing to do
	}
	return dst, nil
}

// AppendINTRecordTo is the scratch-buffer form of AppendINTRecord: it
// appends the rewritten stream (stream + one record) to dst and
// returns the extended slice with ok=true. When the stream carries no
// INT section, or the section is already full, it returns (dst, false,
// nil) with dst unchanged — the caller should keep forwarding the
// original stream. The input stream is never modified.
func AppendINTRecordTo(l Layout, dst, stream []byte, rec INTRecord) ([]byte, bool, error) {
	// Locate the INT section by structural skipping.
	off := 0
	rest := stream
	for {
		tag, err := PeekTag(rest)
		if err != nil {
			return dst, false, err
		}
		if tag == TagEnd {
			return dst, false, nil // no INT section: nothing to do
		}
		if tag == TagINT {
			break
		}
		next, err2 := skipOne(l, rest)
		if err2 != nil {
			return dst, false, err2
		}
		off += len(rest) - len(next)
		rest = next
	}
	secLen, err := intSectionLen(rest)
	if err != nil {
		return dst, false, err
	}
	count := int(rest[1])
	if count >= 255 {
		return dst, false, nil // section full: drop the record, keep forwarding
	}
	dst = append(dst, stream[:off]...)
	dst = append(dst, TagINT, byte(count+1))
	dst = append(dst, rest[2:secLen]...)
	dst = append(dst, rec.Tier, byte(rec.ID>>8), byte(rec.ID), rec.Meta)
	dst = append(dst, rest[secLen:]...)
	return dst, true, nil
}

// ExtractINT parses the INT section (if any) from a section stream.
func ExtractINT(l Layout, stream []byte) ([]INTRecord, error) {
	rest := stream
	for {
		tag, err := PeekTag(rest)
		if err != nil {
			return nil, err
		}
		switch tag {
		case TagEnd:
			return nil, nil
		case TagINT:
			records, _, err := decodeINTSection(rest, 1)
			return records, err
		}
		next, err := skipOne(l, rest)
		if err != nil {
			return nil, err
		}
		rest = next
	}
}

// skipOne pops exactly one section (INT-aware), unlike SkipSection it
// does not special-case TagEnd.
func skipOne(l Layout, data []byte) ([]byte, error) {
	tag, err := PeekTag(data)
	if err != nil {
		return nil, err
	}
	if tag == TagINT {
		n, err := intSectionLen(data)
		if err != nil {
			return nil, err
		}
		return data[n:], nil
	}
	_, rest, err := SkipSection(l, data)
	return rest, err
}
