package header

import (
	"testing"
	"testing/quick"

	"elmo/internal/topology"
)

func TestOuterRoundTrip(t *testing.T) {
	f := OuterFields{
		SrcMAC:      [6]byte{2, 0, 0, 0, 0, 1},
		DstMAC:      [6]byte{1, 0, 0x5e, 0, 0, 5},
		SrcIP:       [4]byte{10, 0, 0, 1},
		DstIP:       [4]byte{239, 0, 0, 5},
		SrcPort:     49152,
		VNI:         0xabcdef,
		ElmoVersion: Version,
		TTL:         64,
	}
	payload := []byte{TagEnd, 0xde, 0xad, 0xbe, 0xef}
	pkt, err := AppendOuter(nil, f, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != OuterSize {
		t.Fatalf("outer size = %d, want %d", len(pkt), OuterSize)
	}
	pkt = append(pkt, payload...)
	got, body, err := ParseOuter(pkt)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != f {
		t.Fatalf("fields roundtrip: got %+v want %+v", got, f)
	}
	if len(body) != len(payload) {
		t.Fatalf("payload len = %d, want %d", len(body), len(payload))
	}
	for i := range payload {
		if body[i] != payload[i] {
			t.Fatal("payload corrupted")
		}
	}
}

func TestOuterRejectsBadInput(t *testing.T) {
	if _, err := AppendOuter(nil, OuterFields{VNI: 1 << 24}, 0); err == nil {
		t.Fatal("expected VNI overflow error")
	}
	if _, err := AppendOuter(nil, OuterFields{}, 0x10000); err == nil {
		t.Fatal("expected length overflow error")
	}
	good, _ := AppendOuter(nil, OuterFields{TTL: 1}, 0)
	if _, _, err := ParseOuter(good[:10]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte{}, good...)
	bad[14+8]++ // corrupt TTL -> checksum failure
	if _, _, err := ParseOuter(bad); err == nil {
		t.Fatal("expected checksum error")
	}
	bad2 := append([]byte{}, good...)
	bad2[12] = 0x86 // wrong ethertype
	if _, _, err := ParseOuter(bad2); err == nil {
		t.Fatal("expected ethertype error")
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	pkt, err := AppendOuter(nil, OuterFields{SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{239, 9, 9, 9}, TTL: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cs := ipv4Checksum(pkt[EthernetSize : EthernetSize+IPv4Size]); cs != 0 {
		t.Fatalf("checksum over valid header = %#x, want 0", cs)
	}
}

func TestHostIPUnique(t *testing.T) {
	topo := topology.MustNew(topology.PaperExample())
	seen := make(map[[4]byte]topology.HostID)
	for h := 0; h < topo.NumHosts(); h++ {
		ip := HostIP(topo, topology.HostID(h))
		if prev, dup := seen[ip]; dup {
			t.Fatalf("hosts %d and %d share IP %v", prev, h, ip)
		}
		seen[ip] = topology.HostID(h)
		if ip[0] != 10 {
			t.Fatalf("host IP %v not in 10/8", ip)
		}
	}
}

func TestGroupIPRoundTrip(t *testing.T) {
	f := func(g uint32) bool {
		g %= 1 << 24
		ip := GroupIP(g)
		got, ok := GroupFromIP(ip)
		return ok && got == g && ip[0] == 239
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := GroupFromIP([4]byte{10, 0, 0, 1}); ok {
		t.Fatal("unicast IP accepted as group")
	}
}

func TestQuickOuterRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, port uint16, vni uint32, n uint8) bool {
		fields := OuterFields{
			SrcIP: src, DstIP: dst, SrcPort: port,
			VNI: vni % (1 << 24), ElmoVersion: Version, TTL: 32,
		}
		payload := make([]byte, int(n))
		pkt, err := AppendOuter(nil, fields, len(payload))
		if err != nil {
			return false
		}
		pkt = append(pkt, payload...)
		got, body, err := ParseOuter(pkt)
		return err == nil && got == fields && len(body) == len(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendOuter(b *testing.B) {
	f := OuterFields{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{239, 0, 0, 1}, VNI: 7, ElmoVersion: 1, TTL: 64}
	buf := make([]byte, 0, OuterSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendOuter(buf[:0], f, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
}
