package header

import (
	"encoding/binary"
	"fmt"

	"elmo/internal/bitmap"
)

// Wire framing constants.
const (
	// MaxSwitchesPerRule bounds the identifier list of one p-rule
	// (Kmax in the paper is always well below this framing limit).
	MaxSwitchesPerRule = 255
	// MaxRulesPerSection bounds the p-rules in one downstream section.
	MaxRulesPerSection = 255
	// RMTHeaderVectorSize is the parseable-header budget of an
	// RMT-style programmable switch (512 bytes, §4.1); encoders should
	// keep headers under it, and the paper's evaluation budget is 325
	// bytes.
	RMTHeaderVectorSize = 512
	// PaperHeaderBudget is the evaluation's p-rule header cap (§5.1.2).
	PaperHeaderBudget = 325
)

// upstream rule flag bits.
const upMultipathBit = 0x01

// AppendEncode appends the wire encoding of h (the section stream,
// through the trailing TagEnd) to dst and returns the extended slice.
// The Elmo version travels in the outer VXLAN header (see package
// vxlan encapsulation in outer.go), not in the section stream, so that
// popping a section is a pure suffix operation. The encoding is
// deterministic. It returns an error if any rule violates framing
// limits or a bitmap width disagrees with the layout.
func AppendEncode(dst []byte, l Layout, h *Header) ([]byte, error) {
	if err := l.Validate(); err != nil {
		return dst, err
	}
	if h.ULeaf != nil {
		var err error
		dst, err = appendUpstream(dst, TagULeaf, l.LeafDown, l.LeafUp, h.ULeaf)
		if err != nil {
			return dst, err
		}
	}
	if h.USpine != nil {
		var err error
		dst, err = appendUpstream(dst, TagUSpine, l.SpineDown, l.SpineUp, h.USpine)
		if err != nil {
			return dst, err
		}
	}
	if h.Core != nil {
		if h.Core.Width() != l.CoreDown {
			return dst, fmt.Errorf("header: core bitmap width %d, layout wants %d", h.Core.Width(), l.CoreDown)
		}
		dst = append(dst, TagCore)
		dst = h.Core.AppendWire(dst)
	}
	if len(h.DSpine) > 0 || h.DSpineDefault != nil {
		var err error
		dst, err = appendDownstream(dst, TagDSpine, l.SpineDown, h.DSpine, h.DSpineDefault)
		if err != nil {
			return dst, err
		}
	}
	if len(h.DLeaf) > 0 || h.DLeafDefault != nil {
		var err error
		dst, err = appendDownstream(dst, TagDLeaf, l.LeafDown, h.DLeaf, h.DLeafDefault)
		if err != nil {
			return dst, err
		}
	}
	if h.INTEnabled {
		var err error
		dst, err = appendINTSection(dst, h.INT)
		if err != nil {
			return dst, err
		}
	}
	dst = append(dst, TagEnd)
	return dst, nil
}

// Encode is AppendEncode into a fresh slice.
func Encode(l Layout, h *Header) ([]byte, error) {
	return AppendEncode(make([]byte, 0, EncodedSize(l, h)), l, h)
}

func appendUpstream(dst []byte, tag byte, downW, upW int, r *UpstreamRule) ([]byte, error) {
	if r.Down.Width() != downW {
		return dst, fmt.Errorf("header: upstream down bitmap width %d, layout wants %d", r.Down.Width(), downW)
	}
	if r.Up.Width() != upW {
		return dst, fmt.Errorf("header: upstream up bitmap width %d, layout wants %d", r.Up.Width(), upW)
	}
	dst = append(dst, tag)
	var flags byte
	if r.Multipath {
		flags |= upMultipathBit
	}
	dst = append(dst, flags)
	dst = r.Down.AppendWire(dst)
	dst = r.Up.AppendWire(dst)
	return dst, nil
}

func appendDownstream(dst []byte, tag byte, width int, rules []PRule, def *bitmap.Bitmap) ([]byte, error) {
	if len(rules) > MaxRulesPerSection {
		return dst, fmt.Errorf("header: %d rules exceeds section limit %d", len(rules), MaxRulesPerSection)
	}
	dst = append(dst, tag, byte(len(rules)))
	for i, r := range rules {
		if len(r.Switches) == 0 {
			return dst, fmt.Errorf("header: rule %d has no switch identifiers", i)
		}
		if len(r.Switches) > MaxSwitchesPerRule {
			return dst, fmt.Errorf("header: rule %d has %d switches, limit %d", i, len(r.Switches), MaxSwitchesPerRule)
		}
		if r.Bitmap.Width() != width {
			return dst, fmt.Errorf("header: rule %d bitmap width %d, layout wants %d", i, r.Bitmap.Width(), width)
		}
		dst = append(dst, byte(len(r.Switches)))
		for _, id := range r.Switches {
			dst = binary.BigEndian.AppendUint16(dst, id)
		}
		dst = r.Bitmap.AppendWire(dst)
	}
	if def != nil {
		if def.Width() != width {
			return dst, fmt.Errorf("header: default bitmap width %d, layout wants %d", def.Width(), width)
		}
		dst = append(dst, 1)
		dst = def.AppendWire(dst)
	} else {
		dst = append(dst, 0)
	}
	return dst, nil
}

// EncodedSize returns the exact number of bytes AppendEncode will
// produce for h under layout l, without encoding. The controller uses
// it to enforce header budgets (Hmax, §3.2).
func EncodedSize(l Layout, h *Header) int {
	n := 1 // TagEnd
	if h.ULeaf != nil {
		n += 2 + bitmap.ByteLen(l.LeafDown) + bitmap.ByteLen(l.LeafUp)
	}
	if h.USpine != nil {
		n += 2 + bitmap.ByteLen(l.SpineDown) + bitmap.ByteLen(l.SpineUp)
	}
	if h.Core != nil {
		n += 1 + bitmap.ByteLen(l.CoreDown)
	}
	if len(h.DSpine) > 0 || h.DSpineDefault != nil {
		n += downstreamSize(l.SpineDown, h.DSpine, h.DSpineDefault != nil)
	}
	if len(h.DLeaf) > 0 || h.DLeafDefault != nil {
		n += downstreamSize(l.LeafDown, h.DLeaf, h.DLeafDefault != nil)
	}
	if h.INTEnabled {
		n += 2 + intRecordSize*len(h.INT)
	}
	return n
}

func downstreamSize(width int, rules []PRule, hasDefault bool) int {
	n := 3 // tag + count + default-presence byte
	bm := bitmap.ByteLen(width)
	for _, r := range rules {
		n += 1 + 2*len(r.Switches) + bm
	}
	if hasDefault {
		n += bm
	}
	return n
}

// DownstreamSectionSize returns the wire size of one downstream section
// with the given rule shapes; the clustering algorithm uses it to keep
// sections within a byte budget before materializing rules.
func DownstreamSectionSize(width int, ruleSwitchCounts []int, hasDefault bool) int {
	n := 3
	bm := bitmap.ByteLen(width)
	for _, k := range ruleSwitchCounts {
		n += 1 + 2*k + bm
	}
	if hasDefault {
		n += bm
	}
	return n
}

// Decode parses a complete Elmo section stream from data, returning
// the header and the number of bytes consumed (through TagEnd). Decode
// validates framing: unknown or out-of-order tags, truncated sections,
// and padding violations are errors.
func Decode(l Layout, data []byte) (*Header, int, error) {
	if err := l.Validate(); err != nil {
		return nil, 0, err
	}
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("header: truncated (%d bytes)", len(data))
	}
	h := &Header{}
	off := 0
	lastTag := byte(0)
	for {
		if off >= len(data) {
			return nil, 0, fmt.Errorf("header: missing TagEnd")
		}
		tag := data[off]
		off++
		if tag == TagEnd {
			return h, off, nil
		}
		if tag <= lastTag || tag > TagINT {
			return nil, 0, fmt.Errorf("header: tag %#x out of order after %#x", tag, lastTag)
		}
		lastTag = tag
		var err error
		switch tag {
		case TagULeaf:
			h.ULeaf, off, err = decodeUpstream(data, off, l.LeafDown, l.LeafUp)
		case TagUSpine:
			h.USpine, off, err = decodeUpstream(data, off, l.SpineDown, l.SpineUp)
		case TagCore:
			var bm bitmap.Bitmap
			var n int
			bm, n, err = bitmap.FromWire(l.CoreDown, data[off:])
			if err == nil {
				h.Core = &bm
				off += n
			}
		case TagDSpine:
			h.DSpine, h.DSpineDefault, off, err = decodeDownstream(data, off, l.SpineDown)
		case TagDLeaf:
			h.DLeaf, h.DLeafDefault, off, err = decodeDownstream(data, off, l.LeafDown)
		case TagINT:
			h.INTEnabled = true
			h.INT, off, err = decodeINTSection(data, off)
		}
		if err != nil {
			return nil, 0, err
		}
	}
}

func decodeUpstream(data []byte, off, downW, upW int) (*UpstreamRule, int, error) {
	if off >= len(data) {
		return nil, off, fmt.Errorf("header: truncated upstream rule")
	}
	flags := data[off]
	off++
	if flags&^upMultipathBit != 0 {
		return nil, off, fmt.Errorf("header: unknown upstream flags %#x", flags)
	}
	down, n, err := bitmap.FromWire(downW, data[off:])
	if err != nil {
		return nil, off, fmt.Errorf("header: upstream down: %w", err)
	}
	off += n
	up, n, err := bitmap.FromWire(upW, data[off:])
	if err != nil {
		return nil, off, fmt.Errorf("header: upstream up: %w", err)
	}
	off += n
	return &UpstreamRule{Down: down, Up: up, Multipath: flags&upMultipathBit != 0}, off, nil
}

func decodeDownstream(data []byte, off, width int) ([]PRule, *bitmap.Bitmap, int, error) {
	if off >= len(data) {
		return nil, nil, off, fmt.Errorf("header: truncated downstream section")
	}
	count := int(data[off])
	off++
	rules := make([]PRule, 0, count)
	for i := 0; i < count; i++ {
		if off >= len(data) {
			return nil, nil, off, fmt.Errorf("header: truncated rule %d", i)
		}
		nIDs := int(data[off])
		off++
		if nIDs == 0 {
			return nil, nil, off, fmt.Errorf("header: rule %d has zero identifiers", i)
		}
		if off+2*nIDs > len(data) {
			return nil, nil, off, fmt.Errorf("header: truncated identifiers in rule %d", i)
		}
		ids := make([]uint16, nIDs)
		for j := range ids {
			ids[j] = binary.BigEndian.Uint16(data[off:])
			off += 2
		}
		bm, n, err := bitmap.FromWire(width, data[off:])
		if err != nil {
			return nil, nil, off, fmt.Errorf("header: rule %d bitmap: %w", i, err)
		}
		off += n
		rules = append(rules, PRule{Switches: ids, Bitmap: bm})
	}
	if off >= len(data) {
		return nil, nil, off, fmt.Errorf("header: truncated default-presence byte")
	}
	hasDef := data[off]
	off++
	if hasDef > 1 {
		return nil, nil, off, fmt.Errorf("header: bad default-presence byte %#x", hasDef)
	}
	var def *bitmap.Bitmap
	if hasDef == 1 {
		bm, n, err := bitmap.FromWire(width, data[off:])
		if err != nil {
			return nil, nil, off, fmt.Errorf("header: default bitmap: %w", err)
		}
		off += n
		def = &bm
	}
	return rules, def, off, nil
}
