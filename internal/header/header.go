// Package header implements the Elmo packet header (paper §3.1, Fig. 2):
// a sequence of sections ordered by the layers a packet traverses in a
// Clos fabric — upstream leaf, upstream spine, core, downstream spine,
// downstream leaf — each carrying packet rules (p-rules).
//
// A p-rule is a port bitmap plus the list of (logical) switch
// identifiers that should apply it (D1, D3). Upstream rules carry no
// identifiers — the switch on the upstream path is unambiguous — and
// instead carry both downstream delivery ports and either a multipath
// flag or explicit upstream ports (D2, §3.3). Downstream sections may
// end with a default p-rule that any unmatched switch applies (D4).
//
// Sections are popped as the packet ascends/descends (D2d): a switch
// removes its own layer's section before forwarding, so headers shrink
// at every hop and the traffic overhead of source routing stays low.
//
// The wire format frames each section with a 1-byte tag followed by a
// self-delimiting body, terminated by TagEnd. Bitmap widths are not
// carried in the packet: like a P4 program compiled for a concrete
// fabric, both ends share a Layout derived from the topology.
package header

import (
	"fmt"

	"elmo/internal/bitmap"
	"elmo/internal/topology"
)

// Version is the Elmo header version encoded by this package.
const Version = 1

// Section tags, in the order sections appear on the wire.
const (
	TagEnd    = 0x00 // terminates the Elmo header; inner packet follows
	TagULeaf  = 0x01 // upstream rule for the source leaf
	TagUSpine = 0x02 // upstream rule for the source spine
	TagCore   = 0x03 // logical-core rule: bitmap over pods
	TagDSpine = 0x04 // downstream spine p-rules (+ optional default)
	TagDLeaf  = 0x05 // downstream leaf p-rules (+ optional default)
)

// Layout fixes the bitmap widths of every section for a concrete
// fabric. It plays the role of the P4 program's compile-time header
// definitions: switches and hypervisors exchange packets that are only
// meaningful under the same layout.
type Layout struct {
	LeafDown  int // hosts per leaf
	LeafUp    int // spines per pod
	SpineDown int // leaves per pod
	SpineUp   int // cores per plane
	CoreDown  int // pods
}

// LayoutFor derives the layout from a topology.
func LayoutFor(t *topology.Topology) Layout {
	return Layout{
		LeafDown:  t.LeafDownWidth(),
		LeafUp:    t.LeafUpWidth(),
		SpineDown: t.SpineDownWidth(),
		SpineUp:   t.SpineUpWidth(),
		CoreDown:  t.CoreDownWidth(),
	}
}

// Validate checks that all widths are positive and identifier-sized.
func (l Layout) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"LeafDown", l.LeafDown}, {"LeafUp", l.LeafUp},
		{"SpineDown", l.SpineDown}, {"SpineUp", l.SpineUp},
		{"CoreDown", l.CoreDown},
	} {
		if d.v <= 0 {
			return fmt.Errorf("header: layout %s must be positive, got %d", d.name, d.v)
		}
	}
	return nil
}

// UpstreamRule is the bitmap-only rule used by the source leaf and
// spine (Fig. 2b, type=u). Down carries the member delivery ports at
// this switch; when Multipath is set the switch forwards one copy
// upward via its configured multipath scheme, otherwise it forwards on
// the explicit Up ports (§3.3 failure handling). An UpstreamRule with
// an empty Down, a false Multipath, and an empty Up performs no
// upstream forwarding (single-rack groups).
type UpstreamRule struct {
	Down      bitmap.Bitmap
	Up        bitmap.Bitmap
	Multipath bool
}

// PRule is a downstream packet rule (Fig. 2b, type=d): the output-port
// bitmap shared by the listed logical switches. For the spine section,
// identifiers are pod IDs (one logical spine per pod); for the leaf
// section they are global leaf IDs.
type PRule struct {
	Switches []uint16
	Bitmap   bitmap.Bitmap
}

// Header is the decoded form of an Elmo header. Nil/empty fields mean
// the section is absent (already popped, or never needed — e.g. a
// single-pod group carries no core section).
type Header struct {
	ULeaf  *UpstreamRule
	USpine *UpstreamRule
	Core   *bitmap.Bitmap // bitmap over pods

	DSpine        []PRule
	DSpineDefault *bitmap.Bitmap

	DLeaf        []PRule
	DLeafDefault *bitmap.Bitmap

	// INTEnabled adds an in-band telemetry section (§7 Monitoring):
	// switches on the path append INTRecords that receivers can read.
	// INT holds any records already present (normally empty at the
	// sender).
	INTEnabled bool
	INT        []INTRecord
}

// Clone returns a deep copy of the header.
func (h *Header) Clone() *Header {
	c := &Header{}
	if h.ULeaf != nil {
		r := *h.ULeaf
		r.Down = h.ULeaf.Down.Clone()
		r.Up = h.ULeaf.Up.Clone()
		c.ULeaf = &r
	}
	if h.USpine != nil {
		r := *h.USpine
		r.Down = h.USpine.Down.Clone()
		r.Up = h.USpine.Up.Clone()
		c.USpine = &r
	}
	if h.Core != nil {
		b := h.Core.Clone()
		c.Core = &b
	}
	c.DSpine = clonePRules(h.DSpine)
	if h.DSpineDefault != nil {
		b := h.DSpineDefault.Clone()
		c.DSpineDefault = &b
	}
	c.DLeaf = clonePRules(h.DLeaf)
	if h.DLeafDefault != nil {
		b := h.DLeafDefault.Clone()
		c.DLeafDefault = &b
	}
	c.INTEnabled = h.INTEnabled
	if h.INT != nil {
		c.INT = make([]INTRecord, len(h.INT))
		copy(c.INT, h.INT)
	}
	return c
}

func clonePRules(rules []PRule) []PRule {
	if rules == nil {
		return nil
	}
	out := make([]PRule, len(rules))
	for i, r := range rules {
		ids := make([]uint16, len(r.Switches))
		copy(ids, r.Switches)
		out[i] = PRule{Switches: ids, Bitmap: r.Bitmap.Clone()}
	}
	return out
}

// NumPRules returns the number of downstream spine and leaf p-rules,
// counting defaults.
func (h *Header) NumPRules() (spine, leaf int) {
	spine, leaf = len(h.DSpine), len(h.DLeaf)
	if h.DSpineDefault != nil {
		spine++
	}
	if h.DLeafDefault != nil {
		leaf++
	}
	return spine, leaf
}
