package topology

import (
	"reflect"
	"testing"
)

func TestFailureSetEmptyAndNil(t *testing.T) {
	var nilSet *FailureSet
	if !nilSet.Empty() {
		t.Fatal("nil set should be empty")
	}
	if nilSet.SpineFailed(0) || nilSet.CoreFailed(0) {
		t.Fatal("nil set should report no failures")
	}
	if s, c := nilSet.NumFailed(); s != 0 || c != 0 {
		t.Fatalf("nil NumFailed = %d,%d", s, c)
	}

	f := NewFailureSet()
	if !f.Empty() {
		t.Fatal("new set should be empty")
	}
	if got := f.String(); got != "failures(spines=0 cores=0)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestFailureSetFailRepairRoundTrip(t *testing.T) {
	f := NewFailureSet()
	f.FailSpine(3)
	f.FailSpine(3) // re-failing is a no-op
	f.FailSpine(5)
	f.FailCore(1)
	if f.Empty() {
		t.Fatal("set with failures reported empty")
	}
	if !f.SpineFailed(3) || !f.SpineFailed(5) || f.SpineFailed(4) {
		t.Fatal("wrong spine failure state")
	}
	if !f.CoreFailed(1) || f.CoreFailed(0) {
		t.Fatal("wrong core failure state")
	}
	if s, c := f.NumFailed(); s != 2 || c != 1 {
		t.Fatalf("NumFailed = %d,%d, want 2,1", s, c)
	}
	if got := f.String(); got != "failures(spines=2 cores=1)" {
		t.Fatalf("String() = %q", got)
	}

	f.RepairSpine(3)
	f.RepairSpine(3) // re-repairing is a no-op
	f.RepairCore(1)
	f.RepairCore(7) // repairing a healthy core is a no-op
	if f.SpineFailed(3) || f.CoreFailed(1) {
		t.Fatal("repair did not clear failure")
	}
	if !f.SpineFailed(5) {
		t.Fatal("repair cleared an unrelated spine")
	}
	if s, c := f.NumFailed(); s != 1 || c != 0 {
		t.Fatalf("NumFailed after repair = %d,%d, want 1,0", s, c)
	}
	f.RepairSpine(5)
	if !f.Empty() {
		t.Fatal("fully repaired set should be empty again")
	}
}

func TestFailureSetHealthySpinePlanes(t *testing.T) {
	topo := MustNew(PaperExample()) // 2 spine planes per pod
	f := NewFailureSet()
	if got := f.HealthySpinePlanes(topo, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("healthy planes = %v", got)
	}

	// Failing pod 0 plane 0 affects only pod 0's plane list.
	f.FailSpine(topo.SpineAt(0, 0))
	if got := f.HealthySpinePlanes(topo, 0); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("pod 0 healthy planes = %v", got)
	}
	if got := f.HealthySpinePlanes(topo, 1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("pod 1 healthy planes = %v", got)
	}

	f.RepairSpine(topo.SpineAt(0, 0))
	if got := f.HealthySpinePlanes(topo, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("healthy planes after repair = %v", got)
	}
}

func TestFailureSetHealthyCoresInPlane(t *testing.T) {
	topo := MustNew(PaperExample()) // 2 cores per plane
	cfg := topo.Config()
	f := NewFailureSet()

	plane1First := CoreID(1 * cfg.CoresPerPlane)
	if got := f.HealthyCoresInPlane(topo, 1); !reflect.DeepEqual(got, []CoreID{plane1First, plane1First + 1}) {
		t.Fatalf("healthy cores = %v", got)
	}

	f.FailCore(plane1First)
	if got := f.HealthyCoresInPlane(topo, 1); !reflect.DeepEqual(got, []CoreID{plane1First + 1}) {
		t.Fatalf("healthy cores after failure = %v", got)
	}
	// Plane 0 is untouched.
	if got := f.HealthyCoresInPlane(topo, 0); len(got) != cfg.CoresPerPlane {
		t.Fatalf("plane 0 cores = %v", got)
	}

	f.RepairCore(plane1First)
	if got := f.HealthyCoresInPlane(topo, 1); len(got) != cfg.CoresPerPlane {
		t.Fatalf("healthy cores after repair = %v", got)
	}
}
