package topology

import "fmt"

// FailureSet tracks failed spine and core switches. The paper (§3.3,
// §5.1.3b) handles spine and core failures by disabling multipathing
// for affected groups and pinning upstream ports; leaf failures simply
// disconnect their hosts until repair, so they are not tracked here.
//
// FailureSet is a value type; the zero value has no failures. It is not
// safe for concurrent mutation.
type FailureSet struct {
	spines map[SpineID]struct{}
	cores  map[CoreID]struct{}
}

// NewFailureSet returns an empty failure set.
func NewFailureSet() *FailureSet {
	return &FailureSet{
		spines: make(map[SpineID]struct{}),
		cores:  make(map[CoreID]struct{}),
	}
}

// FailSpine marks a spine as failed. Re-failing is a no-op.
func (f *FailureSet) FailSpine(s SpineID) { f.spines[s] = struct{}{} }

// FailCore marks a core as failed. Re-failing is a no-op.
func (f *FailureSet) FailCore(c CoreID) { f.cores[c] = struct{}{} }

// RepairSpine clears a spine failure.
func (f *FailureSet) RepairSpine(s SpineID) { delete(f.spines, s) }

// RepairCore clears a core failure.
func (f *FailureSet) RepairCore(c CoreID) { delete(f.cores, c) }

// SpineFailed reports whether the spine is failed. A nil FailureSet
// reports no failures, so callers may pass nil for the common case.
func (f *FailureSet) SpineFailed(s SpineID) bool {
	if f == nil {
		return false
	}
	_, ok := f.spines[s]
	return ok
}

// CoreFailed reports whether the core is failed.
func (f *FailureSet) CoreFailed(c CoreID) bool {
	if f == nil {
		return false
	}
	_, ok := f.cores[c]
	return ok
}

// Empty reports whether no switch is failed.
func (f *FailureSet) Empty() bool {
	return f == nil || (len(f.spines) == 0 && len(f.cores) == 0)
}

// NumFailed returns the count of failed spines and cores.
func (f *FailureSet) NumFailed() (spines, cores int) {
	if f == nil {
		return 0, 0
	}
	return len(f.spines), len(f.cores)
}

// String summarizes the failure set.
func (f *FailureSet) String() string {
	s, c := f.NumFailed()
	return fmt.Sprintf("failures(spines=%d cores=%d)", s, c)
}

// HealthySpinePlanes returns, for a pod, the set of spine planes whose
// spine in that pod is healthy. Used by the controller's greedy
// set-cover when recomputing upstream ports under failures.
func (f *FailureSet) HealthySpinePlanes(t *Topology, p PodID) []int {
	planes := make([]int, 0, t.Config().SpinesPerPod)
	for plane := 0; plane < t.Config().SpinesPerPod; plane++ {
		if !f.SpineFailed(t.SpineAt(p, plane)) {
			planes = append(planes, plane)
		}
	}
	return planes
}

// HealthyCoresInPlane returns the cores of the given plane that are
// healthy.
func (f *FailureSet) HealthyCoresInPlane(t *Topology, plane int) []CoreID {
	cores := make([]CoreID, 0, t.Config().CoresPerPlane)
	for j := 0; j < t.Config().CoresPerPlane; j++ {
		c := CoreID(plane*t.Config().CoresPerPlane + j)
		if !f.CoreFailed(c) {
			cores = append(cores, c)
		}
	}
	return cores
}
