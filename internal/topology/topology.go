// Package topology models the multi-rooted Clos datacenter fabric that
// Elmo targets (paper §3, §5.1.1): a three-tier topology of core,
// spine, and leaf switches grouped into pods, with hosts attached to
// leaves.
//
// The package fixes a deterministic port-numbering convention that the
// header encoding, controller, and data plane all share:
//
//   - Leaf downstream port i attaches host leaf*HostsPerLeaf+i;
//     leaf upstream port j attaches spine j of the leaf's pod.
//   - Spine downstream port i attaches leaf i of the spine's pod;
//     spine upstream port j attaches core j of the spine's plane.
//   - Core downstream port p attaches (pod p, spine plane(core)).
//
// Cores are organized into planes, one plane per spine position: spine
// s of every pod connects to the CoresPerPlane cores of plane s. This
// matches Facebook-Fabric-style multi-rooted Clos fabrics and makes
// the "one logical core" abstraction of the paper exact: every core can
// reach every pod through exactly one downstream port.
package topology

import "fmt"

// Identifier types. All are dense indices starting at zero, global
// across the fabric (not per pod).
type (
	// HostID identifies a physical host (hypervisor).
	HostID int
	// LeafID identifies a leaf (top-of-rack) switch.
	LeafID int
	// SpineID identifies a spine switch.
	SpineID int
	// CoreID identifies a core switch.
	CoreID int
	// PodID identifies a pod. A pod is also the identifier of its
	// logical spine switch in Elmo's p-rule encoding (D2).
	PodID int
)

// Config describes the dimensions of a three-tier Clos fabric.
type Config struct {
	// Pods is the number of pods.
	Pods int
	// SpinesPerPod is the number of spine switches in each pod, and
	// also the number of core planes.
	SpinesPerPod int
	// LeavesPerPod is the number of leaf switches in each pod.
	LeavesPerPod int
	// HostsPerLeaf is the number of hosts attached to each leaf.
	HostsPerLeaf int
	// CoresPerPlane is the number of core switches per plane; each
	// spine has one uplink to each core of its plane.
	CoresPerPlane int
}

// Validate checks that every dimension is positive.
func (c Config) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("topology: %s must be positive, got %d", name, v)
		}
		return nil
	}
	if err := check("Pods", c.Pods); err != nil {
		return err
	}
	if err := check("SpinesPerPod", c.SpinesPerPod); err != nil {
		return err
	}
	if err := check("LeavesPerPod", c.LeavesPerPod); err != nil {
		return err
	}
	if err := check("HostsPerLeaf", c.HostsPerLeaf); err != nil {
		return err
	}
	return check("CoresPerPlane", c.CoresPerPlane)
}

// PaperExample is the running example of the paper's Figure 3: four
// pods and cores, two spines and leaves per pod, eight hosts per leaf.
// (Four cores = two planes of two.)
func PaperExample() Config {
	return Config{Pods: 4, SpinesPerPod: 2, LeavesPerPod: 2, HostsPerLeaf: 8, CoresPerPlane: 2}
}

// FacebookFabric is the evaluation topology of §5.1.1: 12 pods, 48
// leaves per pod, 48 hosts per leaf (27,648 hosts), 4 spines per pod
// and 4 cores per plane.
func FacebookFabric() Config {
	return Config{Pods: 12, SpinesPerPod: 4, LeavesPerPod: 48, HostsPerLeaf: 48, CoresPerPlane: 4}
}

// TwoTierLeafSpine is the CONGA-style two-tier topology the paper also
// evaluated ("qualitatively similar results", §5.1.1): a single pod
// whose spines are the top tier. Groups never leave the pod, so Elmo
// headers carry no core or downstream-spine sections.
func TwoTierLeafSpine(spines, leaves, hostsPerLeaf int) Config {
	return Config{Pods: 1, SpinesPerPod: spines, LeavesPerPod: leaves, HostsPerLeaf: hostsPerLeaf, CoresPerPlane: 1}
}

// Topology is an immutable description of a Clos fabric built from a
// Config. All lookups are O(1) arithmetic; the struct holds no
// per-element storage, so fabrics of any size are free to create.
type Topology struct {
	cfg Config
}

// New builds a topology, validating the configuration.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Topology{cfg: cfg}, nil
}

// MustNew is New, panicking on invalid configuration. For tests and
// examples with literal configs.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the fabric dimensions.
func (t *Topology) Config() Config { return t.cfg }

// NumHosts returns the total number of hosts.
func (t *Topology) NumHosts() int {
	return t.cfg.Pods * t.cfg.LeavesPerPod * t.cfg.HostsPerLeaf
}

// NumLeaves returns the total number of leaf switches.
func (t *Topology) NumLeaves() int { return t.cfg.Pods * t.cfg.LeavesPerPod }

// NumSpines returns the total number of spine switches.
func (t *Topology) NumSpines() int { return t.cfg.Pods * t.cfg.SpinesPerPod }

// NumCores returns the total number of core switches.
func (t *Topology) NumCores() int { return t.cfg.SpinesPerPod * t.cfg.CoresPerPlane }

// NumPods returns the number of pods.
func (t *Topology) NumPods() int { return t.cfg.Pods }

// NumSwitches returns the total physical switch count.
func (t *Topology) NumSwitches() int { return t.NumLeaves() + t.NumSpines() + t.NumCores() }

// --- Host relations ---

// HostLeaf returns the leaf switch the host attaches to.
func (t *Topology) HostLeaf(h HostID) LeafID {
	t.checkHost(h)
	return LeafID(int(h) / t.cfg.HostsPerLeaf)
}

// HostPod returns the pod containing the host.
func (t *Topology) HostPod(h HostID) PodID { return t.LeafPod(t.HostLeaf(h)) }

// HostPort returns the downstream port index of the host on its leaf.
func (t *Topology) HostPort(h HostID) int {
	t.checkHost(h)
	return int(h) % t.cfg.HostsPerLeaf
}

// HostAt returns the host attached to the given leaf downstream port.
func (t *Topology) HostAt(l LeafID, port int) HostID {
	t.checkLeaf(l)
	if port < 0 || port >= t.cfg.HostsPerLeaf {
		panic(fmt.Sprintf("topology: leaf port %d out of range", port))
	}
	return HostID(int(l)*t.cfg.HostsPerLeaf + port)
}

// --- Leaf relations ---

// LeafPod returns the pod containing the leaf.
func (t *Topology) LeafPod(l LeafID) PodID {
	t.checkLeaf(l)
	return PodID(int(l) / t.cfg.LeavesPerPod)
}

// LeafIndexInPod returns the leaf's index within its pod, which is
// also its downstream port number on every spine of the pod.
func (t *Topology) LeafIndexInPod(l LeafID) int {
	t.checkLeaf(l)
	return int(l) % t.cfg.LeavesPerPod
}

// LeafAt returns the leaf at the given index within a pod.
func (t *Topology) LeafAt(p PodID, idx int) LeafID {
	t.checkPod(p)
	if idx < 0 || idx >= t.cfg.LeavesPerPod {
		panic(fmt.Sprintf("topology: leaf index %d out of range", idx))
	}
	return LeafID(int(p)*t.cfg.LeavesPerPod + idx)
}

// LeafUpstream returns the spine reached by the leaf's upstream port.
// Port j of any leaf in pod p connects to spine j of pod p.
func (t *Topology) LeafUpstream(l LeafID, port int) SpineID {
	if port < 0 || port >= t.cfg.SpinesPerPod {
		panic(fmt.Sprintf("topology: leaf upstream port %d out of range", port))
	}
	return t.SpineAt(t.LeafPod(l), port)
}

// --- Spine relations ---

// SpinePod returns the pod containing the spine.
func (t *Topology) SpinePod(s SpineID) PodID {
	t.checkSpine(s)
	return PodID(int(s) / t.cfg.SpinesPerPod)
}

// SpinePlane returns the spine's plane: its index within the pod,
// which selects the set of cores it uplinks to.
func (t *Topology) SpinePlane(s SpineID) int {
	t.checkSpine(s)
	return int(s) % t.cfg.SpinesPerPod
}

// SpineAt returns the spine at the given plane within a pod.
func (t *Topology) SpineAt(p PodID, plane int) SpineID {
	t.checkPod(p)
	if plane < 0 || plane >= t.cfg.SpinesPerPod {
		panic(fmt.Sprintf("topology: spine plane %d out of range", plane))
	}
	return SpineID(int(p)*t.cfg.SpinesPerPod + plane)
}

// SpineDownstream returns the leaf reached by the spine's downstream
// port.
func (t *Topology) SpineDownstream(s SpineID, port int) LeafID {
	return t.LeafAt(t.SpinePod(s), port)
}

// SpineUpstream returns the core reached by the spine's upstream port.
// Port j of a spine in plane k connects to core k*CoresPerPlane+j.
func (t *Topology) SpineUpstream(s SpineID, port int) CoreID {
	if port < 0 || port >= t.cfg.CoresPerPlane {
		panic(fmt.Sprintf("topology: spine upstream port %d out of range", port))
	}
	return CoreID(t.SpinePlane(s)*t.cfg.CoresPerPlane + port)
}

// --- Core relations ---

// CorePlane returns the plane the core belongs to.
func (t *Topology) CorePlane(c CoreID) int {
	t.checkCore(c)
	return int(c) / t.cfg.CoresPerPlane
}

// CoreDownstream returns the spine reached by the core's downstream
// port for the given pod: spine plane(c) of that pod.
func (t *Topology) CoreDownstream(c CoreID, pod PodID) SpineID {
	return t.SpineAt(pod, t.CorePlane(c))
}

// --- Port widths (bitmap widths for the header encoding) ---

// LeafDownWidth is the width of a leaf downstream bitmap.
func (t *Topology) LeafDownWidth() int { return t.cfg.HostsPerLeaf }

// LeafUpWidth is the width of a leaf upstream bitmap.
func (t *Topology) LeafUpWidth() int { return t.cfg.SpinesPerPod }

// SpineDownWidth is the width of a spine downstream bitmap, and of a
// logical-spine (pod) p-rule bitmap.
func (t *Topology) SpineDownWidth() int { return t.cfg.LeavesPerPod }

// SpineUpWidth is the width of a spine upstream bitmap.
func (t *Topology) SpineUpWidth() int { return t.cfg.CoresPerPlane }

// CoreDownWidth is the width of the logical-core bitmap: one bit per
// pod.
func (t *Topology) CoreDownWidth() int { return t.cfg.Pods }

// --- Validation helpers ---

func (t *Topology) checkHost(h HostID) {
	if int(h) < 0 || int(h) >= t.NumHosts() {
		panic(fmt.Sprintf("topology: host %d out of range [0,%d)", h, t.NumHosts()))
	}
}

func (t *Topology) checkLeaf(l LeafID) {
	if int(l) < 0 || int(l) >= t.NumLeaves() {
		panic(fmt.Sprintf("topology: leaf %d out of range [0,%d)", l, t.NumLeaves()))
	}
}

func (t *Topology) checkSpine(s SpineID) {
	if int(s) < 0 || int(s) >= t.NumSpines() {
		panic(fmt.Sprintf("topology: spine %d out of range [0,%d)", s, t.NumSpines()))
	}
}

func (t *Topology) checkCore(c CoreID) {
	if int(c) < 0 || int(c) >= t.NumCores() {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", c, t.NumCores()))
	}
}

func (t *Topology) checkPod(p PodID) {
	if int(p) < 0 || int(p) >= t.cfg.Pods {
		panic(fmt.Sprintf("topology: pod %d out of range [0,%d)", p, t.cfg.Pods))
	}
}

// HostsUnderLeaf returns all hosts attached to the leaf, in port order.
func (t *Topology) HostsUnderLeaf(l LeafID) []HostID {
	t.checkLeaf(l)
	hosts := make([]HostID, t.cfg.HostsPerLeaf)
	for i := range hosts {
		hosts[i] = HostID(int(l)*t.cfg.HostsPerLeaf + i)
	}
	return hosts
}

// String describes the fabric dimensions.
func (t *Topology) String() string {
	return fmt.Sprintf("clos(pods=%d spines/pod=%d leaves/pod=%d hosts/leaf=%d cores/plane=%d: %d hosts, %d switches)",
		t.cfg.Pods, t.cfg.SpinesPerPod, t.cfg.LeavesPerPod, t.cfg.HostsPerLeaf, t.cfg.CoresPerPlane,
		t.NumHosts(), t.NumSwitches())
}
